GO ?= go

# Samples per benchmark group for `make bench` — each sample is one
# fresh `go test` process. 5 is the smallest count where benchdiff's
# Mann-Whitney gate can flag wall-clock metrics at alpha 0.05 with
# headroom; drop to 3 for a quick advisory run.
BENCH_COUNT ?= 5

# Base commit for `make benchdiff` (compare HEAD against this).
BASE ?= HEAD~1

.PHONY: build test race bench bench-headline benchdiff baselines fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_simulator.json (schema lpbuf/bench/v2): the
# paper-figure benchmarks plus the raw simulator throughput bench, each
# sampled in BENCH_COUNT fresh processes so in-process caches cannot
# flatter the numbers and benchdiff gets real per-metric variance. CI
# runs this target and gates on the result.
bench:
	$(GO) run ./cmd/benchjson -benchtime 1x -count $(BENCH_COUNT) -out BENCH_simulator.json

# bench-headline additionally covers every paper figure (slower).
bench-headline:
	$(GO) run ./cmd/benchjson -benchtime 1x -count $(BENCH_COUNT) -out BENCH_simulator.json \
		-bench 'BenchmarkFigure7Traditional|BenchmarkFigure7Aggressive,BenchmarkFigure8a|BenchmarkFigure8b|BenchmarkFigure3|BenchmarkFigure5|BenchmarkHeadline,BenchmarkSimulatorThroughput,BenchmarkSimsPerSec|BenchmarkSimsPerSecPMU'

# benchdiff benchmarks BASE (default HEAD~1) in a detached worktree,
# benchmarks the current tree, and runs the statistical comparison.
# Today's harness binary is used for both sides (the base commit may
# predate the multi-sample schema), so the two artifacts are always
# comparable. Usage: make benchdiff [BASE=v1.2] [BENCH_COUNT=5]
benchdiff:
	@rm -rf .benchdiff-base
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	git worktree add --detach .benchdiff-base $(BASE)
	cd .benchdiff-base && ../bin/benchjson -benchtime 1x -count $(BENCH_COUNT) -out ../bench-old.json; \
	status=$$?; cd ..; git worktree remove --force .benchdiff-base; \
	exit $$status
	./bin/benchjson -benchtime 1x -count $(BENCH_COUNT) -out bench-new.json
	./bin/benchdiff bench-old.json bench-new.json

# baselines regenerates the golden sim-stat document after an
# intentional functional change (then commit the file).
baselines:
	$(GO) run ./cmd/benchdiff -update-baselines

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
