GO ?= go

.PHONY: build test race bench bench-headline fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_simulator.json: the paper-figure benchmarks
# plus the raw simulator throughput bench, each in a fresh process so
# in-process caches cannot flatter the numbers. CI runs this target and
# uploads the file as an artifact.
bench:
	$(GO) run ./cmd/benchjson -benchtime 1x -out BENCH_simulator.json

# bench-headline additionally covers every paper figure (slower).
bench-headline:
	$(GO) run ./cmd/benchjson -benchtime 1x -out BENCH_simulator.json \
		-bench 'BenchmarkFigure7Traditional|BenchmarkFigure7Aggressive,BenchmarkFigure8a|BenchmarkFigure8b|BenchmarkFigure3|BenchmarkFigure5|BenchmarkHeadline,BenchmarkSimulatorThroughput'

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
