// Package lpbuf's top-level benches regenerate the paper's tables and
// figures (run with `go test -bench=. -benchmem`). Each bench reports
// the relevant headline metric via b.ReportMetric and prints the full
// table once, so a single -bench run reproduces the evaluation.
//
// All benches execute through the internal/runner job scheduler behind
// experiments.Suite: compiles and simulations are singleflighted and
// cached across the shared suite, and BenchmarkSuiteConcurrent
// additionally stresses the concurrent path end to end.
package lpbuf

import (
	"fmt"
	"sync"
	"testing"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
	"lpbuf/internal/experiments"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/vliw"
)

// shared suite so compiled benchmarks are reused across benches.
var (
	suiteOnce sync.Once
	suiteInst *experiments.Suite
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() { suiteInst = experiments.New() })
	return suiteInst
}

// BenchmarkFigure7Traditional regenerates the Figure 7(a) curves.
func BenchmarkFigure7Traditional(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure7("traditional", experiments.BufferSizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(experiments.RenderFig7("Figure 7(a): traditional", rows, experiments.BufferSizes))
	b.ReportMetric(avgAt(rows, 256), "%buffer@256")
	b.ReportMetric(avgAt(rows, 16), "%buffer@16")
}

// BenchmarkFigure7Aggressive regenerates the Figure 7(b) curves.
func BenchmarkFigure7Aggressive(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure7("aggressive", experiments.BufferSizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(experiments.RenderFig7("Figure 7(b): aggressive", rows, experiments.BufferSizes))
	b.ReportMetric(avgAt(rows, 256), "%buffer@256")
	b.ReportMetric(avgAt(rows, 16), "%buffer@16")
}

func avgAt(rows []experiments.Fig7Row, sz int) float64 {
	var sum float64
	for _, r := range rows {
		sum += r.Ratios[sz]
	}
	return 100 * sum / float64(len(rows))
}

// BenchmarkFigure8a regenerates the speedup / code size / fetch table.
func BenchmarkFigure8a(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Fig8aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure8a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(experiments.RenderFig8a(rows))
	var sp float64
	for _, r := range rows {
		sp += r.Speedup
	}
	b.ReportMetric(sp/float64(len(rows)), "avg-speedup")
}

// BenchmarkFigure8b regenerates the normalized fetch-power table.
func BenchmarkFigure8b(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.Fig8bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure8b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(experiments.RenderFig8b(rows))
	var p float64
	for _, r := range rows {
		p += r.TransformedBuffered
	}
	b.ReportMetric(100*p/float64(len(rows)), "%power-transformed")
}

// BenchmarkFigure3 regenerates the predication characterization.
func BenchmarkFigure3(b *testing.B) {
	s := sharedSuite()
	var f3 *experiments.Fig3
	for i := 0; i < b.N; i++ {
		var err error
		f3, err = s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(experiments.RenderFig3(f3))
	b.ReportMetric(float64(f3.MaxLiveMax), "max-live-preds")
}

// BenchmarkFigure5 regenerates the PostFilter buffer traces.
func BenchmarkFigure5(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		for _, sz := range []int{16, 32, 64} {
			f5, err := s.Figure5(sz)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Println(experiments.RenderFig5(f5))
			}
		}
	}
}

// BenchmarkHeadline regenerates the abstract's aggregates.
func BenchmarkHeadline(b *testing.B) {
	s := sharedSuite()
	var h *experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = s.ComputeHeadline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(experiments.RenderHeadline(h))
	b.ReportMetric(h.AvgSpeedup, "avg-speedup")
	b.ReportMetric(100*h.BufferIssueAggressive, "%buffer-transformed")
}

// BenchmarkSuiteConcurrent regenerates Figures 7/8a/8b and the
// headline concurrently on a fresh suite, reporting the runner's
// compile count (must stay at 22 — one per (bench, config) pair) and
// peak in-flight jobs. This is the benchmark-shaped version of the
// subsystem's -race stress test.
func BenchmarkSuiteConcurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewWithOptions(experiments.Options{Workers: 8})
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		launch := func(fn func() error) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := fn(); err != nil {
					errs <- err
				}
			}()
		}
		launch(func() error { _, err := s.Figure7("traditional", experiments.BufferSizes); return err })
		launch(func() error { _, err := s.Figure7("aggressive", experiments.BufferSizes); return err })
		launch(func() error { _, err := s.Figure8a(); return err })
		launch(func() error { _, err := s.Figure8b(); return err })
		launch(func() error { _, err := s.ComputeHeadline(); return err })
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
		snap := s.Metrics()
		b.ReportMetric(float64(snap.CacheMisses), "compiles")
		b.ReportMetric(float64(snap.PeakInFlight), "peak-in-flight")
		b.ReportMetric(float64(snap.RunMisses), "simulations")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed on the
// heaviest benchmark (useful when sizing longer runs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	s := sharedSuite()
	var ops, cycles int64
	for i := 0; i < b.N; i++ {
		r, err := s.RunAt("g724enc", "aggressive", 256)
		if err != nil {
			b.Fatal(err)
		}
		ops = r.Stats.OpsIssued
		cycles = r.Stats.Cycles
	}
	b.ReportMetric(float64(ops), "sim-ops/run")
	b.ReportMetric(float64(cycles), "sim-cycles/run")
}

// BenchmarkSimsPerSec measures sustained batched-sweep throughput in
// verified simulations per second: each iteration runs the heaviest
// benchmark's full Figure 7 buffer sweep through the batch engine
// (core.RunSweep → vliw.RunBatch), the workload lpbufd jobs and figure
// regenerations are made of. It compiles directly through core —
// bypassing the suite's run cache — so every iteration simulates for
// real, and the sims/sec metric feeds the perf gate's throughput
// baseline (cmd/benchdiff -check-throughput).
func BenchmarkSimsPerSec(b *testing.B) {
	bm, ok := suite.ByName("g724enc")
	if !ok {
		b.Fatal("g724enc missing from the benchmark table")
	}
	cfg := core.Aggressive(256)
	cfg.Name = "aggressive"
	cfg.TraceLabel = "g724enc"
	c, err := core.Compile(bm.Build(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	engine := vliw.NewEngine()
	b.ResetTimer()
	sims := 0
	for i := 0; i < b.N; i++ {
		results, err := c.RunSweep(experiments.BufferSizes, engine)
		if err != nil {
			b.Fatal(err)
		}
		sims += len(results)
	}
	b.ReportMetric(float64(sims)/b.Elapsed().Seconds(), "sims/sec")
}

// BenchmarkSimsPerSecPMU is BenchmarkSimsPerSec with guest-PMU
// sampling at the default period. The pair feeds the PMU overhead gate
// (cmd/benchdiff -check-pmu-overhead): sampling may cost at most its
// budgeted fraction of the sampling-off sims/sec.
func BenchmarkSimsPerSecPMU(b *testing.B) {
	bm, ok := suite.ByName("g724enc")
	if !ok {
		b.Fatal("g724enc missing from the benchmark table")
	}
	cfg := core.Aggressive(256)
	cfg.Name = "aggressive"
	cfg.TraceLabel = "g724enc"
	cfg.PMU = &pmu.Config{}
	c, err := core.Compile(bm.Build(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	engine := vliw.NewEngine()
	b.ResetTimer()
	sims := 0
	samples := int64(0)
	for i := 0; i < b.N; i++ {
		results, err := c.RunSweep(experiments.BufferSizes, engine)
		if err != nil {
			b.Fatal(err)
		}
		sims += len(results)
		samples = 0
		for _, r := range results {
			if r.Profile != nil {
				samples += r.Profile.Total()
			}
		}
	}
	b.ReportMetric(float64(sims)/b.Elapsed().Seconds(), "sims/sec")
	b.ReportMetric(float64(samples), "samples/sweep")
}
