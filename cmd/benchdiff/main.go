// Command benchdiff is the perf/stat regression gate over the
// artifacts this repository produces:
//
//   - `benchdiff old.json new.json` compares two cmd/benchjson
//     artifacts (lpbuf/bench/v1 or /v2) with the internal/obs/perfgate
//     statistics core — median/MAD summaries, Mann–Whitney
//     significance, per-metric tolerance bands — prints a
//     benchstat-style table and exits 1 on any significant regression.
//   - `benchdiff -metrics old.json new.json` diffs the registry
//     sections of two lpbuf.metrics/v1 snapshots (counter/gauge/
//     histogram drift between runs), informational only.
//   - `benchdiff -check-baselines` recomputes the deterministic
//     sim-stat document (Figure 7 buffer percentages, 256-op op/fetch
//     counts, normalized fetch energy) and compares it against
//     baselines/simstats.json with explicit tolerances, exiting 1 on
//     functional drift. `-update-baselines` regenerates the file after
//     an intentional change.
//   - `benchdiff -check-throughput BENCH_simulator.json` gates the
//     artifact's sustained batch-engine throughput (BenchmarkSimsPerSec's
//     sims/sec medians) against baselines/throughput.json: a drop
//     beyond tolerance on a matching environment exits 1; while no
//     baseline is recorded, or across environments, the gate is
//     advisory. `-update-throughput` records the artifact as the
//     baseline (run it on the CI bench host, never in a dev container).
//   - `benchdiff -check-pmu-overhead BENCH_simulator.json` holds the
//     sampled guest PMU to its overhead budget by comparing the
//     artifact's BenchmarkSimsPerSec and BenchmarkSimsPerSecPMU
//     medians; no baseline file is involved since both numbers come
//     from one run. `-pmu-tol` overrides the default 10% budget.
//
// Flags: -alpha significance level, -tol metric=frac[,metric=frac...]
// tolerance overrides, -md FILE markdown report (the CI artifact),
// -advisory always exit 0 (CI's advisory tier), -allow-missing ignore
// benchmarks/metrics that vanished.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lpbuf/internal/experiments"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/perfgate"
)

func main() {
	alpha := flag.Float64("alpha", 0.05, "Mann-Whitney significance level")
	tol := flag.String("tol", "", "per-metric tolerance overrides, e.g. 'ns/op=0.08,B/op=0.05'")
	mdOut := flag.String("md", "", "also write the report as markdown to this file")
	advisory := flag.Bool("advisory", false, "report regressions but exit 0 (CI advisory tier)")
	allowMissing := flag.Bool("allow-missing", false, "do not fail on benchmarks/metrics missing from the new artifact")
	metricsMode := flag.Bool("metrics", false, "diff the registry sections of two lpbuf.metrics/v1 snapshots")
	checkBaselines := flag.Bool("check-baselines", false, "recompute sim stats and compare against the baseline file")
	updateBaselines := flag.Bool("update-baselines", false, "recompute sim stats and rewrite the baseline file")
	baselines := flag.String("baselines", "baselines/simstats.json", "sim-stat baseline file")
	bufPctTol := flag.Float64("buffer-pct-tol", 0.5, "baseline tolerance on %buffer values, in percentage points")
	checkThroughput := flag.Bool("check-throughput", false, "gate an artifact's sims/sec against the throughput baseline (advisory while no baseline exists)")
	updateThroughput := flag.Bool("update-throughput", false, "record an artifact's sims/sec as the throughput baseline")
	throughputFile := flag.String("throughput", "baselines/throughput.json", "throughput baseline file")
	throughputTol := flag.Float64("throughput-tol", 0, "relative sims/sec drop tolerated (0 = the sims/sec default policy)")
	checkPMUOverhead := flag.Bool("check-pmu-overhead", false, "gate PMU sampling overhead (SimsPerSec vs SimsPerSecPMU within one artifact)")
	pmuTol := flag.Float64("pmu-tol", 0, "sims/sec fraction PMU sampling may cost (0 = the default 10% budget)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	switch {
	case *updateThroughput:
		if flag.NArg() != 1 {
			fail(fmt.Errorf("usage: benchdiff -update-throughput BENCH_simulator.json"))
		}
		art, err := perfgate.ReadBenchArtifact(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		t, err := perfgate.ThroughputFromArtifact(art)
		if err != nil {
			fail(err)
		}
		if err := t.WriteFile(*throughputFile); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: wrote %s (%.1f sims/sec, %d samples, %s)\n",
			*throughputFile, t.SimsPerSec, len(t.Samples), perfgate.ThroughputSchema)
		return

	case *checkThroughput:
		if flag.NArg() != 1 {
			fail(fmt.Errorf("usage: benchdiff -check-throughput BENCH_simulator.json"))
		}
		art, err := perfgate.ReadBenchArtifact(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		base, err := perfgate.ReadThroughput(*throughputFile)
		if os.IsNotExist(err) {
			// First-run bootstrap: no recorded baseline yet. The gate is
			// advisory until one is recorded on the bench host with
			// -update-throughput (do not record container/dev-machine
			// numbers — the baseline is environment-bound).
			cur, err := perfgate.ThroughputFromArtifact(art)
			if err != nil {
				fail(err)
			}
			msg := fmt.Sprintf("no throughput baseline at %s; measured %.1f sims/sec (advisory; record with -update-throughput on the bench host)",
				*throughputFile, cur.SimsPerSec)
			fmt.Println("benchdiff: " + msg)
			if *mdOut != "" {
				md := "# throughput gate\n\n" + msg + "\n"
				if err := os.WriteFile(*mdOut, []byte(md), 0o644); err != nil {
					fail(err)
				}
			}
			return
		}
		if err != nil {
			fail(err)
		}
		rep, err := perfgate.CompareThroughput(base, art, *throughputTol)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Render())
		if *mdOut != "" {
			if err := os.WriteFile(*mdOut, []byte(rep.Markdown()), 0o644); err != nil {
				fail(err)
			}
		}
		if rep.Regression && !*advisory {
			fmt.Fprintln(os.Stderr, "benchdiff: sims/sec regressed beyond tolerance; if intentional, rerun with -update-throughput")
			os.Exit(1)
		}
		return

	case *checkPMUOverhead:
		if flag.NArg() != 1 {
			fail(fmt.Errorf("usage: benchdiff -check-pmu-overhead BENCH_simulator.json"))
		}
		art, err := perfgate.ReadBenchArtifact(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		rep, err := perfgate.ComparePMUOverhead(art, *pmuTol)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Render())
		if *mdOut != "" {
			if err := os.WriteFile(*mdOut, []byte(rep.Markdown()), 0o644); err != nil {
				fail(err)
			}
		}
		if rep.Breach && !*advisory {
			fmt.Fprintln(os.Stderr, "benchdiff: PMU sampling overhead exceeds its budget; cheapen the sampling path or raise -pmu-tol deliberately")
			os.Exit(1)
		}
		return

	case *updateBaselines:
		doc, err := collectSimStats()
		if err != nil {
			fail(err)
		}
		if err := doc.WriteFile(*baselines); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: wrote %s (%d benchmarks, %s)\n",
			*baselines, len(doc.Benchmarks), perfgate.SimStatsSchema)
		return

	case *checkBaselines:
		want, err := perfgate.ReadSimStats(*baselines)
		if err != nil {
			fail(err)
		}
		got, err := collectSimStatsAt(want.BufferSizes)
		if err != nil {
			fail(err)
		}
		tolBand := perfgate.DefaultBaselineTolerance()
		tolBand.BufferPctPoints = *bufPctTol
		drifts := perfgate.CompareSimStats(want, got, tolBand)
		fmt.Print(perfgate.RenderDrifts(drifts))
		if *mdOut != "" {
			if err := writeDriftMarkdown(*mdOut, *baselines, drifts); err != nil {
				fail(err)
			}
		}
		if len(drifts) > 0 && !*advisory {
			fmt.Fprintln(os.Stderr, "benchdiff: functional drift vs baselines; if intentional, rerun with -update-baselines")
			os.Exit(1)
		}
		return

	case *metricsMode:
		if flag.NArg() != 2 {
			fail(fmt.Errorf("usage: benchdiff -metrics old.json new.json"))
		}
		deltas, err := diffMetrics(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fail(err)
		}
		if len(deltas) == 0 {
			fmt.Println("benchdiff: registries identical")
			return
		}
		fmt.Printf("benchdiff: %d instrument(s) drifted (%s -> %s)\n", len(deltas), flag.Arg(0), flag.Arg(1))
		for _, d := range deltas {
			fmt.Printf("  %-40s %-10s %14g -> %-14g (%+g)\n", d.Name, d.Kind, d.Old, d.New, d.Diff)
		}
		return

	default:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
			fmt.Fprintln(os.Stderr, "       benchdiff -metrics old.json new.json")
			fmt.Fprintln(os.Stderr, "       benchdiff -check-baselines | -update-baselines")
			flag.PrintDefaults()
			os.Exit(2)
		}
		policies, err := parseTol(*tol)
		if err != nil {
			fail(err)
		}
		oldArt, err := perfgate.ReadBenchArtifact(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		newArt, err := perfgate.ReadBenchArtifact(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		rep := perfgate.Compare(oldArt, newArt, perfgate.Options{
			Alpha:        *alpha,
			Policies:     policies,
			AllowMissing: *allowMissing,
		})
		rep.OldLabel = flag.Arg(0)
		rep.NewLabel = flag.Arg(1)
		fmt.Print(rep.Render())
		if *mdOut != "" {
			if err := os.WriteFile(*mdOut, []byte(rep.Markdown()), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "benchdiff: wrote %s\n", *mdOut)
		}
		if rep.Regressions() > 0 && !*advisory {
			os.Exit(1)
		}
	}
}

// collectSimStats runs the suite over the Figure 7 sweep.
func collectSimStats() (*perfgate.SimStats, error) {
	return collectSimStatsAt(experiments.BufferSizes)
}

func collectSimStatsAt(sizes []int) (*perfgate.SimStats, error) {
	return experiments.New().SimStats(sizes)
}

// parseTol parses 'metric=frac,metric=frac' overrides. Overridden
// metrics keep their default direction (unknown metrics stay
// two-sided) but get the explicit band and lose the deterministic
// exactness, since a nonzero band implies expected noise.
func parseTol(s string) (map[string]perfgate.Policy, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]perfgate.Policy{}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tol entry %q (want metric=frac)", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad -tol value %q", val)
		}
		pol := perfgate.Policy{Tol: f, Dir: perfgate.TwoSided}
		if def, ok := perfgate.DefaultPolicies()[name]; ok {
			pol.Dir = def.Dir
		}
		pol.Deterministic = f == 0
		out[name] = pol
	}
	return out, nil
}

// diffMetrics loads two lpbuf.metrics/v1 snapshots and diffs their
// registry sections.
func diffMetrics(oldPath, newPath string) ([]obs.Delta, error) {
	load := func(path string) (obs.RegistrySnapshot, error) {
		var dump struct {
			Schema   string               `json:"schema"`
			Registry obs.RegistrySnapshot `json:"registry"`
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return dump.Registry, err
		}
		if err := json.Unmarshal(data, &dump); err != nil {
			return dump.Registry, fmt.Errorf("%s: %v", path, err)
		}
		if dump.Schema != experiments.MetricsSchema {
			return dump.Registry, fmt.Errorf("%s: schema %q, want %s", path, dump.Schema, experiments.MetricsSchema)
		}
		return dump.Registry, nil
	}
	oldSnap, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return nil, err
	}
	return obs.DiffSnapshot(oldSnap, newSnap), nil
}

// writeDriftMarkdown renders the baseline-check outcome for the CI
// artifact.
func writeDriftMarkdown(path, baselines string, drifts []perfgate.Drift) error {
	var sb strings.Builder
	sb.WriteString("# sim-stat baseline check\n\n")
	fmt.Fprintf(&sb, "Baseline file: `%s`.\n\n", baselines)
	if len(drifts) == 0 {
		sb.WriteString("No functional drift.\n")
	} else {
		fmt.Fprintf(&sb, "**%d drift(s):**\n\n", len(drifts))
		sb.WriteString("| benchmark | config | field | baseline | got | tolerance |\n|---|---|---|---|---|---|\n")
		for _, d := range drifts {
			fmt.Fprintf(&sb, "| %s | %s | %s | %.6g | %.6g | %.6g |\n",
				d.Bench, d.Config, d.Field, d.Want, d.Got, d.Tol)
		}
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
