// Command benchjson runs the repository's top-level benchmarks and
// writes a machine-readable artifact (BENCH_simulator.json by default)
// in the lpbuf/bench/v2 schema: per-metric *sample vectors* — one
// sample per fresh `go test` process — plus an environment
// fingerprint, so cmd/benchdiff can attach variance and significance
// to every comparison instead of diffing two noisy point values.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench groups] [-benchtime 1x] [-count 3] [-out BENCH_simulator.json]
//
// -bench is a comma-separated list of process groups; each group is a
// benchmark-name alternation run in a fresh `go test` process, and
// -count N runs every group in N fresh processes (one sample each).
// Fresh processes keep in-process caches (compile memoization, decoded
// images) from flattering repeat numbers — each sample measures cold
// first-run work — while grouping the two Figure 7 benches together
// preserves the shared-suite amortization (one benchmark-registry
// build, per-config compiles) that a real `go test -bench
// BenchmarkFigure7` run gets. This is the same methodology the
// recorded baselines used.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lpbuf/internal/obs/perfgate"
)

// sample is one benchmark's parsed report from one process.
type sample struct {
	name       string
	iterations int64
	metrics    map[string]float64
}

// benchLine matches `BenchmarkName-8  	  10  	123 ns/op  	5 B/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	bench := flag.String("bench", "BenchmarkFigure7Traditional|BenchmarkFigure7Aggressive,BenchmarkSimulatorThroughput,BenchmarkSimsPerSec|BenchmarkSimsPerSecPMU", "comma-separated process groups; each group is a benchmark-name alternation run in fresh processes")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime")
	count := flag.Int("count", 3, "samples per group; each sample is one fresh go test process")
	out := flag.String("out", "BENCH_simulator.json", "output file")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	flag.Parse()
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -count must be >= 1")
		os.Exit(2)
	}

	host, _ := os.Hostname()
	art := perfgate.BenchArtifact{
		Schema:    perfgate.BenchSchemaV2,
		Generated: time.Now().UTC(),
		Env: perfgate.Env{
			Go:         runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Hostname:   host,
		},
		Benchtime: *benchtime,
		Count:     *count,
		Bench:     *bench,
	}

	// results[name] accumulates sample vectors in first-seen order.
	var order []string
	results := map[string]*perfgate.BenchResult{}
	for _, pat := range strings.Split(*bench, ",") {
		// One fresh process per sample: every sample of every group
		// measures its cold first execution, never a cache-warmed rerun.
		for i := 0; i < *count; i++ {
			samples, err := runOne(*pkg, "^("+pat+")$", *benchtime)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s (sample %d): %v\n", pat, i+1, err)
				os.Exit(1)
			}
			for _, s := range samples {
				r := results[s.name]
				if r == nil {
					r = &perfgate.BenchResult{Name: s.name, Samples: map[string][]float64{}}
					results[s.name] = r
					order = append(order, s.name)
				}
				r.Iterations = s.iterations
				for unit, v := range s.metrics {
					r.Samples[unit] = append(r.Samples[unit], v)
				}
			}
			if i == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %d benchmark(s), %d sample(s) each\n",
					pat, len(samples), *count)
			}
		}
	}
	for _, name := range order {
		art.Results = append(art.Results, *results[name])
	}

	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d samples each)\n", *out, len(art.Results), *count)
}

// runOne executes one `go test -bench` process and parses its reports
// (one sample per benchmark).
func runOne(pkg, pattern, benchtime string) ([]sample, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern,
		"-benchtime", benchtime,
		"-count", "1",
		"-benchmem", "-timeout", "1800s", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w\n%s", err, buf.String())
	}
	var samples []sample
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		s := sample{
			name:       strings.TrimPrefix(trimProcSuffix(m[1]), "Benchmark"),
			iterations: iters,
			metrics:    map[string]float64{},
		}
		// The tail is value/unit pairs: `123 ns/op  5 B/op  2 allocs/op`.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			s.metrics[fields[i+1]] = v
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark output matched %q", pattern)
	}
	return samples, nil
}

// trimProcSuffix strips the -GOMAXPROCS suffix Go appends to names.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
