// Command benchjson runs the repository's top-level benchmarks and
// writes a machine-readable artifact (BENCH_simulator.json by default)
// recording every reported metric — ns/op, allocs/op, and the custom
// paper metrics each bench emits via b.ReportMetric. CI runs it on
// every push and uploads the file, so the simulator's performance
// trajectory is recorded across PRs instead of living in commit
// messages.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench groups] [-benchtime 1x] [-count 1] [-out BENCH_simulator.json]
//
// -bench is a comma-separated list of process groups; each group is a
// benchmark-name alternation run in one fresh `go test` process. Fresh
// processes keep in-process caches (compile memoization, decoded
// images) from flattering repeat numbers, while grouping the two
// Figure 7 benches together preserves the shared-suite amortization
// (one benchmark-registry build, per-config compiles) that a real
// `go test -bench BenchmarkFigure7` run gets — the same methodology
// the recorded baselines used.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed report.
type Result struct {
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op", "allocs/op",
	// "%buffer@256".
	Metrics map[string]float64 `json:"metrics"`
}

// Artifact is the file schema.
type Artifact struct {
	Schema    string    `json:"schema"`
	Generated time.Time `json:"generated"`
	Go        string    `json:"go"`
	OS        string    `json:"os"`
	Arch      string    `json:"arch"`
	Benchtime string    `json:"benchtime"`
	Bench     string    `json:"bench"`
	Results   []Result  `json:"results"`
}

// benchLine matches `BenchmarkName-8  	  10  	123 ns/op  	5 B/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	bench := flag.String("bench", "BenchmarkFigure7Traditional|BenchmarkFigure7Aggressive,BenchmarkSimulatorThroughput", "comma-separated process groups; each group is a benchmark-name alternation run in one fresh process")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime")
	count := flag.Int("count", 1, "passed to go test -count")
	out := flag.String("out", "BENCH_simulator.json", "output file")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	flag.Parse()

	art := Artifact{
		Schema:    "lpbuf/bench/v1",
		Generated: time.Now().UTC(),
		Go:        runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Benchtime: *benchtime,
		Bench:     *bench,
	}

	// One process per group: each group measures its first, cold
	// execution, not a cache-warmed rerun.
	for _, pat := range strings.Split(*bench, ",") {
		results, err := runOne(*pkg, "^("+pat+")$", *benchtime, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", pat, err)
			os.Exit(1)
		}
		art.Results = append(art.Results, results...)
	}

	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(art.Results))
}

// runOne executes one `go test -bench` process and parses its reports.
func runOne(pkg, pattern, benchtime string, count int) ([]Result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern,
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		"-benchmem", "-timeout", "1800s", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w\n%s", err, buf.String())
	}
	var results []Result
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       strings.TrimPrefix(trimProcSuffix(m[1]), "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The tail is value/unit pairs: `123 ns/op  5 B/op  2 allocs/op`.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark output matched %q", pattern)
	}
	return results, nil
}

// trimProcSuffix strips the -GOMAXPROCS suffix Go appends to names.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
