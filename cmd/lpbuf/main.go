// Command lpbuf regenerates the paper's evaluation: buffer-issue
// curves (Figure 7), performance/code-size/fetch ratios (Figure 8a),
// normalized instruction-fetch power (Figure 8b), the predication
// characterization (Figure 3), the g724dec PostFilter buffer traces
// (Figure 5), and the headline aggregates. It can also run a single
// benchmark and print its statistics.
//
// Usage:
//
//	lpbuf -fig 7          # both Figure 7 curves
//	lpbuf -fig 8a|8b|3|5  # one figure
//	lpbuf -headline       # abstract-level aggregates
//	lpbuf -bench g724dec  # one benchmark at -buffer ops
//	lpbuf -all            # everything (EXPERIMENTS.md content)
package main

import (
	"flag"
	"fmt"
	"os"

	"lpbuf/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3, 5, 7, 8a, 8b")
	headline := flag.Bool("headline", false, "print headline aggregates")
	benchName := flag.String("bench", "", "run one benchmark")
	buffer := flag.Int("buffer", 256, "loop buffer size in operations")
	ablate := flag.String("ablate", "", "ablation study for one benchmark")
	dump := flag.String("dump", "", "disassemble a benchmark's scheduled code (aggressive config)")
	widths := flag.String("widths", "", "issue-width sensitivity sweep for one benchmark")
	encoding := flag.Bool("encoding", false, "predication encoding cost table")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	s := experiments.New()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lpbuf:", err)
		os.Exit(1)
	}

	did := false
	if *benchName != "" {
		did = true
		for _, cfg := range []string{"traditional", "aggressive"} {
			r, err := s.RunAt(*benchName, cfg, *buffer)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%s/%s @%d ops: buffer issue %.1f%%, cycles %d, ops %d (%d nullified), static %d ops\n",
				r.Bench, r.Config, r.BufferOps, 100*r.Stats.BufferIssueRatio(),
				r.Stats.Cycles, r.Stats.OpsIssued, r.Stats.OpsNullified, r.StaticOps)
			fmt.Printf("  passes: inlined=%d peeled=%d collapsed=%d converted=%d combined=%d promoted=%d cloops=%d kernels=%d\n",
				r.Pass.Inlined, r.Pass.Peeled, r.Pass.Collapsed, r.Pass.Converted,
				r.Pass.Combined, r.Pass.Promoted, r.Pass.CLoops, r.Pass.ModuloKernels)
		}
	}
	if *fig == "7" || *all {
		did = true
		for _, cfg := range []string{"traditional", "aggressive"} {
			rows, err := s.Figure7(cfg, experiments.BufferSizes)
			if err != nil {
				fail(err)
			}
			title := "Figure 7(a): % instruction issue from loop buffer, traditional optimization"
			if cfg == "aggressive" {
				title = "Figure 7(b): % instruction issue from loop buffer, hyperblock transformations"
			}
			fmt.Println(experiments.RenderFig7(title, rows, experiments.BufferSizes))
		}
	}
	if *fig == "8a" || *all {
		did = true
		rows, err := s.Figure8a()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig8a(rows))
	}
	if *fig == "8b" || *all {
		did = true
		rows, err := s.Figure8b()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig8b(rows))
	}
	if *fig == "3" || *all {
		did = true
		f3, err := s.Figure3()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig3(f3))
	}
	if *fig == "5" || *all {
		did = true
		for _, sz := range []int{16, 32, 64} {
			f5, err := s.Figure5(sz)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.RenderFig5(f5))
		}
	}
	if *dump != "" {
		did = true
		text, err := s.Disasm(*dump)
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
	if *ablate != "" {
		did = true
		rows, err := s.Ablation(*ablate)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderAblation(*ablate, rows))
	}
	if *widths != "" {
		did = true
		rows, err := s.WidthSweep(*widths)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderWidths(*widths, rows))
	}
	if *encoding || *all {
		did = true
		rows, err := s.EncodingCosts()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderEncoding(rows))
	}
	if *headline || *all {
		did = true
		h, err := s.ComputeHeadline()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderHeadline(h))
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
