// Command lpbuf regenerates the paper's evaluation: buffer-issue
// curves (Figure 7), performance/code-size/fetch ratios (Figure 8a),
// normalized instruction-fetch power (Figure 8b), the predication
// characterization (Figure 3), the g724dec PostFilter buffer traces
// (Figure 5), and the headline aggregates. It can also run a single
// benchmark and print its statistics.
//
// Experiments execute through the internal/runner job scheduler:
// compiles and simulations fan out across a bounded worker pool
// (default GOMAXPROCS, -par N to override) with singleflight caching,
// so no (benchmark, config) pair ever compiles twice. The rendered
// tables are byte-identical at any parallelism.
//
// Usage:
//
//	lpbuf -list               # enumerate benchmarks and experiments
//	lpbuf -fig 7              # both Figure 7 curves
//	lpbuf -fig 8a|8b|3|5      # one figure
//	lpbuf -fig shootout       # heuristic vs exact scheduler shoot-out
//	lpbuf -headline           # abstract-level aggregates
//	lpbuf -bench g724dec      # one benchmark at -buffer ops
//	lpbuf -all                # everything (EXPERIMENTS.md content)
//	lpbuf -all -par 8         # same, 8 workers
//	lpbuf -all -json out.json # also write the versioned JSON artifact
//	lpbuf -all -progress      # per-job progress log on stderr
//	lpbuf -verify -fig all    # everything, with phase checkpoints enabled
//	lpbuf -fig 5 -trace-out trace.json   # Chrome/Perfetto trace of the run
//	lpbuf -all -metrics-out metrics.json # counters + per-loop energy split
//	lpbuf -all -pprof :6060   # expvar + net/http/pprof while running
//	lpbuf -fig 5 -submit http://127.0.0.1:7788   # run on a lpbufd instead
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/experiments"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/runner"
	"lpbuf/internal/service"
	"lpbuf/internal/verify"
)

// knownFigures are the accepted -fig values.
var knownFigures = []string{"3", "5", "7", "8a", "8b", "shootout"}

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3, 5, 7, 8a, 8b, shootout")
	schedBackend := flag.String("sched", "heuristic", "modulo-scheduler backend for -bench/-dump/-ablate: heuristic or optimal")
	headline := flag.Bool("headline", false, "print headline aggregates")
	benchName := flag.String("bench", "", "run one benchmark")
	buffer := flag.Int("buffer", 256, "loop buffer size in operations")
	ablate := flag.String("ablate", "", "ablation study for one benchmark")
	dump := flag.String("dump", "", "disassemble a benchmark's scheduled code (aggressive config)")
	widths := flag.String("widths", "", "issue-width sensitivity sweep for one benchmark")
	encoding := flag.Bool("encoding", false, "predication encoding cost table")
	all := flag.Bool("all", false, "regenerate everything")
	doVerify := flag.Bool("verify", false, "run internal/verify phase checkpoints on every compile")
	list := flag.Bool("list", false, "list benchmarks and experiments")
	par := flag.Int("par", 0, "experiment worker parallelism (default GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write a JSON artifact of the computed results to this file")
	progress := flag.Bool("progress", false, "log per-job runner progress to stderr")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this file")
	simProfileOut := flag.String("sim-profile", "", "write a sampled guest PMU profile (lpbuf.simprofile/v1 JSON) to this file")
	simFlameOut := flag.String("sim-flame", "", "write the sampled profile as collapsed-stack (flamegraph) text to this file")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot (registry + per-loop energy) to this file")
	pprofAddr := flag.String("pprof", "", "serve expvar and net/http/pprof on this address while running")
	submit := flag.String("submit", "", "submit the job to a running lpbufd at this base URL instead of executing locally")
	specOut := flag.String("spec-out", "", "with -submit: write the normalized job request JSON to this file")
	statusOut := flag.String("status-out", "", "with -submit: write the final job status JSON to this file")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lpbuf:", err)
		os.Exit(1)
	}

	// -sched selects the modulo-scheduler backend for the single-bench
	// experiments; cfgSuffix maps it onto the experiment config names
	// ("aggressive" -> "aggressive-optimal").
	var cfgSuffix string
	switch *schedBackend {
	case "", "heuristic":
		*schedBackend = ""
	case "optimal":
		cfgSuffix = "-optimal"
	default:
		fail(fmt.Errorf("unknown -sched backend %q (known: heuristic, optimal)", *schedBackend))
	}

	if *list {
		printList()
		return
	}
	if *submit != "" {
		// Remote mode: the daemon runs figure jobs only. Flags that need
		// the local process (single-bench runs, disassembly, pprof) don't
		// round-trip through the job codec — reject them loudly rather
		// than silently running half the request locally. -trace-out does
		// round-trip: the daemon traces every job, and the client fetches
		// the server-side span tree from /v1/jobs/{id}/trace.
		localOnly := map[string]string{
			"bench": *benchName, "ablate": *ablate, "widths": *widths,
			"dump": *dump, "metrics-out": *metricsOut,
			"pprof": *pprofAddr, "sched": *schedBackend,
		}
		for name, val := range localOnly {
			if val != "" {
				fail(fmt.Errorf("-%s is local-only and cannot be combined with -submit", name))
			}
		}
		var figures []string
		switch {
		case *all || *fig == "all":
			figures = []string{"all"}
		default:
			if *fig != "" {
				figures = append(figures, *fig)
			}
			if *encoding {
				figures = append(figures, "encoding")
			}
			if *headline {
				figures = append(figures, "headline")
			}
		}
		if len(figures) == 0 {
			fail(fmt.Errorf("-submit needs figures: -fig N, -all, -encoding or -headline"))
		}
		spec, err := service.SpecForFigures(figures, *doVerify)
		if err != nil {
			fail(err)
		}
		if err := runSubmit(*submit, spec, submitOptions{
			progress:      *progress,
			specOut:       *specOut,
			statusOut:     *statusOut,
			jsonOut:       *jsonOut,
			traceOut:      *traceOut,
			simProfileOut: *simProfileOut,
			simFlameOut:   *simFlameOut,
		}); err != nil {
			fail(err)
		}
		return
	}
	switch *fig {
	case "", "3", "5", "7", "8a", "8b", "shootout":
	case "all":
		// `-fig all` is an alias for -all.
		*fig, *all = "", true
	default:
		fail(fmt.Errorf("unknown figure %q (known: %s, all)", *fig, strings.Join(knownFigures, ", ")))
	}

	opts := experiments.Options{Workers: *par, Verify: *doVerify}
	if *progress {
		opts.OnEvent = runner.LogObserver(os.Stderr)
	}
	// The sampled guest PMU rides every simulation when any profile
	// output is requested; -trace-out enables it too so the Perfetto
	// export gains its counter tracks.
	if *simProfileOut != "" || *simFlameOut != "" || *traceOut != "" {
		opts.PMU = &pmu.Config{}
	}
	var o *obs.Obs
	if *traceOut != "" || *metricsOut != "" || *pprofAddr != "" {
		o = obs.New(obs.Config{
			Metrics:   true,
			Spans:     *traceOut != "",
			SimEvents: *traceOut != "",
		})
		opts.Obs = o
	}
	if *pprofAddr != "" {
		// Publish the live registry snapshot through expvar alongside
		// the default pprof handlers. The server binds synchronously —
		// a bad -pprof address fails fast instead of racing main — and
		// is drained via Shutdown before exit so in-flight profile
		// requests complete and the listener is released.
		expvar.Publish("lpbuf", expvar.Func(func() any { return o.Registry().Snapshot() }))
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fail(fmt.Errorf("pprof: %w", err))
		}
		srv := &http.Server{}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "lpbuf: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "lpbuf: pprof listening on %s\n", ln.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "lpbuf: pprof shutdown:", err)
			}
		}()
	}
	s := experiments.NewWithOptions(opts)
	art := experiments.NewArtifact()

	did := false
	if *benchName != "" {
		did = true
		for _, cfg := range []string{"traditional", "aggressive" + cfgSuffix} {
			r, err := s.RunAt(*benchName, cfg, *buffer)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%s/%s @%d ops: buffer issue %.1f%%, cycles %d, ops %d (%d nullified), static %d ops\n",
				r.Bench, r.Config, r.BufferOps, 100*r.Stats.BufferIssueRatio(),
				r.Stats.Cycles, r.Stats.OpsIssued, r.Stats.OpsNullified, r.StaticOps)
			fmt.Printf("  passes: inlined=%d peeled=%d collapsed=%d converted=%d combined=%d promoted=%d cloops=%d kernels=%d\n",
				r.Pass.Inlined, r.Pass.Peeled, r.Pass.Collapsed, r.Pass.Converted,
				r.Pass.Combined, r.Pass.Promoted, r.Pass.CLoops, r.Pass.ModuloKernels)
		}
	}
	if *fig == "7" || *all {
		did = true
		art.Figure7 = map[string][]experiments.Fig7Row{}
		for _, cfg := range []string{"traditional", "aggressive"} {
			rows, err := s.Figure7(cfg, experiments.BufferSizes)
			if err != nil {
				fail(err)
			}
			art.Figure7[cfg] = rows
			title := "Figure 7(a): % instruction issue from loop buffer, traditional optimization"
			if cfg == "aggressive" {
				title = "Figure 7(b): % instruction issue from loop buffer, hyperblock transformations"
			}
			fmt.Println(experiments.RenderFig7(title, rows, experiments.BufferSizes))
		}
	}
	if *fig == "8a" || *all {
		did = true
		rows, err := s.Figure8a()
		if err != nil {
			fail(err)
		}
		art.Figure8a = rows
		fmt.Println(experiments.RenderFig8a(rows))
	}
	if *fig == "8b" || *all {
		did = true
		rows, err := s.Figure8b()
		if err != nil {
			fail(err)
		}
		art.Figure8b = rows
		fmt.Println(experiments.RenderFig8b(rows))
	}
	if *fig == "3" || *all {
		did = true
		f3, err := s.Figure3()
		if err != nil {
			fail(err)
		}
		art.Figure3 = f3
		fmt.Println(experiments.RenderFig3(f3))
	}
	if *fig == "5" || *all {
		did = true
		for _, sz := range []int{16, 32, 64} {
			f5, err := s.Figure5(sz)
			if err != nil {
				fail(err)
			}
			art.Figure5 = append(art.Figure5, f5)
			fmt.Println(experiments.RenderFig5(f5))
		}
	}
	if *fig == "shootout" || *all {
		did = true
		rows, err := s.Shootout()
		if err != nil {
			fail(err)
		}
		art.Shootout = rows
		fmt.Println(experiments.RenderShootout(rows))
	}
	if *dump != "" {
		did = true
		text, err := s.DisasmConfig(*dump, "aggressive"+cfgSuffix)
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
	if *ablate != "" {
		did = true
		rows, err := s.AblationBackend(*ablate, *schedBackend)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderAblation(*ablate, rows))
	}
	if *widths != "" {
		did = true
		rows, err := s.WidthSweep(*widths)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderWidths(*widths, rows))
	}
	if *encoding || *all {
		did = true
		rows, err := s.EncodingCosts()
		if err != nil {
			fail(err)
		}
		art.Encoding = rows
		fmt.Println(experiments.RenderEncoding(rows))
	}
	if *headline || *all {
		did = true
		h, err := s.ComputeHeadline()
		if err != nil {
			fail(err)
		}
		art.Headline = h
		fmt.Println(experiments.RenderHeadline(h))
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
	if *doVerify || verify.Forced() {
		st := verify.Snapshot()
		fmt.Fprintf(os.Stderr, "lpbuf: verify: %d checkpoints, %d invariant violations\n",
			st.Checkpoints, st.Violations)
	}
	if *jsonOut != "" {
		snap := s.Metrics()
		art.Runner = &snap
		if o != nil {
			reg := o.Registry().Snapshot()
			art.Metrics = &reg
		}
		if err := art.WriteFile(*jsonOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", *jsonOut, experiments.ArtifactSchema)
	}
	if *metricsOut != "" {
		if err := s.MetricsDump().WriteFile(*metricsOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", *metricsOut, experiments.MetricsSchema)
	}
	var simDoc *pmu.Document
	if opts.PMU != nil {
		simDoc = s.SimProfiles()
	}
	if *simProfileOut != "" {
		if simDoc == nil {
			fail(fmt.Errorf("-sim-profile: no simulations ran, nothing to profile"))
		}
		if err := simDoc.WriteFile(*simProfileOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", *simProfileOut, pmu.Schema)
	}
	if *simFlameOut != "" {
		if simDoc == nil {
			fail(fmt.Errorf("-sim-flame: no simulations ran, nothing to profile"))
		}
		if err := os.WriteFile(*simFlameOut, []byte(simDoc.Collapsed()), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (collapsed stacks)\n", *simFlameOut)
	}
	if *traceOut != "" {
		var counters []obs.CounterSeries
		if simDoc != nil {
			counters = simDoc.CounterSeries(nil)
		}
		if err := obs.WriteChromeTraceCountersFile(*traceOut, o.Trace, o.Sim, counters); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (chrome trace-event JSON)\n", *traceOut)
	}
}

// printList enumerates the benchmark suite and every experiment the
// CLI can regenerate.
func printList() {
	fmt.Println("benchmarks (Table 1 order):")
	for _, b := range suite.All() {
		fmt.Printf("  %s\n", b.Name)
	}
	fmt.Println()
	fmt.Println("experiments:")
	fmt.Println("  -fig 3          predication characterization (consumers, durations, overlap)")
	fmt.Println("  -fig 5          g724dec post-filter buffer traces (16/32/64-op buffers)")
	fmt.Println("  -fig 7          buffer issue vs buffer size, both configs")
	fmt.Println("  -fig 8a         speedup / code size / fetch ratios at 256 ops")
	fmt.Println("  -fig 8b         normalized instruction-fetch power at 256 ops")
	fmt.Println("  -fig shootout   heuristic vs exact modulo-scheduler shoot-out (II gap, proofs)")
	fmt.Println("  -encoding       predication encoding cost (full guard fields vs slot model)")
	fmt.Println("  -headline       abstract-level aggregates")
	fmt.Println("  -bench NAME     one benchmark at -buffer ops, both configs")
	fmt.Println("  -ablate NAME    aggressive pipeline with one pass disabled at a time")
	fmt.Println("  -widths NAME    2/4/8-wide issue-width sensitivity sweep")
	fmt.Println("  -dump NAME      scheduled-code disassembly (aggressive config)")
	fmt.Println("  -sched BACKEND  modulo scheduler for -bench/-dump/-ablate: heuristic|optimal")
	fmt.Println("  -all            every figure and table (EXPERIMENTS.md content)")
	fmt.Println()
	fmt.Println("execution: -par N workers, -json FILE artifact, -progress job log,")
	fmt.Println("           -verify phase checkpoints (also: build -tags verify)")
	fmt.Println("observability: -trace-out FILE Chrome/Perfetto trace (with PMU counter")
	fmt.Println("           tracks), -sim-profile FILE sampled guest PMU profile JSON,")
	fmt.Println("           -sim-flame FILE collapsed flamegraph stacks, -metrics-out FILE")
	fmt.Println("           counters + per-loop energy snapshot, -pprof ADDR expvar/pprof")
	fmt.Println("remote:    -submit URL run figure jobs on a lpbufd (with -spec-out,")
	fmt.Println("           -status-out, -json, -progress; -trace-out fetches the")
	fmt.Println("           daemon's per-job span tree, -sim-profile/-sim-flame its")
	fmt.Println("           sampled guest profile); see SERVICE.md")
}
