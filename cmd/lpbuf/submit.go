package main

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"lpbuf/internal/experiments"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/service"
)

// submitOptions carries the client-side knobs of -submit mode.
type submitOptions struct {
	progress      bool   // stream SSE progress to stderr
	specOut       string // write the normalized lpbuf.job/v1 request here
	statusOut     string // write the final lpbuf.jobstatus/v1 response here
	jsonOut       string // write the artifact bytes verbatim here
	traceOut      string // write the server-side span tree (Perfetto JSON) here
	simProfileOut string // write the server-side sampled PMU profile here
	simFlameOut   string // render that profile as collapsed stacks here
}

// pollInterval paces status polling when -progress (SSE) is off.
const pollInterval = 250 * time.Millisecond

// runSubmit posts the spec to a running lpbufd, follows the job to a
// terminal state, fetches the artifact and renders the figures locally
// — the remote counterpart of running the same flags in-process. The
// artifact bytes are returned exactly as served (content-addressed
// stores are byte-exact; re-encoding would defeat cmp-based checks).
func runSubmit(baseURL string, spec service.JobSpec, opts submitOptions) error {
	base := strings.TrimRight(baseURL, "/")
	client := &http.Client{}

	if opts.specOut != "" {
		norm, err := spec.Normalized()
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(norm, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.specOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", opts.specOut, service.JobSchema)
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	// Propagate a client-minted trace ID so the server's span tree for
	// this job is correlatable end to end; the daemon echoes it back in
	// the same header and stamps it on the root span.
	traceID := clientTraceID()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.TraceHeader, traceID)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return fmt.Errorf("submit: server said %s (retry after %ss): %s", resp.Status, ra, msg)
		}
		return fmt.Errorf("submit: server said %s: %s", resp.Status, msg)
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("submit: bad status response: %w", err)
	}
	fmt.Fprintf(os.Stderr, "lpbuf: submitted %s (key %s…, trace %s)\n", st.ID, st.Key[:12], traceID)

	if opts.progress {
		if err := streamEvents(client, base, st.ID); err != nil {
			// Progress is advisory; fall through to polling on error.
			fmt.Fprintf(os.Stderr, "lpbuf: progress stream: %v\n", err)
		}
	}
	st, err = waitTerminal(client, base, st.ID)
	if err != nil {
		return err
	}
	if opts.statusOut != "" {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.statusOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", opts.statusOut, service.StatusSchema)
	}
	switch st.State {
	case service.StateDone:
	case service.StateFailed:
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	default:
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}

	artResp, err := client.Get(base + "/v1/jobs/" + st.ID + "/artifact")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	artBytes, err := io.ReadAll(artResp.Body)
	artResp.Body.Close()
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if artResp.StatusCode != http.StatusOK {
		return fmt.Errorf("artifact: server said %s: %s", artResp.Status, strings.TrimSpace(string(artBytes)))
	}
	if via := artResp.Header.Get("X-Lpbuf-Cache"); via != "" {
		fmt.Fprintf(os.Stderr, "lpbuf: artifact %s (%d bytes, %s)\n", st.ID, len(artBytes), via)
	}

	art, err := experiments.DecodeArtifact(artBytes)
	if err != nil {
		return err
	}
	renderArtifact(art)

	if opts.jsonOut != "" {
		if err := os.WriteFile(opts.jsonOut, artBytes, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", opts.jsonOut, experiments.ArtifactSchema)
	}
	if opts.traceOut != "" {
		if err := fetchTrace(client, base, st.ID, opts.traceOut); err != nil {
			return err
		}
	}
	if opts.simProfileOut != "" || opts.simFlameOut != "" {
		if err := fetchSimProfile(client, base, st.ID, opts.simProfileOut, opts.simFlameOut); err != nil {
			return err
		}
	}
	return nil
}

// clientTraceID mints a random trace ID (16 hex chars) for correlating
// the submission with the daemon's per-job span tree.
func clientTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degenerate fallback: let the server mint one instead.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// fetchTrace downloads the job's server-side span tree (Perfetto JSON)
// and writes it verbatim to path.
func fetchTrace(client *http.Client, base, id, path string) error {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: server said %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (server trace %s)\n", path, resp.Header.Get(service.TraceHeader))
	return nil
}

// fetchSimProfile downloads the job's sampled PMU profile
// (lpbuf.simprofile/v1 JSON), writes it verbatim to profilePath (when
// set) and renders it as collapsed-stack flamegraph text to flamePath
// (when set). Jobs served entirely from the artifact store carry no
// profile (the daemon answers 404); that surfaces here as an error
// rather than an empty file.
func fetchSimProfile(client *http.Client, base, id, profilePath, flamePath string) error {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/simprofile")
	if err != nil {
		return fmt.Errorf("simprofile: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("simprofile: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("simprofile: server said %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if profilePath != "" {
		if err := os.WriteFile(profilePath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (%s)\n", profilePath, pmu.Schema)
	}
	if flamePath != "" {
		doc, err := pmu.Decode(data)
		if err != nil {
			return fmt.Errorf("simprofile: %w", err)
		}
		if err := os.WriteFile(flamePath, []byte(doc.Collapsed()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lpbuf: wrote %s (collapsed stacks)\n", flamePath)
	}
	return nil
}

// streamEvents follows the job's SSE progress stream, echoing events to
// stderr until the server closes it (terminal state).
func streamEvents(client *http.Client, base, id string) error {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server said %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			continue
		}
		switch e.Type {
		case "state":
			fmt.Fprintf(os.Stderr, "lpbuf: %s -> %s\n", e.JobID, e.State)
		case "progress":
			fmt.Fprintf(os.Stderr, "lpbuf: %s %s %s (%.1fms)\n", e.JobID, e.Phase, e.Key, e.ElapsedMS)
		}
	}
	return sc.Err()
}

// waitTerminal polls the job's status until it reaches a terminal
// state.
func waitTerminal(client *http.Client, base, id string) (service.JobStatus, error) {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return service.JobStatus{}, fmt.Errorf("status: %w", err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return service.JobStatus{}, fmt.Errorf("status: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return service.JobStatus{}, fmt.Errorf("status: server said %s: %s",
				resp.Status, strings.TrimSpace(string(data)))
		}
		var st service.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return service.JobStatus{}, fmt.Errorf("status: %w", err)
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(pollInterval)
	}
}

// renderArtifact prints whichever sections the artifact carries, in the
// same order and format as a local run.
func renderArtifact(art *experiments.Artifact) {
	if art.Figure7 != nil {
		for _, cfg := range []string{"traditional", "aggressive"} {
			rows, ok := art.Figure7[cfg]
			if !ok {
				continue
			}
			title := "Figure 7(a): % instruction issue from loop buffer, traditional optimization"
			if cfg == "aggressive" {
				title = "Figure 7(b): % instruction issue from loop buffer, hyperblock transformations"
			}
			fmt.Println(experiments.RenderFig7(title, rows, art.BufferSizes))
		}
	}
	if art.Figure8a != nil {
		fmt.Println(experiments.RenderFig8a(art.Figure8a))
	}
	if art.Figure8b != nil {
		fmt.Println(experiments.RenderFig8b(art.Figure8b))
	}
	if art.Figure3 != nil {
		fmt.Println(experiments.RenderFig3(art.Figure3))
	}
	for _, f5 := range art.Figure5 {
		fmt.Println(experiments.RenderFig5(f5))
	}
	if art.Encoding != nil {
		fmt.Println(experiments.RenderEncoding(art.Encoding))
	}
	if art.Headline != nil {
		fmt.Println(experiments.RenderHeadline(art.Headline))
	}
}
