// Command lpbufd is the resident experiment service: an HTTP server
// that accepts lpbuf.job/v1 experiment jobs, executes them through the
// internal/runner worker pool with singleflight compile caching,
// streams per-job progress over SSE, and serves results from a
// content-addressed artifact store so repeated jobs cost one disk read.
//
// Usage:
//
//	lpbufd                        # defaults (127.0.0.1:7788, ./lpbufd-store)
//	lpbufd -config lpbufd.json    # JSON config file
//	lpbufd -listen :8080 -store /var/lib/lpbufd -max-jobs 4
//
// Flags override the config file. SIGINT/SIGTERM drain gracefully:
// queued jobs are canceled, in-flight jobs complete, then the listener
// shuts down. SIGHUP re-reads -config and hot-applies the admission
// fields (queue_depth, max_per_client, workers, verify); startup-bound
// fields (listen, store_dir, max_jobs) are reported and ignored.
//
// API (see SERVICE.md):
//
//	POST   /v1/jobs                submit (?wait=1 blocks until terminal)
//	GET    /v1/jobs                list
//	GET    /v1/jobs/{id}           status
//	DELETE /v1/jobs/{id}           cancel
//	GET    /v1/jobs/{id}/events    SSE progress
//	GET    /v1/jobs/{id}/artifact  lpbuf.artifact/v1 result
//	GET    /metrics                obs registry snapshot
//	GET    /healthz                liveness / drain status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lpbuf/internal/service"
)

// drainTimeout bounds how long shutdown waits for in-flight jobs.
const drainTimeout = 2 * time.Minute

func main() {
	configPath := flag.String("config", "", "JSON config file (flags override it)")
	listen := flag.String("listen", "", "HTTP listen address")
	storeDir := flag.String("store", "", "artifact store directory")
	maxJobs := flag.Int("max-jobs", 0, "concurrently executing jobs")
	workers := flag.Int("workers", -1, "per-job runner parallelism (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "queued-job admission bound")
	maxPerClient := flag.Int("max-per-client", 0, "per-client active-job cap")
	doVerify := flag.Bool("verify", false, "phase checkpoints on every compile")
	flag.Parse()

	logger := log.New(os.Stderr, "lpbufd: ", log.LstdFlags)
	fail := func(err error) {
		logger.Fatal(err)
	}

	cfg := service.DefaultConfig()
	if *configPath != "" {
		var err error
		if cfg, err = service.LoadConfig(*configPath); err != nil {
			fail(err)
		}
	}
	// Flags the user actually set override the file; untouched flags
	// keep the file's (or default) values.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "listen":
			cfg.Listen = *listen
		case "store":
			cfg.StoreDir = *storeDir
		case "max-jobs":
			cfg.MaxJobs = *maxJobs
		case "workers":
			cfg.Workers = *workers
		case "queue":
			cfg.QueueDepth = *queueDepth
		case "max-per-client":
			cfg.MaxPerClient = *maxPerClient
		case "verify":
			cfg.Verify = *doVerify
		}
	})

	srv, err := service.New(cfg)
	if err != nil {
		fail(err)
	}
	srv.SetLogger(logger.Printf)
	srv.Start()

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (store %s, max-jobs %d, queue %d)",
		ln.Addr(), cfg.StoreDir, cfg.MaxJobs, cfg.QueueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fail(err)
			}
			return
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if *configPath == "" {
					logger.Printf("SIGHUP ignored: no -config file to reload")
					continue
				}
				ignored, err := srv.ReloadFile(*configPath)
				if err != nil {
					logger.Printf("reload %s failed: %v (keeping current config)", *configPath, err)
					continue
				}
				note := ""
				if len(ignored) > 0 {
					note = fmt.Sprintf(" (restart needed for: %s)", strings.Join(ignored, ", "))
				}
				logger.Printf("reloaded %s%s", *configPath, note)
				continue
			}

			logger.Printf("%s: draining (in-flight jobs finish, queued jobs cancel)", sig)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			if err := srv.Drain(ctx); err != nil {
				logger.Printf("drain: %v", err)
			}
			if err := httpSrv.Shutdown(ctx); err != nil {
				logger.Printf("shutdown: %v", err)
			}
			cancel()
			logger.Printf("drained; bye")
			return
		}
	}
}
