// Command lpbufd is the resident experiment service: an HTTP server
// that accepts lpbuf.job/v1 experiment jobs, executes them through the
// internal/runner worker pool with singleflight compile caching,
// streams per-job progress over SSE, and serves results from a
// content-addressed artifact store so repeated jobs cost one disk read.
//
// Usage:
//
//	lpbufd                        # defaults (127.0.0.1:7788, ./lpbufd-store)
//	lpbufd -config lpbufd.json    # JSON config file
//	lpbufd -listen :8080 -store /var/lib/lpbufd -max-jobs 4
//	lpbufd -log-format json -log-level debug
//
// Flags override the config file. SIGINT/SIGTERM drain gracefully:
// queued jobs are canceled, in-flight jobs complete, then the listener
// shuts down. SIGHUP re-reads -config and hot-applies the admission
// fields (queue_depth, max_per_client, workers, verify), logging one
// structured record listing which fields changed and which
// startup-bound fields (listen, store_dir, max_jobs) were ignored.
//
// Logs are leveled and structured (-log-format text|json, -log-level
// debug|info|warn|error); every HTTP request logs one record with its
// route, status, duration and trace ID.
//
// API (see SERVICE.md):
//
//	POST   /v1/jobs                submit (?wait=1 blocks until terminal)
//	GET    /v1/jobs                list
//	GET    /v1/jobs/{id}           status
//	DELETE /v1/jobs/{id}           cancel
//	GET    /v1/jobs/{id}/events    SSE progress
//	GET    /v1/jobs/{id}/artifact  lpbuf.artifact/v1 result
//	GET    /v1/jobs/{id}/trace     per-job span tree (Perfetto JSON)
//	GET    /metrics                obs registry snapshot (?format=prom)
//	GET    /debug/flightrecorder   recent transitions and rejections
//	GET    /healthz                liveness / drain status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lpbuf/internal/service"
)

// drainTimeout bounds how long shutdown waits for in-flight jobs.
const drainTimeout = 2 * time.Minute

// buildLogger constructs the daemon's structured logger from the
// -log-format / -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
}

func main() {
	configPath := flag.String("config", "", "JSON config file (flags override it)")
	listen := flag.String("listen", "", "HTTP listen address")
	storeDir := flag.String("store", "", "artifact store directory")
	maxJobs := flag.Int("max-jobs", 0, "concurrently executing jobs")
	workers := flag.Int("workers", -1, "per-job runner parallelism (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "queued-job admission bound")
	maxPerClient := flag.Int("max-per-client", 0, "per-client active-job cap")
	doVerify := flag.Bool("verify", false, "phase checkpoints on every compile")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpbufd:", err)
		os.Exit(1)
	}
	fail := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	cfg := service.DefaultConfig()
	if *configPath != "" {
		if cfg, err = service.LoadConfig(*configPath); err != nil {
			fail(err)
		}
	}
	// Flags the user actually set override the file; untouched flags
	// keep the file's (or default) values.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "listen":
			cfg.Listen = *listen
		case "store":
			cfg.StoreDir = *storeDir
		case "max-jobs":
			cfg.MaxJobs = *maxJobs
		case "workers":
			cfg.Workers = *workers
		case "queue":
			cfg.QueueDepth = *queueDepth
		case "max-per-client":
			cfg.MaxPerClient = *maxPerClient
		case "verify":
			cfg.Verify = *doVerify
		}
	})

	srv, err := service.New(cfg)
	if err != nil {
		fail(err)
	}
	srv.SetSlog(logger)
	srv.Start()

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"store", cfg.StoreDir,
		"max_jobs", cfg.MaxJobs,
		"queue_depth", cfg.QueueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fail(err)
			}
			return
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if *configPath == "" {
					logger.Warn("SIGHUP ignored: no -config file to reload")
					continue
				}
				changed, ignored, err := srv.ReloadFile(*configPath)
				if err != nil {
					logger.Error("config reload failed (keeping current config)",
						"path", *configPath, "err", err)
					continue
				}
				// One record carries the whole reload outcome: what took
				// effect and which startup-bound edits need a restart.
				logger.Info("config reloaded",
					"path", *configPath,
					"changed", changed,
					"ignored_needs_restart", ignored)
				continue
			}

			logger.Info("draining (in-flight jobs finish, queued jobs cancel)",
				"signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			if err := srv.Drain(ctx); err != nil {
				logger.Error("drain failed", "err", err)
			}
			if err := httpSrv.Shutdown(ctx); err != nil {
				logger.Error("shutdown failed", "err", err)
			}
			cancel()
			logger.Info("drained; bye")
			return
		}
	}
}
