// Command obscheck validates the observability artifacts `lpbuf`
// writes: a Chrome trace-event JSON (-trace), a metrics snapshot
// (-metrics), and a cmd/benchjson bench artifact (-bench, schema
// lpbuf/bench/v1 or /v2). It is the CI gate that keeps every format
// loadable — the trace in Perfetto / chrome://tracing, the metrics and
// bench files by downstream tooling pinned to their schemas.
//
// Usage:
//
//	obscheck -trace trace.json -metrics metrics.json -bench BENCH_simulator.json
//
// Exit status is non-zero with a diagnostic on the first violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lpbuf/internal/obs/perfgate"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	metricsPath := flag.String("metrics", "", "lpbuf.metrics/v1 snapshot to validate")
	benchPath := flag.String("bench", "", "lpbuf/bench/v1 or /v2 artifact to validate")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
		os.Exit(1)
	}
	if *tracePath == "" && *metricsPath == "" && *benchPath == "" {
		fail("nothing to check; pass -trace, -metrics and/or -bench")
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			fail("%s: %v", *tracePath, err)
		}
		fmt.Printf("obscheck: %s ok\n", *tracePath)
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fail("%s: %v", *metricsPath, err)
		}
		fmt.Printf("obscheck: %s ok\n", *metricsPath)
	}
	if *benchPath != "" {
		if err := checkBench(*benchPath); err != nil {
			fail("%s: %v", *benchPath, err)
		}
	}
}

// checkBench validates a bench artifact through the same parser
// cmd/benchdiff uses, so "obscheck passes" guarantees "benchdiff can
// read it". v1 artifacts are accepted and normalized to single-sample
// vectors; v2 artifacts additionally get their environment fingerprint
// and sample counts echoed for the CI log.
func checkBench(path string) error {
	art, err := perfgate.ReadBenchArtifact(path)
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: %s ok (%s, %d benchmarks, count=%d, go=%s %s/%s)\n",
		path, art.Schema, len(art.Results), art.Count, art.Env.Go, art.Env.OS, art.Env.Arch)
	return nil
}

// traceEvent mirrors the fields every Chrome trace event must carry.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	var compile, sim bool
	for i, e := range file.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		switch e.Ph {
		case "X", "i", "B", "E", "M":
		default:
			return fmt.Errorf("event %d (%q) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 {
			return fmt.Errorf("event %d (%q) has negative ts", i, e.Name)
		}
		if e.Ph == "X" && e.Dur <= 0 {
			return fmt.Errorf("complete event %d (%q) has non-positive dur", i, e.Name)
		}
		if e.Pid == 0 || e.Tid == 0 {
			return fmt.Errorf("event %d (%q) missing pid/tid", i, e.Name)
		}
		if e.Name == "compile" {
			compile = true
		}
		if e.Pid == 2 {
			sim = true
		}
	}
	if !compile {
		return fmt.Errorf("no compile-phase span (name %q)", "compile")
	}
	if !sim {
		return fmt.Errorf("no simulator events (pid 2)")
	}
	return nil
}

func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var dump struct {
		Schema   string `json:"schema"`
		Registry *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"registry"`
		Runner *struct {
			JobsRun int64 `json:"jobs_run"`
		} `json:"runner"`
		Loops []struct {
			Run        string `json:"run"`
			Loop       string `json:"loop"`
			BufferHits *int64 `json:"buffer_hits"`
			Energy     *struct {
				Total float64 `json:"total_energy"`
			} `json:"energy"`
		} `json:"loops"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if dump.Schema != "lpbuf.metrics/v1" {
		return fmt.Errorf("schema %q, want lpbuf.metrics/v1", dump.Schema)
	}
	if dump.Registry == nil {
		return fmt.Errorf("missing registry section")
	}
	for _, key := range []string{"sim.runs", "sim.cycles", "sim.loop.buffer_hits", "sim.loop.buffer_misses"} {
		if _, ok := dump.Registry.Counters[key]; !ok {
			return fmt.Errorf("registry missing counter %q", key)
		}
	}
	if dump.Registry.Counters["sim.runs"] <= 0 {
		return fmt.Errorf("sim.runs = %d, want > 0", dump.Registry.Counters["sim.runs"])
	}
	// The runner section is always present; jobs_run may be 0 when the
	// invocation used the suite's direct path rather than the job DAG.
	if dump.Runner == nil {
		return fmt.Errorf("missing runner section")
	}
	if len(dump.Loops) == 0 {
		return fmt.Errorf("no per-loop attribution rows")
	}
	for i, l := range dump.Loops {
		if l.Run == "" || l.Loop == "" {
			return fmt.Errorf("loop row %d missing run/loop", i)
		}
		if l.BufferHits == nil {
			return fmt.Errorf("loop row %d missing buffer_hits", i)
		}
		if l.Energy == nil {
			return fmt.Errorf("loop row %d missing energy attribution", i)
		}
	}
	return nil
}
