// Command obscheck validates the machine-readable artifacts the lpbuf
// tools write: a Chrome trace-event JSON (-trace), a metrics snapshot
// (-metrics), a Prometheus text exposition page (-prom, what lpbufd
// serves at /metrics?format=prom), a cmd/benchjson bench artifact
// (-bench, schema lpbuf/bench/v1 or /v2), a result artifact
// (-artifact, schema lpbuf.artifact/v1), a sampled guest-PMU profile
// (-simprofile, schema lpbuf.simprofile/v1), and lpbufd's job codec in
// both directions (-job-request lpbuf.job/v1, -job-status
// lpbuf.jobstatus/v1). It is the CI gate that keeps every format
// loadable — the trace in Perfetto / chrome://tracing, the prom page
// by any Prometheus scraper, the rest by downstream tooling pinned to
// their schemas.
//
// Usage:
//
//	obscheck -trace trace.json -metrics metrics.json -bench BENCH_simulator.json
//	obscheck -artifact results.json -job-request spec.json -job-status status.json
//	obscheck -prom metrics.prom -simprofile simprofile.json
//
// Exit status is non-zero with a diagnostic on the first violation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lpbuf/internal/experiments"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/perfgate"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/service"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	metricsPath := flag.String("metrics", "", "lpbuf.metrics/v1 snapshot to validate")
	promPath := flag.String("prom", "", "Prometheus text exposition page to validate")
	benchPath := flag.String("bench", "", "lpbuf/bench/v1 or /v2 artifact to validate")
	artifactPath := flag.String("artifact", "", "lpbuf.artifact/v1 result artifact to validate")
	jobReqPath := flag.String("job-request", "", "lpbuf.job/v1 job request to validate")
	jobStatusPath := flag.String("job-status", "", "lpbuf.jobstatus/v1 job status to validate")
	simProfilePath := flag.String("simprofile", "", "lpbuf.simprofile/v1 sampled PMU profile to validate")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
		os.Exit(1)
	}
	if *tracePath == "" && *metricsPath == "" && *promPath == "" && *benchPath == "" &&
		*artifactPath == "" && *jobReqPath == "" && *jobStatusPath == "" && *simProfilePath == "" {
		fail("nothing to check; pass -trace, -metrics, -prom, -bench, -artifact, -job-request, -job-status and/or -simprofile")
	}
	if *artifactPath != "" {
		if err := checkArtifact(*artifactPath); err != nil {
			fail("%s: %v", *artifactPath, err)
		}
	}
	if *jobReqPath != "" {
		if err := checkJobRequest(*jobReqPath); err != nil {
			fail("%s: %v", *jobReqPath, err)
		}
	}
	if *jobStatusPath != "" {
		if err := checkJobStatus(*jobStatusPath); err != nil {
			fail("%s: %v", *jobStatusPath, err)
		}
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			fail("%s: %v", *tracePath, err)
		}
		fmt.Printf("obscheck: %s ok\n", *tracePath)
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fail("%s: %v", *metricsPath, err)
		}
		fmt.Printf("obscheck: %s ok\n", *metricsPath)
	}
	if *promPath != "" {
		if err := checkProm(*promPath); err != nil {
			fail("%s: %v", *promPath, err)
		}
	}
	if *benchPath != "" {
		if err := checkBench(*benchPath); err != nil {
			fail("%s: %v", *benchPath, err)
		}
	}
	if *simProfilePath != "" {
		if err := checkSimProfile(*simProfilePath); err != nil {
			fail("%s: %v", *simProfilePath, err)
		}
	}
}

// checkSimProfile validates a lpbuf.simprofile/v1 document through the
// same decoder `lpbuf -sim-profile` consumers use, then enforces the
// schema invariants (sample-count bookkeeping, state vocabulary,
// monotone counter series).
func checkSimProfile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := pmu.Decode(data)
	if err != nil {
		return err
	}
	if err := doc.Validate(); err != nil {
		return err
	}
	var samples int64
	for _, p := range doc.Profiles {
		samples += p.TotalSamples
	}
	fmt.Printf("obscheck: %s ok (%s, %d profiles, %d samples, period %d)\n",
		path, pmu.Schema, len(doc.Profiles), samples, doc.Sampling.Period)
	return nil
}

// checkArtifact validates a lpbuf.artifact/v1 result artifact through
// the same decoder `lpbuf -submit` uses, and requires at least one
// result section — an artifact with only its header carries no
// evidence any experiment ran.
func checkArtifact(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	art, err := experiments.DecodeArtifact(data)
	if err != nil {
		return err
	}
	sections := 0
	for _, present := range []bool{
		art.Figure7 != nil, art.Figure8a != nil, art.Figure8b != nil,
		art.Figure3 != nil, art.Figure5 != nil, art.Encoding != nil,
		art.Headline != nil, art.Shootout != nil,
	} {
		if present {
			sections++
		}
	}
	if sections == 0 {
		return fmt.Errorf("artifact has no result sections")
	}
	if len(art.Benchmarks) == 0 {
		return fmt.Errorf("artifact lists no benchmarks")
	}
	fmt.Printf("obscheck: %s ok (%s, %d sections, %d benchmarks)\n",
		path, art.Schema, sections, len(art.Benchmarks))
	return nil
}

// checkJobRequest validates a lpbuf.job/v1 spec: it must decode with no
// unknown fields and normalize cleanly, which is exactly the admission
// path a lpbufd submission takes.
func checkJobRequest(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec service.JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("not a valid job spec: %v", err)
	}
	norm, err := spec.Normalized()
	if err != nil {
		return fmt.Errorf("spec does not normalize: %v", err)
	}
	key, err := norm.Key()
	if err != nil {
		return fmt.Errorf("spec does not key: %v", err)
	}
	fmt.Printf("obscheck: %s ok (%s, figures %v, key %s…)\n",
		path, service.JobSchema, norm.Figures, key[:12])
	return nil
}

// checkJobStatus validates a lpbuf.jobstatus/v1 response.
func checkJobStatus(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st service.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("not a valid job status: %v", err)
	}
	if err := st.Validate(); err != nil {
		return err
	}
	fmt.Printf("obscheck: %s ok (%s, %s %s)\n", path, service.StatusSchema, st.ID, st.State)
	return nil
}

// checkBench validates a bench artifact through the same parser
// cmd/benchdiff uses, so "obscheck passes" guarantees "benchdiff can
// read it". v1 artifacts are accepted and normalized to single-sample
// vectors; v2 artifacts additionally get their environment fingerprint
// and sample counts echoed for the CI log.
func checkBench(path string) error {
	art, err := perfgate.ReadBenchArtifact(path)
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: %s ok (%s, %d benchmarks, count=%d, go=%s %s/%s)\n",
		path, art.Schema, len(art.Results), art.Count, art.Env.Go, art.Env.OS, art.Env.Arch)
	return nil
}

// traceEvent mirrors the fields every Chrome trace event must carry.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	var compile, sim bool
	for i, e := range file.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		switch e.Ph {
		case "X", "i", "B", "E", "M", "C":
		default:
			return fmt.Errorf("event %d (%q) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 {
			return fmt.Errorf("event %d (%q) has negative ts", i, e.Name)
		}
		if e.Ph == "X" && e.Dur <= 0 {
			return fmt.Errorf("complete event %d (%q) has non-positive dur", i, e.Name)
		}
		if e.Pid == 0 || e.Tid == 0 {
			return fmt.Errorf("event %d (%q) missing pid/tid", i, e.Name)
		}
		if e.Name == "compile" {
			compile = true
		}
		if e.Pid == 2 {
			sim = true
		}
	}
	if !compile {
		return fmt.Errorf("no compile-phase span (name %q)", "compile")
	}
	if !sim {
		return fmt.Errorf("no simulator events (pid 2)")
	}
	return nil
}

// checkProm validates a Prometheus text exposition page through the
// same parser internal/obs tests use against WriteProm output (shared
// parser: one grammar, enforced everywhere): metric/label name
// charsets, # TYPE lines present and consistent, no duplicate series
// after label canonicalization, and histogram invariants (cumulative
// buckets, +Inf == _count).
func checkProm(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sum, err := obs.CheckProm(data)
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: %s ok (%d families, %d series, %d samples)\n",
		path, sum.Families, sum.Series, sum.Samples)
	return nil
}

func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var dump struct {
		Schema   string `json:"schema"`
		Registry *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"registry"`
		Runner *struct {
			JobsRun int64 `json:"jobs_run"`
		} `json:"runner"`
		Loops []struct {
			Run        string `json:"run"`
			Loop       string `json:"loop"`
			BufferHits *int64 `json:"buffer_hits"`
			Energy     *struct {
				Total float64 `json:"total_energy"`
			} `json:"energy"`
		} `json:"loops"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if dump.Schema != "lpbuf.metrics/v1" {
		return fmt.Errorf("schema %q, want lpbuf.metrics/v1", dump.Schema)
	}
	if dump.Registry == nil {
		return fmt.Errorf("missing registry section")
	}
	for _, key := range []string{"sim.runs", "sim.cycles", "sim.loop.buffer_hits", "sim.loop.buffer_misses"} {
		if _, ok := dump.Registry.Counters[key]; !ok {
			return fmt.Errorf("registry missing counter %q", key)
		}
	}
	if dump.Registry.Counters["sim.runs"] <= 0 {
		return fmt.Errorf("sim.runs = %d, want > 0", dump.Registry.Counters["sim.runs"])
	}
	// The runner section is always present; jobs_run may be 0 when the
	// invocation used the suite's direct path rather than the job DAG.
	if dump.Runner == nil {
		return fmt.Errorf("missing runner section")
	}
	if len(dump.Loops) == 0 {
		return fmt.Errorf("no per-loop attribution rows")
	}
	for i, l := range dump.Loops {
		if l.Run == "" || l.Loop == "" {
			return fmt.Errorf("loop row %d missing run/loop", i)
		}
		if l.BufferHits == nil {
			return fmt.Errorf("loop row %d missing buffer_hits", i)
		}
		if l.Energy == nil {
			return fmt.Errorf("loop row %d missing energy attribution", i)
		}
	}
	return nil
}
