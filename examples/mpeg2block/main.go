// Mpeg2block walks through the paper's Figure 2: predicated loop
// collapsing of the mpeg2dec Add_Block() clip loop. It builds the
// doubly-nested source loop, shows the IR before and after collapsing,
// and verifies (via the interpreter) that the transformation preserves
// the program's behaviour while turning the nest into one bufferable
// 64-iteration counted loop.
//
//	go run ./examples/mpeg2block
package main

import (
	"bytes"
	"fmt"
	"log"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/looptrans"
)

// build constructs the Figure 2 loop:
//
//	for (i = 0; i < 8; i++) {
//	    for (j = 0; j < 8; j++) { *rfp++ = Clip[*bp++ + 128]; }
//	    rfp += incr;
//	}
func build() *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	clip := make([]byte, 1024)
	for i := range clip {
		v := i - 384
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		clip[i] = byte(v)
	}
	clipOff := pb.GlobalB("Clip", 1024, clip)
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i*37 - 120)
	}
	bpOff := pb.GlobalB("bp", 64, src)
	rfpOff := pb.GlobalB("rfp", 256, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	i := f.Reg()
	bp := f.Const(bpOff)
	rfp := f.Const(rfpOff)
	clipBase := f.Const(clipOff + 256 + 128)
	f.MovI(i, 0)
	f.Block("OUTER")
	j := f.Reg()
	f.MovI(j, 0)
	f.Block("INNER")
	v, addr, cv := f.Reg(), f.Reg(), f.Reg()
	f.LdB(v, bp, 0)
	f.Add(addr, clipBase, v)
	f.LdBU(cv, addr, 0)
	f.StB(rfp, 0, cv)
	f.AddI(bp, bp, 1)
	f.AddI(rfp, rfp, 1)
	f.AddI(j, j, 1)
	f.BrI(ir.CmpLT, j, 8, "INNER")
	f.Block("LATCH")
	f.AddI(rfp, rfp, 8) // rfp += incr
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 8, "OUTER")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func main() {
	before := build()
	ref, err := interp.Run(before, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	after := build()
	f := after.Funcs["main"]
	fmt.Println("== Original nested loop (Figure 2(b)) ==")
	fmt.Println(f)

	n := looptrans.CollapseAll(f, looptrans.Options{})
	if n != 1 {
		log.Fatalf("expected 1 collapse, got %d", n)
	}
	fmt.Println("== After predicated loop collapsing (Figure 2(c)/(d)) ==")
	fmt.Println(f)

	res, err := interp.Run(after, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(ref.Mem, res.Mem) {
		log.Fatal("collapse changed behaviour!")
	}
	loops := looptrans.FindLoops(f)
	fmt.Printf("Loops after collapsing: %d (single %d-block body ending in br.cloop)\n",
		len(loops), len(loops[0].Blocks))
	fmt.Println("Behaviour verified identical. The outer-loop code now executes")
	fmt.Println("under a predicate that fires every eighth iteration, and the whole")
	fmt.Println("nest runs as one 64-iteration counted loop the buffer can hold —")
	fmt.Println("exactly the Figure 2 rewrite, including the br.cloop 64 back edge.")
}
