// Postfilter walks through the paper's Figure 5 case study: the
// g724dec PostFilter() loop nest is compiled with the aggressive
// configuration and executed with 16-, 32-, 64- and 256-operation loop
// buffers, printing per-loop buffer traces (entries, iterations,
// buffered iterations) and the resulting buffer-issue fractions.
//
//	go run ./examples/postfilter
package main

import (
	"fmt"
	"log"

	"lpbuf/internal/experiments"
)

func main() {
	s := experiments.New()
	fmt.Println("Reproducing Figure 5: g724dec PostFilter() buffer traces.")
	fmt.Println("(PostFilter dominates g724dec execution, as in the paper.)")
	fmt.Println()
	for _, sz := range []int{16, 32, 64, 256} {
		f5, err := s.Figure5(sz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderFig5(f5))
	}
	fmt.Println("Reading the traces: at 16 operations only the smallest loops fit")
	fmt.Println("and they evict each other on every entry; at 32 the collapsed")
	fmt.Println("FIR/IIR nests (the hot 400-iteration loops) start to fit; by 64")
	fmt.Println("essentially all post-filter issue comes from the buffer — the")
	fmt.Println("same qualitative staircase as the paper's 1.23% / 6.32% / 98.22%.")
}
