// Quickstart: build a small media-style loop in the IR, compile it in
// the paper's two configurations, run both on the cycle-level VLIW
// simulator and compare loop-buffer behaviour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lpbuf/internal/core"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// buildProgram creates the classic saturating-mix loop:
//
//	for (i = 0; i < n; i++) {
//	    v = a[i] + b[i];
//	    if (v >  32767) v =  32767;   // branchy saturation, as in
//	    if (v < -32768) v = -32768;   // reference C codecs
//	    out[i] = v;
//	}
func buildProgram(n int) *ir.Program {
	pb := irbuild.NewProgram(64 << 10)
	av := make([]int32, n)
	bv := make([]int32, n)
	for i := range av {
		av[i] = int32(i*1103%60000 - 30000)
		bv[i] = int32(i*2741%60000 - 30000)
	}
	aOff := pb.GlobalW("a", n, av)
	bOff := pb.GlobalW("b", n, bv)
	outOff := pb.GlobalW("out", n, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	pa := f.Const(aOff)
	pbr := f.Const(bOff)
	po := f.Const(outOff)
	i := f.Reg()
	f.MovI(i, 0)
	f.Block("loop")
	x, y, v := f.Reg(), f.Reg(), f.Reg()
	f.LdW(x, pa, 0)
	f.LdW(y, pbr, 0)
	f.Add(v, x, y)
	f.BrI(ir.CmpLE, v, 32767, "lo")
	f.Block("sathi")
	f.MovI(v, 32767)
	f.Jump("store")
	f.Block("lo")
	f.BrI(ir.CmpGE, v, -32768, "store")
	f.Block("satlo")
	f.MovI(v, -32768)
	f.Block("store")
	f.StW(po, 0, v)
	f.AddI(pa, pa, 4)
	f.AddI(pbr, pbr, 4)
	f.AddI(po, po, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "loop")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func main() {
	prog := buildProgram(2000)

	for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
		c, err := core.Compile(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run() // verified against the interpreter reference
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s: %6.1f%% of issue from the loop buffer, %7d cycles "+
			"(if-converted loops: %d, modulo-scheduled kernels: %d)\n",
			cfg.Name, 100*res.Stats.BufferIssueRatio(), res.Stats.Cycles,
			c.Stats.Converted, c.Stats.ModuloKernels)
	}
	fmt.Println("\nThe traditional build cannot buffer the loop (its saturation")
	fmt.Println("branches make it multi-block); after if-conversion the whole loop")
	fmt.Println("is one predicated block, fits the buffer, and pipelines.")
}
