module lpbuf

go 1.22
