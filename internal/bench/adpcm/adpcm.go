// Package adpcm implements the adpcmenc / adpcmdec benchmarks: an IMA
// ADPCM speech codec (the paper's adpcm_enc/adpcm_dec from
// MediaBench), as a pure-Go reference plus the same algorithm written
// in the compiler's IR. The codec's quantization staircase is a chain
// of data-dependent diamonds inside one hot loop — the paper notes the
// adpcm benchmarks "resolve for the most part to a single predicated
// loop" that reaches >99% buffer issue once if-converted.
package adpcm

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// NumSamples is the benchmark input length.
const NumSamples = 4096

var indexTable = [16]int32{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

var stepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

func clamp16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

// Encode is the reference IMA ADPCM encoder: one unpacked 4-bit code
// byte per sample.
func Encode(in []int16) []byte {
	out := make([]byte, len(in))
	valpred, index := int32(0), int32(0)
	step := stepTable[0]
	for i, s := range in {
		diff := int32(s) - valpred
		sign := int32(0)
		if diff < 0 {
			sign = 8
			diff = -diff
		}
		delta := int32(0)
		vpdiff := step >> 3
		if diff >= step {
			delta = 4
			diff -= step
			vpdiff += step
		}
		if diff >= step>>1 {
			delta |= 2
			diff -= step >> 1
			vpdiff += step >> 1
		}
		if diff >= step>>2 {
			delta |= 1
			vpdiff += step >> 2
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		valpred = clamp16(valpred)
		delta |= sign
		index += indexTable[delta]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		step = stepTable[index]
		out[i] = byte(delta)
	}
	return out
}

// Decode is the reference IMA ADPCM decoder.
func Decode(in []byte) []int16 {
	out := make([]int16, len(in))
	valpred, index := int32(0), int32(0)
	step := stepTable[0]
	for i, b := range in {
		delta := int32(b)
		sign := delta & 8
		vpdiff := step >> 3
		if delta&4 != 0 {
			vpdiff += step
		}
		if delta&2 != 0 {
			vpdiff += step >> 1
		}
		if delta&1 != 0 {
			vpdiff += step >> 2
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		valpred = clamp16(valpred)
		index += indexTable[delta&15]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		step = stepTable[index]
		out[i] = int16(valpred)
	}
	return out
}

func input() []int16 { return bench.Speech(NumSamples, 0xADC) }

// Enc returns the adpcmenc benchmark.
func Enc() bench.Benchmark {
	in := input()
	want := Encode(in)
	prog, outOff := buildEnc(in)
	return bench.Benchmark{
		Name:        "adpcmenc",
		Description: "IMA ADPCM speech encoder, synthetic speech input",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpBytes(mem, outOff, want, "adpcmenc.out")
		},
	}
}

// Dec returns the adpcmdec benchmark.
func Dec() bench.Benchmark {
	in := Encode(input())
	want := Decode(in)
	prog, outOff := buildDec(in)
	return bench.Benchmark{
		Name:        "adpcmdec",
		Description: "IMA ADPCM speech decoder over the encoder's output",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpHalf(mem, outOff, want, "adpcmdec.out")
		},
	}
}

// buildEnc constructs the encoder in IR.
func buildEnc(in []int16) (*ir.Program, int64) {
	pb := irbuild.NewProgram(96 << 10)
	idxOff := pb.GlobalW("indexTable", 16, indexTable[:])
	stepOff := pb.GlobalW("stepTable", 89, stepTable[:])
	inOff := pb.Global("in", int64(2*len(in)), bench.H2B(in))
	outOff := pb.Global("out", int64(len(in)), nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	idxT := f.Const(idxOff)
	stepT := f.Const(stepOff)
	inP := f.Const(inOff)
	outP := f.Const(outOff)
	valpred := f.Reg()
	index := f.Reg()
	step := f.Reg()
	i := f.Reg()
	zero := f.Reg()
	f.MovI(valpred, 0)
	f.MovI(index, 0)
	f.MovI(step, int64(stepTable[0]))
	f.MovI(i, 0)
	f.MovI(zero, 0)

	f.Block("loop")
	s := f.Reg()
	diff := f.Reg()
	sign := f.Reg()
	f.LdH(s, inP, 0)
	f.Sub(diff, s, valpred)
	f.MovI(sign, 0)
	f.BrI(ir.CmpGE, diff, 0, "q1")
	f.Block("neg")
	f.MovI(sign, 8)
	f.Sub(diff, zero, diff)

	f.Block("q1")
	delta := f.Reg()
	vpdiff := f.Reg()
	f.MovI(delta, 0)
	f.ShrI(vpdiff, step, 3)
	f.Br(ir.CmpLT, diff, step, "q2")
	f.Block("q1hit")
	f.MovI(delta, 4)
	f.Sub(diff, diff, step)
	f.Add(vpdiff, vpdiff, step)

	f.Block("q2")
	half := f.Reg()
	f.ShrI(half, step, 1)
	f.Br(ir.CmpLT, diff, half, "q3")
	f.Block("q2hit")
	f.OrI(delta, delta, 2)
	f.Sub(diff, diff, half)
	f.Add(vpdiff, vpdiff, half)

	f.Block("q3")
	quarter := f.Reg()
	f.ShrI(quarter, step, 2)
	f.Br(ir.CmpLT, diff, quarter, "apply")
	f.Block("q3hit")
	f.OrI(delta, delta, 1)
	f.Add(vpdiff, vpdiff, quarter)

	f.Block("apply")
	f.BrI(ir.CmpEQ, sign, 0, "plus")
	f.Block("minus")
	f.Sub(valpred, valpred, vpdiff)
	f.Jump("clampv")
	f.Block("plus")
	f.Add(valpred, valpred, vpdiff)

	f.Block("clampv")
	f.MinI(valpred, valpred, 32767)
	f.MaxI(valpred, valpred, -32768)
	f.Or(delta, delta, sign)
	ia := f.Reg()
	iv := f.Reg()
	f.ShlI(ia, delta, 2)
	f.Add(ia, ia, idxT)
	f.LdW(iv, ia, 0)
	f.Add(index, index, iv)
	f.MaxI(index, index, 0)
	f.MinI(index, index, 88)
	sa := f.Reg()
	f.ShlI(sa, index, 2)
	f.Add(sa, sa, stepT)
	f.LdW(step, sa, 0)
	f.StB(outP, 0, delta)
	f.AddI(inP, inP, 2)
	f.AddI(outP, outP, 1)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(len(in)), "loop")

	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}

// buildDec constructs the decoder in IR.
func buildDec(in []byte) (*ir.Program, int64) {
	pb := irbuild.NewProgram(96 << 10)
	idxOff := pb.GlobalW("indexTable", 16, indexTable[:])
	stepOff := pb.GlobalW("stepTable", 89, stepTable[:])
	inOff := pb.Global("in", int64(len(in)), in)
	outOff := pb.Global("out", int64(2*len(in)), nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	idxT := f.Const(idxOff)
	stepT := f.Const(stepOff)
	inP := f.Const(inOff)
	outP := f.Const(outOff)
	valpred := f.Reg()
	index := f.Reg()
	step := f.Reg()
	i := f.Reg()
	f.MovI(valpred, 0)
	f.MovI(index, 0)
	f.MovI(step, int64(stepTable[0]))
	f.MovI(i, 0)

	f.Block("loop")
	delta := f.Reg()
	vpdiff := f.Reg()
	t := f.Reg()
	f.LdBU(delta, inP, 0)
	f.ShrI(vpdiff, step, 3)
	f.AndI(t, delta, 4)
	f.BrI(ir.CmpEQ, t, 0, "b2")
	f.Block("b1hit")
	f.Add(vpdiff, vpdiff, step)
	f.Block("b2")
	t2 := f.Reg()
	f.AndI(t2, delta, 2)
	f.BrI(ir.CmpEQ, t2, 0, "b3")
	f.Block("b2hit")
	h := f.Reg()
	f.ShrI(h, step, 1)
	f.Add(vpdiff, vpdiff, h)
	f.Block("b3")
	t3 := f.Reg()
	f.AndI(t3, delta, 1)
	f.BrI(ir.CmpEQ, t3, 0, "applysign")
	f.Block("b3hit")
	q := f.Reg()
	f.ShrI(q, step, 2)
	f.Add(vpdiff, vpdiff, q)

	f.Block("applysign")
	sg := f.Reg()
	f.AndI(sg, delta, 8)
	f.BrI(ir.CmpEQ, sg, 0, "plus")
	f.Block("minus")
	f.Sub(valpred, valpred, vpdiff)
	f.Jump("clampv")
	f.Block("plus")
	f.Add(valpred, valpred, vpdiff)

	f.Block("clampv")
	f.MinI(valpred, valpred, 32767)
	f.MaxI(valpred, valpred, -32768)
	ia := f.Reg()
	iv := f.Reg()
	d15 := f.Reg()
	f.AndI(d15, delta, 15)
	f.ShlI(ia, d15, 2)
	f.Add(ia, ia, idxT)
	f.LdW(iv, ia, 0)
	f.Add(index, index, iv)
	f.MaxI(index, index, 0)
	f.MinI(index, index, 88)
	sa := f.Reg()
	f.ShlI(sa, index, 2)
	f.Add(sa, sa, stepT)
	f.LdW(step, sa, 0)
	f.StH(outP, 0, valpred)
	f.AddI(inP, inP, 1)
	f.AddI(outP, outP, 2)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(len(in)), "loop")

	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}
