package adpcm

import (
	"testing"

	"lpbuf/internal/bench"
	"lpbuf/internal/core"
	"lpbuf/internal/interp"
)

func TestEncodeDecodeRoundTripSNR(t *testing.T) {
	in := input()
	dec := Decode(Encode(in))
	// ADPCM is lossy; require the reconstruction to track the signal
	// (noise energy well below signal energy).
	var sig, noise int64
	for i := range in {
		s := int64(in[i])
		d := int64(dec[i]) - s
		sig += s * s
		noise += d * d
	}
	if noise*10 > sig {
		t.Fatalf("poor reconstruction: signal=%d noise=%d", sig, noise)
	}
}

func TestIRMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		res, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Fatalf("%s: interp: %v", b.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			t.Fatalf("%s: IR output differs from Go reference: %v", b.Name, err)
		}
	}
}

func TestCompiledMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
			c, err := core.Compile(prog, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			if err := b.Check(res.Mem); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			if cfg.Name == "aggressive" && res.Stats.BufferIssueRatio() < 0.9 {
				t.Errorf("%s aggressive buffer ratio %.3f, want > 0.9 (single hot loop)",
					b.Name, res.Stats.BufferIssueRatio())
			}
		}
	}
}
