package adpcm

import "testing"

func TestStepTableMonotone(t *testing.T) {
	for i := 1; i < len(stepTable); i++ {
		if stepTable[i] <= stepTable[i-1] {
			t.Fatalf("step table not strictly increasing at %d", i)
		}
	}
	if stepTable[88] != 32767 {
		t.Fatalf("last step = %d", stepTable[88])
	}
}

func TestIndexTableMirrors(t *testing.T) {
	// The sign bit (8) must not change the index adjustment.
	for d := 0; d < 8; d++ {
		if indexTable[d] != indexTable[d|8] {
			t.Fatalf("index table asymmetric at %d", d)
		}
	}
}

func TestEncoderOutputsNibbles(t *testing.T) {
	for i, b := range Encode(input()) {
		if b > 15 {
			t.Fatalf("code %d at %d exceeds 4 bits", b, i)
		}
	}
}

func TestDecoderDeterministic(t *testing.T) {
	enc := Encode(input())
	a := Decode(enc)
	b := Decode(enc)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoder nondeterministic")
		}
	}
}

func TestSilenceEncodesQuietly(t *testing.T) {
	in := make([]int16, 256)
	dec := Decode(Encode(in))
	for i := 16; i < len(dec); i++ { // allow brief adaptation
		if dec[i] > 64 || dec[i] < -64 {
			t.Fatalf("silence decoded to %d at %d", dec[i], i)
		}
	}
}
