// Package bench defines the benchmark interface used by the
// reproduction. Each benchmark (Table 1 of the paper) supplies an IR
// program with its input baked into data memory, plus a checker that
// validates the program's output region against an independent pure-Go
// reference implementation of the same algorithm. Together with the
// compiler pipeline's own interpreter-vs-simulator equivalence checks,
// every measured run is verified twice: algorithmic correctness (IR vs
// Go) and compilation correctness (simulator vs interpreter).
package bench

import (
	"fmt"

	"lpbuf/internal/ir"
)

// Benchmark is one workload.
type Benchmark struct {
	// Name matches the paper's Table 1 naming (e.g. "adpcmenc").
	Name string
	// Description of the workload and its input.
	Description string
	// Build constructs the IR program (deterministic).
	Build func() *ir.Program
	// Check validates the final data memory against the pure-Go
	// reference output.
	Check func(mem []byte) error
}

// Rand is a tiny deterministic PRNG (xorshift64*) used for input
// synthesis so benchmark inputs are stable across runs and platforms.
type Rand struct{ s uint64 }

// NewRand seeds a generator (seed must be nonzero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Speech synthesizes a speech-like 16-bit signal: a few slowly-varying
// "formant" oscillators plus noise, integer-only.
func Speech(n int, seed uint64) []int16 {
	rng := NewRand(seed)
	out := make([]int16, n)
	var p1, p2, p3 int64
	f1, f2, f3 := int64(211), int64(547), int64(1021)
	for i := 0; i < n; i++ {
		p1 += f1
		p2 += f2
		p3 += f3
		// Triangle waves (integer "sines").
		tri := func(p int64) int64 {
			x := p % 4096
			if x < 2048 {
				return x - 1024
			}
			return 3072 - x
		}
		v := 6*tri(p1) + 4*tri(p2) + 2*tri(p3) + int64(rng.Intn(257)-128)
		// Slow amplitude envelope.
		env := 4 + tri(int64(i)*13)/512
		v = v * env / 8
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = int16(v)
		// Occasionally shift formants (telephone speech is nonstationary).
		if i%640 == 639 {
			f1 = 150 + int64(rng.Intn(200))
			f2 = 400 + int64(rng.Intn(400))
			f3 = 900 + int64(rng.Intn(500))
		}
	}
	return out
}

// Image synthesizes an 8-bit grayscale image with smooth gradients,
// edges and texture (integer-only), width*height pixels row-major.
func Image(w, h int, seed uint64) []byte {
	rng := NewRand(seed)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (x*255)/w/2 + (y*255)/h/3
			// Blocky objects with edges.
			if (x/17+y/23)%2 == 0 {
				v += 60
			}
			// Texture noise.
			v += rng.Intn(17) - 8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*w+x] = byte(v)
		}
	}
	return img
}

// CmpWords compares a word region of memory against expected values.
func CmpWords(mem []byte, off int64, want []int32, what string) error {
	for i, w := range want {
		o := off + int64(4*i)
		got := int32(uint32(mem[o]) | uint32(mem[o+1])<<8 |
			uint32(mem[o+2])<<16 | uint32(mem[o+3])<<24)
		if got != w {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, w)
		}
	}
	return nil
}

// CmpHalf compares a 16-bit region of memory against expected values.
func CmpHalf(mem []byte, off int64, want []int16, what string) error {
	for i, w := range want {
		o := off + int64(2*i)
		got := int16(uint16(mem[o]) | uint16(mem[o+1])<<8)
		if got != w {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, w)
		}
	}
	return nil
}

// CmpBytes compares a byte region of memory against expected values.
func CmpBytes(mem []byte, off int64, want []byte, what string) error {
	for i, w := range want {
		if mem[off+int64(i)] != w {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, mem[off+int64(i)], w)
		}
	}
	return nil
}

// H2B packs int16s little-endian.
func H2B(vals []int16) []byte {
	b := make([]byte, 2*len(vals))
	for i, v := range vals {
		b[2*i] = byte(v)
		b[2*i+1] = byte(uint16(v) >> 8)
	}
	return b
}

// W2B packs int32s little-endian.
func W2B(vals []int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		b[4*i] = byte(v)
		b[4*i+1] = byte(uint32(v) >> 8)
		b[4*i+2] = byte(uint32(v) >> 16)
		b[4*i+3] = byte(uint32(v) >> 24)
	}
	return b
}
