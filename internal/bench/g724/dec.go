package g724

// Post-filter weighting factors (Q15): gamma_n = 0.55, gamma_d = 0.70.
const (
	GammaN = 18022
	GammaD = 22938
)

// pfState is the post filter's cross-subframe state.
type pfState struct {
	synHist [LPCOrder]int32 // input history (FIR part)
	stHist  [LPCOrder]int32 // filtered history (IIR part)
	prevSt  int32           // st[-1] for tilt compensation
	agc     int32           // running AGC gain, Q12
	env     int32           // amplitude envelope (loop K)
}

// postFilter runs the adaptive post filter on one subframe. Its loop
// structure mirrors the thirteen-loop PostFilter() control-flow graph
// of the paper's Figure 5: per subframe, twelve inner loops (B, I1,
// I2, C(2-level, collapsible), D, E(2-level, collapsible), F, G, H1,
// H2, J with internal control flow, K) under the subframe loop.
func postFilter(syn []int32, a *[LPCOrder + 1]int32, st *pfState, out []int32) {
	// A: header — weighted coefficient state.
	var num, den [LPCOrder + 1]int32
	var work [SubSize + LPCOrder]int32
	var stw [SubSize + LPCOrder]int32
	var r [SubSize]int32

	// B (10 trips): numerator/denominator coefficient weighting.
	gn, gd := int32(32767), int32(32767)
	for k := 1; k <= LPCOrder; k++ {
		gn = gn * GammaN >> 15
		gd = gd * GammaD >> 15
		num[k] = a[k] * gn >> 15
		den[k] = a[k] * gd >> 15
	}

	// I1 (10 trips): splice FIR history into the work buffer.
	for k := 0; k < LPCOrder; k++ {
		work[k] = st.synHist[k]
	}
	// I2 (40 trips): splice the subframe after it.
	for n := 0; n < SubSize; n++ {
		work[LPCOrder+n] = syn[n]
	}

	// C (40x10, collapsible nest): FIR part, r = A(z/gn) * syn.
	for n := 0; n < SubSize; n++ {
		acc := work[LPCOrder+n] << 12
		for k := 1; k <= LPCOrder; k++ {
			acc += num[k] * work[LPCOrder+n-k]
		}
		acc >>= 12
		if acc > 32767 {
			acc = 32767
		}
		if acc < -32768 {
			acc = -32768
		}
		r[n] = acc
	}

	// D (8 trips): tilt correlation on the residual (stride 5).
	var tnum, tden int32
	for n := 0; n < 8; n++ {
		i := n*5 + 1
		tnum += (r[i] >> 2) * (r[i-1] >> 2) >> 4
		tden += (r[i] >> 2) * (r[i] >> 2) >> 4
	}
	k1 := (tnum >> 2) / ((tden >> 7) + 1) // ~ 32*corr
	if k1 > 16 {
		k1 = 16
	}
	if k1 < -16 {
		k1 = -16
	}

	// IIR history into stw.
	for k := 0; k < LPCOrder; k++ {
		stw[k] = st.stHist[k]
	}

	// E (40x10, collapsible nest): IIR part, st = r / A(z/gd).
	for n := 0; n < SubSize; n++ {
		acc := r[n] << 12
		for k := 1; k <= LPCOrder; k++ {
			acc -= den[k] * stw[LPCOrder+n-k]
		}
		acc >>= 12
		if acc > 32767 {
			acc = 32767
		}
		if acc < -32768 {
			acc = -32768
		}
		stw[LPCOrder+n] = acc
	}

	// F (13 trips): decimated energy of the filtered subframe.
	var est int32
	for n := 0; n < 13; n++ {
		v := stw[LPCOrder+n*3]
		est += (v >> 2) * (v >> 2) >> 6
	}
	// ...and of the input, for the AGC target.
	var esyn int32
	for n := 0; n < 13; n++ {
		v := work[LPCOrder+n*3]
		esyn += (v >> 2) * (v >> 2) >> 6
	}

	// G (3 trips): gain ladder — successively refine the AGC target
	// toward sqrt(esyn/est) in Q12.
	target := int32(4096)
	q := (esyn << 4) / ((est >> 4) + 1)
	if q > 1<<18 {
		q = 1 << 18
	}
	for it := 0; it < 3; it++ {
		target = (target + isqrtStep(q)) >> 1
	}

	// H1/H2 (10 trips each): roll the filter histories.
	for k := 0; k < LPCOrder; k++ {
		st.synHist[k] = work[SubSize+k]
	}
	for k := 0; k < LPCOrder; k++ {
		st.stHist[k] = stw[SubSize+k]
	}

	// J (40 trips, internal control flow): tilt compensation + AGC with
	// a saturation hammock.
	prev := st.prevSt
	g := st.agc
	for n := 0; n < SubSize; n++ {
		v := stw[LPCOrder+n] - (k1*prev)>>5
		prev = stw[LPCOrder+n]
		g += (target - g) >> 5
		s := v * g >> 12
		if s > 32767 {
			s = 32767
		} else if s < -32768 {
			s = -32768
		}
		out[n] = s
	}
	st.prevSt = prev
	st.agc = g

	// K (40 trips): amplitude envelope tracker.
	env := st.env
	for n := 0; n < SubSize; n++ {
		v := out[n]
		if v < 0 {
			v = -v
		}
		env += (v - env) >> 4
	}
	st.env = env
}

// isqrtStep is a cheap sqrt stand-in for the gain ladder: three
// Newton refinements around Q12 (q is pre-clamped to 2^18).
func isqrtStep(q int32) int32 {
	x := int32(4096)
	for i := 0; i < 3; i++ {
		if x < 1 {
			x = 1
		}
		x = (x + (q<<8)/x) >> 1
	}
	if x > 16384 {
		x = 16384
	}
	return x
}

// Decode synthesizes speech from frame parameters.
func Decode(params []Params) []int16 {
	n := len(params)
	out := make([]int16, n*FrameSize)
	exc := make([]int32, MaxLag+n*FrameSize)
	var synHist [LPCOrder]int32
	var st pfState
	st.agc = 4096
	sub := make([]int32, SubSize)
	pf := make([]int32, SubSize)

	for f := 0; f < n; f++ {
		p := &params[f]
		for s := 0; s < NumSub; s++ {
			off := MaxLag + f*FrameSize + s*SubSize
			// E0a (40): clear.
			for i := 0; i < SubSize; i++ {
				exc[off+i] = 0
			}
			// E0b (10): algebraic pulses.
			for k := 0; k < LPCOrder; k++ {
				exc[off+int(p.Pulse[s][k])] += p.Sign[s][k] * p.GainC[s]
			}
			// E0c (40): adaptive (pitch) contribution.
			lag := int(p.Lag[s])
			gp := p.GainP[s]
			for i := 0; i < SubSize; i++ {
				exc[off+i] += gp * exc[off+i-lag] >> 14
				exc[off+i] = sat16(exc[off+i])
			}
			// Synthesis (40x10 nest): 1/A(z).
			for i := 0; i < SubSize; i++ {
				acc := exc[off+i] << 12
				for k := 1; k <= LPCOrder; k++ {
					var sv int32
					if i-k >= 0 {
						sv = sub[i-k]
					} else {
						sv = synHist[LPCOrder+i-k]
					}
					acc -= p.A[k] * sv
				}
				sub[i] = sat16(acc >> 12)
			}
			// Roll synthesis history.
			for k := 0; k < LPCOrder; k++ {
				synHist[k] = sub[SubSize-LPCOrder+k]
			}
			postFilter(sub, &p.A, &st, pf)
			for i := 0; i < SubSize; i++ {
				out[f*FrameSize+s*SubSize+i] = int16(sat16(pf[i]))
			}
		}
	}
	return out
}
