package g724

import (
	"testing"

	"lpbuf/internal/bench"
	"lpbuf/internal/core"
	"lpbuf/internal/interp"
)

func TestDecodeProducesSignal(t *testing.T) {
	speech := bench.Speech(NumFrames*FrameSize, 0x724D)
	out := Decode(Encode(speech))
	// The decoded signal must carry energy (the codec is doing work).
	var e int64
	for _, v := range out[FrameSize:] {
		e += int64(v) * int64(v)
	}
	if e == 0 {
		t.Fatal("decoder produced silence")
	}
}

func TestIRMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		res, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Fatalf("%s: interp: %v", b.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			t.Fatalf("%s: IR output differs from Go reference: %v", b.Name, err)
		}
	}
}

func TestCompiledMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
			c, err := core.Compile(prog, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			if err := b.Check(res.Mem); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
		}
	}
}
