package g724

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// Serialized frame layout (words): A[1..10], then per subframe
// {Lag, GainP, GainC, Pulse[10], Sign[10]}.
const (
	frameWords = LPCOrder + NumSub*(3+2*LPCOrder)
	subWords   = 3 + 2*LPCOrder
)

// serialize packs parameters for the IR program.
func serialize(params []Params) []int32 {
	out := make([]int32, 0, len(params)*frameWords)
	for i := range params {
		p := &params[i]
		out = append(out, p.A[1:]...)
		for s := 0; s < NumSub; s++ {
			out = append(out, p.Lag[s], p.GainP[s], p.GainC[s])
			out = append(out, p.Pulse[s][:]...)
			out = append(out, p.Sign[s][:]...)
		}
	}
	return out
}

// buildDec constructs the decoder program; returns it plus the output
// offset.
func buildDec(params []Params) (*ir.Program, int64) {
	nFrames := len(params)
	pb := irbuild.NewProgram(1 << 20)
	paramsOff := pb.GlobalW("params", nFrames*frameWords, serialize(params))
	excOff := pb.GlobalW("exc", MaxLag+nFrames*FrameSize, nil)
	aOff := pb.GlobalW("a", LPCOrder+1, nil)
	sworkOff := pb.GlobalW("swork", SubSize+LPCOrder, nil) // synthesis work
	synHistOff := pb.GlobalW("synHist", LPCOrder, nil)
	pfOff := pb.GlobalW("pf", SubSize, nil)
	outOff := pb.Global("out", int64(2*nFrames*FrameSize), nil)
	// Post-filter globals.
	numOff := pb.GlobalW("num", LPCOrder+1, nil)
	denOff := pb.GlobalW("den", LPCOrder+1, nil)
	pworkOff := pb.GlobalW("pwork", SubSize+LPCOrder, nil)
	stwOff := pb.GlobalW("stw", SubSize+LPCOrder, nil)
	rOff := pb.GlobalW("r", SubSize, nil)
	pfSynHistOff := pb.GlobalW("pfSynHist", LPCOrder, nil)
	pfStHistOff := pb.GlobalW("pfStHist", LPCOrder, nil)
	stateOff := pb.GlobalW("pfstate", 4, []int32{0, 4096, 0, 0}) // prevSt, agc, env, -

	buildPostFilter(pb, aOff, sworkOff, numOff, denOff, pworkOff, stwOff, rOff,
		pfSynHistOff, pfStHistOff, stateOff, pfOff)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	pp := f.Reg()
	fr := f.Reg()
	f.MovI(pp, paramsOff)
	f.MovI(fr, 0)
	q4096 := f.Const(4096)

	f.Block("frameloop")
	// Copy A params into the a[] global; a[0] = 4096.
	aBase := f.Const(aOff)
	f.StW(aBase, 0, q4096)
	{
		k := f.Reg()
		src := f.Reg()
		dst := f.Reg()
		f.MovI(k, 1)
		f.Mov(src, pp)
		f.AddI(dst, aBase, 4)
		f.Block("acopy")
		v := f.Reg()
		f.LdW(v, src, 0)
		f.StW(dst, 0, v)
		f.AddI(src, src, 4)
		f.AddI(dst, dst, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, int64(LPCOrder+1), "acopy")
	}
	f.Block("subpre")
	s := f.Reg()
	spp := f.Reg()
	f.MovI(s, 0)
	f.AddI(spp, pp, int64(4*LPCOrder))

	f.Block("subloop")
	// excP = excBase + 4*(MaxLag + fr*160 + s*40)
	excP := f.Reg()
	t := f.Reg()
	f.MulI(t, fr, FrameSize)
	t2 := f.Reg()
	f.MulI(t2, s, SubSize)
	f.Add(t, t, t2)
	f.AddI(t, t, MaxLag)
	f.ShlI(t, t, 2)
	excB := f.Reg()
	f.MovI(excB, excOff)
	f.Add(excP, excB, t)

	// E0a (40): clear the subframe excitation.
	{
		p := f.Reg()
		i := f.Reg()
		z := f.Const(0)
		f.Mov(p, excP)
		f.MovI(i, 0)
		f.Block("e0a")
		f.StW(p, 0, z)
		f.AddI(p, p, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, SubSize, "e0a")
	}
	f.Block("e0b_pre")
	// E0b (10): algebraic pulses.
	gc := f.Reg()
	f.LdW(gc, spp, 8)
	{
		k := f.Reg()
		posP := f.Reg()
		sgnP := f.Reg()
		f.MovI(k, 0)
		f.AddI(posP, spp, 12)
		f.AddI(sgnP, spp, 12+4*LPCOrder)
		f.Block("e0b")
		pos := f.Reg()
		sgn := f.Reg()
		addr := f.Reg()
		v := f.Reg()
		d := f.Reg()
		f.LdW(pos, posP, 0)
		f.LdW(sgn, sgnP, 0)
		f.ShlI(addr, pos, 2)
		f.Add(addr, addr, excP)
		f.LdW(v, addr, 0)
		f.Mul(d, sgn, gc)
		f.Add(v, v, d)
		f.StW(addr, 0, v)
		f.AddI(posP, posP, 4)
		f.AddI(sgnP, sgnP, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, LPCOrder, "e0b")
	}
	f.Block("e0c_pre")
	// E0c (40): adaptive contribution.
	lag := f.Reg()
	gp := f.Reg()
	f.LdW(lag, spp, 0)
	f.LdW(gp, spp, 4)
	{
		p := f.Reg()
		qq := f.Reg()
		i := f.Reg()
		lb := f.Reg()
		f.Mov(p, excP)
		f.ShlI(lb, lag, 2)
		f.Sub(qq, excP, lb)
		f.MovI(i, 0)
		f.Block("e0c")
		pv := f.Reg()
		x := f.Reg()
		m := f.Reg()
		f.LdW(pv, qq, 0)
		f.LdW(x, p, 0)
		f.Mul(m, gp, pv)
		f.ShrI(m, m, 14)
		f.Add(x, x, m)
		// Branch-form saturation (ETSI basic-op style).
		f.BrI(ir.CmpLE, x, 32767, "e0c_lo")
		f.Block("e0c_sathi")
		f.MovI(x, 32767)
		f.Jump("e0c_st")
		f.Block("e0c_lo")
		f.BrI(ir.CmpGE, x, -32768, "e0c_st")
		f.Block("e0c_satlo")
		f.MovI(x, -32768)
		f.Block("e0c_st")
		f.StW(p, 0, x)
		f.AddI(p, p, 4)
		f.AddI(qq, qq, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, SubSize, "e0c")
	}
	f.Block("syn_pre")
	// Splice synthesis history into swork[0..10).
	swB := f.Reg()
	f.MovI(swB, sworkOff)
	{
		k := f.Reg()
		src := f.Reg()
		dst := f.Reg()
		f.MovI(k, 0)
		f.MovI(src, synHistOff)
		f.Mov(dst, swB)
		f.Block("shcopy")
		v := f.Reg()
		f.LdW(v, src, 0)
		f.StW(dst, 0, v)
		f.AddI(src, src, 4)
		f.AddI(dst, dst, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, LPCOrder, "shcopy")
	}
	f.Block("syn_outer_pre")
	// Synthesis nest: for i in 40 { acc = exc<<12 - sum a[k]*swork[10+i-k]; }
	{
		i := f.Reg()
		pe := f.Reg()
		pw := f.Reg() // write pointer &swork[10+i]
		f.MovI(i, 0)
		f.Mov(pe, excP)
		f.AddI(pw, swB, int64(4*LPCOrder))
		f.Block("syn_outer")
		acc := f.Reg()
		k := f.Reg()
		pa := f.Reg()
		pr := f.Reg()
		ev := f.Reg()
		f.LdW(ev, pe, 0)
		f.ShlI(acc, ev, 12)
		f.MovI(k, 1)
		f.AddI(pa, aBase, 4)
		f.SubI(pr, pw, 4)
		f.Block("syn_inner")
		av := f.Reg()
		wv := f.Reg()
		mm := f.Reg()
		f.LdW(av, pa, 0)
		f.LdW(wv, pr, 0)
		f.Mul(mm, av, wv)
		f.Sub(acc, acc, mm)
		f.AddI(pa, pa, 4)
		f.SubI(pr, pr, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, int64(LPCOrder+1), "syn_inner")
		f.Block("syn_latch")
		f.ShrI(acc, acc, 12)
		f.MinI(acc, acc, 32767)
		f.MaxI(acc, acc, -32768)
		f.StW(pw, 0, acc)
		f.AddI(pw, pw, 4)
		f.AddI(pe, pe, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, SubSize, "syn_outer")
	}
	f.Block("syn_roll")
	// Roll synthesis history from swork[40..50).
	{
		k := f.Reg()
		src := f.Reg()
		dst := f.Reg()
		f.MovI(k, 0)
		f.AddI(src, swB, int64(4*SubSize))
		f.MovI(dst, synHistOff)
		f.Block("shroll")
		v := f.Reg()
		f.LdW(v, src, 0)
		f.StW(dst, 0, v)
		f.AddI(src, src, 4)
		f.AddI(dst, dst, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, LPCOrder, "shroll")
	}
	f.Block("pfcall")
	f.Call(0, "postfilter")

	// Output (40): saturate and store halfwords.
	{
		i := f.Reg()
		src := f.Reg()
		dst := f.Reg()
		fo := f.Reg()
		f.MovI(i, 0)
		f.MovI(src, pfOff)
		// out index = (fr*160 + s*40)
		f.MulI(fo, fr, FrameSize)
		t3 := f.Reg()
		f.MulI(t3, s, SubSize)
		f.Add(fo, fo, t3)
		f.ShlI(fo, fo, 1)
		f.AddI(fo, fo, outOff)
		f.Mov(dst, fo)
		f.Block("outcopy")
		v := f.Reg()
		f.LdW(v, src, 0)
		f.BrI(ir.CmpLE, v, 32767, "oc_lo")
		f.Block("oc_sathi")
		f.MovI(v, 32767)
		f.Jump("oc_st")
		f.Block("oc_lo")
		f.BrI(ir.CmpGE, v, -32768, "oc_st")
		f.Block("oc_satlo")
		f.MovI(v, -32768)
		f.Block("oc_st")
		f.StH(dst, 0, v)
		f.AddI(src, src, 4)
		f.AddI(dst, dst, 2)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, SubSize, "outcopy")
	}
	f.Block("subnext")
	f.AddI(spp, spp, int64(4*subWords))
	f.AddI(s, s, 1)
	f.BrI(ir.CmpLT, s, NumSub, "subloop")
	f.Block("framenext")
	f.AddI(pp, pp, int64(4*frameWords))
	f.AddI(fr, fr, 1)
	f.BrI(ir.CmpLT, fr, int64(nFrames), "frameloop")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}

// Dec returns the g724dec benchmark.
func Dec() bench.Benchmark {
	speech := bench.Speech(NumFrames*FrameSize, 0x724D)
	params := Encode(speech)
	want := Decode(params)
	prog, outOff := buildDec(params)
	return bench.Benchmark{
		Name:        "g724dec",
		Description: "GSM-EFR-style speech decoder (PostFilter is the Figure 5 case study)",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpHalf(mem, outOff, want, "g724dec.out")
		},
	}
}
