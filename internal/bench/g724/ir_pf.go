package g724

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// buildPostFilter emits the PostFilter() function: twelve inner loops
// per subframe (labels follow the paper's Figure 5 discussion — B
// weighting, I1/I2 splices, C FIR nest, D tilt, I3 splice, E IIR nest,
// F/F2 energies, G gain ladder with a peelable inner Newton loop,
// H1/H2 history rolls, J tilt+AGC with an internal saturation hammock,
// K envelope tracking with an |x| hammock).
func buildPostFilter(pb *irbuild.Program, aOff, sworkOff, numOff, denOff,
	pworkOff, stwOff, rOff, pfSynHistOff, pfStHistOff, stateOff, pfOff int64) {

	f := pb.Func("postfilter", 0, false)
	f.Block("A") // header
	aB := f.Const(aOff)
	numB := f.Const(numOff)
	denB := f.Const(denOff)
	pwB := f.Const(pworkOff)
	stwB := f.Const(stwOff)
	rB := f.Const(rOff)
	swB := f.Const(sworkOff)
	stB := f.Const(stateOff)
	pfB := f.Const(pfOff)

	// B (10): coefficient weighting.
	{
		gn := f.Reg()
		gd := f.Reg()
		k := f.Reg()
		pa := f.Reg()
		pn := f.Reg()
		pd := f.Reg()
		f.MovI(gn, 32767)
		f.MovI(gd, 32767)
		f.MovI(k, 1)
		f.AddI(pa, aB, 4)
		f.AddI(pn, numB, 4)
		f.AddI(pd, denB, 4)
		f.Block("B")
		av := f.Reg()
		nv := f.Reg()
		dv := f.Reg()
		f.MulI(gn, gn, GammaN)
		f.ShrI(gn, gn, 15)
		f.MulI(gd, gd, GammaD)
		f.ShrI(gd, gd, 15)
		f.LdW(av, pa, 0)
		f.Mul(nv, av, gn)
		f.ShrI(nv, nv, 15)
		f.StW(pn, 0, nv)
		f.Mul(dv, av, gd)
		f.ShrI(dv, dv, 15)
		f.StW(pd, 0, dv)
		f.AddI(pa, pa, 4)
		f.AddI(pn, pn, 4)
		f.AddI(pd, pd, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, int64(LPCOrder+1), "B")
	}
	f.Block("I1pre")
	copyLoop(f, "I1", pfSynHistOff, 0, pwB, 0, LPCOrder)
	f.Block("I2pre")
	copyLoopR(f, "I2", swB, 4*LPCOrder, pwB, 4*LPCOrder, SubSize)

	// C (40x10 nest): FIR through the weighted numerator.
	firNest(f, "C", pwB, numB, rB, false)

	// D (8): tilt correlation, then k1.
	tnum := f.Reg()
	tden := f.Reg()
	{
		n := f.Reg()
		p := f.Reg()
		f.Block("Dpre")
		f.MovI(tnum, 0)
		f.MovI(tden, 0)
		f.MovI(n, 0)
		f.AddI(p, rB, 4) // &r[1]
		f.Block("D")
		v := f.Reg()
		w := f.Reg()
		m := f.Reg()
		f.LdW(v, p, 0)
		f.LdW(w, p, -4)
		f.ShrI(v, v, 2)
		f.ShrI(w, w, 2)
		f.Mul(m, v, w)
		f.ShrI(m, m, 4)
		f.Add(tnum, tnum, m)
		f.Mul(m, v, v)
		f.ShrI(m, m, 4)
		f.Add(tden, tden, m)
		f.AddI(p, p, 20)
		f.AddI(n, n, 1)
		f.BrI(ir.CmpLT, n, 8, "D")
	}
	f.Block("k1calc")
	k1 := f.Reg()
	{
		dd := f.Reg()
		f.ShrI(dd, tden, 7)
		f.AddI(dd, dd, 1)
		nn := f.Reg()
		f.ShrI(nn, tnum, 2)
		f.Div(k1, nn, dd)
		f.MinI(k1, k1, 16)
		f.MaxI(k1, k1, -16)
	}
	copyLoop(f, "I3", pfStHistOff, 0, stwB, 0, LPCOrder)

	// E (40x10 nest): IIR through the weighted denominator; input r[n].
	firNest(f, "E", stwB, denB, rB, true)

	// F / F2 (13 each): decimated energies.
	est := energyLoop(f, "F", stwB)
	esyn := energyLoop(f, "F2", pwB)

	// G (3 outer, 3 inner): gain ladder with Newton sqrt inner loop.
	target := f.Reg()
	{
		q := f.Reg()
		dd := f.Reg()
		f.Block("Gpre")
		f.ShrI(dd, est, 4)
		f.AddI(dd, dd, 1)
		f.ShlI(q, esyn, 4)
		f.Div(q, q, dd)
		f.MinI(q, q, 1<<18)
		f.ShlI(q, q, 8)
		f.MovI(target, 4096)
		it := f.Reg()
		f.MovI(it, 0)
		f.Block("G")
		x := f.Reg()
		j := f.Reg()
		f.MovI(x, 4096)
		f.MovI(j, 0)
		f.Block("Gnewton")
		d := f.Reg()
		f.MaxI(x, x, 1)
		f.Div(d, q, x)
		f.Add(x, x, d)
		f.ShrI(x, x, 1)
		f.AddI(j, j, 1)
		f.BrI(ir.CmpLT, j, 3, "Gnewton")
		f.Block("Glatch")
		f.MinI(x, x, 16384)
		f.Add(target, target, x)
		f.ShrI(target, target, 1)
		f.AddI(it, it, 1)
		f.BrI(ir.CmpLT, it, 3, "G")
	}
	f.Block("H1pre")
	copyLoop(f, "H1", pworkOff+4*SubSize, 0, f.Const(pfSynHistOff), 0, LPCOrder)
	f.Block("H2pre")
	copyLoop(f, "H2", stwOff+4*SubSize, 0, f.Const(pfStHistOff), 0, LPCOrder)

	// J (40, saturation hammock): tilt compensation + AGC.
	{
		prev := f.Reg()
		g := f.Reg()
		n := f.Reg()
		ps := f.Reg()
		po := f.Reg()
		f.Block("Jpre")
		f.LdW(prev, stB, 0)
		f.LdW(g, stB, 4)
		f.MovI(n, 0)
		f.AddI(ps, stwB, int64(4*LPCOrder))
		f.Mov(po, pfB)
		f.Block("J")
		sv := f.Reg()
		v := f.Reg()
		m := f.Reg()
		sres := f.Reg()
		f.LdW(sv, ps, 0)
		f.Mul(m, k1, prev)
		f.ShrI(m, m, 5)
		f.Sub(v, sv, m)
		f.Mov(prev, sv)
		dgt := f.Reg()
		f.Sub(dgt, target, g)
		f.ShrI(dgt, dgt, 5)
		f.Add(g, g, dgt)
		f.Mul(sres, v, g)
		f.ShrI(sres, sres, 12)
		f.BrI(ir.CmpLE, sres, 32767, "Jlo")
		f.Block("JsatHi")
		f.MovI(sres, 32767)
		f.Jump("Jstore")
		f.Block("Jlo")
		f.BrI(ir.CmpGE, sres, -32768, "Jstore")
		f.Block("JsatLo")
		f.MovI(sres, -32768)
		f.Block("Jstore")
		f.StW(po, 0, sres)
		f.AddI(ps, ps, 4)
		f.AddI(po, po, 4)
		f.AddI(n, n, 1)
		f.BrI(ir.CmpLT, n, SubSize, "J")
		f.Block("Jpost")
		f.StW(stB, 0, prev)
		f.StW(stB, 4, g)
	}

	// K (40, |x| hammock): envelope tracking.
	{
		env := f.Reg()
		n := f.Reg()
		p := f.Reg()
		f.Block("Kpre")
		f.LdW(env, stB, 8)
		f.MovI(n, 0)
		f.Mov(p, pfB)
		f.Block("K")
		v := f.Reg()
		f.LdW(v, p, 0)
		f.BrI(ir.CmpGE, v, 0, "Kupd")
		f.Block("Kneg")
		z := f.Reg()
		f.MovI(z, 0)
		f.Sub(v, z, v)
		f.Block("Kupd")
		dv := f.Reg()
		f.Sub(dv, v, env)
		f.ShrI(dv, dv, 4)
		f.Add(env, env, dv)
		f.AddI(p, p, 4)
		f.AddI(n, n, 1)
		f.BrI(ir.CmpLT, n, SubSize, "K")
		f.Block("Kpost")
		f.StW(stB, 8, env)
	}
	f.Ret(0)
}

// copyLoop emits label: dst[i] = src[i] for n words. src/dst are
// absolute offsets (srcOff) or registers.
func copyLoop(f *irbuild.Func, label string, srcOff int64, srcAdj int64,
	dstB ir.Reg, dstAdj int64, n int) {
	k := f.Reg()
	src := f.Reg()
	dst := f.Reg()
	f.MovI(k, 0)
	f.MovI(src, srcOff+srcAdj)
	f.AddI(dst, dstB, dstAdj)
	f.Block(label)
	v := f.Reg()
	f.LdW(v, src, 0)
	f.StW(dst, 0, v)
	f.AddI(src, src, 4)
	f.AddI(dst, dst, 4)
	f.AddI(k, k, 1)
	f.BrI(ir.CmpLT, k, int64(n), label)
	f.Block(label + "_post")
}

// copyLoopR is copyLoop with a register source base.
func copyLoopR(f *irbuild.Func, label string, srcB ir.Reg, srcAdj int64,
	dstB ir.Reg, dstAdj int64, n int) {
	k := f.Reg()
	src := f.Reg()
	dst := f.Reg()
	f.MovI(k, 0)
	f.AddI(src, srcB, srcAdj)
	f.AddI(dst, dstB, dstAdj)
	f.Block(label)
	v := f.Reg()
	f.LdW(v, src, 0)
	f.StW(dst, 0, v)
	f.AddI(src, src, 4)
	f.AddI(dst, dst, 4)
	f.AddI(k, k, 1)
	f.BrI(ir.CmpLT, k, int64(n), label)
	f.Block(label + "_post")
}

// firNest emits a 40x10 filter nest reading from inB[10+n-k], with
// coefficients coefB[k], writing outB[n] (sub = false: acc += c*v,
// writing r[n]; sub = true: acc -= c*v, writing inB[10+n], the IIR
// form). Saturation uses min/max so the nest stays collapsible.
func firNest(f *irbuild.Func, label string, inB, coefB, outB ir.Reg, sub bool) {
	n := f.Reg()
	pin := f.Reg() // &in[10+n]
	pout := f.Reg()
	f.Block(label + "_pre")
	f.MovI(n, 0)
	f.AddI(pin, inB, int64(4*LPCOrder))
	if sub {
		f.AddI(pout, inB, int64(4*LPCOrder))
	} else {
		f.Mov(pout, outB)
	}
	f.Block(label + "_outer")
	acc := f.Reg()
	k := f.Reg()
	pc := f.Reg()
	pv := f.Reg()
	src := f.Reg()
	f.LdW(src, pinSrc(f, sub, pin, outB, n), 0)
	f.ShlI(acc, src, 12)
	f.MovI(k, 1)
	f.AddI(pc, coefB, 4)
	f.SubI(pv, pin, 4)
	f.Block(label + "_inner")
	cv := f.Reg()
	wv := f.Reg()
	m := f.Reg()
	f.LdW(cv, pc, 0)
	f.LdW(wv, pv, 0)
	f.Mul(m, cv, wv)
	if sub {
		f.Sub(acc, acc, m)
	} else {
		f.Add(acc, acc, m)
	}
	f.AddI(pc, pc, 4)
	f.SubI(pv, pv, 4)
	f.AddI(k, k, 1)
	f.BrI(ir.CmpLT, k, int64(LPCOrder+1), label+"_inner")
	f.Block(label + "_latch")
	f.ShrI(acc, acc, 12)
	f.MinI(acc, acc, 32767)
	f.MaxI(acc, acc, -32768)
	if sub {
		f.StW(pin, 0, acc)
	} else {
		f.StW(pout, 0, acc)
	}
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.AddI(n, n, 1)
	f.BrI(ir.CmpLT, n, SubSize, label+"_outer")
	f.Block(label + "_post")
}

// pinSrc returns the address register for the nest's input sample: the
// FIR reads in[10+n] (pin); the IIR reads r[n].
func pinSrc(f *irbuild.Func, sub bool, pin, outB, n ir.Reg) ir.Reg {
	if !sub {
		return pin
	}
	// &r[n] = outB + 4n, computed fresh each outer iteration.
	a := f.Reg()
	f.ShlI(a, n, 2)
	f.Add(a, a, outB)
	return a
}

// energyLoop emits a 13-trip decimated energy loop over buf[10+3n].
func energyLoop(f *irbuild.Func, label string, bufB ir.Reg) ir.Reg {
	e := f.Reg()
	n := f.Reg()
	p := f.Reg()
	f.Block(label + "_pre")
	f.MovI(e, 0)
	f.MovI(n, 0)
	f.AddI(p, bufB, int64(4*LPCOrder))
	f.Block(label)
	v := f.Reg()
	m := f.Reg()
	f.LdW(v, p, 0)
	f.ShrI(v, v, 2)
	f.Mul(m, v, v)
	f.ShrI(m, m, 6)
	f.Add(e, e, m)
	f.AddI(p, p, 12)
	f.AddI(n, n, 1)
	f.BrI(ir.CmpLT, n, 13, label)
	f.Block(label + "_post")
	return e
}
