package g724

import (
	"math"
	"testing"

	"lpbuf/internal/bench"
)

func TestLevinsonStability(t *testing.T) {
	speech := bench.Speech(FrameSize, 0xAB)
	x := make([]int32, FrameSize)
	for i, s := range speech {
		x[i] = int32(s)
	}
	a := levinson(autocorr(x, LPCOrder))
	if a[0] != 4096 {
		t.Fatalf("a[0] = %d", a[0])
	}
	// Coefficients stay in a sane Q12 range (clamped reflections).
	for k := 1; k <= LPCOrder; k++ {
		if a[k] > 16*4096 || a[k] < -16*4096 {
			t.Fatalf("a[%d] = %d out of range", k, a[k])
		}
	}
}

func TestIsqrtAccuracy(t *testing.T) {
	for _, v := range []int32{0, 1, 2, 3, 4, 15, 16, 17, 99, 100, 1 << 20, 1<<30 - 1} {
		got := isqrt(v)
		want := int32(math.Sqrt(float64(v)))
		if got != want && got != want-1 && got != want+1 {
			t.Fatalf("isqrt(%d) = %d, want ~%d", v, got, want)
		}
		if int64(got)*int64(got) > int64(v) {
			t.Fatalf("isqrt(%d) = %d overshoots", v, got)
		}
	}
}

func TestPitchSearchFindsPeriod(t *testing.T) {
	// A perfectly periodic excitation should yield its period as lag.
	period := 40
	exc := make([]int32, MaxLag+SubSize)
	for i := range exc {
		exc[i] = int32((i % period) * 100)
	}
	lag := pitchSearch(exc, MaxLag)
	if int(lag)%period != 0 {
		t.Fatalf("lag %d is not a multiple of the period %d", lag, period)
	}
}

func TestPulsePositionsStayInTracks(t *testing.T) {
	speech := bench.Speech(NumFrames*FrameSize, 0x724D)
	for _, p := range Encode(speech) {
		for s := 0; s < NumSub; s++ {
			for k := 0; k < LPCOrder; k++ {
				pos := int(p.Pulse[s][k])
				base := trackBase(k)
				if pos < base || pos >= base+4 {
					t.Fatalf("pulse %d at %d outside track [%d,%d)", k, pos, base, base+4)
				}
				if sg := p.Sign[s][k]; sg != 1 && sg != -1 {
					t.Fatalf("sign %d", sg)
				}
			}
		}
	}
}

func TestSerializeRoundTripLayout(t *testing.T) {
	speech := bench.Speech(NumFrames*FrameSize, 0x724D)
	params := Encode(speech)
	words := serialize(params)
	if len(words) != len(params)*frameWords {
		t.Fatalf("serialized %d words, want %d", len(words), len(params)*frameWords)
	}
	// Spot-check frame 0, subframe 0 layout.
	if words[LPCOrder] != params[0].Lag[0] {
		t.Fatal("lag position wrong in layout")
	}
	if words[LPCOrder+1] != params[0].GainP[0] {
		t.Fatal("gainP position wrong in layout")
	}
}
