// Package g724 implements the g724enc / g724dec benchmarks: a
// GSM-EFR-style (ETSI 06.60) analysis-by-synthesis speech codec
// substitute, built from the same integer-DSP stages the paper's g724
// uses — LPC analysis (autocorrelation + Levinson-Durbin), open-loop
// pitch search, track-structured algebraic excitation, gain
// computation, LPC synthesis, and the adaptive post filter whose
// thirteen-loop control-flow graph is the paper's Figure 5 case study
// (PostFilter() accounts for about half of g724dec's cycles).
//
// The arithmetic is plain 32-bit integer math chosen to mirror the IR
// instruction set exactly, so the IR implementation is bit-exact
// against this reference.
package g724

// Frame/subframe geometry (EFR: 160-sample frames, 4 subframes of 40).
const (
	FrameSize = 160
	SubSize   = 40
	NumSub    = 4
	LPCOrder  = 10
	MinLag    = 20
	MaxLag    = 85
	NumFrames = 10
)

// Params is the "bitstream" for one frame.
type Params struct {
	A     [LPCOrder + 1]int32 // Q12 direct-form coefficients, A[0] = 4096
	Lag   [NumSub]int32
	GainP [NumSub]int32 // Q14 adaptive gain
	Pulse [NumSub][LPCOrder]int32
	Sign  [NumSub][LPCOrder]int32 // +1/-1
	GainC [NumSub]int32           // fixed-codebook gain (linear)
}

func sat16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

// autocorr computes r[0..order] of a 160-sample window, with inputs
// scaled down 3 bits to avoid overflow.
func autocorr(x []int32, order int) []int32 {
	r := make([]int32, order+1)
	for k := 0; k <= order; k++ {
		var acc int32
		for n := k; n < FrameSize; n++ {
			acc += (x[n] >> 3) * (x[n-k] >> 3) >> 8
			// Overflow guard in the ETSI basic-op style (a branch, not
			// an intrinsic — this is what keeps reference C loops out
			// of the loop buffer before if-conversion).
			if acc > 1<<28 {
				acc = 1 << 28
			}
		}
		r[k] = acc >> 6 // keep r small enough for Q12 products
	}
	if r[0] < 1 {
		r[0] = 1
	}
	return r
}

// levinson runs integer Levinson-Durbin, producing Q12 coefficients.
func levinson(r []int32) [LPCOrder + 1]int32 {
	var a [LPCOrder + 1]int32
	a[0] = 4096
	var err int32 = r[0]
	for i := 1; i <= LPCOrder; i++ {
		var acc int32
		for j := 1; j < i; j++ {
			acc += a[j] * r[i-j] >> 12
		}
		num := r[i] - acc
		if err == 0 {
			err = 1
		}
		k := (num << 12) / err
		// Reflection clamp for stability.
		if k > 3900 {
			k = 3900
		}
		if k < -3900 {
			k = -3900
		}
		var tmp [LPCOrder + 1]int32
		for j := 1; j < i; j++ {
			tmp[j] = a[j] - (k * a[i-j] >> 12)
		}
		for j := 1; j < i; j++ {
			a[j] = tmp[j]
		}
		a[i] = k
		err -= k * (num >> 12)
		if err < 1 {
			err = 1
		}
	}
	return a
}

// residual computes the LPC residual res[n] = x[n] + sum a[k] x[n-k].
// hist supplies the 10 samples preceding x.
func residual(x, hist []int32, a *[LPCOrder + 1]int32, res []int32) {
	for n := 0; n < len(x); n++ {
		acc := x[n] << 12
		for k := 1; k <= LPCOrder; k++ {
			var xv int32
			if n-k >= 0 {
				xv = x[n-k]
			} else {
				xv = hist[len(hist)+n-k]
			}
			acc += a[k] * xv
		}
		res[n] = sat16(acc >> 12)
	}
}

// pitchSearch finds the lag maximizing a normalized-correlation merit
// q = (c>>11)^2 / ((e>>8)+1) over the past excitation.
func pitchSearch(exc []int32, off int) int32 {
	bestLag, bestQ := int32(MinLag), int32(-1)
	for lag := int32(MinLag); lag <= MaxLag; lag++ {
		c, e := corrEnergyRef(exc, off, lag)
		if c < 0 {
			c = 0
		}
		cn := c >> 11
		q := cn * cn / ((e >> 8) + 1)
		if q > bestQ {
			bestQ, bestLag = q, lag
		}
	}
	return bestLag
}

// pitchGain computes the Q14 adaptive gain for the chosen lag, clamped
// to [0, 16384].
func pitchGain(exc []int32, off int, lag int32) int32 {
	c, e := corrEnergyRef(exc, off, lag)
	if c < 0 {
		c = 0
	}
	q := (c >> 6) / ((e >> 13) + 1) // ~ 128*c/e
	if q > 128 {
		q = 128
	}
	return q << 7
}

// corrEnergyRef is the shared 40-tap correlation/energy kernel with
// ETSI-style branchy overflow guards on both accumulators.
func corrEnergyRef(exc []int32, off int, lag int32) (c, e int32) {
	for n := 0; n < SubSize; n++ {
		p := exc[off+n-int(lag)]
		c += (exc[off+n] >> 2) * (p >> 2) >> 6
		if c > 1<<28 {
			c = 1 << 28
		}
		e += (p >> 2) * (p >> 2) >> 6
		if e > 1<<28 {
			e = 1 << 28
		}
	}
	return c, e
}

// isqrt is the classic 16-step restoring integer square root.
func isqrt(v int32) int32 {
	root := int32(0)
	bit := int32(1) << 30
	for i := 0; i < 16; i++ {
		if v >= root+bit {
			v -= root + bit
			root = root>>1 + bit
		} else {
			root >>= 1
		}
		bit >>= 2
	}
	return root
}

// tracks: pulse k may sit at positions k*4 + {0,1,2,3}.
func trackBase(k int) int { return (k * SubSize) / LPCOrder }

// pickPulses selects, per 4-position track, the position of maximum
// |target| and its sign (a crude algebraic codebook).
func pickPulses(target []int32, pulses, signs *[LPCOrder]int32) {
	for k := 0; k < LPCOrder; k++ {
		base := trackBase(k)
		bestPos, bestMag, bestSign := int32(base), int32(-1), int32(1)
		for j := 0; j < 4; j++ {
			v := target[base+j]
			m := v
			if m < 0 {
				m = -m
			}
			if m > bestMag {
				bestMag = m
				bestPos = int32(base + j)
				if v < 0 {
					bestSign = -1
				} else {
					bestSign = 1
				}
			}
		}
		pulses[k] = bestPos
		signs[k] = bestSign
	}
}

// fixedGain computes a gain matching pulse excitation energy to the
// residual energy (integer sqrt of energy ratio proxy).
func fixedGain(target []int32) int32 {
	var e int32
	for n := 0; n < SubSize; n++ {
		e += (target[n] >> 3) * (target[n] >> 3) >> 4
		if e > 1<<28 {
			e = 1 << 28
		}
	}
	g := isqrt(e/SubSize) << 2
	if g < 1 {
		g = 1
	}
	if g > 8192 {
		g = 8192
	}
	return g
}

// Encode analyzes the input speech into frame parameters.
func Encode(speech []int16) []Params {
	nFrames := len(speech) / FrameSize
	out := make([]Params, nFrames)
	// Excitation history for pitch search (residual domain).
	exc := make([]int32, MaxLag+nFrames*FrameSize)
	hist := make([]int32, LPCOrder)
	x := make([]int32, FrameSize)
	res := make([]int32, SubSize)

	for f := 0; f < nFrames; f++ {
		for i := 0; i < FrameSize; i++ {
			x[i] = int32(speech[f*FrameSize+i])
		}
		r := autocorr(x, LPCOrder)
		a := levinson(r)
		out[f].A = a

		for s := 0; s < NumSub; s++ {
			sub := x[s*SubSize : (s+1)*SubSize]
			var h []int32
			if s == 0 {
				h = hist
			} else {
				h = x[s*SubSize-LPCOrder : s*SubSize]
			}
			residual(sub, h, &a, res)
			off := MaxLag + f*FrameSize + s*SubSize
			copy(exc[off:off+SubSize], res)

			lag := pitchSearch(exc, off)
			gp := pitchGain(exc, off, lag)
			out[f].Lag[s] = lag
			out[f].GainP[s] = gp

			// Remove the adaptive contribution, then pick pulses on
			// the remainder.
			tgt := make([]int32, SubSize)
			for n := 0; n < SubSize; n++ {
				tgt[n] = res[n] - (gp*exc[off+n-int(lag)])>>14
			}
			pickPulses(tgt, &out[f].Pulse[s], &out[f].Sign[s])
			out[f].GainC[s] = fixedGain(tgt)
		}
		copy(hist, x[FrameSize-LPCOrder:])
	}
	return out
}
