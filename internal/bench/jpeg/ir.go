package jpeg

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

func flat(m *[8][8]int32) []int32 {
	out := make([]int32, 64)
	for i := 0; i < 8; i++ {
		copy(out[i*8:], m[i][:])
	}
	return out
}

// commonGlobals installs the shared tables; returns their offsets.
type tables struct {
	dctC, qtab, zig int64
}

func installTables(pb *irbuild.Program) tables {
	return tables{
		dctC: pb.GlobalW("dctC", 64, flat(&dctC)),
		qtab: pb.GlobalW("qtab", 64, qtab[:]),
		zig:  pb.GlobalW("zigzag", 64, zigzag[:]),
	}
}

// matNest emits the triple nest out[a*8+b] = (sum_j f(j)) >> shift.
// addrA computes the row operand address from (a, j); addrB the column
// operand address from (j, b). Both receive fresh registers holding a,
// b, j (word-indexed) and must return an address register.
func matNest(f *irbuild.Func, label string, shift int64,
	outB ir.Reg,
	addrA func(a, j ir.Reg) ir.Reg, addrB func(j, b ir.Reg) ir.Reg) {

	a := f.Reg()
	f.MovI(a, 0)
	f.Block(label + "_a")
	b := f.Reg()
	f.MovI(b, 0)
	f.Block(label + "_b")
	acc := f.Reg()
	j := f.Reg()
	f.MovI(acc, 0)
	f.MovI(j, 0)
	f.Block(label + "_j")
	va := f.Reg()
	vb := f.Reg()
	m := f.Reg()
	f.LdW(va, addrA(a, j), 0)
	f.LdW(vb, addrB(j, b), 0)
	f.Mul(m, va, vb)
	f.Add(acc, acc, m)
	f.AddI(j, j, 1)
	f.BrI(ir.CmpLT, j, 8, label+"_j")
	f.Block(label + "_blatch")
	f.ShrI(acc, acc, shift)
	po := f.Reg()
	t := f.Reg()
	f.ShlI(t, a, 3)
	f.Add(t, t, b)
	f.ShlI(t, t, 2)
	f.Add(po, outB, t)
	f.StW(po, 0, acc)
	f.AddI(b, b, 1)
	f.BrI(ir.CmpLT, b, 8, label+"_b")
	f.Block(label + "_alatch")
	f.AddI(a, a, 1)
	f.BrI(ir.CmpLT, a, 8, label+"_a")
	f.Block(label + "_post")
}

// idx emits an address reg base + 4*(r*8 + c).
func idx(f *irbuild.Func, base ir.Reg, r, c ir.Reg) ir.Reg {
	t := f.Reg()
	a := f.Reg()
	f.ShlI(t, r, 3)
	f.Add(t, t, c)
	f.ShlI(t, t, 2)
	f.Add(a, base, t)
	return a
}

func buildEnc(img []byte) (*ir.Program, int64) {
	pb := irbuild.NewProgram(1 << 20)
	tb := installTables(pb)
	imgOff := pb.GlobalB("img", len(img), img)
	inOff := pb.GlobalW("in", 64, nil)
	tmpOff := pb.GlobalW("tmp", 64, nil)
	dctOff := pb.GlobalW("dct", 64, nil)
	outCap := Blocks * (64*2 + 2)
	outOff := pb.Global("out", int64(outCap), nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	cB := f.Const(tb.dctC)
	qB := f.Const(tb.qtab)
	zB := f.Const(tb.zig)
	inB := f.Const(inOff)
	tmpB := f.Const(tmpOff)
	dctB := f.Const(dctOff)
	op := f.Reg()
	f.MovI(op, outOff)
	acc := f.Reg()
	nbit := f.Reg()
	f.MovI(acc, 0)
	f.MovI(nbit, 0)
	by := f.Reg()
	f.MovI(by, 0)
	f.Block("byloop")
	bx := f.Reg()
	f.MovI(bx, 0)
	f.Block("bxloop")
	// Load the block with level shift: in[y*8+x] = img[...] - 128.
	{
		base := f.Reg()
		t := f.Reg()
		f.MulI(t, by, 8*Width)
		f.ShlI(base, bx, 3)
		f.Add(base, base, t)
		f.AddI(base, base, imgOff)
		y := f.Reg()
		pd := f.Reg()
		f.MovI(y, 0)
		f.Mov(pd, inB)
		f.Block("ldy")
		x := f.Reg()
		ps := f.Reg()
		f.MovI(x, 0)
		f.Mov(ps, base)
		f.Block("ldx")
		v := f.Reg()
		f.LdBU(v, ps, 0)
		f.SubI(v, v, 128)
		f.StW(pd, 0, v)
		f.AddI(ps, ps, 1)
		f.AddI(pd, pd, 4)
		f.AddI(x, x, 1)
		f.BrI(ir.CmpLT, x, 8, "ldx")
		f.Block("ldylatch")
		f.AddI(base, base, Width)
		f.AddI(y, y, 1)
		f.BrI(ir.CmpLT, y, 8, "ldy")
	}
	f.Block("fdct1")
	// tmp[k*8+n] = (sum_j C[k][j] * in[j*8+n]) >> 10
	matNest(f, "f1", 10, tmpB,
		func(a, j ir.Reg) ir.Reg { return idx(f, cB, a, j) },
		func(j, b ir.Reg) ir.Reg { return idx(f, inB, j, b) })
	// dct[k*8+m] = (sum_j tmp[k*8+j] * C[m][j]) >> 13
	matNest(f, "f2", 13, dctB,
		func(a, j ir.Reg) ir.Reg { return idx(f, tmpB, a, j) },
		func(j, b ir.Reg) ir.Reg { return idx(f, cB, b, j) })

	// Entropy coding: quantize in zigzag order, run-length + put-bits
	// with data-dependent flush loops (the Huffman-coder stand-in that
	// keeps this stage out of the loop buffer).
	{
		run := f.Reg()
		i := f.Reg()
		pz := f.Reg()
		f.MovI(run, 0)
		f.MovI(i, 0)
		f.Mov(pz, zB)
		f.Block("rle")
		z := f.Reg()
		zz := f.Reg()
		dv := f.Reg()
		qv := f.Reg()
		v := f.Reg()
		f.LdW(z, pz, 0)
		f.ShlI(zz, z, 2)
		a1 := f.Reg()
		f.Add(a1, dctB, zz)
		f.LdW(dv, a1, 0)
		a2 := f.Reg()
		f.Add(a2, qB, zz)
		f.LdW(qv, a2, 0)
		f.Div(v, dv, qv)
		f.BrI(ir.CmpNE, v, 0, "emit")
		f.Block("zrun")
		f.BrI(ir.CmpGE, run, 62, "emit")
		f.Block("zrun2")
		f.AddI(run, run, 1)
		f.Jump("rlelatch")
		f.Block("emit")
		f.MinI(v, v, 127)
		f.MaxI(v, v, -128)
		f.AddI(v, v, 128)
		op = emitPut(f, "p1", acc, nbit, op, run, symRunBits)
		op = emitPut(f, "p2", acc, nbit, op, v, symValBits)
		f.MovI(run, 0)
		f.Block("rlelatch")
		f.AddI(pz, pz, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, 64, "rle")
	}
	f.Block("eob")
	{
		e1 := f.Reg()
		f.MovI(e1, 63)
		op = emitPut(f, "pe1", acc, nbit, op, e1, symRunBits)
		e0 := f.Reg()
		f.MovI(e0, 511)
		op = emitPut(f, "pe2", acc, nbit, op, e0, symValBits)
	}
	f.Block("bxlatch")
	f.AddI(bx, bx, 1)
	f.BrI(ir.CmpLT, bx, Width/8, "bxloop")
	f.Block("bylatch")
	f.AddI(by, by, 1)
	f.BrI(ir.CmpLT, by, Height/8, "byloop")
	f.Block("finflush")
	// Final flush of the bit accumulator.
	f.BrI(ir.CmpEQ, nbit, 0, "done")
	f.Block("flushlast")
	sh := f.Reg()
	t := f.Reg()
	f.MovI(sh, 8)
	f.Sub(sh, sh, nbit)
	f.Shl(t, acc, sh)
	f.StB(op, 0, t)
	f.AddI(op, op, 1)
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}

// emitPut emits the put-bits sequence: acc = acc<<n | (bits & mask);
// nbit += n; while nbit >= 8 emit a byte. Returns the (same) output
// pointer register. The flush loop's unconditional back edge keeps it
// out of the loop buffer, as JPEG's real put_bits is.
func emitPut(f *irbuild.Func, label string, acc, nbit, op, bits ir.Reg, n int64) ir.Reg {
	t := f.Reg()
	f.AndI(t, bits, (1<<uint(n))-1)
	f.ShlI(acc, acc, n)
	f.Or(acc, acc, t)
	f.AddI(nbit, nbit, n)
	f.Block(label + "_flush")
	f.BrI(ir.CmpLT, nbit, 8, label+"_done")
	f.Block(label + "_emit")
	f.SubI(nbit, nbit, 8)
	b := f.Reg()
	f.Shr(b, acc, nbit)
	f.StB(op, 0, b)
	f.AddI(op, op, 1)
	f.Jump(label + "_flush")
	f.Block(label + "_done")
	return op
}

func buildDec(stream []byte) (*ir.Program, int64) {
	pb := irbuild.NewProgram(1 << 20)
	tb := installTables(pb)
	stOff := pb.GlobalB("stream", len(stream), stream)
	dctOff := pb.GlobalW("dct", 64, nil)
	tmpOff := pb.GlobalW("tmp", 64, nil)
	pixOff := pb.GlobalW("pix", 64, nil)
	outOff := pb.Global("img", Width*Height, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	cB := f.Const(tb.dctC)
	qB := f.Const(tb.qtab)
	zB := f.Const(tb.zig)
	dctB := f.Const(dctOff)
	tmpB := f.Const(tmpOff)
	pixB := f.Const(pixOff)
	sp := f.Reg()
	f.MovI(sp, stOff)
	acc := f.Reg()
	nbit := f.Reg()
	f.MovI(acc, 0)
	f.MovI(nbit, 0)
	stEnd := stOff + int64(len(stream))
	by := f.Reg()
	f.MovI(by, 0)
	f.Block("byloop")
	bx := f.Reg()
	f.MovI(bx, 0)
	f.Block("bxloop")
	// Clear dct (64).
	{
		k := f.Reg()
		p := f.Reg()
		z := f.Const(0)
		f.MovI(k, 0)
		f.Mov(p, dctB)
		f.Block("clr")
		f.StW(p, 0, z)
		f.AddI(p, p, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, 64, "clr")
	}
	f.Block("parse_pre")
	// Entropy parse: get-bits with refill loops, EOB break.
	{
		i := f.Reg()
		f.MovI(i, 0)
		f.Block("parse")
		run := f.Reg()
		val := f.Reg()
		emitGet(f, "g1", acc, nbit, sp, run, symRunBits, stEnd)
		emitGet(f, "g2", acc, nbit, sp, val, symValBits, stEnd)
		f.BrI(ir.CmpNE, run, 63, "notEob")
		f.Block("maybeEob")
		f.BrI(ir.CmpEQ, val, 511, "parse_done")
		f.Block("notEob")
		f.Add(i, i, run)
		f.BrI(ir.CmpGE, i, 64, "skipstore")
		f.Block("store")
		z := f.Reg()
		zz := f.Reg()
		f.ShlI(z, i, 2)
		za := f.Reg()
		f.Add(za, zB, z)
		f.LdW(zz, za, 0)
		f.ShlI(zz, zz, 2)
		qa := f.Reg()
		qv := f.Reg()
		f.Add(qa, qB, zz)
		f.LdW(qv, qa, 0)
		m := f.Reg()
		f.SubI(m, val, 128)
		f.Mul(m, m, qv)
		da := f.Reg()
		f.Add(da, dctB, zz)
		f.StW(da, 0, m)
		f.Block("skipstore")
		f.AddI(i, i, 1)
		f.Jump("parse")
		f.Block("parse_done")
	}
	// IDCT: tmp[n*8+m] = (sum_k C[k][n]*dct[k*8+m]) >> 10
	matNest(f, "i1", 10, tmpB,
		func(a, j ir.Reg) ir.Reg { return idx(f, cB, j, a) },
		func(j, b ir.Reg) ir.Reg { return idx(f, dctB, j, b) })
	// pix[n*8+p] = (sum_k tmp[n*8+k]*C[k][p]) >> 7
	matNest(f, "i2", 7, pixB,
		func(a, j ir.Reg) ir.Reg { return idx(f, tmpB, a, j) },
		func(j, b ir.Reg) ir.Reg { return idx(f, cB, j, b) })

	// Store with +128 unshift and clamp hammocks (the Figure 2 Clip).
	{
		base := f.Reg()
		t := f.Reg()
		f.MulI(t, by, 8*Width)
		f.ShlI(base, bx, 3)
		f.Add(base, base, t)
		f.AddI(base, base, outOff)
		y := f.Reg()
		ps := f.Reg()
		f.MovI(y, 0)
		f.Mov(ps, pixB)
		f.Block("sty")
		x := f.Reg()
		pd := f.Reg()
		f.MovI(x, 0)
		f.Mov(pd, base)
		f.Block("stx")
		v := f.Reg()
		f.LdW(v, ps, 0)
		f.AddI(v, v, 128)
		f.BrI(ir.CmpGE, v, 0, "sthf")
		f.Block("stlo")
		f.MovI(v, 0)
		f.Jump("stok")
		f.Block("sthf")
		f.BrI(ir.CmpLE, v, 255, "stok")
		f.Block("sthi")
		f.MovI(v, 255)
		f.Block("stok")
		f.StB(pd, 0, v)
		f.AddI(ps, ps, 4)
		f.AddI(pd, pd, 1)
		f.AddI(x, x, 1)
		f.BrI(ir.CmpLT, x, 8, "stx")
		f.Block("stylatch")
		f.AddI(base, base, Width)
		f.AddI(y, y, 1)
		f.BrI(ir.CmpLT, y, 8, "sty")
	}
	f.Block("bxlatch")
	f.AddI(bx, bx, 1)
	f.BrI(ir.CmpLT, bx, Width/8, "bxloop")
	f.Block("bylatch")
	f.AddI(by, by, 1)
	f.BrI(ir.CmpLT, by, Height/8, "byloop")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}

// emitGet emits the get-bits sequence: refill the accumulator byte by
// byte while it holds fewer than n bits (reading 0 past the stream
// end, as the reference does), then extract n bits into dst.
func emitGet(f *irbuild.Func, label string, acc, nbit, sp, dst ir.Reg, n int64, end int64) {
	f.Block(label + "_refill")
	f.BrI(ir.CmpGE, nbit, n, label+"_extract")
	f.Block(label + "_byte")
	b := f.Reg()
	f.MovI(b, 0)
	f.BrI(ir.CmpGE, sp, end, label+"_have")
	f.Block(label + "_load")
	f.LdBU(b, sp, 0)
	f.Block(label + "_have")
	f.ShlI(acc, acc, 8)
	f.Or(acc, acc, b)
	f.AddI(sp, sp, 1)
	f.AddI(nbit, nbit, 8)
	f.Jump(label + "_refill")
	f.Block(label + "_extract")
	f.SubI(nbit, nbit, n)
	f.Shr(dst, acc, nbit)
	f.AndI(dst, dst, (1<<uint(n))-1)
}
