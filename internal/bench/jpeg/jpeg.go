// Package jpeg implements the jpegenc / jpegdec benchmarks: a
// JPEG-style still-image codec substitute — 8x8 blocked integer DCT,
// quantization, zigzag reordering and run-length entropy coding — with
// the inner-nest structure the paper observes for the IJG code
// ("significant numbers of inner-nest loops for which the iteration
// counts were generally small, but varied across different loop
// invocations"), which caps jpegenc's buffer-issue fraction near 63%.
package jpeg

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/ir"
)

// Image geometry: 8x8 blocks.
const (
	Width  = 64
	Height = 48
	Blocks = (Width / 8) * (Height / 8)
)

// dctC is an integer 8x8 DCT-II basis in Q10 (rows = frequency k,
// cols = sample n): round(1024 * c(k) * cos((2n+1)k*pi/16) / 2) with
// c(0)=1/sqrt2. Precomputed constants (no floating point at runtime).
var dctC = [8][8]int32{
	{362, 362, 362, 362, 362, 362, 362, 362},
	{502, 426, 284, 100, -100, -284, -426, -502},
	{473, 196, -196, -473, -473, -196, 196, 473},
	{426, -100, -502, -284, 284, 502, 100, -426},
	{362, -362, -362, 362, 362, -362, -362, 362},
	{284, -502, 100, 426, -426, -100, 502, -284},
	{196, -473, 473, -196, -196, 473, -473, 196},
	{100, -284, 426, -502, 502, -426, 284, -100},
}

// qtab is a luminance-style quantization table.
var qtab = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag order.
var zigzag = [64]int32{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// fdctBlock computes out = C * in * C^T with Q10 basis and
// renormalizing shifts (>>10 after each pass, then >>3 overall scale).
func fdctBlock(in *[64]int32, out *[64]int32) {
	var tmp [64]int32
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			var acc int32
			for j := 0; j < 8; j++ {
				acc += dctC[k][j] * in[j*8+n]
			}
			tmp[k*8+n] = acc >> 10
		}
	}
	for k := 0; k < 8; k++ {
		for m := 0; m < 8; m++ {
			var acc int32
			for j := 0; j < 8; j++ {
				acc += tmp[k*8+j] * dctC[m][j]
			}
			out[k*8+m] = acc >> 13
		}
	}
}

// idctBlock computes out = C^T * in * C (the inverse for an orthogonal
// basis, with matching shifts).
func idctBlock(in *[64]int32, out *[64]int32) {
	var tmp [64]int32
	for n := 0; n < 8; n++ {
		for m := 0; m < 8; m++ {
			var acc int32
			for k := 0; k < 8; k++ {
				acc += dctC[k][n] * in[k*8+m]
			}
			tmp[n*8+m] = acc >> 10
		}
	}
	for n := 0; n < 8; n++ {
		for p := 0; p < 8; p++ {
			var acc int32
			for k := 0; k < 8; k++ {
				acc += tmp[n*8+k] * dctC[k][p]
			}
			out[n*8+p] = acc >> 7
		}
	}
}

// quantDiv mirrors the IR's rounding division toward zero.
func quantDiv(v, q int32) int32 { return v / q }

// Entropy coding uses 15-bit symbols bit-packed into a byte stream (a
// stand-in for JPEG's Huffman coder that keeps its defining property:
// the put-bits accumulator with data-dependent flush loops, which no
// loop buffer can hold). Symbol layout: run (6 bits) then value+128
// (9 bits, covering clamped -128..127 values biased positive); the
// end-of-block symbol is run=63, value bits = 511.
const symRunBits = 6
const symValBits = 9

// bitWriter mirrors the IR's put-bits structure exactly.
type bitWriter struct {
	out  []byte
	acc  int32 // pending bits, left-aligned in the low 24 bits
	nbit int32
}

func (w *bitWriter) put(bits, n int32) {
	w.acc = (w.acc << uint(n)) | (bits & ((1 << uint(n)) - 1))
	w.nbit += n
	for w.nbit >= 8 {
		w.nbit -= 8
		w.out = append(w.out, byte(w.acc>>uint(w.nbit)))
	}
}

func (w *bitWriter) flush() {
	if w.nbit > 0 {
		w.out = append(w.out, byte(w.acc<<uint(8-w.nbit)))
		w.nbit = 0
	}
}

// bitReader mirrors the IR's get-bits structure exactly.
type bitReader struct {
	in   []byte
	pos  int
	acc  int32
	nbit int32
}

func (r *bitReader) get(n int32) int32 {
	for r.nbit < n {
		var b int32
		if r.pos < len(r.in) {
			b = int32(r.in[r.pos])
		}
		r.pos++
		r.acc = (r.acc << 8) | b
		r.nbit += 8
	}
	r.nbit -= n
	v := (r.acc >> uint(r.nbit)) & ((1 << uint(n)) - 1)
	return v
}

// Encode runs the full encode pipeline, producing the bit-packed
// entropy stream.
func Encode(img []byte) []byte {
	var w bitWriter
	var in, dct [64]int32
	for by := 0; by < Height/8; by++ {
		for bx := 0; bx < Width/8; bx++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					in[y*8+x] = int32(img[(by*8+y)*Width+bx*8+x]) - 128
				}
			}
			fdctBlock(&in, &dct)
			// Quantize + zigzag + run-length + bit packing.
			run := int32(0)
			for i := 0; i < 64; i++ {
				v := quantDiv(dct[zigzag[i]], qtab[zigzag[i]])
				if v == 0 && run < 62 {
					run++
					continue
				}
				if v > 127 {
					v = 127
				}
				if v < -128 {
					v = -128
				}
				w.put(run, symRunBits)
				w.put(v+128, symValBits)
				run = 0
			}
			w.put(63, symRunBits)
			w.put(511, symValBits)
		}
	}
	w.flush()
	return w.out
}

// Decode reconstructs the image from the entropy stream.
func Decode(stream []byte) []byte {
	img := make([]byte, Width*Height)
	var dct, pix [64]int32
	r := bitReader{in: stream}
	for by := 0; by < Height/8; by++ {
		for bx := 0; bx < Width/8; bx++ {
			for i := range dct {
				dct[i] = 0
			}
			i := 0
			for {
				run := r.get(symRunBits)
				val := r.get(symValBits)
				if run == 63 && val == 511 {
					break
				}
				i += int(run)
				if i < 64 {
					dct[zigzag[i]] = (val - 128) * qtab[zigzag[i]]
				}
				i++
			}
			idctBlock(&dct, &pix)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := pix[y*8+x] + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					img[(by*8+y)*Width+bx*8+x] = byte(v)
				}
			}
		}
	}
	return img
}

func input() []byte { return bench.Image(Width, Height, 0x1A6) }

// Enc returns the jpegenc benchmark.
func Enc() bench.Benchmark {
	img := input()
	want := Encode(img)
	prog, outOff := buildEnc(img)
	return bench.Benchmark{
		Name:        "jpegenc",
		Description: "JPEG-style image encoder (DCT, quantization, RLE)",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpBytes(mem, outOff, want, "jpegenc.out")
		},
	}
}

// Dec returns the jpegdec benchmark.
func Dec() bench.Benchmark {
	stream := Encode(input())
	want := Decode(stream)
	prog, outOff := buildDec(stream)
	return bench.Benchmark{
		Name:        "jpegdec",
		Description: "JPEG-style image decoder (RLE, dequant, IDCT)",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpBytes(mem, outOff, want, "jpegdec.out")
		},
	}
}
