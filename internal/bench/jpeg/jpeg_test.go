package jpeg

import (
	"testing"

	"lpbuf/internal/bench"
	"lpbuf/internal/core"
	"lpbuf/internal/interp"
)

func TestRoundTripQuality(t *testing.T) {
	img := input()
	dec := Decode(Encode(img))
	var sumErr int64
	for i := range img {
		d := int64(dec[i]) - int64(img[i])
		sumErr += d * d
	}
	mse := sumErr / int64(len(img))
	if mse > 400 {
		t.Fatalf("MSE %d too high: codec is broken", mse)
	}
}

func TestIRMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		res, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Fatalf("%s: interp: %v", b.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestCompiledMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
			c, err := core.Compile(prog, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			if err := b.Check(res.Mem); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
		}
	}
}
