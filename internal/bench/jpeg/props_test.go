package jpeg

import (
	"math/rand"
	"testing"
)

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int32]bool{}
	for _, z := range zigzag {
		if z < 0 || z > 63 || seen[z] {
			t.Fatalf("zigzag invalid at %d", z)
		}
		seen[z] = true
	}
	if len(seen) != 64 {
		t.Fatal("zigzag misses positions")
	}
}

func TestBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var w bitWriter
	type sym struct{ v, n int32 }
	var syms []sym
	for i := 0; i < 500; i++ {
		n := int32(1 + rng.Intn(15))
		v := int32(rng.Int63()) & ((1 << uint(n)) - 1)
		syms = append(syms, sym{v, n})
		w.put(v, n)
	}
	w.flush()
	r := bitReader{in: w.out}
	for i, s := range syms {
		if got := r.get(s.n); got != s.v {
			t.Fatalf("symbol %d: got %d want %d (n=%d)", i, got, s.v, s.n)
		}
	}
}

func TestDCTRoundTripSmall(t *testing.T) {
	// fdct followed by idct reconstructs within quantization-free
	// truncation error.
	var in, dct, out [64]int32
	rng := rand.New(rand.NewSource(9))
	for i := range in {
		in[i] = int32(rng.Intn(256) - 128)
	}
	fdctBlock(&in, &dct)
	idctBlock(&dct, &out)
	// The integer DCT truncates at each pass (coefficients carry a /8
	// scale), so individual pixels can be tens of levels off, but the
	// average error must stay small.
	var sum int64
	for i := range in {
		d := int64(in[i] - out[i])
		if d < 0 {
			d = -d
		}
		if d > 80 {
			t.Fatalf("dct round trip error %d at %d (in=%d out=%d)", d, i, in[i], out[i])
		}
		sum += d
	}
	if mean := sum / 64; mean > 20 {
		t.Fatalf("mean |error| = %d", mean)
	}
}

func TestDCTBasisRowNorms(t *testing.T) {
	// All rows carry (approximately) equal energy: C*C^T ~ k*I.
	var norms [8]int64
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			norms[k] += int64(dctC[k][n]) * int64(dctC[k][n])
		}
	}
	for k := 1; k < 8; k++ {
		diff := norms[k] - norms[0]
		if diff < -2000 || diff > 2000 {
			t.Fatalf("row %d norm %d differs from row 0 norm %d", k, norms[k], norms[0])
		}
	}
}

func TestFlatImageCompressesWell(t *testing.T) {
	img := make([]byte, Width*Height)
	for i := range img {
		img[i] = 128
	}
	stream := Encode(img)
	// A flat image is all EOBs: ~2 bytes per block.
	if len(stream) > Blocks*4 {
		t.Fatalf("flat image stream %d bytes for %d blocks", len(stream), Blocks)
	}
}
