package mpeg2

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

func flatC() []int32 {
	out := make([]int32, 64)
	for i := 0; i < 8; i++ {
		copy(out[i*8:], dctC[i][:])
	}
	return out
}

func flatVideo(v [][]int32) []int32 {
	out := make([]int32, 0, len(v)*BufSize)
	for _, f := range v {
		out = append(out, f...)
	}
	return out
}

func fill128() []int32 {
	b := make([]int32, BufSize)
	for i := range b {
		b[i] = 128
	}
	return b
}

// matNest8 is the shared 8x8x8 matrix-multiply nest (see the jpeg
// benchmark for the same shape).
func matNest8(f *irbuild.Func, label string, shift int64, outB ir.Reg,
	addrA func(a, j ir.Reg) ir.Reg, addrB func(j, b ir.Reg) ir.Reg) {
	a := f.Reg()
	f.MovI(a, 0)
	f.Block(label + "_a")
	b := f.Reg()
	f.MovI(b, 0)
	f.Block(label + "_b")
	acc := f.Reg()
	j := f.Reg()
	f.MovI(acc, 0)
	f.MovI(j, 0)
	f.Block(label + "_j")
	va := f.Reg()
	vb := f.Reg()
	m := f.Reg()
	f.LdW(va, addrA(a, j), 0)
	f.LdW(vb, addrB(j, b), 0)
	f.Mul(m, va, vb)
	f.Add(acc, acc, m)
	f.AddI(j, j, 1)
	f.BrI(ir.CmpLT, j, 8, label+"_j")
	f.Block(label + "_blatch")
	f.ShrI(acc, acc, shift)
	po := f.Reg()
	t := f.Reg()
	f.ShlI(t, a, 3)
	f.Add(t, t, b)
	f.ShlI(t, t, 2)
	f.Add(po, outB, t)
	f.StW(po, 0, acc)
	f.AddI(b, b, 1)
	f.BrI(ir.CmpLT, b, 8, label+"_b")
	f.Block(label + "_alatch")
	f.AddI(a, a, 1)
	f.BrI(ir.CmpLT, a, 8, label+"_a")
	f.Block(label + "_post")
}

func widx(f *irbuild.Func, base ir.Reg, r, c ir.Reg) ir.Reg {
	t := f.Reg()
	a := f.Reg()
	f.ShlI(t, r, 3)
	f.Add(t, t, c)
	f.ShlI(t, t, 2)
	f.Add(a, base, t)
	return a
}

func buildEnc(video [][]int32) (*ir.Program, int64) {
	pb := irbuild.NewProgram(1 << 21)
	cOff := pb.GlobalW("dctC", 64, flatC())
	scanOff := pb.GlobalW("scan", 2*SearchR+1, scanOrder[:])
	vidOff := pb.GlobalW("video", Frames*BufSize, flatVideo(video))
	zrefOff := pb.GlobalW("zref", BufSize, fill128())
	inOff := pb.GlobalW("in", 64, nil)
	tmpOff := pb.GlobalW("tmp", 64, nil)
	dctOff := pb.GlobalW("dct", 64, nil)
	outCap := Frames * NumBlk * (2 + 64*2 + 2)
	outOff := pb.Global("out", int64(outCap), nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	cB := f.Const(cOff)
	inB := f.Const(inOff)
	tmpB := f.Const(tmpOff)
	dctB := f.Const(dctOff)
	op := f.Reg()
	f.MovI(op, outOff)
	fr := f.Reg()
	f.MovI(fr, 0)

	f.Block("frameloop")
	curB := f.Reg()
	refB := f.Reg()
	{
		t := f.Reg()
		f.MulI(t, fr, BufSize*4)
		f.AddI(curB, t, vidOff)
		f.BrI(ir.CmpEQ, fr, 0, "intra")
		f.Block("inter")
		f.SubI(refB, curB, BufSize*4)
		f.Jump("blocks")
		f.Block("intra")
		f.MovI(refB, zrefOff)
	}
	f.Block("blocks")
	by := f.Reg()
	f.MovI(by, 0)
	f.Block("byloop")
	bx := f.Reg()
	f.MovI(bx, 0)
	f.Block("bxloop")
	// off (byte) = 4*(Origin + by*8*Stride + bx*8)
	off := f.Reg()
	{
		t := f.Reg()
		f.MulI(t, by, 8*Stride)
		u := f.Reg()
		f.ShlI(u, bx, 3)
		f.Add(t, t, u)
		f.AddI(t, t, Origin)
		f.ShlI(off, t, 2)
	}
	// Motion estimation: dy, dx in [0,4] representing -2..2.
	bestSad := f.Reg()
	bestOff := f.Reg()
	bestDy := f.Reg()
	bestDx := f.Reg()
	{
		f.MovI(bestSad, 1<<30)
		f.MovI(bestDy, 2)
		f.MovI(bestDx, 2)
		ca := f.Reg()
		f.Add(ca, curB, off)
		f.Mov(bestOff, off)
		scanB := f.Reg()
		f.MovI(scanB, scanOff)
		dyi := f.Reg()
		f.MovI(dyi, 0)
		f.Block("dyloop")
		dy := f.Reg()
		{
			a := f.Reg()
			f.ShlI(a, dyi, 2)
			f.Add(a, a, scanB)
			f.LdW(dy, a, 0)
		}
		dxi := f.Reg()
		f.MovI(dxi, 0)
		f.Block("dxloop")
		dx := f.Reg()
		{
			a := f.Reg()
			f.ShlI(a, dxi, 2)
			f.Add(a, a, scanB)
			f.LdW(dx, a, 0)
		}
		// refOff = off + 4*(dy*Stride + dx)
		roff := f.Reg()
		{
			t := f.Reg()
			f.MulI(t, dy, Stride)
			f.Add(t, t, dx)
			f.ShlI(t, t, 2)
			f.Add(roff, off, t)
		}
		ra := f.Reg()
		f.Add(ra, refB, roff)
		// SAD 8x8 with |d| hammock.
		s := f.Reg()
		{
			f.MovI(s, 0)
			y := f.Reg()
			pc := f.Reg()
			pr := f.Reg()
			f.MovI(y, 0)
			f.Mov(pc, ca)
			f.Mov(pr, ra)
			f.Block("sady")
			x := f.Reg()
			f.MovI(x, 0)
			f.Block("sadx")
			cv := f.Reg()
			rv := f.Reg()
			d := f.Reg()
			f.LdW(cv, pc, 0)
			f.LdW(rv, pr, 0)
			f.Sub(d, cv, rv)
			f.BrI(ir.CmpGE, d, 0, "sadacc")
			f.Block("sadneg")
			z := f.Reg()
			f.MovI(z, 0)
			f.Sub(d, z, d)
			f.Block("sadacc")
			f.Add(s, s, d)
			f.AddI(pc, pc, 4)
			f.AddI(pr, pr, 4)
			f.AddI(x, x, 1)
			f.BrI(ir.CmpLT, x, 8, "sadx")
			f.Block("sadterm")
			// Early termination: this candidate cannot win.
			f.Br(ir.CmpGE, s, bestSad, "sadcmp")
			f.Block("sadylatch")
			f.AddI(pc, pc, (Stride-8)*4)
			f.AddI(pr, pr, (Stride-8)*4)
			f.AddI(y, y, 1)
			f.BrI(ir.CmpLT, y, 8, "sady")
		}
		f.Block("sadcmp")
		f.Br(ir.CmpGE, s, bestSad, "menext")
		f.Block("metake")
		f.Mov(bestSad, s)
		f.Mov(bestOff, roff)
		f.AddI(bestDy, dy, 2)
		f.AddI(bestDx, dx, 2)
		f.Block("menext")
		f.AddI(dxi, dxi, 1)
		f.BrI(ir.CmpLE, dxi, 2*SearchR-1, "dxloop")
		f.Block("dylatch")
		f.AddI(dyi, dyi, 1)
		f.BrI(ir.CmpLE, dyi, 2*SearchR-1, "dyloop")
	}
	f.Block("resid")
	// Residual block: in[y*8+x] = cur - ref(best).
	{
		y := f.Reg()
		pc := f.Reg()
		pr := f.Reg()
		pd := f.Reg()
		f.Add(pc, curB, off)
		f.Add(pr, refB, bestOff)
		f.Mov(pd, inB)
		f.MovI(y, 0)
		f.Block("ry")
		x := f.Reg()
		f.MovI(x, 0)
		f.Block("rx")
		cv := f.Reg()
		rv := f.Reg()
		d := f.Reg()
		f.LdW(cv, pc, 0)
		f.LdW(rv, pr, 0)
		f.Sub(d, cv, rv)
		f.StW(pd, 0, d)
		f.AddI(pc, pc, 4)
		f.AddI(pr, pr, 4)
		f.AddI(pd, pd, 4)
		f.AddI(x, x, 1)
		f.BrI(ir.CmpLT, x, 8, "rx")
		f.Block("rylatch")
		f.AddI(pc, pc, (Stride-8)*4)
		f.AddI(pr, pr, (Stride-8)*4)
		f.AddI(y, y, 1)
		f.BrI(ir.CmpLT, y, 8, "ry")
	}
	f.Block("fdct")
	matNest8(f, "f1", 10, tmpB,
		func(a, j ir.Reg) ir.Reg { return widx(f, cB, a, j) },
		func(j, b ir.Reg) ir.Reg { return widx(f, inB, j, b) })
	matNest8(f, "f2", 13, dctB,
		func(a, j ir.Reg) ir.Reg { return widx(f, tmpB, a, j) },
		func(j, b ir.Reg) ir.Reg { return widx(f, cB, b, j) })
	f.Block("emitmv")
	f.StB(op, 0, bestDy)
	f.StB(op, 1, bestDx)
	f.AddI(op, op, 2)
	// RLE raster order.
	{
		run := f.Reg()
		i := f.Reg()
		pd := f.Reg()
		f.MovI(run, 0)
		f.MovI(i, 0)
		f.Mov(pd, dctB)
		f.Block("rle")
		dv := f.Reg()
		v := f.Reg()
		f.LdW(dv, pd, 0)
		f.DivI(v, dv, QuantVal)
		f.BrI(ir.CmpNE, v, 0, "emit")
		f.Block("zrun")
		f.BrI(ir.CmpGE, run, 254, "emit")
		f.Block("zrun2")
		f.AddI(run, run, 1)
		f.Jump("rlelatch")
		f.Block("emit")
		f.MinI(v, v, 127)
		f.MaxI(v, v, -128)
		f.StB(op, 0, run)
		f.StB(op, 1, v)
		f.AddI(op, op, 2)
		f.MovI(run, 0)
		f.Block("rlelatch")
		f.AddI(pd, pd, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, 64, "rle")
	}
	f.Block("eob")
	{
		e1 := f.Const(255)
		e0 := f.Const(0)
		f.StB(op, 0, e1)
		f.StB(op, 1, e0)
		f.AddI(op, op, 2)
	}
	f.Block("bxlatch")
	f.AddI(bx, bx, 1)
	f.BrI(ir.CmpLT, bx, BlocksX, "bxloop")
	f.Block("bylatch")
	f.AddI(by, by, 1)
	f.BrI(ir.CmpLT, by, BlocksY, "byloop")
	f.Block("framelatch")
	f.AddI(fr, fr, 1)
	f.BrI(ir.CmpLT, fr, Frames, "frameloop")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}

func buildDec(stream []byte) (*ir.Program, int64) {
	pb := irbuild.NewProgram(1 << 21)
	cOff := pb.GlobalW("dctC", 64, flatC())
	stOff := pb.GlobalB("stream", len(stream), stream)
	clipOff := pb.GlobalB("clip", 2048, clipTab())
	init := make([]int32, Frames*BufSize)
	for i := range init {
		init[i] = 128
	}
	recOff := pb.GlobalW("recon", Frames*BufSize, init)
	zrefOff := pb.GlobalW("zref", BufSize, fill128())
	dctOff := pb.GlobalW("dct", 64, nil)
	tmpOff := pb.GlobalW("tmp", 64, nil)
	pixOff := pb.GlobalW("pix", 64, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	cB := f.Const(cOff)
	clipB := f.Const(clipOff + 768)
	dctB := f.Const(dctOff)
	tmpB := f.Const(tmpOff)
	pixB := f.Const(pixOff)
	sp := f.Reg()
	f.MovI(sp, stOff)
	fr := f.Reg()
	f.MovI(fr, 0)

	f.Block("frameloop")
	curB := f.Reg()
	prevB := f.Reg()
	{
		t := f.Reg()
		f.MulI(t, fr, BufSize*4)
		f.AddI(curB, t, recOff)
		f.BrI(ir.CmpEQ, fr, 0, "first")
		f.Block("later")
		f.SubI(prevB, curB, BufSize*4)
		f.Jump("blocks")
		f.Block("first")
		f.MovI(prevB, zrefOff)
	}
	f.Block("blocks")
	by := f.Reg()
	f.MovI(by, 0)
	f.Block("byloop")
	bx := f.Reg()
	f.MovI(bx, 0)
	f.Block("bxloop")
	off := f.Reg()
	{
		t := f.Reg()
		f.MulI(t, by, 8*Stride)
		u := f.Reg()
		f.ShlI(u, bx, 3)
		f.Add(t, t, u)
		f.AddI(t, t, Origin)
		f.ShlI(off, t, 2)
	}
	dy := f.Reg()
	dx := f.Reg()
	f.LdBU(dy, sp, 0)
	f.LdBU(dx, sp, 1)
	f.AddI(sp, sp, 2)
	f.SubI(dy, dy, 2)
	f.SubI(dx, dx, 2)
	// Clear dct.
	{
		k := f.Reg()
		p := f.Reg()
		z := f.Const(0)
		f.MovI(k, 0)
		f.Mov(p, dctB)
		f.Block("clr")
		f.StW(p, 0, z)
		f.AddI(p, p, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, 64, "clr")
	}
	f.Block("parse_pre")
	{
		i := f.Reg()
		f.MovI(i, 0)
		f.Block("parse")
		run := f.Reg()
		val := f.Reg()
		f.LdBU(run, sp, 0)
		f.LdB(val, sp, 1)
		f.AddI(sp, sp, 2)
		f.BrI(ir.CmpNE, run, 255, "notEob")
		f.Block("maybeEob")
		f.BrI(ir.CmpEQ, val, 0, "parse_done")
		f.Block("notEob")
		f.Add(i, i, run)
		f.BrI(ir.CmpGE, i, 64, "skipstore")
		f.Block("store")
		m := f.Reg()
		da := f.Reg()
		f.MulI(m, val, QuantVal)
		f.ShlI(da, i, 2)
		f.Add(da, da, dctB)
		f.StW(da, 0, m)
		f.Block("skipstore")
		f.AddI(i, i, 1)
		f.Jump("parse")
		f.Block("parse_done")
	}
	matNest8(f, "i1", 10, tmpB,
		func(a, j ir.Reg) ir.Reg { return widx(f, cB, j, a) },
		func(j, b ir.Reg) ir.Reg { return widx(f, dctB, j, b) })
	matNest8(f, "i2", 7, pixB,
		func(a, j ir.Reg) ir.Reg { return widx(f, tmpB, a, j) },
		func(j, b ir.Reg) ir.Reg { return widx(f, cB, j, b) })

	// Add_Block (Figure 2): cur[..] = Clip[pix + pred].
	{
		poff := f.Reg()
		t := f.Reg()
		f.MulI(t, dy, Stride)
		f.Add(t, t, dx)
		f.ShlI(t, t, 2)
		f.Add(poff, off, t)
		bp := f.Reg()
		rfp := f.Reg()
		pp := f.Reg()
		f.Mov(bp, pixB)
		f.Add(rfp, curB, off)
		f.Add(pp, prevB, poff)
		y := f.Reg()
		f.MovI(y, 0)
		f.Block("aby")
		x := f.Reg()
		f.MovI(x, 0)
		f.Block("abx")
		v := f.Reg()
		pv := f.Reg()
		cv := f.Reg()
		ca := f.Reg()
		f.LdW(v, bp, 0)
		f.LdW(pv, pp, 0)
		f.Add(v, v, pv)
		f.Add(ca, clipB, v)
		f.LdBU(cv, ca, 0)
		f.StW(rfp, 0, cv)
		f.AddI(bp, bp, 4)
		f.AddI(pp, pp, 4)
		f.AddI(rfp, rfp, 4)
		f.AddI(x, x, 1)
		f.BrI(ir.CmpLT, x, 8, "abx")
		f.Block("abylatch")
		f.AddI(pp, pp, (Stride-8)*4)
		f.AddI(rfp, rfp, (Stride-8)*4)
		f.AddI(y, y, 1)
		f.BrI(ir.CmpLT, y, 8, "aby")
	}
	f.Block("bxlatch")
	f.AddI(bx, bx, 1)
	f.BrI(ir.CmpLT, bx, BlocksX, "bxloop")
	f.Block("bylatch")
	f.AddI(by, by, 1)
	f.BrI(ir.CmpLT, by, BlocksY, "byloop")
	f.Block("framelatch")
	f.AddI(fr, fr, 1)
	f.BrI(ir.CmpLT, fr, Frames, "frameloop")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), recOff
}

// Enc returns the mpeg2enc benchmark.
func Enc() bench.Benchmark {
	video := Video()
	want := Encode(video)
	prog, outOff := buildEnc(video)
	return bench.Benchmark{
		Name:        "mpeg2enc",
		Description: "MPEG-2-style video encoder (motion estimation, DCT, RLE)",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpBytes(mem, outOff, want, "mpeg2enc.out")
		},
	}
}

// Dec returns the mpeg2dec benchmark.
func Dec() bench.Benchmark {
	stream := Encode(Video())
	wantFrames := Decode(stream)
	want := flatVideo(wantFrames)
	prog, recOff := buildDec(stream)
	return bench.Benchmark{
		Name:        "mpeg2dec",
		Description: "MPEG-2-style video decoder (Add_Block is the Figure 2 loop)",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpWords(mem, recOff, want, "mpeg2dec.recon")
		},
	}
}
