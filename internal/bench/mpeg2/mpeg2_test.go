package mpeg2

import (
	"testing"

	"lpbuf/internal/bench"
	"lpbuf/internal/core"
	"lpbuf/internal/interp"
)

func TestCodecQuality(t *testing.T) {
	video := Video()
	dec := Decode(Encode(video))
	// Despite open-loop encoding drift, the reconstruction should stay
	// reasonably close to the source.
	var sumErr, n int64
	for f := 0; f < Frames; f++ {
		for y := 0; y < Height; y++ {
			for x := 0; x < Width; x++ {
				i := Origin + y*Stride + x
				d := int64(dec[f][i] - video[f][i])
				sumErr += d * d
				n++
			}
		}
	}
	if mse := sumErr / n; mse > 800 {
		t.Fatalf("MSE %d too high", mse)
	}
}

func TestIRMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		res, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Fatalf("%s: interp: %v", b.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestCompiledMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
			c, err := core.Compile(prog, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			if err := b.Check(res.Mem); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
		}
	}
}
