package mpeg2

import "testing"

func TestClipTable(t *testing.T) {
	tab := clipTab()
	for i, b := range tab {
		v := i - 768
		want := v
		if want < 0 {
			want = 0
		}
		if want > 255 {
			want = 255
		}
		if int(b) != want {
			t.Fatalf("clip[%d] = %d, want %d", i, b, want)
		}
	}
}

func TestScanOrderCoversWindow(t *testing.T) {
	seen := map[int32]bool{}
	for _, d := range scanOrder {
		seen[d] = true
	}
	for d := int32(-SearchR); d <= SearchR; d++ {
		if !seen[d] {
			t.Fatalf("scan order misses %d", d)
		}
	}
	if scanOrder[0] != 0 {
		t.Fatal("scan order must start at the center")
	}
}

func TestSadProperties(t *testing.T) {
	v := Video()
	// SAD of a block with itself is 0.
	off := Origin + 8*Stride + 8
	if s := sad(v[0], off, v[0], off, 1<<30); s != 0 {
		t.Fatalf("self-SAD = %d", s)
	}
	// Early termination returns at least the limit when it fires.
	full := sad(v[0], off, v[1], off, 1<<30)
	if full > 0 {
		part := sad(v[0], off, v[1], off, 1)
		if part < 1 {
			t.Fatalf("terminated SAD %d below limit", part)
		}
	}
}

func TestMotionSearchFindsDrift(t *testing.T) {
	// The synthetic scene drifts (+1,+1) per frame: most blocks should
	// pick that vector.
	video := Video()
	stream := Encode(video)
	hits, blocks := 0, 0
	pos := 0
	// Skip frame 0 (intra); scan frame 1's block headers.
	for b := 0; b < NumBlk; b++ { // frame 0
		pos += 2
		for {
			r, v := stream[pos], stream[pos+1]
			pos += 2
			if r == 255 && v == 0 {
				break
			}
		}
	}
	for b := 0; b < NumBlk; b++ { // frame 1
		dy := int(stream[pos]) - 2
		dx := int(stream[pos+1]) - 2
		pos += 2
		blocks++
		if dy == 1 && dx == 1 {
			hits++
		}
		for {
			r, v := stream[pos], stream[pos+1]
			pos += 2
			if r == 255 && v == 0 {
				break
			}
		}
	}
	if hits*2 < blocks {
		t.Fatalf("only %d/%d blocks found the (1,1) drift", hits, blocks)
	}
}
