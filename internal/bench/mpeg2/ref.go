// Package mpeg2 implements the mpeg2enc / mpeg2dec benchmarks: a
// block-based video codec substitute with motion estimation/compensation,
// 8x8 integer DCT, quantization and RLE. mpeg2dec contains the paper's
// Figure 2 loop (Add_Block's clip-table loop, *rfp++ = Clip[*bp++ +
// 128]); mpeg2enc reproduces the paper's pathology — "many large,
// highly nested loop structures which only iterate several times"
// (the +-2 motion search), keeping its buffer-issue fraction low.
package mpeg2

import "lpbuf/internal/bench"

// Video geometry.
const (
	Width    = 64
	Height   = 32
	Border   = 2
	Stride   = Width + 2*Border
	BufSize  = (Height + 2*Border) * Stride
	Origin   = Border*Stride + Border
	Frames   = 6
	BlocksX  = Width / 8
	BlocksY  = Height / 8
	NumBlk   = BlocksX * BlocksY
	SearchR  = 2 // +-2 pixel motion search
	QuantVal = 12
)

// dct basis (Q10), same substitute basis as the jpeg benchmark.
var dctC = [8][8]int32{
	{362, 362, 362, 362, 362, 362, 362, 362},
	{502, 426, 284, 100, -100, -284, -426, -502},
	{473, 196, -196, -473, -473, -196, 196, 473},
	{426, -100, -502, -284, 284, 502, 100, -426},
	{362, -362, -362, 362, 362, -362, -362, 362},
	{284, -502, 100, 426, -426, -100, 502, -284},
	{196, -473, 473, -196, -196, 473, -473, 196},
	{100, -284, 426, -502, 502, -426, 284, -100},
}

func fdct(in, out *[64]int32) {
	var tmp [64]int32
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			var acc int32
			for j := 0; j < 8; j++ {
				acc += dctC[k][j] * in[j*8+n]
			}
			tmp[k*8+n] = acc >> 10
		}
	}
	for k := 0; k < 8; k++ {
		for m := 0; m < 8; m++ {
			var acc int32
			for j := 0; j < 8; j++ {
				acc += tmp[k*8+j] * dctC[m][j]
			}
			out[k*8+m] = acc >> 13
		}
	}
}

func idct(in, out *[64]int32) {
	var tmp [64]int32
	for n := 0; n < 8; n++ {
		for m := 0; m < 8; m++ {
			var acc int32
			for k := 0; k < 8; k++ {
				acc += dctC[k][n] * in[k*8+m]
			}
			tmp[n*8+m] = acc >> 10
		}
	}
	for n := 0; n < 8; n++ {
		for p := 0; p < 8; p++ {
			var acc int32
			for k := 0; k < 8; k++ {
				acc += tmp[n*8+k] * dctC[k][p]
			}
			out[n*8+p] = acc >> 7
		}
	}
}

// newBuf allocates a padded frame buffer with 128 borders.
func newBuf() []int32 {
	b := make([]int32, BufSize)
	for i := range b {
		b[i] = 128
	}
	return b
}

// Video synthesizes Frames padded frames: a drifting textured scene.
func Video() [][]int32 {
	base := bench.Image(Width+16, Height+16, 0x3E6)
	out := make([][]int32, Frames)
	for f := 0; f < Frames; f++ {
		buf := newBuf()
		// Scene drifts diagonally one pixel per frame plus a little noise.
		rng := bench.NewRand(uint64(0xF00 + f))
		for y := 0; y < Height; y++ {
			for x := 0; x < Width; x++ {
				v := int32(base[(y+f)*(Width+16)+x+f]) + int32(rng.Intn(5)-2)
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				buf[Origin+y*Stride+x] = v
			}
		}
		out[f] = buf
	}
	return out
}

// scanOrder visits motion candidates center-out.
var scanOrder = [2*SearchR + 1]int32{0, 1, -1, 2, -2}

// sad computes the sum of absolute differences between the current
// block and a candidate prediction, with branchy |x| (as C abs is) and
// the reference encoder's early termination: once the partial sum
// reaches the best distance so far, the remaining rows are skipped.
// The data-dependent exit is what keeps this nest from collapsing into
// a single bufferable loop, reproducing mpeg2enc's poor buffer issue.
func sad(cur []int32, curOff int, ref []int32, refOff int, limit int32) int32 {
	var s int32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			d := cur[curOff+y*Stride+x] - ref[refOff+y*Stride+x]
			if d < 0 {
				d = -d
			}
			s += d
		}
		if s >= limit {
			break
		}
	}
	return s
}

// Encode produces the bitstream: per frame, per block: [dy+2, dx+2,
// RLE pairs..., 255, 0]. Frame 0 is intra (mv encoded as 2,2 and
// prediction = the 128 border value buffer).
func Encode(video [][]int32) []byte {
	var out []byte
	zeroRef := newBuf() // all-128 reference for intra frames
	var in, dct [64]int32
	for f := 0; f < len(video); f++ {
		cur := video[f]
		var ref []int32
		if f == 0 {
			ref = zeroRef
		} else {
			ref = video[f-1] // open-loop reference
		}
		for by := 0; by < BlocksY; by++ {
			for bx := 0; bx < BlocksX; bx++ {
				off := Origin + by*8*Stride + bx*8
				// Motion search (+-SearchR), center-first scan order so
				// the early-termination limit tightens quickly.
				bestSad := int32(1 << 30)
				bestDy, bestDx := int32(0), int32(0)
				for dyi := 0; dyi < 2*SearchR+1; dyi++ {
					dy := int(scanOrder[dyi])
					for dxi := 0; dxi < 2*SearchR+1; dxi++ {
						dx := int(scanOrder[dxi])
						s := sad(cur, off, ref, off+dy*Stride+dx, bestSad)
						if s < bestSad {
							bestSad = s
							bestDy, bestDx = int32(dy), int32(dx)
						}
					}
				}
				pOff := off + int(bestDy)*Stride + int(bestDx)
				// Residual block.
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						in[y*8+x] = cur[off+y*Stride+x] - ref[pOff+y*Stride+x]
					}
				}
				fdct(&in, &dct)
				out = append(out, byte(bestDy+2), byte(bestDx+2))
				// RLE in raster order (simplified: no zigzag).
				run := int32(0)
				for i := 0; i < 64; i++ {
					v := dct[i] / QuantVal
					if v == 0 && run < 254 {
						run++
						continue
					}
					if v > 127 {
						v = 127
					}
					if v < -128 {
						v = -128
					}
					out = append(out, byte(run), byte(v))
					run = 0
				}
				out = append(out, 255, 0)
			}
		}
	}
	return out
}

// clipTab is the Figure 2 Clip table: clipTab[v+768] clamps v to
// 0..255 (sized to cover worst-case IDCT output plus prediction).
func clipTab() []byte {
	t := make([]byte, 2048)
	for i := range t {
		v := i - 768
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		t[i] = byte(v)
	}
	return t
}

// Decode reconstructs the video.
func Decode(stream []byte) [][]int32 {
	clip := clipTab()
	prev := newBuf()
	var frames [][]int32
	var dct, pix [64]int32
	pos := 0
	for f := 0; f < Frames; f++ {
		cur := newBuf()
		for by := 0; by < BlocksY; by++ {
			for bx := 0; bx < BlocksX; bx++ {
				off := Origin + by*8*Stride + bx*8
				dy := int32(stream[pos]) - 2
				dx := int32(stream[pos+1]) - 2
				pos += 2
				for i := range dct {
					dct[i] = 0
				}
				i := 0
				for {
					run := int32(stream[pos])
					val := int32(int8(stream[pos+1]))
					pos += 2
					if run == 255 && val == 0 {
						break
					}
					i += int(run)
					if i < 64 {
						dct[i] = val * QuantVal
					}
					i++
				}
				idct(&dct, &pix)
				// Add_Block: *rfp++ = Clip[*bp++ + pred] — the Figure 2
				// loop, with the prediction added in.
				pOff := off + int(dy)*Stride + int(dx)
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						v := pix[y*8+x] + prev[pOff+y*Stride+x]
						cur[off+y*Stride+x] = int32(clip[v+768])
					}
				}
			}
		}
		frames = append(frames, cur)
		prev = cur
	}
	return frames
}
