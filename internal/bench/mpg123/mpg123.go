// Package mpg123 implements the mpg123 benchmark: an MPEG-audio-style
// subband synthesis decoder substitute — per granule, a 32x32
// matrixing transform, a sliding synthesis FIFO, and three band-split
// 16-tap windowing filters with unrolled bodies. Its hot working set
// is deliberately spread across several mid-sized loops whose combined
// footprint exceeds a 256-op buffer, reproducing the paper's
// observation that mpg123 "struggles except for very large buffer
// sizes" because its hot loops "must all remain in the loop buffer
// simultaneously".
package mpg123

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

const (
	NumBands  = 32
	FifoLen   = 512
	Taps      = 16
	Granules  = 160
	WindowLen = NumBands * Taps // 512
)

// matrix is the 32x32 integer "synthesis matrix" (Q10), built from the
// same integer triangle-cosine family as the other benchmarks.
func matrix() []int32 {
	m := make([]int32, NumBands*NumBands)
	for k := 0; k < NumBands; k++ {
		for n := 0; n < NumBands; n++ {
			// tri(p) is a triangle wave of period 4096 scaled to +-1024.
			p := (2*n + 1) * k * 32 % 4096
			var v int32
			if p < 2048 {
				v = int32(p - 1024)
			} else {
				v = int32(3072 - p)
			}
			if k == 0 {
				v = 724 // ~1024/sqrt(2)
			}
			m[k*NumBands+n] = v
		}
	}
	return m
}

// window is the 512-entry synthesis window (Q10): a decaying ripple.
func window() []int32 {
	w := make([]int32, WindowLen)
	for i := range w {
		decay := int32(1024 - i*2)
		if decay < 16 {
			decay = 16
		}
		sign := int32(1)
		if (i/NumBands)%2 == 1 {
			sign = -1
		}
		w[i] = sign * decay
	}
	return w
}

// input synthesizes Granules*32 subband coefficients.
func input() []int32 {
	rng := bench.NewRand(0x123)
	in := make([]int32, Granules*NumBands)
	for i := range in {
		// Spectral shape: lower bands carry more energy.
		band := i % NumBands
		amp := 4096 >> uint(band/6)
		in[i] = int32(rng.Intn(2*amp+1) - amp)
	}
	return in
}

// Decode is the reference synthesis pipeline.
func Decode(in []int32) []int16 {
	m := matrix()
	w := window()
	fifo := make([]int32, FifoLen)
	out := make([]int16, Granules*NumBands)

	for g := 0; g < Granules; g++ {
		s := in[g*NumBands : (g+1)*NumBands]
		// 1. Dequant/descale (32, unrolled x4 in the IR).
		var sc [NumBands]int32
		for i := 0; i < NumBands; i++ {
			v := s[i]
			sc[i] = v + (v >> 3)
		}
		// 2. Matrixing: v[k] = sum_n M[k][n]*sc[n] >> 10, saturated.
		var vvec [NumBands]int32
		for k := 0; k < NumBands; k++ {
			var acc int32
			for n := 0; n < NumBands; n++ {
				acc += m[k*NumBands+n] * sc[n] >> 6
			}
			acc >>= 4
			if acc > 1<<24 {
				acc = 1 << 24
			}
			if acc < -(1 << 24) {
				acc = -(1 << 24)
			}
			vvec[k] = acc
		}
		// 3. FIFO shift by 32 (the sliding synthesis buffer).
		copy(fifo[NumBands:], fifo[:FifoLen-NumBands])
		copy(fifo[:NumBands], vvec[:])
		// 4. Windowing in three bands (bass 0..9, mid 10..20, treble
		// 21..31), each its own loop in the IR.
		var pcm [NumBands]int32
		bandRanges := [3][2]int{{0, 10}, {10, 21}, {21, 32}}
		for b := 0; b < 3; b++ {
			for j := bandRanges[b][0]; j < bandRanges[b][1]; j++ {
				var acc int32
				for i := 0; i < Taps; i++ {
					acc += w[j+NumBands*i] * (fifo[j+NumBands*i] >> 10)
				}
				pcm[j] = acc >> 10
			}
		}
		// 5. Output clamp (branchy saturation).
		for j := 0; j < NumBands; j++ {
			v := pcm[j]
			if v > 32767 {
				v = 32767
			} else if v < -32768 {
				v = -32768
			}
			out[g*NumBands+j] = int16(v)
		}
	}
	return out
}

// Bench returns the mpg123 benchmark.
func Bench() bench.Benchmark {
	in := input()
	want := Decode(in)
	prog, outOff := build(in)
	return bench.Benchmark{
		Name:        "mpg123",
		Description: "MPEG-audio-style subband synthesis decoder",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpHalf(mem, outOff, want, "mpg123.out")
		},
	}
}

func build(in []int32) (*ir.Program, int64) {
	pb := irbuild.NewProgram(1 << 20)
	mOff := pb.GlobalW("matrix", NumBands*NumBands, matrix())
	wOff := pb.GlobalW("window", WindowLen, window())
	inOff := pb.GlobalW("in", len(in), in)
	scOff := pb.GlobalW("sc", NumBands, nil)
	vOff := pb.GlobalW("v", NumBands, nil)
	fifoOff := pb.GlobalW("fifo", FifoLen, nil)
	pcmOff := pb.GlobalW("pcm", NumBands, nil)
	outOff := pb.Global("out", int64(2*Granules*NumBands), nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	mB := f.Const(mOff)
	wB := f.Const(wOff)
	scB := f.Const(scOff)
	vB := f.Const(vOff)
	fifoB := f.Const(fifoOff)
	pcmB := f.Const(pcmOff)
	ip := f.Reg()
	opp := f.Reg()
	g := f.Reg()
	f.MovI(ip, inOff)
	f.MovI(opp, outOff)
	f.MovI(g, 0)

	f.Block("granule")
	// 1. Descale, unrolled x4 (8 trips).
	{
		i := f.Reg()
		ps := f.Reg()
		pd := f.Reg()
		f.MovI(i, 0)
		f.Mov(ps, ip)
		f.Mov(pd, scB)
		f.Block("descale")
		for u := int64(0); u < 4; u++ {
			v := f.Reg()
			t := f.Reg()
			f.LdW(v, ps, 4*u)
			f.ShrI(t, v, 3)
			f.Add(v, v, t)
			f.StW(pd, 4*u, v)
		}
		f.AddI(ps, ps, 16)
		f.AddI(pd, pd, 16)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, NumBands/4, "descale")
	}
	f.Block("matrix_pre")
	// 2. Matrixing nest (32x32) with saturation in the latch.
	{
		k := f.Reg()
		pm := f.Reg()
		pv := f.Reg()
		f.MovI(k, 0)
		f.Mov(pm, mB)
		f.Mov(pv, vB)
		f.Block("mat_outer")
		acc := f.Reg()
		n := f.Reg()
		psc := f.Reg()
		f.MovI(acc, 0)
		f.MovI(n, 0)
		f.Mov(psc, scB)
		f.Block("mat_inner")
		for u := int64(0); u < 4; u++ {
			mv := f.Reg()
			sv := f.Reg()
			mm := f.Reg()
			f.LdW(mv, pm, 4*u)
			f.LdW(sv, psc, 4*u)
			f.Mul(mm, mv, sv)
			f.ShrI(mm, mm, 6)
			f.Add(acc, acc, mm)
		}
		f.AddI(pm, pm, 16)
		f.AddI(psc, psc, 16)
		f.AddI(n, n, 1)
		f.BrI(ir.CmpLT, n, NumBands/4, "mat_inner")
		f.Block("mat_latch")
		f.ShrI(acc, acc, 4)
		f.MinI(acc, acc, 1<<24)
		f.MaxI(acc, acc, -(1 << 24))
		f.StW(pv, 0, acc)
		f.AddI(pv, pv, 4)
		f.AddI(k, k, 1)
		f.BrI(ir.CmpLT, k, NumBands, "mat_outer")
	}
	f.Block("shift_pre")
	// 3. FIFO shift by 32 words, back to front, unrolled x4 (120 trips).
	{
		i := f.Reg()
		ps := f.Reg()
		pd := f.Reg()
		f.MovI(i, 0)
		f.AddI(ps, fifoB, int64(4*(FifoLen-NumBands-8)))
		f.AddI(pd, fifoB, int64(4*(FifoLen-8)))
		f.Block("shift")
		for u := int64(0); u < 8; u++ {
			v := f.Reg()
			f.LdW(v, ps, 4*u)
			f.StW(pd, 4*u, v)
		}
		f.SubI(ps, ps, 32)
		f.SubI(pd, pd, 32)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, (FifoLen-NumBands)/8, "shift")
	}
	f.Block("splice_pre")
	// Splice the new v vector at the front (8 trips, unrolled x4).
	{
		i := f.Reg()
		ps := f.Reg()
		pd := f.Reg()
		f.MovI(i, 0)
		f.Mov(ps, vB)
		f.Mov(pd, fifoB)
		f.Block("splice")
		for u := int64(0); u < 4; u++ {
			v := f.Reg()
			f.LdW(v, ps, 4*u)
			f.StW(pd, 4*u, v)
		}
		f.AddI(ps, ps, 16)
		f.AddI(pd, pd, 16)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, NumBands/4, "splice")
	}
	// 4. Windowing bands: three distinct loops, inner 16 taps unrolled
	// x4 (4 trips -> peeled by the aggressive config).
	bands := [3][2]int64{{0, 10}, {10, 21}, {21, 32}}
	for b, rng := range bands {
		label := []string{"bass", "mid", "treble"}[b]
		f.Block(label + "_pre")
		j := f.Reg()
		f.MovI(j, rng[0])
		f.Block(label)
		acc := f.Reg()
		pw := f.Reg()
		pf := f.Reg()
		f.MovI(acc, 0)
		t := f.Reg()
		f.ShlI(t, j, 2)
		f.Add(pw, wB, t)
		f.Add(pf, fifoB, t)
		// Fully unrolled 16-tap window (as the real synthesis loop is),
		// giving each band loop a wide single-block body: together the
		// three bands plus the matrix/shift loops exceed a 256-op
		// buffer, which is why mpg123 saturates only at large sizes.
		for u := int64(0); u < Taps; u++ {
			wv := f.Reg()
			fv := f.Reg()
			mm := f.Reg()
			f.LdW(wv, pw, 4*NumBands*u)
			f.LdW(fv, pf, 4*NumBands*u)
			f.ShrI(fv, fv, 10)
			f.Mul(mm, wv, fv)
			f.Add(acc, acc, mm)
		}
		f.ShrI(acc, acc, 10)
		pp := f.Reg()
		tt := f.Reg()
		f.ShlI(tt, j, 2)
		f.Add(pp, pcmB, tt)
		f.StW(pp, 0, acc)
		f.AddI(j, j, 1)
		f.BrI(ir.CmpLT, j, rng[1], label)
	}
	f.Block("clamp_pre")
	// 5. Output clamp with saturation hammocks.
	{
		j := f.Reg()
		ps := f.Reg()
		f.MovI(j, 0)
		f.Mov(ps, pcmB)
		f.Block("clamp")
		v := f.Reg()
		f.LdW(v, ps, 0)
		f.BrI(ir.CmpLE, v, 32767, "cl_lo")
		f.Block("cl_hi")
		f.MovI(v, 32767)
		f.Jump("cl_st")
		f.Block("cl_lo")
		f.BrI(ir.CmpGE, v, -32768, "cl_st")
		f.Block("cl_neg")
		f.MovI(v, -32768)
		f.Block("cl_st")
		f.StH(opp, 0, v)
		f.AddI(opp, opp, 2)
		f.AddI(ps, ps, 4)
		f.AddI(j, j, 1)
		f.BrI(ir.CmpLT, j, NumBands, "clamp")
	}
	f.Block("glatch")
	f.AddI(ip, ip, 4*NumBands)
	f.AddI(g, g, 1)
	f.BrI(ir.CmpLT, g, Granules, "granule")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild(), outOff
}
