package mpg123

import (
	"testing"

	"lpbuf/internal/core"
	"lpbuf/internal/interp"
)

func TestDecodeProducesSignal(t *testing.T) {
	out := Decode(input())
	var e int64
	for _, v := range out {
		e += int64(v) * int64(v)
	}
	if e == 0 {
		t.Fatal("synthesis produced silence")
	}
}

func TestIRMatchesReference(t *testing.T) {
	b := Bench()
	prog := b.Build()
	res, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if err := b.Check(res.Mem); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledMatchesReference(t *testing.T) {
	b := Bench()
	prog := b.Build()
	for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
		c, err := core.Compile(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}
