package mpg123

import "testing"

func TestMatrixBounded(t *testing.T) {
	for i, v := range matrix() {
		if v < -1024 || v > 1024 {
			t.Fatalf("matrix[%d] = %d out of Q10 range", i, v)
		}
	}
}

func TestWindowShape(t *testing.T) {
	w := window()
	if len(w) != WindowLen {
		t.Fatalf("window length %d", len(w))
	}
	// Decaying magnitude overall: the last taps are much smaller than
	// the first.
	var head, tail int64
	for i := 0; i < 64; i++ {
		head += abs64(int64(w[i]))
		tail += abs64(int64(w[WindowLen-1-i]))
	}
	if tail*4 > head {
		t.Fatalf("window does not decay: head %d tail %d", head, tail)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDecodeDeterministic(t *testing.T) {
	in := input()
	a := Decode(in)
	b := Decode(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic synthesis")
		}
	}
}

func TestSilenceStaysSilent(t *testing.T) {
	in := make([]int32, Granules*NumBands)
	out := Decode(in)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("silence synthesized to %d at %d", v, i)
		}
	}
}
