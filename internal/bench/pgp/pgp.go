// Package pgp implements the pgpenc / pgpdec benchmarks: an IDEA block
// cipher (PGP's symmetric cipher) in CFB mode plus a table-driven
// CRC-32 integrity pass. IDEA's multiplication modulo 65537 is
// implemented with the classic branchy low/high folding — the control
// flow that dominates the cipher's hot loop.
package pgp

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/ir"
)

const (
	Rounds  = 8
	NumKeys = 6*Rounds + 4 // 52
	MsgLen  = 4096
)

// mul is IDEA multiplication mod 65537 with 0 meaning 2^16, using only
// 32-bit wrapping arithmetic (the high/low folding identity).
func mul(a, b int32) int32 {
	if a == 0 {
		return (1 - b) & 0xffff
	}
	if b == 0 {
		return (1 - a) & 0xffff
	}
	p := a * b // wraps like the 32-bit datapath
	lo := p & 0xffff
	hi := int32(uint32(p)>>16) & 0xffff
	r := lo - hi
	if lo < hi {
		r++
	}
	return r & 0xffff
}

// keySchedule expands a 128-bit key (8 halfwords) into 52 subkeys by
// the IDEA 25-bit rotation rule (the classic element-wise formulation
// from PGP's idea.c).
func keySchedule(key [8]int32) [NumKeys]int32 {
	var ks [NumKeys]int32
	copy(ks[:8], key[:])
	for i := 8; i < NumKeys; i++ {
		switch {
		case i&7 < 6:
			ks[i] = ((ks[i-7]&127)<<9 | int32(uint32(ks[i-6])>>7)) & 0xffff
		case i&7 == 6:
			ks[i] = ((ks[i-7]&127)<<9 | int32(uint32(ks[i-14])>>7)) & 0xffff
		default:
			ks[i] = ((ks[i-15]&127)<<9 | int32(uint32(ks[i-14])>>7)) & 0xffff
		}
	}
	return ks
}

// cipher encrypts one 64-bit block (four 16-bit halves) with IDEA.
func cipher(x [4]int32, ks *[NumKeys]int32) [4]int32 {
	x1, x2, x3, x4 := x[0], x[1], x[2], x[3]
	k := 0
	for r := 0; r < Rounds; r++ {
		x1 = mul(x1, ks[k])
		x2 = (x2 + ks[k+1]) & 0xffff
		x3 = (x3 + ks[k+2]) & 0xffff
		x4 = mul(x4, ks[k+3])
		t1 := x1 ^ x3
		t2 := x2 ^ x4
		t1 = mul(t1, ks[k+4])
		t2 = (t2 + t1) & 0xffff
		t2 = mul(t2, ks[k+5])
		t1 = (t1 + t2) & 0xffff
		x1 ^= t2
		x3 ^= t2
		x2 ^= t1
		x4 ^= t1
		x2, x3 = x3, x2
		k += 6
	}
	x2, x3 = x3, x2
	return [4]int32{
		mul(x1, ks[k]),
		(x2 + ks[k+1]) & 0xffff,
		(x3 + ks[k+2]) & 0xffff,
		mul(x4, ks[k+3]),
	}
}

// crcTable is the CRC-32 (IEEE) table.
func crcTable() []int32 {
	t := make([]int32, 256)
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for j := 0; j < 8; j++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = int32(c)
	}
	return t
}

// key is the fixed benchmark key.
func key() [8]int32 {
	rng := bench.NewRand(0x9619)
	var k [8]int32
	for i := range k {
		k[i] = int32(rng.Intn(65536))
	}
	return k
}

// message is the benchmark plaintext.
func message() []byte {
	r := bench.NewRand(0xB0B)
	msg := make([]byte, MsgLen)
	for i := range msg {
		// Text-like distribution.
		msg[i] = byte(32 + r.Intn(95))
	}
	return msg
}

// EncryptCFB runs IDEA-CFB over the message: per 8-byte block,
// keystream = cipher(iv); ct = pt ^ keystream; iv = ct. Returns
// ciphertext followed by the 4-byte CRC-32 of the ciphertext.
func EncryptCFB(msg []byte, k [8]int32) []byte {
	ks := keySchedule(k)
	tbl := crcTable()
	out := make([]byte, len(msg)+4)
	iv := [4]int32{0x0123, 0x4567, 0x89AB, 0xCDEF}
	for off := 0; off < len(msg); off += 8 {
		stream := cipher(iv, &ks)
		for i := 0; i < 4; i++ {
			ct0 := int32(msg[off+2*i]) ^ (stream[i] >> 8)
			ct1 := int32(msg[off+2*i+1]) ^ (stream[i] & 0xff)
			out[off+2*i] = byte(ct0)
			out[off+2*i+1] = byte(ct1)
			iv[i] = ((ct0 & 0xff) << 8) | (ct1 & 0xff)
		}
	}
	// CRC-32 of the ciphertext.
	crc := int32(-1)
	for i := 0; i < len(msg); i++ {
		idx := (crc ^ int32(out[i])) & 0xff
		crc = int32(uint32(crc)>>8) ^ tbl[idx]
	}
	crc = ^crc
	out[len(msg)] = byte(crc)
	out[len(msg)+1] = byte(uint32(crc) >> 8)
	out[len(msg)+2] = byte(uint32(crc) >> 16)
	out[len(msg)+3] = byte(uint32(crc) >> 24)
	return out
}

// DecryptCFB inverts EncryptCFB (ignoring the trailing CRC), returning
// the plaintext followed by the CRC-32 of the recovered plaintext.
func DecryptCFB(ct []byte, k [8]int32) []byte {
	ks := keySchedule(k)
	tbl := crcTable()
	n := len(ct) - 4
	out := make([]byte, n+4)
	iv := [4]int32{0x0123, 0x4567, 0x89AB, 0xCDEF}
	for off := 0; off < n; off += 8 {
		stream := cipher(iv, &ks)
		for i := 0; i < 4; i++ {
			c0 := int32(ct[off+2*i])
			c1 := int32(ct[off+2*i+1])
			out[off+2*i] = byte(c0 ^ (stream[i] >> 8))
			out[off+2*i+1] = byte(c1 ^ (stream[i] & 0xff))
			iv[i] = ((c0 & 0xff) << 8) | (c1 & 0xff)
		}
	}
	crc := int32(-1)
	for i := 0; i < n; i++ {
		idx := (crc ^ int32(out[i])) & 0xff
		crc = int32(uint32(crc)>>8) ^ tbl[idx]
	}
	crc = ^crc
	out[n] = byte(crc)
	out[n+1] = byte(uint32(crc) >> 8)
	out[n+2] = byte(uint32(crc) >> 16)
	out[n+3] = byte(uint32(crc) >> 24)
	return out
}

// Enc returns the pgpenc benchmark.
func Enc() bench.Benchmark {
	msg := message()
	k := key()
	want := EncryptCFB(msg, k)
	prog, outOff := build(msg, k, true)
	return bench.Benchmark{
		Name:        "pgpenc",
		Description: "IDEA-CFB encryption + CRC-32 (PGP symmetric path)",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpBytes(mem, outOff, want, "pgpenc.out")
		},
	}
}

// Dec returns the pgpdec benchmark.
func Dec() bench.Benchmark {
	msg := message()
	k := key()
	ct := EncryptCFB(msg, k)
	want := DecryptCFB(ct, k)
	prog, outOff := build(ct[:MsgLen], k, false)
	return bench.Benchmark{
		Name:        "pgpdec",
		Description: "IDEA-CFB decryption + CRC-32",
		Build:       func() *ir.Program { return prog },
		Check: func(mem []byte) error {
			return bench.CmpBytes(mem, outOff, want, "pgpdec.out")
		},
	}
}
