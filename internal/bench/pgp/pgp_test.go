package pgp

import (
	"bytes"
	"testing"

	"lpbuf/internal/bench"
	"lpbuf/internal/core"
	"lpbuf/internal/interp"
)

func TestCFBRoundTrip(t *testing.T) {
	msg := message()
	k := key()
	ct := EncryptCFB(msg, k)
	pt := DecryptCFB(ct, k)
	if !bytes.Equal(pt[:MsgLen], msg) {
		t.Fatal("CFB round trip failed")
	}
	if bytes.Equal(ct[:64], msg[:64]) {
		t.Fatal("ciphertext equals plaintext")
	}
}

func TestMulModProperties(t *testing.T) {
	// mul is multiplication in the group Z*_65537 with 0 = 2^16: it
	// must be commutative and 1 must be the identity.
	vals := []int32{0, 1, 2, 255, 256, 32767, 32768, 65535}
	for _, a := range vals {
		for _, b := range vals {
			if mul(a, b) != mul(b, a) {
				t.Fatalf("mul(%d,%d) not commutative", a, b)
			}
		}
		if mul(a, 1) != a {
			t.Fatalf("mul(%d,1) = %d", a, mul(a, 1))
		}
	}
	// Spot-check against big-integer math: treat 0 as 65536.
	big := func(a, b int32) int32 {
		aa, bb := int64(a), int64(b)
		if aa == 0 {
			aa = 65536
		}
		if bb == 0 {
			bb = 65536
		}
		r := aa * bb % 65537
		if r == 65536 {
			r = 0
		}
		return int32(r)
	}
	rng := bench.NewRand(7)
	for i := 0; i < 10000; i++ {
		a, b := int32(rng.Intn(65536)), int32(rng.Intn(65536))
		if mul(a, b) != big(a, b) {
			t.Fatalf("mul(%d,%d) = %d, want %d", a, b, mul(a, b), big(a, b))
		}
	}
}

func TestIRMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		res, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Fatalf("%s: interp: %v", b.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestCompiledMatchesReference(t *testing.T) {
	for _, b := range []bench.Benchmark{Enc(), Dec()} {
		prog := b.Build()
		for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
			c, err := core.Compile(prog, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
			if err := b.Check(res.Mem); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, cfg.Name, err)
			}
		}
	}
}
