package pgp

import (
	stdcrc "hash/crc32"
	"testing"
)

func TestCRCTableMatchesStdlib(t *testing.T) {
	std := stdcrc.MakeTable(stdcrc.IEEE)
	ours := crcTable()
	for i := 0; i < 256; i++ {
		if uint32(ours[i]) != std[i] {
			t.Fatalf("crc table differs at %d: %x vs %x", i, uint32(ours[i]), std[i])
		}
	}
}

func TestCRCMatchesStdlib(t *testing.T) {
	msg := message()
	want := stdcrc.ChecksumIEEE(msg)
	// Reproduce the reference CRC loop.
	tbl := crcTable()
	crc := int32(-1)
	for i := 0; i < len(msg); i++ {
		idx := (crc ^ int32(msg[i])) & 0xff
		crc = int32(uint32(crc)>>8) ^ tbl[idx]
	}
	crc = ^crc
	if uint32(crc) != want {
		t.Fatalf("crc %x, want %x", uint32(crc), want)
	}
}

func TestKeyScheduleNontrivial(t *testing.T) {
	ks := keySchedule(key())
	seen := map[int32]int{}
	for _, k := range ks {
		if k < 0 || k > 0xffff {
			t.Fatalf("subkey %d out of 16-bit range", k)
		}
		seen[k]++
	}
	if len(seen) < NumKeys/2 {
		t.Fatalf("only %d distinct subkeys", len(seen))
	}
}

func TestCipherAvalanche(t *testing.T) {
	ks := keySchedule(key())
	a := cipher([4]int32{1, 2, 3, 4}, &ks)
	b := cipher([4]int32{1, 2, 3, 5}, &ks) // one-bit-ish change
	diff := 0
	for i := 0; i < 4; i++ {
		x := uint16(a[i]) ^ uint16(b[i])
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 16 {
		t.Fatalf("weak avalanche: %d/64 bits differ", diff)
	}
}

func TestCipherDeterministic(t *testing.T) {
	ks := keySchedule(key())
	a := cipher([4]int32{7, 8, 9, 10}, &ks)
	b := cipher([4]int32{7, 8, 9, 10}, &ks)
	if a != b {
		t.Fatal("cipher nondeterministic")
	}
}
