// Package suite registers the full benchmark set of the paper's
// Table 1: adpcm, g724, jpeg, mpeg2 (enc/dec each), mpg123 and pgp
// (enc/dec).
package suite

import (
	"sync"

	"lpbuf/internal/bench"
	"lpbuf/internal/bench/adpcm"
	"lpbuf/internal/bench/g724"
	"lpbuf/internal/bench/jpeg"
	"lpbuf/internal/bench/mpeg2"
	"lpbuf/internal/bench/mpg123"
	"lpbuf/internal/bench/pgp"
)

var (
	once sync.Once
	all  []bench.Benchmark
)

// All returns the benchmarks in the paper's Table 1 order. The set is
// built once per process: construction synthesizes each workload's
// input and runs the pure-Go reference to bake the expected output
// into its checker, which is far too expensive to repeat on every
// registry lookup (the experiment suite consults the registry per
// simulation). Sharing one build is safe because everything downstream
// treats the program as read-only — core.Compile clones it before the
// transforming passes run.
func All() []bench.Benchmark {
	once.Do(func() {
		all = []bench.Benchmark{
			adpcm.Enc(), adpcm.Dec(),
			g724.Enc(), g724.Dec(),
			jpeg.Enc(), jpeg.Dec(),
			mpeg2.Enc(), mpeg2.Dec(),
			mpg123.Bench(),
			pgp.Enc(), pgp.Dec(),
		}
	})
	return all
}

// ByName returns a single registered benchmark.
func ByName(name string) (bench.Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return bench.Benchmark{}, false
}
