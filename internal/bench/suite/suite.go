// Package suite registers the full benchmark set of the paper's
// Table 1: adpcm, g724, jpeg, mpeg2 (enc/dec each), mpg123 and pgp
// (enc/dec).
package suite

import (
	"lpbuf/internal/bench"
	"lpbuf/internal/bench/adpcm"
	"lpbuf/internal/bench/g724"
	"lpbuf/internal/bench/jpeg"
	"lpbuf/internal/bench/mpeg2"
	"lpbuf/internal/bench/mpg123"
	"lpbuf/internal/bench/pgp"
)

// All returns the benchmarks in the paper's Table 1 order.
func All() []bench.Benchmark {
	return []bench.Benchmark{
		adpcm.Enc(), adpcm.Dec(),
		g724.Enc(), g724.Dec(),
		jpeg.Enc(), jpeg.Dec(),
		mpeg2.Enc(), mpeg2.Dec(),
		mpg123.Bench(),
		pgp.Enc(), pgp.Dec(),
	}
}

// ByName returns a single registered benchmark.
func ByName(name string) (bench.Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return bench.Benchmark{}, false
}
