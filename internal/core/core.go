// Package core ties the reproduction together: it drives the full
// compilation pipeline (profiling, inlining, scalar optimization, the
// control transformations of Section 3, predicate promotion, counted
// loop conversion, scheduling and loop-buffer assignment) in the
// paper's two configurations — "traditional" and aggressively
// transformed — and runs the result on the cycle-level VLIW simulator
// with execution-verified semantics.
package core

import (
	"bytes"
	"fmt"

	"lpbuf/internal/hyperblock"
	"lpbuf/internal/inline"
	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/loopbuffer"
	"lpbuf/internal/looptrans"
	"lpbuf/internal/machine"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/opt"
	"lpbuf/internal/predicate"
	"lpbuf/internal/profile"
	"lpbuf/internal/sched"
	"lpbuf/internal/sched/optimal"
	"lpbuf/internal/verify"
	"lpbuf/internal/vliw"
)

// Config selects a compilation configuration.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// Inline enables profile-guided inlining (both paper configs).
	Inline bool
	// LoopTransforms enables peeling and predicated loop collapsing.
	LoopTransforms bool
	// Predication enables if-conversion, branch combining and
	// predicate promotion.
	Predication bool
	// Modulo enables software pipelining of counted loops.
	Modulo bool
	// Ablation knobs: disable one transformation at a time while
	// keeping the rest of the aggressive pipeline (used by the
	// design-choice ablation experiments).
	DisablePeel     bool
	DisableCollapse bool
	DisableUnroll   bool
	DisableCombine  bool
	DisablePromote  bool
	// Verify runs the internal/verify phase checkpoints after every
	// pipeline phase and fails the compile on any invariant violation.
	// Building with -tags verify forces it on for all compiles.
	Verify bool
	// SchedBackend selects the modulo-scheduler backend: "" or
	// "heuristic" for iterative modulo scheduling, "optimal" for the
	// exact branch-and-bound backend (internal/sched/optimal), which
	// proves II minimality per kernel. Optimal compiles force Verify on:
	// every exact schedule must pass the verifier checkpoints before its
	// stats are trusted.
	SchedBackend string
	// SchedNodeBudget overrides the optimal backend's per-loop search
	// node budget (<=0 uses the backend default). The budget is
	// deterministic, so proofs and fallbacks reproduce across runs.
	SchedNodeBudget int64
	// BufferCapacity is the loop buffer size in operations.
	BufferCapacity int
	// Obs, when non-nil, receives compile-phase spans (with IR-size
	// deltas), per-pass opt/sched spans, and simulator events/counters
	// from every run of the compiled program. Nil disables all
	// instrumentation at nil-check cost.
	Obs *obs.Obs
	// PMU, when non-nil, enables sampled guest profiling on every run
	// of the compiled program: each vliw result carries a per-plan
	// pmu.Profile attributing jittered-clock samples to (func, loop,
	// PC-bucket, buffer-state). Nil disables sampling at nil-check
	// cost.
	PMU *pmu.Config
	// TraceLabel prefixes simulator event run labels (typically the
	// benchmark name); the full label is "TraceLabel/Name@capacity".
	TraceLabel string
	// Machine overrides the default machine description.
	Machine *machine.Desc
	// EntryArgs are passed to the program entry on every run.
	EntryArgs []int64
	// MaxOps bounds interpreter steps while profiling.
	MaxOps int64
}

// Traditional returns the paper's baseline configuration: classical
// optimization only (no predication, no loop collapsing), but — as in
// the paper — with profile-guided inlining, modulo scheduling and
// buffer scheduling ("In both cases ... modulo scheduling ... was
// performed, and loop bodies were scheduled into the loop buffer").
func Traditional(bufferOps int) Config {
	return Config{Name: "traditional", Inline: true, Modulo: true,
		BufferCapacity: bufferOps}
}

// Aggressive returns the paper's transformed configuration: hyperblock
// formation, peeling, collapsing, branch combining, promotion and
// modulo scheduling on top of the baseline.
func Aggressive(bufferOps int) Config {
	return Config{Name: "aggressive", Inline: true, LoopTransforms: true,
		Predication: true, Modulo: true, BufferCapacity: bufferOps}
}

// Compiled is a fully compiled program plus its reference behaviour.
type Compiled struct {
	Config Config
	Code   *sched.Code
	Plan   *vliw.BufferPlan
	// Prof is the profile of the transformed program.
	Prof *profile.Profile
	// Ref is the reference execution (interpreter, original program).
	Ref *interp.Result
	// TransformedIR is the post-transformation, pre-scheduling program
	// (for predication statistics).
	TransformedIR *ir.Program

	// Stats reports what the compiler did.
	Stats PassStats
}

// PassStats reports compiler activity.
type PassStats struct {
	OrigOps       int
	FinalOps      int
	Inlined       int
	Peeled        int
	Unrolled      int
	Collapsed     int
	Converted     int
	Combined      int
	Promoted      int
	Speculated    int
	CLoops        int
	ModuloKernels int
	// ProvenKernels counts modulo kernels whose II the exact backend
	// proved minimal (always 0 for the heuristic backend).
	ProvenKernels int
	// SchedFallbacks counts loops where the exact backend's search
	// budget died and the heuristic schedule was used unproven.
	SchedFallbacks int
	// SchedNodes totals exact-search nodes expended across all loops.
	SchedNodes int64
	// MaxLiveRegs is the worst-case register pressure over all
	// functions after transformation (reported against the machine's
	// 64 architected registers; virtual registers are not allocated,
	// see DESIGN.md).
	MaxLiveRegs int
}

// Compile runs the full pipeline on (a clone of) prog.
func Compile(prog *ir.Program, cfg Config) (*Compiled, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Default()
	}
	if cfg.BufferCapacity == 0 {
		cfg.BufferCapacity = 256
	}
	if verify.Forced() {
		cfg.Verify = true
	}
	var exact *optimal.Scheduler
	switch cfg.SchedBackend {
	case "", "heuristic":
	case "optimal":
		exact = optimal.New(optimal.Options{NodeBudget: cfg.SchedNodeBudget, Obs: cfg.Obs})
		cfg.Verify = true
	default:
		return nil, fmt.Errorf("%s: unknown scheduler backend %q", cfg.Name, cfg.SchedBackend)
	}
	c := &Compiled{Config: cfg}
	c.Stats.OrigOps = prog.OpCount()

	// Root span for the whole compile; phase children carry IR-size
	// deltas. All span calls are nil no-ops when cfg.Obs is nil.
	root := cfg.Obs.StartSpan("compile")
	root.SetAttr("config", cfg.Name)
	root.SetInt("orig_ops", c.Stats.OrigOps)
	defer root.End()
	cfg.Obs.Counter("compile.total").Inc()

	// Phase checkpoint: re-derive the invariants the preceding phase
	// must have preserved (see internal/verify); any violation aborts
	// the compile instead of surfacing as a wrong figure.
	ck := func(phase string, p *ir.Program) error {
		if !cfg.Verify {
			return nil
		}
		if err := verify.AsError(verify.Program(phase, p)); err != nil {
			return fmt.Errorf("%s: %s: %w", cfg.Name, phase, err)
		}
		return nil
	}
	if err := ck("input", prog); err != nil {
		return nil, err
	}

	// Reference execution + initial profile on the original program.
	sp := root.Child("reference-run")
	prof0 := profile.New()
	ref, err := interp.Run(prog, interp.Options{Profile: prof0,
		EntryArgs: cfg.EntryArgs, MaxOps: cfg.MaxOps})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("%s: reference run: %w", cfg.Name, err)
	}
	c.Ref = ref

	p := prog.Clone()
	// Seed block weights from the original-program profile so the
	// control transformations can make profile-guided decisions
	// (inlining and the later passes preserve/copy weights).
	prof0.ApplyWeights(p)

	if cfg.Inline {
		sp = root.Child("inline")
		c.Stats.Inlined = inline.Apply(p, prof0, inline.Options{})
		sp.SetInt("inlined", c.Stats.Inlined)
		sp.SetInt("ops_after", p.OpCount())
		sp.End()
		if err := ck("post-inline", p); err != nil {
			return nil, err
		}
	}
	sp = root.Child("opt")
	sp.SetInt("ops_before", p.OpCount())
	opt.OptimizeSpans(p, sp)
	sp.SetInt("ops_after", p.OpCount())
	sp.End()
	if err := ck("post-opt", p); err != nil {
		return nil, err
	}

	// Control transformations interleave: if-converting an inner loop
	// with internal control flow turns it into a single block, which
	// can unlock collapsing of its parent, which can expose further
	// conversion. Iterate to a fixpoint (bounded).
	if cfg.LoopTransforms || cfg.Predication {
		sp = root.Child("transform")
		sp.SetInt("ops_before", p.OpCount())
		for round := 0; round < 4; round++ {
			changed := 0
			for _, name := range p.Order {
				f := p.Funcs[name]
				if cfg.LoopTransforms {
					if !cfg.DisablePeel {
						n := looptrans.PeelAll(f, looptrans.Options{})
						c.Stats.Peeled += n
						changed += n
					}
					if !cfg.DisableCollapse {
						n := looptrans.CollapseAll(f, looptrans.Options{})
						c.Stats.Collapsed += n
						changed += n
					}
					if !cfg.DisableUnroll {
						n := looptrans.UnrollAll(f, looptrans.Options{})
						c.Stats.Unrolled += n
						changed += n
					}
				}
				if cfg.Predication {
					n := hyperblock.ConvertLoops(f, hyperblock.Options{})
					c.Stats.Converted += n
					changed += n
				}
			}
			if changed == 0 {
				break
			}
		}
		if cfg.Predication {
			for _, name := range p.Order {
				f := p.Funcs[name]
				if !cfg.DisableCombine {
					c.Stats.Combined += hyperblock.CombineExits(f)
				}
				if !cfg.DisablePromote {
					c.Stats.Promoted += predicate.Promote(f)
					c.Stats.Speculated += predicate.SpeculateLoads(f)
				}
			}
		}
		opt.OptimizeSpans(p, sp)
		sp.SetInt("ops_after", p.OpCount())
		sp.SetInt("peeled", c.Stats.Peeled)
		sp.SetInt("collapsed", c.Stats.Collapsed)
		sp.SetInt("converted", c.Stats.Converted)
		sp.SetInt("promoted", c.Stats.Promoted)
		sp.End()
		if err := ck("post-transform", p); err != nil {
			return nil, err
		}
	}
	sp = root.Child("cloopify")
	for _, name := range p.Order {
		f := p.Funcs[name]
		c.Stats.CLoops += looptrans.CLoopifyAll(f)
		looptrans.MarkLoopBacks(f)
	}
	sp.SetInt("cloops", c.Stats.CLoops)
	sp.End()

	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("%s: transformed program invalid: %w", cfg.Name, err)
	}
	if err := ck("post-cloop", p); err != nil {
		return nil, err
	}

	// Re-profile the transformed program and check it still computes
	// the reference behaviour (execution-verified transformations).
	sp = root.Child("re-profile")
	prof1 := profile.New()
	tres, err := interp.Run(p, interp.Options{Profile: prof1,
		EntryArgs: cfg.EntryArgs, MaxOps: cfg.MaxOps})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("%s: transformed program run: %w", cfg.Name, err)
	}
	if tres.Ret != ref.Ret || !bytes.Equal(tres.Mem, ref.Mem) {
		return nil, fmt.Errorf("%s: transformations changed program behaviour", cfg.Name)
	}
	prof1.ApplyWeights(p)
	c.Prof = prof1
	c.TransformedIR = p.Clone()
	c.Stats.FinalOps = p.OpCount()
	for _, name := range p.Order {
		if ml := opt.MaxLive(p.Funcs[name]); ml > c.Stats.MaxLiveRegs {
			c.Stats.MaxLiveRegs = ml
		}
	}

	// Schedule (may rewrite pipelined loop counters inside p).
	sp = root.Child("schedule")
	sopts := sched.Options{EnableModulo: cfg.Modulo, Span: sp}
	if exact != nil {
		sopts.Backend = exact
	}
	code, err := sched.Schedule(p, cfg.Machine, sopts)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	c.Code = code
	if cfg.Verify {
		if err := verify.AsError(verify.Code("post-sched", code)); err != nil {
			return nil, fmt.Errorf("%s: post-sched: %w", cfg.Name, err)
		}
	}
	for _, fc := range code.Funcs {
		for _, sec := range fc.Sections {
			if sec.Kind == sched.KindKernel {
				c.Stats.ModuloKernels++
				if sec.Proven {
					c.Stats.ProvenKernels++
				}
			}
		}
	}
	if exact != nil {
		st := exact.Stats()
		c.Stats.SchedFallbacks = int(st.Fallbacks)
		c.Stats.SchedNodes = st.Nodes
	}

	sp = root.Child("bufplan")
	c.Plan = loopbuffer.Plan(code, prof1, cfg.BufferCapacity)
	sp.SetInt("capacity", cfg.BufferCapacity)
	sp.SetInt("planned_loops", len(c.Plan.Loops))
	sp.End()
	root.SetInt("final_ops", c.Stats.FinalOps)
	if cfg.Verify {
		if err := verify.AsError(verify.Plan("post-bufplan", code, c.Plan)); err != nil {
			return nil, fmt.Errorf("%s: post-bufplan: %w", cfg.Name, err)
		}
	}
	return c, nil
}

// Run executes the compiled program on the cycle simulator and checks
// its output against the reference execution.
func (c *Compiled) Run() (*vliw.Result, error) { return c.runPlan(c.Plan) }

// RunWithBuffer re-plans buffer assignment for a different capacity and
// runs (the schedule itself is buffer-size independent).
func (c *Compiled) RunWithBuffer(capacity int) (*vliw.Result, error) {
	return c.runPlan(loopbuffer.Plan(c.Code, c.Prof, capacity))
}

// RunSweep plans buffer assignment at every capacity and runs the
// whole sweep as ONE batched simulation (vliw.RunBatch): the program
// executes once and is accounted under every plan, so a Figure 7 sweep
// costs one simulation instead of len(capacities). Results come back
// in capacity order. Sweeps always run in folded-stats mode — Stats
// are exact, per-cycle event emission is skipped (sweep consumers read
// Stats, not rings). engine may be nil; when set, per-sim scratch is
// pooled across calls.
func (c *Compiled) RunSweep(capacities []int, engine *vliw.Engine) ([]*vliw.Result, error) {
	plans := make([]*vliw.BufferPlan, len(capacities))
	var labels []string
	if c.Config.Obs != nil || c.Config.PMU != nil {
		labels = make([]string, len(capacities))
	}
	for i, capacity := range capacities {
		plans[i] = loopbuffer.Plan(c.Code, c.Prof, capacity)
		if c.Config.Verify {
			if err := verify.AsError(verify.Plan("bufplan", c.Code, plans[i])); err != nil {
				return nil, fmt.Errorf("%s: %w", c.Config.Name, err)
			}
		}
		if labels != nil {
			labels[i] = fmt.Sprintf("%s/%s@%d", c.Config.TraceLabel, c.Config.Name, capacity)
		}
	}
	results, err := vliw.RunBatch(c.Code, plans, vliw.BatchOptions{
		Options: vliw.Options{EntryArgs: c.Config.EntryArgs,
			Obs: c.Config.Obs, Engine: engine, PMU: c.Config.PMU},
		Labels:          labels,
		FoldedStatsOnly: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: simulation: %w", c.Config.Name, err)
	}
	// Architectural state is shared across the batch; checking one
	// result checks them all.
	if results[0].Ret != c.Ref.Ret {
		return nil, fmt.Errorf("%s: simulated return %d != reference %d",
			c.Config.Name, results[0].Ret, c.Ref.Ret)
	}
	if !bytes.Equal(results[0].Mem, c.Ref.Mem) {
		return nil, fmt.Errorf("%s: simulated memory differs from reference", c.Config.Name)
	}
	return results, nil
}

func (c *Compiled) runPlan(plan *vliw.BufferPlan) (*vliw.Result, error) {
	if c.Config.Verify && plan != c.Plan {
		// Re-planned buffers (RunWithBuffer sweeps) are checkpointed
		// too; the compile-time plan was already verified.
		if err := verify.AsError(verify.Plan("bufplan", c.Code, plan)); err != nil {
			return nil, fmt.Errorf("%s: %w", c.Config.Name, err)
		}
	}
	var label string
	if c.Config.Obs != nil || c.Config.PMU != nil {
		label = fmt.Sprintf("%s/%s@%d", c.Config.TraceLabel, c.Config.Name, plan.Capacity)
	}
	res, err := vliw.Run(c.Code, plan, vliw.Options{EntryArgs: c.Config.EntryArgs,
		Obs: c.Config.Obs, TraceLabel: label, PMU: c.Config.PMU})
	if err != nil {
		return nil, fmt.Errorf("%s: simulation: %w", c.Config.Name, err)
	}
	if res.Ret != c.Ref.Ret {
		return nil, fmt.Errorf("%s: simulated return %d != reference %d",
			c.Config.Name, res.Ret, c.Ref.Ret)
	}
	if !bytes.Equal(res.Mem, c.Ref.Mem) {
		return nil, fmt.Errorf("%s: simulated memory differs from reference", c.Config.Name)
	}
	return res, nil
}
