package core

import (
	"testing"
)

func TestAblationKnobs(t *testing.T) {
	prog := diamondLoopProgram()
	full, err := Compile(prog, Aggressive(256))
	if err != nil {
		t.Fatal(err)
	}
	noPred := Aggressive(256)
	noPred.Predication = false
	np, err := Compile(prog, noPred)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Converted == 0 || np.Stats.Converted != 0 {
		t.Fatalf("conversion counts: full=%d nopred=%d", full.Stats.Converted, np.Stats.Converted)
	}
	noProm := Aggressive(256)
	noProm.DisablePromote = true
	npr, err := Compile(prog, noProm)
	if err != nil {
		t.Fatal(err)
	}
	if npr.Stats.Promoted != 0 {
		t.Fatalf("promotion ran despite DisablePromote: %d", npr.Stats.Promoted)
	}
	// All variants stay semantically correct.
	for _, c := range []*Compiled{full, np, npr} {
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegisterPressureReported(t *testing.T) {
	prog := nestedLoopProgram()
	c, err := Compile(prog, Aggressive(256))
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.MaxLiveRegs <= 0 {
		t.Fatal("no register pressure reported")
	}
	// The benchmarks are written to fit the paper's 64-register machine.
	if c.Stats.MaxLiveRegs > c.Config.Machine.IntRegs {
		t.Fatalf("register pressure %d exceeds the machine's %d registers",
			c.Stats.MaxLiveRegs, c.Config.Machine.IntRegs)
	}
}

func TestTraditionalUsesModulo(t *testing.T) {
	// The paper modulo-schedules both configurations.
	prog := diamondLoopProgram()
	c, err := Compile(prog, Traditional(256))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Config.Modulo {
		t.Fatal("traditional config must enable modulo scheduling")
	}
}

func TestCompileRejectsBrokenEntry(t *testing.T) {
	prog := diamondLoopProgram()
	prog.Entry = "nosuch"
	if _, err := Compile(prog, Traditional(256)); err == nil {
		t.Fatal("expected error for missing entry")
	}
}
