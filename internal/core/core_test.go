package core

import (
	"math/rand"
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// diamondLoopProgram: a loop with an if/else diamond, 200 iterations.
func diamondLoopProgram() *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	n := 200
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(11))
	for i := range vals {
		vals[i] = int32(rng.Intn(400) - 200)
	}
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	in := f.Const(inOff)
	out := f.Const(outOff)
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("head")
	x, y := f.Reg(), f.Reg()
	f.LdW(x, in, 0)
	f.BrI(ir.CmpGE, x, 0, "else")
	f.Block("then")
	f.MulI(y, x, -3)
	f.Jump("join")
	f.Block("else")
	f.AddI(y, x, 7)
	f.Block("join")
	f.StW(out, 0, y)
	f.Add(acc, acc, y)
	f.AddI(in, in, 4)
	f.AddI(out, out, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "head")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// nestedLoopProgram: the Figure 2 Add_Block shape, 8x8, run 20 times.
func nestedLoopProgram() *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	clip := make([]byte, 1024)
	for i := range clip {
		v := i - 384
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		clip[i] = byte(v)
	}
	clipOff := pb.GlobalB("Clip", 1024, clip)
	src := make([]byte, 64*20)
	rng := rand.New(rand.NewSource(5))
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	bpOff := pb.GlobalB("bp", int(64*20), src)
	rfpOff := pb.GlobalB("rfp", 64*20+512, nil)

	f := pb.Func("main", 0, true)
	f.Block("outer2pre")
	blk := f.Reg()
	bp := f.Const(bpOff)
	rfp := f.Const(rfpOff)
	clipBase := f.Const(clipOff + 256 + 128)
	f.MovI(blk, 0)
	f.Block("blockloop")
	i := f.Reg()
	f.MovI(i, 0)
	f.Block("outer")
	j := f.Reg()
	f.MovI(j, 0)
	f.Block("inner")
	v := f.Reg()
	f.LdB(v, bp, 0)
	addr := f.Reg()
	cv := f.Reg()
	f.Add(addr, clipBase, v)
	f.LdBU(cv, addr, 0)
	f.StB(rfp, 0, cv)
	f.AddI(bp, bp, 1)
	f.AddI(rfp, rfp, 1)
	f.AddI(j, j, 1)
	f.BrI(ir.CmpLT, j, 8, "inner")
	f.Block("latch")
	f.AddI(rfp, rfp, 2)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 8, "outer")
	f.Block("blocklatch")
	f.AddI(blk, blk, 1)
	f.BrI(ir.CmpLT, blk, 20, "blockloop")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func compileRun(t *testing.T, prog *ir.Program, cfg Config) (*Compiled, float64, int64) {
	t.Helper()
	c, err := Compile(prog, cfg)
	if err != nil {
		t.Fatalf("compile %s: %v", cfg.Name, err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("run %s: %v", cfg.Name, err)
	}
	return c, res.Stats.BufferIssueRatio(), res.Stats.Cycles
}

func TestPipelineDiamondLoop(t *testing.T) {
	prog := diamondLoopProgram()
	_, tradRatio, tradCycles := compileRun(t, prog, Traditional(256))
	ca, aggRatio, aggCycles := compileRun(t, prog, Aggressive(256))

	if ca.Stats.Converted == 0 {
		t.Fatal("aggressive config converted no loops")
	}
	if aggRatio <= tradRatio {
		t.Fatalf("aggressive buffer ratio %.3f should beat traditional %.3f",
			aggRatio, tradRatio)
	}
	if aggRatio < 0.80 {
		t.Fatalf("aggressive buffer ratio %.3f too low for a hot loop program", aggRatio)
	}
	if aggCycles >= tradCycles {
		t.Fatalf("aggressive (%d cycles) should beat traditional (%d cycles)",
			aggCycles, tradCycles)
	}
}

func TestPipelineNestedLoop(t *testing.T) {
	prog := nestedLoopProgram()
	_, tradRatio, _ := compileRun(t, prog, Traditional(256))
	ca, aggRatio, _ := compileRun(t, prog, Aggressive(256))

	if ca.Stats.Collapsed == 0 {
		t.Fatal("aggressive config collapsed no loops")
	}
	if aggRatio <= tradRatio {
		t.Fatalf("aggressive ratio %.3f should beat traditional %.3f", aggRatio, tradRatio)
	}
	if aggRatio < 0.70 {
		t.Fatalf("aggressive buffer ratio %.3f too low after collapsing", aggRatio)
	}
}

func TestPipelineTinyBufferDegrades(t *testing.T) {
	prog := nestedLoopProgram()
	_, big, _ := compileRun(t, prog, Aggressive(256))
	_, tiny, _ := compileRun(t, prog, Aggressive(4))
	if tiny >= big {
		t.Fatalf("4-op buffer ratio %.3f should be below 256-op ratio %.3f", tiny, big)
	}
}

func TestModuloSchedulingEngages(t *testing.T) {
	prog := diamondLoopProgram()
	cfg := Aggressive(256)
	c, err := Compile(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.ModuloKernels == 0 {
		t.Fatal("expected at least one modulo-scheduled kernel")
	}
	// And the pipelined code must still be correct.
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Modulo scheduling should beat the non-pipelined aggressive build.
	cfgNoMS := cfg
	cfgNoMS.Modulo = false
	cnm, err := Compile(prog, cfgNoMS)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cnm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cycles >= r2.Stats.Cycles {
		t.Fatalf("modulo (%d cycles) should beat list-scheduled (%d cycles)",
			r1.Stats.Cycles, r2.Stats.Cycles)
	}
}
