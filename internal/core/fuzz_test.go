package core

import (
	"fmt"
	"math/rand"
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// randomProgram generates a structured random program: a few globals,
// nested counted loops with optional diamonds, side exits, saturation
// hammocks and stores — the shapes the compiler's transformations
// target. All programs terminate by construction.
func randomProgram(rng *rand.Rand) *ir.Program {
	pb := irbuild.NewProgram(32 << 10)
	nIn := 64 + rng.Intn(128)
	vals := make([]int32, nIn)
	for i := range vals {
		vals[i] = int32(rng.Intn(1<<16) - 1<<15)
	}
	inOff := pb.GlobalW("in", nIn, vals)
	outOff := pb.GlobalW("out", 512, nil)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	in := f.Const(inOff)
	out := f.Const(outOff)
	acc := f.Reg()
	f.MovI(acc, 0)

	label := 0
	fresh := func(p string) string {
		label++
		return fmt.Sprintf("%s%d", p, label)
	}

	// A pool of live registers to draw operands from.
	regs := []ir.Reg{acc, f.Const(int64(rng.Intn(100) + 1)), f.Const(int64(rng.Intn(7) - 3))}
	pick := func() ir.Reg { return regs[rng.Intn(len(regs))] }

	// emitBody emits a few random ALU ops plus optional memory traffic
	// and diamonds in the current block context.
	var emitBody func(idx ir.Reg, depth int)
	emitBody = func(idx ir.Reg, depth int) {
		nOps := 2 + rng.Intn(6)
		for k := 0; k < nOps; k++ {
			switch rng.Intn(8) {
			case 0: // load in[idx % nIn]
				d := f.Reg()
				t := f.Reg()
				f.RemI(t, idx, int64(nIn))
				f.Abs(t, t)
				f.ShlI(t, t, 2)
				f.Add(t, t, in)
				f.LdW(d, t, 0)
				regs = append(regs, d)
			case 1: // store acc to out[idx % 512]
				t := f.Reg()
				f.RemI(t, idx, 512)
				f.Abs(t, t)
				f.ShlI(t, t, 2)
				f.Add(t, t, out)
				f.StW(t, 0, pick())
			case 2: // diamond
				thenL, joinL := fresh("then"), fresh("join")
				v := f.Reg()
				f.Mov(v, pick())
				f.BrI(ir.CmpLT, v, int64(rng.Intn(100)-50), thenL)
				f.Block(fresh("else"))
				f.AddI(v, v, int64(rng.Intn(9)-4))
				f.Jump(joinL)
				f.Block(thenL)
				f.MulI(v, v, int64(rng.Intn(5)-2))
				f.Block(joinL)
				f.Add(acc, acc, v)
				regs = append(regs, v)
			case 3: // saturation hammock
				okL := fresh("ok")
				f.BrI(ir.CmpLE, acc, 1<<26, okL)
				f.Block(fresh("sat"))
				f.MovI(acc, 1<<26)
				f.Block(okL)
			default: // plain ALU
				opc := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd,
					ir.OpOr, ir.OpXor, ir.OpMin, ir.OpMax}[rng.Intn(8)]
				d := f.Reg()
				f.Bin(opc, d, pick(), pick())
				regs = append(regs, d)
				if rng.Intn(3) == 0 {
					f.Add(acc, acc, d)
				}
			}
		}
		_ = depth
	}

	// Between 1 and 3 top-level loops, possibly nested two deep.
	nLoops := 1 + rng.Intn(3)
	for l := 0; l < nLoops; l++ {
		trips := 3 + rng.Intn(30)
		i := f.Reg()
		f.MovI(i, 0)
		hdr := fresh("loop")
		f.Block(hdr)
		emitBody(i, 0)
		if rng.Intn(2) == 0 {
			// Nested counted inner loop.
			innerTrips := 2 + rng.Intn(8)
			j := f.Reg()
			f.MovI(j, 0)
			innerL := fresh("inner")
			f.Block(innerL)
			emitBody(j, 1)
			f.AddI(j, j, 1)
			f.BrI(ir.CmpLT, j, int64(innerTrips), innerL)
			f.Block(fresh("postinner"))
		}
		if rng.Intn(3) == 0 {
			// Data-dependent side exit.
			f.BrI(ir.CmpEQ, acc, int64(rng.Intn(1000)+7777777), fresh("exit")+"X")
			// The target block is created lazily below; wire it to done.
		}
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, int64(trips), hdr)
		f.Block(fresh("after"))
	}
	f.Block("finish")
	f.Ret(acc)
	// Wire any side-exit targets to finish.
	for _, blk := range f.F.Blocks {
		if len(blk.Ops) == 0 && blk.Fall == 0 && blk.ID != f.F.Entry {
			blk.Fall = f.BlockID("finish")
		}
	}
	pb.SetEntry("main")
	return pb.MustBuild()
}

// TestDifferentialRandomPrograms is the repository's end-to-end fuzzer:
// every random program is compiled in both configurations and must
// produce the interpreter's bit-exact result on the cycle simulator,
// at several buffer sizes.
func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		prog := randomProgram(rng)
		for _, cfg := range []Config{Traditional(256), Aggressive(256)} {
			c, err := Compile(prog, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.Name, err)
			}
			for _, size := range []int{16, 64, 256} {
				if _, err := c.RunWithBuffer(size); err != nil {
					t.Fatalf("trial %d %s @%d: %v", trial, cfg.Name, size, err)
				}
			}
		}
	}
}
