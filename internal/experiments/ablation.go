package experiments

import (
	"fmt"
	"strings"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
)

// AblationRow reports the effect of disabling one transformation while
// keeping the rest of the aggressive pipeline.
type AblationRow struct {
	Variant     string
	Cycles      int64
	BufferRatio float64
	StaticOps   int
}

// AblationVariants lists the studied design choices.
var AblationVariants = []string{
	"full", "no-modulo", "no-collapse", "no-peel", "no-unroll", "no-combine",
	"no-promote", "no-predication",
}

// Ablation compiles one benchmark under each variant (256-op buffer).
func (s *Suite) Ablation(benchName string) ([]AblationRow, error) {
	return s.AblationBackend(benchName, "")
}

// AblationBackend is Ablation with an explicit modulo-scheduler
// backend ("" or "heuristic" for IMS, "optimal" for the exact search).
func (s *Suite) AblationBackend(benchName, backend string) ([]AblationRow, error) {
	b, ok := suite.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	prog := b.Build()
	var rows []AblationRow
	for _, v := range AblationVariants {
		cfg := core.Aggressive(256)
		cfg.Name = v
		cfg.Verify = s.verify
		cfg.SchedBackend = backend
		switch v {
		case "no-modulo":
			cfg.Modulo = false
		case "no-collapse":
			cfg.DisableCollapse = true
		case "no-peel":
			cfg.DisablePeel = true
		case "no-unroll":
			cfg.DisableUnroll = true
		case "no-combine":
			cfg.DisableCombine = true
		case "no-promote":
			cfg.DisablePromote = true
		case "no-predication":
			cfg.Predication = false
			cfg.LoopTransforms = false
		}
		c, err := core.Compile(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", benchName, v, err)
		}
		res, err := c.Run()
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", benchName, v, err)
		}
		if err := b.Check(res.Mem); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", benchName, v, err)
		}
		static := 0
		for _, fc := range c.Code.Funcs {
			static += fc.OpCount()
		}
		rows = append(rows, AblationRow{Variant: v, Cycles: res.Stats.Cycles,
			BufferRatio: res.Stats.BufferIssueRatio(), StaticOps: static})
	}
	return rows, nil
}

// RenderAblation formats the table with deltas against the full
// pipeline.
func RenderAblation(benchName string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s (aggressive pipeline, one pass disabled at a time)\n", benchName)
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %9s\n", "variant", "cycles", "vs full", "buffer", "static")
	base := rows[0]
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d %9.2fx %9.1f%% %9d\n",
			r.Variant, r.Cycles, float64(r.Cycles)/float64(base.Cycles),
			100*r.BufferRatio, r.StaticOps)
	}
	return sb.String()
}
