package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"lpbuf/internal/obs"
	"lpbuf/internal/runner"
)

// ArtifactSchema versions the JSON result format written by
// `lpbuf -json`. Bump it on any breaking change to the Artifact
// structure (the golden test pins the current shape).
const ArtifactSchema = "lpbuf.artifact/v1"

// Artifact is the machine-readable counterpart of `lpbuf -all`: every
// figure, the headline aggregates, and the runner's execution counters
// (per-job wall times, compile/simulate split, cache hits/misses, peak
// in-flight). Sections are optional — only the experiments that
// actually ran are present — so per-PR bench trajectories can be
// produced and diffed with any subset of figures.
type Artifact struct {
	Schema      string   `json:"schema"`
	Benchmarks  []string `json:"benchmarks"`
	BufferSizes []int    `json:"buffer_sizes"`

	// Figure7 maps config ("traditional"/"aggressive") to curves.
	Figure7  map[string][]Fig7Row `json:"figure7,omitempty"`
	Figure8a []Fig8aRow           `json:"figure8a,omitempty"`
	Figure8b []Fig8bRow           `json:"figure8b,omitempty"`
	Figure3  *Fig3                `json:"figure3,omitempty"`
	Figure5  []*Fig5              `json:"figure5,omitempty"`
	Encoding []EncodingRow        `json:"encoding,omitempty"`
	Shootout []ShootoutRow        `json:"shootout,omitempty"`
	Headline *Headline            `json:"headline,omitempty"`

	Runner *runner.Snapshot `json:"runner,omitempty"`
	// Metrics embeds the observability registry snapshot (simulator,
	// runner and compile counters) so experiment sweeps carry their
	// own telemetry.
	Metrics *obs.RegistrySnapshot `json:"metrics,omitempty"`
}

// NewArtifact creates an empty artifact for the registered benchmark
// suite and the Figure 7 sweep sizes.
func NewArtifact() *Artifact {
	return &Artifact{
		Schema:      ArtifactSchema,
		Benchmarks:  Benchmarks(),
		BufferSizes: append([]int(nil), BufferSizes...),
	}
}

// Encode renders the artifact as indented JSON with a trailing
// newline.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the encoded artifact to path.
func (a *Artifact) WriteFile(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// DecodeArtifact parses and schema-checks an encoded artifact (the
// client side of `lpbuf -submit` and cmd/obscheck validation).
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("artifact schema %q, want %q", a.Schema, ArtifactSchema)
	}
	return &a, nil
}
