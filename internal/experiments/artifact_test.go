package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lpbuf/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenArtifact builds a small artifact with fixed values covering
// every section of the schema.
func goldenArtifact() *Artifact {
	return &Artifact{
		Schema:      ArtifactSchema,
		Benchmarks:  []string{"adpcmenc", "g724dec"},
		BufferSizes: []int{16, 256},
		Figure7: map[string][]Fig7Row{
			"aggressive":  {{Bench: "adpcmenc", Ratios: map[int]float64{16: 0, 256: 0.999}}},
			"traditional": {{Bench: "adpcmenc", Ratios: map[int]float64{16: 0, 256: 0}}},
		},
		Figure8a: []Fig8aRow{{Bench: "adpcmenc", Speedup: 2.5, CodeSize: 1.25, TotalFetch: 1.1, MemFetch: 0.05}},
		Figure8b: []Fig8bRow{{Bench: "adpcmenc", BaselineBuffered: 0.66, TransformedBuffered: 0.14}},
		Figure3: &Fig3{
			ConsumersStatic:  map[int]int64{1: 10},
			ConsumersDynamic: map[int]int64{1: 1000},
			Durations:        map[int]int64{2: 500},
			Overlap:          map[int]int64{3: 200},
			PredicatedLoops:  12, TotalLoops: 40,
			SensitiveDynamic: 2100, IssuedDynamic: 10000,
			MaxLiveMax: 9, SlotModelOK: false, OverflowLoops: 1, ExtraDefines: 4,
		},
		Figure5: []*Fig5{{
			BufferOps: 16,
			Loops: []Fig5Loop{{Label: "postfilter:B", Ops: 12, Offset: 0, Entries: 3,
				Iterations: 30, BufferedIterations: 27, OpsBuffered: 324, OpsMemory: 36}},
			PFIssueFromBuffer:    0.0123,
			TotalIssueFromBuffer: 0.159,
		}},
		Encoding: []EncodingRow{{Bench: "adpcmenc", StaticOps: 100, Guarded: 20,
			ReplicaDefines: 2, FullBits: 3500, SlotBits: 3366}},
		Headline: &Headline{BufferIssueTraditional: 0.387, BufferIssueAggressive: 0.89,
			AvgSpeedup: 1.81, FetchPowerBaseline: 0.654, FetchPowerTransformed: 0.277},
		Runner: &runner.Snapshot{
			JobsRun: 6, JobsFailed: 0, Retries: 0,
			CacheHits: 4, CacheMisses: 2, RunHits: 1, RunMisses: 3,
			PeakInFlight: 2,
			Kinds: map[string]runner.KindSnapshot{
				"compile":  {Jobs: 2, WallMS: 1200.5},
				"simulate": {Jobs: 3, WallMS: 850.25},
				"reduce":   {Jobs: 1, WallMS: 0.5},
			},
			Jobs: []runner.JobRecord{
				{Key: "compile/adpcmenc/aggressive", Kind: "compile", WallMS: 1200.5, OK: true},
				{Key: "simulate/adpcmenc/aggressive@256", Kind: "simulate", WallMS: 300, OK: true},
			},
		},
	}
}

// TestArtifactGoldenSchema pins the JSON artifact schema: any change
// to field names, nesting, or the schema string shows up as a golden
// diff and must be paired with an ArtifactSchema version bump.
func TestArtifactGoldenSchema(t *testing.T) {
	got, err := goldenArtifact().Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "artifact_schema.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact schema drifted from %s (run `go test ./internal/experiments -run Golden -update` "+
			"after bumping ArtifactSchema)\ngot:\n%s", golden, got)
	}
}

// TestArtifactRoundTrip checks the artifact decodes back to the same
// structure (the bench trajectory diffing relies on this).
func TestArtifactRoundTrip(t *testing.T) {
	a := goldenArtifact()
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ArtifactSchema {
		t.Fatalf("schema: %q", back.Schema)
	}
	redata, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, redata) {
		t.Fatal("artifact does not round-trip")
	}
}

// TestArtifactOmitsEmptySections checks that sections that did not run
// are absent rather than null/empty.
func TestArtifactOmitsEmptySections(t *testing.T) {
	data, err := NewArtifact().Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"figure3", "figure5", "figure7", "figure8a", "figure8b", "encoding", "headline", "runner"} {
		if _, present := m[key]; present {
			t.Fatalf("empty artifact carries section %q", key)
		}
	}
	for _, key := range []string{"schema", "benchmarks", "buffer_sizes"} {
		if _, present := m[key]; !present {
			t.Fatalf("empty artifact lacks %q", key)
		}
	}
}
