package experiments

import (
	"fmt"
	"strings"

	"lpbuf/internal/predicate"
)

// EncodingRow quantifies Section 4's encoding argument for one
// benchmark: full predication spends a guard-register field on every
// operation (3 bits for this machine's 8 predicates; Itanium spends 6,
// inflating operations to 41 bits), while the slot-based scheme spends
// a single sensitivity bit plus occasional replica defines.
type EncodingRow struct {
	Bench string `json:"bench"`
	// StaticOps is the scheduled operation count (aggressive config).
	StaticOps int `json:"static_ops"`
	// Guarded is how many static ops actually carry a guard.
	Guarded int `json:"guarded"`
	// ReplicaDefines is the slot model's extra define cost.
	ReplicaDefines int `json:"replica_defines"`
	// FullBits / SlotBits are total code bits under each encoding.
	FullBits int64 `json:"full_bits"`
	SlotBits int64 `json:"slot_bits"`
}

// guardFieldBits is the per-op cost of a full predication guard field
// for eight predicate registers.
const guardFieldBits = 3

// EncodingCosts compares code size under full vs slot-based
// predication encodings.
func (s *Suite) EncodingCosts() ([]EncodingRow, error) {
	var rows []EncodingRow
	for _, name := range Benchmarks() {
		c, _, err := s.compiled(name, "aggressive")
		if err != nil {
			return nil, err
		}
		row := EncodingRow{Bench: name}
		for _, fname := range c.Code.Prog.Order {
			fc := c.Code.Funcs[fname]
			for _, sec := range fc.Sections {
				var sops []predicate.SchedOp
				for ci, bun := range sec.Bundles {
					for _, so := range bun.Ops {
						row.StaticOps++
						if so.Op.Guard != 0 {
							row.Guarded++
						}
						sops = append(sops, predicate.SchedOp{Op: so.Op, Cycle: ci, Slot: so.Slot})
					}
				}
				if isLoopSection(fc, sec) {
					bind := predicate.BindSlots(dedupe(sops, sec), 8)
					row.ReplicaDefines += bind.ExtraDefines
				}
			}
		}
		opBits := int64(c.Config.Machine.OpBits)
		row.FullBits = int64(row.StaticOps) * (opBits + guardFieldBits)
		row.SlotBits = int64(row.StaticOps)*(opBits+1) +
			int64(row.ReplicaDefines)*(opBits+1)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderEncoding formats the comparison.
func RenderEncoding(rows []EncodingRow) string {
	var sb strings.Builder
	sb.WriteString("Predication encoding cost (Section 4): full guard fields vs slot model\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %9s %11s %11s %8s\n",
		"bench", "ops", "guarded", "replicas", "full bits", "slot bits", "saved")
	var tf, ts int64
	for _, r := range rows {
		saved := 100 * (1 - float64(r.SlotBits)/float64(r.FullBits))
		fmt.Fprintf(&sb, "%-10s %8d %8d %9d %11d %11d %7.1f%%\n",
			r.Bench, r.StaticOps, r.Guarded, r.ReplicaDefines,
			r.FullBits, r.SlotBits, saved)
		tf += r.FullBits
		ts += r.SlotBits
	}
	fmt.Fprintf(&sb, "total: %.1f%% of full-predication code bits saved by the slot model\n",
		100*(1-float64(ts)/float64(tf)))
	sb.WriteString("(a 3-bit guard field also halves the addressable register space of a\n")
	sb.WriteString("three-operand 32-bit encoding, which is the paper's core objection)\n")
	return sb.String()
}
