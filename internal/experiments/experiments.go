// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7): the buffer-issue curves of Figure 7,
// the performance/code-size/fetch comparison of Figure 8(a), the
// normalized instruction-fetch power of Figure 8(b), the predication
// characterization of Figure 3, and the PostFilter buffer traces of
// Figure 5. Every simulated run is verified against the interpreter's
// reference output before its numbers are reported.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lpbuf/internal/bench"
	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
	"lpbuf/internal/ir"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/power"
	"lpbuf/internal/predicate"
	"lpbuf/internal/runner"
	"lpbuf/internal/sched"
	"lpbuf/internal/vliw"
)

// BufferSizes is the sweep of Figure 7 (operations).
var BufferSizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048}

// Cache is the memoization layer behind one or more Suites: compiled
// benchmarks and verified simulation results, fronted by a singleflight
// group so each (benchmark, config) pair compiles at most once and each
// (benchmark, config, buffer) triple simulates at most once per Cache,
// no matter how many suites or figures request it concurrently. A
// long-running service hands every job's Suite the same Cache, which is
// what makes repeated and overlapping jobs cheap.
type Cache struct {
	flight runner.Flight

	// engine pools per-simulation scratch (activation frames, event
	// batch buffers) across every batched sweep that runs through this
	// Cache — in lpbufd, that is every job in the process.
	engine *vliw.Engine

	mu       sync.Mutex
	compiles map[string]*core.Compiled
	runs     map[string]*Run
}

// NewCache creates an empty compile/run cache.
func NewCache() *Cache {
	return &Cache{
		engine:   vliw.NewEngine(),
		compiles: map[string]*core.Compiled{},
		runs:     map[string]*Run{},
	}
}

// Suite caches compiled benchmarks and verified simulation results
// across experiments (through its Cache, private by default, shareable
// via Options.Cache). It is safe for concurrent use.
type Suite struct {
	run     *runner.Runner
	metrics *runner.Metrics
	cc      *Cache
	verify  bool
	obs     *obs.Obs
	pmu     *pmu.Config

	// profiles collects the PMU profiles of runs this suite served
	// (keyed by run label), so SimProfiles reports exactly the runs
	// behind this suite's figures even when the memoization cache is
	// shared across suites.
	profMu   sync.Mutex
	profiles map[string]*pmu.Profile
}

// Options configures a Suite's execution subsystem.
type Options struct {
	// Workers bounds in-flight jobs; <=0 uses runtime.GOMAXPROCS(0).
	Workers int
	// OnEvent observes the runner's job event stream (progress log).
	OnEvent func(runner.Event)
	// Verify enables the internal/verify phase checkpoints on every
	// compile the suite performs (lpbuf -verify).
	Verify bool
	// Obs threads observability through every compile and simulation
	// the suite performs: compile-phase and runner-job spans into
	// Obs.Trace, simulator events into Obs.Sim, and counters into
	// Obs.Reg (which also backs the runner metrics, so one registry
	// snapshot covers both layers). Nil disables instrumentation.
	Obs *obs.Obs
	// Cache shares compile and simulation memoization with other
	// suites (lpbufd gives every job's suite one process-wide cache).
	// Nil gives the suite a private cache, preserving the historical
	// one-suite-per-process behaviour.
	Cache *Cache
	// PMU enables sampled guest profiling on every simulation the
	// suite performs; SimProfiles then exports the per-plan profiles.
	// Like Obs, the PMU config is not part of the memoization key:
	// cached runs carry whatever profile (or none) their first
	// computation produced, so suites sharing a Cache should agree on
	// sampling (lpbufd enables it for every job).
	PMU *pmu.Config
}

// New creates an empty experiment suite with default options.
func New() *Suite {
	return NewWithOptions(Options{})
}

// NewWithOptions creates an empty experiment suite with an explicit
// worker bound and/or event observer.
func NewWithOptions(o Options) *Suite {
	m := runner.NewMetricsIn(o.Obs.Registry())
	opts := []runner.Option{runner.WithMetrics(m)}
	if o.Workers > 0 {
		opts = append(opts, runner.WithWorkers(o.Workers))
	}
	if o.OnEvent != nil {
		opts = append(opts, runner.WithObserver(o.OnEvent))
	}
	if o.Obs != nil && o.Obs.Trace != nil {
		opts = append(opts, runner.WithTrace(o.Obs.Trace))
	}
	cc := o.Cache
	if cc == nil {
		cc = NewCache()
	}
	return &Suite{
		run:      runner.New(opts...),
		metrics:  m,
		verify:   o.Verify,
		obs:      o.Obs,
		pmu:      o.PMU,
		cc:       cc,
		profiles: map[string]*pmu.Profile{},
	}
}

// noteRuns collects the PMU profiles of runs this suite served.
func (s *Suite) noteRuns(runs ...*Run) {
	if s.pmu == nil {
		return
	}
	s.profMu.Lock()
	for _, r := range runs {
		if r != nil && r.Profile != nil {
			s.profiles[r.Profile.Label] = r.Profile
		}
	}
	s.profMu.Unlock()
}

// SimProfiles snapshots the sampled PMU profiles of every verified run
// this suite performed (or served from cache) as a versioned
// lpbuf.simprofile/v1 document. Nil when sampling is disabled or no
// profiled run has completed yet.
func (s *Suite) SimProfiles() *pmu.Document {
	if s.pmu == nil {
		return nil
	}
	s.profMu.Lock()
	ps := make([]*pmu.Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		ps = append(ps, p)
	}
	s.profMu.Unlock()
	if len(ps) == 0 {
		return nil
	}
	return pmu.NewDocument(*s.pmu, ps)
}

// Metrics snapshots the suite's execution counters (jobs, wall-time
// split, cache hits/misses, peak in-flight).
func (s *Suite) Metrics() runner.Snapshot { return s.metrics.Snapshot() }

// Workers reports the suite's concurrency bound.
func (s *Suite) Workers() int { return s.run.Workers() }

// Benchmarks returns the Table 1 benchmark names in order.
func Benchmarks() []string {
	var names []string
	for _, b := range suite.All() {
		names = append(names, b.Name)
	}
	return names
}

// compiled returns the cached compile of one benchmark/config.
// Concurrent misses on the same key share one compile through the
// singleflight group (the old check-then-compile let two goroutines
// both miss and compile the same pair twice).
func (s *Suite) compiled(name, cfg string) (*core.Compiled, bench.Benchmark, error) {
	b, ok := suite.ByName(name)
	if !ok {
		return nil, b, fmt.Errorf("unknown benchmark %q (known: %s)", name, strings.Join(Benchmarks(), ", "))
	}
	// A "-optimal" suffix selects the exact modulo-scheduler backend on
	// top of the base pipeline (the scheduler shoot-out's second axis).
	base, backend := cfg, ""
	if v, ok := strings.CutSuffix(cfg, "-optimal"); ok {
		base, backend = v, "optimal"
	}
	var config core.Config
	switch base {
	case "traditional":
		config = core.Traditional(256)
	case "aggressive":
		config = core.Aggressive(256)
	default:
		return nil, b, fmt.Errorf("unknown config %q", cfg)
	}
	config.Name = cfg
	config.SchedBackend = backend
	config.Verify = s.verify
	config.Obs = s.obs
	config.PMU = s.pmu
	config.TraceLabel = name
	// Verify-enabled compiles run the phase checkpoints; a shared cache
	// must not satisfy a verifying suite with an unverified compile (or
	// vice versa — a verified artifact is fine but the hit would skip
	// the checkpoints the caller asked for), so verify is in the key.
	key := name + "/" + cfg + verifyKeySuffix(s.verify)
	s.cc.mu.Lock()
	c := s.cc.compiles[key]
	s.cc.mu.Unlock()
	if c != nil {
		s.metrics.CacheHit()
		return c, b, nil
	}
	v, shared, err := s.cc.flight.Do("compile/"+key, func() (any, error) {
		// Re-check under the flight: a previous call may have filled the
		// cache between our fast-path miss and this execution.
		s.cc.mu.Lock()
		c := s.cc.compiles[key]
		s.cc.mu.Unlock()
		if c != nil {
			s.metrics.CacheHit()
			return c, nil
		}
		s.metrics.CacheMiss()
		c, err := core.Compile(b.Build(), config)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, cfg, err)
		}
		s.cc.mu.Lock()
		s.cc.compiles[key] = c
		s.cc.mu.Unlock()
		return c, nil
	})
	if err != nil {
		return nil, b, err
	}
	if shared {
		s.metrics.CacheHit()
	}
	return v.(*core.Compiled), b, nil
}

// Run is one verified simulation outcome.
type Run struct {
	Bench     string
	Config    string
	BufferOps int
	Stats     vliw.Stats
	Pass      core.PassStats
	// StaticOps is the scheduled code size in operations (including
	// software-pipelining expansion).
	StaticOps int
	// Profile is the run's sampled PMU profile (nil when the run was
	// first computed with sampling disabled).
	Profile *pmu.Profile
}

// RunAt compiles (cached), re-plans the buffer at the given capacity,
// runs, verifies the output against both the interpreter reference and
// the pure-Go reference, and reports the statistics. Results are
// memoized: the simulator is deterministic, so each (benchmark,
// config, buffer) triple is simulated and verified once per process,
// with concurrent requests singleflighted.
func (s *Suite) RunAt(name, cfg string, bufferOps int) (*Run, error) {
	key := fmt.Sprintf("%s/%s@%d%s", name, cfg, bufferOps, verifyKeySuffix(s.verify))
	s.cc.mu.Lock()
	r := s.cc.runs[key]
	s.cc.mu.Unlock()
	if r != nil {
		s.metrics.RunHit()
		s.noteRuns(r)
		return r, nil
	}
	v, shared, err := s.cc.flight.Do("run/"+key, func() (any, error) {
		s.cc.mu.Lock()
		r := s.cc.runs[key]
		s.cc.mu.Unlock()
		if r != nil {
			s.metrics.RunHit()
			return r, nil
		}
		s.metrics.RunMiss()
		r, err := s.runUncached(name, cfg, bufferOps)
		if err != nil {
			return nil, err
		}
		s.cc.mu.Lock()
		s.cc.runs[key] = r
		s.cc.mu.Unlock()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		s.metrics.RunHit()
	}
	r = v.(*Run)
	s.noteRuns(r)
	return r, nil
}

// RunSweepAt runs one benchmark/config across a whole buffer sweep as
// ONE batched simulation (core.RunSweep → vliw.RunBatch): the program
// executes once and its statistics are accounted under every capacity,
// so a Figure 7 sweep costs one simulation instead of len(sizes). The
// per-size Runs land in the same memoization cache RunAt uses (sweep
// stats are bit-identical to solo stats — the batch engine's
// contract), so sweeps and point queries serve each other's hits.
// Results come back in sizes order.
func (s *Suite) RunSweepAt(name, cfg string, sizes []int) ([]*Run, error) {
	runKey := func(sz int) string {
		return fmt.Sprintf("%s/%s@%d%s", name, cfg, sz, verifyKeySuffix(s.verify))
	}
	// collect serves the sweep entirely from cached runs, or reports a
	// miss (nil) if any size is uncached.
	collect := func() []*Run {
		s.cc.mu.Lock()
		defer s.cc.mu.Unlock()
		out := make([]*Run, len(sizes))
		for i, sz := range sizes {
			r := s.cc.runs[runKey(sz)]
			if r == nil {
				return nil
			}
			out[i] = r
		}
		return out
	}
	if out := collect(); out != nil {
		for range sizes {
			s.metrics.RunHit()
		}
		s.noteRuns(out...)
		return out, nil
	}
	key := fmt.Sprintf("sweep/%s/%s@%v%s", name, cfg, sizes, verifyKeySuffix(s.verify))
	v, shared, err := s.cc.flight.Do(key, func() (any, error) {
		if out := collect(); out != nil {
			for range sizes {
				s.metrics.RunHit()
			}
			return out, nil
		}
		c, b, err := s.compiled(name, cfg)
		if err != nil {
			return nil, err
		}
		results, err := c.RunSweep(sizes, s.cc.engine)
		if err != nil {
			return nil, err
		}
		// The batch shares one final memory image; checking it once
		// checks every capacity's run.
		if err := b.Check(results[0].Mem); err != nil {
			return nil, fmt.Errorf("%s/%s sweep: output check: %w", name, cfg, err)
		}
		static := 0
		for _, fc := range c.Code.Funcs {
			static += fc.OpCount()
		}
		out := make([]*Run, len(sizes))
		hits, misses := 0, 0
		s.cc.mu.Lock()
		for i, sz := range sizes {
			if r := s.cc.runs[runKey(sz)]; r != nil {
				// A point RunAt landed first; keep its pointer so the
				// memoization stays pointer-stable for both callers.
				out[i] = r
				hits++
				continue
			}
			r := &Run{Bench: name, Config: cfg, BufferOps: sz,
				Stats: results[i].Stats, Pass: c.Stats, StaticOps: static,
				Profile: results[i].Profile}
			s.cc.runs[runKey(sz)] = r
			out[i] = r
			misses++
		}
		s.cc.mu.Unlock()
		for ; misses > 0; misses-- {
			s.metrics.RunMiss()
		}
		for ; hits > 0; hits-- {
			s.metrics.RunHit()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		for range sizes {
			s.metrics.RunHit()
		}
	}
	out := v.([]*Run)
	s.noteRuns(out...)
	return out, nil
}

// verifyKeySuffix segregates verify-enabled entries in a shared Cache.
func verifyKeySuffix(verify bool) string {
	if verify {
		return "/verify"
	}
	return ""
}

// runUncached is the verified simulation behind RunAt.
func (s *Suite) runUncached(name, cfg string, bufferOps int) (*Run, error) {
	c, b, err := s.compiled(name, cfg)
	if err != nil {
		return nil, err
	}
	res, err := c.RunWithBuffer(bufferOps)
	if err != nil {
		return nil, err
	}
	if err := b.Check(res.Mem); err != nil {
		return nil, fmt.Errorf("%s/%s@%d: output check: %w", name, cfg, bufferOps, err)
	}
	static := 0
	for _, fc := range c.Code.Funcs {
		static += fc.OpCount()
	}
	return &Run{Bench: name, Config: cfg, BufferOps: bufferOps,
		Stats: res.Stats, Pass: c.Stats, StaticOps: static,
		Profile: res.Profile}, nil
}

// Disasm returns the aggressive-config scheduled-code listing of a
// benchmark (all functions).
func (s *Suite) Disasm(name string) (string, error) {
	return s.DisasmConfig(name, "aggressive")
}

// DisasmConfig is Disasm under an explicit config name (any name
// compiled() accepts, e.g. "aggressive-optimal" for the exact
// modulo-scheduling backend).
func (s *Suite) DisasmConfig(name, cfg string) (string, error) {
	c, _, err := s.compiled(name, cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, fname := range c.Code.Prog.Order {
		sb.WriteString(c.Code.Funcs[fname].Disasm())
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// ---- Figure 7: buffer issue fraction vs buffer size ----

// Fig7Row is one benchmark's curve.
type Fig7Row struct {
	Bench  string          `json:"bench"`
	Ratios map[int]float64 `json:"ratios"` // buffer size -> fraction
}

// Figure7 computes the Figure 7(a) (traditional) or 7(b) (aggressive)
// curves for all benchmarks. The sweep is scheduled as a compile →
// fan-out simulate → reduce job graph (see graphs.go); rows come back
// in benchmark-table order regardless of completion order.
func (s *Suite) Figure7(cfg string, sizes []int) ([]Fig7Row, error) {
	return s.Figure7Ctx(context.Background(), cfg, sizes)
}

// RenderFig7 formats the curves as a table.
func RenderFig7(title string, rows []Fig7Row, sizes []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-10s", title, "bench")
	for _, sz := range sizes {
		fmt.Fprintf(&sb, "%8d", sz)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s", r.Bench)
		for _, sz := range sizes {
			fmt.Fprintf(&sb, "%7.1f%%", 100*r.Ratios[sz])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---- Figure 8(a): speedup, code size, fetch counts ----

// Fig8aRow compares aggressive vs traditional for one benchmark.
type Fig8aRow struct {
	Bench string `json:"bench"`
	// Speedup is traditional cycles / aggressive cycles.
	Speedup float64 `json:"speedup"`
	// CodeSize is aggressive static ops / traditional static ops.
	CodeSize float64 `json:"code_size"`
	// TotalFetch is aggressive fetched ops / traditional fetched ops.
	TotalFetch float64 `json:"total_fetch"`
	// MemFetch is the ratio of ops fetched from global memory.
	MemFetch float64 `json:"mem_fetch"`
}

// Figure8a computes the Figure 8(a) ratios at the paper's 256-op
// buffer, scheduled as a job graph.
func (s *Suite) Figure8a() ([]Fig8aRow, error) {
	return s.Figure8aCtx(context.Background())
}

// fig8aRow reduces one benchmark's pair of verified runs.
func fig8aRow(name string, tr, ag *Run) Fig8aRow {
	trMem := tr.Stats.OpsIssued - tr.Stats.OpsFromBuffer
	agMem := ag.Stats.OpsIssued - ag.Stats.OpsFromBuffer
	return Fig8aRow{
		Bench:      name,
		Speedup:    float64(tr.Stats.Cycles) / float64(ag.Stats.Cycles),
		CodeSize:   float64(ag.StaticOps) / float64(tr.StaticOps),
		TotalFetch: float64(ag.Stats.OpsIssued) / float64(tr.Stats.OpsIssued),
		MemFetch:   float64(agMem) / float64(trMem),
	}
}

// RenderFig8a formats the comparison.
func RenderFig8a(rows []Fig8aRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8(a): aggressive vs traditional (256-op buffer)\n")
	fmt.Fprintf(&sb, "%-10s %9s %10s %11s %10s\n", "bench", "speedup", "code size", "total fetch", "mem fetch")
	var gs float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8.2fx %9.2fx %10.2fx %9.2fx\n",
			r.Bench, r.Speedup, r.CodeSize, r.TotalFetch, r.MemFetch)
		gs += r.Speedup
	}
	fmt.Fprintf(&sb, "average speedup: %.2fx (paper: 1.81x)\n", gs/float64(len(rows)))
	return sb.String()
}

// ---- Figure 8(b): normalized instruction fetch power ----

// Fig8bRow gives normalized fetch energy for one benchmark.
type Fig8bRow struct {
	Bench string `json:"bench"`
	// BaselineBuffered: traditional code with the 256-op buffer.
	BaselineBuffered float64 `json:"baseline_buffered"`
	// TransformedBuffered: aggressive code with the 256-op buffer.
	TransformedBuffered float64 `json:"transformed_buffered"`
}

// Figure8b computes Figure 8(b), normalized to buffer-less issue of
// traditionally optimized code, scheduled as a job graph.
func (s *Suite) Figure8b() ([]Fig8bRow, error) {
	return s.Figure8bCtx(context.Background())
}

// fig8bRow reduces one benchmark's pair of verified runs under the
// fetch-power model.
func fig8bRow(model *power.Model, name string, tr, ag *Run) Fig8bRow {
	base := tr.Stats.OpsIssued // all-memory baseline fetches
	trMem := tr.Stats.OpsIssued - tr.Stats.OpsFromBuffer
	agMem := ag.Stats.OpsIssued - ag.Stats.OpsFromBuffer
	return Fig8bRow{
		Bench:               name,
		BaselineBuffered:    model.Normalized(trMem, tr.Stats.OpsFromBuffer, 256, base),
		TransformedBuffered: model.Normalized(agMem, ag.Stats.OpsFromBuffer, 256, base),
	}
}

// RenderFig8b formats the power results.
func RenderFig8b(rows []Fig8bRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8(b): normalized instruction fetch power (1.0 = unbuffered traditional)\n")
	fmt.Fprintf(&sb, "%-10s %18s %20s\n", "bench", "baseline buffered", "transformed buffered")
	var sb1, sb2 float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %17.3f %19.3f\n", r.Bench, r.BaselineBuffered, r.TransformedBuffered)
		sb1 += r.BaselineBuffered
		sb2 += r.TransformedBuffered
	}
	n := float64(len(rows))
	fmt.Fprintf(&sb, "average: baseline buffered %.3f (paper: 0.654), transformed %.3f (paper: 0.277)\n",
		sb1/n, sb2/n)
	return sb.String()
}

// ---- Figure 3: predication characterization ----

// Fig3 aggregates the three cumulative distributions of Figure 3 over
// the aggressive compiles of all benchmarks.
type Fig3 struct {
	// ConsumersStatic[n] counts defines with exactly n consumers;
	// ConsumersDynamic weights by profiled block execution.
	ConsumersStatic  map[int]int64 `json:"consumers_static"`
	ConsumersDynamic map[int]int64 `json:"consumers_dynamic"`
	// Durations[d] counts defines whose value lives d cycles in the
	// final schedule (dynamic weighting).
	Durations map[int]int64 `json:"durations"`
	// Overlap[m] counts loops whose schedule keeps at most m predicates
	// simultaneously live (weighted by loop iterations).
	Overlap map[int]int64 `json:"overlap"`
	// PredicatedLoops / TotalLoops count loop sections.
	PredicatedLoops int `json:"predicated_loops"`
	TotalLoops      int `json:"total_loops"`
	// SensitiveDynamic / IssuedDynamic give the fraction of dynamic
	// operations in predicated loops carrying the sensitivity bit.
	SensitiveDynamic int64 `json:"sensitive_dynamic"`
	IssuedDynamic    int64 `json:"issued_dynamic"`
	// MaxLiveMax is the largest observed simultaneous liveness.
	MaxLiveMax int `json:"max_live_max"`
	// SlotModelOK reports whether every loop fit the 8-slot model.
	SlotModelOK bool `json:"slot_model_ok"`
	// OverflowLoops counts loops needing live-range splitting (more
	// than 8 simultaneously live predicates; the paper notes such
	// loops need extra defines to regenerate values in split ranges).
	OverflowLoops int `json:"overflow_loops"`
	// ExtraDefines totals replica defines the slot model would insert.
	ExtraDefines int `json:"extra_defines"`
}

// Figure3 computes the predication statistics. Per-benchmark analysis
// jobs run concurrently behind the aggressive compiles; the reduce
// merges partials in benchmark-table order (the merge is commutative,
// so the result is completion-order independent).
func (s *Suite) Figure3() (*Fig3, error) {
	return s.Figure3Ctx(context.Background())
}

// newFig3 creates an empty accumulator.
func newFig3() *Fig3 {
	return &Fig3{
		ConsumersStatic:  map[int]int64{},
		ConsumersDynamic: map[int]int64{},
		Durations:        map[int]int64{},
		Overlap:          map[int]int64{},
		SlotModelOK:      true,
	}
}

// mergeFig3 folds one benchmark's partial distributions into dst.
func mergeFig3(dst, src *Fig3) {
	for k, v := range src.ConsumersStatic {
		dst.ConsumersStatic[k] += v
	}
	for k, v := range src.ConsumersDynamic {
		dst.ConsumersDynamic[k] += v
	}
	for k, v := range src.Durations {
		dst.Durations[k] += v
	}
	for k, v := range src.Overlap {
		dst.Overlap[k] += v
	}
	dst.PredicatedLoops += src.PredicatedLoops
	dst.TotalLoops += src.TotalLoops
	dst.SensitiveDynamic += src.SensitiveDynamic
	dst.IssuedDynamic += src.IssuedDynamic
	if src.MaxLiveMax > dst.MaxLiveMax {
		dst.MaxLiveMax = src.MaxLiveMax
	}
	dst.SlotModelOK = dst.SlotModelOK && src.SlotModelOK
	dst.OverflowLoops += src.OverflowLoops
	dst.ExtraDefines += src.ExtraDefines
}

// fig3ForCompiled analyzes one aggressive compile.
func fig3ForCompiled(c *core.Compiled) *Fig3 {
	out := newFig3()
	for _, fname := range c.Code.Prog.Order {
		fc := c.Code.Funcs[fname]
		irf := c.TransformedIR.Funcs[fname]
		for _, sec := range fc.Sections {
			if !isLoopSection(fc, sec) {
				continue
			}
			out.TotalLoops++
			blk := irf.Block(sec.Block)
			weight := int64(1)
			if blk != nil && blk.Weight > 0 {
				weight = int64(blk.Weight)
			}
			// Scheduled ops of the section.
			var sops []predicate.SchedOp
			pred := false
			for ci, bun := range sec.Bundles {
				for _, so := range bun.Ops {
					sops = append(sops, predicate.SchedOp{Op: so.Op, Cycle: ci, Slot: so.Slot})
					if so.Op.Guard != 0 || so.Op.IsPredDefine() {
						pred = true
					}
				}
			}
			if !pred {
				continue
			}
			out.PredicatedLoops++
			bind := predicate.BindSlots(dedupe(sops, sec), 8)
			out.Overlap[bind.MaxLive] += weight
			if bind.MaxLive > out.MaxLiveMax {
				out.MaxLiveMax = bind.MaxLive
			}
			if !bind.OK {
				out.SlotModelOK = false
				out.OverflowLoops++
			}
			out.ExtraDefines += bind.ExtraDefines
			out.SensitiveDynamic += int64(bind.Sensitive) * weight
			out.IssuedDynamic += int64(len(dedupe(sops, sec))) * weight
			// Consumers per define (on the IR block, one iteration).
			if blk != nil {
				for _, n := range predicate.ConsumersPerDefine(blk) {
					out.ConsumersStatic[n]++
					out.ConsumersDynamic[n] += weight
				}
			}
			// Live-range durations in the kernel schedule.
			for _, d := range durations(dedupe(sops, sec)) {
				out.Durations[d] += weight
			}
		}
	}
	return out
}

// dedupe keeps one scheduled instance per op (pipelined sections emit
// prologue/epilogue copies; the kernel instance is representative).
func dedupe(sops []predicate.SchedOp, sec *sched.BlockCode) []predicate.SchedOp {
	seen := map[*ir.Op]bool{}
	var out []predicate.SchedOp
	for _, so := range sops {
		if seen[so.Op] {
			continue
		}
		seen[so.Op] = true
		out = append(out, so)
	}
	return out
}

// durations computes per-define live-range lengths (define cycle to
// last guarded consumer cycle).
func durations(sops []predicate.SchedOp) []int {
	defC := map[ir.PredReg]int{}
	lastU := map[ir.PredReg]int{}
	for _, so := range sops {
		if so.Op.Guard != 0 {
			if so.Cycle > lastU[so.Op.Guard] {
				lastU[so.Op.Guard] = so.Cycle
			}
		}
		for _, pd := range so.Op.PredDefines() {
			if c, ok := defC[pd.Pred]; !ok || so.Cycle < c {
				defC[pd.Pred] = so.Cycle
			}
		}
	}
	var out []int
	for p, d := range defC {
		u, ok := lastU[p]
		if !ok || u < d {
			continue
		}
		out = append(out, u-d)
	}
	sort.Ints(out)
	return out
}

func isLoopSection(fc *sched.FuncCode, sec *sched.BlockCode) bool {
	if sec.Kind == sched.KindKernel {
		return true
	}
	if sec.Kind != sched.KindStraight {
		return false
	}
	for _, b := range sec.Bundles {
		for _, so := range b.Ops {
			if so.Op.LoopBack && so.Op.IsBranch() && so.TargetBundle == sec.Start {
				return true
			}
		}
	}
	return false
}

// RenderFig3 formats the distributions as cumulative percentages.
func RenderFig3(f *Fig3) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: predication characterization (aggressive config)\n")
	fmt.Fprintf(&sb, "loops: %d total, %d predicated (paper: 564 candidates, 122 predicated)\n",
		f.TotalLoops, f.PredicatedLoops)
	sb.WriteString(renderCDF("(a) consumers per define", f.ConsumersDynamic, "consumers"))
	sb.WriteString(renderCDF("(b) live range duration (cycles)", f.Durations, "cycles"))
	sb.WriteString(renderCDF("(c) simultaneously live predicates per loop", f.Overlap, "preds"))
	if f.IssuedDynamic > 0 {
		fmt.Fprintf(&sb, "sensitivity: %.1f%% of dynamic ops in predicated loops carry the bit (paper: 21.5%%)\n",
			100*float64(f.SensitiveDynamic)/float64(f.IssuedDynamic))
	}
	fmt.Fprintf(&sb, "max simultaneously live predicates: %d (8 slots available)\n", f.MaxLiveMax)
	if f.SlotModelOK {
		sb.WriteString("the slot model fits every predicated loop without splitting\n")
	} else {
		fmt.Fprintf(&sb, "%d of %d predicated loops exceed 8 live predicates and need\n",
			f.OverflowLoops, f.PredicatedLoops)
		sb.WriteString("live-range splitting (the paper's \"extra predicate defines\" case;\n")
		sb.WriteString("here it is the IDEA multiplication loop's rare-path hammocks)\n")
	}
	fmt.Fprintf(&sb, "replica defines required by the slot model: %d\n", f.ExtraDefines)
	return sb.String()
}

func renderCDF(title string, hist map[int]int64, unit string) string {
	var keys []int
	var total int64
	for k, v := range hist {
		keys = append(keys, k)
		total += v
	}
	if total == 0 {
		return title + ": (no data)\n"
	}
	sort.Ints(keys)
	var sb strings.Builder
	sb.WriteString(title + ":\n")
	var cum int64
	for _, k := range keys {
		cum += hist[k]
		fmt.Fprintf(&sb, "  <=%3d %s: %5.1f%%\n", k, unit, 100*float64(cum)/float64(total))
		if float64(cum)/float64(total) > 0.999 {
			break
		}
	}
	return sb.String()
}

// ---- Headline numbers ----

// Headline aggregates the paper's headline claims.
type Headline struct {
	// BufferIssueTraditional/Aggressive: averages at 256 ops excluding
	// jpegenc and mpeg2enc (the paper's footnote 1).
	BufferIssueTraditional float64 `json:"buffer_issue_traditional"`
	BufferIssueAggressive  float64 `json:"buffer_issue_aggressive"`
	AvgSpeedup             float64 `json:"avg_speedup"`
	// FetchPowerReduction at 256 ops vs unbuffered traditional.
	FetchPowerBaseline    float64 `json:"fetch_power_baseline"`
	FetchPowerTransformed float64 `json:"fetch_power_transformed"`
}

// ComputeHeadline runs everything needed for the abstract's numbers,
// scheduled as one job graph over the 256-op runs of every benchmark.
func (s *Suite) ComputeHeadline() (*Headline, error) {
	return s.ComputeHeadlineCtx(context.Background())
}

// reduceHeadline folds the 256-op runs (in benchmark-table order) into
// the headline aggregates; the power terms reuse fig8bRow so they are
// bit-identical to Figure 8(b)'s.
func reduceHeadline(names []string, tr, ag map[string]*Run) *Headline {
	h := &Headline{}
	excluded := map[string]bool{"jpegenc": true, "mpeg2enc": true}
	model := power.Default()
	n := 0
	for _, name := range names {
		t, a := tr[name], ag[name]
		h.AvgSpeedup += float64(t.Stats.Cycles) / float64(a.Stats.Cycles)
		if !excluded[name] {
			h.BufferIssueTraditional += t.Stats.BufferIssueRatio()
			h.BufferIssueAggressive += a.Stats.BufferIssueRatio()
			n++
		}
		row := fig8bRow(model, name, t, a)
		h.FetchPowerBaseline += row.BaselineBuffered
		h.FetchPowerTransformed += row.TransformedBuffered
	}
	h.BufferIssueTraditional /= float64(n)
	h.BufferIssueAggressive /= float64(n)
	h.AvgSpeedup /= float64(len(names))
	h.FetchPowerBaseline /= float64(len(names))
	h.FetchPowerTransformed /= float64(len(names))
	return h
}

// RenderHeadline formats the headline comparison.
func RenderHeadline(h *Headline) string {
	var sb strings.Builder
	sb.WriteString("Headline numbers (paper values in parentheses):\n")
	fmt.Fprintf(&sb, "  buffer issue, traditional:  %5.1f%%  (38.7%%)\n", 100*h.BufferIssueTraditional)
	fmt.Fprintf(&sb, "  buffer issue, transformed:  %5.1f%%  (89.0%%)\n", 100*h.BufferIssueAggressive)
	fmt.Fprintf(&sb, "  average speedup:            %5.2fx  (1.81x)\n", h.AvgSpeedup)
	fmt.Fprintf(&sb, "  fetch power, baseline buf:  %5.1f%%  (65.4%%)\n", 100*h.FetchPowerBaseline)
	fmt.Fprintf(&sb, "  fetch power, transformed:   %5.1f%%  (27.7%%)\n", 100*h.FetchPowerTransformed)
	return sb.String()
}
