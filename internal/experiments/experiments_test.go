package experiments

import (
	"strings"
	"testing"
)

func TestRunAtVerifiesAndReports(t *testing.T) {
	s := New()
	r, err := s.RunAt("adpcmenc", "aggressive", 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.BufferIssueRatio() < 0.9 {
		t.Fatalf("adpcmenc aggressive ratio %.3f", r.Stats.BufferIssueRatio())
	}
	if r.StaticOps == 0 || r.Stats.Cycles == 0 {
		t.Fatal("missing stats")
	}
	// The compile is cached: a second run at another size is cheap and
	// still verified.
	r2, err := s.RunAt("adpcmenc", "aggressive", 16)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.BufferIssueRatio() >= r.Stats.BufferIssueRatio() {
		t.Fatalf("16-op buffer (%.3f) should not beat 256-op (%.3f)",
			r2.Stats.BufferIssueRatio(), r.Stats.BufferIssueRatio())
	}
}

func TestRunAtUnknownBenchmark(t *testing.T) {
	s := New()
	if _, err := s.RunAt("nosuch", "aggressive", 256); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if _, err := s.RunAt("adpcmenc", "nosuch", 256); err == nil {
		t.Fatal("expected error for unknown config")
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles g724dec")
	}
	s := New()
	small, err := s.Figure5(16)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Figure5(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Loops) == 0 {
		t.Fatal("no post-filter loops traced")
	}
	if small.TotalIssueFromBuffer >= big.TotalIssueFromBuffer {
		t.Fatalf("16-op total %.3f should be below 256-op %.3f",
			small.TotalIssueFromBuffer, big.TotalIssueFromBuffer)
	}
	// More loops fit at 256 than at 16.
	if len(small.Loops) > len(big.Loops) {
		t.Fatalf("loops: %d @16 vs %d @256", len(small.Loops), len(big.Loops))
	}
	out := RenderFig5(big)
	if !strings.Contains(out, "postfilter") {
		t.Fatal("render lacks loop labels")
	}
}

func TestFigure3Distributions(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the suite")
	}
	s := New()
	f3, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if f3.PredicatedLoops == 0 || f3.TotalLoops < f3.PredicatedLoops {
		t.Fatalf("loops: %d/%d", f3.PredicatedLoops, f3.TotalLoops)
	}
	// Paper claim: 8 standing predicates suffice for nearly all loops;
	// loops that exceed it need live-range splitting (here: the IDEA
	// multiplication loop). Assert the claim holds for the overwhelming
	// majority of dynamic loop iterations.
	var within8, total int64
	for m, w := range f3.Overlap {
		total += w
		if m <= 8 {
			within8 += w
		}
	}
	if total == 0 || float64(within8)/float64(total) < 0.95 {
		t.Fatalf("only %d/%d dynamic loop weight fits 8 predicates", within8, total)
	}
	if f3.OverflowLoops > 2 {
		t.Fatalf("%d loops exceed the slot model (expected at most the IDEA loops)",
			f3.OverflowLoops)
	}
	if f3.MaxLiveMax < 1 || f3.MaxLiveMax > 12 {
		t.Fatalf("max live predicates = %d", f3.MaxLiveMax)
	}
	if f3.SensitiveDynamic <= 0 || f3.SensitiveDynamic > f3.IssuedDynamic {
		t.Fatalf("sensitivity counts: %d/%d", f3.SensitiveDynamic, f3.IssuedDynamic)
	}
	out := RenderFig3(f3)
	if !strings.Contains(out, "consumers per define") {
		t.Fatal("render incomplete")
	}
}

func TestRenderers(t *testing.T) {
	rows := []Fig7Row{{Bench: "x", Ratios: map[int]float64{16: 0.5, 256: 0.9}}}
	out := RenderFig7("T", rows, []int{16, 256})
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "90.0%") {
		t.Fatalf("fig7 render: %q", out)
	}
	out = RenderFig8a([]Fig8aRow{{Bench: "x", Speedup: 2, CodeSize: 1.5, TotalFetch: 1.2, MemFetch: 0.2}})
	if !strings.Contains(out, "2.00x") {
		t.Fatalf("fig8a render: %q", out)
	}
	out = RenderFig8b([]Fig8bRow{{Bench: "x", BaselineBuffered: 0.6, TransformedBuffered: 0.2}})
	if !strings.Contains(out, "0.600") {
		t.Fatalf("fig8b render: %q", out)
	}
	h := &Headline{BufferIssueTraditional: 0.4, BufferIssueAggressive: 0.9,
		AvgSpeedup: 1.8, FetchPowerBaseline: 0.6, FetchPowerTransformed: 0.3}
	out = RenderHeadline(h)
	if !strings.Contains(out, "1.80x") {
		t.Fatalf("headline render: %q", out)
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (Table 1)", len(names))
	}
	want := map[string]bool{"adpcmenc": true, "adpcmdec": true, "g724enc": true,
		"g724dec": true, "jpegenc": true, "jpegdec": true, "mpeg2enc": true,
		"mpeg2dec": true, "mpg123": true, "pgpenc": true, "pgpdec": true}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected benchmark %q", n)
		}
	}
}

func TestAblationVariantsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several variants")
	}
	s := New()
	rows, err := s.Ablation("adpcmenc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants) {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Variant != "full" {
		t.Fatal("first row must be the full pipeline")
	}
	// Disabling predication must hurt adpcm (its loop is branchy).
	var full, nopred AblationRow
	for _, r := range rows {
		switch r.Variant {
		case "full":
			full = r
		case "no-predication":
			nopred = r
		}
	}
	if nopred.Cycles <= full.Cycles {
		t.Fatalf("no-predication (%d) should be slower than full (%d)",
			nopred.Cycles, full.Cycles)
	}
	if nopred.BufferRatio >= full.BufferRatio {
		t.Fatal("no-predication should buffer less")
	}
	out := RenderAblation("adpcmenc", rows)
	if !strings.Contains(out, "no-predication") {
		t.Fatal("render incomplete")
	}
}

func TestWidthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles three machines")
	}
	s := New()
	rows, err := s.WidthSweep("adpcmenc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Narrower machines take at least as many cycles.
	if rows[0].Cycles < rows[2].Cycles {
		t.Fatalf("2-wide (%d) faster than 8-wide (%d)?", rows[0].Cycles, rows[2].Cycles)
	}
	// The buffer-issue fraction is roughly width-independent.
	if d := rows[0].BufferRatio - rows[2].BufferRatio; d > 0.2 || d < -0.2 {
		t.Fatalf("buffer ratio swings with width: %.3f vs %.3f",
			rows[0].BufferRatio, rows[2].BufferRatio)
	}
	out := RenderWidths("adpcmenc", rows)
	if !strings.Contains(out, "width") {
		t.Fatal("render incomplete")
	}
}

func TestEncodingCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the suite")
	}
	s := New()
	rows, err := s.EncodingCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Guarded > r.StaticOps || r.StaticOps == 0 {
			t.Fatalf("%s: guarded %d of %d", r.Bench, r.Guarded, r.StaticOps)
		}
		if r.FullBits != int64(r.StaticOps)*35 {
			t.Fatalf("%s: full bits %d", r.Bench, r.FullBits)
		}
	}
	out := RenderEncoding(rows)
	if !strings.Contains(out, "slot model") {
		t.Fatal("render incomplete")
	}
}

func TestDisasmShowsKernels(t *testing.T) {
	s := New()
	text, err := s.Disasm("adpcmenc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "kernel") || !strings.Contains(text, "II=") {
		t.Fatal("disassembly lacks kernel markers")
	}
	if !strings.Contains(text, "cmpp") {
		t.Fatal("disassembly lacks predicate defines")
	}
}

// TestReproductionContract is the repository's top-level regression
// guard: the headline shape of the paper must hold — a large gap
// between traditional and transformed buffer issue, a solid average
// speedup, and a large fetch-power reduction.
func TestReproductionContract(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite")
	}
	s := New()
	h, err := s.ComputeHeadline()
	if err != nil {
		t.Fatal(err)
	}
	if h.BufferIssueTraditional > 0.55 {
		t.Errorf("traditional buffer issue %.3f too high (paper: 0.387)", h.BufferIssueTraditional)
	}
	if h.BufferIssueAggressive < 0.80 {
		t.Errorf("transformed buffer issue %.3f too low (paper: 0.890)", h.BufferIssueAggressive)
	}
	if h.BufferIssueAggressive < h.BufferIssueTraditional+0.30 {
		t.Errorf("transformation gap too small: %.3f -> %.3f",
			h.BufferIssueTraditional, h.BufferIssueAggressive)
	}
	if h.AvgSpeedup < 1.4 {
		t.Errorf("average speedup %.2f too low (paper: 1.81)", h.AvgSpeedup)
	}
	if h.FetchPowerTransformed > 0.45 {
		t.Errorf("transformed fetch power %.3f too high (paper: 0.277)", h.FetchPowerTransformed)
	}
	if h.FetchPowerBaseline < h.FetchPowerTransformed {
		t.Error("baseline buffered power should exceed transformed")
	}
}
