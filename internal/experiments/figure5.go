package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lpbuf/internal/core"
	"lpbuf/internal/loopbuffer"
	"lpbuf/internal/vliw"
)

// planFor recomputes the buffer plan for a capacity (cheap).
func planFor(c *core.Compiled, capacity int) *vliw.BufferPlan {
	return loopbuffer.Plan(c.Code, c.Prof, capacity)
}

// Fig5Loop is one loop's runtime buffer behaviour at one buffer size.
type Fig5Loop struct {
	Label              string `json:"label"`
	Ops                int    `json:"ops"`
	Offset             int    `json:"offset"`
	Entries            int64  `json:"entries"`
	Iterations         int64  `json:"iterations"`
	BufferedIterations int64  `json:"buffered_iterations"`
	OpsBuffered        int64  `json:"ops_buffered"`
	OpsMemory          int64  `json:"ops_memory"`
}

// Fig5 reports the PostFilter-loop buffer traces for one buffer size
// (the paper's Figure 5 shows 16, 32 and 64 operations).
type Fig5 struct {
	BufferOps int        `json:"buffer_ops"`
	Loops     []Fig5Loop `json:"loops"`
	// PFIssueFromBuffer is the fraction of the traced loops' issued
	// operations served by the buffer.
	PFIssueFromBuffer float64 `json:"pf_issue_from_buffer"`
	// TotalIssueFromBuffer is the whole-benchmark fraction.
	TotalIssueFromBuffer float64 `json:"total_issue_from_buffer"`
}

// Figure5 runs g724dec at the given buffer size (through the suite's
// verified, memoized run cache) and extracts the post-filter loop
// traces.
func (s *Suite) Figure5(bufferOps int) (*Fig5, error) {
	r, err := s.RunAt("g724dec", "aggressive", bufferOps)
	if err != nil {
		return nil, err
	}
	c, _, err := s.compiled("g724dec", "aggressive")
	if err != nil {
		return nil, err
	}
	out := &Fig5{BufferOps: bufferOps,
		TotalIssueFromBuffer: r.Stats.BufferIssueRatio()}

	// Planned loops give footprint/offset; runtime stats give traces.
	// The post filter may have been inlined into main, so match loops
	// by their source block labels rather than by function.
	loops := map[string]Fig5Loop{}
	for key, ls := range r.Stats.Loops {
		loops[key] = Fig5Loop{Label: key,
			Entries: ls.Entries, Iterations: ls.Iterations,
			BufferedIterations: ls.BufferedIterations,
			OpsBuffered:        ls.OpsBuffered, OpsMemory: ls.OpsMemory}
	}
	// Names/footprints from a fresh plan.
	for _, pl := range planFor(c, bufferOps).Loops {
		if l, ok := loops[pl.Key()]; ok {
			l.Label = pl.Label
			l.Ops = pl.Ops
			l.Offset = pl.Offset
			loops[pl.Key()] = l
		}
	}
	var pfOps, pfBuf int64
	for _, l := range loops {
		if !isPostFilterLoop(l.Label) {
			continue
		}
		out.Loops = append(out.Loops, l)
		pfOps += l.OpsBuffered + l.OpsMemory
		pfBuf += l.OpsBuffered
	}
	sort.Slice(out.Loops, func(i, j int) bool { return out.Loops[i].Label < out.Loops[j].Label })
	if pfOps > 0 {
		out.PFIssueFromBuffer = float64(pfBuf) / float64(pfOps)
	}
	return out, nil
}

// isPostFilterLoop recognizes the post-filter loop labels (B, I1, I2,
// C, D, E, F, G, H1, H2, J, K and their nest sublabels).
func isPostFilterLoop(label string) bool {
	i := strings.LastIndex(label, ":")
	if i < 0 {
		return false
	}
	name := label[i+1:]
	switch name {
	case "B", "I1", "I2", "I3", "D", "G", "Gnewton", "H1", "H2", "J", "K",
		"F", "F2", "C_outer", "E_outer", "C_inner", "E_inner":
		return true
	}
	return false
}

// RenderFig5 formats one buffer-size trace.
func RenderFig5(f *Fig5) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: g724dec post-filter loops, %d-operation buffer\n", f.BufferOps)
	fmt.Fprintf(&sb, "%-22s %5s %6s %8s %10s %12s\n",
		"loop", "ops", "off", "entries", "iterations", "buffered")
	for _, l := range f.Loops {
		fmt.Fprintf(&sb, "%-22s %5d %6d %8d %10d %7d/%d\n",
			l.Label, l.Ops, l.Offset, l.Entries, l.Iterations,
			l.BufferedIterations, l.Iterations)
	}
	fmt.Fprintf(&sb, "post-filter loop issue from buffer: %.2f%%\n", 100*f.PFIssueFromBuffer)
	fmt.Fprintf(&sb, "whole-benchmark issue from buffer:  %.2f%%\n", 100*f.TotalIssueFromBuffer)
	fmt.Fprintf(&sb, "(paper, 16/32/64-op buffers: 1.23%% / 6.32%% / 98.22%% of PostFilter instruction issue)\n")
	return sb.String()
}
