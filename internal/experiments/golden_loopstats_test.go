package experiments

import "testing"

// TestGoldenLoopStats pins the exact loop-buffer counters for one
// known configuration: adpcmdec, aggressive pipeline, 64-operation
// buffer. The decoder's single hot loop enters once, records on its
// first iteration, and replays the remaining 4094 — so any change to
// the buffer state machine (record/replay transitions, residency
// accounting, per-fetch hit/miss attribution) shows up here as an
// exact-value diff rather than a drifting ratio.
func TestGoldenLoopStats(t *testing.T) {
	s := New()
	r, err := s.RunAt("adpcmdec", "aggressive", 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats.Cycles; got != 40972 {
		t.Errorf("cycles = %d, want 40972", got)
	}
	if got := r.Stats.OpsIssued; got != 163850 {
		t.Errorf("ops issued = %d, want 163850", got)
	}
	if got := r.Stats.OpsFromBuffer; got != 163760 {
		t.Errorf("ops from buffer = %d, want 163760", got)
	}
	if got := r.Stats.RecFetches; got != 1 {
		t.Errorf("rec fetches = %d, want 1", got)
	}
	if n := len(r.Stats.Loops); n != 1 {
		t.Fatalf("buffered loops = %d, want 1 (keys: %v)", n, loopKeys(r))
	}
	ls := r.Stats.Loops["main@12"]
	if ls == nil {
		t.Fatalf("loop main@12 missing; have %v", loopKeys(r))
	}
	want := struct {
		entries, iterations, buffered, opsBuf, opsMem, recordings int64
	}{1, 4095, 4094, 163760, 40, 1}
	if ls.Entries != want.entries || ls.Iterations != want.iterations ||
		ls.BufferedIterations != want.buffered || ls.OpsBuffered != want.opsBuf ||
		ls.OpsMemory != want.opsMem || ls.Recordings != want.recordings {
		t.Errorf("loop stats = %+v, want %+v", *ls, want)
	}
	// The registry fold and the metrics dump must agree with the raw
	// counters: ops_buffered + ops_memory is the loop's entire issue.
	if ls.OpsBuffered+ls.OpsMemory != 163800 {
		t.Errorf("loop issue split %d+%d != 163800", ls.OpsBuffered, ls.OpsMemory)
	}
}

func loopKeys(r *Run) []string {
	var keys []string
	for k := range r.Stats.Loops {
		keys = append(keys, k)
	}
	return keys
}
