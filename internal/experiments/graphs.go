package experiments

import (
	"context"
	"fmt"

	"lpbuf/internal/core"
	"lpbuf/internal/power"
	"lpbuf/internal/runner"
)

// This file schedules the figure computations as runner job graphs:
// compile(bench, cfg) → fan-out simulate(bench, cfg, bufferOps) →
// reduce per figure. The compile/simulate jobs land in the Suite's
// singleflight caches, so concurrent figure requests — and repeated
// requests within one process — never compile a (bench, cfg) pair or
// simulate a (bench, cfg, buffer) triple twice. Reduce jobs assemble
// rows in benchmark-table order, which keeps every renderer's output
// byte-identical to a serial run regardless of completion order.

func compileKey(name, cfg string) string { return "compile/" + name + "/" + cfg }

func simulateKey(name, cfg string, bufferOps int) string {
	return fmt.Sprintf("simulate/%s/%s@%d", name, cfg, bufferOps)
}

// compileSpec compiles one (benchmark, config) pair through the cache.
func (s *Suite) compileSpec(name, cfg string) runner.Spec {
	return runner.Spec{
		Key:  compileKey(name, cfg),
		Kind: runner.KindCompile,
		Run: func(context.Context, map[string]any) (any, error) {
			c, _, err := s.compiled(name, cfg)
			return c, err
		},
	}
}

// simulateSpec runs one verified simulation behind its compile.
func (s *Suite) simulateSpec(name, cfg string, bufferOps int) runner.Spec {
	return runner.Spec{
		Key:   simulateKey(name, cfg, bufferOps),
		Kind:  runner.KindSimulate,
		Needs: []string{compileKey(name, cfg)},
		Run: func(context.Context, map[string]any) (any, error) {
			return s.RunAt(name, cfg, bufferOps)
		},
	}
}

func sweepKey(name, cfg string) string { return "simulate/" + name + "/" + cfg + "/sweep" }

// sweepSpec runs one benchmark's whole buffer sweep as a single
// batched simulation job (RunSweepAt), yielding []*Run in sizes order.
func (s *Suite) sweepSpec(name, cfg string, sizes []int) runner.Spec {
	return runner.Spec{
		Key:   sweepKey(name, cfg),
		Kind:  runner.KindSimulate,
		Needs: []string{compileKey(name, cfg)},
		Run: func(context.Context, map[string]any) (any, error) {
			return s.RunSweepAt(name, cfg, sizes)
		},
	}
}

// Figure7Ctx is Figure7 with caller-controlled cancellation. Each
// benchmark's sweep is one batched simulate job — the program executes
// once and is accounted at every buffer size — so the graph is 11
// compiles → 11 sweep simulates → 1 reduce however many sizes the
// sweep covers.
func (s *Suite) Figure7Ctx(ctx context.Context, cfg string, sizes []int) ([]Fig7Row, error) {
	g := runner.NewGraph()
	var simKeys []string
	for _, name := range Benchmarks() {
		g.MustAdd(s.compileSpec(name, cfg))
		sp := s.sweepSpec(name, cfg, sizes)
		simKeys = append(simKeys, sp.Key)
		g.MustAdd(sp)
	}
	reduceKey := "reduce/figure7/" + cfg
	g.MustAdd(runner.Spec{
		Key:   reduceKey,
		Kind:  runner.KindReduce,
		Needs: simKeys,
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			var rows []Fig7Row
			for _, name := range Benchmarks() {
				runs := deps[sweepKey(name, cfg)].([]*Run)
				row := Fig7Row{Bench: name, Ratios: map[int]float64{}}
				for i, sz := range sizes {
					row.Ratios[sz] = runs[i].Stats.BufferIssueRatio()
				}
				rows = append(rows, row)
			}
			return rows, nil
		},
	})
	res, err := s.run.Execute(ctx, g)
	if err != nil {
		return nil, err
	}
	return res[reduceKey].([]Fig7Row), nil
}

// pairGraph adds compile+simulate jobs for both configs of every
// benchmark at the 256-op buffer and returns the simulate keys.
func (s *Suite) pairGraph(g *runner.Graph) []string {
	var simKeys []string
	for _, name := range Benchmarks() {
		for _, cfg := range []string{"traditional", "aggressive"} {
			g.MustAdd(s.compileSpec(name, cfg))
			sp := s.simulateSpec(name, cfg, 256)
			simKeys = append(simKeys, sp.Key)
			g.MustAdd(sp)
		}
	}
	return simKeys
}

// pairRuns splits a pair graph's reduce deps into per-config maps.
func pairRuns(deps map[string]any) (tr, ag map[string]*Run) {
	tr = map[string]*Run{}
	ag = map[string]*Run{}
	for _, name := range Benchmarks() {
		tr[name] = deps[simulateKey(name, "traditional", 256)].(*Run)
		ag[name] = deps[simulateKey(name, "aggressive", 256)].(*Run)
	}
	return tr, ag
}

// Figure8aCtx is Figure8a with caller-controlled cancellation.
func (s *Suite) Figure8aCtx(ctx context.Context) ([]Fig8aRow, error) {
	g := runner.NewGraph()
	simKeys := s.pairGraph(g)
	g.MustAdd(runner.Spec{
		Key:   "reduce/figure8a",
		Kind:  runner.KindReduce,
		Needs: simKeys,
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			tr, ag := pairRuns(deps)
			var rows []Fig8aRow
			for _, name := range Benchmarks() {
				rows = append(rows, fig8aRow(name, tr[name], ag[name]))
			}
			return rows, nil
		},
	})
	res, err := s.run.Execute(ctx, g)
	if err != nil {
		return nil, err
	}
	return res["reduce/figure8a"].([]Fig8aRow), nil
}

// Figure8bCtx is Figure8b with caller-controlled cancellation.
func (s *Suite) Figure8bCtx(ctx context.Context) ([]Fig8bRow, error) {
	g := runner.NewGraph()
	simKeys := s.pairGraph(g)
	g.MustAdd(runner.Spec{
		Key:   "reduce/figure8b",
		Kind:  runner.KindReduce,
		Needs: simKeys,
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			model := power.Default()
			tr, ag := pairRuns(deps)
			var rows []Fig8bRow
			for _, name := range Benchmarks() {
				rows = append(rows, fig8bRow(model, name, tr[name], ag[name]))
			}
			return rows, nil
		},
	})
	res, err := s.run.Execute(ctx, g)
	if err != nil {
		return nil, err
	}
	return res["reduce/figure8b"].([]Fig8bRow), nil
}

// ComputeHeadlineCtx is ComputeHeadline with caller-controlled
// cancellation.
func (s *Suite) ComputeHeadlineCtx(ctx context.Context) (*Headline, error) {
	g := runner.NewGraph()
	simKeys := s.pairGraph(g)
	g.MustAdd(runner.Spec{
		Key:   "reduce/headline",
		Kind:  runner.KindReduce,
		Needs: simKeys,
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			tr, ag := pairRuns(deps)
			return reduceHeadline(Benchmarks(), tr, ag), nil
		},
	})
	res, err := s.run.Execute(ctx, g)
	if err != nil {
		return nil, err
	}
	return res["reduce/headline"].(*Headline), nil
}

// Figure3Ctx is Figure3 with caller-controlled cancellation. Each
// benchmark's predication analysis runs as its own job behind the
// aggressive compile.
func (s *Suite) Figure3Ctx(ctx context.Context) (*Fig3, error) {
	g := runner.NewGraph()
	var partKeys []string
	for _, name := range Benchmarks() {
		g.MustAdd(s.compileSpec(name, "aggressive"))
		key := "analyze/figure3/" + name
		partKeys = append(partKeys, key)
		g.MustAdd(runner.Spec{
			Key:   key,
			Kind:  runner.KindAnalyze,
			Needs: []string{compileKey(name, "aggressive")},
			Run: func(_ context.Context, deps map[string]any) (any, error) {
				return fig3ForCompiled(deps[compileKey(name, "aggressive")].(*core.Compiled)), nil
			},
		})
	}
	g.MustAdd(runner.Spec{
		Key:   "reduce/figure3",
		Kind:  runner.KindReduce,
		Needs: partKeys,
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			out := newFig3()
			for _, name := range Benchmarks() {
				mergeFig3(out, deps["analyze/figure3/"+name].(*Fig3))
			}
			return out, nil
		},
	})
	res, err := s.run.Execute(ctx, g)
	if err != nil {
		return nil, err
	}
	return res["reduce/figure3"].(*Fig3), nil
}
