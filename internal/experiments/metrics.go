package experiments

import (
	"encoding/json"
	"os"
	"sort"
	"strconv"

	"lpbuf/internal/obs"
	"lpbuf/internal/power"
	"lpbuf/internal/runner"
)

// MetricsSchema versions the JSON snapshot written by
// `lpbuf -metrics-out`. Bump on any breaking change (the golden test
// and the CI schema check pin the current shape).
const MetricsSchema = "lpbuf.metrics/v1"

// LoopEnergyRow attributes one buffered loop's runtime behaviour and
// fetch energy within one verified run: buffer hits/misses (operations
// issued from the buffer vs global memory) and their energy split
// under the paper's Cacti model at that run's buffer capacity.
type LoopEnergyRow struct {
	// Run identifies the simulation: "bench/config@bufferOps".
	Run string `json:"run"`
	// Loop is the planned-loop key ("func@startBundle"); Label is the
	// human name from the buffer plan (e.g. "PostFilter:B") when the
	// loop was planned at this capacity.
	Loop  string `json:"loop"`
	Label string `json:"label,omitempty"`
	// BufferHits/BufferMisses split the loop's issued operations by
	// fetch source.
	BufferHits   int64 `json:"buffer_hits"`
	BufferMisses int64 `json:"buffer_misses"`
	Iterations   int64 `json:"iterations"`
	Recordings   int64 `json:"recordings"`
	// Energy is the loop's fetch-energy attribution.
	Energy power.LoopEnergy `json:"energy"`
}

// MetricsDump is the full `-metrics-out` snapshot: the shared
// registry (simulator + runner + compile counters), the runner's
// structured snapshot, and the per-loop buffer/energy attribution of
// every verified run the suite performed.
type MetricsDump struct {
	Schema   string               `json:"schema"`
	Registry obs.RegistrySnapshot `json:"registry"`
	Runner   runner.Snapshot      `json:"runner"`
	Loops    []LoopEnergyRow      `json:"loops,omitempty"`
}

// MetricsDump assembles the snapshot. Rows are sorted (run, then loop
// key) so snapshots diff cleanly regardless of execution order.
func (s *Suite) MetricsDump() *MetricsDump {
	d := &MetricsDump{
		Schema:   MetricsSchema,
		Registry: s.obs.Registry().Snapshot(),
		Runner:   s.metrics.Snapshot(),
		Loops:    s.LoopAttribution(),
	}
	return d
}

// LoopAttribution computes per-loop buffer hit/miss counts and
// fetch-energy attribution for every memoized verified run.
func (s *Suite) LoopAttribution() []LoopEnergyRow {
	model := power.Default()
	s.cc.mu.Lock()
	runs := make([]*Run, 0, len(s.cc.runs))
	for _, r := range s.cc.runs {
		runs = append(runs, r)
	}
	s.cc.mu.Unlock()

	var rows []LoopEnergyRow
	for _, r := range runs {
		runKey := r.Bench + "/" + r.Config + "@" + strconv.Itoa(r.BufferOps)
		labels := s.loopLabels(r.Bench, r.Config, r.BufferOps)
		for key, ls := range r.Stats.Loops {
			rows = append(rows, LoopEnergyRow{
				Run:          runKey,
				Loop:         key,
				Label:        labels[key],
				BufferHits:   ls.OpsBuffered,
				BufferMisses: ls.OpsMemory,
				Iterations:   ls.Iterations,
				Recordings:   ls.Recordings,
				Energy:       model.Attribute(ls.OpsMemory, ls.OpsBuffered, r.BufferOps),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Run != rows[j].Run {
			return rows[i].Run < rows[j].Run
		}
		return rows[i].Loop < rows[j].Loop
	})
	return rows
}

// loopLabels maps planned-loop keys to their plan labels for one
// compiled configuration at one capacity (empty on any error: labels
// are cosmetic).
func (s *Suite) loopLabels(bench, cfg string, bufferOps int) map[string]string {
	c, _, err := s.compiled(bench, cfg)
	if err != nil {
		return nil
	}
	out := map[string]string{}
	for _, pl := range planFor(c, bufferOps).Loops {
		out[pl.Key()] = pl.Label
	}
	return out
}

// WriteFile writes the dump as indented JSON.
func (d *MetricsDump) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
