package experiments

import (
	"sort"
	"testing"

	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/power"
)

// TestFigure5PMUGoldenAttribution pins the PMU's fidelity on the
// paper's Figure 5 workload: on g724dec aggressive at a 256-op buffer,
// the sampled ops-weighted energy estimate (Profile.LoopEnergyEstimate)
// must agree with the exact power-model attribution
// (power.Model.Attribute over the run's full per-loop op counts) on
// the PostFilter chain:
//
//  1. the two dominant loops (C_outer and E_outer, each ~8x the next
//     loop) rank identically and their estimates land within 10% of
//     exact;
//  2. every exact top-3 loop appears in the sampled top-6 — exact
//     ranks 3-5 are a near-tie cluster (within 7% of each other) that
//     no sampling density short of full tracing can order, the same
//     caveat any sampling profiler carries for near-tied frames;
//  3. the sampled energy share held by the exact top-3 is at least 90%
//     of the share exact attribution gives them.
//
// Sampling is deterministic (fixed period and seed), so this is a
// golden property, not a flaky statistical one. The test samples
// denser than the default period — g724dec runs short enough that the
// default yields only tens of samples, below what any profile consumer
// would draw rankings from.
func TestFigure5PMUGoldenAttribution(t *testing.T) {
	const bufferOps = 256
	s := NewWithOptions(Options{PMU: &pmu.Config{Period: 16}})
	r, err := s.RunAt("g724dec", "aggressive", bufferOps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Profile == nil {
		t.Fatal("PMU enabled but RunAt returned no profile")
	}
	c, _, err := s.compiled("g724dec", "aggressive")
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]string{}
	for _, pl := range planFor(c, bufferOps).Loops {
		labels[pl.Key()] = pl.Label
	}

	model := power.Default()
	type loopEnergy struct {
		key    string
		energy float64
	}
	rank := func(energies map[string]float64) ([]loopEnergy, float64) {
		var pf []loopEnergy
		var total float64
		for key, e := range energies {
			if !isPostFilterLoop(labels[key]) {
				continue
			}
			pf = append(pf, loopEnergy{key, e})
			total += e
		}
		sort.Slice(pf, func(i, j int) bool {
			if pf[i].energy != pf[j].energy {
				return pf[i].energy > pf[j].energy
			}
			return pf[i].key < pf[j].key
		})
		return pf, total
	}

	// Exact ground truth: attribute fetch energy from the run's full
	// per-loop op counts.
	exactEnergies := map[string]float64{}
	for key, ls := range r.Stats.Loops {
		exactEnergies[key] = model.Attribute(ls.OpsMemory, ls.OpsBuffered, bufferOps).TotalEnergy
	}
	exact, exactTotal := rank(exactEnergies)
	if len(exact) < 3 {
		t.Fatalf("only %d PostFilter loops attributed, want >= 3", len(exact))
	}

	// Sampled view: the estimator over ops-weighted samples.
	sampled, sampledTotal := rank(r.Profile.LoopEnergyEstimate(model))
	if len(sampled) < 3 || sampledTotal == 0 {
		t.Fatalf("sampled estimate covers %d PostFilter loops (total %v), want >= 3",
			len(sampled), sampledTotal)
	}

	// (1) The dominant pair ranks identically and estimates within 10%.
	// A sample's estimate scales as exact/period (each cycle is sampled
	// with probability 1/period), so multiply back up to compare.
	period := s.pmu.Normalized().Period
	for i := 0; i < 2; i++ {
		if sampled[i].key != exact[i].key {
			t.Errorf("sampled rank %d is %s, exact has %s", i+1, sampled[i].key, exact[i].key)
			continue
		}
		scaled := sampled[i].energy * float64(period)
		if rel := scaled/exact[i].energy - 1; rel > 0.10 || rel < -0.10 {
			t.Errorf("%s: sampled estimate %.0f vs exact %.0f (%.1f%% off, want within 10%%)",
				exact[i].key, scaled, exact[i].energy, 100*rel)
		}
	}

	// (2) Exact top-3 within sampled top-6.
	sampledTop6 := map[string]bool{}
	for i := 0; i < 6 && i < len(sampled); i++ {
		sampledTop6[sampled[i].key] = true
	}
	top3 := map[string]bool{}
	var exactTop3 float64
	for _, le := range exact[:3] {
		top3[le.key] = true
		exactTop3 += le.energy
		if !sampledTop6[le.key] {
			t.Errorf("exact top-3 loop %s (%.0f) missing from sampled top-6", le.key, le.energy)
		}
	}

	// (3) The sampled PostFilter energy share of the exact top-3 must
	// be at least 90% of the exact share (the estimate is unbiased; at
	// this density the shares agree to within a few percent).
	var sampledTop3 float64
	for _, le := range sampled {
		if top3[le.key] {
			sampledTop3 += le.energy
		}
	}
	exactShare := exactTop3 / exactTotal
	sampledShare := sampledTop3 / sampledTotal
	if sampledShare < 0.90*exactShare {
		t.Fatalf("sampled top-3 PostFilter share %.1f%%, exact %.1f%%: below 90%% fidelity",
			100*sampledShare, 100*exactShare)
	}
	t.Logf("top-3 %v: exact share %.1f%%, sampled share %.1f%% (%d samples)",
		exact[:3], 100*exactShare, 100*sampledShare, r.Profile.Total())
}

// TestSuiteSimProfiles: a PMU-enabled suite collects exactly its own
// runs' profiles into a valid lpbuf.simprofile/v1 document, and a
// PMU-less suite collects nothing.
func TestSuiteSimProfiles(t *testing.T) {
	s := NewWithOptions(Options{PMU: &pmu.Config{Period: 2048}})
	if _, err := s.RunAt("adpcmenc", "aggressive", 256); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunAt("adpcmenc", "aggressive", 64); err != nil {
		t.Fatal(err)
	}
	doc := s.SimProfiles()
	if doc == nil {
		t.Fatal("PMU-enabled suite returned no document")
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("document invalid: %v", err)
	}
	if len(doc.Profiles) != 2 {
		t.Fatalf("profiles %d, want 2 (one per buffer size)", len(doc.Profiles))
	}
	for _, p := range doc.Profiles {
		if p.Label == "" || p.TotalSamples == 0 {
			t.Fatalf("degenerate profile %+v", p)
		}
	}
	if doc.Sampling.Period != 2048 {
		t.Fatalf("sampling period %d, want 2048", doc.Sampling.Period)
	}
	// Memoized re-runs keep reporting the same profiles, not duplicates.
	if _, err := s.RunAt("adpcmenc", "aggressive", 256); err != nil {
		t.Fatal(err)
	}
	if again := s.SimProfiles(); len(again.Profiles) != 2 {
		t.Fatalf("re-run grew the document to %d profiles", len(again.Profiles))
	}

	if off := New().SimProfiles(); off != nil {
		t.Fatalf("PMU-less suite returned a document with %d profiles", len(off.Profiles))
	}
}
