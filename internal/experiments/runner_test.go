package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"lpbuf/internal/runner"
)

// TestConcurrentFiguresCompileOnce is the subsystem's stress test (run
// under -race in CI): every figure requested concurrently on one
// suite, with the invariant that each of the 22 (benchmark, config)
// pairs compiles exactly once per process.
func TestConcurrentFiguresCompileOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the full suite")
	}
	s := NewWithOptions(Options{Workers: 8})
	sizes := []int{64, 256}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	launch := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				errs <- err
			}
		}()
	}
	var fig7t, fig7a []Fig7Row
	var fig8a []Fig8aRow
	launch(func() error { rows, err := s.Figure7("traditional", sizes); fig7t = rows; return err })
	launch(func() error { rows, err := s.Figure7("aggressive", sizes); fig7a = rows; return err })
	launch(func() error { rows, err := s.Figure8a(); fig8a = rows; return err })
	launch(func() error { _, err := s.Figure8b(); return err })
	launch(func() error { _, err := s.Figure3(); return err })
	launch(func() error { _, err := s.ComputeHeadline(); return err })
	launch(func() error { _, err := s.Figure5(32); return err })
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := s.Metrics()
	if snap.CacheMisses != 22 {
		t.Fatalf("compiled %d times, want exactly 22 (11 benchmarks x 2 configs)", snap.CacheMisses)
	}
	if snap.CacheHits == 0 {
		t.Fatal("no compile-cache hits despite concurrent figure requests")
	}
	if snap.JobsFailed != 0 {
		t.Fatalf("%d jobs failed", snap.JobsFailed)
	}
	if snap.Kinds["compile"].Jobs == 0 || snap.Kinds["simulate"].Jobs == 0 || snap.Kinds["reduce"].Jobs == 0 {
		t.Fatalf("missing job kinds in metrics: %+v", snap.Kinds)
	}

	// The rows must be identical to a serial recomputation on the same
	// suite (everything cached now): same order, same values.
	serial, err := s.Figure7("aggressive", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig7a, serial) {
		t.Fatalf("parallel Figure7 differs from serial:\n%v\n%v", fig7a, serial)
	}
	if len(fig7t) != 11 || len(fig8a) != 11 {
		t.Fatalf("row counts: fig7t=%d fig8a=%d", len(fig7t), len(fig8a))
	}
	for i, name := range Benchmarks() {
		if fig8a[i].Bench != name {
			t.Fatalf("fig8a row %d is %q, want table order %q", i, fig8a[i].Bench, name)
		}
	}
	// And recomputation after the stress is still compile-free.
	if after := s.Metrics(); after.CacheMisses != 22 {
		t.Fatalf("serial recomputation recompiled: %d misses", after.CacheMisses)
	}
}

// TestFigureFailureCancels checks the error path: a figure request for
// a bogus config fails the compile job, cancels the graph, and
// surfaces a clear error without compiling anything.
func TestFigureFailureCancels(t *testing.T) {
	s := New()
	_, err := s.Figure7("nosuch", []int{16})
	if err == nil {
		t.Fatal("expected error for unknown config")
	}
	if !strings.Contains(err.Error(), `unknown config "nosuch"`) {
		t.Fatalf("error lacks cause: %v", err)
	}
	if snap := s.Metrics(); snap.CacheMisses != 0 {
		t.Fatalf("%d compiles ran for an invalid config", snap.CacheMisses)
	}
}

// TestRunAtMemoized checks that repeated identical runs simulate once.
func TestRunAtMemoized(t *testing.T) {
	s := New()
	r1, err := s.RunAt("adpcmenc", "aggressive", 256)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunAt("adpcmenc", "aggressive", 256)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second identical run was not served from the cache")
	}
	snap := s.Metrics()
	if snap.RunMisses != 1 || snap.RunHits != 1 {
		t.Fatalf("run cache counters: %d misses, %d hits", snap.RunMisses, snap.RunHits)
	}
}

// TestSuiteObserverSeesEvents checks the progress stream fires through
// the Options hook.
func TestSuiteObserverSeesEvents(t *testing.T) {
	var mu sync.Mutex
	kinds := map[runner.Kind]int{}
	s := NewWithOptions(Options{Workers: 2, OnEvent: func(e runner.Event) {
		if e.Type != runner.EventDone {
			return
		}
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	}})
	if _, err := s.Figure7("aggressive", []int{256}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if kinds[runner.KindCompile] != 11 || kinds[runner.KindSimulate] != 11 || kinds[runner.KindReduce] != 1 {
		t.Fatalf("event counts: %v", kinds)
	}
}
