package experiments

import (
	"context"
	"fmt"
	"strings"

	"lpbuf/internal/core"
	"lpbuf/internal/runner"
	"lpbuf/internal/sched"
)

// ---- Scheduler shoot-out: heuristic IMS vs exact backend ----

// ShootoutRow compares the two modulo-scheduler backends on one
// benchmark's aggressive compile: per-kernel II gap, minimality-proof
// coverage, and the downstream effect on buffer residency at the
// paper's 256-op buffer. Both compiles are verify-checked and both
// simulations are bit-exact against the interpreter before their
// numbers land here (the exact backend additionally forces the verify
// checkpoints on).
type ShootoutRow struct {
	Bench string `json:"bench"`
	// Kernels counts loops the exact backend pipelined; Compared are
	// those pipelined by both backends (the II comparison set).
	Kernels  int `json:"kernels"`
	Compared int `json:"compared"`
	// Proven counts exact kernels whose II was proven minimal
	// in-budget; Fallbacks counts loops where the search budget died
	// and the heuristic schedule was kept.
	Proven    int `json:"proven"`
	Fallbacks int `json:"fallbacks"`
	// Improved counts compared kernels where the exact II is strictly
	// smaller; HeurSumII/OptSumII total the IIs over the compared set.
	Improved  int `json:"improved"`
	HeurSumII int `json:"heur_sum_ii"`
	OptSumII  int `json:"opt_sum_ii"`
	// SearchNodes totals exact-search nodes over the compile.
	SearchNodes int64 `json:"search_nodes"`
	// 256-op buffer outcomes per backend.
	HeurCycles    int64   `json:"heur_cycles"`
	OptCycles     int64   `json:"opt_cycles"`
	HeurBufferPct float64 `json:"heur_buffer_pct"`
	OptBufferPct  float64 `json:"opt_buffer_pct"`
	HeurStaticOps int     `json:"heur_static_ops"`
	OptStaticOps  int     `json:"opt_static_ops"`
}

// kernelIIs extracts a compile's pipelined kernels keyed func/block.
func kernelIIs(c *core.Compiled) map[string]*sched.BlockCode {
	out := map[string]*sched.BlockCode{}
	for name, fc := range c.Code.Funcs {
		for _, sec := range fc.Sections {
			if sec.Kind == sched.KindKernel {
				out[fmt.Sprintf("%s/B%d", name, sec.Block)] = sec
			}
		}
	}
	return out
}

// shootoutRow reduces one benchmark's two compiles and 256-op runs.
func shootoutRow(name string, heurC, optC *core.Compiled, heur, opt *Run) ShootoutRow {
	row := ShootoutRow{
		Bench:         name,
		Fallbacks:     optC.Stats.SchedFallbacks,
		SearchNodes:   optC.Stats.SchedNodes,
		HeurCycles:    heur.Stats.Cycles,
		OptCycles:     opt.Stats.Cycles,
		HeurBufferPct: 100 * heur.Stats.BufferIssueRatio(),
		OptBufferPct:  100 * opt.Stats.BufferIssueRatio(),
		HeurStaticOps: heur.StaticOps,
		OptStaticOps:  opt.StaticOps,
	}
	hk, ok := kernelIIs(heurC), kernelIIs(optC)
	for key, o := range ok {
		row.Kernels++
		if o.Proven {
			row.Proven++
		}
		h, both := hk[key]
		if !both {
			continue
		}
		row.Compared++
		row.HeurSumII += h.II
		row.OptSumII += o.II
		if o.II < h.II {
			row.Improved++
		}
	}
	return row
}

// Shootout computes the scheduler shoot-out figure over all benchmarks
// (aggressive pipeline, heuristic vs exact backend, 256-op buffer).
func (s *Suite) Shootout() ([]ShootoutRow, error) {
	return s.ShootoutCtx(context.Background())
}

// ShootoutCtx is Shootout with caller-controlled cancellation,
// scheduled as a compile-pair → simulate-pair → reduce job graph.
func (s *Suite) ShootoutCtx(ctx context.Context) ([]ShootoutRow, error) {
	g := runner.NewGraph()
	var needs []string
	for _, name := range Benchmarks() {
		for _, cfg := range []string{"aggressive", "aggressive-optimal"} {
			g.MustAdd(s.compileSpec(name, cfg))
			sp := s.simulateSpec(name, cfg, 256)
			needs = append(needs, compileKey(name, cfg), sp.Key)
			g.MustAdd(sp)
		}
	}
	g.MustAdd(runner.Spec{
		Key:   "reduce/shootout",
		Kind:  runner.KindReduce,
		Needs: needs,
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			var rows []ShootoutRow
			for _, name := range Benchmarks() {
				rows = append(rows, shootoutRow(name,
					deps[compileKey(name, "aggressive")].(*core.Compiled),
					deps[compileKey(name, "aggressive-optimal")].(*core.Compiled),
					deps[simulateKey(name, "aggressive", 256)].(*Run),
					deps[simulateKey(name, "aggressive-optimal", 256)].(*Run)))
			}
			return rows, nil
		},
	})
	res, err := s.run.Execute(ctx, g)
	if err != nil {
		return nil, err
	}
	return res["reduce/shootout"].([]ShootoutRow), nil
}

// RenderShootout formats the shoot-out comparison.
func RenderShootout(rows []ShootoutRow) string {
	var sb strings.Builder
	sb.WriteString("Scheduler shoot-out: heuristic IMS vs exact backend (aggressive, 256-op buffer)\n")
	fmt.Fprintf(&sb, "%-10s %7s %7s %6s %5s %9s %9s %9s %9s\n",
		"bench", "kernels", "proven", "II gap", "impr", "buf heur", "buf opt", "cyc heur", "cyc opt")
	kernels, proven, gap, improved, fallbacks := 0, 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %7d %6d %5d %8.1f%% %8.1f%% %9d %9d\n",
			r.Bench, r.Kernels, r.Proven, r.HeurSumII-r.OptSumII, r.Improved,
			r.HeurBufferPct, r.OptBufferPct, r.HeurCycles, r.OptCycles)
		kernels += r.Kernels
		proven += r.Proven
		gap += r.HeurSumII - r.OptSumII
		improved += r.Improved
		fallbacks += r.Fallbacks
	}
	if kernels > 0 {
		fmt.Fprintf(&sb, "total: %d kernels, %d proven minimal (%.0f%%), II gap %d over %d improved loops, %d budget fallbacks\n",
			kernels, proven, 100*float64(proven)/float64(kernels), gap, improved, fallbacks)
	}
	return sb.String()
}
