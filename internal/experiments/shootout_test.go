package experiments

import (
	"strings"
	"testing"
)

// TestShootoutAcceptance pins the scheduler shoot-out's acceptance
// bars over all 11 benchmarks: the exact backend must never schedule a
// kernel at a larger II than the heuristic, must prove minimality
// in-budget for at least 90% of the kernels it pipelines, and both
// backends' simulations must have been bit-exact (RunAt fails
// otherwise, so reaching the assertions implies it).
func TestShootoutAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the suite twice")
	}
	s := New()
	rows, err := s.Shootout()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Benchmarks()) {
		t.Fatalf("%d rows, want %d", len(rows), len(Benchmarks()))
	}
	kernels, proven := 0, 0
	for _, r := range rows {
		if r.OptSumII > r.HeurSumII {
			t.Errorf("%s: optimal total II %d exceeds heuristic %d",
				r.Bench, r.OptSumII, r.HeurSumII)
		}
		if r.Kernels == 0 {
			t.Errorf("%s: no pipelined kernels under the exact backend", r.Bench)
		}
		if r.OptCycles <= 0 || r.HeurCycles <= 0 {
			t.Errorf("%s: missing cycle counts", r.Bench)
		}
		kernels += r.Kernels
		proven += r.Proven
	}
	if kernels == 0 {
		t.Fatal("no kernels across the suite")
	}
	if proven*10 < kernels*9 {
		t.Errorf("minimality proven for %d/%d kernels, below the 90%% bar", proven, kernels)
	}
	out := RenderShootout(rows)
	if !strings.Contains(out, "proven minimal") || !strings.Contains(out, "adpcmenc") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

// TestRenderShootout exercises the renderer on synthetic rows.
func TestRenderShootout(t *testing.T) {
	rows := []ShootoutRow{{
		Bench: "x", Kernels: 3, Compared: 3, Proven: 2, Fallbacks: 1,
		Improved: 1, HeurSumII: 12, OptSumII: 10,
		HeurBufferPct: 90, OptBufferPct: 92,
		HeurCycles: 1000, OptCycles: 900,
	}}
	out := RenderShootout(rows)
	for _, want := range []string{"x", "II gap", "3 kernels", "2 proven minimal", "1 budget fallbacks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}
