package experiments

import (
	"lpbuf/internal/obs/perfgate"
	"lpbuf/internal/power"
)

// SimStats collects the golden sim-stat baseline document: for every
// benchmark × config, the Figure 7 buffer-issue percentage at each
// size in sizes, plus the 256-op dynamic op counts, fetch split,
// static code size, and Figure 8(b) normalized fetch energy. The
// sweeps run through the Figure 7 job graphs, so collection is
// parallel and every (bench, config, size) simulation is verified and
// memoized exactly as the figures themselves are.
//
// Everything in the document is a deterministic simulator fact:
// regenerating it on an unchanged tree is byte-identical, which is
// what lets benchdiff and the tier-1 baseline test treat any delta as
// functional drift rather than noise.
func (s *Suite) SimStats(sizes []int) (*perfgate.SimStats, error) {
	out := perfgate.NewSimStats(sizes)
	model := power.Default()
	for _, cfg := range []string{"traditional", "aggressive", "aggressive-optimal"} {
		rows, err := s.Figure7(cfg, sizes)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			st := &perfgate.BenchConfigStats{BufferPct: map[int]float64{}}
			for _, sz := range sizes {
				st.BufferPct[sz] = 100 * row.Ratios[sz]
			}
			r, err := s.RunAt(row.Bench, cfg, 256)
			if err != nil {
				return nil, err
			}
			st.Cycles = r.Stats.Cycles
			st.OpsIssued = r.Stats.OpsIssued
			st.OpsFromBuffer = r.Stats.OpsFromBuffer
			st.MemFetches = r.Stats.OpsIssued - r.Stats.OpsFromBuffer
			st.StaticOps = r.StaticOps
			if out.Benchmarks[row.Bench] == nil {
				out.Benchmarks[row.Bench] = map[string]*perfgate.BenchConfigStats{}
			}
			out.Benchmarks[row.Bench][cfg] = st
		}
	}
	// Normalized fetch energy uses Figure 8(b)'s convention: the
	// baseline is buffer-less issue of the *traditional* code, so every
	// config normalizes against the traditional run's issue count.
	for _, cfgs := range out.Benchmarks {
		tr := cfgs["traditional"]
		if tr == nil {
			continue
		}
		for _, st := range cfgs {
			st.NormFetchEnergy = model.Normalized(st.MemFetches, st.OpsFromBuffer, 256, tr.OpsIssued)
		}
	}
	// Scheduler shoot-out facts (exact backend vs heuristic) ride in
	// the same document so either backend regressing is blocking.
	rows, err := s.Shootout()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		out.Shootout[r.Bench] = &perfgate.ShootoutStats{
			Kernels:   r.Kernels,
			Compared:  r.Compared,
			Proven:    r.Proven,
			Fallbacks: r.Fallbacks,
			Improved:  r.Improved,
			HeurSumII: r.HeurSumII,
			OptSumII:  r.OptSumII,
		}
	}
	return out, nil
}
