package experiments

import (
	"reflect"
	"testing"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
	"lpbuf/internal/obs"
)

// TestSweepStatsMatchSolo is the suite-level half of the batch engine's
// bit-exactness contract: a batched, folded-stats sweep (RunSweepAt —
// what Figure 7 and SimStats now run) must report Stats identical to a
// solo full-event simulation of the same benchmark at the same
// capacity. The solo side compiles directly through core — bypassing
// the suite's run cache — so the comparison cannot be satisfied by a
// cache hit, and runs with an event-emitting Obs so folded mode is
// compared against the instrumented path, not against itself.
func TestSweepStatsMatchSolo(t *testing.T) {
	names := Benchmarks()
	if testing.Short() {
		names = names[:3]
	}
	sizes := []int{64, 256}
	s := New()
	for _, name := range names {
		runs, err := s.RunSweepAt(name, "aggressive", sizes)
		if err != nil {
			t.Fatal(err)
		}
		b, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		cfg := core.Aggressive(256)
		cfg.Name = "aggressive"
		cfg.TraceLabel = name
		cfg.Obs = obs.New(obs.Config{Metrics: true, SimEvents: true})
		c, err := core.Compile(b.Build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, sz := range sizes {
			res, err := c.RunWithBuffer(sz)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(runs[i].Stats, res.Stats) {
				t.Errorf("%s@%d: sweep stats differ from solo run:\nsweep: %+v\nsolo:  %+v",
					name, sz, runs[i].Stats, res.Stats)
			}
		}
	}
}

// TestSweepSharesRunCache pins the memoization contract between sweeps
// and point queries: a sweep populates the same cache RunAt reads, and
// an earlier RunAt's entry survives a later sweep pointer-stable.
func TestSweepSharesRunCache(t *testing.T) {
	s := New()
	r0, err := s.RunAt("adpcmenc", "aggressive", 256)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.RunSweepAt("adpcmenc", "aggressive", []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if runs[1] != r0 {
		t.Error("sweep replaced an existing cached run instead of reusing it")
	}
	r1, err := s.RunAt("adpcmenc", "aggressive", 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != runs[0] {
		t.Error("RunAt did not serve the sweep-populated cache entry")
	}
	// One compile, and exactly one simulated batch + one solo run:
	// RunAt(256) missed, the sweep missed only at 64, RunAt(64) hit.
	snap := s.Metrics()
	if snap.RunMisses != 2 {
		t.Errorf("run misses = %d, want 2 (solo 256, sweep 64)", snap.RunMisses)
	}
}
