package experiments

import (
	"fmt"
	"strings"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
	"lpbuf/internal/machine"
)

// WidthRow reports one benchmark at one issue width.
type WidthRow struct {
	Bench       string
	Width       int
	Cycles      int64
	BufferRatio float64
}

// WidthSweep runs a benchmark (aggressive config, 256-op buffer) on
// the 2-, 4- and 8-wide machine variants: an extension experiment in
// the direction of the paper's clustering/scalability remarks — the
// loop buffer's fetch benefit is width-independent while the cycle
// count scales with issue resources.
func (s *Suite) WidthSweep(benchName string) ([]WidthRow, error) {
	b, ok := suite.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	prog := b.Build()
	var rows []WidthRow
	for _, m := range []*machine.Desc{machine.Two(), machine.Four(), machine.Default()} {
		cfg := core.Aggressive(256)
		cfg.Name = m.Name
		cfg.Machine = m
		cfg.Verify = s.verify
		c, err := core.Compile(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", benchName, m.Name, err)
		}
		res, err := c.Run()
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", benchName, m.Name, err)
		}
		if err := b.Check(res.Mem); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", benchName, m.Name, err)
		}
		rows = append(rows, WidthRow{Bench: benchName, Width: m.Width(),
			Cycles: res.Stats.Cycles, BufferRatio: res.Stats.BufferIssueRatio()})
	}
	return rows, nil
}

// RenderWidths formats the sweep.
func RenderWidths(benchName string, rows []WidthRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Issue-width sensitivity: %s (aggressive, 256-op buffer)\n", benchName)
	fmt.Fprintf(&sb, "%6s %12s %10s %10s\n", "width", "cycles", "vs 8-wide", "buffer")
	base := rows[len(rows)-1].Cycles
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d %12d %9.2fx %9.1f%%\n",
			r.Width, r.Cycles, float64(r.Cycles)/float64(base), 100*r.BufferRatio)
	}
	return sb.String()
}
