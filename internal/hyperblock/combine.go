package hyperblock

import (
	"lpbuf/internal/ir"
)

// CombineExits applies branch combining (Section 3): in single-block
// loops with two or more guarded side-exit jumps, the exits are folded
// into one "summary predicate" computed with or-type defines; a single
// summary jump leads to a decode block that re-discerns the desired
// target from the individual exit predicates. Returns the number of
// loops rewritten.
func CombineExits(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		last := b.LastOp()
		if last == nil || !last.IsBranch() || last.Target != b.ID || !last.LoopBack {
			continue
		}
		if combineBlock(f, b) {
			n++
		}
	}
	return n
}

func combineBlock(f *ir.Func, b *ir.Block) bool {
	type exit struct {
		idx   int
		guard ir.PredReg
		tgt   ir.BlockID
	}
	var exits []exit
	for i, op := range b.Ops[:len(b.Ops)-1] {
		if op.Opcode == ir.OpJump && op.Guard != 0 && op.Target != b.ID {
			exits = append(exits, exit{idx: i, guard: op.Guard, tgt: op.Target})
		}
		if op.IsBranch() && op.Guard == 0 {
			return false // unexpected unguarded mid-block transfer
		}
	}
	if len(exits) < 2 {
		return false
	}

	newID := func(op *ir.Op) *ir.Op { op.ID = f.NewOpID(); return op }

	// ps is the summary predicate ("some exit fired"); pns is its
	// complement, maintained with and-type defines, used to re-guard
	// ops that were provably-unguarded before combining (latch code):
	// once the exits are deferred to the bottom of the block, those ops
	// must not execute on an exiting iteration.
	ps := f.NewPred()
	pns := f.NewPred()
	z := f.NewReg()

	// Decode block: test the individual exit predicates in original
	// priority order; the final exit needs no guard (the summary
	// predicate guarantees some exit fired).
	decode := f.NewBlock()
	decode.Weight = 0
	for i, e := range exits {
		j := newID(&ir.Op{Opcode: ir.OpJump, Target: e.tgt})
		if i != len(exits)-1 {
			j.Guard = e.guard
		}
		decode.Ops = append(decode.Ops, j)
	}

	// Rewrite the loop: each exit jump becomes an or-type contribution
	// to the summary predicate.
	var out []*ir.Op
	out = append(out, newID(&ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{z}, Imm: 0, HasImm: true}))
	// One define initializes both: ps = false (ut of a false cond),
	// pns = true (uf of the same).
	init := newID(&ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpNE, Src: []ir.Reg{z}, Imm: 0, HasImm: true})
	init.PDest[0] = ir.PredDest{Pred: ps, Type: ir.PTUT}
	init.PDest[1] = ir.PredDest{Pred: pns, Type: ir.PTUF}
	out = append(out, init)

	exitAt := map[int]exit{}
	for _, e := range exits {
		exitAt[e.idx] = e
	}
	for i, op := range b.Ops[:len(b.Ops)-1] {
		if e, ok := exitAt[i]; ok {
			or := newID(&ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpEQ,
				Src: []ir.Reg{z}, Imm: 0, HasImm: true, Guard: e.guard})
			or.PDest[0] = ir.PredDest{Pred: ps, Type: ir.PTOT}
			or.PDest[1] = ir.PredDest{Pred: pns, Type: ir.PTAF}
			out = append(out, or)
			continue
		}
		if i > exits[0].idx && op.Guard == 0 && !op.IsBranch() && !op.IsPredDefine() {
			op.Guard = pns
		}
		out = append(out, op)
	}
	// Summary jump, then the loop-back branch.
	out = append(out, newID(&ir.Op{Opcode: ir.OpJump, Target: decode.ID, Guard: ps}))
	out = append(out, b.Ops[len(b.Ops)-1])
	b.Ops = out
	return true
}
