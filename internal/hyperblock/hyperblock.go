// Package hyperblock implements if-conversion: transforming acyclic
// control flow inside loop bodies into straight-line predicated code
// (hyperblocks), plus branch combining of infrequently taken side exits
// through a summary predicate (Section 3 of the paper).
package hyperblock

import (
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/looptrans"
)

// Options tune hyperblock formation.
type Options struct {
	// MaxRegionOps bounds the operation count of a region to convert
	// (0 = default 240, slightly under the 256-op loop buffer).
	MaxRegionOps int
	// MinAvgTrips declines conversion of loops whose profiled average
	// trip count is below this bound (0 = default 6, matching the
	// paper's "short loop" threshold used for peeling). Hyperblock
	// formation is profile-guided: predicating a loop that leaves
	// after one or two iterations only wastes issue slots, and such
	// loops do not amortize loop-buffer recording either (this is what
	// keeps the reference mpeg2 encoder's early-terminating SAD rows
	// out of the buffer). Loops with no profile data are converted.
	MinAvgTrips float64
	// CombineExits enables branch combining when a converted loop has
	// at least two side exits.
	CombineExits bool
}

func (o Options) withDefaults() Options {
	if o.MaxRegionOps == 0 {
		o.MaxRegionOps = 240
	}
	if o.MinAvgTrips == 0 {
		o.MinAvgTrips = 6
	}
	return o
}

// ConvertLoops if-converts every innermost loop whose body is an
// acyclic single-entry region (apart from its back edges) into a
// single-block predicated loop. Returns the number of loops converted.
func ConvertLoops(f *ir.Func, opts Options) int {
	opts = opts.withDefaults()
	n := 0
	for {
		loops := looptrans.FindLoops(f)
		did := false
		for _, l := range loops {
			if len(l.Children) != 0 || len(l.Blocks) < 2 {
				continue
			}
			if convertLoop(f, l, opts) {
				n++
				did = true
				break // CFG changed; recompute
			}
		}
		if !did {
			return n
		}
	}
}

// convertLoop if-converts one loop body. The loop must have a single
// latch whose back edge is an unguarded conditional branch (or the
// latch falls only to the exit), and the body must be acyclic ignoring
// the back edge.
func convertLoop(f *ir.Func, l *looptrans.Loop, opts Options) bool {
	if len(l.Latches) != 1 {
		return false
	}
	latch := l.Latches[0]

	// Profile guidance: decline short-running loops.
	if hdr := f.Block(l.Header); hdr != nil && hdr.Weight > 0 {
		if looptrans.AvgTrips(f, l) < opts.MinAvgTrips {
			return false
		}
	}

	// Region legality: ops must be unpredicated, call-free; total size
	// bounded.
	total := 0
	for id := range l.Blocks {
		b := f.Block(id)
		for _, op := range b.Ops {
			if op.Guard != 0 || op.IsPredDefine() || op.Opcode == ir.OpCall ||
				op.Opcode == ir.OpRet || op.IsBufferOp() || op.Opcode == ir.OpBrCLoop {
				return false
			}
			total++
		}
	}
	if total > opts.MaxRegionOps {
		return false
	}

	// Each block may end with at most one branch, and only as its last
	// op (mid-block branches would need multi-branch path predicates).
	for id := range l.Blocks {
		b := f.Block(id)
		for i, op := range b.Ops {
			if op.IsBranch() && i != len(b.Ops)-1 {
				return false
			}
		}
	}

	// Only the header may be a branch target from outside the loop.
	preds := f.Preds()
	for id := range l.Blocks {
		if id == l.Header {
			continue
		}
		for _, p := range preds[id] {
			if !l.Blocks[p] {
				return false
			}
		}
	}

	// The latch must end with an unguarded conditional back edge; no
	// other block may branch or jump to the header (a "continue" from
	// the middle would need a second back edge).
	latchBr := f.Block(latch).LastOp()
	if latchBr == nil || latchBr.Opcode != ir.OpBr || latchBr.Target != l.Header {
		return false
	}
	for id := range l.Blocks {
		b := f.Block(id)
		for i, op := range b.Ops {
			if op.IsBranch() && op.Target == l.Header && !(id == latch && i == len(b.Ops)-1) {
				return false
			}
		}
		if b.Fall == l.Header && id != latch {
			return false
		}
	}

	// Topological order of the body ignoring back edges, latch last.
	order, ok := topoOrder(f, l, latch)
	if !ok {
		return false
	}

	buildHyperblock(f, l, order)
	return true
}

// topoOrder sorts loop blocks topologically over intra-loop edges
// excluding edges to the header, placing the latch last. Returns
// ok=false when the subgraph is cyclic.
func topoOrder(f *ir.Func, l *looptrans.Loop, latch ir.BlockID) ([]ir.BlockID, bool) {
	indeg := map[ir.BlockID]int{}
	succs := map[ir.BlockID][]ir.BlockID{}
	for id := range l.Blocks {
		indeg[id] += 0
		for _, s := range f.Block(id).Succs() {
			if l.Blocks[s] && s != l.Header {
				succs[id] = append(succs[id], s)
				indeg[s]++
			}
		}
	}
	var ready []ir.BlockID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	var order []ir.BlockID
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool {
			// Defer the latch as long as possible; otherwise stable by ID.
			if (ready[i] == latch) != (ready[j] == latch) {
				return ready[j] == latch
			}
			return ready[i] < ready[j]
		})
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, s := range succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(l.Blocks) {
		return nil, false
	}
	if order[len(order)-1] != latch {
		return nil, false
	}
	if order[0] != l.Header {
		return nil, false
	}
	return order, true
}

// buildHyperblock performs the actual conversion, rewriting the header
// block in place and removing the other body blocks.
func buildHyperblock(f *ir.Func, l *looptrans.Loop, order []ir.BlockID) *ir.Block {
	head := f.Block(l.Header)
	latchID := order[len(order)-1]

	// Count intra-region predecessors per block to choose define types.
	inEdges := map[ir.BlockID]int{}
	for _, id := range order {
		for _, s := range f.Block(id).Succs() {
			if l.Blocks[s] && s != l.Header {
				inEdges[s]++
			}
		}
	}

	// Allocate block predicates (header executes unconditionally).
	bpred := map[ir.BlockID]ir.PredReg{l.Header: 0}
	for _, id := range order[1:] {
		bpred[id] = f.NewPred()
	}

	newID := func(op *ir.Op) *ir.Op { op.ID = f.NewOpID(); return op }

	var out []*ir.Op
	// Zero register for predicate initialization and direct transfers.
	var zreg ir.Reg
	needZ := false
	for _, id := range order[1:] {
		if inEdges[id] > 1 {
			needZ = true
		}
	}
	// Uncond transfers also need a trivially-true condition register.
	for _, id := range order {
		b := f.Block(id)
		last := b.LastOp()
		if last == nil || !last.IsBranch() || last.Opcode == ir.OpJump {
			needZ = true
		}
	}
	if needZ {
		zreg = f.NewReg()
		out = append(out, newID(&ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{zreg},
			Imm: 0, HasImm: true}))
	}
	// Initialize multi-predecessor block predicates to false. Pack two
	// per define.
	var multi []ir.PredReg
	for _, id := range order[1:] {
		if inEdges[id] > 1 {
			multi = append(multi, bpred[id])
		}
	}
	for i := 0; i < len(multi); i += 2 {
		op := &ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpNE, Src: []ir.Reg{zreg},
			Imm: 0, HasImm: true}
		op.PDest[0] = ir.PredDest{Pred: multi[i], Type: ir.PTUT}
		if i+1 < len(multi) {
			op.PDest[1] = ir.PredDest{Pred: multi[i+1], Type: ir.PTUT}
		}
		out = append(out, newID(op))
	}

	// contribute emits predicate computation for edge (from -> to) with
	// branch condition described by cmpOp (nil for unconditional).
	edgeType := func(to ir.BlockID, negated bool) ir.PType {
		if inEdges[to] > 1 {
			if negated {
				return ir.PTOF
			}
			return ir.PTOT
		}
		if negated {
			return ir.PTUF
		}
		return ir.PTUT
	}

	var backBranch *ir.Op // emitted last
	exitJumps := 0

	for _, id := range order {
		b := f.Block(id)
		guard := bpred[id]
		if id == latchID {
			// Every path that does not exit the loop reaches the latch
			// (all exits are explicit guarded jumps emitted earlier, and
			// the region has no other terminal blocks), so the latch
			// predicate is true whenever its ops issue: emit the latch
			// and the back edge unguarded. This keeps if-converted
			// counted loops recognizable for br.cloop conversion.
			guard = 0
		}
		ops := b.Ops
		var br *ir.Op
		if last := b.LastOp(); last != nil && last.IsBranch() {
			br = last
			ops = ops[:len(ops)-1]
		}
		// Body ops, guarded by the block predicate.
		for _, op := range ops {
			c := op
			if id != l.Header {
				c.Guard = guard
			}
			out = append(out, c)
		}
		// Control transfer handling.
		fall := b.Fall
		if br != nil && br.Opcode == ir.OpBr {
			taken := br.Target
			if taken == l.Header {
				// Loop back edge (precheck guarantees id == latchID):
				// keep as guarded conditional branch, emitted last.
				nb := br.Clone(f.NewOpID())
				nb.Guard = guard
				nb.LoopBack = true
				backBranch = nb
				// Fallthrough of the latch is the loop exit; the new
				// block's Fall is set below.
				fall = 0
			} else {
				// The branch condition splits the block predicate into
				// a taken side and a fall side.
				cp := &ir.Op{Opcode: ir.OpCmpP, Cmp: br.Cmp,
					Src: append([]ir.Reg{}, br.Src...), Imm: br.Imm, HasImm: br.HasImm,
					Guard: guard}
				var takenExit, fallExit ir.PredReg
				if l.Blocks[taken] {
					cp.PDest[0] = ir.PredDest{Pred: bpred[taken], Type: edgeType(taken, false)}
				} else {
					takenExit = f.NewPred()
					cp.PDest[0] = ir.PredDest{Pred: takenExit, Type: ir.PTUT}
				}
				if fall != 0 {
					if l.Blocks[fall] && fall != l.Header {
						cp.PDest[1] = ir.PredDest{Pred: bpred[fall], Type: edgeType(fall, true)}
					} else if !l.Blocks[fall] {
						fallExit = f.NewPred()
						cp.PDest[1] = ir.PredDest{Pred: fallExit, Type: ir.PTUF}
					}
					fall = 0
				}
				out = append(out, newID(cp))
				if takenExit != 0 {
					out = append(out, newID(&ir.Op{Opcode: ir.OpJump, Target: taken, Guard: takenExit}))
					exitJumps++
				}
				if fallExit != 0 {
					out = append(out, newID(&ir.Op{Opcode: ir.OpJump, Target: b.Fall, Guard: fallExit}))
					exitJumps++
				}
			}
		} else if br != nil && br.Opcode == ir.OpJump {
			if l.Blocks[br.Target] {
				// Internal unconditional transfer: to = to OR guard.
				// (Precheck rejects jumps to the header.)
				cp := &ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpEQ,
					Src: []ir.Reg{zreg}, Imm: 0, HasImm: true, Guard: guard}
				cp.PDest[0] = ir.PredDest{Pred: bpred[br.Target], Type: edgeType(br.Target, false)}
				out = append(out, newID(cp))
			} else {
				nb := br.Clone(f.NewOpID())
				nb.Guard = guard
				out = append(out, nb)
				exitJumps++
			}
			fall = 0
		}
		// Remaining fallthrough edge.
		if fall != 0 && id != latchID {
			if l.Blocks[fall] {
				cp := &ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpEQ,
					Src: []ir.Reg{zreg}, Imm: 0, HasImm: true, Guard: guard}
				cp.PDest[0] = ir.PredDest{Pred: bpred[fall], Type: edgeType(fall, false)}
				out = append(out, newID(cp))
			} else {
				// Fallthrough exit from a non-latch block: taken
				// exactly when the block executed (no branch intervened).
				out = append(out, newID(&ir.Op{Opcode: ir.OpJump, Target: fall, Guard: guard}))
				exitJumps++
			}
		}
	}
	if backBranch == nil {
		panic("hyperblock: precheck admitted a loop without a back branch")
	}
	out = append(out, backBranch)

	// Install: header holds everything; latch's fallthrough becomes the
	// hyperblock's exit.
	latchBlk := f.Block(latchID)
	head.Ops = out
	head.Fall = latchBlk.Fall
	// Retarget the back branch to the header.
	backBranch.Target = head.ID

	// Remove the absorbed blocks.
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if b.ID != head.ID && l.Blocks[b.ID] {
			continue
		}
		kept = append(kept, b)
	}
	f.Blocks = kept
	f.Reindex()
	return head
}
