package hyperblock

import (
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/looptrans"
	"lpbuf/internal/profile"
)

func TestMinAvgTripsDeclinesShortLoops(t *testing.T) {
	// The diamond loop runs 50 iterations per entry; with a profile
	// attached and a high MinAvgTrips bound, conversion is declined.
	p := diamondLoop(50)
	prof := profile.New()
	if _, err := interp.Run(p, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	prof.ApplyWeights(p)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{MinAvgTrips: 100}); n != 0 {
		t.Fatalf("converted %d loops despite MinAvgTrips", n)
	}
	// With the default bound (6 < 50) it converts.
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatalf("converted %d loops, want 1", n)
	}
}

func TestMinAvgTripsIgnoredWithoutProfile(t *testing.T) {
	// No weights: the heuristic cannot fire, conversion proceeds.
	p := diamondLoop(50)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{MinAvgTrips: 100}); n != 1 {
		t.Fatalf("converted %d loops, want 1 (no profile data)", n)
	}
}

func TestMaxRegionOpsBound(t *testing.T) {
	p := diamondLoop(50)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{MaxRegionOps: 3}); n != 0 {
		t.Fatalf("converted %d loops despite a 3-op region bound", n)
	}
}

func TestConversionEmitsPairedDefines(t *testing.T) {
	// A diamond's branch should become one cmpp with both ut and uf
	// destinations (or ot/of), not two separate defines.
	p := diamondLoop(30)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatal("conversion failed")
	}
	paired := false
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.IsPredDefine() && len(op.PredDefines()) == 2 {
				paired = true
			}
		}
	}
	if !paired {
		t.Fatal("expected a two-destination predicate define for the diamond")
	}
}

func TestConvertedLoopSurvivesInterpAtScale(t *testing.T) {
	// Larger input stresses cross-iteration predicate recycling.
	p := diamondLoop(500)
	ref, err := interp.Run(p.Clone(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatal("conversion failed")
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Mem {
		if ref.Mem[i] != res.Mem[i] {
			t.Fatalf("memory differs at %d", i)
		}
	}
}

func TestCombineSkipsSingleExit(t *testing.T) {
	// One side exit: combining would only add overhead; it must skip.
	p := singleExitLoop(20)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatal("conversion failed")
	}
	if n := CombineExits(f); n != 0 {
		t.Fatalf("combined a single-exit loop")
	}
}

// singleExitLoop builds a counted loop with exactly one data-dependent
// side exit.
func singleExitLoop(n int) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("head")
	f.Add(acc, acc, i)
	f.BrI(ir.CmpGT, acc, 1<<20, "exitA")
	f.Block("latch")
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "head")
	f.Block("fallout")
	f.Ret(acc)
	f.Block("exitA")
	m := f.Const(-1)
	f.Ret(m)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestConvertKeepsLoopCounted(t *testing.T) {
	// After conversion + cloopify, the kernel is a counted loop the
	// buffer can predict (the latch-unguarding invariant).
	p := diamondLoop(40)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatal("conversion failed")
	}
	if n := looptrans.CLoopifyAll(f); n != 1 {
		t.Fatal("cloopify failed on the converted loop")
	}
	found := false
	for _, b := range f.Blocks {
		if last := b.LastOp(); last != nil && last.Opcode == ir.OpBrCLoop {
			found = true
		}
	}
	if !found {
		t.Fatal("no br.cloop after conversion")
	}
}
