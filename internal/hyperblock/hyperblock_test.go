package hyperblock

import (
	"bytes"
	"math/rand"
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/looptrans"
)

func mustRun(t *testing.T, p *ir.Program, args ...int64) *interp.Result {
	t.Helper()
	res, err := interp.Run(p, interp.Options{EntryArgs: args})
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, p.Funcs["main"])
	}
	return res
}

// diamondLoop builds a loop containing an if/else diamond:
//
//	for (i = 0; i < n; i++) {
//	    x = in[i];
//	    if (x < 0) y = -x * 3; else y = x + 7;
//	    out[i] = y;
//	}
func diamondLoop(n int) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = int32(rng.Intn(200) - 100)
	}
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	i := f.Reg()
	in := f.Const(inOff)
	out := f.Const(outOff)
	f.MovI(i, 0)
	f.Block("head")
	x := f.Reg()
	y := f.Reg()
	f.LdW(x, in, 0)
	f.BrI(ir.CmpGE, x, 0, "else")
	f.Block("then")
	t1 := f.Reg()
	f.SubI(t1, x, 0)
	f.MulI(y, x, -3)
	f.Jump("join")
	f.Block("else")
	f.AddI(y, x, 7)
	f.Block("join")
	f.StW(out, 0, y)
	f.AddI(in, in, 4)
	f.AddI(out, out, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "head")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestConvertDiamondLoop(t *testing.T) {
	want := mustRun(t, diamondLoop(50)).Mem

	p := diamondLoop(50)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatalf("converted %d loops, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	loops := looptrans.FindLoops(f)
	if len(loops) != 1 || len(loops[0].Blocks) != 1 {
		t.Fatalf("expected a single-block loop, got %d loops", len(loops))
	}
	got := mustRun(t, p).Mem
	if !bytes.Equal(want, got) {
		t.Fatal("if-conversion changed behaviour")
	}
	// The converted loop must be recognizable as counted.
	c := looptrans.DetectCounted(f, loops[0])
	if c == nil {
		t.Fatal("converted loop is not counted (latch ops should be unguarded)")
	}
	if n := looptrans.CLoopifyAll(f); n != 1 {
		t.Fatal("cloopify after if-conversion failed")
	}
	if !bytes.Equal(want, mustRun(t, p).Mem) {
		t.Fatal("cloopify after conversion changed behaviour")
	}
}

// exitLoop builds a loop with two data-dependent side exits:
//
//	for (i = 0; i < n; i++) {
//	    x = in[i];
//	    if (x == sentinelA) goto exitA;
//	    acc += x;
//	    if (acc > limit) goto exitB;
//	}
func exitLoop(n int, sentinelA, limit int64, vals []int32) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	inOff := pb.GlobalW("in", n, vals)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	in := f.Const(inOff)
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("head")
	x := f.Reg()
	f.LdW(x, in, 0)
	f.BrI(ir.CmpEQ, x, sentinelA, "exitA")
	f.Block("accblk")
	f.Add(acc, acc, x)
	f.BrI(ir.CmpGT, acc, limit, "exitB")
	f.Block("latch")
	f.AddI(in, in, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "head")
	f.Block("fallout")
	r := f.Reg()
	f.MovI(r, 1000)
	f.Add(r, r, acc)
	f.Ret(r)
	f.Block("exitA")
	ra := f.Reg()
	f.MovI(ra, 2000)
	f.Add(ra, ra, i)
	f.Ret(ra)
	f.Block("exitB")
	rb := f.Reg()
	f.MovI(rb, 3000)
	f.Add(rb, rb, acc)
	f.Ret(rb)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func exitVals(kind string, n int) []int32 {
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = 1
	}
	switch kind {
	case "sentinel":
		vals[n/2] = -77 // triggers exitA
	case "limit":
		vals[n/3] = 10000 // pushes acc over limit -> exitB
	}
	return vals
}

func TestConvertLoopWithSideExits(t *testing.T) {
	for _, kind := range []string{"clean", "sentinel", "limit"} {
		vals := exitVals(kind, 30)
		want := mustRun(t, exitLoop(30, -77, 20000, vals)).Ret

		p := exitLoop(30, -77, 20000, vals)
		f := p.Funcs["main"]
		if n := ConvertLoops(f, Options{}); n != 1 {
			t.Fatalf("%s: converted %d loops, want 1", kind, n)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", kind, err)
		}
		got := mustRun(t, p).Ret
		if got != want {
			t.Fatalf("%s: ret %d, want %d\n%s", kind, got, want, f)
		}
	}
}

func TestCombineExits(t *testing.T) {
	for _, kind := range []string{"clean", "sentinel", "limit"} {
		vals := exitVals(kind, 30)
		want := mustRun(t, exitLoop(30, -77, 20000, vals)).Ret

		p := exitLoop(30, -77, 20000, vals)
		f := p.Funcs["main"]
		if n := ConvertLoops(f, Options{}); n != 1 {
			t.Fatal("conversion failed")
		}
		if n := CombineExits(f); n != 1 {
			t.Fatalf("%s: combined %d loops, want 1", kind, n)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("%s: verify: %v\n%s", kind, err, f)
		}
		got := mustRun(t, p).Ret
		if got != want {
			t.Fatalf("%s: ret %d, want %d\n%s", kind, got, want, f)
		}
		// Exactly one guarded jump (the summary) remains in the loop.
		loops := looptrans.FindLoops(f)
		var loopBlk *ir.Block
		for _, l := range loops {
			if len(l.Blocks) == 1 {
				loopBlk = f.Block(l.Header)
			}
		}
		if loopBlk == nil {
			t.Fatalf("%s: no single-block loop after combining", kind)
		}
		jumps := 0
		for _, op := range loopBlk.Ops {
			if op.Opcode == ir.OpJump && op.Guard != 0 {
				jumps++
			}
		}
		if jumps != 1 {
			t.Fatalf("%s: %d guarded jumps in loop, want 1 (summary)", kind, jumps)
		}
	}
}

// multiPathLoop exercises or-type predicate defines: a join block with
// three predecessors inside the loop.
func multiPathLoop(n int, vals []int32) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)
	f := pb.Func("main", 0, false)
	f.Block("pre")
	i := f.Reg()
	in := f.Const(inOff)
	out := f.Const(outOff)
	f.MovI(i, 0)
	f.Block("head")
	x := f.Reg()
	y := f.Reg()
	f.LdW(x, in, 0)
	f.MovI(y, 0)
	f.BrI(ir.CmpLT, x, -10, "caseA")
	f.Block("mid")
	f.BrI(ir.CmpGT, x, 10, "caseB")
	f.Block("caseC")
	f.MovI(y, 3)
	f.Jump("join")
	f.Block("caseA")
	f.MovI(y, 1)
	f.Jump("join")
	f.Block("caseB")
	f.MovI(y, 2)
	f.Block("join")
	f.StW(out, 0, y)
	f.AddI(in, in, 4)
	f.AddI(out, out, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "head")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestConvertMultiPathJoin(t *testing.T) {
	vals := make([]int32, 40)
	rng := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = int32(rng.Intn(60) - 30)
	}
	want := mustRun(t, multiPathLoop(40, vals)).Mem

	p := multiPathLoop(40, vals)
	f := p.Funcs["main"]
	if n := ConvertLoops(f, Options{}); n != 1 {
		t.Fatalf("converted %d loops, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, p).Mem
	if !bytes.Equal(want, got) {
		t.Fatalf("multi-path if-conversion changed behaviour\n%s", f)
	}
	// or-type defines must appear (join block has multiple preds).
	orSeen := false
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			for _, pd := range op.PredDefines() {
				if pd.Type == ir.PTOT || pd.Type == ir.PTOF {
					orSeen = true
				}
			}
		}
	}
	if !orSeen {
		t.Fatal("expected or-type predicate defines for the multi-pred join")
	}
}

func TestConvertSkipsLoopsWithCalls(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	g := pb.Func("callee", 0, true)
	g.Block("e")
	one := g.Const(1)
	g.Ret(one)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("head")
	v := f.Reg()
	f.BrI(ir.CmpEQ, i, 3, "skip")
	f.Block("callblk")
	f.Call(v, "callee")
	f.Add(acc, acc, v)
	f.Block("skip")
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 10, "head")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	p := pb.MustBuild()
	if n := ConvertLoops(p.Funcs["main"], Options{}); n != 0 {
		t.Fatalf("converted %d loops containing calls, want 0", n)
	}
}

// TestConvertRandomDiamondChains stress-tests conversion on random
// loops made of chained diamonds.
func TestConvertRandomDiamondChains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(30)
		depth := 1 + rng.Intn(3)
		build := func() *ir.Program {
			pb := irbuild.NewProgram(16 << 10)
			vals := make([]int32, n)
			r2 := rand.New(rand.NewSource(int64(trial)))
			for i := range vals {
				vals[i] = int32(r2.Intn(100) - 50)
			}
			inOff := pb.GlobalW("in", n, vals)
			outOff := pb.GlobalW("out", n, nil)
			f := pb.Func("main", 0, false)
			f.Block("pre")
			i := f.Reg()
			in := f.Const(inOff)
			out := f.Const(outOff)
			f.MovI(i, 0)
			f.Block("head")
			x := f.Reg()
			f.LdW(x, in, 0)
			for d := 0; d < depth; d++ {
				thenL := "then" + string(rune('0'+d))
				joinL := "join" + string(rune('0'+d))
				f.BrI(ir.CmpLT, x, int64(10*d), thenL)
				f.Block("elseblk" + string(rune('0'+d)))
				f.AddI(x, x, int64(d+1))
				f.Jump(joinL)
				f.Block(thenL)
				f.MulI(x, x, -1)
				f.Block(joinL)
			}
			f.StW(out, 0, x)
			f.AddI(in, in, 4)
			f.AddI(out, out, 4)
			f.AddI(i, i, 1)
			f.BrI(ir.CmpLT, i, int64(n), "head")
			f.Block("done")
			f.Ret(0)
			pb.SetEntry("main")
			return pb.MustBuild()
		}
		want := mustRun(t, build()).Mem
		p := build()
		if cn := ConvertLoops(p.Funcs["main"], Options{}); cn != 1 {
			t.Fatalf("trial %d: converted %d", trial, cn)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(want, mustRun(t, p).Mem) {
			t.Fatalf("trial %d: behaviour changed", trial)
		}
	}
}
