// Package inline implements profile-guided function inlining with a
// static code-expansion budget (the paper uses selective inlining up to
// an estimated 50% static code expansion to enhance loop-region
// formation, since loop regions may not contain subroutine calls).
package inline

import (
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/profile"
)

// Options tune inlining.
type Options struct {
	// ExpansionBudget is the allowed whole-program static growth as a
	// fraction of the original op count (0 = default 0.5).
	ExpansionBudget float64
	// MaxCalleeOps skips callees larger than this (0 = default 250).
	MaxCalleeOps int
	// MaxRounds bounds repeated inlining sweeps (0 = default 4).
	MaxRounds int
}

func (o Options) withDefaults() Options {
	if o.ExpansionBudget == 0 {
		o.ExpansionBudget = 0.5
	}
	if o.MaxCalleeOps == 0 {
		o.MaxCalleeOps = 250
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 4
	}
	return o
}

// site identifies an inlinable call site.
type site struct {
	caller string
	opID   int
	callee string
	count  int64
}

// Apply inlines hot call sites, hottest first, until the expansion
// budget is exhausted. Returns the number of sites inlined.
func Apply(p *ir.Program, prof *profile.Profile, opts Options) int {
	opts = opts.withDefaults()
	baseOps := p.OpCount()
	budget := int(float64(baseOps) * opts.ExpansionBudget)
	inlined := 0

	for round := 0; round < opts.MaxRounds; round++ {
		var sites []site
		for _, name := range p.Order {
			f := p.Funcs[name]
			fp := prof.Funcs[name]
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if op.Opcode != ir.OpCall || op.Guard != 0 {
						continue
					}
					if op.Callee == name {
						continue // no self-inlining
					}
					callee := p.Funcs[op.Callee]
					if callee == nil || callee.OpCount() > opts.MaxCalleeOps {
						continue
					}
					var cnt int64
					if fp != nil {
						cnt = fp.CallSite[op.ID]
					}
					if cnt == 0 {
						continue // cold or never-executed site
					}
					sites = append(sites, site{caller: name, opID: op.ID,
						callee: op.Callee, count: cnt})
				}
			}
		}
		if len(sites) == 0 {
			return inlined
		}
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].count != sites[j].count {
				return sites[i].count > sites[j].count
			}
			if sites[i].caller != sites[j].caller {
				return sites[i].caller < sites[j].caller
			}
			return sites[i].opID < sites[j].opID
		})
		did := false
		for _, s := range sites {
			cost := p.Funcs[s.callee].OpCount()
			if p.OpCount()+cost > baseOps+budget {
				continue
			}
			if inlineSite(p.Funcs[s.caller], s.opID, p.Funcs[s.callee]) {
				inlined++
				did = true
			}
		}
		if !did {
			return inlined
		}
	}
	return inlined
}

// inlineSite splices a clone of callee into caller at the call op with
// the given ID. Returns false if the site no longer exists.
func inlineSite(caller *ir.Func, opID int, callee *ir.Func) bool {
	var blk *ir.Block
	idx := -1
	for _, b := range caller.Blocks {
		for i, op := range b.Ops {
			if op.ID == opID && op.Opcode == ir.OpCall {
				blk, idx = b, i
				break
			}
		}
		if blk != nil {
			break
		}
	}
	if blk == nil {
		return false
	}
	call := blk.Ops[idx]

	// Continuation block receives the ops after the call.
	cont := caller.NewBlock()
	cont.Ops = append(cont.Ops, blk.Ops[idx+1:]...)
	cont.Fall = blk.Fall
	cont.Weight = blk.Weight

	// Clone the callee with renamed registers, predicates and blocks.
	regMap := map[ir.Reg]ir.Reg{}
	mapReg := func(r ir.Reg) ir.Reg {
		if r == 0 {
			return 0
		}
		nr, ok := regMap[r]
		if !ok {
			nr = caller.NewReg()
			regMap[r] = nr
		}
		return nr
	}
	predMap := map[ir.PredReg]ir.PredReg{}
	mapPred := func(pr ir.PredReg) ir.PredReg {
		if pr == 0 {
			return 0
		}
		np, ok := predMap[pr]
		if !ok {
			np = caller.NewPred()
			predMap[pr] = np
		}
		return np
	}
	blockMap := map[ir.BlockID]ir.BlockID{}
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock()
		nb.Weight = blk.Weight
		nb.Name = cb.Name
		blockMap[cb.ID] = nb.ID
	}
	for _, cb := range callee.Blocks {
		nb := caller.Block(blockMap[cb.ID])
		for _, op := range cb.Ops {
			c := op.Clone(caller.NewOpID())
			for i := range c.Dest {
				c.Dest[i] = mapReg(c.Dest[i])
			}
			for i := range c.Src {
				c.Src[i] = mapReg(c.Src[i])
			}
			c.Guard = mapPred(c.Guard)
			for i := range c.PDest {
				if c.PDest[i].Type != ir.PTNone {
					c.PDest[i].Pred = mapPred(c.PDest[i].Pred)
				}
			}
			if c.IsBranch() {
				c.Target = blockMap[c.Target]
			}
			if c.Opcode == ir.OpRet {
				// Return: copy the value to the call's dest, then go to
				// the continuation. A guarded ret becomes a guarded
				// jump preceded by a guarded move.
				if len(call.Dest) > 0 && len(c.Src) > 0 {
					mv := &ir.Op{ID: caller.NewOpID(), Opcode: ir.OpMov,
						Dest: []ir.Reg{call.Dest[0]}, Src: []ir.Reg{c.Src[0]},
						Guard: c.Guard}
					nb.Ops = append(nb.Ops, mv)
				}
				c = &ir.Op{ID: caller.NewOpID(), Opcode: ir.OpJump,
					Target: cont.ID, Guard: c.Guard}
			}
			nb.Ops = append(nb.Ops, c)
		}
		if cb.Fall != 0 {
			nb.Fall = blockMap[cb.Fall]
		}
	}

	// Rewrite the call into parameter moves plus fallthrough to the
	// cloned entry.
	blk.Ops = blk.Ops[:idx]
	for i, parm := range callee.Params {
		blk.Ops = append(blk.Ops, &ir.Op{ID: caller.NewOpID(), Opcode: ir.OpMov,
			Dest: []ir.Reg{mapReg(parm)}, Src: []ir.Reg{call.Src[i]}})
	}
	blk.Fall = blockMap[callee.Entry]
	return true
}
