package inline

import (
	"bytes"
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/profile"
)

// callerProgram: main loops n times calling clampAdd(acc, in[i]).
func callerProgram(n int) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i*13 - 40)
	}
	inOff := pb.GlobalW("in", n, vals)

	g := pb.Func("clampAdd", 2, true)
	g.Block("e")
	s := g.Reg()
	g.Add(s, g.Param(0), g.Param(1))
	g.BrI(ir.CmpLE, s, 100, "ok")
	g.Block("clamp")
	g.MovI(s, 100)
	g.Block("ok")
	g.Ret(s)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	in := f.Const(inOff)
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("loop")
	x := f.Reg()
	f.LdW(x, in, 0)
	f.Call(acc, "clampAdd", acc, x)
	f.AddI(in, in, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, int64(n), "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestInlinePreservesSemantics(t *testing.T) {
	p := callerProgram(20)
	prof := profile.New()
	ref, err := interp.Run(p, interp.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}

	n := Apply(p, prof, Options{ExpansionBudget: 2.0})
	if n != 1 {
		t.Fatalf("inlined %d sites, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, p.Funcs["main"])
	}
	// No calls remain in main.
	for _, b := range p.Funcs["main"].Blocks {
		for _, op := range b.Ops {
			if op.Opcode == ir.OpCall {
				t.Fatal("call survived inlining")
			}
		}
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != ref.Ret {
		t.Fatalf("ret changed: %d -> %d", ref.Ret, res.Ret)
	}
	if !bytes.Equal(res.Mem, ref.Mem) {
		t.Fatal("memory changed")
	}
}

func TestInlineRespectsBudget(t *testing.T) {
	p := callerProgram(20)
	prof := profile.New()
	if _, err := interp.Run(p, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	// Budget too small for the callee: nothing inlined.
	if n := Apply(p, prof, Options{ExpansionBudget: 0.01}); n != 0 {
		t.Fatalf("inlined %d sites with near-zero budget", n)
	}
}

func TestInlineSkipsColdSites(t *testing.T) {
	p := callerProgram(20)
	// Empty profile: all sites cold.
	if n := Apply(p, profile.New(), Options{}); n != 0 {
		t.Fatalf("inlined %d cold sites", n)
	}
}

func TestInlineNestedChains(t *testing.T) {
	// a calls b calls c: repeated rounds inline the whole chain.
	pb := irbuild.NewProgram(16 << 10)
	c := pb.Func("c", 1, true)
	c.Block("e")
	d := c.Reg()
	c.AddI(d, c.Param(0), 5)
	c.Ret(d)
	b := pb.Func("b", 1, true)
	b.Block("e")
	r := b.Reg()
	b.Call(r, "c", b.Param(0))
	b.MulI(r, r, 2)
	b.Ret(r)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("loop")
	v := f.Reg()
	f.Call(v, "b", i)
	f.Add(acc, acc, v)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 20, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	p := pb.MustBuild()
	prof := profile.New()
	ref, err := interp.Run(p, interp.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	n := Apply(p, prof, Options{ExpansionBudget: 4.0})
	if n < 2 {
		t.Fatalf("inlined %d sites, want the chain", n)
	}
	for _, blk := range p.Funcs["main"].Blocks {
		for _, op := range blk.Ops {
			if op.Opcode == ir.OpCall {
				t.Fatal("call chain not fully inlined")
			}
		}
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != ref.Ret {
		t.Fatalf("ret changed: %d -> %d", ref.Ret, res.Ret)
	}
}

func TestInlinePreservesBlockNames(t *testing.T) {
	p := callerProgram(10)
	prof := profile.New()
	if _, err := interp.Run(p, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	Apply(p, prof, Options{ExpansionBudget: 2.0})
	found := false
	for _, blk := range p.Funcs["main"].Blocks {
		if blk.Name == "clamp" { // callee's block label survives
			found = true
		}
	}
	if !found {
		t.Fatal("inlined blocks lost their source labels")
	}
}
