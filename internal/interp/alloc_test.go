package interp

import (
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// callLoopProgram is a counted loop that calls a function every
// iteration — the shape that exercises the interpreter's per-call
// frame and argument scratch.
func callLoopProgram(trips int64) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	g := pb.Func("square", 1, true)
	g.Block("entry")
	d := g.Reg()
	g.Mul(d, g.Param(0), g.Param(0))
	g.Ret(d)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt, acc, tmp := f.Reg(), f.Reg(), f.Reg()
	f.MovI(cnt, trips)
	f.MovI(acc, 0)
	f.Block("loop")
	f.Call(tmp, "square", cnt)
	f.Add(acc, acc, tmp)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// TestInterpAllocsDoNotScale is the interpreter's version of the
// simulator's zero-alloc-scaling pin (see internal/vliw's
// TestDisabledObsAllocsDoNotScale): per-run allocations must be
// identical at 100 and 3000 call-in-loop trips. The interpreter runs
// every benchmark's full input during profile collection, so a
// reintroduced per-call allocation would show up as compile-time
// regression across the whole experiment pipeline.
func TestInterpAllocsDoNotScale(t *testing.T) {
	run := func(trips int64) float64 {
		prog := callLoopProgram(trips)
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(prog, Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(100), run(3000)
	if large > small {
		t.Fatalf("interpreter allocations scale with trip count: %v at 100 trips, %v at 3000",
			small, large)
	}
}
