// Package interp is a functional interpreter for the IR. It executes
// programs in CFG form (before or after the control transformations —
// it fully understands guards and predicate defines), produces the
// reference outputs the cycle-level simulator is validated against, and
// optionally gathers execution profiles for the profile-guided passes.
package interp

import (
	"fmt"

	"lpbuf/internal/ir"
	"lpbuf/internal/profile"
)

// Options configure a run.
type Options struct {
	// Profile, when non-nil, receives execution counts.
	Profile *profile.Profile
	// MaxOps bounds dynamic operations (0 = default 4e9).
	MaxOps int64
	// MaxDepth bounds call depth (0 = default 256).
	MaxDepth int
	// EntryArgs are passed to the entry function's parameters.
	EntryArgs []int64
}

// Result reports a completed run.
type Result struct {
	// Mem is the final data memory.
	Mem []byte
	// Ret is the entry function's return value (0 for void).
	Ret int64
	// Ops is the number of dynamic operations executed (nullified
	// guarded operations count: they issued).
	Ops int64
}

type state struct {
	prog  *ir.Program
	mem   []byte
	prof  *profile.Profile
	ops   int64
	maxOp int64
	depth int
	maxD  int
	// scr[d] is the register-file scratch for call depth d: at any
	// moment exactly one activation lives at each depth, so frames are
	// reused across the run's calls instead of allocated per call. The
	// profile-guided passes interpret every benchmark's full input to
	// collect counts, which makes these per-call allocations the
	// compile pipeline's hottest.
	scr []frameScratch
	// argbuf carries call arguments from call site to callee entry.
	// The callee copies them into its registers before executing any
	// op, so one buffer serves all nesting depths.
	argbuf []int64
	// counters holds the dense per-function profile scratch (nil when
	// not profiling).
	counters map[*ir.Func]*funcCounters
}

type frameScratch struct {
	regs  []int64
	preds []bool
}

// funcCounters is the dense profile scratch for one function. Block
// and op IDs are small sequential integers, so counting events in
// ID-indexed slices (and folding into the FuncProfile maps once at the
// end of the run) replaces a map assignment per executed block, branch
// and call — the hottest part of profile collection, which the
// profile-guided passes pay on every benchmark's full input.
type funcCounters struct {
	fp     *profile.FuncProfile
	calls  int64
	ops    int64
	block  []int64
	bexec  []int64
	btaken []int64
	csite  []int64
	edge   [][]edgeCount
}

// edgeCount is one outgoing-edge counter; each block has only a
// handful of distinct successors, so a linear scan beats hashing.
type edgeCount struct {
	to ir.BlockID
	n  int64
}

func (c *funcCounters) addEdge(from, to ir.BlockID) {
	l := c.edge[from]
	for i := range l {
		if l[i].to == to {
			l[i].n++
			return
		}
	}
	c.edge[from] = append(l, edgeCount{to: to, n: 1})
}

// countersFor returns (creating on first visit) f's dense counters.
// Sizes come from scanning the function so manually numbered IDs are
// covered too.
func (st *state) countersFor(f *ir.Func) *funcCounters {
	if c := st.counters[f]; c != nil {
		return c
	}
	var maxB ir.BlockID
	maxOp := 0
	for _, b := range f.Blocks {
		if b.ID > maxB {
			maxB = b.ID
		}
		for _, op := range b.Ops {
			if op.ID > maxOp {
				maxOp = op.ID
			}
		}
	}
	c := &funcCounters{
		fp:     st.prof.ForFunc(f.Name),
		block:  make([]int64, maxB+1),
		bexec:  make([]int64, maxOp+1),
		btaken: make([]int64, maxOp+1),
		csite:  make([]int64, maxOp+1),
		edge:   make([][]edgeCount, maxB+1),
	}
	st.counters[f] = c
	return c
}

// foldCounters folds the run's dense counts into the profile maps,
// touching only IDs that actually executed — the resulting maps are
// identical to incrementing them per event.
func (st *state) foldCounters() {
	for _, c := range st.counters {
		fp := c.fp
		fp.Calls += c.calls
		fp.Ops += c.ops
		for id, n := range c.block {
			if n != 0 {
				fp.Block[ir.BlockID(id)] += n
			}
		}
		for id, n := range c.bexec {
			if n != 0 {
				fp.BranchExec[id] += n
			}
		}
		for id, n := range c.btaken {
			if n != 0 {
				fp.BranchTaken[id] += n
			}
		}
		for id, n := range c.csite {
			if n != 0 {
				fp.CallSite[id] += n
			}
		}
		for from, l := range c.edge {
			for _, ec := range l {
				fp.Edge[profile.Edge{From: ir.BlockID(from), To: ec.to}] += ec.n
			}
		}
	}
}

// frame returns zeroed register files for one activation at depth d,
// reusing the depth's previous backing arrays when large enough.
func (st *state) frame(d int, nRegs, nPreds int) ([]int64, []bool) {
	for d >= len(st.scr) {
		st.scr = append(st.scr, frameScratch{})
	}
	fs := &st.scr[d]
	if cap(fs.regs) < nRegs {
		fs.regs = make([]int64, nRegs)
	} else {
		fs.regs = fs.regs[:nRegs]
		clear(fs.regs)
	}
	if cap(fs.preds) < nPreds {
		fs.preds = make([]bool, nPreds)
	} else {
		fs.preds = fs.preds[:nPreds]
		clear(fs.preds)
	}
	return fs.regs, fs.preds
}

// Run executes the program from its entry function.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	entry := prog.Funcs[prog.Entry]
	if entry == nil {
		return nil, fmt.Errorf("interp: no entry function %q", prog.Entry)
	}
	st := &state{
		prog:  prog,
		mem:   make([]byte, prog.MemSize),
		prof:  opts.Profile,
		maxOp: opts.MaxOps,
		maxD:  opts.MaxDepth,
	}
	if st.maxOp == 0 {
		st.maxOp = 4e9
	}
	if st.maxD == 0 {
		st.maxD = 256
	}
	if st.prof != nil {
		st.counters = map[*ir.Func]*funcCounters{}
	}
	for _, g := range prog.Globals {
		copy(st.mem[g.Offset:g.Offset+g.Size], g.Init)
	}
	ret, err := st.call(entry, opts.EntryArgs)
	if err != nil {
		return nil, err
	}
	if st.prof != nil {
		st.foldCounters()
		st.prof.TotalOps = st.ops
	}
	return &Result{Mem: st.mem, Ret: ret, Ops: st.ops}, nil
}

func (st *state) call(f *ir.Func, args []int64) (int64, error) {
	if st.depth >= st.maxD {
		return 0, fmt.Errorf("interp: call depth limit in %s", f.Name)
	}
	st.depth++
	defer func() { st.depth-- }()

	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s expects %d args, got %d", f.Name, len(f.Params), len(args))
	}
	regs, preds := st.frame(st.depth, int(f.NumRegs())+1, int(f.NumPreds())+1)
	preds[0] = true
	for i, p := range f.Params {
		regs[p] = ir.W32(args[i])
	}

	var fc *funcCounters
	if st.prof != nil {
		fc = st.countersFor(f)
		fc.calls++
	}

	cur := f.Entry
	for {
		b := f.Block(cur)
		if b == nil {
			return 0, fmt.Errorf("interp: %s: missing block B%d", f.Name, cur)
		}
		if fc != nil {
			fc.block[b.ID]++
		}
		next, ret, returned, err := st.execBlock(f, fc, b, regs, preds)
		if err != nil {
			return 0, err
		}
		if returned {
			return ret, nil
		}
		if next == 0 {
			return 0, fmt.Errorf("interp: %s: B%d fell off the end", f.Name, b.ID)
		}
		if fc != nil {
			fc.addEdge(b.ID, next)
		}
		cur = next
	}
}

// execBlock runs the ops of b. It returns the next block (0 if none),
// or a return value when the function returned.
func (st *state) execBlock(f *ir.Func, fc *funcCounters, b *ir.Block,
	regs []int64, preds []bool) (next ir.BlockID, ret int64, returned bool, err error) {

	src := func(op *ir.Op, i int) int64 {
		// The immediate, when present, stands in the last source slot.
		if op.HasImm && i == len(op.Src) {
			return op.Imm
		}
		return regs[op.Src[i]]
	}

	for _, op := range b.Ops {
		st.ops++
		if fc != nil {
			fc.ops++
		}
		if st.ops > st.maxOp {
			return 0, 0, false, fmt.Errorf("interp: op limit exceeded in %s", f.Name)
		}
		guard := preds[op.Guard]
		switch {
		case op.Opcode == ir.OpNop:

		case op.Opcode == ir.OpCmpP:
			cond := op.Cmp.Eval(src(op, 0), src(op, 1))
			// Iterate PDest directly with PredDefines' filter: the
			// accessor allocates a fresh slice per call, which this
			// loop is far too hot for.
			for _, pd := range op.PDest {
				if pd.Type == ir.PTNone || pd.Pred == 0 {
					continue
				}
				v, w := pd.Type.Update(guard, cond)
				if w {
					preds[pd.Pred] = v
				}
			}

		case op.Opcode == ir.OpSel:
			if guard {
				if regs[op.Src[0]] != 0 {
					regs[op.Dest[0]] = regs[op.Src[1]]
				} else {
					regs[op.Dest[0]] = regs[op.Src[2]]
				}
			}

		case ir.IsALUEvaluable(op.Opcode):
			if guard {
				var a, bb int64
				if op.Opcode == ir.OpMov {
					a = src(op, 0)
				} else if op.Opcode == ir.OpAbs {
					a = src(op, 0)
				} else {
					a, bb = src(op, 0), src(op, 1)
				}
				regs[op.Dest[0]] = ir.EvalALU(op.Opcode, op.Cmp, a, bb)
			}

		case op.IsLoad():
			if guard {
				addr := regs[op.Src[0]] + op.Imm
				v, lerr := st.loadMem(op.Opcode, addr)
				if lerr != nil {
					if op.Speculative {
						v = 0 // speculative loads squash faults
					} else {
						return 0, 0, false, fmt.Errorf("%s in %s B%d: %v", op, f.Name, b.ID, lerr)
					}
				}
				regs[op.Dest[0]] = v
			}

		case op.IsStore():
			if guard {
				addr := regs[op.Src[0]] + op.Imm
				if serr := st.storeMem(op.Opcode, addr, regs[op.Src[1]]); serr != nil {
					return 0, 0, false, fmt.Errorf("%s in %s B%d: %v", op, f.Name, b.ID, serr)
				}
			}

		case op.Opcode == ir.OpBr:
			taken := false
			if guard {
				taken = op.Cmp.Eval(src(op, 0), src(op, 1))
				if fc != nil {
					fc.bexec[op.ID]++
					if taken {
						fc.btaken[op.ID]++
					}
				}
			}
			if taken {
				return op.Target, 0, false, nil
			}

		case op.Opcode == ir.OpJump:
			if guard {
				if fc != nil {
					fc.bexec[op.ID]++
					fc.btaken[op.ID]++
				}
				return op.Target, 0, false, nil
			}

		case op.Opcode == ir.OpBrCLoop:
			if guard {
				c := ir.W32(regs[op.Src[0]] - 1)
				regs[op.Dest[0]] = c
				if fc != nil {
					fc.bexec[op.ID]++
				}
				if c > 0 {
					if fc != nil {
						fc.btaken[op.ID]++
					}
					return op.Target, 0, false, nil
				}
			}

		case op.Opcode == ir.OpCall:
			if guard {
				callee := st.prog.Funcs[op.Callee]
				if callee == nil {
					return 0, 0, false, fmt.Errorf("interp: call to undefined %q", op.Callee)
				}
				if cap(st.argbuf) < len(op.Src) {
					st.argbuf = make([]int64, len(op.Src))
				}
				args := st.argbuf[:len(op.Src)]
				for i, r := range op.Src {
					args[i] = regs[r]
				}
				if fc != nil {
					fc.csite[op.ID]++
				}
				rv, cerr := st.call(callee, args)
				if cerr != nil {
					return 0, 0, false, cerr
				}
				if len(op.Dest) > 0 {
					regs[op.Dest[0]] = rv
				}
			}

		case op.Opcode == ir.OpRet:
			if guard {
				var rv int64
				if len(op.Src) > 0 {
					rv = regs[op.Src[0]]
				}
				return 0, rv, true, nil
			}

		case op.IsBufferOp():
			// Buffer management ops are fetch-engine directives; they
			// are semantic no-ops to the interpreter except that
			// exec_[cw]loop transfers control to the buffered loop,
			// which in IR form is just its Target block.
			if guard && (op.Opcode == ir.OpExecCLoop || op.Opcode == ir.OpExecWLoop) {
				return op.Target, 0, false, nil
			}

		default:
			return 0, 0, false, fmt.Errorf("interp: unhandled op %s in %s", op, f.Name)
		}
	}
	return b.Fall, 0, false, nil
}

func (st *state) loadMem(opc ir.Opcode, addr int64) (int64, error) {
	sz := memSize(opc)
	if addr < 0 || addr+sz > int64(len(st.mem)) {
		return 0, fmt.Errorf("load out of range: addr=%d size=%d", addr, sz)
	}
	switch opc {
	case ir.OpLdB:
		return int64(int8(st.mem[addr])), nil
	case ir.OpLdBU:
		return int64(st.mem[addr]), nil
	case ir.OpLdH:
		return int64(int16(uint16(st.mem[addr]) | uint16(st.mem[addr+1])<<8)), nil
	case ir.OpLdHU:
		return int64(uint16(st.mem[addr]) | uint16(st.mem[addr+1])<<8), nil
	case ir.OpLdW:
		v := uint32(st.mem[addr]) | uint32(st.mem[addr+1])<<8 |
			uint32(st.mem[addr+2])<<16 | uint32(st.mem[addr+3])<<24
		return int64(int32(v)), nil
	}
	return 0, fmt.Errorf("not a load: %s", opc)
}

func (st *state) storeMem(opc ir.Opcode, addr, v int64) error {
	sz := memSize(opc)
	if addr < 0 || addr+sz > int64(len(st.mem)) {
		return fmt.Errorf("store out of range: addr=%d size=%d", addr, sz)
	}
	switch opc {
	case ir.OpStB:
		st.mem[addr] = byte(v)
	case ir.OpStH:
		st.mem[addr] = byte(v)
		st.mem[addr+1] = byte(uint64(v) >> 8)
	case ir.OpStW:
		st.mem[addr] = byte(v)
		st.mem[addr+1] = byte(uint64(v) >> 8)
		st.mem[addr+2] = byte(uint64(v) >> 16)
		st.mem[addr+3] = byte(uint64(v) >> 24)
	default:
		return fmt.Errorf("not a store: %s", opc)
	}
	return nil
}

func memSize(opc ir.Opcode) int64 {
	switch opc {
	case ir.OpLdB, ir.OpLdBU, ir.OpStB:
		return 1
	case ir.OpLdH, ir.OpLdHU, ir.OpStH:
		return 2
	default:
		return 4
	}
}
