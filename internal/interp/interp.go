// Package interp is a functional interpreter for the IR. It executes
// programs in CFG form (before or after the control transformations —
// it fully understands guards and predicate defines), produces the
// reference outputs the cycle-level simulator is validated against, and
// optionally gathers execution profiles for the profile-guided passes.
package interp

import (
	"fmt"

	"lpbuf/internal/ir"
	"lpbuf/internal/profile"
)

// Options configure a run.
type Options struct {
	// Profile, when non-nil, receives execution counts.
	Profile *profile.Profile
	// MaxOps bounds dynamic operations (0 = default 4e9).
	MaxOps int64
	// MaxDepth bounds call depth (0 = default 256).
	MaxDepth int
	// EntryArgs are passed to the entry function's parameters.
	EntryArgs []int64
}

// Result reports a completed run.
type Result struct {
	// Mem is the final data memory.
	Mem []byte
	// Ret is the entry function's return value (0 for void).
	Ret int64
	// Ops is the number of dynamic operations executed (nullified
	// guarded operations count: they issued).
	Ops int64
}

type state struct {
	prog  *ir.Program
	mem   []byte
	prof  *profile.Profile
	ops   int64
	maxOp int64
	depth int
	maxD  int
}

// Run executes the program from its entry function.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	entry := prog.Funcs[prog.Entry]
	if entry == nil {
		return nil, fmt.Errorf("interp: no entry function %q", prog.Entry)
	}
	st := &state{
		prog:  prog,
		mem:   make([]byte, prog.MemSize),
		prof:  opts.Profile,
		maxOp: opts.MaxOps,
		maxD:  opts.MaxDepth,
	}
	if st.maxOp == 0 {
		st.maxOp = 4e9
	}
	if st.maxD == 0 {
		st.maxD = 256
	}
	for _, g := range prog.Globals {
		copy(st.mem[g.Offset:g.Offset+g.Size], g.Init)
	}
	ret, err := st.call(entry, opts.EntryArgs)
	if err != nil {
		return nil, err
	}
	if st.prof != nil {
		st.prof.TotalOps = st.ops
	}
	return &Result{Mem: st.mem, Ret: ret, Ops: st.ops}, nil
}

func (st *state) call(f *ir.Func, args []int64) (int64, error) {
	if st.depth >= st.maxD {
		return 0, fmt.Errorf("interp: call depth limit in %s", f.Name)
	}
	st.depth++
	defer func() { st.depth-- }()

	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s expects %d args, got %d", f.Name, len(f.Params), len(args))
	}
	regs := make([]int64, f.NumRegs()+1)
	preds := make([]bool, f.NumPreds()+1)
	preds[0] = true
	for i, p := range f.Params {
		regs[p] = ir.W32(args[i])
	}

	var fp *profile.FuncProfile
	if st.prof != nil {
		fp = st.prof.ForFunc(f.Name)
		fp.Calls++
	}

	cur := f.Entry
	for {
		b := f.Block(cur)
		if b == nil {
			return 0, fmt.Errorf("interp: %s: missing block B%d", f.Name, cur)
		}
		if fp != nil {
			fp.Block[b.ID]++
		}
		next, ret, returned, err := st.execBlock(f, fp, b, regs, preds)
		if err != nil {
			return 0, err
		}
		if returned {
			return ret, nil
		}
		if next == 0 {
			return 0, fmt.Errorf("interp: %s: B%d fell off the end", f.Name, b.ID)
		}
		if fp != nil {
			fp.Edge[profile.Edge{From: b.ID, To: next}]++
		}
		cur = next
	}
}

// execBlock runs the ops of b. It returns the next block (0 if none),
// or a return value when the function returned.
func (st *state) execBlock(f *ir.Func, fp *profile.FuncProfile, b *ir.Block,
	regs []int64, preds []bool) (next ir.BlockID, ret int64, returned bool, err error) {

	src := func(op *ir.Op, i int) int64 {
		// The immediate, when present, stands in the last source slot.
		if op.HasImm && i == len(op.Src) {
			return op.Imm
		}
		return regs[op.Src[i]]
	}

	for _, op := range b.Ops {
		st.ops++
		if fp != nil {
			fp.Ops++
		}
		if st.ops > st.maxOp {
			return 0, 0, false, fmt.Errorf("interp: op limit exceeded in %s", f.Name)
		}
		guard := preds[op.Guard]
		switch {
		case op.Opcode == ir.OpNop:

		case op.Opcode == ir.OpCmpP:
			cond := op.Cmp.Eval(src(op, 0), src(op, 1))
			for _, pd := range op.PredDefines() {
				v, w := pd.Type.Update(guard, cond)
				if w {
					preds[pd.Pred] = v
				}
			}

		case op.Opcode == ir.OpSel:
			if guard {
				if regs[op.Src[0]] != 0 {
					regs[op.Dest[0]] = regs[op.Src[1]]
				} else {
					regs[op.Dest[0]] = regs[op.Src[2]]
				}
			}

		case ir.IsALUEvaluable(op.Opcode):
			if guard {
				var a, bb int64
				if op.Opcode == ir.OpMov {
					a = src(op, 0)
				} else if op.Opcode == ir.OpAbs {
					a = src(op, 0)
				} else {
					a, bb = src(op, 0), src(op, 1)
				}
				regs[op.Dest[0]] = ir.EvalALU(op.Opcode, op.Cmp, a, bb)
			}

		case op.IsLoad():
			if guard {
				addr := regs[op.Src[0]] + op.Imm
				v, lerr := st.loadMem(op.Opcode, addr)
				if lerr != nil {
					if op.Speculative {
						v = 0 // speculative loads squash faults
					} else {
						return 0, 0, false, fmt.Errorf("%s in %s B%d: %v", op, f.Name, b.ID, lerr)
					}
				}
				regs[op.Dest[0]] = v
			}

		case op.IsStore():
			if guard {
				addr := regs[op.Src[0]] + op.Imm
				if serr := st.storeMem(op.Opcode, addr, regs[op.Src[1]]); serr != nil {
					return 0, 0, false, fmt.Errorf("%s in %s B%d: %v", op, f.Name, b.ID, serr)
				}
			}

		case op.Opcode == ir.OpBr:
			taken := false
			if guard {
				taken = op.Cmp.Eval(src(op, 0), src(op, 1))
				if fp != nil {
					fp.BranchExec[op.ID]++
					if taken {
						fp.BranchTaken[op.ID]++
					}
				}
			}
			if taken {
				return op.Target, 0, false, nil
			}

		case op.Opcode == ir.OpJump:
			if guard {
				if fp != nil {
					fp.BranchExec[op.ID]++
					fp.BranchTaken[op.ID]++
				}
				return op.Target, 0, false, nil
			}

		case op.Opcode == ir.OpBrCLoop:
			if guard {
				c := ir.W32(regs[op.Src[0]] - 1)
				regs[op.Dest[0]] = c
				if fp != nil {
					fp.BranchExec[op.ID]++
				}
				if c > 0 {
					if fp != nil {
						fp.BranchTaken[op.ID]++
					}
					return op.Target, 0, false, nil
				}
			}

		case op.Opcode == ir.OpCall:
			if guard {
				callee := st.prog.Funcs[op.Callee]
				if callee == nil {
					return 0, 0, false, fmt.Errorf("interp: call to undefined %q", op.Callee)
				}
				args := make([]int64, len(op.Src))
				for i, r := range op.Src {
					args[i] = regs[r]
				}
				if fp != nil {
					fp.CallSite[op.ID]++
				}
				rv, cerr := st.call(callee, args)
				if cerr != nil {
					return 0, 0, false, cerr
				}
				if len(op.Dest) > 0 {
					regs[op.Dest[0]] = rv
				}
			}

		case op.Opcode == ir.OpRet:
			if guard {
				var rv int64
				if len(op.Src) > 0 {
					rv = regs[op.Src[0]]
				}
				return 0, rv, true, nil
			}

		case op.IsBufferOp():
			// Buffer management ops are fetch-engine directives; they
			// are semantic no-ops to the interpreter except that
			// exec_[cw]loop transfers control to the buffered loop,
			// which in IR form is just its Target block.
			if guard && (op.Opcode == ir.OpExecCLoop || op.Opcode == ir.OpExecWLoop) {
				return op.Target, 0, false, nil
			}

		default:
			return 0, 0, false, fmt.Errorf("interp: unhandled op %s in %s", op, f.Name)
		}
	}
	return b.Fall, 0, false, nil
}

func (st *state) loadMem(opc ir.Opcode, addr int64) (int64, error) {
	sz := memSize(opc)
	if addr < 0 || addr+sz > int64(len(st.mem)) {
		return 0, fmt.Errorf("load out of range: addr=%d size=%d", addr, sz)
	}
	switch opc {
	case ir.OpLdB:
		return int64(int8(st.mem[addr])), nil
	case ir.OpLdBU:
		return int64(st.mem[addr]), nil
	case ir.OpLdH:
		return int64(int16(uint16(st.mem[addr]) | uint16(st.mem[addr+1])<<8)), nil
	case ir.OpLdHU:
		return int64(uint16(st.mem[addr]) | uint16(st.mem[addr+1])<<8), nil
	case ir.OpLdW:
		v := uint32(st.mem[addr]) | uint32(st.mem[addr+1])<<8 |
			uint32(st.mem[addr+2])<<16 | uint32(st.mem[addr+3])<<24
		return int64(int32(v)), nil
	}
	return 0, fmt.Errorf("not a load: %s", opc)
}

func (st *state) storeMem(opc ir.Opcode, addr, v int64) error {
	sz := memSize(opc)
	if addr < 0 || addr+sz > int64(len(st.mem)) {
		return fmt.Errorf("store out of range: addr=%d size=%d", addr, sz)
	}
	switch opc {
	case ir.OpStB:
		st.mem[addr] = byte(v)
	case ir.OpStH:
		st.mem[addr] = byte(v)
		st.mem[addr+1] = byte(uint64(v) >> 8)
	case ir.OpStW:
		st.mem[addr] = byte(v)
		st.mem[addr+1] = byte(uint64(v) >> 8)
		st.mem[addr+2] = byte(uint64(v) >> 16)
		st.mem[addr+3] = byte(uint64(v) >> 24)
	default:
		return fmt.Errorf("not a store: %s", opc)
	}
	return nil
}

func memSize(opc ir.Opcode) int64 {
	switch opc {
	case ir.OpLdB, ir.OpLdBU, ir.OpStB:
		return 1
	case ir.OpLdH, ir.OpLdHU, ir.OpStH:
		return 2
	default:
		return 4
	}
}
