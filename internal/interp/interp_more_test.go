package interp

import (
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

func TestAndTypePredicates(t *testing.T) {
	// p = (x > 0) && (x < 10), via and-type defines: initialize p to 1
	// (uf of a false condition), then AND in the conditions with af
	// (clears on guard && cond of the *negated* test) — here we use the
	// direct style: af writes 0 when guard && cond, so feed it the
	// negations.
	build := func(x int64) *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		f := pb.Func("main", 0, true)
		f.Block("entry")
		xr := f.Const(x)
		zero := f.Const(0)
		y := f.Reg()
		f.MovI(y, 0)
		p := f.F.NewPred()
		// p = 1 via uf(false cond).
		f.CmpPI(p, ir.PTUF, 0, ir.PTNone, ir.CmpNE, zero, 0)
		// af: write 0 when cond true; cond = !(x > 0) i.e. x <= 0.
		f.CmpPI(p, ir.PTAF, 0, ir.PTNone, ir.CmpLE, xr, 0)
		f.CmpPI(p, ir.PTAF, 0, ir.PTNone, ir.CmpGE, xr, 10)
		f.MovI(y, 1).Guard = p
		f.Ret(y)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	for _, c := range []struct{ x, want int64 }{{-1, 0}, {0, 0}, {1, 1}, {9, 1}, {10, 0}} {
		res, err := Run(build(c.x), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != c.want {
			t.Fatalf("x=%d: ret = %d, want %d", c.x, res.Ret, c.want)
		}
	}
}

func TestConditionalTypePredicates(t *testing.T) {
	// ct/cf write only when the guard is true (the old value survives a
	// false guard) — the key difference from ut/uf.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	one := f.Const(1)
	zero := f.Const(0)
	y := f.Reg()
	p := f.F.NewPred()
	q := f.F.NewPred()
	// p = true.
	f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpEQ, one, 1)
	// q = true via ct under p.
	f.CmpPI(q, ir.PTCT, 0, ir.PTNone, ir.CmpEQ, one, 1).Guard = p
	// Make p false, then try to clear q with a guarded ct: must NOT
	// write (guard false), so q stays true.
	f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpNE, zero, 0)
	f.CmpPI(q, ir.PTCT, 0, ir.PTNone, ir.CmpNE, one, 1).Guard = p
	f.MovI(y, 77).Guard = q
	f.Ret(y)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 77 {
		t.Fatalf("ret = %d, want 77 (ct under false guard must not write)", res.Ret)
	}
}

func TestGuardedJumpAndBranch(t *testing.T) {
	// A guarded jump transfers only when its predicate holds.
	build := func(x int64) *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		f := pb.Func("main", 0, true)
		f.Block("entry")
		xr := f.Const(x)
		p := f.F.NewPred()
		f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpLT, xr, 0)
		f.Jump("negpath").Guard = p
		f.Block("pospath")
		a := f.Const(100)
		f.Ret(a)
		f.Block("negpath")
		b := f.Const(-100)
		f.Ret(b)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	for _, c := range []struct{ x, want int64 }{{5, 100}, {-5, -100}} {
		res, err := Run(build(c.x), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != c.want {
			t.Fatalf("x=%d: ret = %d, want %d", c.x, res.Ret, c.want)
		}
	}
}

func TestCallDepthLimit(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	r := f.Reg()
	f.Call(r, "main") // infinite recursion
	f.Ret(r)
	pb.SetEntry("main")
	if _, err := Run(pb.MustBuild(), Options{MaxDepth: 16}); err == nil {
		t.Fatal("expected call-depth error")
	}
}

func TestStoreOutOfRangeFaults(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, false)
	f.Block("entry")
	a := f.Const(1 << 20)
	v := f.Const(7)
	f.StW(a, 0, v)
	f.Ret(0)
	pb.SetEntry("main")
	if _, err := Run(pb.MustBuild(), Options{}); err == nil {
		t.Fatal("expected fault for out-of-range store")
	}
}

func TestGuardedStoreSkipped(t *testing.T) {
	// A store whose guard is false must not touch memory (even with a
	// wild address).
	pb := irbuild.NewProgram(16 << 10)
	g := pb.Global("g", 8, nil)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	base := f.Const(g)
	bad := f.Const(1 << 20)
	v := f.Const(42)
	zero := f.Const(0)
	p := f.F.NewPred()
	f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpNE, zero, 0) // false
	f.StW(bad, 0, v).Guard = p
	f.StW(base, 0, v)
	d := f.Reg()
	f.LdW(d, base, 0)
	f.Ret(d)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestSelOpcode(t *testing.T) {
	build := func(c int64) *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		f := pb.Func("main", 0, true)
		f.Block("entry")
		cond := f.Const(c)
		a := f.Const(11)
		b := f.Const(22)
		d := f.Reg()
		f.Sel(d, cond, a, b)
		f.Ret(d)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	for _, c := range []struct{ c, want int64 }{{0, 22}, {1, 11}, {-3, 11}} {
		res, err := Run(build(c.c), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != c.want {
			t.Fatalf("sel(%d) = %d, want %d", c.c, res.Ret, c.want)
		}
	}
}

func TestCmpWOpcode(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 1, true)
	f.Block("entry")
	d := f.Reg()
	f.CmpWI(ir.CmpGE, d, f.Param(0), 10)
	f.Ret(d)
	pb.SetEntry("main")
	p := pb.MustBuild()
	for _, c := range []struct{ x, want int64 }{{9, 0}, {10, 1}, {11, 1}} {
		res, err := Run(p, Options{EntryArgs: []int64{c.x}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != c.want {
			t.Fatalf("cmpw(%d) = %d, want %d", c.x, res.Ret, c.want)
		}
	}
}

func TestSaturatingIntrinsics(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 2, true)
	f.Block("entry")
	d := f.Reg()
	f.SAdd16(d, f.Param(0), f.Param(1))
	e := f.Reg()
	f.SSub32(e, d, f.Param(1))
	f.Add(d, d, e)
	f.Ret(d)
	pb.SetEntry("main")
	p := pb.MustBuild()
	res, err := Run(p, Options{EntryArgs: []int64{30000, 10000}})
	if err != nil {
		t.Fatal(err)
	}
	// sadd16(30000,10000) = 32767; ssub32(32767,10000) = 22767.
	if res.Ret != 32767+22767 {
		t.Fatalf("ret = %d", res.Ret)
	}
}
