package interp

import (
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/profile"
)

// sumProgram builds: for i in [0,n): acc += i; return acc.
func sumProgram(n int64) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	acc, i := f.Reg(), f.Reg()
	f.Block("entry")
	f.MovI(acc, 0)
	f.MovI(i, 0)
	f.Block("loop")
	f.Add(acc, acc, i)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, n, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestSumLoop(t *testing.T) {
	res, err := Run(sumProgram(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 45 {
		t.Fatalf("ret = %d, want 45", res.Ret)
	}
}

func TestProfileCounts(t *testing.T) {
	prof := profile.New()
	if _, err := Run(sumProgram(10), Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	fp := prof.Funcs["main"]
	if fp == nil {
		t.Fatal("no profile for main")
	}
	var loopID ir.BlockID = 2 // second block created
	if fp.Block[loopID] != 10 {
		t.Fatalf("loop block count = %d, want 10", fp.Block[loopID])
	}
	if fp.Calls != 1 {
		t.Fatalf("calls = %d", fp.Calls)
	}
	// The back edge is taken 9 times.
	if fp.Edge[profile.Edge{From: loopID, To: loopID}] != 9 {
		t.Fatalf("back edge = %d, want 9", fp.Edge[profile.Edge{From: loopID, To: loopID}])
	}
}

func TestMemoryOps(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	base := pb.Global("buf", 64, nil)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	b := f.Const(base)
	v := f.Const(-2)
	f.StW(b, 0, v)
	f.StH(b, 4, v)
	f.StB(b, 6, v)
	w, h, hu, bb, bu := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.LdW(w, b, 0)
	f.LdH(h, b, 4)
	f.LdHU(hu, b, 4)
	f.LdB(bb, b, 6)
	f.LdBU(bu, b, 6)
	s := f.Reg()
	f.Add(s, w, h)  // -2 + -2 = -4
	f.Add(s, s, hu) // -4 + 65534 = 65530
	f.Add(s, s, bb) // 65530 - 2 = 65528
	f.Add(s, s, bu) // 65528 + 254 = 65782
	f.Ret(s)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 65782 {
		t.Fatalf("ret = %d, want 65782", res.Ret)
	}
}

func TestGlobalInit(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	base := pb.GlobalW("tab", 4, []int32{10, -20, 30, -40})
	f := pb.Func("main", 0, true)
	f.Block("entry")
	b := f.Const(base)
	x, y := f.Reg(), f.Reg()
	f.LdW(x, b, 4)
	f.LdW(y, b, 12)
	f.Add(x, x, y)
	f.Ret(x)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != -60 {
		t.Fatalf("ret = %d, want -60", res.Ret)
	}
}

func TestCallAndReturn(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	g := pb.Func("square", 1, true)
	g.Block("entry")
	d := g.Reg()
	g.Mul(d, g.Param(0), g.Param(0))
	g.Ret(d)

	f := pb.Func("main", 0, true)
	f.Block("entry")
	a := f.Const(7)
	r := f.Reg()
	f.Call(r, "square", a)
	f.Ret(r)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 49 {
		t.Fatalf("ret = %d, want 49", res.Ret)
	}
}

func TestPredicatedExecution(t *testing.T) {
	// if (x < 5) y = 1 else y = 2, fully if-converted by hand.
	build := func(x int64) *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		f := pb.Func("main", 0, true)
		f.Block("entry")
		xr := f.Const(x)
		y := f.Reg()
		pt, pf := f.F.NewPred(), f.F.NewPred()
		f.CmpPI(pt, ir.PTUT, pf, ir.PTUF, ir.CmpLT, xr, 5)
		f.MovI(y, 1).Guard = pt
		f.MovI(y, 2).Guard = pf
		f.Ret(y)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	for _, c := range []struct{ x, want int64 }{{3, 1}, {5, 2}, {9, 2}} {
		res, err := Run(build(c.x), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != c.want {
			t.Fatalf("x=%d: ret = %d, want %d", c.x, res.Ret, c.want)
		}
	}
}

func TestOrTypePredicates(t *testing.T) {
	// p = (x < 0) || (x > 3), via or-type defines.
	build := func(x int64) *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		f := pb.Func("main", 0, true)
		f.Block("entry")
		xr := f.Const(x)
		y := f.Reg()
		f.MovI(y, 0)
		p := f.F.NewPred()
		// Initialize p to 0 with a ut define of a false condition, then
		// OR in the two conditions.
		zero := f.Const(0)
		f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpNE, zero, 0)
		f.CmpPI(p, ir.PTOT, 0, ir.PTNone, ir.CmpLT, xr, 0)
		f.CmpPI(p, ir.PTOT, 0, ir.PTNone, ir.CmpGT, xr, 3)
		f.MovI(y, 1).Guard = p
		f.Ret(y)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	for _, c := range []struct{ x, want int64 }{{-1, 1}, {0, 0}, {3, 0}, {4, 1}} {
		res, err := Run(build(c.x), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != c.want {
			t.Fatalf("x=%d: ret = %d, want %d", c.x, res.Ret, c.want)
		}
	}
}

func TestCLoop(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	c := f.Const(5)
	acc := f.Reg()
	f.MovI(acc, 0)
	f.Block("loop")
	f.AddI(acc, acc, 3)
	f.CLoop(c, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 15 {
		t.Fatalf("ret = %d, want 15 (5 iterations)", res.Ret)
	}
}

func TestOpLimit(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, false)
	f.Block("loop")
	f.Jump("loop")
	pb.SetEntry("main")
	if _, err := Run(pb.MustBuild(), Options{MaxOps: 1000}); err == nil {
		t.Fatal("expected op-limit error for infinite loop")
	}
}

func TestLoadOutOfRangeFaults(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	a := f.Const(1 << 20)
	d := f.Reg()
	f.LdW(d, a, 0)
	f.Ret(d)
	pb.SetEntry("main")
	if _, err := Run(pb.MustBuild(), Options{}); err == nil {
		t.Fatal("expected fault for out-of-range load")
	}
}

func TestSpeculativeLoadSquashesFault(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	a := f.Const(1 << 20)
	d := f.Reg()
	f.LdW(d, a, 0).Speculative = true
	f.Ret(d)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0 {
		t.Fatalf("speculative faulting load should yield 0, got %d", res.Ret)
	}
}

func TestEntryArgs(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 2, true)
	f.Block("entry")
	d := f.Reg()
	f.Sub(d, f.Param(0), f.Param(1))
	f.Ret(d)
	pb.SetEntry("main")
	res, err := Run(pb.MustBuild(), Options{EntryArgs: []int64{10, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 6 {
		t.Fatalf("ret = %d, want 6", res.Ret)
	}
}
