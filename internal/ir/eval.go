package ir

// The datapath is 32 bits wide; register values are carried in int64s
// but always kept sign-extended from 32 bits. W32 renormalizes.

// W32 truncates to 32 bits and sign-extends.
func W32(x int64) int64 { return int64(int32(x)) }

func sat16(x int64) int64 {
	if x > 32767 {
		return 32767
	}
	if x < -32768 {
		return -32768
	}
	return x
}

func sat32(x int64) int64 {
	if x > 2147483647 {
		return 2147483647
	}
	if x < -2147483648 {
		return -2147483648
	}
	return x
}

// EvalALU evaluates a pure ALU/intrinsic opcode on 32-bit operands.
// It covers every opcode for which IsALUEvaluable returns true.
func EvalALU(opc Opcode, cmp CmpKind, a, b int64) int64 {
	switch opc {
	case OpMov:
		// Unary: result is the single operand (callers pass it as a).
		return W32(a)
	case OpAdd:
		return W32(a + b)
	case OpSub:
		return W32(a - b)
	case OpMul:
		return W32(a * b)
	case OpDiv:
		if b == 0 {
			return 0
		}
		return W32(a / b)
	case OpRem:
		if b == 0 {
			return 0
		}
		return W32(a % b)
	case OpAnd:
		return W32(a & b)
	case OpOr:
		return W32(a | b)
	case OpXor:
		return W32(a ^ b)
	case OpShl:
		return W32(a << (uint64(b) & 31))
	case OpShr:
		return W32(a >> (uint64(b) & 31))
	case OpShrU:
		return W32(int64(uint32(a) >> (uint64(b) & 31)))
	case OpAbs:
		if a < 0 {
			return W32(-a)
		}
		return W32(a)
	case OpMin:
		if a < b {
			return W32(a)
		}
		return W32(b)
	case OpMax:
		if a > b {
			return W32(a)
		}
		return W32(b)
	case OpSAdd16:
		return sat16(a + b)
	case OpSSub16:
		return sat16(a - b)
	case OpSAdd32:
		return sat32(a + b)
	case OpSSub32:
		return sat32(a - b)
	case OpCmpW:
		if cmp.Eval(a, b) {
			return 1
		}
		return 0
	}
	panic("ir: EvalALU on non-ALU opcode " + opc.String())
}

// IsALUEvaluable reports whether EvalALU handles opc.
func IsALUEvaluable(opc Opcode) bool {
	switch opc {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpShrU, OpAbs, OpMin, OpMax,
		OpSAdd16, OpSSub16, OpSAdd32, OpSSub32, OpCmpW:
		return true
	}
	return false
}
