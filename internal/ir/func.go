package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a basic block: an ordered list of operations. Branches may
// appear anywhere in the block (mid-block branches are hyperblock side
// exits); control falls through to Fall when no branch is taken by the
// end of the block.
type Block struct {
	ID BlockID
	// Name is an optional source-level label (set by irbuild), used in
	// reports such as the Figure 5 buffer traces.
	Name string
	Ops  []*Op

	// Fall is the fallthrough successor, or 0 when the block always
	// leaves via an explicit branch/return.
	Fall BlockID

	// Weight is the block's profiled execution count.
	Weight float64
}

// Succs returns the distinct successor block IDs (branch targets plus
// fallthrough), in deterministic order: branch targets in op order,
// then fallthrough.
func (b *Block) Succs() []BlockID {
	var out []BlockID
	seen := map[BlockID]bool{}
	add := func(id BlockID) {
		if id != 0 && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, op := range b.Ops {
		if op.IsBranch() {
			add(op.Target)
		}
	}
	add(b.Fall)
	return out
}

// Terminated reports whether the block cannot fall through (ends in an
// unguarded jump, return, or counted-loop branch with no fallthrough).
func (b *Block) Terminated() bool {
	if len(b.Ops) == 0 {
		return false
	}
	last := b.Ops[len(b.Ops)-1]
	return last.IsUncondJump() || last.Opcode == OpRet
}

// LastOp returns the final op or nil.
func (b *Block) LastOp() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	return b.Ops[len(b.Ops)-1]
}

// Func is a single function: blocks in layout order with an entry block.
type Func struct {
	Name string
	// Params are the registers that receive the caller's arguments.
	Params []Reg
	// HasRet reports whether the function produces a return value.
	HasRet bool

	Blocks []*Block
	Entry  BlockID

	nextReg  Reg
	nextPred PredReg
	nextOp   int
	nextBlk  BlockID

	index map[BlockID]*Block
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func {
	return &Func{
		Name:     name,
		nextReg:  1,
		nextPred: 1,
		nextOp:   1,
		nextBlk:  1,
		index:    map[BlockID]*Block{},
	}
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := f.nextReg
	f.nextReg++
	return r
}

// NewPred allocates a fresh virtual predicate register.
func (f *Func) NewPred() PredReg {
	p := f.nextPred
	f.nextPred++
	return p
}

// NewOpID allocates a fresh operation ID.
func (f *Func) NewOpID() int {
	id := f.nextOp
	f.nextOp++
	return id
}

// NumRegs returns an upper bound on allocated register ids (exclusive).
func (f *Func) NumRegs() Reg { return f.nextReg }

// NumPreds returns an upper bound on allocated predicate ids (exclusive).
func (f *Func) NumPreds() PredReg { return f.nextPred }

// NewBlock appends a new empty block to the layout and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlk}
	f.nextBlk++
	f.Blocks = append(f.Blocks, b)
	f.index[b.ID] = b
	return b
}

// Block returns the block with the given ID, or nil.
func (f *Func) Block(id BlockID) *Block {
	if f.index == nil {
		f.Reindex()
	}
	return f.index[id]
}

// Reindex rebuilds the internal block index (call after bulk edits to
// f.Blocks).
func (f *Func) Reindex() {
	f.index = make(map[BlockID]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		f.index[b.ID] = b
		if b.ID >= f.nextBlk {
			f.nextBlk = b.ID + 1
		}
	}
}

// Preds computes the predecessor map of the CFG.
func (f *Func) Preds() map[BlockID][]BlockID {
	preds := map[BlockID][]BlockID{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// RemoveUnreachable deletes blocks not reachable from the entry and
// returns how many were removed.
func (f *Func) RemoveUnreachable() int {
	reach := map[BlockID]bool{}
	var stack []BlockID
	push := func(id BlockID) {
		if id != 0 && !reach[id] {
			reach[id] = true
			stack = append(stack, id)
		}
	}
	push(f.Entry)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := f.Block(id)
		if b == nil {
			continue
		}
		for _, s := range b.Succs() {
			push(s)
		}
	}
	var kept []*Block
	removed := 0
	for _, b := range f.Blocks {
		if reach[b.ID] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	if removed > 0 {
		f.Blocks = kept
		f.Reindex()
	}
	return removed
}

// OpCount returns the number of non-nop operations in the function.
func (f *Func) OpCount() int {
	n := 0
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Opcode != OpNop {
				n++
			}
		}
	}
	return n
}

// Clone deep-copies the function.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:     f.Name,
		Params:   append([]Reg(nil), f.Params...),
		HasRet:   f.HasRet,
		Entry:    f.Entry,
		nextReg:  f.nextReg,
		nextPred: f.nextPred,
		nextOp:   f.nextOp,
		nextBlk:  f.nextBlk,
		index:    map[BlockID]*Block{},
	}
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name, Fall: b.Fall, Weight: b.Weight}
		for _, op := range b.Ops {
			nb.Ops = append(nb.Ops, op.Clone(op.ID))
		}
		nf.Blocks = append(nf.Blocks, nb)
		nf.index[nb.ID] = nb
	}
	return nf
}

// Verify checks structural invariants: branch targets exist, the entry
// exists, fallthroughs resolve, params are distinct, op IDs are unique.
func (f *Func) Verify() error {
	if f.Block(f.Entry) == nil {
		return fmt.Errorf("func %s: entry B%d missing", f.Name, f.Entry)
	}
	ids := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Fall != 0 && f.Block(b.Fall) == nil {
			return fmt.Errorf("func %s: B%d falls to missing B%d", f.Name, b.ID, b.Fall)
		}
		for i, op := range b.Ops {
			if ids[op.ID] {
				return fmt.Errorf("func %s: duplicate op id %d in B%d", f.Name, op.ID, b.ID)
			}
			ids[op.ID] = true
			if op.IsBranch() && f.Block(op.Target) == nil {
				return fmt.Errorf("func %s: B%d op %d targets missing B%d", f.Name, b.ID, op.ID, op.Target)
			}
			if op.IsUncondJump() && i != len(b.Ops)-1 {
				return fmt.Errorf("func %s: B%d has unguarded jump mid-block", f.Name, b.ID)
			}
			if op.Opcode == OpCmpP && len(op.PredDefines()) == 0 {
				return fmt.Errorf("func %s: B%d op %d cmpp with no destinations", f.Name, b.ID, op.ID)
			}
		}
		if !b.Terminated() && b.Fall == 0 {
			// A block with no fallthrough must end in ret/jump or a
			// branch that is always taken; only flag the clear case.
			last := b.LastOp()
			if last == nil || !(last.Opcode == OpRet || last.IsBranch()) {
				return fmt.Errorf("func %s: B%d has no terminator and no fallthrough", f.Name, b.ID)
			}
		}
	}
	return nil
}

// String renders the function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	fmt.Fprintf(&b, ") entry=B%d\n", f.Entry)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "B%d: (w=%.0f", blk.ID, blk.Weight)
		if blk.Fall != 0 {
			fmt.Fprintf(&b, " fall=B%d", blk.Fall)
		}
		b.WriteString(")\n")
		for _, op := range blk.Ops {
			fmt.Fprintf(&b, "\t%s\n", op)
		}
	}
	return b.String()
}

// Global is a named region of the program's flat data memory.
type Global struct {
	Name   string
	Offset int64
	Size   int64
	// Init holds initial bytes (zero-filled to Size when shorter).
	Init []byte
}

// Program is a set of functions plus a flat data-memory layout.
type Program struct {
	Funcs map[string]*Func
	// Order lists function names in definition order (deterministic
	// iteration).
	Order   []string
	Globals []Global
	// MemSize is the size of data memory in bytes.
	MemSize int64
	// Entry is the name of the function where execution starts.
	Entry string
}

// NewProgram creates an empty program with the given memory size.
func NewProgram(memSize int64) *Program {
	return &Program{Funcs: map[string]*Func{}, MemSize: memSize}
}

// AddFunc registers a function (replacing any previous definition).
func (p *Program) AddFunc(f *Func) {
	if _, ok := p.Funcs[f.Name]; !ok {
		p.Order = append(p.Order, f.Name)
	}
	p.Funcs[f.Name] = f
}

// AddGlobal reserves sz bytes, 8-byte aligned, and returns the offset.
// The first 4 KiB of data memory are reserved (a null page): small
// integer constants then never coincide with global addresses, which
// keeps the scheduler's pointer-region analysis precise. Reserving
// past MemSize is an error.
func (p *Program) AddGlobal(name string, sz int64, init []byte) (int64, error) {
	off := int64(4096)
	for _, g := range p.Globals {
		end := g.Offset + g.Size
		if end > off {
			off = end
		}
	}
	off = (off + 7) &^ 7
	if off+sz > p.MemSize {
		return 0, fmt.Errorf("program memory overflow: global %s needs %d bytes at %d (mem %d)",
			name, sz, off, p.MemSize)
	}
	p.Globals = append(p.Globals, Global{Name: name, Offset: off, Size: sz, Init: init})
	return off, nil
}

// GlobalOffset returns the offset of a named global.
func (p *Program) GlobalOffset(name string) (int64, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g.Offset, true
		}
	}
	return 0, false
}

// Clone deep-copies the program (globals share Init backing arrays,
// which are never mutated).
func (p *Program) Clone() *Program {
	np := &Program{
		Funcs:   map[string]*Func{},
		Order:   append([]string(nil), p.Order...),
		Globals: append([]Global(nil), p.Globals...),
		MemSize: p.MemSize,
		Entry:   p.Entry,
	}
	for name, f := range p.Funcs {
		np.Funcs[name] = f.Clone()
	}
	return np
}

// Verify checks all functions and cross-function references.
func (p *Program) Verify() error {
	if p.Entry == "" || p.Funcs[p.Entry] == nil {
		return fmt.Errorf("program: missing entry function %q", p.Entry)
	}
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := p.Funcs[n]
		if err := f.Verify(); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == OpCall {
					callee, ok := p.Funcs[op.Callee]
					if !ok {
						return fmt.Errorf("func %s: call to undefined %q", f.Name, op.Callee)
					}
					if len(op.Src) != len(callee.Params) {
						return fmt.Errorf("func %s: call %s passes %d args, callee wants %d",
							f.Name, op.Callee, len(op.Src), len(callee.Params))
					}
					if (len(op.Dest) > 0) && !callee.HasRet {
						return fmt.Errorf("func %s: call %s expects a result from a void callee",
							f.Name, op.Callee)
					}
				}
			}
		}
	}
	return nil
}

// OpCount returns total non-nop ops across all functions.
func (p *Program) OpCount() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.OpCount()
	}
	return n
}
