package ir

import (
	"testing"
	"testing/quick"
)

func TestPTypeTruthTable(t *testing.T) {
	// Table 2 of the paper. Rows: (guard, cond); '-' means no write.
	type row struct {
		guard, cond bool
		// for each type: (write, value); value meaningless when !write
		want map[PType][2]bool // [write, value]
	}
	rows := []row{
		{false, false, map[PType][2]bool{
			PTUT: {true, false}, PTUF: {true, false},
			PTOT: {false, false}, PTOF: {false, false},
			PTAT: {false, false}, PTAF: {false, false},
			PTCT: {false, false}, PTCF: {false, false},
		}},
		{false, true, map[PType][2]bool{
			PTUT: {true, false}, PTUF: {true, false},
			PTOT: {false, false}, PTOF: {false, false},
			PTAT: {false, false}, PTAF: {false, false},
			PTCT: {false, false}, PTCF: {false, false},
		}},
		{true, false, map[PType][2]bool{
			PTUT: {true, false}, PTUF: {true, true},
			PTOT: {false, false}, PTOF: {true, true},
			PTAT: {true, false}, PTAF: {false, false},
			PTCT: {true, false}, PTCF: {true, true},
		}},
		{true, true, map[PType][2]bool{
			PTUT: {true, true}, PTUF: {true, false},
			PTOT: {true, true}, PTOF: {false, false},
			PTAT: {false, false}, PTAF: {true, false},
			PTCT: {true, true}, PTCF: {true, false},
		}},
	}
	for _, r := range rows {
		for pt, want := range r.want {
			v, w := pt.Update(r.guard, r.cond)
			if w != want[0] {
				t.Errorf("%s guard=%v cond=%v: write=%v want %v", pt, r.guard, r.cond, w, want[0])
			}
			if w && v != want[1] {
				t.Errorf("%s guard=%v cond=%v: value=%v want %v", pt, r.guard, r.cond, v, want[1])
			}
		}
	}
}

func TestCmpKindNegateSwap(t *testing.T) {
	all := []CmpKind{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, CmpLTU, CmpGEU, CmpGTU, CmpLEU}
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		for _, c := range all {
			if c.Eval(x, y) == c.Negate().Eval(x, y) {
				return false
			}
			if c.Eval(x, y) != c.Swap().Eval(y, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalALU32BitSemantics(t *testing.T) {
	cases := []struct {
		opc  Opcode
		a, b int64
		want int64
	}{
		{OpAdd, 0x7fffffff, 1, -0x80000000},
		{OpSub, -0x80000000, 1, 0x7fffffff},
		{OpMul, 0x10000, 0x10000, 0},
		{OpDiv, 7, -2, -3},
		{OpDiv, 7, 0, 0},
		{OpRem, 7, 0, 0},
		{OpShl, 1, 33, 2}, // shift counts are mod 32
		{OpShr, -8, 1, -4},
		{OpShrU, -8, 1, 0x7ffffffc},
		{OpAbs, -5, 0, 5},
		{OpMin, -3, 2, -3},
		{OpMax, -3, 2, 2},
		{OpSAdd16, 30000, 10000, 32767},
		{OpSSub16, -30000, 10000, -32768},
		{OpSAdd32, 0x7fffffff, 10, 0x7fffffff},
		{OpSSub32, -0x80000000, 10, -0x80000000},
	}
	for _, c := range cases {
		got := EvalALU(c.opc, CmpEQ, c.a, c.b)
		if got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.opc, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUSignExtensionInvariant(t *testing.T) {
	ops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpShrU,
		OpMin, OpMax, OpSAdd16, OpSSub16, OpSAdd32, OpSSub32}
	f := func(a, b int32) bool {
		for _, opc := range ops {
			v := EvalALU(opc, CmpEQ, int64(a), int64(b))
			if v != W32(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSuccsAndVerify(t *testing.T) {
	f := NewFunc("t")
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	f.Entry = b1.ID
	r := f.NewReg()
	b1.Ops = append(b1.Ops,
		&Op{ID: f.NewOpID(), Opcode: OpBr, Cmp: CmpLT, Src: []Reg{r}, Imm: 5, HasImm: true, Target: b3.ID})
	b1.Fall = b2.ID
	b2.Ops = append(b2.Ops, &Op{ID: f.NewOpID(), Opcode: OpRet})
	b3.Ops = append(b3.Ops, &Op{ID: f.NewOpID(), Opcode: OpRet})

	succs := b1.Succs()
	if len(succs) != 2 || succs[0] != b3.ID || succs[1] != b2.ID {
		t.Fatalf("succs = %v", succs)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	preds := f.Preds()
	if len(preds[b3.ID]) != 1 || preds[b3.ID][0] != b1.ID {
		t.Fatalf("preds of b3: %v", preds[b3.ID])
	}
}

func TestVerifyCatchesBadTarget(t *testing.T) {
	f := NewFunc("t")
	b1 := f.NewBlock()
	f.Entry = b1.ID
	b1.Ops = append(b1.Ops, &Op{ID: f.NewOpID(), Opcode: OpJump, Target: 99})
	if err := f.Verify(); err == nil {
		t.Fatal("expected verify error for missing branch target")
	}
}

func TestVerifyCatchesMidBlockJump(t *testing.T) {
	f := NewFunc("t")
	b1 := f.NewBlock()
	f.Entry = b1.ID
	b1.Ops = append(b1.Ops,
		&Op{ID: f.NewOpID(), Opcode: OpJump, Target: b1.ID},
		&Op{ID: f.NewOpID(), Opcode: OpRet})
	if err := f.Verify(); err == nil {
		t.Fatal("expected verify error for mid-block unguarded jump")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFunc("t")
	b := f.NewBlock()
	f.Entry = b.ID
	r := f.NewReg()
	b.Ops = append(b.Ops,
		&Op{ID: f.NewOpID(), Opcode: OpMov, Dest: []Reg{r}, Imm: 1, HasImm: true},
		&Op{ID: f.NewOpID(), Opcode: OpRet, Src: []Reg{r}})
	c := f.Clone()
	c.Blocks[0].Ops[0].Imm = 42
	c.Blocks[0].Ops[1].Src[0] = Reg(99)
	if f.Blocks[0].Ops[0].Imm != 1 || f.Blocks[0].Ops[1].Src[0] != r {
		t.Fatal("clone shares op state with original")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := NewFunc("t")
	b1 := f.NewBlock()
	b2 := f.NewBlock() // unreachable
	f.Entry = b1.ID
	b1.Ops = append(b1.Ops, &Op{ID: f.NewOpID(), Opcode: OpRet})
	b2.Ops = append(b2.Ops, &Op{ID: f.NewOpID(), Opcode: OpRet})
	if n := f.RemoveUnreachable(); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if f.Block(b2.ID) != nil {
		t.Fatal("unreachable block still indexed")
	}
}

func TestProgramGlobalsLayout(t *testing.T) {
	p := NewProgram(16 << 10)
	o1, err1 := p.AddGlobal("a", 5, nil)
	o2, err2 := p.AddGlobal("b", 3, nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("AddGlobal errors: %v, %v", err1, err2)
	}
	if o1 != 4096 {
		t.Fatalf("first global at %d, want 4096 (null page reserved)", o1)
	}
	if o2 != 4104 {
		t.Fatalf("second global at %d, want 4104 (aligned)", o2)
	}
	if off, ok := p.GlobalOffset("b"); !ok || off != 4104 {
		t.Fatalf("GlobalOffset(b) = %d,%v", off, ok)
	}
}

func TestAddGlobalOverflowIsError(t *testing.T) {
	p := NewProgram(4100)
	if _, err := p.AddGlobal("big", 64, nil); err == nil {
		t.Fatal("expected overflow error, got nil")
	}
	if len(p.Globals) != 0 {
		t.Fatal("failed reservation must not be recorded")
	}
}

func TestOpRenameAndClone(t *testing.T) {
	op := &Op{Opcode: OpAdd, Dest: []Reg{1}, Src: []Reg{2, 3}, Guard: 4}
	op.PDest[0] = PredDest{Pred: 5, Type: PTUT}
	c := op.Clone(7)
	c.RenameUses(map[Reg]Reg{2: 20, 3: 30})
	c.RenameDefs(map[Reg]Reg{1: 10})
	c.RenamePreds(map[PredReg]PredReg{4: 40, 5: 50})
	if op.Src[0] != 2 || op.Dest[0] != 1 || op.Guard != 4 || op.PDest[0].Pred != 5 {
		t.Fatal("rename leaked into original")
	}
	if c.Src[0] != 20 || c.Src[1] != 30 || c.Dest[0] != 10 || c.Guard != 40 || c.PDest[0].Pred != 50 {
		t.Fatalf("rename incomplete: %v", c)
	}
}
