// Package irbuild provides a small builder DSL for constructing ir
// programs. The media benchmarks and most compiler tests are written
// against it.
package irbuild

import (
	"fmt"

	"lpbuf/internal/ir"
)

// Program wraps an ir.Program under construction.
type Program struct {
	P *ir.Program

	// err holds the first construction error (e.g. a global that
	// overflows program memory); Build reports it.
	err error
}

// NewProgram creates a program with the given data-memory size.
func NewProgram(memSize int64) *Program {
	return &Program{P: ir.NewProgram(memSize)}
}

// addGlobal records the first failing reservation; later offsets are
// returned as 0, which Build turns into an error before anything runs.
func (p *Program) addGlobal(name string, sz int64, init []byte) int64 {
	off, err := p.P.AddGlobal(name, sz, init)
	if err != nil && p.err == nil {
		p.err = err
	}
	return off
}

// Global reserves a named memory region and returns its offset.
func (p *Program) Global(name string, size int64, init []byte) int64 {
	return p.addGlobal(name, size, init)
}

// GlobalW reserves a region of n 32-bit words initialized from vals.
func (p *Program) GlobalW(name string, n int, vals []int32) int64 {
	buf := make([]byte, 4*n)
	for i, v := range vals {
		le32(buf[4*i:], uint32(v))
	}
	return p.addGlobal(name, int64(4*n), buf)
}

// GlobalH reserves a region of n 16-bit halfwords initialized from vals.
func (p *Program) GlobalH(name string, n int, vals []int16) int64 {
	buf := make([]byte, 2*n)
	for i, v := range vals {
		buf[2*i] = byte(v)
		buf[2*i+1] = byte(uint16(v) >> 8)
	}
	return p.addGlobal(name, int64(2*n), buf)
}

// GlobalB reserves a byte region initialized from vals.
func (p *Program) GlobalB(name string, n int, vals []byte) int64 {
	return p.addGlobal(name, int64(n), vals)
}

func le32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Func starts a new function with nparams parameters. The first block
// subsequently started becomes the entry.
func (p *Program) Func(name string, nparams int, hasRet bool) *Func {
	f := ir.NewFunc(name)
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, f.NewReg())
	}
	f.HasRet = hasRet
	p.P.AddFunc(f)
	return &Func{P: p, F: f, labels: map[string]*ir.Block{}}
}

// SetEntry names the program's entry function.
func (p *Program) SetEntry(name string) { p.P.Entry = name }

// Build verifies and returns the program.
func (p *Program) Build() (*ir.Program, error) {
	if p.err != nil {
		return nil, p.err
	}
	if err := p.P.Verify(); err != nil {
		return nil, err
	}
	return p.P, nil
}

// MustBuild is Build that panics on error (tests, fixed benchmarks).
func (p *Program) MustBuild() *ir.Program {
	prog, err := p.Build()
	if err != nil {
		panic(err)
	}
	return prog
}

// Func wraps an ir.Func under construction.
type Func struct {
	P   *Program
	F   *ir.Func
	cur *ir.Block

	labels map[string]*ir.Block
}

// Param returns the i-th parameter register.
func (f *Func) Param(i int) ir.Reg { return f.F.Params[i] }

// Reg allocates a fresh virtual register.
func (f *Func) Reg() ir.Reg { return f.F.NewReg() }

// Label returns (creating if needed) the block named name.
func (f *Func) label(name string) *ir.Block {
	if b, ok := f.labels[name]; ok {
		return b
	}
	b := f.F.NewBlock()
	b.Name = name
	f.labels[name] = b
	return b
}

// BlockID returns the ID of the named block, creating it if needed.
func (f *Func) BlockID(name string) ir.BlockID { return f.label(name).ID }

// Block starts (or resumes) the named block. If the previous current
// block has no terminator and no fallthrough yet, it falls through to
// this one. The first block started becomes the function entry.
func (f *Func) Block(name string) *Func {
	b := f.label(name)
	if f.cur != nil && f.cur != b && !f.cur.Terminated() && f.cur.Fall == 0 {
		f.cur.Fall = b.ID
	}
	if f.F.Entry == 0 {
		f.F.Entry = b.ID
	}
	f.cur = b
	return f
}

// Fall explicitly sets the current block's fallthrough.
func (f *Func) Fall(name string) *Func {
	f.cur.Fall = f.BlockID(name)
	return f
}

func (f *Func) emit(op *ir.Op) *ir.Op {
	if f.cur == nil {
		panic(fmt.Sprintf("irbuild: emit before Block() in %s", f.F.Name))
	}
	op.ID = f.F.NewOpID()
	f.cur.Ops = append(f.cur.Ops, op)
	return op
}

// Raw emits a pre-constructed op (assigning it a fresh ID).
func (f *Func) Raw(op *ir.Op) *ir.Op { return f.emit(op) }

// MovI emits d = imm.
func (f *Func) MovI(d ir.Reg, imm int64) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{d}, Imm: imm, HasImm: true})
}

// Mov emits d = s.
func (f *Func) Mov(d, s ir.Reg) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{d}, Src: []ir.Reg{s}})
}

// Const allocates a register holding imm.
func (f *Func) Const(imm int64) ir.Reg {
	d := f.Reg()
	f.MovI(d, imm)
	return d
}

// Bin emits d = a <op> b.
func (f *Func) Bin(opc ir.Opcode, d, a, b ir.Reg) *ir.Op {
	return f.emit(&ir.Op{Opcode: opc, Dest: []ir.Reg{d}, Src: []ir.Reg{a, b}})
}

// BinI emits d = a <op> imm.
func (f *Func) BinI(opc ir.Opcode, d, a ir.Reg, imm int64) *ir.Op {
	return f.emit(&ir.Op{Opcode: opc, Dest: []ir.Reg{d}, Src: []ir.Reg{a}, Imm: imm, HasImm: true})
}

// Arithmetic sugar.
func (f *Func) Add(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpAdd, d, a, b) }
func (f *Func) AddI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpAdd, d, a, imm) }
func (f *Func) Sub(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpSub, d, a, b) }
func (f *Func) SubI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpSub, d, a, imm) }
func (f *Func) Mul(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpMul, d, a, b) }
func (f *Func) MulI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpMul, d, a, imm) }
func (f *Func) Div(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpDiv, d, a, b) }
func (f *Func) DivI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpDiv, d, a, imm) }
func (f *Func) Rem(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpRem, d, a, b) }
func (f *Func) RemI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpRem, d, a, imm) }
func (f *Func) And(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpAnd, d, a, b) }
func (f *Func) AndI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpAnd, d, a, imm) }
func (f *Func) Or(d, a, b ir.Reg) *ir.Op           { return f.Bin(ir.OpOr, d, a, b) }
func (f *Func) OrI(d, a ir.Reg, imm int64) *ir.Op  { return f.BinI(ir.OpOr, d, a, imm) }
func (f *Func) Xor(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpXor, d, a, b) }
func (f *Func) XorI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpXor, d, a, imm) }
func (f *Func) Shl(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpShl, d, a, b) }
func (f *Func) ShlI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpShl, d, a, imm) }
func (f *Func) Shr(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpShr, d, a, b) }
func (f *Func) ShrI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpShr, d, a, imm) }
func (f *Func) ShrU(d, a, b ir.Reg) *ir.Op         { return f.Bin(ir.OpShrU, d, a, b) }
func (f *Func) ShrUI(d, a ir.Reg, imm int64) *ir.Op {
	return f.BinI(ir.OpShrU, d, a, imm)
}
func (f *Func) Abs(d, a ir.Reg) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpAbs, Dest: []ir.Reg{d}, Src: []ir.Reg{a}})
}
func (f *Func) Min(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpMin, d, a, b) }
func (f *Func) Max(d, a, b ir.Reg) *ir.Op          { return f.Bin(ir.OpMax, d, a, b) }
func (f *Func) MinI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpMin, d, a, imm) }
func (f *Func) MaxI(d, a ir.Reg, imm int64) *ir.Op { return f.BinI(ir.OpMax, d, a, imm) }
func (f *Func) SAdd16(d, a, b ir.Reg) *ir.Op       { return f.Bin(ir.OpSAdd16, d, a, b) }
func (f *Func) SSub16(d, a, b ir.Reg) *ir.Op       { return f.Bin(ir.OpSSub16, d, a, b) }
func (f *Func) SAdd32(d, a, b ir.Reg) *ir.Op       { return f.Bin(ir.OpSAdd32, d, a, b) }
func (f *Func) SSub32(d, a, b ir.Reg) *ir.Op       { return f.Bin(ir.OpSSub32, d, a, b) }

// CmpW emits d = (a cmp b) ? 1 : 0.
func (f *Func) CmpW(cmp ir.CmpKind, d, a, b ir.Reg) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpCmpW, Cmp: cmp, Dest: []ir.Reg{d}, Src: []ir.Reg{a, b}})
}

// CmpWI emits d = (a cmp imm) ? 1 : 0.
func (f *Func) CmpWI(cmp ir.CmpKind, d, a ir.Reg, imm int64) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpCmpW, Cmp: cmp, Dest: []ir.Reg{d},
		Src: []ir.Reg{a}, Imm: imm, HasImm: true})
}

// Sel emits d = cond != 0 ? a : b.
func (f *Func) Sel(d, cond, a, b ir.Reg) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpSel, Dest: []ir.Reg{d}, Src: []ir.Reg{cond, a, b}})
}

// Loads: d = mem[base+off].
func (f *Func) LdW(d, base ir.Reg, off int64) *ir.Op  { return f.load(ir.OpLdW, d, base, off) }
func (f *Func) LdH(d, base ir.Reg, off int64) *ir.Op  { return f.load(ir.OpLdH, d, base, off) }
func (f *Func) LdHU(d, base ir.Reg, off int64) *ir.Op { return f.load(ir.OpLdHU, d, base, off) }
func (f *Func) LdB(d, base ir.Reg, off int64) *ir.Op  { return f.load(ir.OpLdB, d, base, off) }
func (f *Func) LdBU(d, base ir.Reg, off int64) *ir.Op { return f.load(ir.OpLdBU, d, base, off) }

func (f *Func) load(opc ir.Opcode, d, base ir.Reg, off int64) *ir.Op {
	return f.emit(&ir.Op{Opcode: opc, Dest: []ir.Reg{d}, Src: []ir.Reg{base},
		Imm: off, HasImm: true})
}

// Stores: mem[base+off] = v.
func (f *Func) StW(base ir.Reg, off int64, v ir.Reg) *ir.Op { return f.store(ir.OpStW, base, off, v) }
func (f *Func) StH(base ir.Reg, off int64, v ir.Reg) *ir.Op { return f.store(ir.OpStH, base, off, v) }
func (f *Func) StB(base ir.Reg, off int64, v ir.Reg) *ir.Op { return f.store(ir.OpStB, base, off, v) }

func (f *Func) store(opc ir.Opcode, base ir.Reg, off int64, v ir.Reg) *ir.Op {
	return f.emit(&ir.Op{Opcode: opc, Src: []ir.Reg{base, v}, Imm: off, HasImm: true})
}

// CmpP emits a predicate define with up to two destinations.
func (f *Func) CmpP(d0 ir.PredReg, t0 ir.PType, d1 ir.PredReg, t1 ir.PType,
	cmp ir.CmpKind, a, b ir.Reg) *ir.Op {
	op := &ir.Op{Opcode: ir.OpCmpP, Cmp: cmp, Src: []ir.Reg{a, b}}
	op.PDest[0] = ir.PredDest{Pred: d0, Type: t0}
	op.PDest[1] = ir.PredDest{Pred: d1, Type: t1}
	return f.emit(op)
}

// CmpPI is CmpP with an immediate second comparand.
func (f *Func) CmpPI(d0 ir.PredReg, t0 ir.PType, d1 ir.PredReg, t1 ir.PType,
	cmp ir.CmpKind, a ir.Reg, imm int64) *ir.Op {
	op := &ir.Op{Opcode: ir.OpCmpP, Cmp: cmp, Src: []ir.Reg{a}, Imm: imm, HasImm: true}
	op.PDest[0] = ir.PredDest{Pred: d0, Type: t0}
	op.PDest[1] = ir.PredDest{Pred: d1, Type: t1}
	return f.emit(op)
}

// Br emits: if (a cmp b) goto label.
func (f *Func) Br(cmp ir.CmpKind, a, b ir.Reg, label string) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpBr, Cmp: cmp, Src: []ir.Reg{a, b},
		Target: f.BlockID(label)})
}

// BrI emits: if (a cmp imm) goto label.
func (f *Func) BrI(cmp ir.CmpKind, a ir.Reg, imm int64, label string) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpBr, Cmp: cmp, Src: []ir.Reg{a},
		Imm: imm, HasImm: true, Target: f.BlockID(label)})
}

// Jump emits an unconditional jump.
func (f *Func) Jump(label string) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpJump, Target: f.BlockID(label)})
}

// CLoop emits a counted loop-back branch: counter--; if counter > 0
// goto label.
func (f *Func) CLoop(counter ir.Reg, label string) *ir.Op {
	return f.emit(&ir.Op{Opcode: ir.OpBrCLoop, Dest: []ir.Reg{counter},
		Src: []ir.Reg{counter}, Target: f.BlockID(label), LoopBack: true})
}

// Call emits a call; d may be 0 for void calls.
func (f *Func) Call(d ir.Reg, callee string, args ...ir.Reg) *ir.Op {
	op := &ir.Op{Opcode: ir.OpCall, Callee: callee, Src: append([]ir.Reg(nil), args...)}
	if d != 0 {
		op.Dest = []ir.Reg{d}
	}
	return f.emit(op)
}

// Ret emits a return of v (0 for void).
func (f *Func) Ret(v ir.Reg) *ir.Op {
	op := &ir.Op{Opcode: ir.OpRet}
	if v != 0 {
		op.Src = []ir.Reg{v}
	}
	return f.emit(op)
}
