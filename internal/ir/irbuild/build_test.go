package irbuild

import (
	"testing"

	"lpbuf/internal/ir"
)

func TestAutoFallthrough(t *testing.T) {
	pb := NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("a")
	r := f.Const(1)
	f.Block("b") // a falls to b automatically
	f.AddI(r, r, 1)
	f.Ret(r)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	var a *ir.Block
	for _, blk := range fn.Blocks {
		if blk.Name == "a" {
			a = blk
		}
	}
	if a.Fall == 0 {
		t.Fatal("no automatic fallthrough")
	}
	if fn.Entry != a.ID {
		t.Fatal("first block is not the entry")
	}
}

func TestTerminatedBlockDoesNotFall(t *testing.T) {
	pb := NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("a")
	one := f.Const(1)
	f.Ret(one)
	f.Block("b")
	two := f.Const(2)
	f.Ret(two)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	for _, blk := range fn.Blocks {
		if blk.Name == "a" && blk.Fall != 0 {
			t.Fatal("ret-terminated block must not fall through")
		}
	}
}

func TestGlobalEncodings(t *testing.T) {
	pb := NewProgram(32 << 10)
	wOff := pb.GlobalW("w", 2, []int32{-1, 0x01020304})
	hOff := pb.GlobalH("h", 2, []int16{-2, 0x0506})
	bOff := pb.GlobalB("b", 2, []byte{7, 8})
	p := pb.P
	find := func(name string) ir.Global {
		for _, g := range p.Globals {
			if g.Name == name {
				return g
			}
		}
		t.Fatalf("missing global %s", name)
		return ir.Global{}
	}
	w := find("w")
	if w.Offset != wOff || w.Init[0] != 0xff || w.Init[4] != 0x04 || w.Init[7] != 0x01 {
		t.Fatalf("word encoding wrong: %v", w.Init)
	}
	h := find("h")
	if h.Offset != hOff || h.Init[0] != 0xfe || h.Init[2] != 0x06 || h.Init[3] != 0x05 {
		t.Fatalf("half encoding wrong: %v", h.Init)
	}
	bg := find("b")
	if bg.Offset != bOff || bg.Init[0] != 7 || bg.Init[1] != 8 {
		t.Fatalf("byte encoding wrong: %v", bg.Init)
	}
}

func TestBuildRejectsInvalidProgram(t *testing.T) {
	pb := NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("a")
	one := f.Const(1)
	f.Ret(one)
	// No entry set: Verify must fail.
	if _, err := pb.Build(); err == nil {
		t.Fatal("expected verify error without an entry")
	}
	pb.SetEntry("main")
	if _, err := pb.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestLabelIdentity(t *testing.T) {
	pb := NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	id1 := f.BlockID("target") // created before being started
	f.Block("a")
	one := f.Const(1)
	f.Jump("target")
	f.Block("target")
	f.Ret(one)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	for _, blk := range fn.Blocks {
		if blk.Name == "target" && blk.ID != id1 {
			t.Fatal("label did not resolve to the same block")
		}
	}
}

func TestBuildReportsGlobalOverflow(t *testing.T) {
	pb := NewProgram(4100) // null page leaves 4 bytes of room
	off := pb.Global("big", 64, nil)
	if off != 0 {
		t.Fatalf("failed reservation returned offset %d, want 0", off)
	}
	f := pb.Func("main", 0, true)
	f.Block("e")
	f.Ret(f.Const(0))
	pb.SetEntry("main")
	if _, err := pb.Build(); err == nil {
		t.Fatal("Build must surface the global-overflow error")
	}
}
