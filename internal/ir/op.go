// Package ir defines the compiler's intermediate representation: typed
// operations over virtual registers and virtual predicate registers,
// organized into basic blocks and functions with an explicit control
// flow graph.
//
// The representation follows the shape of the IMPACT compiler's Lcode as
// used by the reproduced paper: three-address operations, an optional
// guard predicate on every operation, explicit predicate-define
// operations with the HPL-PD destination types (Table 2 of the paper),
// compare-and-branch conditional branches in the 'C6x style, and a
// special counted-loop branch used by the loop buffer.
package ir

import (
	"fmt"
	"strings"
)

// Reg names a virtual integer register. Reg 0 is "no register".
type Reg int32

// PredReg names a virtual predicate register. PredReg 0 is the constant
// true predicate (an unguarded operation).
type PredReg int32

// BlockID names a basic block within a function. BlockID 0 is "none".
type BlockID int32

func (r Reg) String() string {
	if r == 0 {
		return "r?"
	}
	return fmt.Sprintf("r%d", int32(r))
}

func (p PredReg) String() string {
	if p == 0 {
		return "p0"
	}
	return fmt.Sprintf("p%d", int32(p))
}

// Opcode enumerates IR operations.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Data movement. Mov copies Src[0] (or Imm) to Dest[0].
	OpMov

	// Integer arithmetic and logic on the 32-bit datapath. Binary
	// operations read Src[0] and Src[1] (or Imm when HasImm).
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; traps-free (x/0 = 0 in this model)
	OpRem // signed; x%0 = 0
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr  // arithmetic (sign-propagating) right shift
	OpShrU // logical right shift

	// DSP intrinsics ("intrinsic emulation support" per the paper).
	OpAbs
	OpMin
	OpMax
	OpSAdd16 // saturating 16-bit add
	OpSSub16 // saturating 16-bit subtract
	OpSAdd32 // saturating 32-bit add
	OpSSub32 // saturating 32-bit subtract

	// OpCmpW writes the boolean result of (Src[0] Cmp Src[1]/Imm) to
	// Dest[0] as 0/1. Used by the partial-predication (cmov) baseline.
	OpCmpW
	// OpSel implements a conditional move: Dest[0] = Src[0] != 0 ?
	// Src[1] : Src[2].
	OpSel

	// Memory. Effective address is Src[0]+Imm for loads; stores write
	// Src[1] to Src[0]+Imm. Sub-word loads have signed and unsigned
	// variants.
	OpLdB
	OpLdBU
	OpLdH
	OpLdHU
	OpLdW
	OpStB
	OpStH
	OpStW

	// OpCmpP is a predicate define: it evaluates (Src[0] Cmp
	// Src[1]/Imm) under the guard and updates up to two predicate
	// destinations PDest[0], PDest[1] per their destination types.
	OpCmpP

	// Control flow. OpBr is a compare-and-branch ('C6x style): taken
	// when (Src[0] Cmp Src[1]/Imm). OpJump is unconditional (it may be
	// guarded, which is how hyperblock side exits are expressed).
	// OpBrCLoop decrements the counter in Src[0] (also Dest[0]) and
	// branches to Target while it remains positive.
	OpBr
	OpJump
	OpBrCLoop

	// OpCall transfers to Callee, passing Src values to the callee's
	// parameter registers; Dest[0], if set, receives the return value.
	// OpRet returns Src[0] (if present) to the caller.
	OpCall
	OpRet

	// Loop buffer management (Table 3 of the paper). These are
	// branch-unit operations inserted by the buffer-assignment pass.
	// BufAddr is the buffer offset, BufLen the operation count of the
	// buffered loop body.
	OpRecCLoop
	OpRecWLoop
	OpExecCLoop
	OpExecWLoop

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	OpNop: "nop", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpShrU: "shru",
	OpAbs: "abs", OpMin: "min", OpMax: "max",
	OpSAdd16: "sadd16", OpSSub16: "ssub16", OpSAdd32: "sadd32", OpSSub32: "ssub32",
	OpCmpW: "cmpw", OpSel: "sel",
	OpLdB: "ld.b", OpLdBU: "ld.bu", OpLdH: "ld.h", OpLdHU: "ld.hu", OpLdW: "ld.w",
	OpStB: "st.b", OpStH: "st.h", OpStW: "st.w",
	OpCmpP: "cmpp",
	OpBr:   "br", OpJump: "jump", OpBrCLoop: "br.cloop",
	OpCall: "call", OpRet: "ret",
	OpRecCLoop: "rec_cloop", OpRecWLoop: "rec_wloop",
	OpExecCLoop: "exec_cloop", OpExecWLoop: "exec_wloop",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// CmpKind enumerates comparison conditions.
type CmpKind uint8

const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpLTU
	CmpGEU
	CmpGTU
	CmpLEU
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu", "gtu", "leu"}

func (c CmpKind) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Negate returns the complementary comparison.
func (c CmpKind) Negate() CmpKind {
	switch c {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpGE:
		return CmpLT
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpLTU:
		return CmpGEU
	case CmpGEU:
		return CmpLTU
	case CmpGTU:
		return CmpLEU
	case CmpLEU:
		return CmpGTU
	}
	return c
}

// Swap returns the comparison with operands exchanged.
func (c CmpKind) Swap() CmpKind {
	switch c {
	case CmpLT:
		return CmpGT
	case CmpGT:
		return CmpLT
	case CmpLE:
		return CmpGE
	case CmpGE:
		return CmpLE
	case CmpLTU:
		return CmpGTU
	case CmpGTU:
		return CmpLTU
	case CmpLEU:
		return CmpGEU
	case CmpGEU:
		return CmpLEU
	}
	return c
}

// Eval evaluates the comparison on 32-bit values held in int64s.
func (c CmpKind) Eval(a, b int64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLTU:
		return uint32(a) < uint32(b)
	case CmpGEU:
		return uint32(a) >= uint32(b)
	case CmpGTU:
		return uint32(a) > uint32(b)
	case CmpLEU:
		return uint32(a) <= uint32(b)
	}
	return false
}

// PType is an HPL-PD / IMPACT predicate-define destination type
// (Table 2 of the paper).
type PType uint8

const (
	PTNone PType = iota
	PTUT         // unconditional true
	PTUF         // unconditional false
	PTOT         // wired-or true
	PTOF         // wired-or false
	PTAT         // wired-and true
	PTAF         // wired-and false
	PTCT         // conditional true
	PTCF         // conditional false
)

var ptypeNames = [...]string{"", "ut", "uf", "ot", "of", "at", "af", "ct", "cf"}

func (t PType) String() string {
	if int(t) < len(ptypeNames) {
		return ptypeNames[t]
	}
	return fmt.Sprintf("ptype(%d)", uint8(t))
}

// Update applies the Table 2 semantics: given the guard value and the
// comparison result, it returns the value to write and whether a write
// occurs at all.
func (t PType) Update(guard, cond bool) (value bool, write bool) {
	switch t {
	case PTUT:
		return guard && cond, true
	case PTUF:
		return guard && !cond, true
	case PTOT:
		return true, guard && cond
	case PTOF:
		return true, guard && !cond
	case PTAT:
		return false, guard && !cond
	case PTAF:
		return false, guard && cond
	case PTCT:
		return cond, guard
	case PTCF:
		return !cond, guard
	}
	return false, false
}

// PredDest is one destination of a predicate define.
type PredDest struct {
	Pred PredReg
	Type PType
}

// Op is a single IR operation. Fields beyond Opcode are interpreted per
// opcode; unused fields are zero.
type Op struct {
	ID     int
	Opcode Opcode

	Dest []Reg
	Src  []Reg
	Imm  int64
	// HasImm indicates the last source operand position is the
	// immediate Imm rather than a register.
	HasImm bool

	Cmp   CmpKind
	PDest [2]PredDest

	// Guard nullifies the operation when its predicate is false.
	// PredReg 0 means always execute.
	Guard PredReg

	Target BlockID
	// LoopBack marks a branch as the loop-back branch of its loop.
	LoopBack bool

	Callee string

	// BufAddr/BufLen parameterize loop-buffer operations, and on a
	// loop-back branch BufLen carries nothing; see loopbuffer.
	BufAddr int
	BufLen  int

	// Speculative marks an operation hoisted above a guard or branch
	// (predicate promotion / control speculation); it must not fault.
	Speculative bool
}

// IsBranch reports whether the op can transfer control to Target.
func (o *Op) IsBranch() bool {
	switch o.Opcode {
	case OpBr, OpJump, OpBrCLoop:
		return true
	}
	return false
}

// IsUncondJump reports an unguarded unconditional jump.
func (o *Op) IsUncondJump() bool {
	return o.Opcode == OpJump && o.Guard == 0
}

// IsLoad reports whether the op reads memory.
func (o *Op) IsLoad() bool {
	switch o.Opcode {
	case OpLdB, OpLdBU, OpLdH, OpLdHU, OpLdW:
		return true
	}
	return false
}

// IsStore reports whether the op writes memory.
func (o *Op) IsStore() bool {
	switch o.Opcode {
	case OpStB, OpStH, OpStW:
		return true
	}
	return false
}

// IsPredDefine reports whether the op defines predicate registers.
func (o *Op) IsPredDefine() bool { return o.Opcode == OpCmpP }

// IsBufferOp reports whether the op manages the loop buffer.
func (o *Op) IsBufferOp() bool {
	switch o.Opcode {
	case OpRecCLoop, OpRecWLoop, OpExecCLoop, OpExecWLoop:
		return true
	}
	return false
}

// MayTrap reports whether the operation could fault if executed with
// arbitrary operands (used by speculation legality checks). In this
// model loads may fault (out-of-range address) and stores always may.
func (o *Op) MayTrap() bool {
	return (o.IsLoad() && !o.Speculative) || o.IsStore()
}

// HasSideEffect reports whether the op affects state beyond its
// destination registers/predicates (memory, control, calls).
func (o *Op) HasSideEffect() bool {
	return o.IsStore() || o.IsBranch() || o.IsBufferOp() ||
		o.Opcode == OpCall || o.Opcode == OpRet
}

// PredDefines returns the active predicate destinations.
func (o *Op) PredDefines() []PredDest {
	var out []PredDest
	for _, pd := range o.PDest {
		if pd.Type != PTNone && pd.Pred != 0 {
			out = append(out, pd)
		}
	}
	return out
}

// UsedPreds returns predicate registers read by the op (guard plus, for
// defines, nothing extra: define destination types never read the old
// value under HPL-PD semantics).
func (o *Op) UsedPreds() []PredReg {
	if o.Guard != 0 {
		return []PredReg{o.Guard}
	}
	return nil
}

// Clone returns a deep copy of the op with the given new ID.
func (o *Op) Clone(id int) *Op {
	c := *o
	c.ID = id
	c.Dest = append([]Reg(nil), o.Dest...)
	c.Src = append([]Reg(nil), o.Src...)
	return &c
}

// RenameUses substitutes register uses via the map (identity when a
// register is absent).
func (o *Op) RenameUses(m map[Reg]Reg) {
	for i, r := range o.Src {
		if nr, ok := m[r]; ok {
			o.Src[i] = nr
		}
	}
}

// RenameDefs substitutes register definitions via the map.
func (o *Op) RenameDefs(m map[Reg]Reg) {
	for i, r := range o.Dest {
		if nr, ok := m[r]; ok {
			o.Dest[i] = nr
		}
	}
}

// RenamePreds substitutes predicate registers (guard and destinations).
func (o *Op) RenamePreds(m map[PredReg]PredReg) {
	if np, ok := m[o.Guard]; ok && o.Guard != 0 {
		o.Guard = np
	}
	for i := range o.PDest {
		if o.PDest[i].Type == PTNone {
			continue
		}
		if np, ok := m[o.PDest[i].Pred]; ok {
			o.PDest[i].Pred = np
		}
	}
}

// String renders the op in an assembly-like syntax.
func (o *Op) String() string {
	var b strings.Builder
	if o.Guard != 0 {
		fmt.Fprintf(&b, "(%s) ", o.Guard)
	}
	b.WriteString(o.Opcode.String())
	switch o.Opcode {
	case OpBr:
		fmt.Fprintf(&b, " %s", o.Cmp)
	case OpCmpP:
		b.WriteString(" ")
		for i, pd := range o.PredDefines() {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s_%s", pd.Pred, pd.Type)
		}
		fmt.Fprintf(&b, " = %s", o.Cmp)
	case OpCmpW:
		fmt.Fprintf(&b, " %s", o.Cmp)
	}
	first := true
	emit := func(s string) {
		if first {
			b.WriteString(" ")
			first = false
		} else {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}
	for _, d := range o.Dest {
		emit(d.String() + "=")
	}
	for _, s := range o.Src {
		emit(s.String())
	}
	if o.HasImm {
		emit(fmt.Sprintf("#%d", o.Imm))
	}
	if o.IsBranch() {
		emit(fmt.Sprintf("B%d", o.Target))
		if o.LoopBack {
			emit("<loopback>")
		}
	}
	if o.Opcode == OpCall {
		emit("@" + o.Callee)
	}
	if o.IsBufferOp() {
		emit(fmt.Sprintf("buf=%d len=%d", o.BufAddr, o.BufLen))
	}
	if o.Speculative {
		emit("<spec>")
	}
	return b.String()
}
