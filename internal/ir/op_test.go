package ir

import (
	"strings"
	"testing"

	"lpbuf/internal/machine"
)

func TestOpClassifiers(t *testing.T) {
	cases := []struct {
		op     Op
		branch bool
		load   bool
		store  bool
		side   bool
	}{
		{Op{Opcode: OpBr}, true, false, false, true},
		{Op{Opcode: OpJump}, true, false, false, true},
		{Op{Opcode: OpBrCLoop}, true, false, false, true},
		{Op{Opcode: OpLdW}, false, true, false, false},
		{Op{Opcode: OpLdBU}, false, true, false, false},
		{Op{Opcode: OpStH}, false, false, true, true},
		{Op{Opcode: OpCall}, false, false, false, true},
		{Op{Opcode: OpRet}, false, false, false, true},
		{Op{Opcode: OpAdd}, false, false, false, false},
		{Op{Opcode: OpRecCLoop}, false, false, false, true},
		{Op{Opcode: OpExecWLoop}, false, false, false, true},
	}
	for _, c := range cases {
		if c.op.IsBranch() != c.branch {
			t.Errorf("%s IsBranch = %v", c.op.Opcode, c.op.IsBranch())
		}
		if c.op.IsLoad() != c.load {
			t.Errorf("%s IsLoad = %v", c.op.Opcode, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%s IsStore = %v", c.op.Opcode, c.op.IsStore())
		}
		if c.op.HasSideEffect() != c.side {
			t.Errorf("%s HasSideEffect = %v", c.op.Opcode, c.op.HasSideEffect())
		}
	}
}

func TestMayTrap(t *testing.T) {
	ld := Op{Opcode: OpLdW}
	if !ld.MayTrap() {
		t.Fatal("loads may trap")
	}
	ld.Speculative = true
	if ld.MayTrap() {
		t.Fatal("speculative loads do not trap")
	}
	st := Op{Opcode: OpStW}
	if !st.MayTrap() {
		t.Fatal("stores may trap")
	}
	add := Op{Opcode: OpAdd}
	if add.MayTrap() {
		t.Fatal("adds do not trap")
	}
}

func TestIsUncondJump(t *testing.T) {
	j := Op{Opcode: OpJump}
	if !j.IsUncondJump() {
		t.Fatal("unguarded jump")
	}
	j.Guard = 3
	if j.IsUncondJump() {
		t.Fatal("guarded jump is conditional")
	}
}

func TestPredDefinesFiltering(t *testing.T) {
	op := Op{Opcode: OpCmpP}
	op.PDest[0] = PredDest{Pred: 1, Type: PTUT}
	op.PDest[1] = PredDest{Type: PTNone}
	if n := len(op.PredDefines()); n != 1 {
		t.Fatalf("PredDefines = %d, want 1", n)
	}
	op.PDest[1] = PredDest{Pred: 2, Type: PTOF}
	if n := len(op.PredDefines()); n != 2 {
		t.Fatalf("PredDefines = %d, want 2", n)
	}
}

func TestUsedPreds(t *testing.T) {
	op := Op{Opcode: OpAdd}
	if len(op.UsedPreds()) != 0 {
		t.Fatal("unguarded op uses no predicates")
	}
	op.Guard = 5
	got := op.UsedPreds()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("UsedPreds = %v", got)
	}
}

func TestOpStringFormats(t *testing.T) {
	op := &Op{Opcode: OpAdd, Dest: []Reg{1}, Src: []Reg{2}, Imm: 4, HasImm: true, Guard: 3}
	s := op.String()
	for _, want := range []string{"(p3)", "add", "r1=", "r2", "#4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q lacks %q", s, want)
		}
	}
	cp := &Op{Opcode: OpCmpP, Cmp: CmpLT, Src: []Reg{2}, Imm: 0, HasImm: true}
	cp.PDest[0] = PredDest{Pred: 1, Type: PTUT}
	cp.PDest[1] = PredDest{Pred: 2, Type: PTUF}
	s = cp.String()
	if !strings.Contains(s, "p1_ut") || !strings.Contains(s, "p2_uf") || !strings.Contains(s, "lt") {
		t.Fatalf("cmpp String %q", s)
	}
	br := &Op{Opcode: OpBrCLoop, Dest: []Reg{4}, Src: []Reg{4}, Target: 7, LoopBack: true}
	s = br.String()
	if !strings.Contains(s, "B7") || !strings.Contains(s, "loopback") {
		t.Fatalf("cloop String %q", s)
	}
}

func TestUnitForAndLatency(t *testing.T) {
	lat := machine.Default().Latency
	cases := []struct {
		opc  Opcode
		unit machine.UnitClass
		lat  int
	}{
		{OpAdd, machine.UnitIALU, 1},
		{OpMul, machine.UnitIMul, 2},
		{OpDiv, machine.UnitIMul, 8},
		{OpLdW, machine.UnitMem, 3},
		{OpStW, machine.UnitMem, 1},
		{OpBr, machine.UnitBranch, 1},
		{OpCmpP, machine.UnitPred, 1},
		{OpRecCLoop, machine.UnitBranch, 1},
		{OpSel, machine.UnitIALU, 1},
	}
	for _, c := range cases {
		op := &Op{Opcode: c.opc}
		if got := UnitFor(op); got != c.unit {
			t.Errorf("%s unit = %s, want %s", c.opc, got, c.unit)
		}
		if got := LatencyOf(op, lat); got != c.lat {
			t.Errorf("%s latency = %d, want %d", c.opc, got, c.lat)
		}
	}
}

func TestFuncStringSmoke(t *testing.T) {
	f := NewFunc("demo")
	b := f.NewBlock()
	f.Entry = b.ID
	r := f.NewReg()
	b.Ops = append(b.Ops,
		&Op{ID: f.NewOpID(), Opcode: OpMov, Dest: []Reg{r}, Imm: 9, HasImm: true},
		&Op{ID: f.NewOpID(), Opcode: OpRet, Src: []Reg{r}})
	s := f.String()
	if !strings.Contains(s, "func demo") || !strings.Contains(s, "mov") {
		t.Fatalf("Func String %q", s)
	}
}

func TestProgramVerifyCrossFunction(t *testing.T) {
	p := NewProgram(1 << 14)
	f := NewFunc("main")
	b := f.NewBlock()
	f.Entry = b.ID
	b.Ops = append(b.Ops,
		&Op{ID: f.NewOpID(), Opcode: OpCall, Callee: "missing"},
		&Op{ID: f.NewOpID(), Opcode: OpRet})
	p.AddFunc(f)
	p.Entry = "main"
	if err := p.Verify(); err == nil {
		t.Fatal("expected undefined-callee error")
	}
	// Arity mismatch.
	g := NewFunc("callee")
	gb := g.NewBlock()
	g.Entry = gb.ID
	g.Params = []Reg{g.NewReg(), g.NewReg()}
	gb.Ops = append(gb.Ops, &Op{ID: g.NewOpID(), Opcode: OpRet})
	p.AddFunc(g)
	b.Ops[0].Callee = "callee"
	b.Ops[0].Src = []Reg{1}
	if err := p.Verify(); err == nil {
		t.Fatal("expected arity error")
	}
}
