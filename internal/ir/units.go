package ir

import "lpbuf/internal/machine"

// UnitFor returns the functional-unit class required to execute op.
func UnitFor(op *Op) machine.UnitClass {
	switch op.Opcode {
	case OpMul, OpDiv, OpRem:
		return machine.UnitIMul
	case OpLdB, OpLdBU, OpLdH, OpLdHU, OpLdW, OpStB, OpStH, OpStW:
		return machine.UnitMem
	case OpBr, OpJump, OpBrCLoop, OpCall, OpRet,
		OpRecCLoop, OpRecWLoop, OpExecCLoop, OpExecWLoop:
		return machine.UnitBranch
	case OpCmpP:
		return machine.UnitPred
	default:
		return machine.UnitIALU
	}
}

// LatencyOf returns the result latency of op in cycles under lat.
func LatencyOf(op *Op, lat machine.Latencies) int {
	switch op.Opcode {
	case OpMul:
		return lat.IMul
	case OpDiv, OpRem:
		return lat.IDiv
	case OpLdB, OpLdBU, OpLdH, OpLdHU, OpLdW:
		return lat.Load
	case OpStB, OpStH, OpStW:
		return lat.Store
	case OpCmpP:
		return lat.Pred
	case OpBr, OpJump, OpBrCLoop, OpCall, OpRet:
		return lat.Branch
	default:
		return lat.IALU
	}
}
