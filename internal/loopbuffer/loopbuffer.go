// Package loopbuffer implements compile-time assignment of loops to
// the loop buffer (Sections 5 and 6): it identifies bufferable loop
// sections in the scheduled code, ranks them by profiled benefit, and
// chooses buffer offsets so that the hottest loops evict each other as
// little as possible. The runtime record/replay semantics of the
// Table 3 operations are modeled by the simulator from this plan.
package loopbuffer

import (
	"fmt"
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/profile"
	"lpbuf/internal/sched"
	"lpbuf/internal/vliw"
)

// candidate is a bufferable loop with its placement metrics.
type candidate struct {
	pl      *vliw.PlannedLoop
	weight  float64 // profiled iterations
	entries float64 // profiled entries
	benefit float64
	density float64
}

// Plan builds a buffer plan for the scheduled program.
func Plan(code *sched.Code, prof *profile.Profile, capacity int) *vliw.BufferPlan {
	plan := &vliw.BufferPlan{Capacity: capacity}
	var cands []*candidate

	for _, name := range code.Prog.Order {
		fc := code.Funcs[name]
		fp := prof.Funcs[name]
		for _, sec := range fc.Sections {
			pl := sectionLoop(fc, sec)
			if pl == nil {
				continue
			}
			if pl.Ops == 0 || pl.Ops > capacity {
				continue
			}
			c := &candidate{pl: pl}
			if blk := fc.F.Block(sec.Block); blk != nil {
				c.weight = blk.Weight
			}
			if fp != nil {
				c.entries = entriesInto(code, fc, sec.Block, fp)
			}
			if c.entries == 0 {
				c.entries = 1
			}
			if c.weight <= c.entries {
				continue // no reuse to exploit
			}
			c.benefit = (c.weight - c.entries) * float64(pl.Ops)
			c.density = c.benefit / float64(pl.Ops)
			cands = append(cands, c)
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].pl.Key() < cands[j].pl.Key()
	})

	// Greedy placement: each loop picks the offset minimizing the
	// density of overlapped, already-placed loops.
	type placed struct {
		off, ops int
		density  float64
	}
	var laid []placed
	for _, c := range cands {
		// Candidate offsets: 0 and the end of every placed interval.
		offs := []int{0}
		for _, p := range laid {
			if p.off+p.ops+c.pl.Ops <= capacity {
				offs = append(offs, p.off+p.ops)
			}
		}
		bestOff, bestCost := -1, 0.0
		for _, off := range offs {
			if off+c.pl.Ops > capacity {
				continue
			}
			cost := 0.0
			for _, p := range laid {
				if off < p.off+p.ops && p.off < off+c.pl.Ops {
					cost += p.density
				}
			}
			if bestOff < 0 || cost < bestCost {
				bestOff, bestCost = off, cost
			}
		}
		if bestOff < 0 {
			continue
		}
		c.pl.Offset = bestOff
		laid = append(laid, placed{off: bestOff, ops: c.pl.Ops, density: c.density})
		plan.Loops = append(plan.Loops, c.pl)
	}
	return plan
}

// sectionLoop recognizes a bufferable loop section and builds its
// PlannedLoop (offset filled in later).
func sectionLoop(fc *sched.FuncCode, sec *sched.BlockCode) *vliw.PlannedLoop {
	switch sec.Kind {
	case sched.KindKernel:
		return &vliw.PlannedLoop{
			Func:        fc.F.Name,
			StartBundle: sec.Start,
			EndBundle:   sec.Start + len(sec.Bundles),
			Ops:         sectionOps(sec),
			Counted:     true,
			Label:       loopLabel(fc, sec),
		}
	case sched.KindStraight:
		// A self-loop: its loop-back branch targets the section start.
		counted := false
		found := false
		for _, b := range sec.Bundles {
			for _, so := range b.Ops {
				if so.Op.LoopBack && so.Op.IsBranch() && so.TargetBundle == sec.Start {
					found = true
					counted = so.Op.Opcode == ir.OpBrCLoop
				}
			}
		}
		if !found {
			return nil
		}
		return &vliw.PlannedLoop{
			Func:        fc.F.Name,
			StartBundle: sec.Start,
			EndBundle:   sec.Start + len(sec.Bundles),
			Ops:         sectionOps(sec),
			Counted:     counted,
			Label:       loopLabel(fc, sec),
		}
	}
	return nil
}

// loopLabel names a loop by its source block label when available.
func loopLabel(fc *sched.FuncCode, sec *sched.BlockCode) string {
	if blk := fc.F.Block(sec.Block); blk != nil && blk.Name != "" {
		return fmt.Sprintf("%s:%s", fc.F.Name, blk.Name)
	}
	return fmt.Sprintf("%s:B%d", fc.F.Name, sec.Block)
}

func sectionOps(sec *sched.BlockCode) int {
	n := 0
	for _, b := range sec.Bundles {
		n += len(b.Ops)
	}
	return n
}

// entriesInto counts profiled entries into a block from outside itself.
func entriesInto(code *sched.Code, fc *sched.FuncCode, blk ir.BlockID, fp *profile.FuncProfile) float64 {
	var e float64
	for edge, cnt := range fp.Edge {
		if edge.To == blk && edge.From != blk {
			e += float64(cnt)
		}
	}
	return e
}
