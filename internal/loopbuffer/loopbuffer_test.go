package loopbuffer

import (
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/profile"
	"lpbuf/internal/sched"
)

// twoLoopProgram builds two sequential counted loops with different
// heats so placement priorities are observable.
func twoLoopProgram(hotTrips, coldTrips int64) *ir.Program {
	pb := irbuild.NewProgram(32 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	acc := f.Reg()
	f.MovI(acc, 0)
	c1 := f.Reg()
	f.MovI(c1, hotTrips)
	f.Block("hot")
	f.AddI(acc, acc, 1)
	f.AddI(acc, acc, 2)
	f.AddI(acc, acc, 3)
	f.CLoop(c1, "hot")
	f.Block("mid")
	c2 := f.Reg()
	f.MovI(c2, coldTrips)
	f.Block("cold")
	f.AddI(acc, acc, 5)
	f.SubI(acc, acc, 1)
	f.AddI(acc, acc, 0)
	f.CLoop(c2, "cold")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func planFor(t *testing.T, prog *ir.Program, capacity int) (*sched.Code, *profile.Profile) {
	t.Helper()
	prof := profile.New()
	if _, err := interp.Run(prog, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	prof.ApplyWeights(prog)
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return code, prof
}

func TestPlanPlacesBothWhenRoomy(t *testing.T) {
	prog := twoLoopProgram(1000, 100)
	code, prof := planFor(t, prog, 256)
	plan := Plan(code, prof, 256)
	if len(plan.Loops) != 2 {
		t.Fatalf("planned %d loops, want 2", len(plan.Loops))
	}
	// Non-overlapping placement when there is room.
	a, b := plan.Loops[0], plan.Loops[1]
	if a.Offset < b.Offset+b.Ops && b.Offset < a.Offset+a.Ops {
		t.Fatalf("loops overlap unnecessarily: %+v %+v", a, b)
	}
}

func TestPlanPrefersHotLoop(t *testing.T) {
	prog := twoLoopProgram(1000, 100)
	code, prof := planFor(t, prog, 256)
	plan := Plan(code, prof, 256)
	// The hottest loop is placed first (offset 0).
	var hot *struct {
		off  int
		iter float64
	}
	_ = hot
	first := plan.Loops[0]
	if first.Offset != 0 {
		t.Fatalf("first-placed loop at offset %d, want 0", first.Offset)
	}
}

func TestPlanSkipsOversizedLoops(t *testing.T) {
	prog := twoLoopProgram(1000, 100)
	code, prof := planFor(t, prog, 2) // nothing fits
	plan := Plan(code, prof, 2)
	if len(plan.Loops) != 0 {
		t.Fatalf("planned %d loops into 2 ops", len(plan.Loops))
	}
}

func TestPlanSkipsColdLoops(t *testing.T) {
	// A loop that runs once per entry has no reuse: not worth buffering.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	acc := f.Reg()
	c := f.Reg()
	f.MovI(acc, 0)
	f.MovI(c, 1) // single iteration
	f.Block("once")
	f.AddI(acc, acc, 1)
	f.CLoop(c, "once")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	prog := pb.MustBuild()
	code, prof := planFor(t, prog, 256)
	plan := Plan(code, prof, 256)
	if len(plan.Loops) != 0 {
		t.Fatalf("planned a single-iteration loop: %+v", plan.Loops)
	}
}

func TestLoopLabelUsesBlockName(t *testing.T) {
	prog := twoLoopProgram(50, 50)
	code, prof := planFor(t, prog, 256)
	plan := Plan(code, prof, 256)
	names := map[string]bool{}
	for _, pl := range plan.Loops {
		names[pl.Label] = true
	}
	if !names["main:hot"] || !names["main:cold"] {
		t.Fatalf("labels = %v, want main:hot and main:cold", names)
	}
}
