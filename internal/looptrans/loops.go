// Package looptrans implements loop analysis (dominators, natural
// loops, counted-loop recognition) and the paper's loop-shaping
// transformations: full loop peeling, predicated loop collapsing
// (Section 3, Figures 1 and 2) and conversion of counted loops to the
// special br.cloop form consumed by the loop buffer.
package looptrans

import (
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/profile"
)

// Loop describes one natural loop.
type Loop struct {
	Header ir.BlockID
	// Blocks is the loop body including the header.
	Blocks map[ir.BlockID]bool
	// Latches are blocks with a back edge to the header.
	Latches []ir.BlockID
	// Exits are edges leaving the loop: from a loop block to an
	// outside block.
	Exits []LoopExit
	// Parent is the immediately enclosing loop, if any.
	Parent *Loop
	// Children are loops nested directly inside this one.
	Children []*Loop
	// Depth is 1 for outermost loops.
	Depth int
}

// LoopExit is an edge leaving a loop.
type LoopExit struct {
	From, To ir.BlockID
}

// Contains reports whether the loop body includes block id.
func (l *Loop) Contains(id ir.BlockID) bool { return l.Blocks[id] }

// BlockIDs returns the loop's blocks in ascending order.
func (l *Loop) BlockIDs() []ir.BlockID {
	out := make([]ir.BlockID, 0, len(l.Blocks))
	for id := range l.Blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dominators computes the immediate-dominator-free dominance sets with
// the classic iterative bitvector algorithm. dom[b] contains every
// block dominating b (including b).
func Dominators(f *ir.Func) map[ir.BlockID]map[ir.BlockID]bool {
	all := map[ir.BlockID]bool{}
	for _, b := range f.Blocks {
		all[b.ID] = true
	}
	dom := map[ir.BlockID]map[ir.BlockID]bool{}
	for _, b := range f.Blocks {
		if b.ID == f.Entry {
			dom[b.ID] = map[ir.BlockID]bool{b.ID: true}
		} else {
			s := map[ir.BlockID]bool{}
			for id := range all {
				s[id] = true
			}
			dom[b.ID] = s
		}
	}
	preds := f.Preds()
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b.ID == f.Entry {
				continue
			}
			var inter map[ir.BlockID]bool
			for _, p := range preds[b.ID] {
				dp := dom[p]
				if inter == nil {
					inter = map[ir.BlockID]bool{}
					for id := range dp {
						inter[id] = true
					}
				} else {
					for id := range inter {
						if !dp[id] {
							delete(inter, id)
						}
					}
				}
			}
			if inter == nil {
				inter = map[ir.BlockID]bool{}
			}
			inter[b.ID] = true
			if len(inter) != len(dom[b.ID]) {
				dom[b.ID] = inter
				changed = true
				continue
			}
			for id := range inter {
				if !dom[b.ID][id] {
					dom[b.ID] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// FindLoops returns the function's natural loops with nesting
// relations, innermost loops first within the returned slice ordering
// by descending depth.
func FindLoops(f *ir.Func) []*Loop {
	f.RemoveUnreachable()
	dom := Dominators(f)
	preds := f.Preds()

	// Find back edges t->h (h dominates t); group by header.
	latches := map[ir.BlockID][]ir.BlockID{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if dom[b.ID][s] {
				latches[s] = append(latches[s], b.ID)
			}
		}
	}

	var loops []*Loop
	for header, ls := range latches {
		l := &Loop{Header: header, Blocks: map[ir.BlockID]bool{header: true}}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		l.Latches = ls
		// Natural loop body: blocks reaching a latch without passing
		// the header.
		var stack []ir.BlockID
		for _, t := range ls {
			if !l.Blocks[t] {
				l.Blocks[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range preds[n] {
				if !l.Blocks[p] {
					l.Blocks[p] = true
					stack = append(stack, p)
				}
			}
		}
		loops = append(loops, l)
	}

	// Exits.
	for _, l := range loops {
		for id := range l.Blocks {
			b := f.Block(id)
			for _, s := range b.Succs() {
				if !l.Blocks[s] {
					l.Exits = append(l.Exits, LoopExit{From: id, To: s})
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool {
			if l.Exits[i].From != l.Exits[j].From {
				return l.Exits[i].From < l.Exits[j].From
			}
			return l.Exits[i].To < l.Exits[j].To
		})
	}

	// Nesting: loop A is inside B if B contains A's header and A != B.
	// Pick the smallest containing loop as parent.
	for _, a := range loops {
		var parent *Loop
		for _, b := range loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			if b.Header == a.Header {
				continue // same-header loops were merged by grouping
			}
			if parent == nil || len(b.Blocks) < len(parent.Blocks) {
				parent = b
			}
		}
		a.Parent = parent
		if parent != nil {
			parent.Children = append(parent.Children, a)
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth > loops[j].Depth // innermost first
		}
		return loops[i].Header < loops[j].Header
	})
	return loops
}

// Counted describes a recognized counted loop whose body is a single
// block: the induction register i starts at Init (when InitKnown),
// advances by Step once per iteration, and the bottom-test back edge is
// `br Cmp i, Bound -> header`. The loop is bottom-tested: the body runs
// at least once.
type Counted struct {
	Loop *Loop
	// Body is the single body block (== header).
	Body ir.BlockID
	// IndVar is the induction register.
	IndVar ir.Reg
	// Step is the literal increment applied once per iteration.
	Step int64
	// IncIdx is the index of the increment op within the body.
	IncIdx int
	// BrIdx is the index of the back-edge branch (last op).
	BrIdx int
	// Cmp and Bound describe the continuation test `i Cmp Bound`.
	Cmp ir.CmpKind
	// BoundImm is valid when BoundIsImm; otherwise BoundReg holds a
	// register that must be loop-invariant.
	BoundIsImm bool
	BoundImm   int64
	BoundReg   ir.Reg
	// Init/InitKnown: literal initial value found in the preheader.
	Init      int64
	InitKnown bool
	// Preheader is the unique out-of-loop predecessor of the header.
	Preheader ir.BlockID
}

// Trips returns the compile-time iteration count if fully literal.
func (c *Counted) Trips() (int64, bool) {
	if !c.InitKnown || !c.BoundIsImm || c.Step == 0 {
		return 0, false
	}
	// Bottom-tested: body runs once, then i advances, then test.
	n := int64(0)
	i := c.Init
	for {
		n++
		if n > 1<<20 {
			return 0, false
		}
		i = ir.W32(i + c.Step)
		if !c.Cmp.Eval(i, c.BoundImm) {
			return n, true
		}
	}
}

// DetectCounted recognizes the counted-loop pattern for a single-block
// loop. Returns nil when the loop does not match.
func DetectCounted(f *ir.Func, l *Loop) *Counted {
	if len(l.Blocks) != 1 || len(l.Latches) != 1 || l.Latches[0] != l.Header {
		return nil
	}
	b := f.Block(l.Header)
	if b == nil || len(b.Ops) == 0 {
		return nil
	}
	br := b.Ops[len(b.Ops)-1]
	if br.Opcode != ir.OpBr || br.Guard != 0 || br.Target != l.Header {
		return nil
	}
	// No other branches in the body, except guarded side-exit jumps
	// (hyperblock side exits): a counted loop with side exits still
	// converts to br.cloop correctly — an exit simply abandons the
	// remaining count.
	for _, op := range b.Ops[:len(b.Ops)-1] {
		if op.Opcode == ir.OpJump && op.Guard != 0 && op.Target != b.ID {
			continue
		}
		if op.IsBranch() || op.Opcode == ir.OpCall || op.Opcode == ir.OpRet {
			return nil
		}
	}
	if len(br.Src) < 1 {
		return nil
	}
	c := &Counted{Loop: l, Body: b.ID, IndVar: br.Src[0], Cmp: br.Cmp,
		BrIdx: len(b.Ops) - 1}
	if br.HasImm {
		c.BoundIsImm = true
		c.BoundImm = br.Imm
	} else {
		if len(br.Src) != 2 {
			return nil
		}
		c.BoundReg = br.Src[1]
	}
	// Exactly one def of IndVar in the body: `add i = i, step`.
	incIdx := -1
	for i, op := range b.Ops[:len(b.Ops)-1] {
		for _, d := range op.Dest {
			if d == c.IndVar {
				if incIdx >= 0 {
					return nil
				}
				if op.Opcode != ir.OpAdd && op.Opcode != ir.OpSub {
					return nil
				}
				if op.Guard != 0 || !op.HasImm || len(op.Src) != 1 || op.Src[0] != c.IndVar {
					return nil
				}
				incIdx = i
				c.Step = op.Imm
				if op.Opcode == ir.OpSub {
					c.Step = -c.Step
				}
			}
		}
	}
	if incIdx < 0 || c.Step == 0 {
		return nil
	}
	// The increment must precede the back-edge test and no op between
	// increment and branch may redefine the bound register.
	c.IncIdx = incIdx
	if !c.BoundIsImm {
		for id := range l.Blocks {
			for _, op := range f.Block(id).Ops {
				for _, d := range op.Dest {
					if d == c.BoundReg {
						return nil // bound not loop-invariant
					}
				}
			}
		}
	}
	// Unique preheader.
	preds := f.Preds()
	var outer []ir.BlockID
	for _, p := range preds[l.Header] {
		if !l.Blocks[p] {
			outer = append(outer, p)
		}
	}
	if len(outer) != 1 {
		return nil
	}
	c.Preheader = outer[0]
	// Find a literal init in the preheader: last def of IndVar must be
	// an unguarded mov-immediate.
	pre := f.Block(c.Preheader)
	for i := len(pre.Ops) - 1; i >= 0; i-- {
		op := pre.Ops[i]
		wrote := false
		for _, d := range op.Dest {
			if d == c.IndVar {
				wrote = true
			}
		}
		if !wrote {
			continue
		}
		if op.Opcode == ir.OpMov && op.Guard == 0 && op.HasImm && len(op.Src) == 0 {
			c.Init = op.Imm
			c.InitKnown = true
		}
		break
	}
	return c
}

// AvgTripsFromProfile computes a loop's average trip count per entry
// from profiled edge counts: header executions divided by entry-edge
// traversals.
func AvgTripsFromProfile(fp *profile.FuncProfile, f *ir.Func, l *Loop) float64 {
	if fp == nil {
		return AvgTrips(f, l)
	}
	header := float64(fp.Block[l.Header])
	if header == 0 {
		return 0
	}
	preds := f.Preds()
	entries := 0.0
	for _, p := range preds[l.Header] {
		if !l.Blocks[p] {
			entries += float64(fp.Edge[profile.Edge{From: p, To: l.Header}])
		}
	}
	if entries == 0 {
		return header
	}
	return header / entries
}

// AvgTrips estimates a loop's average trip count per entry from block
// weights alone (an approximation used when no edge profile exists):
// header executions divided by total external-predecessor weight.
func AvgTrips(f *ir.Func, l *Loop) float64 {
	header := f.Block(l.Header)
	if header == nil || header.Weight == 0 {
		return 0
	}
	preds := f.Preds()
	entries := 0.0
	backs := 0.0
	for _, p := range preds[l.Header] {
		pb := f.Block(p)
		if pb == nil {
			continue
		}
		if l.Blocks[p] {
			backs += pb.Weight
		} else {
			entries += pb.Weight
		}
	}
	_ = backs
	if entries == 0 {
		return header.Weight
	}
	return header.Weight / entries
}
