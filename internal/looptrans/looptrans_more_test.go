package looptrans

import (
	"bytes"
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/profile"
)

// filterNest builds a 40x10 MAC nest (the shape of an LPC filter):
// too many absorbed ops for collapsing's cost model, but a perfect
// full-unroll candidate.
func filterNest() *ir.Program {
	pb := irbuild.NewProgram(32 << 10)
	coef := make([]int32, 10)
	for i := range coef {
		coef[i] = int32(i*7 - 30)
	}
	cOff := pb.GlobalW("coef", 10, coef)
	in := make([]int32, 50)
	for i := range in {
		in[i] = int32(i * 13 % 101)
	}
	inOff := pb.GlobalW("in", 50, in)
	outOff := pb.GlobalW("out", 40, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	cB := f.Const(cOff)
	inB := f.Const(inOff)
	outB := f.Const(outOff)
	n := f.Reg()
	f.MovI(n, 0)
	f.Block("outer")
	acc := f.Reg()
	k := f.Reg()
	pc := f.Reg()
	pv := f.Reg()
	f.MovI(acc, 0)
	f.MovI(k, 0)
	f.Mov(pc, cB)
	t := f.Reg()
	f.ShlI(t, n, 2)
	f.Add(pv, inB, t)
	f.Block("inner")
	cv := f.Reg()
	vv := f.Reg()
	m := f.Reg()
	f.LdW(cv, pc, 0)
	f.LdW(vv, pv, 0)
	f.Mul(m, cv, vv)
	f.Add(acc, acc, m)
	f.AddI(pc, pc, 4)
	f.AddI(pv, pv, 4)
	f.AddI(k, k, 1)
	f.BrI(ir.CmpLT, k, 10, "inner")
	f.Block("latch")
	po := f.Reg()
	t2 := f.Reg()
	f.ShlI(t2, n, 2)
	f.Add(po, outB, t2)
	f.StW(po, 0, acc)
	f.AddI(n, n, 1)
	f.BrI(ir.CmpLT, n, 40, "outer")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestUnrollFlattensFilterNest(t *testing.T) {
	want := mustRun(t, filterNest())

	p := filterNest()
	f := p.Funcs["main"]
	if n := UnrollAll(f, Options{}); n != 1 {
		t.Fatalf("unrolled %d loops, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("%d loops after unroll, want 1 (flattened)", len(loops))
	}
	if !bytes.Equal(want, mustRun(t, p)) {
		t.Fatal("unroll changed behaviour")
	}
	// The flat body should now carry the ~10x expanded MAC chain.
	total := 0
	for id := range loops[0].Blocks {
		total += len(f.Block(id).Ops)
	}
	if total < 60 {
		t.Fatalf("flattened loop body has %d ops, expected the unrolled taps", total)
	}
}

func TestCollapseCostModelRejectsFilterNest(t *testing.T) {
	// The same nest absorbs too many outer ops per iteration: the
	// paper's "can the inner schedule accommodate it" check must reject
	// collapsing (full unrolling is the right transform here).
	p := filterNest()
	f := p.Funcs["main"]
	if n := CollapseAll(f, Options{}); n != 0 {
		t.Fatalf("collapsed %d loops, want 0 (cost model)", n)
	}
}

func TestCollapseAcceptsCheapNest(t *testing.T) {
	// The Figure 2 shape (3 absorbed ops) must still collapse.
	p := addBlockProgram()
	f := p.Funcs["main"]
	if n := CollapseAll(f, Options{}); n != 1 {
		t.Fatalf("collapsed %d loops, want 1", n)
	}
}

func TestUnrollRespectsTripLimit(t *testing.T) {
	p := filterNest()
	f := p.Funcs["main"]
	if n := UnrollAll(f, Options{MaxUnrollTrips: 8}); n != 0 {
		t.Fatalf("unrolled a 10-trip loop with MaxUnrollTrips=8")
	}
}

func TestUnrollRespectsOpBudget(t *testing.T) {
	p := filterNest()
	f := p.Funcs["main"]
	if n := UnrollAll(f, Options{MaxUnrollOps: 20}); n != 0 {
		t.Fatal("unrolled past the op budget")
	}
}

func TestUnrollSkipsTopLevelLoops(t *testing.T) {
	// A loop with no parent is never "flattened into" anything.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("loop")
	f.Add(acc, acc, i)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 8, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	p := pb.MustBuild()
	if n := UnrollAll(p.Funcs["main"], Options{}); n != 0 {
		t.Fatal("unrolled a top-level loop")
	}
}

func TestAvgTripsFromProfile(t *testing.T) {
	p := addBlockProgram()
	prof := profile.New()
	if _, err := interp.Run(p, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	prof.ApplyWeights(p)
	f := p.Funcs["main"]
	loops := FindLoops(f)
	inner := loops[0]
	got := AvgTripsFromProfile(prof.Funcs["main"], f, inner)
	if got < 7.9 || got > 8.1 {
		t.Fatalf("inner avg trips = %v, want ~8", got)
	}
	outer := loops[1]
	got = AvgTripsFromProfile(prof.Funcs["main"], f, outer)
	if got < 7.9 || got > 8.1 {
		t.Fatalf("outer avg trips = %v, want ~8", got)
	}
}

func TestMarkLoopBacks(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	f.MovI(i, 0)
	f.Block("loop")
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 5, "loop")
	f.Block("done")
	f.Ret(i)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	if n := MarkLoopBacks(fn); n != 1 {
		t.Fatalf("marked %d, want 1", n)
	}
	// Idempotent.
	if n := MarkLoopBacks(fn); n != 0 {
		t.Fatalf("re-marked %d", n)
	}
}

func TestDominators(t *testing.T) {
	p := addBlockProgram()
	f := p.Funcs["main"]
	dom := Dominators(f)
	// The entry dominates everything.
	for _, b := range f.Blocks {
		if !dom[b.ID][f.Entry] {
			t.Fatalf("entry does not dominate B%d", b.ID)
		}
		if !dom[b.ID][b.ID] {
			t.Fatalf("B%d does not dominate itself", b.ID)
		}
	}
	// The inner loop's block is dominated by the outer header.
	loops := FindLoops(f)
	inner, outer := loops[0], loops[1]
	if !dom[inner.Header][outer.Header] {
		t.Fatal("outer header should dominate the inner header")
	}
}

func TestCountedTripsEdgeCases(t *testing.T) {
	c := &Counted{Cmp: ir.CmpLT, BoundIsImm: true, BoundImm: 8,
		Init: 0, InitKnown: true, Step: 1}
	if trips, ok := c.Trips(); !ok || trips != 8 {
		t.Fatalf("trips = %d,%v", trips, ok)
	}
	// Bottom-tested loop with init beyond bound still runs once.
	c = &Counted{Cmp: ir.CmpLT, BoundIsImm: true, BoundImm: 0,
		Init: 5, InitKnown: true, Step: 1}
	if trips, ok := c.Trips(); !ok || trips != 1 {
		t.Fatalf("degenerate trips = %d,%v, want 1", trips, ok)
	}
	// LE bound includes the endpoint.
	c = &Counted{Cmp: ir.CmpLE, BoundIsImm: true, BoundImm: 8,
		Init: 0, InitKnown: true, Step: 2}
	if trips, ok := c.Trips(); !ok || trips != 5 {
		t.Fatalf("LE trips = %d,%v, want 5", trips, ok)
	}
	// Unknown init: no literal trips.
	c = &Counted{Cmp: ir.CmpLT, BoundIsImm: true, BoundImm: 8, Step: 1}
	if _, ok := c.Trips(); ok {
		t.Fatal("trips computed without a known init")
	}
}
