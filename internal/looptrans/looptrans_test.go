package looptrans

import (
	"bytes"
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// addBlockProgram builds the Figure 2 mpeg2dec Add_Block()-style loop:
//
//	for (i = 0; i < 8; i++) {
//	    for (j = 0; j < 8; j++) { *rfp++ = Clip[*bp++ + 128]; }
//	    rfp += incr;
//	}
func addBlockProgram() *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	clip := make([]byte, 1024)
	for i := range clip {
		v := i - 384 // clip table centered so [x+128+256] clamps x to 0..255
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		clip[i] = byte(v)
	}
	clipOff := pb.GlobalB("Clip", 1024, clip)
	bpOff := pb.GlobalB("bp", 64, func() []byte {
		b := make([]byte, 64)
		for i := range b {
			b[i] = byte(i*7 - 100)
		}
		return b
	}())
	rfpOff := pb.GlobalB("rfp", 256, nil)

	f := pb.Func("main", 0, false)
	f.Block("pre")
	i := f.Reg()
	bp := f.Const(bpOff)
	rfp := f.Const(rfpOff)
	clipBase := f.Const(clipOff + 256 + 128) // bias folded into base
	incr := f.Const(8)
	f.MovI(i, 0)
	f.Block("outer")
	j := f.Reg()
	f.MovI(j, 0)
	f.Block("inner")
	v := f.Reg()
	f.LdB(v, bp, 0)
	cv := f.Reg()
	addr := f.Reg()
	f.Add(addr, clipBase, v)
	f.LdBU(cv, addr, 0)
	f.StB(rfp, 0, cv)
	f.AddI(bp, bp, 1)
	f.AddI(rfp, rfp, 1)
	f.AddI(j, j, 1)
	f.BrI(ir.CmpLT, j, 8, "inner")
	f.Block("latch")
	f.Add(rfp, rfp, incr)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 8, "outer")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func mustRun(t *testing.T, p *ir.Program) []byte {
	t.Helper()
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, p.Funcs["main"])
	}
	return res.Mem
}

func TestFindLoopsNesting(t *testing.T) {
	p := addBlockProgram()
	f := p.Funcs["main"]
	loops := FindLoops(f)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	inner, outer := loops[0], loops[1]
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("depths: inner=%d outer=%d", inner.Depth, outer.Depth)
	}
	if inner.Parent != outer {
		t.Fatal("inner loop's parent is not the outer loop")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Fatal("outer loop does not list inner as child")
	}
	if len(inner.Blocks) != 1 {
		t.Fatalf("inner loop has %d blocks, want 1", len(inner.Blocks))
	}
	if len(outer.Blocks) != 3 {
		t.Fatalf("outer loop has %d blocks, want 3", len(outer.Blocks))
	}
}

func TestDetectCounted(t *testing.T) {
	p := addBlockProgram()
	f := p.Funcs["main"]
	loops := FindLoops(f)
	c := DetectCounted(f, loops[0])
	if c == nil {
		t.Fatal("inner loop not detected as counted")
	}
	if c.Step != 1 || !c.InitKnown || c.Init != 0 || !c.BoundIsImm || c.BoundImm != 8 {
		t.Fatalf("counted fields: %+v", c)
	}
	trips, ok := c.Trips()
	if !ok || trips != 8 {
		t.Fatalf("trips = %d,%v want 8", trips, ok)
	}
}

func TestCollapsePreservesSemantics(t *testing.T) {
	orig := addBlockProgram()
	want := mustRun(t, orig)

	p := addBlockProgram()
	f := p.Funcs["main"]
	n := CollapseAll(f, Options{})
	if n != 1 {
		t.Fatalf("collapsed %d loops, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after collapse: %v\n%s", err, f)
	}
	// The result must be a single-block self loop ending in br.cloop.
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("%d loops after collapse, want 1", len(loops))
	}
	if len(loops[0].Blocks) != 1 {
		t.Fatalf("collapsed loop has %d blocks", len(loops[0].Blocks))
	}
	body := f.Block(loops[0].Header)
	if last := body.LastOp(); last.Opcode != ir.OpBrCLoop {
		t.Fatalf("collapsed loop ends with %s, want br.cloop", last)
	}
	got := mustRun(t, p)
	if !bytes.Equal(want, got) {
		t.Fatal("collapse changed program behaviour")
	}
}

func TestPeelPreservesSemantics(t *testing.T) {
	// A 4-iteration inner loop qualifies for peeling (< 6 trips).
	build := func() *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		out := pb.GlobalB("out", 256, nil)
		f := pb.Func("main", 0, false)
		f.Block("pre")
		i := f.Reg()
		ptr := f.Const(out)
		acc := f.Reg()
		f.MovI(i, 0)
		f.MovI(acc, 0)
		f.Block("outer")
		j := f.Reg()
		f.MovI(j, 0)
		f.Block("inner")
		f.Add(acc, acc, i)
		f.Add(acc, acc, j)
		f.AddI(j, j, 1)
		f.BrI(ir.CmpLT, j, 4, "inner")
		f.Block("latch")
		f.StW(ptr, 0, acc)
		f.AddI(ptr, ptr, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, 10, "outer")
		f.Block("done")
		f.Ret(0)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	want := mustRun(t, build())

	p := build()
	f := p.Funcs["main"]
	n := PeelAll(f, Options{})
	if n != 1 {
		t.Fatalf("peeled %d loops, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after peel: %v", err)
	}
	// Only the outer loop remains.
	if loops := FindLoops(f); len(loops) != 1 {
		t.Fatalf("%d loops after peel, want 1", len(loops))
	}
	if !bytes.Equal(want, mustRun(t, p)) {
		t.Fatal("peel changed program behaviour")
	}
}

func TestPeelRespectsOpBudget(t *testing.T) {
	p := addBlockProgram() // 8 iterations: not peelable (>= 6 trips)
	f := p.Funcs["main"]
	if n := PeelAll(f, Options{}); n != 0 {
		t.Fatalf("peeled %d loops, want 0 (trip count too high)", n)
	}
}

func TestCLoopify(t *testing.T) {
	// Simple counted loop with literal bounds becomes br.cloop.
	build := func() *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		out := pb.GlobalB("out", 128, nil)
		f := pb.Func("main", 0, true)
		f.Block("pre")
		i := f.Reg()
		acc := f.Reg()
		ptr := f.Const(out)
		f.MovI(i, 0)
		f.MovI(acc, 0)
		f.Block("loop")
		f.Add(acc, acc, i)
		f.StW(ptr, 0, acc)
		f.AddI(ptr, ptr, 4)
		f.AddI(i, i, 1)
		f.BrI(ir.CmpLT, i, 13, "loop")
		f.Block("done")
		f.Ret(acc)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	orig := build()
	refRes, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	p := build()
	f := p.Funcs["main"]
	if n := CLoopifyAll(f); n != 1 {
		t.Fatalf("cloopified %d, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != refRes.Ret {
		t.Fatalf("ret changed: %d -> %d", refRes.Ret, res.Ret)
	}
	if !bytes.Equal(res.Mem, refRes.Mem) {
		t.Fatal("memory changed by cloopify")
	}
}

func TestCLoopifyRegisterBound(t *testing.T) {
	// Loop bound in a register (loop-invariant): trip computation is
	// emitted in the preheader.
	build := func(n int64) *ir.Program {
		pb := irbuild.NewProgram(16 << 10)
		f := pb.Func("main", 1, true)
		f.Block("pre")
		i := f.Reg()
		acc := f.Reg()
		f.MovI(i, 0)
		f.MovI(acc, 0)
		f.Block("loop")
		f.Add(acc, acc, i)
		f.AddI(i, i, 1)
		f.Br(ir.CmpLT, i, f.Param(0), "loop")
		f.Block("done")
		f.Ret(acc)
		pb.SetEntry("main")
		return pb.MustBuild()
	}
	for _, n := range []int64{1, 2, 7, 100} {
		orig := build(n)
		ref, err := interp.Run(orig, interp.Options{EntryArgs: []int64{n}})
		if err != nil {
			t.Fatal(err)
		}
		p := build(n)
		f := p.Funcs["main"]
		if cn := CLoopifyAll(f); cn != 1 {
			t.Fatalf("n=%d: cloopified %d, want 1", n, cn)
		}
		res, err := interp.Run(p, interp.Options{EntryArgs: []int64{n}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != ref.Ret {
			t.Fatalf("n=%d: ret %d -> %d", n, ref.Ret, res.Ret)
		}
	}
}

func TestCollapsedAddBlockMatchesFigure2Shape(t *testing.T) {
	// After collapsing, the loop body should contain the guarded
	// outer-loop ops and a predicate define, per Figure 2(c)/(d).
	p := addBlockProgram()
	f := p.Funcs["main"]
	if n := CollapseAll(f, Options{}); n != 1 {
		t.Fatal("collapse failed")
	}
	loops := FindLoops(f)
	body := f.Block(loops[0].Header)
	guarded, defines := 0, 0
	for _, op := range body.Ops {
		if op.Guard != 0 {
			guarded++
		}
		if op.IsPredDefine() {
			defines++
		}
	}
	if guarded < 3 {
		t.Fatalf("collapsed body has %d guarded ops, want >= 3 (outer code + reset)", guarded)
	}
	if defines != 1 {
		t.Fatalf("collapsed body has %d predicate defines, want 1", defines)
	}
	// 64 total iterations via br.cloop: counter initialized to 64.
	pre := f.Block(f.Entry)
	found := false
	for _, op := range pre.Ops {
		if op.Opcode == ir.OpMov && op.HasImm && op.Imm == 64 {
			found = true
		}
	}
	// The counter init may live in the A-block (outer header) instead.
	if !found {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Opcode == ir.OpMov && op.HasImm && op.Imm == 64 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no 64-iteration counter initialization found")
	}
}
