package looptrans

import (
	"lpbuf/internal/ir"
)

// Options tune the transformation heuristics. Zero values select the
// paper's defaults.
type Options struct {
	// MaxPeelTrips: peel counted loops with fewer than this many
	// iterations (paper: 6).
	MaxPeelTrips int64
	// MaxPeelOps: only peel when peeling creates at most this many new
	// operations (paper: 36).
	MaxPeelOps int
	// MaxCollapseOuterOps bounds the operation count absorbed from the
	// outer loop (blocks A and F) into the inner body.
	MaxCollapseOuterOps int
	// MaxCollapseInnerTrips bounds the inner loop's iteration count for
	// collapsing ("not excessive" per the paper).
	MaxCollapseInnerTrips int64
	// Width is the machine issue width used by the collapse cost model.
	Width int
	// MaxUnrollTrips / MaxUnrollOps bound full unrolling of counted
	// inner loops (the paper's "unrolling" transform: flattening a
	// short fixed-count inner filter loop into its parent, which is
	// how the 36-49 op flat loops of Figure 5 arise from 10-tap
	// filter nests).
	MaxUnrollTrips int64
	MaxUnrollOps   int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.MaxPeelTrips == 0 {
		o.MaxPeelTrips = 6
	}
	if o.MaxPeelOps == 0 {
		o.MaxPeelOps = 36
	}
	if o.MaxCollapseOuterOps == 0 {
		o.MaxCollapseOuterOps = 24
	}
	if o.MaxCollapseInnerTrips == 0 {
		o.MaxCollapseInnerTrips = 64
	}
	if o.Width == 0 {
		o.Width = 8
	}
	if o.MaxUnrollTrips == 0 {
		o.MaxUnrollTrips = 16
	}
	if o.MaxUnrollOps == 0 {
		o.MaxUnrollOps = 160
	}
	return o
}

// PeelAll fully peels qualifying nested counted loops (Figure 1a):
// literal trip count below MaxPeelTrips and code expansion below
// MaxPeelOps. Returns the number of loops peeled.
func PeelAll(f *ir.Func, opts Options) int {
	opts = opts.withDefaults()
	peeled := 0
	for {
		loops := FindLoops(f)
		did := false
		for _, l := range loops {
			if l.Parent == nil {
				continue // peel only inner loops into their parents
			}
			c := DetectCounted(f, l)
			if c == nil {
				continue
			}
			trips, ok := c.Trips()
			if !ok || trips < 1 || trips >= opts.MaxPeelTrips {
				continue
			}
			bodyOps := len(f.Block(c.Body).Ops) - 1 // minus back edge
			if int(trips-1)*bodyOps > opts.MaxPeelOps {
				continue
			}
			peel(f, c, trips)
			peeled++
			did = true
			break // CFG changed; recompute loops
		}
		if !did {
			return peeled
		}
	}
}

// UnrollAll fully unrolls counted inner loops with literal trip counts
// up to MaxUnrollTrips, provided the expansion stays within
// MaxUnrollOps. Full unrolling flattens short fixed-count filter loops
// (10-tap LPC filters, 8-tap DCT rows) into their parent loop's body,
// which then if-converts and modulo-schedules as one wide loop.
// Returns the number of loops unrolled.
func UnrollAll(f *ir.Func, opts Options) int {
	opts = opts.withDefaults()
	unrolled := 0
	for {
		loops := FindLoops(f)
		did := false
		for _, l := range loops {
			if l.Parent == nil {
				continue
			}
			c := DetectCounted(f, l)
			if c == nil {
				continue
			}
			trips, ok := c.Trips()
			if !ok || trips < 2 || trips > opts.MaxUnrollTrips {
				continue
			}
			bodyOps := len(f.Block(c.Body).Ops) - 1
			if int(trips-1)*bodyOps > opts.MaxUnrollOps {
				continue
			}
			peel(f, c, trips)
			unrolled++
			did = true
			break
		}
		if !did {
			return unrolled
		}
	}
}

// peel replaces the single-block counted loop with trips sequential
// copies of its body.
func peel(f *ir.Func, c *Counted, trips int64) {
	body := f.Block(c.Body)
	exit := body.Fall
	weight := body.Weight / float64(trips)
	template := body.Ops[:len(body.Ops)-1] // drop back edge

	// First copy lives in the original block (preserving entry edges).
	body.Ops = template
	body.Weight = weight
	prev := body
	for k := int64(1); k < trips; k++ {
		nb := f.NewBlock()
		nb.Weight = weight
		for _, op := range template {
			nb.Ops = append(nb.Ops, op.Clone(f.NewOpID()))
		}
		prev.Fall = nb.ID
		prev = nb
	}
	prev.Fall = exit
}

// CollapseAll applies predicated loop collapsing (Figure 1b / Figure 2)
// to qualifying doubly-nested counted loops. Returns the number of
// loops collapsed.
func CollapseAll(f *ir.Func, opts Options) int {
	opts = opts.withDefaults()
	collapsed := 0
	for {
		loops := FindLoops(f)
		did := false
		for _, outer := range loops {
			if len(outer.Children) != 1 || len(outer.Blocks) != 3 {
				continue
			}
			if collapse(f, outer, opts) {
				collapsed++
				did = true
				break
			}
		}
		if !did {
			return collapsed
		}
	}
}

// collapse attempts to collapse one outer loop of the required shape:
//
//	P (preheader) -> A (outer header) -> B (inner single-block counted
//	loop) -> F (outer latch) -back-> A ; F falls to the outer exit.
func collapse(f *ir.Func, outer *Loop, opts Options) bool {
	inner := outer.Children[0]
	ci := DetectCounted(f, inner)
	if ci == nil || ci.Preheader != outer.Header {
		return false
	}
	innerTrips, ok := ci.Trips()
	if !ok || innerTrips < 2 || innerTrips > opts.MaxCollapseInnerTrips {
		return false
	}
	aID := outer.Header
	bID := ci.Body
	// Identify F: the remaining block.
	var fID ir.BlockID
	for id := range outer.Blocks {
		if id != aID && id != bID {
			fID = id
		}
	}
	if fID == 0 {
		return false
	}
	A, B, F := f.Block(aID), f.Block(bID), f.Block(fID)
	if A == nil || B == nil || F == nil {
		return false
	}
	// Structural checks: A falls (or jumps) only to B; B falls to F; F
	// ends with the outer back edge to A and falls to the outer exit.
	if len(outer.Latches) != 1 || outer.Latches[0] != fID {
		return false
	}
	if B.Fall != fID {
		return false
	}
	outerBr := F.LastOp()
	if outerBr == nil || outerBr.Opcode != ir.OpBr || outerBr.Guard != 0 ||
		outerBr.Target != aID || F.Fall == 0 {
		return false
	}
	// A and F must be straight-line, unpredicated, call-free code.
	aOps := A.Ops
	if last := A.LastOp(); last != nil && last.IsUncondJump() && last.Target == bID {
		aOps = aOps[:len(aOps)-1]
	}
	if A.Fall != bID && !(A.LastOp() != nil && A.LastOp().IsUncondJump() &&
		A.LastOp().Target == bID) {
		return false
	}
	fOps := F.Ops[:len(F.Ops)-1]
	for _, op := range append(append([]*ir.Op{}, aOps...), fOps...) {
		if op.IsBranch() || op.Opcode == ir.OpCall || op.Opcode == ir.OpRet ||
			op.Guard != 0 || op.IsPredDefine() || op.IsBufferOp() {
			return false
		}
	}
	if len(aOps)+len(fOps) > opts.MaxCollapseOuterOps {
		return false
	}
	// Cost model (the paper's "provided that the inner loop schedule
	// can accommodate the extra instructions"): the absorbed outer ops
	// plus the phase-counter bookkeeping occupy issue slots on *every*
	// collapsed iteration, so they must fit the slack of the inner
	// loop's initiation interval. Estimate the II from resources plus
	// the schedule slack long-latency ops create in small loops.
	innerOps := len(f.Block(bID).Ops) - 1
	slack := 0
	for _, op := range f.Block(bID).Ops {
		if op.IsLoad() {
			slack += 2
		}
		if op.Opcode == ir.OpMul || op.Opcode == ir.OpDiv || op.Opcode == ir.OpRem {
			slack++
		}
	}
	iiEst := (innerOps + slack + opts.Width - 1) / opts.Width
	if iiEst < 1 {
		iiEst = 1
	}
	absorbed := len(aOps) + len(fOps) + 3
	if innerOps+absorbed > iiEst*opts.Width {
		return false
	}
	// The outer loop must itself be counted with literal trips: its
	// induction register has a single unguarded literal-step add in A
	// or F, a literal init in the outer preheader, and the back edge
	// tests it against a literal.
	outerTrips, ok := detectOuterTrips(f, outer, A, F, outerBr)
	if !ok || outerTrips < 2 {
		return false
	}

	// ---- Rewrite ----
	p1 := f.NewPred()
	q := f.NewReg()
	cnt := f.NewReg()

	newOp := func(op ir.Op) *ir.Op {
		op.ID = f.NewOpID()
		return &op
	}

	// Top-of-body prologue: F-ops then A-ops, guarded by p1, then the
	// phase-counter reset.
	var top []*ir.Op
	for _, op := range fOps {
		c := op.Clone(f.NewOpID())
		c.Guard = p1
		top = append(top, c)
	}
	for _, op := range aOps {
		c := op.Clone(f.NewOpID())
		c.Guard = p1
		top = append(top, c)
	}
	reset := newOp(ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{q}, Imm: 0, HasImm: true})
	reset.Guard = p1
	top = append(top, reset)

	// Bottom: advance the phase counter, recompute p1, counted loop
	// back edge.
	bodyOps := B.Ops[:len(B.Ops)-1] // drop inner back edge
	bottom := []*ir.Op{
		newOp(ir.Op{Opcode: ir.OpAdd, Dest: []ir.Reg{q}, Src: []ir.Reg{q}, Imm: 1, HasImm: true}),
	}
	cmp := newOp(ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpEQ, Src: []ir.Reg{q},
		Imm: innerTrips, HasImm: true})
	cmp.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	bottom = append(bottom, cmp)
	back := newOp(ir.Op{Opcode: ir.OpBrCLoop, Dest: []ir.Reg{cnt},
		Src: []ir.Reg{cnt}, Target: bID, LoopBack: true})
	bottom = append(bottom, back)

	B.Ops = append(append(top, bodyOps...), bottom...)
	B.Weight = float64(outerTrips * innerTrips)

	// A becomes the one-time prologue: init q, p1=false, cloop counter.
	initQ := newOp(ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{q}, Imm: 0, HasImm: true})
	initP := newOp(ir.Op{Opcode: ir.OpCmpP, Cmp: ir.CmpNE, Src: []ir.Reg{q},
		Imm: 0, HasImm: true})
	initP.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	initC := newOp(ir.Op{Opcode: ir.OpMov, Dest: []ir.Reg{cnt},
		Imm: outerTrips * innerTrips, HasImm: true})
	// Preserve a trailing jump-to-B if present.
	var tail []*ir.Op
	if len(A.Ops) > len(aOps) {
		tail = A.Ops[len(aOps):]
	}
	A.Ops = append(append(append([]*ir.Op{}, aOps...), initQ, initP, initC), tail...)
	A.Weight = 1

	// F becomes the one-time epilogue: drop the outer back edge.
	F.Ops = F.Ops[:len(F.Ops)-1]
	F.Weight = 1
	return true
}

// detectOuterTrips recognizes the outer counted-loop pattern and
// returns its literal trip count.
func detectOuterTrips(f *ir.Func, outer *Loop, A, F *ir.Block, br *ir.Op) (int64, bool) {
	if len(br.Src) < 1 || !br.HasImm {
		return 0, false
	}
	o := br.Src[0]
	// Single unguarded literal add of o within the loop.
	var step int64
	found := 0
	for _, blk := range []*ir.Block{A, F} {
		for _, op := range blk.Ops {
			for _, d := range op.Dest {
				if d != o {
					continue
				}
				if (op.Opcode != ir.OpAdd && op.Opcode != ir.OpSub) || op.Guard != 0 ||
					!op.HasImm || len(op.Src) != 1 || op.Src[0] != o {
					return 0, false
				}
				step = op.Imm
				if op.Opcode == ir.OpSub {
					step = -step
				}
				found++
			}
		}
	}
	// Also reject defs of o in the inner body.
	bBlk := f.Block(outerInnerBody(outer))
	if bBlk != nil {
		for _, op := range bBlk.Ops {
			for _, d := range op.Dest {
				if d == o {
					return 0, false
				}
			}
		}
	}
	if found != 1 || step == 0 {
		return 0, false
	}
	// Literal init in the outer preheader.
	preds := f.Preds()
	var pre ir.BlockID
	n := 0
	for _, p := range preds[outer.Header] {
		if !outer.Blocks[p] {
			pre = p
			n++
		}
	}
	if n != 1 {
		return 0, false
	}
	init, ok := literalInit(f.Block(pre), o)
	if !ok {
		return 0, false
	}
	c := &Counted{Cmp: br.Cmp, BoundIsImm: true, BoundImm: br.Imm,
		Init: init, InitKnown: true, Step: step}
	return c.TripsValue()
}

// TripsValue is Trips without requiring loop context fields.
func (c *Counted) TripsValue() (int64, bool) { return c.Trips() }

// outerInnerBody returns the single child loop's body block if the
// outer loop has exactly three blocks (A, B, F shape), else 0.
func outerInnerBody(outer *Loop) ir.BlockID {
	if len(outer.Children) != 1 {
		return 0
	}
	return outer.Children[0].Header
}

// literalInit scans block b backwards for an unguarded mov-immediate
// into r as the last def of r.
func literalInit(b *ir.Block, r ir.Reg) (int64, bool) {
	if b == nil {
		return 0, false
	}
	for i := len(b.Ops) - 1; i >= 0; i-- {
		op := b.Ops[i]
		for _, d := range op.Dest {
			if d != r {
				continue
			}
			if op.Opcode == ir.OpMov && op.Guard == 0 && op.HasImm && len(op.Src) == 0 {
				return op.Imm, true
			}
			return 0, false
		}
	}
	return 0, false
}

// CLoopifyAll converts qualifying single-block counted loops to the
// br.cloop form (installing "a special counted loop branch", Section 3),
// computing the trip count in the preheader. Returns conversions made.
func CLoopifyAll(f *ir.Func) int {
	n := 0
	loops := FindLoops(f)
	for _, l := range loops {
		c := DetectCounted(f, l)
		if c == nil {
			continue
		}
		if cloopify(f, c) {
			n++
		}
	}
	return n
}

// cloopify rewrites one counted loop. Supported shapes: step > 0 with
// CmpLT/CmpLE bound tests (the common ascending forms).
func cloopify(f *ir.Func, c *Counted) bool {
	if c.Step <= 0 || (c.Cmp != ir.CmpLT && c.Cmp != ir.CmpLE) {
		return false
	}
	body := f.Block(c.Body)
	pre := f.Block(c.Preheader)
	br := body.Ops[c.BrIdx]
	cnt := f.NewReg()

	newOp := func(op ir.Op) *ir.Op {
		op.ID = f.NewOpID()
		return &op
	}

	// Compute trips in the preheader. Bottom-tested loops run at least
	// once: trips = max(1, ceil((bound' - init) / step)), with bound'
	// = bound (LT) or bound+1 (LE). The computed ops write only fresh
	// registers, so they are inserted before any trailing branches of
	// the preheader (harmless on non-loop paths).
	var setup []*ir.Op
	if trips, ok := c.Trips(); ok {
		setup = append(setup, newOp(ir.Op{Opcode: ir.OpMov,
			Dest: []ir.Reg{cnt}, Imm: trips, HasImm: true}))
	} else if c.InitKnown && !c.BoundIsImm {
		adj := c.Step - 1 - c.Init
		if c.Cmp == ir.CmpLE {
			adj++
		}
		t := f.NewReg()
		setup = append(setup, newOp(ir.Op{Opcode: ir.OpAdd, Dest: []ir.Reg{t},
			Src: []ir.Reg{c.BoundReg}, Imm: adj, HasImm: true}))
		if c.Step != 1 {
			setup = append(setup, newOp(ir.Op{Opcode: ir.OpDiv,
				Dest: []ir.Reg{t}, Src: []ir.Reg{t}, Imm: c.Step, HasImm: true}))
		}
		setup = append(setup, newOp(ir.Op{Opcode: ir.OpMax,
			Dest: []ir.Reg{cnt}, Src: []ir.Reg{t}, Imm: 1, HasImm: true}))
	} else {
		return false
	}
	insertBeforeBranches(pre, setup)

	// Replace the back edge with br.cloop.
	br.Opcode = ir.OpBrCLoop
	br.Dest = []ir.Reg{cnt}
	br.Src = []ir.Reg{cnt}
	br.HasImm = false
	br.Imm = 0
	br.LoopBack = true
	return true
}

// insertBeforeBranches inserts ops before the block's trailing run of
// branch operations (so the block's control transfers stay terminal).
func insertBeforeBranches(b *ir.Block, ops []*ir.Op) {
	i := len(b.Ops)
	for i > 0 && b.Ops[i-1].IsBranch() {
		i--
	}
	tail := append([]*ir.Op{}, b.Ops[i:]...)
	b.Ops = append(append(b.Ops[:i], ops...), tail...)
}

// MarkLoopBacks flags the back-edge branch of every single-block
// self-loop (needed by the wloop buffering path for loops that did not
// convert to br.cloop). Returns how many branches were marked.
func MarkLoopBacks(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		last := b.LastOp()
		if last == nil || !last.IsBranch() || last.Target != b.ID {
			continue
		}
		if !last.LoopBack {
			last.LoopBack = true
			n++
		}
	}
	return n
}
