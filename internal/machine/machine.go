// Package machine describes the modeled VLIW target: issue slots,
// functional-unit classes, operation latencies and encoding parameters.
//
// The default description follows Section 7 / Figure 6 of Sias, Hunter &
// Hwu (MICRO-34, 2001): an 8-wide unified VLIW loosely modeled on the TI
// 'C6x with eight integer ALUs (two multiply-capable), three memory
// units, one branch unit, two floating-point-capable units and four
// predicate-generating units, with a fixed assignment of units to slots.
package machine

import (
	"fmt"
	"sync"
)

// UnitClass identifies a functional-unit capability required by an
// operation. A slot may provide several classes.
type UnitClass uint8

const (
	// UnitIALU executes single-cycle integer arithmetic and logic.
	UnitIALU UnitClass = iota
	// UnitIMul executes integer multiplies (and, in this model, divides).
	UnitIMul
	// UnitMem executes loads and stores.
	UnitMem
	// UnitBranch executes control-transfer and loop-buffer operations.
	UnitBranch
	// UnitPred generates predicate values (predicate defines).
	UnitPred
	// UnitFP executes floating-point arithmetic.
	UnitFP

	// NumUnitClasses is the number of distinct unit classes.
	NumUnitClasses
)

var unitClassNames = [NumUnitClasses]string{"ialu", "imul", "mem", "br", "pred", "fp"}

func (c UnitClass) String() string {
	if int(c) < len(unitClassNames) {
		return unitClassNames[c]
	}
	return fmt.Sprintf("unit(%d)", uint8(c))
}

// Slot describes one issue slot of the VLIW.
type Slot struct {
	// Index is the slot's position in the bundle, 0-based.
	Index int
	// Classes lists the unit classes this slot can execute.
	Classes []UnitClass
}

// Has reports whether the slot provides unit class c.
func (s *Slot) Has(c UnitClass) bool {
	for _, have := range s.Classes {
		if have == c {
			return true
		}
	}
	return false
}

// Desc is a complete machine description.
type Desc struct {
	// Name identifies the description (for reports).
	Name string
	// Slots holds the issue slots in bundle order.
	Slots []Slot
	// Latency maps an operation latency class to its cycle count.
	Latency Latencies
	// BranchPenalty is the redirect penalty, in cycles, charged for a
	// taken branch resolved against the global fetch path. Loop-back
	// branches of buffered loops do not pay it (the buffer supplies
	// perfect loop-back prediction).
	BranchPenalty int
	// OpBits is the encoded size of one operation in bits. NOPs are
	// assumed to be compressed away in memory (as on the 'C6x).
	OpBits int
	// IntRegs is the number of architected general registers. The
	// compiler reports pressure against this bound.
	IntRegs int
	// PredSlots is the number of slots addressable by slot-based
	// predicate defines (all slots can consume predicates).
	PredSlots int

	// slotsFor memoizes the per-class slot lists served by SlotsFor.
	// Built once on first use: descriptions are immutable after
	// construction, and the schedulers query these lists in their
	// innermost placement loops.
	slotsOnce sync.Once
	slotsFor  [NumUnitClasses][]int
}

// Latencies gives operation result latencies in cycles.
type Latencies struct {
	IALU   int
	IMul   int
	IDiv   int
	Load   int
	Store  int
	FP     int
	Branch int // cycles before a branch redirects fetch
	Pred   int // predicate define to consumer
}

// Width returns the issue width (number of slots).
func (d *Desc) Width() int { return len(d.Slots) }

// SlotsFor returns the indices of slots providing unit class c, in
// ascending slot order. The slice is shared across calls and must be
// treated as read-only by callers.
func (d *Desc) SlotsFor(c UnitClass) []int {
	d.slotsOnce.Do(d.buildSlotLists)
	if int(c) < len(d.slotsFor) {
		return d.slotsFor[c]
	}
	return nil
}

func (d *Desc) buildSlotLists() {
	for c := UnitClass(0); c < NumUnitClasses; c++ {
		for i := range d.Slots {
			if d.Slots[i].Has(c) {
				d.slotsFor[c] = append(d.slotsFor[c], i)
			}
		}
	}
}

// CountFor returns how many slots provide unit class c.
func (d *Desc) CountFor(c UnitClass) int { return len(d.SlotsFor(c)) }

// Validate checks internal consistency of the description.
func (d *Desc) Validate() error {
	if len(d.Slots) == 0 {
		return fmt.Errorf("machine %q: no issue slots", d.Name)
	}
	for i := range d.Slots {
		if d.Slots[i].Index != i {
			return fmt.Errorf("machine %q: slot %d has index %d", d.Name, i, d.Slots[i].Index)
		}
		if len(d.Slots[i].Classes) == 0 {
			return fmt.Errorf("machine %q: slot %d has no unit classes", d.Name, i)
		}
	}
	if d.CountFor(UnitBranch) == 0 {
		return fmt.Errorf("machine %q: no branch-capable slot", d.Name)
	}
	if d.BranchPenalty < 0 {
		return fmt.Errorf("machine %q: negative branch penalty", d.Name)
	}
	return nil
}

// Default returns the paper's experimental machine (Figure 6):
//
//	slot:  0     1     2     3     4     5     6     7
//	       Ialu  Ialu  Ialu  Ialu  Ialu  Ialu  Imul/F Imul/F
//	       Pred  Pred  Mem   Mem   Mem   Br    Pred   Pred
//
// Eight integer ALUs (the two Imul/F slots also execute plain integer
// ALU operations), two integer-multiply slots, three memory units, one
// branch unit, two FP units, four predicate-generating units; arithmetic
// latency 1, multiply 2, divide 8, load 3, FP 2; 64 integer registers.
func Default() *Desc {
	d := &Desc{
		Name: "paper-8wide",
		Slots: []Slot{
			{Index: 0, Classes: []UnitClass{UnitIALU, UnitPred}},
			{Index: 1, Classes: []UnitClass{UnitIALU, UnitPred}},
			{Index: 2, Classes: []UnitClass{UnitIALU, UnitMem}},
			{Index: 3, Classes: []UnitClass{UnitIALU, UnitMem}},
			{Index: 4, Classes: []UnitClass{UnitIALU, UnitMem}},
			{Index: 5, Classes: []UnitClass{UnitIALU, UnitBranch}},
			{Index: 6, Classes: []UnitClass{UnitIALU, UnitIMul, UnitFP, UnitPred}},
			{Index: 7, Classes: []UnitClass{UnitIALU, UnitIMul, UnitFP, UnitPred}},
		},
		Latency: Latencies{
			IALU:   1,
			IMul:   2,
			IDiv:   8,
			Load:   3,
			Store:  1,
			FP:     2,
			Branch: 1,
			Pred:   1,
		},
		BranchPenalty: 3,
		OpBits:        32,
		IntRegs:       64,
		PredSlots:     8,
	}
	return d
}

// Four returns a 4-wide variant of the machine (half the paper's
// resources), used by the width-sensitivity experiments: two of the
// slots keep multiply/FP and predicate capability, memory and branch
// units fold into shared slots.
func Four() *Desc {
	d := Default()
	d.Name = "paper-4wide"
	d.Slots = []Slot{
		{Index: 0, Classes: []UnitClass{UnitIALU, UnitPred}},
		{Index: 1, Classes: []UnitClass{UnitIALU, UnitMem}},
		{Index: 2, Classes: []UnitClass{UnitIALU, UnitMem, UnitBranch}},
		{Index: 3, Classes: []UnitClass{UnitIALU, UnitIMul, UnitFP, UnitPred}},
	}
	d.PredSlots = 4
	return d
}

// Two returns a minimal dual-issue variant (LIW-class, like the
// DSP16000 the paper's related work studies).
func Two() *Desc {
	d := Default()
	d.Name = "paper-2wide"
	d.Slots = []Slot{
		{Index: 0, Classes: []UnitClass{UnitIALU, UnitMem, UnitPred}},
		{Index: 1, Classes: []UnitClass{UnitIALU, UnitIMul, UnitFP, UnitBranch, UnitPred}},
	}
	d.PredSlots = 2
	return d
}
