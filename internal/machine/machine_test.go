package machine

import "testing"

func TestDefaultMatchesFigure6(t *testing.T) {
	d := Default()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 8 {
		t.Fatalf("width = %d, want 8", d.Width())
	}
	// "eight integer ALUs, two of which can issue integer multiplies;
	// three memory units; one branch unit; two floating-point units;
	// and four units capable of generating predicate values."
	checks := []struct {
		cls  UnitClass
		want int
	}{
		{UnitIALU, 8},
		{UnitIMul, 2},
		{UnitMem, 3},
		{UnitBranch, 1},
		{UnitFP, 2},
		{UnitPred, 4},
	}
	for _, c := range checks {
		if got := d.CountFor(c.cls); got != c.want {
			t.Errorf("%s units = %d, want %d", c.cls, got, c.want)
		}
	}
}

func TestPaperLatencies(t *testing.T) {
	d := Default()
	// "Arithmetic operations have a latency of 1 cycle; multiplies, 2
	// cycles; divides, 8 cycles; loads, 3 cycles; and floating point
	// arithmetic, 2 cycles. Sixty-four (64) integer registers."
	if d.Latency.IALU != 1 || d.Latency.IMul != 2 || d.Latency.IDiv != 8 ||
		d.Latency.Load != 3 || d.Latency.FP != 2 {
		t.Fatalf("latencies = %+v", d.Latency)
	}
	if d.IntRegs != 64 {
		t.Fatalf("IntRegs = %d", d.IntRegs)
	}
	if d.OpBits != 32 {
		t.Fatalf("OpBits = %d", d.OpBits)
	}
	if d.PredSlots != 8 {
		t.Fatalf("PredSlots = %d", d.PredSlots)
	}
}

func TestSlotsFor(t *testing.T) {
	d := Default()
	mem := d.SlotsFor(UnitMem)
	if len(mem) != 3 {
		t.Fatalf("mem slots = %v", mem)
	}
	for _, s := range mem {
		if !d.Slots[s].Has(UnitMem) {
			t.Fatalf("slot %d listed but lacks mem", s)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	d := Default()
	d.Slots[3].Index = 7
	if err := d.Validate(); err == nil {
		t.Fatal("expected index mismatch error")
	}
	d = Default()
	d.Slots = nil
	if err := d.Validate(); err == nil {
		t.Fatal("expected empty-slots error")
	}
	d = Default()
	d.Slots[5].Classes = []UnitClass{UnitIALU} // drop the branch unit
	if err := d.Validate(); err == nil {
		t.Fatal("expected missing-branch-unit error")
	}
}

func TestNarrowMachinesValidate(t *testing.T) {
	for _, d := range []*Desc{Four(), Two()} {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if d.CountFor(UnitBranch) < 1 || d.CountFor(UnitMem) < 1 ||
			d.CountFor(UnitIMul) < 1 || d.CountFor(UnitPred) < 1 {
			t.Fatalf("%s lacks a required unit class", d.Name)
		}
	}
	if Four().Width() != 4 || Two().Width() != 2 {
		t.Fatal("widths wrong")
	}
}
