package obs

import "sort"

// Delta is one instrument's change between two registry snapshots.
// Values are float64 so counters, gauges and histogram aggregates
// share one row shape; counter deltas are exact integers within
// float64 range.
type Delta struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"` // "counter", "gauge", "hist.count", "hist.sum"
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	Diff float64 `json:"diff"`
}

// DiffSnapshot compares two registry snapshots and returns one row per
// instrument whose value changed (or which appears on only one side —
// a missing instrument reads as 0). Histograms contribute their count
// and sum; bucket-level drift always moves at least one of the two.
// Rows come back sorted by (name, kind) so diffs render and marshal
// stably.
func DiffSnapshot(old, cur RegistrySnapshot) []Delta {
	var out []Delta
	add := func(name, kind string, o, n float64) {
		if o == n {
			return
		}
		out = append(out, Delta{Name: name, Kind: kind, Old: o, New: n, Diff: n - o})
	}
	for name := range union(old.Counters, cur.Counters) {
		add(name, "counter", float64(old.Counters[name]), float64(cur.Counters[name]))
	}
	for name := range union(old.Gauges, cur.Gauges) {
		add(name, "gauge", old.Gauges[name], cur.Gauges[name])
	}
	seen := map[string]bool{}
	for name := range old.Histograms {
		seen[name] = true
	}
	for name := range cur.Histograms {
		seen[name] = true
	}
	for name := range seen {
		o, n := old.Histograms[name], cur.Histograms[name]
		add(name, "hist.count", float64(o.Count), float64(n.Count))
		add(name, "hist.sum", float64(o.Sum), float64(n.Sum))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func union[V any](a, b map[string]V) map[string]struct{} {
	u := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		u[k] = struct{}{}
	}
	for k := range b {
		u[k] = struct{}{}
	}
	return u
}
