package obs

import (
	"math"
	"testing"
)

func TestDiffSnapshot(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("sim.runs").Add(10)
	r1.Counter("sim.cycles").Add(1000)
	r1.Counter("unchanged").Add(5)
	r1.Gauge("peak").Set(3)
	r1.Histogram("wall").Observe(8)

	r2 := NewRegistry()
	r2.Counter("sim.runs").Add(12)
	r2.Counter("sim.cycles").Add(1000)
	r2.Counter("unchanged").Add(5)
	r2.Counter("added").Add(1)
	r2.Gauge("peak").Set(7)
	r2.Histogram("wall").Observe(8)
	r2.Histogram("wall").Observe(16)

	deltas := DiffSnapshot(r1.Snapshot(), r2.Snapshot())
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Name+"/"+d.Kind] = d
	}
	if d := byKey["sim.runs/counter"]; d.Diff != 2 || d.Old != 10 || d.New != 12 {
		t.Errorf("sim.runs delta = %+v", d)
	}
	if d := byKey["added/counter"]; d.Old != 0 || d.New != 1 {
		t.Errorf("added counter delta = %+v", d)
	}
	if _, ok := byKey["unchanged/counter"]; ok {
		t.Error("unchanged counter reported")
	}
	if _, ok := byKey["sim.cycles/counter"]; ok {
		t.Error("equal counter reported")
	}
	if d := byKey["peak/gauge"]; d.Diff != 4 {
		t.Errorf("gauge delta = %+v", d)
	}
	if d := byKey["wall/hist.count"]; d.Diff != 1 {
		t.Errorf("hist.count delta = %+v", d)
	}
	if d := byKey["wall/hist.sum"]; d.Diff != 16 {
		t.Errorf("hist.sum delta = %+v", d)
	}
	// Sorted by (name, kind).
	for i := 1; i < len(deltas); i++ {
		a, b := deltas[i-1], deltas[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Kind > b.Kind) {
			t.Errorf("deltas out of order: %+v before %+v", a, b)
		}
	}
	// Identical snapshots diff empty.
	if d := DiffSnapshot(r1.Snapshot(), r1.Snapshot()); len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	cases := []struct {
		v    int64
		want int64 // inclusive bucket upper bound
	}{
		{0, 0}, // bucket 0 holds exactly 0
		{1, 1}, // bucket 1 holds exactly 1
		{2, 3}, // [2,4)
		{5, 7}, // [4,8)
		{1000, 1023},
	}
	for _, c := range cases {
		r := NewRegistry()
		r.Histogram("h").Observe(c.v)
		hs := r.Snapshot().Histograms["h"]
		for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
			if got := hs.Quantile(q); got != c.want {
				t.Errorf("single sample %d: Quantile(%v) = %d, want %d", c.v, q, got, c.want)
			}
		}
	}
}

func TestHistogramQuantileDuplicateHeavy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// 1000 copies of 5 and a single 1e6 outlier.
	for i := 0; i < 1000; i++ {
		h.Observe(5)
	}
	h.Observe(1_000_000)
	hs := r.Snapshot().Histograms["h"]
	// 5 lives in [4,8) → inclusive bound 7; every quantile up to the
	// outlier's rank reports that bucket.
	for _, q := range []float64{0.01, 0.5, 0.9, 0.999} {
		if got := hs.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
	// The max lands in the outlier's bucket: 1e6 is in [2^19, 2^20).
	if got := hs.Quantile(1); got != (1<<20)-1 {
		t.Errorf("Quantile(1) = %d, want %d", got, (1<<20)-1)
	}
	// q <= 0 clamps to the first observation's bucket.
	if got := hs.Quantile(0); got != 7 {
		t.Errorf("Quantile(0) = %d, want 7", got)
	}
	if got := hs.Quantile(math.Inf(1)); got != (1<<20)-1 {
		t.Errorf("Quantile(+inf) = %d, want clamp to max bucket", got)
	}
}

func TestHistogramQuantileZeroHeavy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 0; i < 99; i++ {
		h.Observe(0)
	}
	h.Observe(1 << 30)
	hs := r.Snapshot().Histograms["h"]
	if got := hs.Quantile(0.5); got != 0 {
		t.Errorf("zero-heavy Quantile(0.5) = %d, want 0", got)
	}
	if got := hs.Quantile(1); got != (1<<31)-1 {
		t.Errorf("zero-heavy Quantile(1) = %d, want %d", got, (1<<31)-1)
	}
}
