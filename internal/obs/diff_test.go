package obs

import (
	"math"
	"testing"
)

func TestDiffSnapshot(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("sim.runs").Add(10)
	r1.Counter("sim.cycles").Add(1000)
	r1.Counter("unchanged").Add(5)
	r1.Gauge("peak").Set(3)
	r1.Histogram("wall").Observe(8)

	r2 := NewRegistry()
	r2.Counter("sim.runs").Add(12)
	r2.Counter("sim.cycles").Add(1000)
	r2.Counter("unchanged").Add(5)
	r2.Counter("added").Add(1)
	r2.Gauge("peak").Set(7)
	r2.Histogram("wall").Observe(8)
	r2.Histogram("wall").Observe(16)

	deltas := DiffSnapshot(r1.Snapshot(), r2.Snapshot())
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Name+"/"+d.Kind] = d
	}
	if d := byKey["sim.runs/counter"]; d.Diff != 2 || d.Old != 10 || d.New != 12 {
		t.Errorf("sim.runs delta = %+v", d)
	}
	if d := byKey["added/counter"]; d.Old != 0 || d.New != 1 {
		t.Errorf("added counter delta = %+v", d)
	}
	if _, ok := byKey["unchanged/counter"]; ok {
		t.Error("unchanged counter reported")
	}
	if _, ok := byKey["sim.cycles/counter"]; ok {
		t.Error("equal counter reported")
	}
	if d := byKey["peak/gauge"]; d.Diff != 4 {
		t.Errorf("gauge delta = %+v", d)
	}
	if d := byKey["wall/hist.count"]; d.Diff != 1 {
		t.Errorf("hist.count delta = %+v", d)
	}
	if d := byKey["wall/hist.sum"]; d.Diff != 16 {
		t.Errorf("hist.sum delta = %+v", d)
	}
	// Sorted by (name, kind).
	for i := 1; i < len(deltas); i++ {
		a, b := deltas[i-1], deltas[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Kind > b.Kind) {
			t.Errorf("deltas out of order: %+v before %+v", a, b)
		}
	}
	// Identical snapshots diff empty.
	if d := DiffSnapshot(r1.Snapshot(), r1.Snapshot()); len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
}

func deltaByKey(t *testing.T, rows []Delta, name, kind string) *Delta {
	t.Helper()
	for i := range rows {
		if rows[i].Name == name && rows[i].Kind == kind {
			return &rows[i]
		}
	}
	return nil
}

// TestDiffSnapshotAcrossScopeFold drives DiffSnapshot the way
// cmd/benchdiff -metrics consumes it, but across the Scope fold-in
// path: snapshot the parent, run instrumented work inside a scope,
// close it, snapshot again, and require the diff to report exactly the
// folded deltas.
func TestDiffSnapshotAcrossScopeFold(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	parent.Reg.Counter("jobs").Add(10)
	parent.Reg.Histogram("wall").Observe(100)
	before := parent.Reg.Snapshot()

	sc := parent.OpenScope(ScopeConfig{})
	sc.Obs().Counter("jobs").Add(3)
	sc.Obs().Reg.Gauge("depth").Add(2)
	sc.Obs().Reg.Histogram("wall").Observe(50)
	sc.Obs().Reg.Histogram("wall").Observe(60)
	sc.Close()
	after := parent.Reg.Snapshot()

	rows := DiffSnapshot(before, after)
	if d := deltaByKey(t, rows, "jobs", "counter"); d == nil || d.Diff != 3 {
		t.Fatalf("jobs counter delta = %+v, want +3", d)
	}
	if d := deltaByKey(t, rows, "depth", "gauge"); d == nil || d.Old != 0 || d.New != 2 {
		t.Fatalf("gauge appearing via fold = %+v, want 0 -> 2", d)
	}
	if d := deltaByKey(t, rows, "wall", "hist.count"); d == nil || d.Diff != 2 {
		t.Fatalf("wall hist.count delta = %+v, want +2", d)
	}
	if d := deltaByKey(t, rows, "wall", "hist.sum"); d == nil || d.Diff != 110 {
		t.Fatalf("wall hist.sum delta = %+v, want +110", d)
	}
}

func TestDiffSnapshotNestedScopes(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	before := parent.Reg.Snapshot()

	child := parent.OpenScope(ScopeConfig{})
	grand := child.Obs().OpenScope(ScopeConfig{})
	grand.Obs().Counter("deep").Add(7)
	grand.Obs().Reg.Histogram("h").Observe(4)
	grand.Close()

	// Child itself adds more after the grandchild folded in.
	child.Obs().Counter("deep").Add(1)

	// Mid-flight: the child's own registry shows the whole subtree,
	// while the parent diff shows nothing yet.
	childRows := DiffSnapshot(NewRegistry().Snapshot(), child.Registry().Snapshot())
	if d := deltaByKey(t, childRows, "deep", "counter"); d == nil || d.New != 8 {
		t.Fatalf("child-registry diff = %+v, want deep=8", childRows)
	}
	if rows := DiffSnapshot(before, parent.Reg.Snapshot()); len(rows) != 0 {
		t.Fatalf("parent diff before child close = %+v, want empty", rows)
	}

	child.Close()
	rows := DiffSnapshot(before, parent.Reg.Snapshot())
	if d := deltaByKey(t, rows, "deep", "counter"); d == nil || d.Diff != 8 {
		t.Fatalf("nested fold delta = %+v, want +8", d)
	}
	if d := deltaByKey(t, rows, "h", "hist.count"); d == nil || d.Diff != 1 {
		t.Fatalf("nested hist fold = %+v, want count +1", d)
	}
}

// TestDiffSnapshotHistogramBucketDrift pins the documented property
// that bucket-level drift always moves count or sum: an Observe(0)
// changes the 0-bucket and the count but not the sum, and two
// histograms with equal counts but different bucket placement must
// differ in sum, so the count/sum pair is a sound drift detector for
// fold-in results.
func TestDiffSnapshotHistogramBucketDrift(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	parent.Reg.Histogram("h").Observe(8)
	before := parent.Reg.Snapshot()

	// Sum-preserving drift: Observe(0) via a scope fold.
	sc := parent.OpenScope(ScopeConfig{})
	sc.Obs().Reg.Histogram("h").Observe(0)
	sc.Close()
	rows := DiffSnapshot(before, parent.Reg.Snapshot())
	if d := deltaByKey(t, rows, "h", "hist.count"); d == nil || d.Diff != 1 {
		t.Fatalf("zero-observation drift must surface in hist.count: %+v", rows)
	}
	if d := deltaByKey(t, rows, "h", "hist.sum"); d != nil {
		t.Fatalf("sum must not move for Observe(0): %+v", d)
	}

	// Count-preserving comparison across two registries (the "same
	// count, different buckets" case benchdiff can meet when comparing
	// two runs): sum must differ.
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("lat").Observe(1)
	a.Histogram("lat").Observe(64)
	b.Histogram("lat").Observe(2)
	b.Histogram("lat").Observe(128)
	rows = DiffSnapshot(a.Snapshot(), b.Snapshot())
	if d := deltaByKey(t, rows, "lat", "hist.count"); d != nil {
		t.Fatalf("counts are equal, no count row expected: %+v", d)
	}
	if d := deltaByKey(t, rows, "lat", "hist.sum"); d == nil || d.Diff != 65 {
		t.Fatalf("bucket drift must surface in hist.sum: %+v", rows)
	}

	// Multi-bucket drift through a fold: count and sum both move.
	before = parent.Reg.Snapshot()
	sc = parent.OpenScope(ScopeConfig{})
	for _, v := range []int64{3, 300, 30000} {
		sc.Obs().Reg.Histogram("h").Observe(v)
	}
	sc.Close()
	rows = DiffSnapshot(before, parent.Reg.Snapshot())
	if d := deltaByKey(t, rows, "h", "hist.count"); d == nil || d.Diff != 3 {
		t.Fatalf("multi-bucket fold count = %+v, want +3", d)
	}
	if d := deltaByKey(t, rows, "h", "hist.sum"); d == nil || d.Diff != 30303 {
		t.Fatalf("multi-bucket fold sum = %+v, want +30303", d)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	cases := []struct {
		v    int64
		want int64 // inclusive bucket upper bound
	}{
		{0, 0}, // bucket 0 holds exactly 0
		{1, 1}, // bucket 1 holds exactly 1
		{2, 3}, // [2,4)
		{5, 7}, // [4,8)
		{1000, 1023},
	}
	for _, c := range cases {
		r := NewRegistry()
		r.Histogram("h").Observe(c.v)
		hs := r.Snapshot().Histograms["h"]
		for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
			if got := hs.Quantile(q); got != c.want {
				t.Errorf("single sample %d: Quantile(%v) = %d, want %d", c.v, q, got, c.want)
			}
		}
	}
}

func TestHistogramQuantileDuplicateHeavy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// 1000 copies of 5 and a single 1e6 outlier.
	for i := 0; i < 1000; i++ {
		h.Observe(5)
	}
	h.Observe(1_000_000)
	hs := r.Snapshot().Histograms["h"]
	// 5 lives in [4,8) → inclusive bound 7; every quantile up to the
	// outlier's rank reports that bucket.
	for _, q := range []float64{0.01, 0.5, 0.9, 0.999} {
		if got := hs.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
	// The max lands in the outlier's bucket: 1e6 is in [2^19, 2^20).
	if got := hs.Quantile(1); got != (1<<20)-1 {
		t.Errorf("Quantile(1) = %d, want %d", got, (1<<20)-1)
	}
	// q <= 0 clamps to the first observation's bucket.
	if got := hs.Quantile(0); got != 7 {
		t.Errorf("Quantile(0) = %d, want 7", got)
	}
	if got := hs.Quantile(math.Inf(1)); got != (1<<20)-1 {
		t.Errorf("Quantile(+inf) = %d, want clamp to max bucket", got)
	}
}

func TestHistogramQuantileZeroHeavy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 0; i < 99; i++ {
		h.Observe(0)
	}
	h.Observe(1 << 30)
	hs := r.Snapshot().Histograms["h"]
	if got := hs.Quantile(0.5); got != 0 {
		t.Errorf("zero-heavy Quantile(0.5) = %d, want 0", got)
	}
	if got := hs.Quantile(1); got != (1<<31)-1 {
		t.Errorf("zero-heavy Quantile(1) = %d, want %d", got, (1<<31)-1)
	}
}
