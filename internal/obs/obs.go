package obs

import (
	"math"
	"os"
)

// Obs bundles the three observability sinks threaded through the
// pipeline: the metrics registry, the span trace, and the simulator
// event ring. Any field may be nil to disable that sink, and a nil
// *Obs disables everything; all accessors and hooks are nil-safe, so
// instrumented code needs no enabled/disabled branches beyond the nil
// checks the methods already contain.
type Obs struct {
	Reg   *Registry
	Trace *Trace
	Sim   *SimTrace
}

// Config selects which sinks New enables.
type Config struct {
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool
	// Spans enables the wall-clock span trace. MaxSpanEvents <= 0 uses
	// DefaultTraceEvents.
	Spans         bool
	MaxSpanEvents int
	// SimEvents enables the simulator ring. SimRingSize <= 0 uses
	// DefaultSimEvents.
	SimEvents   bool
	SimRingSize int
}

// New creates an Obs with the configured sinks.
func New(cfg Config) *Obs {
	o := &Obs{}
	if cfg.Metrics {
		o.Reg = NewRegistry()
	}
	if cfg.Spans {
		o.Trace = NewTrace(cfg.MaxSpanEvents)
	}
	if cfg.SimEvents {
		o.Sim = NewSimTrace(cfg.SimRingSize)
	}
	return o
}

// StartSpan opens a root span (nil when spans are disabled).
func (o *Obs) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.StartSpan(name)
}

// Counter returns the named counter (nil no-op when metrics are
// disabled).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Registry returns the metrics registry (possibly nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// SimRing returns the simulator event ring (possibly nil).
func (o *Obs) SimRing() *SimTrace {
	if o == nil {
		return nil
	}
	return o.Sim
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func createFile(path string) (*os.File, error) { return os.Create(path) }
