package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("jobs") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("inflight")
	g.SetInt(7)
	g.Max(3) // lower: no change
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after Max = %v, want 9", got)
	}
	h := r.Histogram("wall")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["wall"]
	if hs.Count != 7 {
		t.Fatalf("hist count = %d, want 7", hs.Count)
	}
	if hs.Sum != 1010 {
		t.Fatalf("hist sum = %d, want 1010", hs.Sum)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 7 {
		t.Fatalf("bucket total = %d, want 7", total)
	}
	if snap.Counters["jobs"] != 4 || snap.Gauges["inflight"] != 9 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSnapshotStableJSON(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
		}
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"alpha", "beta", "gamma", "delta"})
	b := build([]string{"delta", "gamma", "beta", "alpha"})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON depends on registration order:\n%s\n%s", a, b)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter(fmt.Sprintf("c%d", i%17)).Inc()
				r.Histogram("h").Observe(int64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, v := range snap.Counters {
		total += v
	}
	if total != 8*1000 {
		t.Fatalf("counter total = %d, want 8000", total)
	}
	if snap.Histograms["h"].Count != 8*1000 {
		t.Fatalf("hist count = %d, want 8000", snap.Histograms["h"].Count)
	}
}

func TestSpansNestAndExport(t *testing.T) {
	tr := NewTrace(0)
	root := tr.StartSpan("compile")
	root.SetAttr("config", "aggressive")
	child := root.Child("opt")
	child.SetInt("ops_before", 100)
	child.SetInt("ops_after", 80)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(file.TraceEvents))
	}
	byName := map[string]map[string]any{}
	for _, ev := range file.TraceEvents {
		byName[ev["name"].(string)] = ev
		for _, k := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event %v missing %q", ev, k)
			}
		}
	}
	opt := byName["opt"]
	if opt == nil {
		t.Fatalf("no opt span in %v", byName)
	}
	args := opt["args"].(map[string]any)
	if args["ops_before"].(float64) != 100 || args["ops_after"].(float64) != 80 {
		t.Fatalf("opt args = %v", args)
	}
	if byName["compile"]["tid"] != opt["tid"] {
		t.Fatal("child span not on parent's track")
	}
}

func TestTraceEventCap(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	// 4 kept spans + 1 dropped-spans marker.
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(file.TraceEvents))
	}
}

func TestSimTraceRing(t *testing.T) {
	s := NewSimTrace(4)
	for i := 0; i < 6; i++ {
		s.Emit(SimEvent{Cycle: int64(i), Kind: SimIssue})
	}
	if s.Total() != 6 {
		t.Fatalf("total = %d, want 6", s.Total())
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != int64(i+2) {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first order)", i, ev.Cycle, i+2)
		}
	}
	// Partial fill keeps emission order too.
	s2 := NewSimTrace(8)
	s2.Emit(SimEvent{Cycle: 1})
	s2.Emit(SimEvent{Cycle: 2})
	evs = s2.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("partial ring events = %+v", evs)
	}
}

func TestSimTraceChromeExport(t *testing.T) {
	s := NewSimTrace(16)
	s.Emit(SimEvent{Cycle: 5, Kind: SimLoopRecord, Run: "r", Func: "main", PC: 3, Loop: "main@3"})
	s.Emit(SimEvent{Cycle: 6, Kind: SimLoopReplay, Run: "r", Func: "main", PC: 3, Loop: "main@3"})
	s.Emit(SimEvent{Cycle: 40, Kind: SimLoopExit, Run: "r", Func: "main", PC: 9, Loop: "main@3", Arg: 5, Aux: 1})
	s.Emit(SimEvent{Cycle: 41, Kind: SimRedirect, Run: "r", Func: "main", PC: 9, Arg: 3})
	s.Emit(SimEvent{Cycle: 50, Kind: SimIssue, Run: "r", Func: "main", PC: 10})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, s); err != nil {
		t.Fatal(err)
	}
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	// Issue instants are skipped in the viewer export: 4 events remain.
	if len(file.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(file.TraceEvents), file.TraceEvents)
	}
	var exit *chromeEvent
	for i := range file.TraceEvents {
		if file.TraceEvents[i].Ph == "X" {
			exit = &file.TraceEvents[i]
		}
	}
	if exit == nil {
		t.Fatal("no residency (X) event for loop exit")
	}
	if exit.Ts != 5 || exit.Dur != 35 {
		t.Fatalf("residency ts/dur = %d/%d, want 5/35", exit.Ts, exit.Dur)
	}
}

// TestNilHooksAllocateNothing is the disabled-path guarantee: every
// hook on nil sinks must be a no-op with zero allocations, so
// instrumented hot loops pay only a nil check when observability is
// off.
func TestNilHooksAllocateNothing(t *testing.T) {
	var (
		o  *Obs
		r  *Registry
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Trace
		st *SimTrace
	)
	var sc *Scope
	ev := SimEvent{Cycle: 1, Kind: SimIssue, Func: "f", PC: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		g.Max(2)
		h.Observe(3)
		st.Emit(ev)
		sp := o.StartSpan("x")
		sp.SetAttr("k", "v")
		sp.Child("y").End()
		sp.End()
		tr.StartSpan("z").End()
		o.Counter("c").Add(1)
		r.Counter("c").Inc()
		sc.Close()
		sc.Obs().Counter("c").Inc()
		o.OpenScope(ScopeConfig{}).Close()
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocate %v times per op, want 0", allocs)
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledSimEmit(b *testing.B) {
	var s *SimTrace
	ev := SimEvent{Cycle: 1, Kind: SimIssue}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(ev)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledSimEmit(b *testing.B) {
	s := NewSimTrace(1 << 12)
	ev := SimEvent{Cycle: 1, Kind: SimIssue, Func: "main"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Cycle = int64(i)
		s.Emit(ev)
	}
}
