package perfgate

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SimStatsSchema versions the golden sim-stat baseline file
// (baselines/simstats.json). The file is regenerated with
// `benchdiff -update-baselines` and checked by the tier-1 test at the
// repository root.
const SimStatsSchema = "lpbuf/simstats/v1"

// BenchConfigStats captures the paper-level numbers of one
// benchmark × config: the Figure 7 buffer-issue curve and the 256-op
// dynamic counts / fetch energy behind Figures 8(a) and 8(b). All
// fields are deterministic simulator facts — they change only when
// compilation or simulation semantics change, never with wall-clock
// noise.
type BenchConfigStats struct {
	// BufferPct maps buffer size (operations) to the percentage of
	// dynamic operations issued from the loop buffer (Figure 7).
	BufferPct map[int]float64 `json:"buffer_pct"`
	// The remaining fields are measured at the paper's 256-op buffer.
	Cycles        int64 `json:"cycles"`
	OpsIssued     int64 `json:"ops_issued"`
	OpsFromBuffer int64 `json:"ops_from_buffer"`
	// MemFetches = OpsIssued - OpsFromBuffer (global-memory fetches).
	MemFetches int64 `json:"mem_fetches"`
	// StaticOps is the scheduled code size in operations.
	StaticOps int `json:"static_ops"`
	// NormFetchEnergy is the Figure 8(b) normalized fetch energy:
	// fetch energy at 256 ops relative to buffer-less issue of the
	// traditionally optimized code, via power.Model.
	NormFetchEnergy float64 `json:"norm_fetch_energy"`
}

// ShootoutStats pins the scheduler shoot-out facts of one benchmark's
// exact-backend compile: kernel counts, minimality-proof coverage and
// the per-kernel II totals against the heuristic backend. All integer
// counts of a deterministic, budget-bounded search — compared exactly.
type ShootoutStats struct {
	// Kernels counts loops the exact backend pipelined; Compared those
	// pipelined by both backends.
	Kernels  int `json:"kernels"`
	Compared int `json:"compared"`
	// Proven counts kernels with an in-budget minimality proof;
	// Fallbacks loops where the search budget died.
	Proven    int `json:"proven"`
	Fallbacks int `json:"fallbacks"`
	// Improved counts compared kernels where the exact II is strictly
	// smaller; HeurSumII/OptSumII total the compared kernels' IIs.
	Improved  int `json:"improved"`
	HeurSumII int `json:"heur_sum_ii"`
	OptSumII  int `json:"opt_sum_ii"`
}

// SimStats is the baseline document: per-benchmark, per-config stats
// plus the buffer-size sweep they were measured over.
type SimStats struct {
	Schema      string `json:"schema"`
	BufferSizes []int  `json:"buffer_sizes"`
	// Benchmarks maps benchmark → config ("traditional"/"aggressive"/
	// "aggressive-optimal") → stats.
	Benchmarks map[string]map[string]*BenchConfigStats `json:"benchmarks"`
	// Shootout maps benchmark → scheduler shoot-out facts (exact
	// backend vs heuristic).
	Shootout map[string]*ShootoutStats `json:"shootout,omitempty"`
}

// NewSimStats returns an empty document with the schema set.
func NewSimStats(sizes []int) *SimStats {
	return &SimStats{
		Schema:      SimStatsSchema,
		BufferSizes: append([]int(nil), sizes...),
		Benchmarks:  map[string]map[string]*BenchConfigStats{},
		Shootout:    map[string]*ShootoutStats{},
	}
}

// ReadSimStats loads and validates a baseline file.
func ReadSimStats(path string) (*SimStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s SimStats
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	if s.Schema != SimStatsSchema {
		return nil, fmt.Errorf("%s: schema %q, want %s", path, s.Schema, SimStatsSchema)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &s, nil
}

// WriteFile writes the document as stable indented JSON, creating the
// parent directory if needed.
func (s *SimStats) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineTolerance holds the explicit tolerance bands for the golden
// baseline check.
type BaselineTolerance struct {
	// BufferPctPoints is the absolute tolerance, in percentage points,
	// on every Figure 7 buffer-issue percentage.
	BufferPctPoints float64
	// CountRel is the relative tolerance on integer counters (cycles,
	// op counts, fetches, static size); 0 means exact.
	CountRel float64
	// EnergyAbs is the absolute tolerance on normalized fetch energy
	// (a unitless value near 0–1); covers float rounding only.
	EnergyAbs float64
}

// DefaultBaselineTolerance is the tier-1 gate: the simulator is
// deterministic, so counts are exact; buffer percentages get a
// half-point band (well under the 2-point drift the gate must catch)
// and energies a rounding-only band.
func DefaultBaselineTolerance() BaselineTolerance {
	return BaselineTolerance{BufferPctPoints: 0.5, CountRel: 0, EnergyAbs: 1e-6}
}

// Drift is one baseline deviation.
type Drift struct {
	Bench  string  `json:"bench"`
	Config string  `json:"config"`
	Field  string  `json:"field"`
	Want   float64 `json:"want"`
	Got    float64 `json:"got"`
	Tol    float64 `json:"tol"`
}

func (d Drift) String() string {
	return fmt.Sprintf("%s/%s %s: baseline %.6g, got %.6g (tolerance %.6g)",
		d.Bench, d.Config, d.Field, d.Want, d.Got, d.Tol)
}

// CompareSimStats checks got against the baseline want under the given
// tolerances and returns every drift, sorted for stable output.
// Missing or extra benchmarks/configs/sizes are drifts too: the
// baseline must be regenerated when the suite's shape changes.
func CompareSimStats(want, got *SimStats, tol BaselineTolerance) []Drift {
	var drifts []Drift
	add := func(bench, cfg, field string, w, g, t float64) {
		drifts = append(drifts, Drift{Bench: bench, Config: cfg, Field: field, Want: w, Got: g, Tol: t})
	}
	for _, bench := range sortedKeys(want.Benchmarks) {
		wc := want.Benchmarks[bench]
		gc := got.Benchmarks[bench]
		if gc == nil {
			add(bench, "*", "present", 1, 0, 0)
			continue
		}
		for _, cfg := range sortedKeys(wc) {
			w := wc[cfg]
			g := gc[cfg]
			if g == nil {
				add(bench, cfg, "present", 1, 0, 0)
				continue
			}
			for _, sz := range want.BufferSizes {
				wp, wok := w.BufferPct[sz]
				gp, gok := g.BufferPct[sz]
				field := fmt.Sprintf("%%buffer@%d", sz)
				if !wok || !gok {
					add(bench, cfg, field+" present", b2f(wok), b2f(gok), 0)
					continue
				}
				if math.Abs(gp-wp) > tol.BufferPctPoints {
					add(bench, cfg, field, wp, gp, tol.BufferPctPoints)
				}
			}
			checkCount := func(field string, wv, gv int64) {
				if wv == gv {
					return
				}
				rel := math.Abs(float64(gv-wv)) / math.Max(1, math.Abs(float64(wv)))
				if rel > tol.CountRel {
					add(bench, cfg, field, float64(wv), float64(gv), tol.CountRel)
				}
			}
			checkCount("cycles", w.Cycles, g.Cycles)
			checkCount("ops_issued", w.OpsIssued, g.OpsIssued)
			checkCount("ops_from_buffer", w.OpsFromBuffer, g.OpsFromBuffer)
			checkCount("mem_fetches", w.MemFetches, g.MemFetches)
			checkCount("static_ops", int64(w.StaticOps), int64(g.StaticOps))
			if math.Abs(g.NormFetchEnergy-w.NormFetchEnergy) > tol.EnergyAbs {
				add(bench, cfg, "norm_fetch_energy", w.NormFetchEnergy, g.NormFetchEnergy, tol.EnergyAbs)
			}
		}
	}
	for _, bench := range sortedKeys(got.Benchmarks) {
		if want.Benchmarks[bench] == nil {
			add(bench, "*", "new benchmark not in baseline", 0, 1, 0)
		}
	}
	// Shoot-out facts are deterministic search outcomes: exact match.
	for _, bench := range sortedKeys(want.Shootout) {
		w := want.Shootout[bench]
		g := got.Shootout[bench]
		if g == nil {
			add(bench, "shootout", "present", 1, 0, 0)
			continue
		}
		checkExact := func(field string, wv, gv int) {
			if wv != gv {
				add(bench, "shootout", field, float64(wv), float64(gv), 0)
			}
		}
		checkExact("kernels", w.Kernels, g.Kernels)
		checkExact("compared", w.Compared, g.Compared)
		checkExact("proven", w.Proven, g.Proven)
		checkExact("fallbacks", w.Fallbacks, g.Fallbacks)
		checkExact("improved", w.Improved, g.Improved)
		checkExact("heur_sum_ii", w.HeurSumII, g.HeurSumII)
		checkExact("opt_sum_ii", w.OptSumII, g.OptSumII)
	}
	for _, bench := range sortedKeys(got.Shootout) {
		if want.Shootout[bench] == nil {
			add(bench, "shootout", "new benchmark not in baseline", 0, 1, 0)
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		if drifts[i].Bench != drifts[j].Bench {
			return drifts[i].Bench < drifts[j].Bench
		}
		if drifts[i].Config != drifts[j].Config {
			return drifts[i].Config < drifts[j].Config
		}
		return drifts[i].Field < drifts[j].Field
	})
	return drifts
}

// RenderDrifts formats drifts for test failures and benchdiff output.
func RenderDrifts(drifts []Drift) string {
	if len(drifts) == 0 {
		return "sim-stat baselines: clean\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim-stat baselines: %d drift(s)\n", len(drifts))
	for _, d := range drifts {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
