package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Schema identifiers for the benchmark artifacts cmd/benchjson writes.
const (
	BenchSchemaV1 = "lpbuf/bench/v1"
	BenchSchemaV2 = "lpbuf/bench/v2"
)

// Env is the environment fingerprint recorded in a v2 artifact. Two
// artifacts from different environments can still be diffed, but the
// report flags the mismatch: cross-machine wall-clock comparisons are
// advisory at best.
type Env struct {
	Go         string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
}

// Mismatch describes how e differs from o ("" when equivalent for
// benchmarking purposes — hostname differences alone are not flagged).
func (e Env) Mismatch(o Env) string {
	// Zero-valued fields mean "not recorded" (v1 artifacts carry no
	// env), so only compare fields both sides actually have.
	switch {
	case e.Go != "" && o.Go != "" && e.Go != o.Go:
		return fmt.Sprintf("go version %s vs %s", e.Go, o.Go)
	case e.OS != "" && o.OS != "" && (e.OS != o.OS || e.Arch != o.Arch):
		return fmt.Sprintf("platform %s/%s vs %s/%s", e.OS, e.Arch, o.OS, o.Arch)
	case e.NumCPU != 0 && o.NumCPU != 0 && e.NumCPU != o.NumCPU:
		return fmt.Sprintf("%d vs %d CPUs", e.NumCPU, o.NumCPU)
	case e.GOMAXPROCS != 0 && o.GOMAXPROCS != 0 && e.GOMAXPROCS != o.GOMAXPROCS:
		return fmt.Sprintf("GOMAXPROCS %d vs %d", e.GOMAXPROCS, o.GOMAXPROCS)
	}
	return ""
}

// BenchResult is one benchmark's sample vectors: unit → one value per
// sample (fresh process). A v1 artifact loads as length-1 vectors.
type BenchResult struct {
	Name string `json:"name"`
	// Iterations is the b.N of the last sample's run.
	Iterations int64 `json:"iterations"`
	// Samples maps unit → per-sample values, e.g. "ns/op" →
	// [2.1e9, 2.2e9, 2.1e9].
	Samples map[string][]float64 `json:"samples"`
}

// BenchArtifact is the parsed artifact, normalized to v2 shape.
type BenchArtifact struct {
	Schema    string        `json:"schema"`
	Generated time.Time     `json:"generated"`
	Env       Env           `json:"env"`
	Benchtime string        `json:"benchtime"`
	Count     int           `json:"count"`
	Bench     string        `json:"bench"`
	Results   []BenchResult `json:"results"`
}

// Result returns the named benchmark's result, or nil.
func (a *BenchArtifact) Result(name string) *BenchResult {
	for i := range a.Results {
		if a.Results[i].Name == name {
			return &a.Results[i]
		}
	}
	return nil
}

// Names returns the benchmark names in artifact order.
func (a *BenchArtifact) Names() []string {
	names := make([]string, len(a.Results))
	for i := range a.Results {
		names[i] = a.Results[i].Name
	}
	return names
}

// MetricNames returns the sorted union of metric units in r.
func (r *BenchResult) MetricNames() []string {
	names := make([]string, 0, len(r.Samples))
	for unit := range r.Samples {
		names = append(names, unit)
	}
	sort.Strings(names)
	return names
}

// ReadBenchArtifact loads a lpbuf/bench/v1 or /v2 file, normalizing v1
// point values into single-sample vectors so downstream comparison
// code handles only one shape.
func ReadBenchArtifact(path string) (*BenchArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBenchArtifact(data)
}

// ParseBenchArtifact is ReadBenchArtifact over bytes.
func ParseBenchArtifact(data []byte) (*BenchArtifact, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("not valid JSON: %v", err)
	}
	switch probe.Schema {
	case BenchSchemaV2:
		var art BenchArtifact
		if err := json.Unmarshal(data, &art); err != nil {
			return nil, fmt.Errorf("%s: %v", BenchSchemaV2, err)
		}
		if err := art.validate(); err != nil {
			return nil, err
		}
		return &art, nil
	case BenchSchemaV1:
		var v1 struct {
			Schema    string    `json:"schema"`
			Generated time.Time `json:"generated"`
			Go        string    `json:"go"`
			OS        string    `json:"os"`
			Arch      string    `json:"arch"`
			Benchtime string    `json:"benchtime"`
			Bench     string    `json:"bench"`
			Results   []struct {
				Name       string             `json:"name"`
				Iterations int64              `json:"iterations"`
				Metrics    map[string]float64 `json:"metrics"`
			} `json:"results"`
		}
		if err := json.Unmarshal(data, &v1); err != nil {
			return nil, fmt.Errorf("%s: %v", BenchSchemaV1, err)
		}
		art := &BenchArtifact{
			Schema:    v1.Schema,
			Generated: v1.Generated,
			Env:       Env{Go: v1.Go, OS: v1.OS, Arch: v1.Arch},
			Benchtime: v1.Benchtime,
			Count:     1,
			Bench:     v1.Bench,
		}
		for _, r := range v1.Results {
			nr := BenchResult{Name: r.Name, Iterations: r.Iterations, Samples: map[string][]float64{}}
			for unit, v := range r.Metrics {
				nr.Samples[unit] = []float64{v}
			}
			art.Results = append(art.Results, nr)
		}
		if err := art.validate(); err != nil {
			return nil, err
		}
		return art, nil
	default:
		return nil, fmt.Errorf("unknown bench schema %q (want %s or %s)", probe.Schema, BenchSchemaV1, BenchSchemaV2)
	}
}

// validate checks the invariants obscheck and benchdiff both rely on.
func (a *BenchArtifact) validate() error {
	if len(a.Results) == 0 {
		return fmt.Errorf("no benchmark results")
	}
	seen := map[string]bool{}
	for i, r := range a.Results {
		if r.Name == "" {
			return fmt.Errorf("result %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("duplicate benchmark %q", r.Name)
		}
		seen[r.Name] = true
		if len(r.Samples) == 0 {
			return fmt.Errorf("%s: no metrics", r.Name)
		}
		ns, ok := r.Samples["ns/op"]
		if !ok {
			return fmt.Errorf("%s: missing ns/op", r.Name)
		}
		want := len(ns)
		for unit, vs := range r.Samples {
			if len(vs) == 0 {
				return fmt.Errorf("%s: metric %q has no samples", r.Name, unit)
			}
			if len(vs) != want {
				return fmt.Errorf("%s: metric %q has %d samples, ns/op has %d", r.Name, unit, len(vs), want)
			}
			for _, v := range vs {
				if v != v { // NaN
					return fmt.Errorf("%s: metric %q has NaN sample", r.Name, unit)
				}
			}
			if unit == "ns/op" {
				for _, v := range vs {
					if v <= 0 {
						return fmt.Errorf("%s: non-positive ns/op sample %v", r.Name, v)
					}
				}
			}
		}
	}
	return nil
}
