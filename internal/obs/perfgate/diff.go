package perfgate

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Direction says which way a metric is allowed to move.
type Direction int

const (
	// LowerIsBetter flags increases beyond tolerance (ns/op, B/op).
	LowerIsBetter Direction = iota
	// HigherIsBetter flags decreases beyond tolerance.
	HigherIsBetter
	// TwoSided flags movement in either direction — the policy for
	// deterministic paper metrics, where any drift is functional drift.
	TwoSided
)

// Policy is one metric's tolerance band.
type Policy struct {
	// Tol is the relative tolerance on the median delta (0 = exact).
	Tol float64
	// Dir selects which deltas count as regressions.
	Dir Direction
	// Deterministic metrics skip the significance gate: the simulator
	// is deterministic, so a changed median is a real change even with
	// one sample per side.
	Deterministic bool
}

// DefaultPolicies returns the per-metric tolerance bands used when the
// caller supplies no overrides. Wall-clock and allocation metrics get
// noise bands and a significance gate; the paper's functional metrics
// are exact and two-sided.
func DefaultPolicies() map[string]Policy {
	return map[string]Policy{
		"ns/op":     {Tol: 0.05, Dir: LowerIsBetter},
		"B/op":      {Tol: 0.03, Dir: LowerIsBetter},
		"allocs/op": {Tol: 0.01, Dir: LowerIsBetter},
		// sims/sec is the batch engine's sustained throughput
		// (BenchmarkSimsPerSec): wall-clock derived, so it gets a noise
		// band and the significance gate like ns/op, but higher is
		// better.
		"sims/sec": {Tol: 0.10, Dir: HigherIsBetter},
	}
}

// policyFor resolves the policy for one metric: explicit override,
// then the defaults table, then the deterministic-exact fallback for
// custom b.ReportMetric units. Every custom unit this repo emits that
// is not in the defaults table — %buffer@N, sim-ops/run, avg-speedup —
// is a deterministic simulator fact, so unknown units default to exact
// two-sided; wall-clock-derived units (sims/sec) must instead be
// listed above with a noise band.
func policyFor(name string, overrides map[string]Policy) Policy {
	if p, ok := overrides[name]; ok {
		return p
	}
	if p, ok := DefaultPolicies()[name]; ok {
		return p
	}
	return Policy{Tol: 0, Dir: TwoSided, Deterministic: true}
}

// Verdict classifies one metric comparison.
type Verdict string

const (
	VerdictOK          Verdict = "ok"          // within tolerance
	VerdictInsig       Verdict = "~"           // beyond tolerance but not significant
	VerdictRegression  Verdict = "REGRESSION"  // beyond tolerance, wrong direction, significant
	VerdictImprovement Verdict = "improvement" // beyond tolerance, good direction, significant
	VerdictMissing     Verdict = "MISSING"     // metric/benchmark present in old, absent in new
	VerdictNew         Verdict = "new"         // present only in new (informational)
)

// Summary is one side's sample summary.
type Summary struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
}

func summarize(xs []float64) Summary {
	return Summary{N: len(xs), Median: Median(xs), MAD: MAD(xs)}
}

// Row is one (benchmark, metric) comparison.
type Row struct {
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Old    Summary `json:"old"`
	New    Summary `json:"new"`
	// Delta is (newMedian - oldMedian) / |oldMedian| (absolute delta
	// when the old median is 0).
	Delta float64 `json:"delta"`
	// P is the Mann–Whitney p-value; NaN when no test was run (too few
	// samples, or a deterministic metric).
	P       float64 `json:"p,omitempty"`
	Verdict Verdict `json:"verdict"`
	Note    string  `json:"note,omitempty"`
}

// Options configures a comparison.
type Options struct {
	// Alpha is the significance level for the Mann–Whitney gate
	// (default 0.05).
	Alpha float64
	// Policies overrides per-metric tolerance bands.
	Policies map[string]Policy
	// MinSamples is the per-side sample count below which a noisy
	// metric's tolerance breach stays advisory ("~") instead of
	// failing: with fewer samples Mann–Whitney cannot reach p < 0.05,
	// so there is no statistical basis to call the breach real
	// (default 4 — the smallest n1=n2 where significance is
	// attainable). Deterministic metrics are unaffected.
	MinSamples int
	// AllowMissing downgrades benchmarks/metrics that vanished from
	// the new artifact to informational notes instead of regressions.
	AllowMissing bool
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 4
	}
	return o
}

// Report is the outcome of comparing two bench artifacts.
type Report struct {
	OldLabel string  `json:"old"`
	NewLabel string  `json:"new"`
	EnvNote  string  `json:"env_note,omitempty"`
	Alpha    float64 `json:"alpha"`
	Rows     []Row   `json:"rows"`
}

// Regressions counts failing rows (REGRESSION and, unless downgraded,
// MISSING).
func (r *Report) Regressions() int {
	n := 0
	for _, row := range r.Rows {
		if row.Verdict == VerdictRegression || row.Verdict == VerdictMissing {
			n++
		}
	}
	return n
}

// Compare diffs two artifacts metric by metric. Row order follows the
// old artifact's benchmark order (new-only benchmarks append at the
// end), with metrics sorted within a benchmark.
func Compare(old, cur *BenchArtifact, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Alpha: opts.Alpha}
	if note := old.Env.Mismatch(cur.Env); note != "" {
		rep.EnvNote = "environments differ: " + note + "; wall-clock comparisons are advisory"
	}
	for _, name := range old.Names() {
		or := old.Result(name)
		nr := cur.Result(name)
		if nr == nil {
			v := VerdictMissing
			note := "benchmark missing from new artifact"
			if opts.AllowMissing {
				v, note = VerdictNew, "benchmark only in old artifact (ignored)"
			}
			rep.Rows = append(rep.Rows, Row{Bench: name, Metric: "*", Verdict: v, Note: note, P: math.NaN()})
			continue
		}
		rep.Rows = append(rep.Rows, compareResult(or, nr, opts)...)
	}
	for _, name := range cur.Names() {
		if old.Result(name) == nil {
			rep.Rows = append(rep.Rows, Row{Bench: name, Metric: "*", Verdict: VerdictNew,
				Note: "benchmark only in new artifact", P: math.NaN()})
		}
	}
	return rep
}

// compareResult diffs one benchmark's metrics.
func compareResult(or, nr *BenchResult, opts Options) []Row {
	var rows []Row
	for _, unit := range or.MetricNames() {
		os_ := or.Samples[unit]
		ns, ok := nr.Samples[unit]
		if !ok {
			v := VerdictMissing
			note := "metric missing from new artifact"
			if opts.AllowMissing {
				v, note = VerdictNew, "metric only in old artifact (ignored)"
			}
			rows = append(rows, Row{Bench: or.Name, Metric: unit, Old: summarize(os_),
				Verdict: v, Note: note, P: math.NaN()})
			continue
		}
		rows = append(rows, compareMetric(or.Name, unit, os_, ns, opts))
	}
	for _, unit := range nr.MetricNames() {
		if _, ok := or.Samples[unit]; !ok {
			rows = append(rows, Row{Bench: or.Name, Metric: unit, New: summarize(nr.Samples[unit]),
				Verdict: VerdictNew, Note: "metric only in new artifact", P: math.NaN()})
		}
	}
	return rows
}

// compareMetric applies the tolerance band and significance gate to
// one metric's sample vectors.
func compareMetric(bench, unit string, oldS, newS []float64, opts Options) Row {
	pol := policyFor(unit, opts.Policies)
	row := Row{Bench: bench, Metric: unit, Old: summarize(oldS), New: summarize(newS), P: math.NaN()}
	if row.Old.Median != 0 {
		row.Delta = (row.New.Median - row.Old.Median) / math.Abs(row.Old.Median)
	} else {
		row.Delta = row.New.Median - row.Old.Median
	}
	beyond := math.Abs(row.Delta) > pol.Tol
	if !beyond {
		row.Verdict = VerdictOK
		return row
	}
	worse := false
	switch pol.Dir {
	case LowerIsBetter:
		worse = row.Delta > 0
	case HigherIsBetter:
		worse = row.Delta < 0
	case TwoSided:
		worse = true
	}
	if pol.Deterministic {
		// Deterministic metrics need no statistics: a changed median is
		// a real change.
		if worse {
			row.Verdict = VerdictRegression
			row.Note = "deterministic metric drifted"
		} else {
			row.Verdict = VerdictImprovement
		}
		return row
	}
	if min(row.Old.N, row.New.N) < opts.MinSamples {
		// A noisy metric needs significance to fail the gate, and below
		// MinSamples per side the Mann–Whitney test cannot reach
		// p < 0.05 (n=3+3 bottoms out at p=0.1). Flagging a tolerance
		// breach here would fail clean same-commit runs on a loaded
		// machine, so the row stays advisory.
		row.Verdict = VerdictInsig
		row.Note = fmt.Sprintf("beyond tolerance; n=%d+%d too small for significance test", row.Old.N, row.New.N)
		return row
	}
	row.P = MannWhitney(oldS, newS)
	if row.P >= opts.Alpha {
		row.Verdict = VerdictInsig
		row.Note = "beyond tolerance but not significant"
		return row
	}
	if worse {
		row.Verdict = VerdictRegression
	} else {
		row.Verdict = VerdictImprovement
	}
	return row
}

// ---- rendering ----

// Render formats the report as a benchstat-style text table.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchdiff: %s -> %s (alpha %.3g)\n", orDash(r.OldLabel), orDash(r.NewLabel), r.Alpha)
	if r.EnvNote != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.EnvNote)
	}
	w := tableWriter{&sb}
	w.row("benchmark", "metric", "old", "new", "delta", "", "")
	for _, row := range r.Rows {
		w.row(row.Bench, row.Metric, formatSide(row.Old), formatSide(row.New),
			formatDelta(row), formatP(row), verdictCell(row))
	}
	reg := r.Regressions()
	if reg == 0 {
		sb.WriteString("no significant regressions\n")
	} else {
		fmt.Fprintf(&sb, "%d significant regression(s)\n", reg)
	}
	return sb.String()
}

// Markdown formats the report for the CI artifact.
func (r *Report) Markdown() string {
	var sb strings.Builder
	sb.WriteString("# benchdiff report\n\n")
	fmt.Fprintf(&sb, "Comparing `%s` → `%s` at alpha %.3g.\n\n", orDash(r.OldLabel), orDash(r.NewLabel), r.Alpha)
	if r.EnvNote != "" {
		fmt.Fprintf(&sb, "> **Note:** %s\n\n", r.EnvNote)
	}
	sb.WriteString("| benchmark | metric | old | new | delta | p | verdict |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s | %s |\n",
			row.Bench, row.Metric, formatSide(row.Old), formatSide(row.New),
			formatDelta(row), formatP(row), verdictCell(row))
	}
	reg := r.Regressions()
	if reg == 0 {
		sb.WriteString("\nNo significant regressions.\n")
	} else {
		fmt.Fprintf(&sb, "\n**%d significant regression(s).**\n", reg)
	}
	return sb.String()
}

type tableWriter struct{ sb *strings.Builder }

func (w tableWriter) row(cells ...string) {
	widths := []int{26, 16, 18, 18, 9, 16, 0}
	for i, c := range cells {
		if i > 0 {
			w.sb.WriteString("  ")
		}
		if widths[i] > 0 {
			fmt.Fprintf(w.sb, "%-*s", widths[i], c)
		} else {
			w.sb.WriteString(c)
		}
	}
	// Trim trailing spaces so empty tail cells do not pad the line.
	s := w.sb.String()
	trimmed := strings.TrimRight(s, " ")
	w.sb.Reset()
	w.sb.WriteString(trimmed)
	w.sb.WriteString("\n")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func formatSide(s Summary) string {
	if s.N == 0 {
		return "-"
	}
	spread := ""
	if s.N > 1 {
		pct := 0.0
		if s.Median != 0 {
			pct = 100 * s.MAD / math.Abs(s.Median)
		}
		spread = fmt.Sprintf(" ±%.0f%%", pct)
	}
	return formatValue(s.Median) + spread
}

// formatValue renders a metric value compactly with SI-ish scaling for
// big magnitudes (ns/op values are in the billions).
func formatValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func formatDelta(row Row) string {
	if row.Old.N == 0 || row.New.N == 0 {
		return "-"
	}
	if row.Delta == 0 {
		return "~"
	}
	if row.Old.Median != 0 {
		return fmt.Sprintf("%+.1f%%", 100*row.Delta)
	}
	return fmt.Sprintf("%+.4g", row.Delta)
}

func formatP(row Row) string {
	if math.IsNaN(row.P) {
		return ""
	}
	return fmt.Sprintf("p=%.3f n=%d+%d", row.P, row.Old.N, row.New.N)
}

func verdictCell(row Row) string {
	s := string(row.Verdict)
	if row.Note != "" {
		s += " (" + row.Note + ")"
	}
	return s
}

// SortRows orders rows by (bench, metric) — used by callers that merge
// reports before rendering.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bench != rows[j].Bench {
			return rows[i].Bench < rows[j].Bench
		}
		return rows[i].Metric < rows[j].Metric
	})
}
