package perfgate

import (
	"strings"
	"testing"
)

// artifact builds a v2-shaped artifact from name → unit → samples.
func artifact(results map[string]map[string][]float64) *BenchArtifact {
	art := &BenchArtifact{
		Schema: BenchSchemaV2,
		Env:    Env{Go: "go1.24.0", OS: "linux", Arch: "amd64", NumCPU: 8, GOMAXPROCS: 8},
		Count:  5,
	}
	for _, name := range sortedKeys(results) {
		r := BenchResult{Name: name, Iterations: 1, Samples: map[string][]float64{}}
		for unit, vs := range results[name] {
			r.Samples[unit] = append([]float64(nil), vs...)
		}
		art.Results = append(art.Results, r)
	}
	return art
}

func findRow(t *testing.T, rep *Report, bench, metric string) Row {
	t.Helper()
	for _, row := range rep.Rows {
		if row.Bench == bench && row.Metric == metric {
			return row
		}
	}
	t.Fatalf("no row for %s/%s in %+v", bench, metric, rep.Rows)
	return Row{}
}

// TestSyntheticNsOpRegression is the acceptance scenario: a 10% ns/op
// slowdown across five samples must come out as a significant
// regression (non-zero gate), while the deterministic metric riding
// along stays clean.
func TestSyntheticNsOpRegression(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {
			"ns/op":       {2.23e9, 2.25e9, 2.21e9, 2.24e9, 2.22e9},
			"%buffer@256": {32.65, 32.65, 32.65, 32.65, 32.65},
		},
	})
	cur := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {
			"ns/op":       {2.45e9, 2.47e9, 2.44e9, 2.46e9, 2.45e9}, // ~+10%
			"%buffer@256": {32.65, 32.65, 32.65, 32.65, 32.65},
		},
	})
	rep := Compare(old, cur, Options{})
	row := findRow(t, rep, "Figure7Traditional", "ns/op")
	if row.Verdict != VerdictRegression {
		t.Fatalf("ns/op verdict = %s (p=%v, delta=%v), want REGRESSION", row.Verdict, row.P, row.Delta)
	}
	if row.Delta < 0.05 || row.Delta > 0.15 {
		t.Errorf("delta = %v, want ~+0.10", row.Delta)
	}
	if row.P >= 0.05 {
		t.Errorf("p = %v, want < 0.05", row.P)
	}
	if buf := findRow(t, rep, "Figure7Traditional", "%buffer@256"); buf.Verdict != VerdictOK {
		t.Errorf("%%buffer@256 verdict = %s, want ok", buf.Verdict)
	}
	if rep.Regressions() != 1 {
		t.Errorf("Regressions() = %d, want 1", rep.Regressions())
	}
	out := rep.Render()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "ns/op") {
		t.Errorf("rendered table missing regression marker:\n%s", out)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "| Figure7Traditional | ns/op |") {
		t.Errorf("markdown missing table row:\n%s", md)
	}
}

// TestSameCommitMultiSampleClean is the other half of the acceptance
// criterion: two runs of the same commit — identical deterministic
// metrics, wall-clock jitter within noise — must compare clean.
func TestSameCommitMultiSampleClean(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {
			"ns/op":       {2.23e9, 2.25e9, 2.21e9, 2.24e9, 2.22e9},
			"%buffer@256": {32.65, 32.65, 32.65, 32.65, 32.65},
		},
		"SimulatorThroughput": {
			"ns/op":       {1.60e8, 1.62e8, 1.59e8, 1.61e8, 1.60e8},
			"sim-ops/run": {2752029, 2752029, 2752029, 2752029, 2752029},
		},
	})
	cur := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {
			"ns/op":       {2.24e9, 2.22e9, 2.25e9, 2.21e9, 2.23e9},
			"%buffer@256": {32.65, 32.65, 32.65, 32.65, 32.65},
		},
		"SimulatorThroughput": {
			"ns/op":       {1.61e8, 1.59e8, 1.62e8, 1.60e8, 1.60e8},
			"sim-ops/run": {2752029, 2752029, 2752029, 2752029, 2752029},
		},
	})
	rep := Compare(old, cur, Options{})
	if n := rep.Regressions(); n != 0 {
		t.Fatalf("same-commit comparison found %d regressions:\n%s", n, rep.Render())
	}
	for _, row := range rep.Rows {
		if row.Verdict == VerdictRegression || row.Verdict == VerdictMissing {
			t.Errorf("row %s/%s verdict = %s", row.Bench, row.Metric, row.Verdict)
		}
	}
}

// TestSmallSampleNoiseIsAdvisory: below MinSamples per side,
// Mann–Whitney cannot reach p < 0.05 (n=3+3 bottoms out at 0.1), so a
// wall-clock tolerance breach must stay advisory ("~") — otherwise two
// clean same-commit runs on a loaded machine would fail the gate.
// Deterministic metrics in the same artifact still gate exactly.
func TestSmallSampleNoiseIsAdvisory(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {
			"ns/op":       {2.49e9, 2.67e9, 2.88e9},
			"%buffer@256": {32.65, 32.65, 32.65},
		},
	})
	cur := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {
			"ns/op":       {3.26e9, 3.10e9, 3.40e9}, // +22% load noise
			"%buffer@256": {32.65, 32.65, 32.65},
		},
	})
	rep := Compare(old, cur, Options{})
	row := findRow(t, rep, "Figure7Traditional", "ns/op")
	if row.Verdict != VerdictInsig {
		t.Fatalf("n=3+3 breach verdict = %s, want %s:\n%s", row.Verdict, VerdictInsig, rep.Render())
	}
	if n := rep.Regressions(); n != 0 {
		t.Fatalf("small-n noise counted as %d regression(s)", n)
	}
	// But the deterministic metric still fails on real drift at n=3.
	cur.Result("Figure7Traditional").Samples["%buffer@256"] = []float64{30.65, 30.65, 30.65}
	if n := Compare(old, cur, Options{}).Regressions(); n != 1 {
		t.Errorf("deterministic drift at n=3 regressions = %d, want 1", n)
	}
}

// TestDeterministicMetricDrift: a deterministic metric shift flags
// even without enough samples for a significance test.
func TestDeterministicMetricDrift(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"Figure7Aggressive": {"ns/op": {2.3e9}, "%buffer@256": {90.67}},
	})
	cur := artifact(map[string]map[string][]float64{
		"Figure7Aggressive": {"ns/op": {2.3e9}, "%buffer@256": {88.67}},
	})
	rep := Compare(old, cur, Options{})
	row := findRow(t, rep, "Figure7Aggressive", "%buffer@256")
	if row.Verdict != VerdictRegression {
		t.Fatalf("2-point %%buffer drift verdict = %s, want REGRESSION", row.Verdict)
	}
	// An *increase* of a two-sided deterministic metric flags too.
	cur2 := artifact(map[string]map[string][]float64{
		"Figure7Aggressive": {"ns/op": {2.3e9}, "%buffer@256": {92.67}},
	})
	if row := findRow(t, Compare(old, cur2, Options{}), "Figure7Aggressive", "%buffer@256"); row.Verdict != VerdictRegression {
		t.Errorf("upward drift verdict = %s, want REGRESSION (two-sided)", row.Verdict)
	}
}

// TestImprovementDoesNotFail: a significant speedup is reported but
// does not trip the gate.
func TestImprovementDoesNotFail(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"S": {"ns/op": {100, 101, 99, 100, 102}},
	})
	cur := artifact(map[string]map[string][]float64{
		"S": {"ns/op": {80, 81, 79, 80, 82}},
	})
	rep := Compare(old, cur, Options{})
	row := findRow(t, rep, "S", "ns/op")
	if row.Verdict != VerdictImprovement {
		t.Fatalf("verdict = %s, want improvement", row.Verdict)
	}
	if rep.Regressions() != 0 {
		t.Errorf("improvement counted as regression")
	}
}

// TestInsignificantNoiseWithinAlpha: a delta beyond tolerance but with
// overlapping samples is reported as "~", not a regression.
func TestInsignificantNoiseWithinAlpha(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"S": {"ns/op": {100, 140, 90, 120, 95}},
	})
	cur := artifact(map[string]map[string][]float64{
		"S": {"ns/op": {115, 95, 135, 100, 110}},
	})
	rep := Compare(old, cur, Options{})
	row := findRow(t, rep, "S", "ns/op")
	if row.Verdict == VerdictRegression {
		t.Fatalf("noisy overlap flagged as regression (p=%v, delta=%v)", row.P, row.Delta)
	}
}

// TestMissingBenchmarkFailsUnlessAllowed pins the missing-data policy.
func TestMissingBenchmarkFailsUnlessAllowed(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"A": {"ns/op": {100}},
		"B": {"ns/op": {100}},
	})
	cur := artifact(map[string]map[string][]float64{
		"A": {"ns/op": {100}},
	})
	if n := Compare(old, cur, Options{}).Regressions(); n != 1 {
		t.Errorf("missing benchmark regressions = %d, want 1", n)
	}
	if n := Compare(old, cur, Options{AllowMissing: true}).Regressions(); n != 0 {
		t.Errorf("AllowMissing regressions = %d, want 0", n)
	}
}

// TestPolicyOverride: a caller-supplied tolerance band replaces the
// default.
func TestPolicyOverride(t *testing.T) {
	old := artifact(map[string]map[string][]float64{
		"S": {"ns/op": {100, 101, 99, 100, 102}},
	})
	cur := artifact(map[string]map[string][]float64{
		"S": {"ns/op": {107, 108, 106, 107, 109}}, // +7%
	})
	// Default 5% tolerance: flagged.
	if row := findRow(t, Compare(old, cur, Options{}), "S", "ns/op"); row.Verdict != VerdictRegression {
		t.Fatalf("default tolerance verdict = %s, want REGRESSION", row.Verdict)
	}
	// Widened to 10%: clean.
	opts := Options{Policies: map[string]Policy{"ns/op": {Tol: 0.10, Dir: LowerIsBetter}}}
	if row := findRow(t, Compare(old, cur, opts), "S", "ns/op"); row.Verdict != VerdictOK {
		t.Errorf("widened tolerance verdict = %s, want ok", row.Verdict)
	}
}

// TestV1ArtifactParsesAsSingleSample: the previous schema loads and
// diffs against a v2 artifact.
func TestV1ArtifactParsesAsSingleSample(t *testing.T) {
	v1 := []byte(`{
	  "schema": "lpbuf/bench/v1",
	  "go": "go1.24.0", "os": "linux", "arch": "amd64",
	  "benchtime": "1x", "bench": "x",
	  "results": [
	    {"name": "Figure7Traditional", "iterations": 1,
	     "metrics": {"ns/op": 2233446082, "%buffer@256": 32.65}}
	  ]
	}`)
	art, err := ParseBenchArtifact(v1)
	if err != nil {
		t.Fatal(err)
	}
	r := art.Result("Figure7Traditional")
	if r == nil || len(r.Samples["ns/op"]) != 1 || r.Samples["%buffer@256"][0] != 32.65 {
		t.Fatalf("v1 normalization wrong: %+v", art)
	}
	cur := artifact(map[string]map[string][]float64{
		"Figure7Traditional": {"ns/op": {2.23e9}, "%buffer@256": {32.65}},
	})
	if n := Compare(art, cur, Options{}).Regressions(); n != 0 {
		t.Errorf("v1 vs identical v2 regressions = %d, want 0", n)
	}
}

func TestParseBenchArtifactRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"schema": "lpbuf/bench/v3"}`,
		`{"schema": "lpbuf/bench/v2", "results": []}`,
		`{"schema": "lpbuf/bench/v2", "results": [{"name": "A", "samples": {"B/op": [1]}}]}`,
		`{"schema": "lpbuf/bench/v2", "results": [{"name": "A", "samples": {"ns/op": [1, 2], "B/op": [1]}}]}`,
		`{"schema": "lpbuf/bench/v2", "results": [{"name": "A", "samples": {"ns/op": [0]}}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ParseBenchArtifact([]byte(c)); err == nil {
			t.Errorf("ParseBenchArtifact(%q) succeeded, want error", c)
		}
	}
}

// TestEnvMismatchNoted: cross-environment diffs carry a warning.
func TestEnvMismatchNoted(t *testing.T) {
	old := artifact(map[string]map[string][]float64{"S": {"ns/op": {100}}})
	cur := artifact(map[string]map[string][]float64{"S": {"ns/op": {100}}})
	cur.Env.Go = "go1.25.0"
	rep := Compare(old, cur, Options{})
	if rep.EnvNote == "" || !strings.Contains(rep.EnvNote, "go version") {
		t.Errorf("env note = %q, want go version mismatch", rep.EnvNote)
	}
}

// ---- baseline checks ----

func baselineFixture() *SimStats {
	s := NewSimStats([]int{64, 256})
	s.Benchmarks["adpcmdec"] = map[string]*BenchConfigStats{
		"traditional": {
			BufferPct: map[int]float64{64: 20.0, 256: 32.0},
			Cycles:    50000, OpsIssued: 160000, OpsFromBuffer: 51200,
			MemFetches: 108800, StaticOps: 300, NormFetchEnergy: 0.70,
		},
		"aggressive": {
			BufferPct: map[int]float64{64: 85.0, 256: 90.7},
			Cycles:    40972, OpsIssued: 163850, OpsFromBuffer: 163760,
			MemFetches: 90, StaticOps: 320, NormFetchEnergy: 0.28,
		},
	}
	return s
}

func cloneBaseline(t *testing.T, s *SimStats) *SimStats {
	t.Helper()
	out := NewSimStats(s.BufferSizes)
	for bench, cfgs := range s.Benchmarks {
		out.Benchmarks[bench] = map[string]*BenchConfigStats{}
		for cfg, st := range cfgs {
			c := *st
			c.BufferPct = map[int]float64{}
			for k, v := range st.BufferPct {
				c.BufferPct[k] = v
			}
			out.Benchmarks[bench][cfg] = &c
		}
	}
	return out
}

// TestBaselineDriftTwoPoints is the acceptance scenario: a 2-point
// %buffer@256 drift must be caught (the default band is half a point).
func TestBaselineDriftTwoPoints(t *testing.T) {
	want := baselineFixture()
	got := cloneBaseline(t, want)
	got.Benchmarks["adpcmdec"]["aggressive"].BufferPct[256] -= 2.0
	drifts := CompareSimStats(want, got, DefaultBaselineTolerance())
	if len(drifts) != 1 {
		t.Fatalf("drifts = %v, want exactly 1", drifts)
	}
	d := drifts[0]
	if d.Bench != "adpcmdec" || d.Config != "aggressive" || d.Field != "%buffer@256" {
		t.Errorf("drift = %+v", d)
	}
	if !strings.Contains(RenderDrifts(drifts), "%buffer@256") {
		t.Errorf("rendered drift missing field:\n%s", RenderDrifts(drifts))
	}
}

// TestBaselineWithinToleranceClean: sub-band float wiggle passes.
func TestBaselineWithinToleranceClean(t *testing.T) {
	want := baselineFixture()
	got := cloneBaseline(t, want)
	got.Benchmarks["adpcmdec"]["aggressive"].BufferPct[256] += 0.3
	got.Benchmarks["adpcmdec"]["traditional"].NormFetchEnergy += 1e-9
	if drifts := CompareSimStats(want, got, DefaultBaselineTolerance()); len(drifts) != 0 {
		t.Fatalf("unexpected drifts: %v", drifts)
	}
}

// TestBaselineCountDriftExact: counts are exact by default — off by
// one op flags.
func TestBaselineCountDriftExact(t *testing.T) {
	want := baselineFixture()
	got := cloneBaseline(t, want)
	got.Benchmarks["adpcmdec"]["aggressive"].OpsIssued++
	drifts := CompareSimStats(want, got, DefaultBaselineTolerance())
	if len(drifts) != 1 || drifts[0].Field != "ops_issued" {
		t.Fatalf("drifts = %v, want one ops_issued drift", drifts)
	}
}

// TestBaselineShapeChanges: missing configs and new benchmarks both
// demand a baseline regeneration.
func TestBaselineShapeChanges(t *testing.T) {
	want := baselineFixture()
	got := cloneBaseline(t, want)
	delete(got.Benchmarks["adpcmdec"], "traditional")
	got.Benchmarks["newbench"] = map[string]*BenchConfigStats{}
	drifts := CompareSimStats(want, got, DefaultBaselineTolerance())
	if len(drifts) != 2 {
		t.Fatalf("drifts = %v, want 2 (missing config, new benchmark)", drifts)
	}
}

// TestSimStatsRoundTrip: WriteFile/ReadSimStats preserve the document,
// including int-keyed buffer maps.
func TestSimStatsRoundTrip(t *testing.T) {
	want := baselineFixture()
	path := t.TempDir() + "/simstats.json"
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if drifts := CompareSimStats(want, got, BaselineTolerance{}); len(drifts) != 0 {
		t.Fatalf("round trip drifted: %v", drifts)
	}
}
