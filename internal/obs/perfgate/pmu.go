package perfgate

import "fmt"

// PMUBench is the sampling-enabled sibling of ThroughputBench: the
// same batched sweep with the guest PMU sampling at its default period
// (cmd/benchjson strips the "Benchmark" prefix).
const PMUBench = "SimsPerSecPMU"

// DefaultPMUOverheadTol is the budget the sampled PMU is held to:
// enabling sampling at the default period may cost at most this
// fraction of the sampling-off sims/sec median.
const DefaultPMUOverheadTol = 0.10

// PMUOverheadReport is the outcome of gating PMU sampling overhead.
// Unlike the throughput gate it needs no recorded baseline and no
// environment match: both medians come from the same artifact, so the
// ratio is meaningful wherever it was measured.
type PMUOverheadReport struct {
	// Off and On are the median sims/sec with sampling disabled
	// (ThroughputBench) and enabled (PMUBench).
	Off float64 `json:"off"`
	On  float64 `json:"on"`
	// OffSamples and OnSamples count the medians' sample vectors.
	OffSamples int `json:"off_samples"`
	OnSamples  int `json:"on_samples"`
	// Overhead is (off - on) / off: the throughput fraction sampling
	// costs. Negative means sampling measured faster (noise).
	Overhead float64 `json:"overhead"`
	// Tol is the budget applied.
	Tol float64 `json:"tol"`
	// Breach is true when Overhead exceeds Tol.
	Breach bool `json:"breach"`
}

// ComparePMUOverhead gates the sampled PMU's throughput cost using the
// two sims/sec benchmarks of one artifact. tol <= 0 applies the
// default budget.
func ComparePMUOverhead(art *BenchArtifact, tol float64) (*PMUOverheadReport, error) {
	if tol <= 0 {
		tol = DefaultPMUOverheadTol
	}
	med := func(bench string) (float64, int, error) {
		r := art.Result(bench)
		if r == nil {
			return 0, 0, fmt.Errorf("artifact has no %s benchmark", bench)
		}
		samples := r.Samples[throughputUnit]
		if len(samples) == 0 {
			return 0, 0, fmt.Errorf("%s has no %s samples", bench, throughputUnit)
		}
		return Median(samples), len(samples), nil
	}
	off, offN, err := med(ThroughputBench)
	if err != nil {
		return nil, err
	}
	on, onN, err := med(PMUBench)
	if err != nil {
		return nil, err
	}
	if !(off > 0) {
		return nil, fmt.Errorf("%s median %v is not positive", ThroughputBench, off)
	}
	rep := &PMUOverheadReport{
		Off: off, On: on,
		OffSamples: offN, OnSamples: onN,
		Overhead: (off - on) / off,
		Tol:      tol,
	}
	rep.Breach = rep.Overhead > tol
	return rep, nil
}

// Render formats the report for terminal output.
func (r *PMUOverheadReport) Render() string {
	s := fmt.Sprintf("pmu overhead gate: sampling off %.1f sims/sec, on %.1f sims/sec (overhead %.1f%%, budget %.0f%%)\n",
		r.Off, r.On, 100*r.Overhead, 100*r.Tol)
	if r.Breach {
		s += "PMU SAMPLING OVERHEAD OVER BUDGET\n"
	} else {
		s += "pmu overhead within budget\n"
	}
	return s
}

// Markdown formats the report for the CI artifact.
func (r *PMUOverheadReport) Markdown() string {
	s := "# pmu overhead gate\n\n"
	s += fmt.Sprintf("| | sims/sec | samples |\n|---|---|---|\n| sampling off | %.1f | %d |\n| sampling on | %.1f | %d |\n\n",
		r.Off, r.OffSamples, r.On, r.OnSamples)
	s += fmt.Sprintf("Overhead **%.1f%%** against a **%.0f%%** budget.\n", 100*r.Overhead, 100*r.Tol)
	if r.Breach {
		s += "\n**PMU SAMPLING OVERHEAD OVER BUDGET.**\n"
	} else {
		s += "\nWithin budget.\n"
	}
	return s
}
