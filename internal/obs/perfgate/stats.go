// Package perfgate is the repository's performance/statistics
// regression sentinel: a dependency-free statistics core (median, MAD,
// Mann–Whitney significance, bootstrap confidence intervals), readers
// for the lpbuf/bench/v1 and /v2 artifacts cmd/benchjson writes, a
// benchstat-style comparison with per-metric tolerance bands and
// direction policies, and a golden sim-stat baseline format capturing
// the paper-level numbers (Figure 7 buffer-issue percentages, dynamic
// op and fetch counts, normalized fetch energy) so functional drift is
// caught even when wall-clock numbers look fine.
//
// cmd/benchdiff is the CLI over this package; the tier-1 baseline test
// at the repository root and the CI perf job are its two standing
// consumers.
package perfgate

import (
	"math"
	"sort"
)

// Median returns the median of xs (0 for an empty slice). The input is
// not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median — a robust
// spread estimate that a single outlier sample cannot blow up the way
// it blows up a standard deviation.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// MannWhitney runs a two-sided Mann–Whitney U test on two independent
// samples and returns the p-value for the null hypothesis that the two
// distributions are equal. Small tie-free samples use the exact U
// distribution; everything else uses the normal approximation with tie
// and continuity corrections (the same scheme benchstat uses). The
// returned p is 1 when either sample is empty or when every
// observation is identical (no evidence either way).
func MannWhitney(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 1
	}
	// Joint ranking with average ranks for ties.
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	ranks := make([]float64, len(all))
	ties := false
	var tieTerm float64 // sum of t^3 - t over tie groups
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		if t := j - i; t > 1 {
			ties = true
			tieTerm += float64(t*t*t - t)
		}
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u := math.Min(u1, u2)

	if !ties && n1 <= 12 && n2 <= 12 {
		return exactMannWhitneyP(n1, n2, u)
	}
	n := float64(n1 + n2)
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all observations identical
	}
	// Continuity correction toward the mean.
	z := (u - mu + 0.5) / math.Sqrt(sigma2)
	p := math.Erfc(math.Abs(z) / math.Sqrt2) // two-sided
	if p > 1 {
		p = 1
	}
	return p
}

// exactMannWhitneyP computes the two-sided exact p-value
// 2*P(U <= u) for tie-free samples via the standard counting
// recurrence c(n1,n2,u) = c(n1-1,n2,u-n2) + c(n1,n2-1,u).
func exactMannWhitneyP(n1, n2 int, u float64) float64 {
	umax := n1 * n2
	ui := int(math.Floor(u + 1e-9))
	if ui > umax {
		ui = umax
	}
	// count[i][j][k] = number of orderings of i+j observations with
	// statistic k. Built iteratively to avoid recursion.
	count := make([][][]float64, n1+1)
	for i := 0; i <= n1; i++ {
		count[i] = make([][]float64, n2+1)
		for j := 0; j <= n2; j++ {
			count[i][j] = make([]float64, umax+1)
		}
	}
	count[0][0][0] = 1
	for i := 0; i <= n1; i++ {
		for j := 0; j <= n2; j++ {
			if i == 0 && j == 0 {
				continue
			}
			for k := 0; k <= i*j; k++ {
				var c float64
				if i > 0 && k-j >= 0 {
					c += count[i-1][j][k-j]
				}
				if j > 0 {
					c += count[i][j-1][k]
				}
				count[i][j][k] = c
			}
		}
	}
	var total, cum float64
	for k := 0; k <= umax; k++ {
		total += count[n1][n2][k]
	}
	for k := 0; k <= ui; k++ {
		cum += count[n1][n2][k]
	}
	p := 2 * cum / total
	if p > 1 {
		p = 1
	}
	return p
}

// rng is a small deterministic xorshift64* generator: bootstrap
// resampling must be reproducible (the workflow and its tests rerun
// the same comparison and expect the same confidence interval), so we
// do not use math/rand's global source.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// BootstrapMedianDeltaCI estimates a percentile confidence interval
// for median(b) - median(a) by resampling each side iters times with a
// deterministic generator. conf is the two-sided confidence level
// (e.g. 0.95). Degenerate inputs return a zero-width interval at the
// point estimate.
func BootstrapMedianDeltaCI(a, b []float64, iters int, conf float64) (lo, hi float64) {
	delta := Median(b) - Median(a)
	if len(a) == 0 || len(b) == 0 || iters <= 0 {
		return delta, delta
	}
	r := newRNG(uint64(len(a)*1000003 + len(b)))
	deltas := make([]float64, iters)
	sa := make([]float64, len(a))
	sb := make([]float64, len(b))
	for i := 0; i < iters; i++ {
		for j := range sa {
			sa[j] = a[r.intn(len(a))]
		}
		for j := range sb {
			sb[j] = b[r.intn(len(b))]
		}
		deltas[i] = Median(sb) - Median(sa)
	}
	sort.Float64s(deltas)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return deltas[loIdx], deltas[hiIdx]
}
