package perfgate

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	if got := MAD([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("MAD of constants = %v, want 0", got)
	}
	// Median 3, deviations {2,1,0,1,2} -> median 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD(1..5) = %v, want 1", got)
	}
	// One huge outlier barely moves MAD.
	if got := MAD([]float64{1, 2, 3, 4, 1e9}); got != 1 {
		t.Errorf("MAD with outlier = %v, want 1", got)
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	a := []float64{100, 101, 99, 103, 102}
	b := []float64{110, 111, 109, 113, 112}
	p := MannWhitney(a, b)
	// Fully separated n=5+5: exact two-sided p = 2/C(10,5) = 0.0079...
	if p >= 0.05 {
		t.Errorf("separated samples p = %v, want < 0.05", p)
	}
	if math.Abs(p-2.0/252.0) > 1e-9 {
		t.Errorf("exact p = %v, want %v", p, 2.0/252.0)
	}
	// Symmetry.
	if p2 := MannWhitney(b, a); math.Abs(p-p2) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", p, p2)
	}
}

func TestMannWhitneyOverlapping(t *testing.T) {
	a := []float64{100, 101, 99, 102, 100.5}
	b := []float64{100.2, 99.5, 101.5, 100.1, 99.9}
	if p := MannWhitney(a, b); p < 0.3 {
		t.Errorf("overlapping samples p = %v, want large", p)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitney(nil, []float64{1}); p != 1 {
		t.Errorf("empty side p = %v, want 1", p)
	}
	// All identical (fully tied): no evidence.
	if p := MannWhitney([]float64{5, 5, 5, 5}, []float64{5, 5, 5, 5}); p != 1 {
		t.Errorf("all-equal p = %v, want 1", p)
	}
	// Single sample per side can never be significant.
	if p := MannWhitney([]float64{1}, []float64{100}); p < 0.05 {
		t.Errorf("n=1+1 p = %v, want >= 0.05", p)
	}
}

func TestMannWhitneyTiesUseApproximation(t *testing.T) {
	// Heavy cross-group ties force the normal approximation; separated
	// groups must still come out significant.
	a := []float64{1, 1, 1, 2, 2, 2, 1, 2}
	b := []float64{9, 9, 9, 10, 10, 10, 9, 10}
	if p := MannWhitney(a, b); p >= 0.01 {
		t.Errorf("tied separated samples p = %v, want < 0.01", p)
	}
}

func TestBootstrapMedianDeltaCI(t *testing.T) {
	a := []float64{100, 101, 99, 100, 102}
	b := []float64{110, 111, 109, 110, 112}
	lo, hi := BootstrapMedianDeltaCI(a, b, 500, 0.95)
	if lo > hi {
		t.Fatalf("inverted interval [%v, %v]", lo, hi)
	}
	if lo <= 0 {
		t.Errorf("CI lower bound %v should be positive for a clear +10 shift", lo)
	}
	// Deterministic: same inputs, same interval.
	lo2, hi2 := BootstrapMedianDeltaCI(a, b, 500, 0.95)
	if lo != lo2 || hi != hi2 {
		t.Errorf("bootstrap not deterministic: [%v,%v] vs [%v,%v]", lo, hi, lo2, hi2)
	}
	// Degenerate inputs collapse to the point estimate.
	lo, hi = BootstrapMedianDeltaCI(nil, b, 500, 0.95)
	if lo != hi {
		t.Errorf("empty side CI = [%v,%v], want zero width", lo, hi)
	}
}
