package perfgate

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"
)

// ThroughputSchema versions the sustained-throughput baseline file
// (baselines/throughput.json). Unlike the sim-stat baselines, this is
// a wall-clock number: it is recorded on the CI bench host with
// `benchdiff -update-throughput BENCH_simulator.json` and is only
// meaningful against artifacts from a matching environment.
const ThroughputSchema = "lpbuf/throughput/v1"

// ThroughputBench is the benchmark the gate reads (cmd/benchjson
// strips the "Benchmark" prefix when it writes the artifact).
const ThroughputBench = "SimsPerSec"

// throughputUnit is the b.ReportMetric unit the benchmark emits.
const throughputUnit = "sims/sec"

// Throughput is the recorded baseline: the median sims/sec of one
// multi-sample benchjson run, plus the samples and environment it was
// measured under.
type Throughput struct {
	Schema    string    `json:"schema"`
	Generated time.Time `json:"generated"`
	Bench     string    `json:"bench"`
	// SimsPerSec is the median of Samples.
	SimsPerSec float64   `json:"sims_per_sec"`
	Samples    []float64 `json:"samples"`
	Env        Env       `json:"env"`
}

// ThroughputFromArtifact extracts the sims/sec sample vector from a
// bench artifact and summarizes it as a baseline document.
func ThroughputFromArtifact(art *BenchArtifact) (*Throughput, error) {
	r := art.Result(ThroughputBench)
	if r == nil {
		return nil, fmt.Errorf("artifact has no %s benchmark", ThroughputBench)
	}
	samples := r.Samples[throughputUnit]
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s has no %s samples", ThroughputBench, throughputUnit)
	}
	return &Throughput{
		Schema:     ThroughputSchema,
		Generated:  art.Generated,
		Bench:      ThroughputBench,
		SimsPerSec: Median(samples),
		Samples:    append([]float64(nil), samples...),
		Env:        art.Env,
	}, nil
}

// ReadThroughput loads and validates a baseline file.
func ReadThroughput(path string) (*Throughput, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Throughput
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	if t.Schema != ThroughputSchema {
		return nil, fmt.Errorf("%s: schema %q, want %s", path, t.Schema, ThroughputSchema)
	}
	if !(t.SimsPerSec > 0) {
		return nil, fmt.Errorf("%s: non-positive sims_per_sec %v", path, t.SimsPerSec)
	}
	return &t, nil
}

// WriteFile writes the document as stable indented JSON, creating the
// parent directory if needed.
func (t *Throughput) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ThroughputReport is the outcome of gating a fresh artifact against a
// recorded throughput baseline.
type ThroughputReport struct {
	Baseline *Throughput `json:"baseline"`
	Current  *Throughput `json:"current"`
	// Delta is (current - baseline) / baseline median sims/sec.
	Delta float64 `json:"delta"`
	// Tol is the relative band the gate applied.
	Tol float64 `json:"tol"`
	// EnvNote is set when the environments differ; the gate is then
	// advisory (cross-machine wall-clock numbers prove nothing).
	EnvNote string `json:"env_note,omitempty"`
	// Regression is true when throughput dropped below the band on a
	// matching environment.
	Regression bool `json:"regression"`
}

// CompareThroughput gates a fresh artifact's sims/sec against the
// baseline: a median drop beyond tol on a matching environment is a
// regression; on a mismatched environment the breach is reported but
// advisory. tol <= 0 uses the sims/sec default policy band.
func CompareThroughput(base *Throughput, art *BenchArtifact, tol float64) (*ThroughputReport, error) {
	cur, err := ThroughputFromArtifact(art)
	if err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = DefaultPolicies()[throughputUnit].Tol
	}
	rep := &ThroughputReport{Baseline: base, Current: cur, Tol: tol}
	rep.Delta = (cur.SimsPerSec - base.SimsPerSec) / math.Abs(base.SimsPerSec)
	if note := base.Env.Mismatch(cur.Env); note != "" {
		rep.EnvNote = "environments differ: " + note + "; throughput gate is advisory"
	}
	rep.Regression = rep.Delta < -tol && rep.EnvNote == ""
	return rep, nil
}

// Render formats the report for terminal output.
func (r *ThroughputReport) Render() string {
	s := fmt.Sprintf("throughput gate: baseline %.1f sims/sec, current %.1f sims/sec (%+.1f%%, tol %.0f%%)\n",
		r.Baseline.SimsPerSec, r.Current.SimsPerSec, 100*r.Delta, 100*r.Tol)
	if r.EnvNote != "" {
		s += "note: " + r.EnvNote + "\n"
	}
	if r.Regression {
		s += "THROUGHPUT REGRESSION\n"
	} else {
		s += "throughput within band\n"
	}
	return s
}

// Markdown formats the report for the CI artifact.
func (r *ThroughputReport) Markdown() string {
	s := "# throughput gate\n\n"
	s += fmt.Sprintf("| | sims/sec | samples |\n|---|---|---|\n| baseline | %.1f | %d |\n| current | %.1f | %d |\n\n",
		r.Baseline.SimsPerSec, len(r.Baseline.Samples), r.Current.SimsPerSec, len(r.Current.Samples))
	s += fmt.Sprintf("Delta **%+.1f%%** against a **%.0f%%** band.\n", 100*r.Delta, 100*r.Tol)
	if r.EnvNote != "" {
		s += "\n> **Note:** " + r.EnvNote + "\n"
	}
	if r.Regression {
		s += "\n**THROUGHPUT REGRESSION.**\n"
	} else {
		s += "\nWithin band.\n"
	}
	return s
}
