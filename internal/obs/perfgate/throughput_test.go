package perfgate

import (
	"path/filepath"
	"testing"
)

func throughputArtifact(samples []float64, env Env) *BenchArtifact {
	return &BenchArtifact{
		Schema: BenchSchemaV2,
		Env:    env,
		Results: []BenchResult{{
			Name: ThroughputBench,
			Samples: map[string][]float64{
				"ns/op":    make([]float64, len(samples)),
				"sims/sec": samples,
			},
		}},
	}
}

func TestThroughputRoundTrip(t *testing.T) {
	env := Env{Go: "go1.24", OS: "linux", Arch: "amd64", NumCPU: 8}
	art := throughputArtifact([]float64{100, 120, 110}, env)
	base, err := ThroughputFromArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	if base.SimsPerSec != 110 {
		t.Fatalf("median = %v, want 110", base.SimsPerSec)
	}
	path := filepath.Join(t.TempDir(), "throughput.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadThroughput(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SimsPerSec != base.SimsPerSec || got.Schema != ThroughputSchema {
		t.Fatalf("round trip lost data: %+v", got)
	}

	if _, err := ThroughputFromArtifact(&BenchArtifact{Results: []BenchResult{{Name: "Other"}}}); err == nil {
		t.Fatal("expected error for artifact without the throughput benchmark")
	}
}

func TestThroughputGate(t *testing.T) {
	env := Env{Go: "go1.24", OS: "linux", Arch: "amd64", NumCPU: 8}
	base, err := ThroughputFromArtifact(throughputArtifact([]float64{100, 100, 100}, env))
	if err != nil {
		t.Fatal(err)
	}

	// Within band: -5% on a 10% band.
	rep, err := CompareThroughput(base, throughputArtifact([]float64{95, 95, 95}, env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regression || rep.Tol != 0.10 {
		t.Fatalf("within-band drop flagged: %+v", rep)
	}

	// Beyond band on a matching environment: regression.
	rep, err = CompareThroughput(base, throughputArtifact([]float64{80, 80, 80}, env), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Regression {
		t.Fatalf("-20%% drop not flagged: %+v", rep)
	}

	// Same drop across environments: advisory, never a hard failure.
	other := env
	other.NumCPU = 1
	rep, err = CompareThroughput(base, throughputArtifact([]float64{80, 80, 80}, other), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regression || rep.EnvNote == "" {
		t.Fatalf("cross-environment drop should be advisory: %+v", rep)
	}

	// Improvements never regress, and explicit tolerance is honored.
	rep, err = CompareThroughput(base, throughputArtifact([]float64{130, 130, 130}, env), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regression || rep.Tol != 0.02 {
		t.Fatalf("improvement flagged: %+v", rep)
	}
}
