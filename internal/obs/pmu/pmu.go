// Package pmu is a sampling performance-monitoring unit for the
// simulated VLIW guest — the software analogue of a hardware PMU's
// cycle counter overflow interrupt. A deterministic sampling clock
// (fixed cycle period plus seeded jitter, so two runs of the same
// program take samples at identical cycles) fires on the simulator's
// issue clock; each sample is attributed to (function, planned loop,
// PC bucket, buffer state) and accumulated per buffer plan, so one
// shared batched execution (vliw.RunBatch) yields N per-plan profiles
// at a bounded, measurable cost instead of per-event tracing.
//
// The contract that makes this a PMU and not a debug mode: with
// sampling disabled the simulator hot path stays zero-alloc (a nil
// check per bundle), and at the default period the enabled cost is
// bounded (gated advisorily by `benchdiff -check-pmu-overhead`).
//
// Profiles export three ways: a versioned lpbuf.simprofile/v1 JSON
// document, collapsed-stack (flamegraph) text, and Perfetto counter
// tracks appended to the Chrome-trace export (obs.CounterSeries).
package pmu

import (
	"fmt"
	"sort"
)

// DefaultPeriod is the mean cycle distance between samples. At ~2-5M
// guest cycles per sweep run this yields hundreds to low thousands of
// samples per profile — enough for stable per-loop attribution, cheap
// enough to stay inside the ≤10% sims/sec overhead budget.
const DefaultPeriod = 4096

// Config selects the sampling clock parameters. The zero Period means
// "use DefaultPeriod"; a nil *Config anywhere in the pipeline means
// sampling is off entirely.
type Config struct {
	// Period is the mean cycle distance between samples.
	Period int64 `json:"period"`
	// Seed seeds the jitter PRNG (splitmix64). Zero normalizes to 1 so
	// the default config is itself deterministic and serializable.
	Seed uint64 `json:"seed"`
}

// Normalized returns the config with defaults applied.
func (c Config) Normalized() Config {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Clock is the deterministic sampling clock. The hot-path question
// "should this issue cycle be sampled" is a single integer compare
// against Next(); the jittered gap to the following sample is drawn
// from a seeded splitmix64 stream only when a sample actually fires,
// so the draw sequence — and therefore every sample cycle — is a pure
// function of (seed, period, the sequence of sampled cycles). Both the
// interpretive loop and the region-replay fast path observe the same
// issue-cycle sequence, so they take identical samples.
type Clock struct {
	period int64
	rng    uint64
	next   int64
}

// NewClock creates a clock from the (normalized) config, with the
// first sample scheduled one jittered gap after cycle zero.
func NewClock(cfg Config) *Clock {
	cfg = cfg.Normalized()
	c := &Clock{period: cfg.Period, rng: cfg.Seed}
	c.next = c.gap()
	return c
}

// Next returns the cycle at or after which the next sample fires.
func (c *Clock) Next() int64 { return c.next }

// Period returns the configured mean period.
func (c *Clock) Period() int64 { return c.period }

// Fire records that a sample was taken at cycle and schedules the
// next one a jittered gap later.
func (c *Clock) Fire(cycle int64) {
	c.next = cycle + c.gap()
}

// gap draws the next inter-sample distance: uniform in
// [period/2, 3*period/2), mean = period, never below 1.
func (c *Clock) gap() int64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	g := c.period/2 + int64(z%uint64(c.period))
	if g < 1 {
		g = 1
	}
	return g
}

// State is the loop-buffer state a sample was taken in, per plan.
type State uint8

const (
	// StateMemory: the sampled bundle issued from global memory outside
	// any planned loop.
	StateMemory State = iota
	// StateRecord: issued from memory inside a planned loop (the
	// buffer is recording or the loop's image is not yet intact).
	StateRecord
	// StateReplay: issued from the loop buffer.
	StateReplay
)

// States is the closed vocabulary the JSON schema admits.
var States = [...]string{StateMemory: "memory", StateRecord: "record", StateReplay: "replay"}

func (s State) String() string {
	if int(s) < len(States) {
		return States[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// PCBucketBits sets the PC-bucket granularity: bundles are bucketed in
// groups of 2^PCBucketBits (8) so profiles of long functions stay
// small while still localizing hot regions well inside a loop body.
const PCBucketBits = 3

// Key is one sample-attribution bucket.
type Key struct {
	// Func is the guest function name.
	Func string
	// Loop is the planned loop's key ("Func@StartBundle"), empty when
	// the sampled PC is outside every planned loop.
	Loop string
	// PCBucket is the sampled bundle index >> PCBucketBits.
	PCBucket int32
	// State is the plan's buffer state at the sampled cycle.
	State State
}

// Point is one counter-track observation: the plan's cumulative
// accounting as of a sample cycle. Values are cumulative so exporters
// can render either levels or per-interval rates.
type Point struct {
	Cycle int64 `json:"cycle"`
	// OpsBuffer / OpsMemory are cumulative operations issued from the
	// loop buffer / from global memory.
	OpsBuffer int64 `json:"ops_buffer"`
	OpsMemory int64 `json:"ops_memory"`
	// RedirectCycles is the plan's cumulative redirect (taken-branch /
	// loop-exit) penalty in cycles.
	RedirectCycles int64 `json:"redirect_cycles"`
}

// maxSeriesPoints bounds a profile's counter-track memory. Past the
// cap, samples keep counting into the attribution map but no further
// points are appended (SeriesTruncated reports how many were dropped).
const maxSeriesPoints = 1 << 16

// cell is one attribution bucket's accumulation: how many samples
// landed in it and the summed issue width (ops in the sampled bundle)
// of those samples. Counts estimate cycles; ops-weighted sums estimate
// fetch work, which is what the energy model prices.
type cell struct {
	count int64
	ops   int64
}

// Profile accumulates one plan's samples over one (or more) runs.
// Methods are not safe for concurrent use; the simulator owns a
// profile for the duration of a batch.
type Profile struct {
	// Label names the run this profile accounts ("bench/config@ops").
	Label string
	// Capacity is the plan's buffer capacity in operations (feeds the
	// fetch-energy counter track through the power model).
	Capacity int
	// Cycles is the accounted run's final cycle count (set by the
	// simulator after the run).
	Cycles int64

	samples         map[Key]cell
	loopLabels      map[string]string
	total           int64
	series          []Point
	seriesTruncated int64
}

// NewProfile creates an empty profile.
func NewProfile(label string, capacity int) *Profile {
	return &Profile{
		Label:      label,
		Capacity:   capacity,
		samples:    map[Key]cell{},
		loopLabels: map[string]string{},
	}
}

// Record attributes one sample. loopKey/loopLabel are empty outside
// planned loops; pc is the sampled bundle index within fn; ops is the
// sampled bundle's issue width (every op in a fetched bundle counts as
// issued, matching Stats.OpsIssued).
func (p *Profile) Record(fn, loopKey, loopLabel string, pc int32, st State, ops int64) {
	k := Key{Func: fn, Loop: loopKey, PCBucket: pc >> PCBucketBits, State: st}
	c := p.samples[k]
	c.count++
	c.ops += ops
	p.samples[k] = c
	p.total++
	if loopKey != "" {
		if _, ok := p.loopLabels[loopKey]; !ok {
			p.loopLabels[loopKey] = loopLabel
		}
	}
}

// Observe appends one counter-track point (cumulative values as of the
// sampled cycle).
func (p *Profile) Observe(cycle, opsBuffer, opsMemory, redirectCycles int64) {
	if len(p.series) >= maxSeriesPoints {
		p.seriesTruncated++
		return
	}
	p.series = append(p.series, Point{
		Cycle:          cycle,
		OpsBuffer:      opsBuffer,
		OpsMemory:      opsMemory,
		RedirectCycles: redirectCycles,
	})
}

// Total returns the number of samples recorded.
func (p *Profile) Total() int64 { return p.total }

// Samples returns the attribution rows, sorted by descending count
// then key (a deterministic order for goldens and diffs).
func (p *Profile) Samples() []SampleRow {
	rows := make([]SampleRow, 0, len(p.samples))
	for k, c := range p.samples {
		rows = append(rows, SampleRow{
			Func:      k.Func,
			Loop:      k.Loop,
			LoopLabel: p.loopLabels[k.Loop],
			PCBucket:  k.PCBucket,
			State:     k.State.String(),
			Count:     c.count,
			Ops:       c.ops,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Loop != b.Loop {
			return a.Loop < b.Loop
		}
		if a.PCBucket != b.PCBucket {
			return a.PCBucket < b.PCBucket
		}
		return a.State < b.State
	})
	return rows
}

// LoopCounts folds the attribution rows to per-loop sample counts
// (key → count, the "" key aggregating samples outside planned loops).
func (p *Profile) LoopCounts() map[string]int64 {
	out := map[string]int64{}
	for k, c := range p.samples {
		out[k.Loop] += c.count
	}
	return out
}

// Equal reports whether two profiles carry identical attribution —
// the differential property pinning interpretive vs fast-path runs.
func (p *Profile) Equal(q *Profile) bool {
	if p.total != q.total || len(p.samples) != len(q.samples) {
		return false
	}
	for k, c := range p.samples {
		if q.samples[k] != c {
			return false
		}
	}
	return true
}

// Merge folds another profile's attribution into p (used when one
// logical run is accounted in pieces). Series points are not merged —
// they are per-execution time series.
func (p *Profile) Merge(q *Profile) {
	if q == nil {
		return
	}
	for k, c := range q.samples {
		m := p.samples[k]
		m.count += c.count
		m.ops += c.ops
		p.samples[k] = m
	}
	for k, v := range q.loopLabels {
		if _, ok := p.loopLabels[k]; !ok {
			p.loopLabels[k] = v
		}
	}
	p.total += q.total
}
