package pmu

import (
	"strings"
	"testing"

	"lpbuf/internal/power"
)

// TestClockDeterminism: two clocks from the same config fire at
// identical cycles — the property making sampled profiles reproducible.
func TestClockDeterminism(t *testing.T) {
	cfg := Config{Period: 512, Seed: 42}
	a, b := NewClock(cfg), NewClock(cfg)
	cycle := int64(0)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("fire %d: clocks diverged (%d vs %d)", i, a.Next(), b.Next())
		}
		cycle = a.Next()
		a.Fire(cycle)
		b.Fire(cycle)
	}
	// A different seed must produce a different fire sequence.
	c := NewClock(Config{Period: 512, Seed: 43})
	same := true
	d := NewClock(cfg)
	for i := 0; i < 64; i++ {
		if c.Next() != d.Next() {
			same = false
			break
		}
		c.Fire(c.Next())
		d.Fire(d.Next())
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fire sequences")
	}
	_ = cycle
}

// TestClockJitterBounds: every gap lies in [period/2, 3*period/2) and
// the empirical mean converges to the period.
func TestClockJitterBounds(t *testing.T) {
	const period = 4096
	c := NewClock(Config{Period: period, Seed: 7})
	prev := int64(0)
	var sum int64
	const n = 20000
	for i := 0; i < n; i++ {
		next := c.Next()
		gap := next - prev
		if gap < period/2 || gap >= period+period/2 {
			t.Fatalf("fire %d: gap %d outside [%d, %d)", i, gap, period/2, period+period/2)
		}
		sum += gap
		prev = next
		c.Fire(next)
	}
	mean := float64(sum) / n
	if mean < 0.95*period || mean > 1.05*period {
		t.Fatalf("mean gap %.1f, want within 5%% of %d", mean, period)
	}
}

// TestClockNormalization: zero config normalizes to the documented
// defaults and tiny periods never produce a non-positive gap.
func TestClockNormalization(t *testing.T) {
	n := Config{}.Normalized()
	if n.Period != DefaultPeriod || n.Seed != 1 {
		t.Fatalf("zero config normalized to %+v", n)
	}
	c := NewClock(Config{Period: 1, Seed: 9})
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		if c.Next() <= prev {
			t.Fatalf("fire %d: next %d did not advance past %d", i, c.Next(), prev)
		}
		prev = c.Next()
		c.Fire(prev)
	}
}

func sampleProfile() *Profile {
	p := NewProfile("bench/config@64", 64)
	p.Cycles = 5000
	p.Record("main", "", "", 2, StateMemory, 1)
	p.Record("filter", "filter@4", "filter:B", 6, StateRecord, 4)
	p.Record("filter", "filter@4", "filter:B", 6, StateReplay, 4)
	p.Record("filter", "filter@4", "filter:B", 7, StateReplay, 4)
	p.Observe(1000, 0, 40, 0)
	p.Observe(2000, 32, 48, 2)
	p.Observe(4000, 96, 52, 2)
	return p
}

func TestProfileRecordAndSamples(t *testing.T) {
	p := sampleProfile()
	if p.Total() != 4 {
		t.Fatalf("total %d, want 4", p.Total())
	}
	rows := p.Samples()
	if len(rows) != 3 {
		t.Fatalf("rows %d, want 3", len(rows))
	}
	// Sorted by descending count first: the two replay samples at
	// bucket 0 land in one row... actually pc 6 and 7 share bucket 0.
	if rows[0].Count != 2 || rows[0].State != "replay" {
		t.Fatalf("top row %+v, want 2 replay samples", rows[0])
	}
	if rows[0].LoopLabel != "filter:B" {
		t.Fatalf("top row loop label %q", rows[0].LoopLabel)
	}
	if rows[0].Ops != 8 {
		t.Fatalf("top row ops %d, want 8 (two replay samples of width 4)", rows[0].Ops)
	}
	lc := p.LoopCounts()
	if lc["filter@4"] != 3 || lc[""] != 1 {
		t.Fatalf("loop counts %v", lc)
	}
}

// TestLoopEnergyEstimate: replay ops are priced at the buffer rate,
// record/memory ops at the memory rate.
func TestLoopEnergyEstimate(t *testing.T) {
	p := sampleProfile()
	m := power.Default()
	est := p.LoopEnergyEstimate(m)
	wantLoop := 4*m.MemEnergyPerOp + 8*m.BufferEnergyPerOp(64)
	wantOut := 1 * m.MemEnergyPerOp
	if diff := est["filter@4"] - wantLoop; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("loop estimate %v, want %v", est["filter@4"], wantLoop)
	}
	if diff := est[""] - wantOut; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("outside estimate %v, want %v", est[""], wantOut)
	}
}

func TestProfileEqualAndMerge(t *testing.T) {
	p, q := sampleProfile(), sampleProfile()
	if !p.Equal(q) {
		t.Fatal("identical profiles not Equal")
	}
	q.Record("main", "", "", 0, StateMemory, 1)
	if p.Equal(q) {
		t.Fatal("diverged profiles still Equal")
	}
	m := NewProfile("bench/config@64", 64)
	m.Merge(p)
	m.Merge(nil)
	if !m.Equal(p) {
		t.Fatal("merge of p into empty profile not Equal to p")
	}
	m.Merge(p)
	if m.Total() != 2*p.Total() {
		t.Fatalf("double merge total %d, want %d", m.Total(), 2*p.Total())
	}
}

func TestDocumentRoundTripAndValidate(t *testing.T) {
	doc := NewDocument(Config{}, []*Profile{sampleProfile(), nil})
	if len(doc.Profiles) != 1 {
		t.Fatalf("profiles %d, want 1 (nil skipped)", len(doc.Profiles))
	}
	if doc.Sampling.Period != DefaultPeriod {
		t.Fatalf("sampling not normalized: %+v", doc.Sampling)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped document rejected: %v", err)
	}
	if back.Profiles[0].TotalSamples != 4 {
		t.Fatalf("round trip lost samples: %+v", back.Profiles[0])
	}

	// Validate must reject the invariants obscheck pins.
	bad := *back
	bad.Profiles = append([]ProfileDoc(nil), back.Profiles...)
	bad.Profiles[0].TotalSamples++
	if err := bad.Validate(); err == nil {
		t.Fatal("sample-sum mismatch accepted")
	}
	bad = *back
	bad.Profiles = append([]ProfileDoc(nil), back.Profiles...)
	bad.Profiles[0].Samples = append([]SampleRow(nil), back.Profiles[0].Samples...)
	bad.Profiles[0].Samples[0].State = "warp"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown state accepted")
	}
	bad = *back
	bad.Sampling.Period = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Decode([]byte(`{"schema":"nope"}`)); err == nil {
		t.Fatal("wrong schema decoded")
	}
}

func TestCollapsedStacks(t *testing.T) {
	doc := NewDocument(Config{}, []*Profile{sampleProfile()})
	text := doc.Collapsed()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 3 {
		t.Fatalf("collapsed lines %d, want 3:\n%s", len(lines), text)
	}
	if !strings.Contains(text, "bench/config@64;filter;filter:B;replay 2") {
		t.Fatalf("missing replay line:\n%s", text)
	}
	if !strings.Contains(text, "bench/config@64;main;-;memory 1") {
		t.Fatalf("missing outside-loop line:\n%s", text)
	}
}

func TestCounterSeries(t *testing.T) {
	doc := NewDocument(Config{}, []*Profile{sampleProfile()})
	tracks := doc.CounterSeries(nil)
	if len(tracks) != 3 {
		t.Fatalf("tracks %d, want 3 (energy, residency, redirect)", len(tracks))
	}
	byName := map[string][]float64{}
	for _, tr := range tracks {
		if tr.Run != "bench/config@64" {
			t.Fatalf("track run %q", tr.Run)
		}
		if len(tr.Points) != 3 {
			t.Fatalf("track %s has %d points, want 3", tr.Name, len(tr.Points))
		}
		var vals []float64
		for _, p := range tr.Points {
			vals = append(vals, p.Value)
		}
		byName[tr.Name] = vals
	}
	// Residency is per-interval: 0/40, then 32/(32+8), then 64/(64+4).
	want := []float64{0, 0.8, 64.0 / 68}
	for i, v := range byName["buffer_residency"] {
		if diff := v - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("residency[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Redirect penalty is the per-interval delta: 0, 2, 0.
	if r := byName["redirect_penalty"]; r[0] != 0 || r[1] != 2 || r[2] != 0 {
		t.Fatalf("redirect deltas %v", r)
	}
	for i, v := range byName["fetch_energy"] {
		if v < 0 {
			t.Fatalf("fetch_energy[%d] = %v negative", i, v)
		}
	}
}
