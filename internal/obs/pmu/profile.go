package pmu

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"lpbuf/internal/obs"
	"lpbuf/internal/power"
)

// Schema versions the sampled-profile JSON document. Bump on any
// breaking change to the Document shape (cmd/obscheck -simprofile
// pins the current one).
const Schema = "lpbuf.simprofile/v1"

// SampleRow is one attribution bucket in the exported document.
type SampleRow struct {
	Func      string `json:"func"`
	Loop      string `json:"loop,omitempty"`
	LoopLabel string `json:"loop_label,omitempty"`
	PCBucket  int32  `json:"pc_bucket"`
	State     string `json:"state"`
	Count     int64  `json:"count"`
	// Ops sums the sampled bundles' issue widths: Count estimates
	// cycles spent in the bucket, Ops estimates fetch work (what the
	// energy model prices).
	Ops int64 `json:"ops"`
}

// ProfileDoc is one plan's profile in the exported document.
type ProfileDoc struct {
	Label           string      `json:"label"`
	Capacity        int         `json:"buffer_ops"`
	Cycles          int64       `json:"cycles"`
	TotalSamples    int64       `json:"total_samples"`
	Samples         []SampleRow `json:"samples"`
	Series          []Point     `json:"series,omitempty"`
	SeriesTruncated int64       `json:"series_truncated,omitempty"`
}

// Document is the versioned lpbuf.simprofile/v1 export: the sampling
// configuration (so a reader can reproduce or reason about the
// density) plus one profile per accounted plan.
type Document struct {
	Schema   string       `json:"schema"`
	Sampling Config       `json:"sampling"`
	Profiles []ProfileDoc `json:"profiles"`
}

// NewDocument snapshots profiles under the given sampling config,
// sorted by label. Nil and empty profiles are skipped.
func NewDocument(cfg Config, profiles []*Profile) *Document {
	d := &Document{Schema: Schema, Sampling: cfg.Normalized()}
	for _, p := range profiles {
		if p == nil {
			continue
		}
		d.Profiles = append(d.Profiles, ProfileDoc{
			Label:           p.Label,
			Capacity:        p.Capacity,
			Cycles:          p.Cycles,
			TotalSamples:    p.total,
			Samples:         p.Samples(),
			Series:          append([]Point(nil), p.series...),
			SeriesTruncated: p.seriesTruncated,
		})
	}
	sort.Slice(d.Profiles, func(i, j int) bool { return d.Profiles[i].Label < d.Profiles[j].Label })
	return d
}

// Encode renders the document as indented JSON with a trailing
// newline.
func (d *Document) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the encoded document to path.
func (d *Document) WriteFile(path string) error {
	data, err := d.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Decode parses and schema-checks an encoded document.
func Decode(data []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("simprofile: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("simprofile schema %q, want %q", d.Schema, Schema)
	}
	return &d, nil
}

// Validate checks the document invariants the schema promises:
// a positive sampling period, at least one profile, per-profile
// sample sums matching total_samples, states within the closed
// vocabulary, and non-negative, cycle-ordered series points.
func (d *Document) Validate() error {
	if d.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", d.Schema, Schema)
	}
	if d.Sampling.Period <= 0 {
		return fmt.Errorf("sampling period %d, want > 0", d.Sampling.Period)
	}
	if len(d.Profiles) == 0 {
		return fmt.Errorf("no profiles")
	}
	states := map[string]bool{}
	for _, s := range States {
		states[s] = true
	}
	for i, p := range d.Profiles {
		if p.Label == "" {
			return fmt.Errorf("profile %d has no label", i)
		}
		if p.Capacity <= 0 {
			return fmt.Errorf("profile %q: buffer_ops %d, want > 0", p.Label, p.Capacity)
		}
		var sum int64
		for j, r := range p.Samples {
			if r.Func == "" {
				return fmt.Errorf("profile %q sample %d has no func", p.Label, j)
			}
			if !states[r.State] {
				return fmt.Errorf("profile %q sample %d has unknown state %q", p.Label, j, r.State)
			}
			if r.Count <= 0 {
				return fmt.Errorf("profile %q sample %d has count %d", p.Label, j, r.Count)
			}
			if r.Ops < 0 {
				return fmt.Errorf("profile %q sample %d has negative ops %d", p.Label, j, r.Ops)
			}
			sum += r.Count
		}
		if sum != p.TotalSamples {
			return fmt.Errorf("profile %q: samples sum to %d, total_samples says %d", p.Label, sum, p.TotalSamples)
		}
		last := int64(-1)
		for j, pt := range p.Series {
			if pt.Cycle <= last {
				return fmt.Errorf("profile %q series point %d out of cycle order", p.Label, j)
			}
			if pt.OpsBuffer < 0 || pt.OpsMemory < 0 || pt.RedirectCycles < 0 {
				return fmt.Errorf("profile %q series point %d has negative counters", p.Label, j)
			}
			last = pt.Cycle
		}
	}
	return nil
}

// Collapsed renders every profile as collapsed-stack (flamegraph)
// text: "run;func;loop;state count" lines, ready for any flamegraph
// renderer (e.g. flamegraph.pl or speedscope).
func (d *Document) Collapsed() string {
	var sb strings.Builder
	for _, p := range d.Profiles {
		for _, r := range p.Samples {
			frame := "-"
			if r.Loop != "" {
				frame = r.LoopLabel
				if frame == "" {
					frame = r.Loop
				}
			}
			fmt.Fprintf(&sb, "%s;%s;%s;%s %d\n", p.Label, r.Func, frame, r.State, r.Count)
		}
	}
	return sb.String()
}

// LoopEnergyEstimate estimates each planned loop's instruction-fetch
// energy from the ops-weighted samples: every sample contributes its
// bundle's issue width at the per-op fetch rate of its buffer state
// (replay issues from the buffer, record and memory from global
// memory). Samples fire at uniformly jittered cycles, so up to the
// sampling density the sums are proportional to the exact per-loop
// attribution power.Model.Attribute computes from full op counts —
// the Figure 5 golden test pins that agreement. The "" key aggregates
// code outside planned loops.
func (p *Profile) LoopEnergyEstimate(model *power.Model) map[string]float64 {
	if model == nil {
		model = power.Default()
	}
	out := map[string]float64{}
	for k, c := range p.samples {
		if k.State == StateReplay {
			out[k.Loop] += model.FetchEnergy(0, c.ops, p.Capacity)
		} else {
			out[k.Loop] += model.FetchEnergy(c.ops, 0, p.Capacity)
		}
	}
	return out
}

// CounterSeries renders every profile's Perfetto counter tracks.
func (d *Document) CounterSeries(model *power.Model) []obs.CounterSeries {
	if model == nil {
		model = power.Default()
	}
	var out []obs.CounterSeries
	for i := range d.Profiles {
		p := &d.Profiles[i]
		if len(p.Series) == 0 {
			continue
		}
		energy := obs.CounterSeries{Name: "fetch_energy", Run: p.Label}
		resid := obs.CounterSeries{Name: "buffer_residency", Run: p.Label}
		redirect := obs.CounterSeries{Name: "redirect_penalty", Run: p.Label}
		var prev Point
		for _, pt := range p.Series {
			dBuf, dMem := pt.OpsBuffer-prev.OpsBuffer, pt.OpsMemory-prev.OpsMemory
			energy.Points = append(energy.Points, obs.CounterPoint{
				Cycle: pt.Cycle,
				Value: model.FetchEnergy(dMem, dBuf, p.Capacity),
			})
			frac := 0.0
			if dBuf+dMem > 0 {
				frac = float64(dBuf) / float64(dBuf+dMem)
			}
			resid.Points = append(resid.Points, obs.CounterPoint{Cycle: pt.Cycle, Value: frac})
			redirect.Points = append(redirect.Points, obs.CounterPoint{
				Cycle: pt.Cycle,
				Value: float64(pt.RedirectCycles - prev.RedirectCycles),
			})
			prev = pt
		}
		out = append(out, energy, resid, redirect)
	}
	return out
}
