package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled so
// the daemon stays zero-dependency. Registry instrument names map to
// Prometheus series: the name is sanitized into the metric name under
// an "lpbuf_" prefix, and an optional trailing `{k="v",...}` suffix in
// the registry name becomes the series' label set, so one logical
// family ("http_requests") can carry many labeled series while staying
// a plain string key in the registry's sharded maps. CheckProm is the
// matching parser/validator: cmd/obscheck -prom runs scrape output
// through it, so a passing check guarantees a Prometheus server can
// ingest the page.

// promSeries is one parsed registry instrument: family base name,
// canonical label suffix, and rendered sample lines.
type promSeries struct {
	labels string // canonical `k="v",...` (no braces), may be empty
	value  string // rendered sample value (scalars)
	hist   *HistogramSnapshot
}

type promFamily struct {
	name   string // sanitized, prefixed metric name
	kind   string // "counter", "gauge", "histogram"
	raw    string // first raw registry base name (for HELP)
	series []promSeries
}

// WriteProm renders a registry snapshot as Prometheus text exposition.
// Families are sorted by metric name and series by label set, so
// identical snapshots produce byte-identical pages. Returns an error
// if two differently-kinded instruments sanitize to the same metric
// name (the page would be unscrapeable).
func WriteProm(w io.Writer, snap RegistrySnapshot) error {
	fams := map[string]*promFamily{}
	add := func(rawName, kind string, s promSeries) error {
		base, labels, err := splitSeriesName(rawName)
		if err != nil {
			return fmt.Errorf("metric %q: %w", rawName, err)
		}
		name := promName(base)
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, kind: kind, raw: base}
			fams[name] = f
		}
		if f.kind != kind {
			return fmt.Errorf("metric %q: sanitized name %q already used by a %s", rawName, name, f.kind)
		}
		s.labels = labels
		f.series = append(f.series, s)
		return nil
	}
	snapErr := func() error {
		for rawName, v := range snap.Counters {
			if err := add(rawName, "counter", promSeries{value: strconv.FormatInt(v, 10)}); err != nil {
				return err
			}
		}
		for rawName, v := range snap.Gauges {
			if err := add(rawName, "gauge", promSeries{value: formatPromFloat(v)}); err != nil {
				return err
			}
		}
		for rawName, h := range snap.Histograms {
			h := h
			if err := add(rawName, "histogram", promSeries{hist: &h}); err != nil {
				return err
			}
		}
		return nil
	}()
	if snapErr != nil {
		return snapErr
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(bw, "# HELP %s lpbuf registry instrument %q\n", f.name, f.raw)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind != "histogram" {
				if s.labels == "" {
					fmt.Fprintf(bw, "%s %s\n", f.name, s.value)
				} else {
					fmt.Fprintf(bw, "%s{%s} %s\n", f.name, s.labels, s.value)
				}
				continue
			}
			writePromHistogram(bw, f.name, s.labels, *s.hist)
		}
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram series: cumulative
// `_bucket{le="..."}` lines from the log2 buckets (le is the inclusive
// upper value of each bucket, i.e. the exclusive registry bound minus
// one), a `+Inf` bucket, `_sum` and `_count`.
func writePromHistogram(w io.Writer, name, labels string, h HistogramSnapshot) {
	withLe := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		max := bucketMax(b.UpperBound)
		if max == int64(math.MaxInt64) {
			// The clamped top bucket is the +Inf bucket.
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, withLe(strconv.FormatInt(max, 10)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, withLe("+Inf"), h.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
	}
}

// formatPromFloat renders a gauge value in the exposition format.
func formatPromFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitSeriesName splits a registry instrument name into its base name
// and a canonical (sorted, escaped) label suffix. Names without a
// `{...}` suffix have no labels. Label values are re-escaped, label
// names are validated and the pairs are sorted by key so two spellings
// of the same series always canonicalize identically.
func splitSeriesName(raw string) (base, labels string, err error) {
	open := strings.IndexByte(raw, '{')
	if open < 0 {
		return raw, "", nil
	}
	if !strings.HasSuffix(raw, "}") {
		return "", "", fmt.Errorf("unterminated label suffix")
	}
	base = raw[:open]
	pairs, err := parseLabels(raw[open+1 : len(raw)-1])
	if err != nil {
		return "", "", err
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	parts := make([]string, 0, len(pairs))
	seen := map[string]bool{}
	for _, kv := range pairs {
		if !validLabelName(kv[0]) {
			return "", "", fmt.Errorf("bad label name %q", kv[0])
		}
		if seen[kv[0]] {
			return "", "", fmt.Errorf("duplicate label %q", kv[0])
		}
		seen[kv[0]] = true
		parts = append(parts, kv[0]+`="`+escapeLabelValue(kv[1])+`"`)
	}
	return base, strings.Join(parts, ","), nil
}

// parseLabels scans `k="v",k2="v2"` into pairs, honouring escapes in
// the quoted values.
func parseLabels(s string) ([][2]string, error) {
	var out [][2]string
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", s[i:])
		}
		key := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("label %q value is unterminated", key)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %q value ends in a bare backslash", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %q value has unknown escape \\%c", key, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out = append(out, [2]string{key, val.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", key)
			}
			i++
		}
	}
	return out, nil
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promName sanitizes a registry base name into a Prometheus metric
// name: every byte outside [a-zA-Z0-9_:] becomes '_', and the result
// is prefixed with "lpbuf_" (which also guarantees a legal first
// character).
func promName(base string) string {
	var b strings.Builder
	b.WriteString("lpbuf_")
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// PromSummary reports what a validated exposition page contained.
type PromSummary struct {
	Families int // # TYPE declarations
	Series   int // distinct (name, label set) sample series
	Samples  int // sample lines
}

// CheckProm parses and validates a Prometheus text exposition page:
// metric and label names must use the legal charset, every sample must
// belong to a family with exactly one preceding # TYPE line of a known
// kind, no two samples may share a (name, label set) series, histogram
// families must expose consistent cumulative _bucket/_sum/_count
// series, and counter values must be non-negative. It is deliberately
// the same grammar WriteProm emits — obscheck -prom runs scrapes
// through this one parser, so passing it guarantees scrapeability.
func CheckProm(data []byte) (PromSummary, error) {
	var sum PromSummary
	types := map[string]string{}    // family -> kind
	seen := map[string]bool{}       // name + canonical labels -> present
	hist := map[string]*histCheck{} // histogram family (+ non-le labels) -> running check
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return sum, fmt.Errorf("line %d: malformed # TYPE line", lineNo)
				}
				name, kind := fields[2], fields[3]
				if !validMetricName(name) {
					return sum, fmt.Errorf("line %d: illegal metric name %q in # TYPE", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return sum, fmt.Errorf("line %d: unknown type %q for %q", lineNo, kind, name)
				}
				if _, dup := types[name]; dup {
					return sum, fmt.Errorf("line %d: duplicate # TYPE for %q", lineNo, name)
				}
				types[name] = kind
				sum.Families++
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return sum, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return sum, fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
		}
		family, sampleKind := name, ""
		if kind, ok := types[name]; ok {
			sampleKind = kind
		} else {
			// Histogram/summary samples use suffixed names.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base, found := strings.CutSuffix(name, suffix)
				if !found {
					continue
				}
				if kind, ok := types[base]; ok && (kind == "histogram" || kind == "summary") {
					family, sampleKind = base, kind
					break
				}
			}
		}
		if sampleKind == "" {
			return sum, fmt.Errorf("line %d: sample %q has no preceding # TYPE line", lineNo, name)
		}
		canonical, leValue, hasLe, err := canonicalizeSampleLabels(labels)
		if err != nil {
			return sum, fmt.Errorf("line %d: %v", lineNo, err)
		}
		series := name + "{" + canonical.full + "}"
		if seen[series] {
			return sum, fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
		sum.Series++
		sum.Samples++
		v, err := parsePromValue(value)
		if err != nil {
			return sum, fmt.Errorf("line %d: %s: %v", lineNo, series, err)
		}
		switch sampleKind {
		case "counter":
			if v < 0 {
				return sum, fmt.Errorf("line %d: counter %s is negative (%v)", lineNo, series, v)
			}
		case "histogram":
			key := family + "{" + canonical.withoutLe + "}"
			hc := hist[key]
			if hc == nil {
				hc = &histCheck{}
				hist[key] = hc
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLe {
					return sum, fmt.Errorf("line %d: %s has no le label", lineNo, series)
				}
				if err := hc.bucket(leValue, v); err != nil {
					return sum, fmt.Errorf("line %d: %s: %v", lineNo, series, err)
				}
			case strings.HasSuffix(name, "_count"):
				hc.count, hc.haveCount = v, true
			case strings.HasSuffix(name, "_sum"):
				hc.haveSum = true
			default:
				return sum, fmt.Errorf("line %d: histogram family %q has plain sample %q", lineNo, family, name)
			}
		}
	}
	if sum.Samples == 0 {
		return sum, fmt.Errorf("page has no samples")
	}
	for key, hc := range hist {
		if err := hc.finish(); err != nil {
			return sum, fmt.Errorf("histogram %s: %v", key, err)
		}
	}
	return sum, nil
}

// histCheck accumulates one histogram series' consistency state.
type histCheck struct {
	lastLe    float64
	lastCum   float64
	buckets   int
	infCum    float64
	haveInf   bool
	count     float64
	haveCount bool
	haveSum   bool
}

func (h *histCheck) bucket(le string, cum float64) error {
	if le == "+Inf" {
		if h.haveInf {
			return fmt.Errorf("duplicate +Inf bucket")
		}
		h.haveInf = true
		h.infCum = cum
		if h.buckets > 0 && cum < h.lastCum {
			return fmt.Errorf("+Inf bucket %v below previous cumulative %v", cum, h.lastCum)
		}
		return nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return fmt.Errorf("bad le %q: %v", le, err)
	}
	if h.haveInf {
		return fmt.Errorf("bucket le=%q after +Inf", le)
	}
	if h.buckets > 0 {
		if v <= h.lastLe {
			return fmt.Errorf("bucket bounds not increasing: le=%v after le=%v", v, h.lastLe)
		}
		if cum < h.lastCum {
			return fmt.Errorf("cumulative count decreasing: %v after %v", cum, h.lastCum)
		}
	}
	h.lastLe, h.lastCum = v, cum
	h.buckets++
	return nil
}

func (h *histCheck) finish() error {
	if !h.haveInf {
		return fmt.Errorf("missing +Inf bucket")
	}
	if !h.haveCount || !h.haveSum {
		return fmt.Errorf("missing _count or _sum")
	}
	if h.infCum != h.count {
		return fmt.Errorf("+Inf bucket %v != _count %v", h.infCum, h.count)
	}
	return nil
}

// canonicalLabels is a sample's label set in canonical order, with and
// without its le label (histograms group series by the latter).
type canonicalLabels struct {
	full      string
	withoutLe string
}

// canonicalizeSampleLabels validates and sorts a sample's parsed label
// text, extracting le for histogram checks.
func canonicalizeSampleLabels(raw string) (canonicalLabels, string, bool, error) {
	if raw == "" {
		return canonicalLabels{}, "", false, nil
	}
	pairs, err := parseLabels(raw)
	if err != nil {
		return canonicalLabels{}, "", false, err
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	var le string
	hasLe := false
	seen := map[string]bool{}
	var full, rest []string
	for _, kv := range pairs {
		if !validLabelName(kv[0]) {
			return canonicalLabels{}, "", false, fmt.Errorf("illegal label name %q", kv[0])
		}
		if seen[kv[0]] {
			return canonicalLabels{}, "", false, fmt.Errorf("duplicate label %q", kv[0])
		}
		seen[kv[0]] = true
		rendered := kv[0] + `="` + escapeLabelValue(kv[1]) + `"`
		full = append(full, rendered)
		if kv[0] == "le" {
			le, hasLe = kv[1], true
		} else {
			rest = append(rest, rendered)
		}
	}
	return canonicalLabels{full: strings.Join(full, ","), withoutLe: strings.Join(rest, ",")},
		le, hasLe, nil
}

// parseSampleLine splits `name{labels} value [timestamp]`.
func parseSampleLine(line string) (name, labels, value string, err error) {
	rest := line
	if open := strings.IndexByte(line, '{'); open >= 0 {
		close := strings.LastIndexByte(line, '}')
		if close < open {
			return "", "", "", fmt.Errorf("unterminated label set")
		}
		name = line[:open]
		labels = line[open+1 : close]
		rest = strings.TrimSpace(line[close+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("sample line %q has no value", line)
		}
		name = fields[0]
		rest = strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("sample %q must be 'value [timestamp]', got %q", name, rest)
	}
	return name, labels, fields[0], nil
}

// parsePromValue parses a sample value (floats plus the +Inf/-Inf/NaN
// spellings).
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
