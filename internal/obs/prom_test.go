package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePromRoundTripsThroughCheckProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("service.jobs_accepted").Add(12)
	r.Counter(`http.responses{route="/v1/jobs",class="2xx"}`).Add(9)
	r.Counter(`http.responses{route="/v1/jobs",class="4xx"}`).Add(1)
	r.Gauge("http.in_flight").Add(2)
	h := r.Histogram(`http.latency_us{route="/v1/jobs"}`)
	for _, v := range []int64{0, 1, 5, 900, 1 << 20} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	sum, err := CheckProm(buf.Bytes())
	if err != nil {
		t.Fatalf("WriteProm output fails CheckProm: %v\n%s", err, page)
	}
	if sum.Families != 4 {
		t.Fatalf("families = %d, want 4\n%s", sum.Families, page)
	}
	for _, want := range []string{
		"# TYPE lpbuf_service_jobs_accepted counter\n",
		"lpbuf_service_jobs_accepted 12\n",
		"# TYPE lpbuf_http_responses counter\n",
		`lpbuf_http_responses{class="2xx",route="/v1/jobs"} 9`,
		"# TYPE lpbuf_http_latency_us histogram\n",
		`lpbuf_http_latency_us_count{route="/v1/jobs"} 5`,
		`lpbuf_http_latency_us_sum{route="/v1/jobs"} 1049482`,
		`,le="+Inf"} 5`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q:\n%s", want, page)
		}
	}
}

func TestWritePromDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
		}
		var buf bytes.Buffer
		if err := WriteProm(&buf, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	names := []string{"a.one", "b.two", `c{route="/x"}`, `c{route="/y"}`}
	rev := []string{`c{route="/y"}`, `c{route="/x"}`, "b.two", "a.one"}
	if a, b := build(names), build(rev); a != b {
		t.Fatalf("exposition depends on registration order:\n%s\n---\n%s", a, b)
	}
}

func TestWritePromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(6) // bucket 3 (4 <= v < 8)
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		`lpbuf_lat_bucket{le="0"} 1`,
		`lpbuf_lat_bucket{le="1"} 3`,
		`lpbuf_lat_bucket{le="7"} 4`,
		`lpbuf_lat_bucket{le="+Inf"} 4`,
		"lpbuf_lat_sum 8",
		"lpbuf_lat_count 4",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q:\n%s", want, page)
		}
	}
	if _, err := CheckProm(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestWritePromSanitizesAndEscapes(t *testing.T) {
	r := NewRegistry()
	r.Counter(`weird-name.with/slash{path="a\"b\\c"}`).Inc()
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.Contains(page, `lpbuf_weird_name_with_slash{path="a\"b\\c"} 1`) {
		t.Fatalf("sanitized/escaped series missing:\n%s", page)
	}
	if _, err := CheckProm(buf.Bytes()); err != nil {
		t.Fatalf("sanitized page fails validation: %v\n%s", err, page)
	}
}

func TestWritePromKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y").Inc()
	r.Gauge("x/y").Set(1) // sanitizes to the same lpbuf_x_y
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err == nil {
		t.Fatal("cross-kind sanitized collision must be an error")
	}
}

func TestCheckPromRejects(t *testing.T) {
	cases := map[string]string{
		"no type line":    "lpbuf_x 1\n",
		"bad metric name": "# TYPE lpbuf-x counter\nlpbuf-x 1\n",
		"bad label name":  "# TYPE m counter\n" + `m{0bad="v"} 1` + "\n",
		"duplicate series": "# TYPE m counter\n" +
			`m{a="1"} 1` + "\n" + `m{a="1"} 2` + "\n",
		"duplicate series reordered labels": "# TYPE m counter\n" +
			`m{a="1",b="2"} 1` + "\n" + `m{b="2",a="1"} 2` + "\n",
		"duplicate type":   "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"negative counter": "# TYPE m counter\nm -1\n",
		"unknown kind":     "# TYPE m widget\nm 1\n",
		"bucket without le": "# TYPE m histogram\n" +
			`m_bucket{route="/x"} 1` + "\nm_sum 1\nm_count 1\n" +
			`m_bucket{route="/x",le="+Inf"} 1` + "\n",
		"non-cumulative buckets": "# TYPE m histogram\n" +
			`m_bucket{le="1"} 5` + "\n" + `m_bucket{le="2"} 3` + "\n" +
			`m_bucket{le="+Inf"} 5` + "\nm_sum 9\nm_count 5\n",
		"missing +Inf": "# TYPE m histogram\n" +
			`m_bucket{le="1"} 5` + "\nm_sum 9\nm_count 5\n",
		"+Inf != count": "# TYPE m histogram\n" +
			`m_bucket{le="+Inf"} 4` + "\nm_sum 9\nm_count 5\n",
		"empty page": "\n",
		"bad value":  "# TYPE m counter\nm pear\n",
	}
	for name, page := range cases {
		if _, err := CheckProm([]byte(page)); err == nil {
			t.Errorf("%s: CheckProm accepted invalid page:\n%s", name, page)
		}
	}
}

func TestCheckPromAcceptsForeignPage(t *testing.T) {
	// Hand-written page in the style of a stock exporter: timestamps,
	// untyped metrics, CRLF, comments.
	page := "# HELP up scrape success\r\n" +
		"# TYPE up gauge\r\n" +
		"up 1 1712345678901\r\n" +
		"# TYPE go_info untyped\n" +
		`go_info{version="go1.22"} 1` + "\n"
	sum, err := CheckProm([]byte(page))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Samples != 2 {
		t.Fatalf("samples = %d, want 2", sum.Samples)
	}
}
