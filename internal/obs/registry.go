// Package obs is the repo's zero-dependency observability layer: a
// sharded registry of named counters, gauges and log-bucketed
// histograms with an atomic hot path; hierarchical wall-clock spans
// exported as Chrome trace-event JSON (loadable in Perfetto); and a
// bounded ring buffer for cycle-level simulator events, so tracing a
// billion-cycle run costs O(ring), not O(cycles).
//
// Every type is nil-safe: methods on a nil *Registry, *Counter,
// *Trace, *Span or *SimTrace are no-ops that allocate nothing, so
// instrumentation hooks compile down to a nil check when observability
// is disabled (asserted by the zero-allocation tests in this package
// and the simulator benchmark in internal/vliw).
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// shardCount spreads name→instrument lookup contention. Power of two.
const shardCount = 16

// Registry holds named instruments. Lookup (get-or-create) takes a
// per-shard mutex; updates on the returned instrument are lock-free
// atomics, so callers should look up once and hold the pointer.
type Registry struct {
	shards [shardCount]regShard
}

type regShard struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].counters = map[string]*Counter{}
		r.shards[i].gauges = map[string]*Gauge{}
		r.shards[i].histograms = map[string]*Histogram{}
	}
	return r
}

// shardOf hashes a name to a shard (FNV-1a).
func shardOf(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h & (shardCount - 1)
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := &r.shards[shardOf(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := &r.shards[shardOf(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	s := &r.shards[shardOf(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histograms[name]
	if h == nil {
		h = &Histogram{}
		s.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on nil.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc adds one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value (stored as float64 bits).
type Gauge struct{ v atomic.Uint64 }

// Set stores the value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(floatBits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add shifts the gauge by d (compare-and-swap loop). Distinct Metrics
// owners sharing one registry-named gauge (e.g. several runner pools
// inside one service process) can keep a global level this way, where
// Set would make the last writer win.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Max raises the gauge to v if v is larger (compare-and-swap loop).
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if bitsFloat(old) >= v {
			return
		}
		if g.v.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.v.Load())
}

// histBuckets is one bucket per power of two: bucket i counts
// observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds v == 0). 64 buckets cover the full int64 range.
const histBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative int64
// observations. Observe is a single atomic add.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to 0). No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Bucket is one histogram bucket in a snapshot: Count observations
// were < UpperBound (exclusive; the previous bucket's bound is the
// inclusive lower bound).
type Bucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"n"`
}

// HistogramSnapshot is the JSON view of a histogram. Empty buckets are
// omitted so snapshots stay small.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile of the observed distribution from
// the log2 buckets: it returns the inclusive upper bound of the
// smallest bucket containing the q-th ranked observation, so the
// estimate never undershoots the true quantile by more than the bucket
// width (a factor of two). q is clamped to [0, 1]; an empty histogram
// reports 0. Exact for distributions that land in one bucket per
// distinct magnitude (in particular: single samples and the 0/1
// buckets, which are one value wide).
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			return bucketMax(b.UpperBound)
		}
	}
	if n := len(h.Buckets); n > 0 {
		return bucketMax(h.Buckets[n-1].UpperBound)
	}
	return 0
}

// bucketMax converts a bucket's exclusive upper bound into the largest
// value the bucket can hold (the clamped top bucket is already
// inclusive at MaxInt64).
func bucketMax(ub int64) int64 {
	if ub == int64(^uint64(0)>>1) {
		return ub
	}
	return ub - 1
}

// RegistrySnapshot is the stable JSON view of a registry. Map keys
// marshal in sorted order (encoding/json), so identical registries
// produce byte-identical snapshots.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument's current value. Safe to call
// concurrently with updates (counters are read atomically; the
// snapshot is a consistent point-in-time read of each instrument, not
// of the registry as a whole). A nil registry snapshots as empty.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, c := range s.counters {
			snap.Counters[name] = c.Value()
		}
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, h := range s.histograms {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			for b := 0; b < histBuckets; b++ {
				n := h.buckets[b].Load()
				if n == 0 {
					continue
				}
				ub := int64(1) << b // exclusive upper bound of bucket b
				if b >= 63 {
					ub = int64(^uint64(0) >> 1) // clamp to MaxInt64
				}
				hs.Buckets = append(hs.Buckets, Bucket{UpperBound: ub, Count: n})
			}
			snap.Histograms[name] = hs
		}
		s.mu.Unlock()
	}
	return snap
}
