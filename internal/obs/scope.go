package obs

import "sync"

// ScopeConfig selects which per-scope sinks OpenScope creates beyond
// the child registry.
type ScopeConfig struct {
	// Spans enables a per-scope span trace. MaxSpanEvents <= 0 uses
	// DefaultTraceEvents.
	Spans         bool
	MaxSpanEvents int
	// SimEvents enables a per-scope simulator event ring. SimRingSize
	// <= 0 uses DefaultSimEvents.
	SimEvents   bool
	SimRingSize int
}

// Scope is a unit-of-work observability context: a child registry plus
// optional private span trace and simulator ring, opened from a parent
// Obs. Instrumented code runs against the scope's Obs exactly as it
// would against the process Obs; when the unit of work finishes, Close
// folds the child registry's instruments into the parent registry
// (counters and histogram buckets accumulate, gauges add their value
// as a delta), so the process-wide totals stay correct while the
// scope's own snapshot, trace and ring remain attributable to that one
// unit — lpbufd opens one Scope per job and serves the trace back from
// GET /v1/jobs/{id}/trace.
//
// A nil *Scope (from OpenScope on a nil *Obs) is a valid no-op: Obs()
// returns nil, disabling all downstream instrumentation, and Close
// does nothing. Neither allocates, preserving the package's
// disabled-path zero-allocation contract.
type Scope struct {
	parent *Registry
	obs    *Obs
	once   sync.Once
}

// OpenScope opens a per-unit scope under o. The scope gets a child
// registry when o has a registry to fold into (otherwise scoped metric
// updates would be silently lost), plus whatever cfg enables. Returns
// nil — a valid disabled scope — on a nil receiver.
func (o *Obs) OpenScope(cfg ScopeConfig) *Scope {
	if o == nil {
		return nil
	}
	child := &Obs{}
	if o.Reg != nil {
		child.Reg = NewRegistry()
	}
	if cfg.Spans {
		child.Trace = NewTrace(cfg.MaxSpanEvents)
	}
	if cfg.SimEvents {
		child.Sim = NewSimTrace(cfg.SimRingSize)
	}
	return &Scope{parent: o.Reg, obs: child}
}

// Obs returns the scope's sinks (nil on a nil scope), suitable for
// threading anywhere an *Obs is accepted. The scope's Obs is itself a
// valid parent for OpenScope, so scopes nest: a grandchild folds into
// its child, which folds into the process registry.
func (s *Scope) Obs() *Obs {
	if s == nil {
		return nil
	}
	return s.obs
}

// Registry returns the scope's child registry (possibly nil).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.obs.Reg
}

// Trace returns the scope's span trace (possibly nil).
func (s *Scope) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.obs.Trace
}

// Sim returns the scope's simulator event ring (possibly nil).
func (s *Scope) Sim() *SimTrace {
	if s == nil {
		return nil
	}
	return s.obs.Sim
}

// Close folds the child registry into the parent registry exactly once
// (idempotent, safe for concurrent callers). The scope's trace and sim
// ring are not folded — they stay readable on the scope for per-unit
// export. Updates against the scope's Obs after Close still land in
// the child registry but are no longer folded anywhere; close a scope
// only when its unit of work has finished.
func (s *Scope) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		s.obs.Reg.FoldInto(s.parent)
	})
}

// FoldInto accumulates r's instruments into parent: counters add their
// value, histograms add bucket-wise (count, sum and every bucket, so
// parent quantiles stay exact), and gauges add their value as a delta —
// scoped gauges follow the same delta discipline obs.Gauge.Add
// documents for shared registries, so a gauge that returns to zero
// within the scope folds as a no-op. No-op when either registry is
// nil. Safe to call concurrently with updates on both registries; the
// fold is per-instrument atomic, not a registry-wide transaction.
func (r *Registry) FoldInto(parent *Registry) {
	if r == nil || parent == nil || r == parent {
		return
	}
	for i := range r.shards {
		s := &r.shards[i]
		// Copy the instrument pointers out under the shard lock, then
		// apply to the parent lock-free of the child, keeping lock
		// ordering trivially acyclic for nested scopes.
		s.mu.Lock()
		counters := make(map[string]*Counter, len(s.counters))
		for name, c := range s.counters {
			counters[name] = c
		}
		gauges := make(map[string]*Gauge, len(s.gauges))
		for name, g := range s.gauges {
			gauges[name] = g
		}
		hists := make(map[string]*Histogram, len(s.histograms))
		for name, h := range s.histograms {
			hists[name] = h
		}
		s.mu.Unlock()
		for name, c := range counters {
			if v := c.Value(); v != 0 {
				parent.Counter(name).Add(v)
			}
		}
		for name, g := range gauges {
			if v := g.Value(); v != 0 {
				parent.Gauge(name).Add(v)
			}
		}
		for name, h := range hists {
			ph := parent.Histogram(name)
			if n := h.count.Load(); n != 0 {
				ph.count.Add(n)
			}
			if v := h.sum.Load(); v != 0 {
				ph.sum.Add(v)
			}
			for b := 0; b < histBuckets; b++ {
				if n := h.buckets[b].Load(); n != 0 {
					ph.buckets[b].Add(n)
				}
			}
		}
	}
}
