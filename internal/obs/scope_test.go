package obs

import (
	"sync"
	"testing"
)

func TestScopeFoldsIntoParent(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	parent.Reg.Counter("jobs").Add(2)
	parent.Reg.Gauge("inflight").Add(1)
	parent.Reg.Histogram("wall").Observe(100)

	sc := parent.OpenScope(ScopeConfig{Spans: true, SimEvents: true, SimRingSize: 8})
	if sc == nil || sc.Obs() == nil {
		t.Fatal("scope on an enabled Obs must be non-nil")
	}
	if sc.Registry() == parent.Reg {
		t.Fatal("scope must get its own child registry")
	}
	if sc.Trace() == nil || sc.Sim() == nil {
		t.Fatal("scope config asked for spans and sim events")
	}

	// Instrumented work against the scope's Obs.
	so := sc.Obs()
	so.Counter("jobs").Add(3)
	so.Reg.Gauge("inflight").Add(2)
	so.Reg.Gauge("inflight").Add(-2) // net zero: folds as no-op
	so.Reg.Histogram("wall").Observe(7)
	so.Reg.Histogram("wall").Observe(1000)
	so.Reg.Counter("scope.only").Inc()
	sp := so.StartSpan("job")
	sp.End()

	// Before close, the parent is untouched.
	if got := parent.Reg.Counter("jobs").Value(); got != 2 {
		t.Fatalf("parent counter before Close = %d, want 2", got)
	}

	sc.Close()
	sc.Close() // idempotent

	snap := parent.Reg.Snapshot()
	if snap.Counters["jobs"] != 5 {
		t.Fatalf("folded counter = %d, want 5", snap.Counters["jobs"])
	}
	if snap.Counters["scope.only"] != 1 {
		t.Fatalf("scope-only counter = %d, want 1", snap.Counters["scope.only"])
	}
	if snap.Gauges["inflight"] != 1 {
		t.Fatalf("folded gauge = %v, want 1 (net-zero scope delta)", snap.Gauges["inflight"])
	}
	h := snap.Histograms["wall"]
	if h.Count != 3 || h.Sum != 1107 {
		t.Fatalf("folded histogram count/sum = %d/%d, want 3/1107", h.Count, h.Sum)
	}
	// Bucket-exact fold: parent buckets must be the sum of both sides,
	// not just count/sum.
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("folded bucket total = %d, want 3", total)
	}
	// The scope's trace stays readable after Close for per-unit export.
	if sc.Trace() == nil {
		t.Fatal("trace must survive Close")
	}
}

// TestScopeFoldPMUHistogramBucketDrift folds the PMU's per-run sample
// histogram (sim.pmu.samples_per_run, recorded by vliw.RunBatch) from
// a child scope whose observations land in different log2 buckets than
// the parent's: the parent saw sparse profiles (magnitudes 0-8), the
// child saw dense ones (thousands). The fold must merge per-bucket —
// drifted buckets appear with the child's counts, shared buckets sum,
// and parent-only buckets survive untouched.
func TestScopeFoldPMUHistogramBucketDrift(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	for _, v := range []int64{0, 3, 8} { // buckets 0, 2, 4
		parent.Reg.Histogram("sim.pmu.samples_per_run").Observe(v)
	}
	parent.Reg.Counter("sim.pmu.samples").Add(11)

	sc := parent.OpenScope(ScopeConfig{})
	for _, v := range []int64{8, 2048, 5000} { // buckets 4, 12, 13
		sc.Obs().Reg.Histogram("sim.pmu.samples_per_run").Observe(v)
	}
	sc.Obs().Counter("sim.pmu.samples").Add(7056)
	sc.Close()

	snap := parent.Reg.Snapshot()
	if got := snap.Counters["sim.pmu.samples"]; got != 11+7056 {
		t.Fatalf("folded sample counter = %d, want %d", got, 11+7056)
	}
	h := snap.Histograms["sim.pmu.samples_per_run"]
	if h.Count != 6 || h.Sum != 0+3+8+8+2048+5000 {
		t.Fatalf("folded histogram count/sum = %d/%d, want 6/%d", h.Count, h.Sum, 0+3+8+8+2048+5000)
	}
	byUB := map[int64]int64{}
	for _, b := range h.Buckets {
		byUB[b.UpperBound] = b.Count
	}
	want := map[int64]int64{
		1:    1, // parent-only: the 0 observation
		4:    1, // parent-only: 3
		16:   2, // shared: 8 from each side sums
		4096: 1, // child-only drift: 2048
		8192: 1, // child-only drift: 5000
	}
	for ub, n := range want {
		if byUB[ub] != n {
			t.Fatalf("bucket le=%d count = %d, want %d (buckets %v)", ub, byUB[ub], n, h.Buckets)
		}
	}
	if len(byUB) != len(want) {
		t.Fatalf("folded histogram has %d buckets, want %d: %v", len(byUB), len(want), h.Buckets)
	}
}

func TestScopeNesting(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	child := parent.OpenScope(ScopeConfig{})
	grand := child.Obs().OpenScope(ScopeConfig{})
	grand.Obs().Counter("deep").Add(4)

	grand.Close()
	if got := child.Registry().Counter("deep").Value(); got != 4 {
		t.Fatalf("grandchild fold into child = %d, want 4", got)
	}
	if got := parent.Reg.Counter("deep").Value(); got != 0 {
		t.Fatalf("parent touched before child close: %d", got)
	}
	child.Close()
	if got := parent.Reg.Counter("deep").Value(); got != 4 {
		t.Fatalf("child fold into parent = %d, want 4", got)
	}
}

func TestScopeNilSafety(t *testing.T) {
	var o *Obs
	sc := o.OpenScope(ScopeConfig{Spans: true, SimEvents: true})
	if sc != nil {
		t.Fatal("OpenScope on nil Obs must return nil")
	}
	sc.Close()
	if sc.Obs() != nil || sc.Registry() != nil || sc.Trace() != nil || sc.Sim() != nil {
		t.Fatal("nil scope accessors must return nil")
	}
	// Instrumentation through a nil scope is the usual nil-sink no-op.
	sc.Obs().Counter("c").Inc()
	sc.Obs().StartSpan("s").End()

	// A scope without a parent registry still works for spans.
	noReg := (&Obs{}).OpenScope(ScopeConfig{Spans: true})
	if noReg == nil || noReg.Trace() == nil {
		t.Fatal("metrics-less parent must still yield a span scope")
	}
	if noReg.Registry() != nil {
		t.Fatal("no parent registry: child registry would be unfoldable")
	}
	noReg.Close()
}

func TestScopeFoldConcurrent(t *testing.T) {
	parent := &Obs{Reg: NewRegistry()}
	const scopes, perScope = 16, 500
	var wg sync.WaitGroup
	for i := 0; i < scopes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := parent.OpenScope(ScopeConfig{})
			c := sc.Obs().Counter("work")
			h := sc.Obs().Reg.Histogram("lat")
			for j := 0; j < perScope; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
			sc.Close()
		}()
	}
	wg.Wait()
	if got := parent.Reg.Counter("work").Value(); got != scopes*perScope {
		t.Fatalf("concurrent folds lost updates: %d, want %d", got, scopes*perScope)
	}
	if got := parent.Reg.Snapshot().Histograms["lat"].Count; got != scopes*perScope {
		t.Fatalf("histogram fold lost observations: %d, want %d", got, scopes*perScope)
	}
}

func TestFoldIntoDegenerateCases(t *testing.T) {
	var nilReg *Registry
	r := NewRegistry()
	r.Counter("c").Inc()
	nilReg.FoldInto(r) // no-op
	r.FoldInto(nil)    // no-op
	r.FoldInto(r)      // self-fold must not double
	if got := r.Counter("c").Value(); got != 1 {
		t.Fatalf("self-fold doubled the counter: %d", got)
	}
}
