package obs

import (
	"fmt"
	"sync"
)

// SimEventKind discriminates cycle-level simulator events.
type SimEventKind uint8

// The simulator event stream's entry kinds (see internal/vliw).
const (
	// SimIssue: one bundle issued. Arg = ops in the bundle; Aux = 1
	// when issued from the loop buffer.
	SimIssue SimEventKind = iota + 1
	// SimStall: the issue stage stalled. Arg = stall cycles.
	SimStall
	// SimRedirect: a taken branch redirected fetch. Arg = penalty
	// cycles charged.
	SimRedirect
	// SimLoopRecord: a rec_[cw]loop fetch started recording a loop
	// image into the buffer (Table 3's record transition).
	SimLoopRecord
	// SimLoopReplay: the loop's image became valid and issue switched
	// to the buffer (exec_[cw]loop semantics).
	SimLoopReplay
	// SimLoopExit: control left a buffered loop. Arg = entry cycle, so
	// Cycle-Arg is the loop's buffer residency in cycles; Aux = 1 when
	// the loop was replaying at exit.
	SimLoopExit
	// SimCall / SimRet: function call boundaries.
	SimCall
	SimRet
)

// String names the kind for exports.
func (k SimEventKind) String() string {
	switch k {
	case SimIssue:
		return "issue"
	case SimStall:
		return "stall"
	case SimRedirect:
		return "redirect"
	case SimLoopRecord:
		return "rec_loop"
	case SimLoopReplay:
		return "exec_loop"
	case SimLoopExit:
		return "loop_exit"
	case SimCall:
		return "call"
	case SimRet:
		return "ret"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SimEvent is one cycle-level event. Stored by value in the ring, so
// emitting allocates nothing.
type SimEvent struct {
	Cycle int64        `json:"cycle"`
	Kind  SimEventKind `json:"-"`
	KindS string       `json:"kind"`
	// Run labels the simulation (bench/config@buffer).
	Run string `json:"run,omitempty"`
	// Func and PC locate the event in scheduled code.
	Func string `json:"func,omitempty"`
	PC   int32  `json:"pc"`
	// Loop is the planned-loop key for buffer events.
	Loop string `json:"loop,omitempty"`
	Arg  int64  `json:"arg,omitempty"`
	Aux  int64  `json:"aux,omitempty"`
}

// DefaultSimEvents bounds a SimTrace ring.
const DefaultSimEvents = 1 << 16

// SimTrace is a bounded ring buffer of simulator events: writes past
// the capacity overwrite the oldest entries, so memory stays O(ring)
// however long the run. Emit takes a mutex (the simulator is
// single-goroutine per run; cross-run sharing is still safe) and
// stores by value. A nil *SimTrace is a no-op sink.
type SimTrace struct {
	mu    sync.Mutex
	ring  []SimEvent
	next  int
	total int64
}

// NewSimTrace creates a ring with the given capacity (<= 0 uses
// DefaultSimEvents).
func NewSimTrace(capacity int) *SimTrace {
	if capacity <= 0 {
		capacity = DefaultSimEvents
	}
	return &SimTrace{ring: make([]SimEvent, capacity)}
}

// Emit records one event, overwriting the oldest when full. No-op (and
// allocation-free) on nil.
func (s *SimTrace) Emit(ev SimEvent) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ring[s.next] = ev
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
	}
	s.total++
	s.mu.Unlock()
}

// EmitBatch records evs in order under one lock acquisition, with the
// same ring semantics as len(evs) Emit calls: identical retained
// contents, order and total. Emitters with a burst of consecutive
// events (the simulator's loop-replay fast path emits one iteration's
// issue events at a time) use this to amortize the mutex.
func (s *SimTrace) EmitBatch(evs []SimEvent) {
	if s == nil || len(evs) == 0 {
		return
	}
	s.mu.Lock()
	for _, ev := range evs {
		s.ring[s.next] = ev
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
		}
	}
	s.total += int64(len(evs))
	s.mu.Unlock()
}

// Total reports how many events were ever emitted (including
// overwritten ones).
func (s *SimTrace) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Events returns the retained events in emission order (oldest first).
func (s *SimTrace) Events() []SimEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	if s.total < int64(n) {
		n = int(s.total)
		out := make([]SimEvent, n)
		copy(out, s.ring[:n])
		return out
	}
	out := make([]SimEvent, 0, n)
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// chromeEvents renders the retained ring as Chrome trace events on the
// simulator pid: loop exits become complete ("X") events spanning the
// loop's buffer residency; everything else becomes an instant ("i")
// event. Timestamps are cycle numbers. Each distinct run label gets
// its own tid so overlapping runs do not interleave on one track.
func (s *SimTrace) chromeEvents() []chromeEvent {
	evs := s.Events()
	if len(evs) == 0 {
		return nil
	}
	tids := map[string]int64{}
	tidOf := func(run string) int64 {
		if id, ok := tids[run]; ok {
			return id
		}
		id := int64(len(tids) + 1)
		tids[run] = id
		return id
	}
	out := make([]chromeEvent, 0, len(evs))
	for _, ev := range evs {
		ce := chromeEvent{Pid: pidSim, Tid: tidOf(ev.Run)}
		args := map[string]any{"run": ev.Run, "func": ev.Func, "pc": ev.PC}
		switch ev.Kind {
		case SimLoopExit:
			ce.Name = "loop " + ev.Loop
			ce.Ph = "X"
			ce.Ts = ev.Arg // entry cycle
			ce.Dur = ev.Cycle - ev.Arg
			if ce.Dur <= 0 {
				ce.Dur = 1
			}
			args["loop"] = ev.Loop
			args["replaying"] = ev.Aux == 1
		case SimIssue:
			// Skip per-bundle issue instants in the viewer export (the
			// ring keeps them for programmatic use; rendering millions
			// of instants makes Perfetto unusable).
			continue
		default:
			ce.Name = ev.Kind.String()
			ce.Ph = "i"
			ce.S = "t"
			ce.Ts = ev.Cycle
			if ev.Loop != "" {
				args["loop"] = ev.Loop
			}
			if ev.Arg != 0 {
				args["arg"] = ev.Arg
			}
		}
		ce.Args = args
		out = append(out, ce)
	}
	return out
}
