package obs

import "testing"

// emitSequential replays evs through Emit one at a time into a fresh
// ring of the given capacity — the reference behaviour EmitBatch must
// reproduce exactly.
func emitSequential(capacity int, evs []SimEvent) *SimTrace {
	s := NewSimTrace(capacity)
	for _, ev := range evs {
		s.Emit(ev)
	}
	return s
}

func makeEvents(n int) []SimEvent {
	evs := make([]SimEvent, n)
	for i := range evs {
		evs[i] = SimEvent{Cycle: int64(i), Kind: SimIssue, PC: int32(i)}
	}
	return evs
}

func assertSameRing(t *testing.T, want, got *SimTrace, label string) {
	t.Helper()
	if want.Total() != got.Total() {
		t.Fatalf("%s: total = %d, want %d", label, got.Total(), want.Total())
	}
	we, ge := want.Events(), got.Events()
	if len(we) != len(ge) {
		t.Fatalf("%s: retained = %d, want %d", label, len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, ge[i], we[i])
		}
	}
}

// TestEmitBatchMatchesSequentialEmit sweeps batch sizes across the
// overwrite-oldest boundary: batches that exactly fill the ring, that
// overflow it by one, that wrap it multiple times, and that land while
// the write cursor is mid-ring must all retain byte-identical contents
// to one-at-a-time emission.
func TestEmitBatchMatchesSequentialEmit(t *testing.T) {
	const capacity = 8
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 40} {
		evs := makeEvents(n)
		got := NewSimTrace(capacity)
		got.EmitBatch(evs)
		assertSameRing(t, emitSequential(capacity, evs), got, "single batch")
	}
	// Pre-advance the cursor so the batch crosses the wrap point
	// mid-batch, for every possible cursor position.
	for pre := 0; pre <= capacity; pre++ {
		prefix := makeEvents(pre)
		batch := makeEvents(capacity + 3) // wraps once, lands mid-ring
		for i := range batch {
			batch[i].Cycle += 1000 // distinguish from the prefix
		}
		want := emitSequential(capacity, append(append([]SimEvent(nil), prefix...), batch...))
		got := emitSequential(capacity, prefix)
		got.EmitBatch(batch)
		assertSameRing(t, want, got, "cursor offset")
	}
}

// TestEmitBatchExactBoundary pins the two edge cases around a full
// ring: a batch ending exactly at the wrap point leaves the cursor at
// slot 0 (the *next* emit overwrites the oldest), and a batch of
// exactly the capacity replaces the entire retained window.
func TestEmitBatchExactBoundary(t *testing.T) {
	const capacity = 4
	s := NewSimTrace(capacity)
	s.EmitBatch(makeEvents(capacity))
	evs := s.Events()
	if len(evs) != capacity || evs[0].Cycle != 0 || evs[capacity-1].Cycle != int64(capacity-1) {
		t.Fatalf("full batch events = %+v", evs)
	}
	// One more event overwrites the oldest (cycle 0).
	s.Emit(SimEvent{Cycle: 100, Kind: SimStall})
	evs = s.Events()
	if evs[0].Cycle != 1 || evs[len(evs)-1].Cycle != 100 {
		t.Fatalf("post-wrap events = %+v", evs)
	}
	// A capacity-sized batch replaces the whole window.
	batch := makeEvents(capacity)
	for i := range batch {
		batch[i].Cycle += 500
	}
	s.EmitBatch(batch)
	evs = s.Events()
	for i, ev := range evs {
		if ev.Cycle != int64(500+i) {
			t.Fatalf("replaced window event %d = %+v", i, ev)
		}
	}
	if s.Total() != int64(2*capacity+1) {
		t.Fatalf("total = %d, want %d", s.Total(), 2*capacity+1)
	}
}

// TestEmitBatchLargerThanRing: only the tail of an oversized batch is
// retained, in emission order.
func TestEmitBatchLargerThanRing(t *testing.T) {
	const capacity = 4
	s := NewSimTrace(capacity)
	s.EmitBatch(makeEvents(11)) // wraps 2¾ times
	evs := s.Events()
	if len(evs) != capacity {
		t.Fatalf("retained = %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if ev.Cycle != int64(7+i) {
			t.Fatalf("event %d cycle = %d, want %d", i, ev.Cycle, 7+i)
		}
	}
	if s.Total() != 11 {
		t.Fatalf("total = %d, want 11", s.Total())
	}
}

// TestEmitBatchNilAndEmpty: nil receivers and empty batches are
// allocation-free no-ops.
func TestEmitBatchNilAndEmpty(t *testing.T) {
	var nilRing *SimTrace
	if allocs := testing.AllocsPerRun(100, func() {
		nilRing.EmitBatch(makeEventsStatic)
		nilRing.Emit(SimEvent{})
	}); allocs != 0 {
		t.Errorf("nil EmitBatch allocates %v/op", allocs)
	}
	s := NewSimTrace(4)
	s.EmitBatch(nil)
	s.EmitBatch([]SimEvent{})
	if s.Total() != 0 || len(s.Events()) != 0 {
		t.Errorf("empty batches mutated the ring: total=%d", s.Total())
	}
}

// makeEventsStatic avoids per-iteration allocation inside AllocsPerRun.
var makeEventsStatic = makeEvents(3)
