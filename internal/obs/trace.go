package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute (rendered into the trace event's "args").
type Attr struct {
	Key   string
	Value any
}

// traceEvent is one finished span or instant, in Chrome trace-event
// terms: phase "X" (complete) with ts/dur in microseconds.
type traceEvent struct {
	name  string
	tid   int64
	ts    int64 // microseconds since trace start
	dur   int64 // microseconds
	attrs []Attr
}

// Trace collects hierarchical spans. The event store is bounded
// (maxEvents); spans finished past the cap are counted in Dropped and
// discarded, so long sweeps cannot grow the trace without bound.
type Trace struct {
	start   time.Time
	nextTID atomic.Int64
	dropped atomic.Int64

	mu     sync.Mutex
	events []traceEvent
	max    int
}

// DefaultTraceEvents bounds a Trace's stored events.
const DefaultTraceEvents = 1 << 20

// NewTrace creates an empty trace. maxEvents <= 0 uses
// DefaultTraceEvents.
func NewTrace(maxEvents int) *Trace {
	if maxEvents <= 0 {
		maxEvents = DefaultTraceEvents
	}
	return &Trace{start: time.Now(), max: maxEvents}
}

// Dropped reports how many finished spans were discarded after the
// event cap was reached.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is one in-progress region of work. A nil Span (from a nil or
// disabled Trace) is a valid no-op: Child, SetAttr and End do nothing
// and allocate nothing.
type Span struct {
	t     *Trace
	name  string
	tid   int64
	start time.Time
	attrs []Attr
}

// StartSpan opens a root span on its own track (Perfetto "thread").
// Returns nil on a nil Trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: t.nextTID.Add(1), start: time.Now()}
}

// Child opens a sub-span on the parent's track; Perfetto nests
// complete events on one track by time containment.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.tid, start: time.Now()}
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int) { s.SetAttr(key, int64(value)) }

// End finishes the span and records it in the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	ev := traceEvent{
		name:  s.name,
		tid:   s.tid,
		ts:    s.start.Sub(s.t.start).Microseconds(),
		dur:   now.Sub(s.start).Microseconds(),
		attrs: s.attrs,
	}
	t := s.t
	t.mu.Lock()
	if len(t.events) < t.max {
		t.events = append(t.events, ev)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}

// chromeEvent is the on-disk Chrome trace-event shape.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int64  `json:"tid"`
	// S scopes instant ("i") events; "t" = thread.
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object trace container both chrome://tracing
// and Perfetto load.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process IDs of the exported tracks: host-side spans (wall time) and
// simulator events (cycle time).
const (
	pidHost = 1
	pidSim  = 2
)

// CounterPoint is one observation of a counter track: a value at a
// simulator cycle.
type CounterPoint struct {
	Cycle int64
	Value float64
}

// CounterSeries is one Perfetto counter track (phase "C" events on the
// simulator pid): a named series of cycle-stamped values, optionally
// scoped to one run label so per-plan tracks stay separate in the
// viewer. The sampled-PMU export (internal/obs/pmu) renders fetch
// energy, buffer residency and redirect penalty this way.
type CounterSeries struct {
	Name   string
	Run    string
	Points []CounterPoint
}

// WriteChromeTrace renders the trace (and, when sim is non-nil, the
// simulator event ring) as Chrome trace-event JSON. Host spans land on
// pid 1 with wall-clock microsecond timestamps; simulator events land
// on pid 2 with the cycle number as the timestamp, so Perfetto shows
// cycle-accurate loop-buffer residency.
func WriteChromeTrace(w io.Writer, t *Trace, sim *SimTrace) error {
	return WriteChromeTraceCounters(w, t, sim, nil)
}

// WriteChromeTraceCounters is WriteChromeTrace plus counter tracks
// appended to the simulator pid.
func WriteChromeTraceCounters(w io.Writer, t *Trace, sim *SimTrace, counters []CounterSeries) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		evs := append([]traceEvent(nil), t.events...)
		t.mu.Unlock()
		sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
		for _, ev := range evs {
			ce := chromeEvent{Name: ev.name, Ph: "X", Ts: ev.ts, Dur: ev.dur,
				Pid: pidHost, Tid: ev.tid}
			if ce.Dur == 0 {
				ce.Dur = 1 // zero-width events vanish in viewers
			}
			if len(ev.attrs) > 0 {
				ce.Args = make(map[string]any, len(ev.attrs))
				for _, a := range ev.attrs {
					ce.Args[a.Key] = a.Value
				}
			}
			file.TraceEvents = append(file.TraceEvents, ce)
		}
		if d := t.Dropped(); d > 0 {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "trace: dropped spans", Ph: "X", Ts: 0, Dur: 1,
				Pid: pidHost, Tid: 0, Args: map[string]any{"dropped": d}})
		}
	}
	if sim != nil {
		file.TraceEvents = append(file.TraceEvents, sim.chromeEvents()...)
	}
	// Counter tracks land on the simulator pid: phase "C" events whose
	// single "value" arg Perfetto plots as a per-(name, tid) graph. The
	// run label is folded into the name so per-plan tracks of a batched
	// sweep do not merge into one series.
	for i, cs := range counters {
		name := cs.Name
		if cs.Run != "" {
			name = cs.Name + " " + cs.Run
		}
		tid := int64(1000 + i)
		for _, p := range cs.Points {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: name, Ph: "C", Ts: p.Cycle, Pid: pidSim, Tid: tid,
				Args: map[string]any{"value": p.Value},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// WriteChromeTraceFile is WriteChromeTrace to a file path.
func WriteChromeTraceFile(path string, t *Trace, sim *SimTrace) error {
	return WriteChromeTraceCountersFile(path, t, sim, nil)
}

// WriteChromeTraceCountersFile is WriteChromeTraceCounters to a file
// path.
func WriteChromeTraceCountersFile(path string, t *Trace, sim *SimTrace, counters []CounterSeries) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTraceCounters(f, t, sim, counters); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return f.Close()
}
