// Package opt implements the "traditional" scalar optimizations of the
// compilation pipeline: liveness analysis, dead-code elimination,
// local constant folding/propagation, copy propagation, local common
// subexpression elimination, and control-flow cleanup. These form the
// baseline configuration of the paper's experiments; the aggressive
// configuration layers the control transformations of packages
// hyperblock and looptrans on top.
package opt

import (
	"lpbuf/internal/ir"
)

// RegSet is a dense bitset over virtual registers.
type RegSet []uint64

// NewRegSet returns a set sized for registers < n.
func NewRegSet(n ir.Reg) RegSet { return make(RegSet, (int(n)+64)/64) }

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool { return s[int(r)/64]&(1<<(uint(r)%64)) != 0 }

// Add inserts r.
func (s RegSet) Add(r ir.Reg) { s[int(r)/64] |= 1 << (uint(r) % 64) }

// Remove deletes r.
func (s RegSet) Remove(r ir.Reg) { s[int(r)/64] &^= 1 << (uint(r) % 64) }

// Union merges o into s, reporting whether s changed.
func (s RegSet) Union(o RegSet) bool {
	changed := false
	for i := range s {
		if i >= len(o) {
			break
		}
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s RegSet) Clone() RegSet { return append(RegSet(nil), s...) }

// Count returns the number of members.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// PredSet is a dense bitset over predicate registers.
type PredSet []uint64

// NewPredSet returns a set sized for predicates < n.
func NewPredSet(n ir.PredReg) PredSet { return make(PredSet, (int(n)+64)/64) }

// Has reports membership.
func (s PredSet) Has(p ir.PredReg) bool { return s[int(p)/64]&(1<<(uint(p)%64)) != 0 }

// Add inserts p.
func (s PredSet) Add(p ir.PredReg) { s[int(p)/64] |= 1 << (uint(p) % 64) }

// Remove deletes p.
func (s PredSet) Remove(p ir.PredReg) { s[int(p)/64] &^= 1 << (uint(p) % 64) }

// Union merges o into s, reporting whether s changed.
func (s PredSet) Union(o PredSet) bool {
	changed := false
	for i := range s {
		if i >= len(o) {
			break
		}
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s PredSet) Clone() PredSet { return append(PredSet(nil), s...) }

// Live holds the result of liveness analysis: live-in and live-out
// register and predicate sets per block.
type Live struct {
	In, Out   map[ir.BlockID]RegSet
	PIn, POut map[ir.BlockID]PredSet
	numRegs   ir.Reg
	numPreds  ir.PredReg
}

// opReads appends the registers read by op.
func opReads(op *ir.Op) []ir.Reg { return op.Src }

// opWrites appends the registers written by op and whether the write is
// unconditional (an unguarded op writes for sure; a guarded op may not).
func opWrites(op *ir.Op) (regs []ir.Reg, uncond bool) {
	return op.Dest, op.Guard == 0
}

// Liveness computes predicate-aware liveness. Guarded definitions do
// not kill (the write may be nullified); guards are treated as
// predicate uses, and predicate defines as conditional predicate
// definitions (or/and-type defines never kill; ut/uf and ct/cf defines
// kill only when unguarded, since a guarded define may leave the old
// value).
func Liveness(f *ir.Func) *Live {
	lv := &Live{
		In: map[ir.BlockID]RegSet{}, Out: map[ir.BlockID]RegSet{},
		PIn: map[ir.BlockID]PredSet{}, POut: map[ir.BlockID]PredSet{},
		numRegs:  f.NumRegs(),
		numPreds: f.NumPreds(),
	}
	for _, b := range f.Blocks {
		lv.In[b.ID] = NewRegSet(lv.numRegs)
		lv.Out[b.ID] = NewRegSet(lv.numRegs)
		lv.PIn[b.ID] = NewPredSet(lv.numPreds)
		lv.POut[b.ID] = NewPredSet(lv.numPreds)
	}
	// Iterate to fixpoint, visiting blocks in reverse layout order.
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b.ID]
			pout := lv.POut[b.ID]
			for _, s := range b.Succs() {
				if out.Union(lv.In[s]) {
					changed = true
				}
				if pout.Union(lv.PIn[s]) {
					changed = true
				}
			}
			in, pin := lv.BlockLiveIn(b, out, pout)
			if lv.In[b.ID].Union(in) {
				changed = true
			}
			if lv.PIn[b.ID].Union(pin) {
				changed = true
			}
		}
	}
	return lv
}

// BlockLiveIn computes a block's live-in sets from its live-out sets by
// a backward scan.
func (lv *Live) BlockLiveIn(b *ir.Block, out RegSet, pout PredSet) (RegSet, PredSet) {
	in := out.Clone()
	pin := pout.Clone()
	for i := len(b.Ops) - 1; i >= 0; i-- {
		op := b.Ops[i]
		lv.FlowBranch(op, in, pin)
		stepLive(op, in, pin)
	}
	return in, pin
}

// FlowBranch folds a branch target's live-in into the sets before
// stepping backward over the branch. A mid-block branch is an exit
// point: registers live on the taken path must not be killed by
// definitions that only happen on the fallthrough continuation below
// the branch. (The target's live-in is the state after the branch's
// own writes, e.g. the br.cloop counter decrement, so it is unioned
// before stepLive applies the kill.)
func (lv *Live) FlowBranch(op *ir.Op, live RegSet, plive PredSet) {
	if !op.IsBranch() {
		return
	}
	if in, ok := lv.In[op.Target]; ok {
		live.Union(in)
	}
	if pin, ok := lv.PIn[op.Target]; ok {
		plive.Union(pin)
	}
}

// stepLive updates live sets backward across one op.
func stepLive(op *ir.Op, live RegSet, plive PredSet) {
	regs, uncond := opWrites(op)
	if uncond {
		for _, d := range regs {
			if d != 0 {
				live.Remove(d)
			}
		}
	}
	for _, pd := range op.PredDefines() {
		kills := op.Guard == 0 && (pd.Type == ir.PTUT || pd.Type == ir.PTUF ||
			pd.Type == ir.PTCT || pd.Type == ir.PTCF)
		if kills {
			plive.Remove(pd.Pred)
		}
	}
	for _, s := range opReads(op) {
		if s != 0 {
			live.Add(s)
		}
	}
	if op.Guard != 0 {
		plive.Add(op.Guard)
	}
}

// MaxLive returns the maximum number of simultaneously live registers
// at any program point in f (a register-pressure report against the
// machine's architected register count).
func MaxLive(f *ir.Func) int {
	lv := Liveness(f)
	max := 0
	for _, b := range f.Blocks {
		cur := lv.Out[b.ID].Clone()
		pcur := lv.POut[b.ID].Clone()
		if n := cur.Count(); n > max {
			max = n
		}
		for i := len(b.Ops) - 1; i >= 0; i-- {
			lv.FlowBranch(b.Ops[i], cur, pcur)
			stepLive(b.Ops[i], cur, pcur)
			if n := cur.Count(); n > max {
				max = n
			}
		}
	}
	return max
}
