package opt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// run executes a program and returns (ret, mem).
func run(t *testing.T, p *ir.Program) (int64, []byte) {
	t.Helper()
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ret, res.Mem
}

// checkPreserves asserts Optimize does not change observable behaviour.
func checkPreserves(t *testing.T, p *ir.Program) {
	t.Helper()
	before, memB := run(t, p)
	opt := p.Clone()
	Optimize(opt)
	if err := opt.Verify(); err != nil {
		t.Fatalf("optimized program fails verify: %v", err)
	}
	after, memA := run(t, opt)
	if before != after {
		t.Fatalf("ret changed: %d -> %d", before, after)
	}
	if !bytes.Equal(memB, memA) {
		t.Fatal("memory state changed by optimization")
	}
}

func TestConstFold(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	a := f.Const(6)
	b := f.Const(7)
	c := f.Reg()
	f.Mul(c, a, b)
	f.Ret(c)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	// After folding + DCE the function should be mov + ret.
	fn := p.Funcs["main"]
	if n := fn.OpCount(); n > 2 {
		t.Fatalf("expected <=2 ops after fold+DCE, got %d:\n%s", n, fn)
	}
	if ret, _ := run(t, p); ret != 42 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestCopyPropAndDCE(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 1, true)
	f.Block("entry")
	a := f.Reg()
	b := f.Reg()
	c := f.Reg()
	dead := f.Reg()
	f.Mov(a, f.Param(0))
	f.Mov(b, a)
	f.AddI(c, b, 1)
	f.MulI(dead, c, 100) // dead
	f.Ret(c)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	fn := p.Funcs["main"]
	for _, blk := range fn.Blocks {
		for _, op := range blk.Ops {
			if len(op.Dest) > 0 && op.Dest[0] == dead {
				t.Fatalf("dead op survived: %s", op)
			}
		}
	}
	res, err := interp.Run(p, interp.Options{EntryArgs: []int64{41}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestCSE(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 2, true)
	f.Block("entry")
	x, y := f.Param(0), f.Param(1)
	a, b, c := f.Reg(), f.Reg(), f.Reg()
	f.Add(a, x, y)
	f.Add(b, x, y) // CSE with a
	f.Add(c, a, b)
	f.Ret(c)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	adds := 0
	for _, blk := range p.Funcs["main"].Blocks {
		for _, op := range blk.Ops {
			if op.Opcode == ir.OpAdd {
				adds++
			}
		}
	}
	if adds > 2 {
		t.Fatalf("CSE failed: %d adds remain", adds)
	}
	res, err := interp.Run(p, interp.Options{EntryArgs: []int64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 14 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestGuardedDefDoesNotKill(t *testing.T) {
	// r gets 1; under false predicate gets 2; r must stay live and the
	// first def must not be removed.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	r := f.Reg()
	f.MovI(r, 1)
	zero := f.Const(0)
	pr := f.F.NewPred()
	f.CmpPI(pr, ir.PTUT, 0, ir.PTNone, ir.CmpNE, zero, 0) // pr = false
	f.MovI(r, 2).Guard = pr
	f.Ret(r)
	pb.SetEntry("main")
	p := pb.MustBuild()
	checkPreserves(t, p)
	opt := p.Clone()
	Optimize(opt)
	if ret, _ := run(t, opt); ret != 1 {
		t.Fatalf("ret = %d, want 1", ret)
	}
}

func TestDeadPredDefineRemoved(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	a := f.Const(1)
	pr := f.F.NewPred()
	f.CmpPI(pr, ir.PTUT, 0, ir.PTNone, ir.CmpEQ, a, 1) // dead: pr unused
	f.Ret(a)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	for _, blk := range p.Funcs["main"].Blocks {
		for _, op := range blk.Ops {
			if op.Opcode == ir.OpCmpP {
				t.Fatalf("dead cmpp survived: %s", op)
			}
		}
	}
}

func TestCleanCFGMergesChains(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("a")
	r := f.Const(1)
	f.Block("b")
	f.AddI(r, r, 1)
	f.Block("c")
	f.AddI(r, r, 1)
	f.Ret(r)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	if n := len(p.Funcs["main"].Blocks); n != 1 {
		t.Fatalf("expected 1 block after merge, got %d", n)
	}
	if ret, _ := run(t, p); ret != 3 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestJumpThreading(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 1, true)
	f.Block("entry")
	f.BrI(ir.CmpLT, f.Param(0), 0, "trampoline")
	f.Block("pos")
	one := f.Const(1)
	f.Ret(one)
	f.Block("trampoline")
	f.Jump("neg")
	f.Block("neg")
	m := f.Const(-1)
	f.Ret(m)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	// The branch must now target "neg" directly.
	for _, blk := range p.Funcs["main"].Blocks {
		for _, op := range blk.Ops {
			if op.Opcode == ir.OpBr {
				tgt := p.Funcs["main"].Block(op.Target)
				if len(tgt.Ops) == 1 && tgt.Ops[0].IsUncondJump() {
					t.Fatal("jump not threaded")
				}
			}
		}
	}
	for _, args := range [][]int64{{5}, {-5}} {
		res, err := interp.Run(p, interp.Options{EntryArgs: args})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1)
		if args[0] < 0 {
			want = -1
		}
		if res.Ret != want {
			t.Fatalf("arg %d: ret = %d, want %d", args[0], res.Ret, want)
		}
	}
}

// TestOptimizePreservesRandomPrograms builds random (but structured)
// programs and checks optimization preserves their behaviour.
func TestOptimizePreservesRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		pb := irbuild.NewProgram(16 << 10)
		gbase := pb.Global("g", 256, nil)
		f := pb.Func("main", 0, true)
		f.Block("entry")
		regs := []ir.Reg{f.Const(int64(rng.Intn(100) - 50)), f.Const(int64(rng.Intn(100)))}
		base := f.Const(gbase)
		n := f.Const(int64(rng.Intn(6) + 2))
		i := f.Reg()
		f.MovI(i, 0)
		f.Block("loop")
		for k := 0; k < 3+rng.Intn(8); k++ {
			opc := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
				ir.OpXor, ir.OpMin, ir.OpMax}[rng.Intn(8)]
			d := f.Reg()
			a := regs[rng.Intn(len(regs))]
			b := regs[rng.Intn(len(regs))]
			f.Bin(opc, d, a, b)
			regs = append(regs, d)
		}
		// A store and a load for side effects.
		addr := f.Reg()
		f.ShlI(addr, i, 2)
		f.Add(addr, addr, base)
		f.StW(addr, 0, regs[len(regs)-1])
		ld := f.Reg()
		f.LdW(ld, addr, 0)
		regs = append(regs, ld)
		f.AddI(i, i, 1)
		f.Br(ir.CmpLT, i, n, "loop")
		f.Block("done")
		f.Ret(regs[len(regs)-1])
		pb.SetEntry("main")
		checkPreserves(t, pb.MustBuild())
	}
}

func TestMaxLive(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	a := f.Const(1)
	b := f.Const(2)
	c := f.Const(3)
	s := f.Reg()
	f.Add(s, a, b)
	f.Add(s, s, c)
	f.Ret(s)
	pb.SetEntry("main")
	p := pb.MustBuild()
	if ml := MaxLive(p.Funcs["main"]); ml < 3 {
		t.Fatalf("MaxLive = %d, want >= 3", ml)
	}
}

func TestStrengthReduction(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 1, true)
	f.Block("entry")
	x := f.Param(0)
	a, b, c, d := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.MulI(a, x, 8) // -> shl 3
	f.MulI(b, x, 1) // -> mov
	f.MulI(c, x, 0) // -> mov #0
	f.AddI(d, x, 0) // -> mov
	s := f.Reg()
	f.Add(s, a, b)
	f.Add(s, s, c)
	f.Add(s, s, d)
	f.Ret(s)
	pb.SetEntry("main")
	p := pb.MustBuild()
	ref, err := interp.Run(p.Clone(), interp.Options{EntryArgs: []int64{7}})
	if err != nil {
		t.Fatal(err)
	}
	Optimize(p)
	for _, blk := range p.Funcs["main"].Blocks {
		for _, op := range blk.Ops {
			if op.Opcode == ir.OpMul {
				t.Fatalf("mul survived strength reduction: %s", op)
			}
		}
	}
	res, err := interp.Run(p, interp.Options{EntryArgs: []int64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != ref.Ret {
		t.Fatalf("ret changed: %d -> %d", ref.Ret, res.Ret)
	}
}

func TestStrengthReductionSignedDivUntouched(t *testing.T) {
	// Signed division must NOT become a shift (different rounding for
	// negative operands).
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 1, true)
	f.Block("entry")
	d := f.Reg()
	f.DivI(d, f.Param(0), 4)
	f.Ret(d)
	pb.SetEntry("main")
	p := pb.MustBuild()
	Optimize(p)
	divs := 0
	for _, blk := range p.Funcs["main"].Blocks {
		for _, op := range blk.Ops {
			if op.Opcode == ir.OpDiv {
				divs++
			}
		}
	}
	if divs != 1 {
		t.Fatalf("signed division was rewritten (%d divs remain)", divs)
	}
	res, err := interp.Run(p, interp.Options{EntryArgs: []int64{-7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != -1 { // -7/4 truncates toward zero
		t.Fatalf("-7/4 = %d, want -1", res.Ret)
	}
}

func TestLivenessAcrossBlocks(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 1, true)
	f.Block("a")
	x := f.Reg()
	f.MovI(x, 5)
	f.BrI(ir.CmpLT, f.Param(0), 0, "c")
	f.Block("b")
	f.AddI(x, x, 1)
	f.Block("c")
	f.Ret(x)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	lv := Liveness(fn)
	// x is live out of block a (read in c either way).
	var aID ir.BlockID
	for _, b := range fn.Blocks {
		if b.Name == "a" {
			aID = b.ID
		}
	}
	if !lv.Out[aID].Has(x) {
		t.Fatal("x should be live out of block a")
	}
}

func TestRegSetQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		s1 := NewRegSet(300)
		s2 := NewRegSet(300)
		for _, v := range a {
			s1.Add(ir.Reg(v))
		}
		for _, v := range b {
			s2.Add(ir.Reg(v))
		}
		union := s1.Clone()
		union.Union(s2)
		for _, v := range a {
			if !union.Has(ir.Reg(v)) {
				return false
			}
		}
		for _, v := range b {
			if !union.Has(ir.Reg(v)) {
				return false
			}
		}
		// Count agrees with a map-based model.
		m := map[uint8]bool{}
		for _, v := range a {
			m[v] = true
		}
		for _, v := range b {
			m[v] = true
		}
		if union.Count() != len(m) {
			return false
		}
		// Remove restores absence.
		for _, v := range a {
			union.Remove(ir.Reg(v))
			if union.Has(ir.Reg(v)) {
				return false
			}
			union.Add(ir.Reg(v))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredSetQuick(t *testing.T) {
	f := func(a []uint8) bool {
		s := NewPredSet(300)
		for _, v := range a {
			s.Add(ir.PredReg(v))
		}
		for _, v := range a {
			if !s.Has(ir.PredReg(v)) {
				return false
			}
		}
		c := s.Clone()
		for _, v := range a {
			c.Remove(ir.PredReg(v))
		}
		for _, v := range a {
			if c.Has(ir.PredReg(v)) || !s.Has(ir.PredReg(v)) {
				return false // Remove leaked into the original
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeadCodeKeepsDefLiveAtMidBlockBranch: a def read only on the
// taken path of a mid-block branch must survive DCE even when the
// fallthrough continuation redefines the register below the branch
// (regression: the backward scan killed it; found by the differential
// oracle in internal/verify/oracle).
func TestDeadCodeKeepsDefLiveAtMidBlockBranch(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	a := f.Const(7)
	x := f.Reg()
	f.AddI(x, a, 1)               // x = 8: live only on the taken path
	f.BrI(ir.CmpGT, a, 5, "then") // taken
	f.MovI(x, 100)                // fallthrough redefines x
	f.Jump("join")
	f.Block("then")
	f.AddI(x, x, 1) // reads the first def
	f.Block("join")
	f.Ret(x)
	pb.SetEntry("main")
	p := pb.MustBuild()
	checkPreserves(t, p)

	opt := p.Clone()
	DeadCode(opt.Funcs["main"])
	if ret, _ := run(t, opt); ret != 9 {
		t.Fatalf("ret after DeadCode = %d, want 9", ret)
	}
}

// TestCSESelfInvalidatingExpression: r1 = r1 << 1 must not make
// "r1 << 1" available — the sources now name the new value
// (regression: a following r2 = r1 << 1 was rewritten to a copy of
// the stale result; found by the differential oracle).
func TestCSESelfInvalidatingExpression(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	x := f.Const(3)
	f.ShlI(x, x, 1) // x = 6
	y := f.Reg()
	f.ShlI(y, x, 1) // y = 12, NOT a repeat of the first shl
	r := f.Reg()
	f.Add(r, x, y) // 18
	f.Ret(r)
	pb.SetEntry("main")
	p := pb.MustBuild()
	checkPreserves(t, p)

	opt := p.Clone()
	LocalCSE(opt.Funcs["main"])
	if ret, _ := run(t, opt); ret != 18 {
		t.Fatalf("ret after LocalCSE = %d, want 18", ret)
	}
}
