package opt

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/obs"
)

// passTable names the scalar pipeline's passes in execution order, so
// the instrumented driver can emit one span per pass invocation.
var passTable = []struct {
	name string
	fn   func(*ir.Func) bool
}{
	{"constprop", LocalConstProp},
	{"strength", StrengthReduce},
	{"copyprop", LocalCopyProp},
	{"cse", LocalCSE},
	{"branches", SimplifyBranches},
	{"deadcode", DeadCode},
	{"cleancfg", CleanCFG},
}

// Optimize runs the traditional scalar optimization pipeline on every
// function until a fixpoint (bounded), returning the number of
// rewriting rounds performed.
func Optimize(p *ir.Program) int { return OptimizeSpans(p, nil) }

// OptimizeSpans is Optimize with observability: each pass invocation
// that changes the function gets a span under parent carrying the
// function name, round, and IR op count before/after (the per-pass
// delta). A nil parent disables instrumentation entirely — the span
// calls are nil no-ops and no op counting happens.
func OptimizeSpans(p *ir.Program, parent *obs.Span) int {
	rounds := 0
	for _, name := range p.Order {
		f := p.Funcs[name]
		fs := parent.Child("opt." + name)
		before := 0
		if parent != nil {
			before = f.OpCount()
		}
		for i := 0; i < 8; i++ {
			changed := false
			for _, pass := range passTable {
				ps := fs.Child("opt." + name + "." + pass.name)
				var opsBefore int
				if fs != nil {
					opsBefore = f.OpCount()
				}
				c := pass.fn(f)
				changed = c || changed
				if fs != nil {
					ps.SetInt("round", i)
					ps.SetInt("ops_before", opsBefore)
					ps.SetInt("ops_after", f.OpCount())
					ps.SetAttr("changed", c)
				}
				ps.End()
			}
			rounds++
			if !changed {
				break
			}
		}
		if parent != nil {
			fs.SetInt("ops_before", before)
			fs.SetInt("ops_after", f.OpCount())
		}
		fs.End()
	}
	return rounds
}

// LocalConstProp performs per-block constant propagation and folding.
// Guarded definitions invalidate constness rather than establishing it.
func LocalConstProp(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		consts := map[ir.Reg]int64{}
		kill := func(op *ir.Op) {
			for _, d := range op.Dest {
				delete(consts, d)
			}
		}
		for _, op := range b.Ops {
			// Substitute known-constant sources into the immediate
			// position when the opcode allows one (binary ALU ops,
			// compares, branches with a register second operand).
			if !op.HasImm && len(op.Src) >= 1 {
				last := len(op.Src) - 1
				if allowImmLast(op) {
					if v, ok := consts[op.Src[last]]; ok {
						op.Src = op.Src[:last]
						op.Imm = v
						op.HasImm = true
						changed = true
					}
				}
			}
			// Fold fully-constant pure ops to mov-immediate.
			if op.Guard == 0 && len(op.Dest) == 1 && ir.IsALUEvaluable(op.Opcode) &&
				op.Opcode != ir.OpMov {
				var a, bb int64
				ok := true
				switch len(op.Src) {
				case 0:
					a, bb = 0, op.Imm
					ok = op.HasImm
				case 1:
					if v, has := consts[op.Src[0]]; has {
						a = v
						bb = op.Imm
						if !op.HasImm && op.Opcode != ir.OpAbs {
							ok = false
						}
					} else {
						ok = false
					}
				case 2:
					v0, h0 := consts[op.Src[0]]
					v1, h1 := consts[op.Src[1]]
					a, bb = v0, v1
					ok = h0 && h1
				default:
					ok = false
				}
				if ok {
					v := ir.EvalALU(op.Opcode, op.Cmp, a, bb)
					op.Opcode = ir.OpMov
					op.Src = nil
					op.Imm = v
					op.HasImm = true
					op.Cmp = 0
					changed = true
				}
			}
			// Update the constant environment.
			if op.Opcode == ir.OpMov && op.Guard == 0 && op.HasImm && len(op.Src) == 0 {
				consts[op.Dest[0]] = ir.W32(op.Imm)
			} else {
				kill(op)
			}
			if op.Opcode == ir.OpCall {
				// Calls cannot touch caller registers in this IR, so
				// only the call's own dests were killed above.
				continue
			}
		}
	}
	return changed
}

// allowImmLast reports whether the op's final source position may be
// replaced by an immediate.
func allowImmLast(op *ir.Op) bool {
	switch op.Opcode {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpShrU, ir.OpMin, ir.OpMax,
		ir.OpCmpW, ir.OpCmpP, ir.OpBr:
		return len(op.Src) == 2
	}
	return false
}

// StrengthReduce rewrites expensive operations with cheap equivalents:
// multiplication by a power of two becomes a shift, multiplication by
// 0/1/-1 becomes a move/negate, and additive identities disappear.
// (Signed division is left alone: a right shift rounds differently for
// negative operands.)
func StrengthReduce(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if !op.HasImm || len(op.Dest) != 1 || len(op.Src) != 1 {
				continue
			}
			switch op.Opcode {
			case ir.OpMul:
				switch {
				case op.Imm == 0 && op.Guard == 0:
					op.Opcode = ir.OpMov
					op.Src = nil
					op.Imm = 0
					changed = true
				case op.Imm == 1:
					op.Opcode = ir.OpMov
					op.HasImm = false
					op.Imm = 0
					changed = true
				case op.Imm > 1 && op.Imm&(op.Imm-1) == 0:
					op.Opcode = ir.OpShl
					op.Imm = int64(log2(uint64(op.Imm)))
					changed = true
				}
			case ir.OpAdd, ir.OpSub, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpShrU:
				if op.Imm == 0 {
					op.Opcode = ir.OpMov
					op.HasImm = false
					op.Imm = 0
					changed = true
				}
			}
		}
	}
	return changed
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// LocalCopyProp propagates unguarded register copies within blocks.
func LocalCopyProp(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		copyOf := map[ir.Reg]ir.Reg{}
		for _, op := range b.Ops {
			for i, s := range op.Src {
				if c, ok := copyOf[s]; ok {
					op.Src[i] = c
					changed = true
				}
			}
			// Invalidate any copy whose source or dest is redefined.
			for _, d := range op.Dest {
				delete(copyOf, d)
				for k, v := range copyOf {
					if v == d {
						delete(copyOf, k)
					}
				}
			}
			if op.Opcode == ir.OpMov && op.Guard == 0 && len(op.Src) == 1 &&
				op.Dest[0] != op.Src[0] {
				copyOf[op.Dest[0]] = op.Src[0]
			}
		}
	}
	return changed
}

// cseKey identifies a pure computation for local CSE.
type cseKey struct {
	opc    ir.Opcode
	cmp    ir.CmpKind
	s0, s1 ir.Reg
	imm    int64
	hasImm bool
}

// LocalCSE eliminates repeated pure computations within a block by
// rewriting later occurrences as copies of the first result.
func LocalCSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := map[cseKey]ir.Reg{}
		for _, op := range b.Ops {
			if len(op.Dest) != 1 || op.Guard != 0 || !ir.IsALUEvaluable(op.Opcode) ||
				op.Opcode == ir.OpMov {
				// Any write invalidates expressions using the dest.
				for _, d := range op.Dest {
					for k, v := range avail {
						if v == d || k.s0 == d || k.s1 == d {
							delete(avail, k)
						}
					}
				}
				continue
			}
			k := cseKey{opc: op.Opcode, cmp: op.Cmp, imm: op.Imm, hasImm: op.HasImm}
			if len(op.Src) > 0 {
				k.s0 = op.Src[0]
			}
			if len(op.Src) > 1 {
				k.s1 = op.Src[1]
			}
			if prev, ok := avail[k]; ok && prev != op.Dest[0] {
				op.Opcode = ir.OpMov
				op.Src = []ir.Reg{prev}
				op.HasImm = false
				op.Imm = 0
				op.Cmp = 0
				changed = true
				// The mov redefines op.Dest; fall through to invalidate.
			}
			d := op.Dest[0]
			for kk, v := range avail {
				if v == d || kk.s0 == d || kk.s1 == d {
					delete(avail, kk)
				}
			}
			// An op whose dest is also a source (r1 = r1 << 1)
			// invalidates its own expression: the recorded sources now
			// name the new value, not the one that was computed.
			if op.Opcode != ir.OpMov && k.s0 != d && k.s1 != d {
				avail[k] = d
			}
		}
	}
	return changed
}

// DeadCode removes pure operations whose results are never used, and
// prunes dead predicate destinations from defines.
func DeadCode(f *ir.Func) bool {
	lv := Liveness(f)
	changed := false
	for _, b := range f.Blocks {
		live := lv.Out[b.ID].Clone()
		plive := lv.POut[b.ID].Clone()
		var kept []*ir.Op
		for i := len(b.Ops) - 1; i >= 0; i-- {
			op := b.Ops[i]
			remove := false
			if !op.HasSideEffect() && op.Opcode != ir.OpNop {
				if op.Opcode == ir.OpCmpP {
					liveDest := false
					for j := range op.PDest {
						pd := op.PDest[j]
						if pd.Type == ir.PTNone {
							continue
						}
						if plive.Has(pd.Pred) {
							liveDest = true
						} else {
							op.PDest[j] = ir.PredDest{}
							changed = true
						}
					}
					remove = !liveDest
				} else if len(op.Dest) > 0 {
					anyLive := false
					for _, d := range op.Dest {
						if live.Has(d) {
							anyLive = true
						}
					}
					remove = !anyLive
				}
			}
			if remove {
				changed = true
				continue
			}
			lv.FlowBranch(op, live, plive)
			stepLive(op, live, plive)
			kept = append(kept, op)
		}
		// kept is reversed.
		for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
			kept[l], kept[r] = kept[r], kept[l]
		}
		b.Ops = kept
	}
	return changed
}

// SimplifyBranches removes terminal branches whose target equals the
// block's fallthrough.
func SimplifyBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		var kept []*ir.Op
		for i, op := range b.Ops {
			if op.Opcode == ir.OpBr && op.Guard == 0 && i == len(b.Ops)-1 &&
				op.Target == b.Fall {
				// Branch to fallthrough: drop it.
				changed = true
				continue
			}
			kept = append(kept, op)
		}
		b.Ops = kept
	}
	return changed
}

// CleanCFG threads trivial jumps, merges straight-line block chains and
// removes unreachable blocks.
func CleanCFG(f *ir.Func) bool {
	changed := false

	// Thread jumps through empty blocks that just jump elsewhere.
	targetOf := func(id ir.BlockID) (ir.BlockID, bool) {
		b := f.Block(id)
		if b == nil {
			return 0, false
		}
		if len(b.Ops) == 1 && b.Ops[0].IsUncondJump() {
			return b.Ops[0].Target, true
		}
		if len(b.Ops) == 0 && b.Fall != 0 {
			return b.Fall, true
		}
		return 0, false
	}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.IsBranch() {
				seen := map[ir.BlockID]bool{}
				for {
					t, ok := targetOf(op.Target)
					if !ok || t == op.Target || seen[t] {
						break
					}
					seen[t] = true
					op.Target = t
					changed = true
				}
			}
		}
		seen := map[ir.BlockID]bool{}
		for b.Fall != 0 {
			t, ok := targetOf(b.Fall)
			if !ok || t == b.Fall || seen[t] {
				break
			}
			seen[t] = true
			b.Fall = t
			changed = true
		}
	}

	if f.RemoveUnreachable() > 0 {
		changed = true
	}

	// Merge a block into its unique fallthrough successor when that
	// successor has exactly one predecessor and is not the entry.
	preds := f.Preds()
	for _, b := range f.Blocks {
		for {
			if b.Fall == 0 || b.Fall == b.ID || b.Fall == f.Entry {
				break
			}
			// Merge only across a pure fallthrough: merging past a
			// terminal branch would create mid-block control flow and
			// defeat loop-structure recognition downstream.
			last := b.LastOp()
			if last != nil && last.IsBranch() {
				break
			}
			succ := f.Block(b.Fall)
			if succ == nil || len(preds[succ.ID]) != 1 {
				break
			}
			// Merge succ into b.
			b.Ops = append(b.Ops, succ.Ops...)
			b.Fall = succ.Fall
			b.Weight = maxf(b.Weight, succ.Weight)
			succ.Ops = nil
			succ.Fall = 0
			// Make succ unreachable; recompute preds afterwards.
			changed = true
			f.RemoveUnreachable()
			preds = f.Preds()
		}
	}
	return changed
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
