// Package power estimates instruction-fetch energy in the style of the
// paper's Cacti 2.0 analysis (Section 7.2): fetching one operation from
// a single-port 256-operation buffer costs 41.8x less than a fetch from
// the 512 KB two-port unified memory, and SRAM fetch energy scales
// roughly linearly with capacity.
package power

// Model holds the calibration constants.
type Model struct {
	// MemEnergyPerOp is the global-memory fetch energy per operation,
	// in arbitrary units (the buffer energy at the calibration size is
	// 1.0).
	MemEnergyPerOp float64
	// CalibBufferOps is the buffer size at which the ratio was
	// measured (256 operations in the paper).
	CalibBufferOps int
	// MinBufferFrac floors the buffer energy for very small buffers
	// (decode/word-line overheads do not scale to zero).
	MinBufferFrac float64
}

// Default returns the paper's calibration: a 0.13um, single-port,
// 256-op (1 KB) buffer fetch is 41.8x cheaper than a 512 KB, 2 r/w
// port non-cache memory fetch.
func Default() *Model {
	return &Model{MemEnergyPerOp: 41.8, CalibBufferOps: 256, MinBufferFrac: 0.1}
}

// BufferEnergyPerOp returns the per-op fetch energy of a buffer with
// the given capacity (operations).
func (m *Model) BufferEnergyPerOp(bufferOps int) float64 {
	f := float64(bufferOps) / float64(m.CalibBufferOps)
	if f < m.MinBufferFrac {
		f = m.MinBufferFrac
	}
	return f
}

// FetchEnergy returns total instruction-fetch energy for a run that
// issued memOps from global memory and bufOps from a buffer of the
// given capacity.
func (m *Model) FetchEnergy(memOps, bufOps int64, bufferOps int) float64 {
	return float64(memOps)*m.MemEnergyPerOp +
		float64(bufOps)*m.BufferEnergyPerOp(bufferOps)
}

// LoopEnergy splits one loop's (or one run's) instruction-fetch energy
// between buffer and global-memory fetches, in the model's units.
type LoopEnergy struct {
	BufferEnergy float64 `json:"buffer_energy"`
	MemoryEnergy float64 `json:"memory_energy"`
	TotalEnergy  float64 `json:"total_energy"`
}

// Attribute computes the buffer/memory fetch-energy split for a body
// of code that issued bufOps from a buffer of the given capacity and
// memOps from global memory (the per-loop attribution behind the
// metrics snapshot's "loops" section).
func (m *Model) Attribute(memOps, bufOps int64, bufferOps int) LoopEnergy {
	e := LoopEnergy{
		BufferEnergy: float64(bufOps) * m.BufferEnergyPerOp(bufferOps),
		MemoryEnergy: float64(memOps) * m.MemEnergyPerOp,
	}
	e.TotalEnergy = e.BufferEnergy + e.MemoryEnergy
	return e
}

// Normalized returns the run's fetch energy relative to a baseline run
// that fetched baselineMemOps operations entirely from global memory
// (the paper's Figure 8b normalization: buffer-less issue of
// traditionally optimized code).
func (m *Model) Normalized(memOps, bufOps int64, bufferOps int, baselineMemOps int64) float64 {
	if baselineMemOps == 0 {
		return 0
	}
	base := float64(baselineMemOps) * m.MemEnergyPerOp
	return m.FetchEnergy(memOps, bufOps, bufferOps) / base
}
