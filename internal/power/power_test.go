package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCalibrationRatio(t *testing.T) {
	m := Default()
	// The paper's Cacti datum: a 256-op buffer fetch is 41.8x cheaper
	// than a global memory fetch.
	ratio := m.MemEnergyPerOp / m.BufferEnergyPerOp(256)
	if math.Abs(ratio-41.8) > 1e-9 {
		t.Fatalf("calibration ratio = %v, want 41.8", ratio)
	}
}

func TestLinearScaling(t *testing.T) {
	m := Default()
	if got := m.BufferEnergyPerOp(512); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("512-op energy = %v, want 2.0", got)
	}
	if got := m.BufferEnergyPerOp(128); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("128-op energy = %v, want 0.5", got)
	}
}

func TestSmallBufferFloor(t *testing.T) {
	m := Default()
	if got := m.BufferEnergyPerOp(1); got != m.MinBufferFrac {
		t.Fatalf("tiny buffer energy = %v, want floor %v", got, m.MinBufferFrac)
	}
}

func TestNormalizedBaseline(t *testing.T) {
	m := Default()
	// Fetching everything from memory equals the baseline exactly.
	if got := m.Normalized(1000, 0, 256, 1000); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("all-memory normalized = %v, want 1.0", got)
	}
	// Fetching everything from the calibrated buffer gives 1/41.8.
	want := 1.0 / 41.8
	if got := m.Normalized(0, 1000, 256, 1000); math.Abs(got-want) > 1e-9 {
		t.Fatalf("all-buffer normalized = %v, want %v", got, want)
	}
}

func TestMonotonicity(t *testing.T) {
	m := Default()
	f := func(memOps, bufOps uint16) bool {
		a := m.FetchEnergy(int64(memOps), int64(bufOps), 256)
		// Moving one op from memory to the buffer never raises energy.
		if memOps > 0 {
			b := m.FetchEnergy(int64(memOps)-1, int64(bufOps)+1, 256)
			if b > a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBaseline(t *testing.T) {
	m := Default()
	if got := m.Normalized(10, 10, 256, 0); got != 0 {
		t.Fatalf("zero baseline should give 0, got %v", got)
	}
}
