package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCalibrationRatio(t *testing.T) {
	m := Default()
	// The paper's Cacti datum: a 256-op buffer fetch is 41.8x cheaper
	// than a global memory fetch.
	ratio := m.MemEnergyPerOp / m.BufferEnergyPerOp(256)
	if math.Abs(ratio-41.8) > 1e-9 {
		t.Fatalf("calibration ratio = %v, want 41.8", ratio)
	}
}

func TestLinearScaling(t *testing.T) {
	m := Default()
	if got := m.BufferEnergyPerOp(512); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("512-op energy = %v, want 2.0", got)
	}
	if got := m.BufferEnergyPerOp(128); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("128-op energy = %v, want 0.5", got)
	}
}

func TestSmallBufferFloor(t *testing.T) {
	m := Default()
	if got := m.BufferEnergyPerOp(1); got != m.MinBufferFrac {
		t.Fatalf("tiny buffer energy = %v, want floor %v", got, m.MinBufferFrac)
	}
}

func TestNormalizedBaseline(t *testing.T) {
	m := Default()
	// Fetching everything from memory equals the baseline exactly.
	if got := m.Normalized(1000, 0, 256, 1000); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("all-memory normalized = %v, want 1.0", got)
	}
	// Fetching everything from the calibrated buffer gives 1/41.8.
	want := 1.0 / 41.8
	if got := m.Normalized(0, 1000, 256, 1000); math.Abs(got-want) > 1e-9 {
		t.Fatalf("all-buffer normalized = %v, want %v", got, want)
	}
}

func TestMonotonicity(t *testing.T) {
	m := Default()
	f := func(memOps, bufOps uint16) bool {
		a := m.FetchEnergy(int64(memOps), int64(bufOps), 256)
		// Moving one op from memory to the buffer never raises energy.
		if memOps > 0 {
			b := m.FetchEnergy(int64(memOps)-1, int64(bufOps)+1, 256)
			if b > a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBaseline(t *testing.T) {
	m := Default()
	if got := m.Normalized(10, 10, 256, 0); got != 0 {
		t.Fatalf("zero baseline should give 0, got %v", got)
	}
}

func TestMinBufferFracFloor(t *testing.T) {
	m := Default()
	// Every capacity at or below the floor's break-even point pays the
	// same floored energy; the floor engages exactly where linear
	// scaling would dip below it (256 * 0.1 = 25.6 ops).
	floorE := m.MinBufferFrac
	for _, ops := range []int{1, 2, 8, 16, 25} {
		if got := m.BufferEnergyPerOp(ops); math.Abs(got-floorE) > 1e-12 {
			t.Fatalf("BufferEnergyPerOp(%d) = %v, want floor %v", ops, got, floorE)
		}
	}
	// Just above break-even, linear scaling resumes.
	if got := m.BufferEnergyPerOp(26); got <= floorE {
		t.Fatalf("BufferEnergyPerOp(26) = %v, want > floor %v", got, floorE)
	}
	// The floor keeps tiny buffers from reporting near-zero energy in
	// FetchEnergy too.
	if got := m.FetchEnergy(0, 1000, 1); math.Abs(got-1000*floorE) > 1e-9 {
		t.Fatalf("floored FetchEnergy = %v, want %v", got, 1000*floorE)
	}
	// A zero floor degenerates to pure linear scaling.
	m2 := &Model{MemEnergyPerOp: 41.8, CalibBufferOps: 256, MinBufferFrac: 0}
	if got := m2.BufferEnergyPerOp(1); math.Abs(got-1.0/256) > 1e-12 {
		t.Fatalf("unfloored BufferEnergyPerOp(1) = %v, want %v", got, 1.0/256)
	}
}

func TestZeroOpRuns(t *testing.T) {
	m := Default()
	// A run that issued nothing costs nothing and attributes nothing.
	if got := m.FetchEnergy(0, 0, 256); got != 0 {
		t.Fatalf("zero-op FetchEnergy = %v, want 0", got)
	}
	e := m.Attribute(0, 0, 256)
	if e.BufferEnergy != 0 || e.MemoryEnergy != 0 || e.TotalEnergy != 0 {
		t.Fatalf("zero-op attribution = %+v, want zeros", e)
	}
	// Zero ops against a real baseline normalizes to 0, not NaN.
	if got := m.Normalized(0, 0, 256, 1000); got != 0 || math.IsNaN(got) {
		t.Fatalf("zero-op normalized = %v, want 0", got)
	}
}

func TestAttributeSplits(t *testing.T) {
	m := Default()
	e := m.Attribute(10, 1000, 256)
	if math.Abs(e.MemoryEnergy-418.0) > 1e-9 {
		t.Fatalf("memory energy = %v, want 418", e.MemoryEnergy)
	}
	if math.Abs(e.BufferEnergy-1000.0) > 1e-9 {
		t.Fatalf("buffer energy = %v, want 1000 (calibration size)", e.BufferEnergy)
	}
	if math.Abs(e.TotalEnergy-(e.BufferEnergy+e.MemoryEnergy)) > 1e-9 {
		t.Fatalf("total %v != buffer %v + memory %v", e.TotalEnergy, e.BufferEnergy, e.MemoryEnergy)
	}
	// Attribution sums to FetchEnergy exactly.
	if got := m.FetchEnergy(10, 1000, 256); math.Abs(got-e.TotalEnergy) > 1e-9 {
		t.Fatalf("FetchEnergy %v != attribution total %v", got, e.TotalEnergy)
	}
}
