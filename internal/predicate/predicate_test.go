package predicate

import (
	"bytes"
	"testing"

	"lpbuf/internal/hyperblock"
	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// convertedDiamond returns a hyperblock loop with predicated code.
func convertedDiamond(t *testing.T) (*ir.Program, *ir.Func) {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, 32)
	for i := range vals {
		vals[i] = int32(i*11%37 - 18)
	}
	inOff := pb.GlobalW("in", 32, vals)
	outOff := pb.GlobalW("out", 32, nil)
	f := pb.Func("main", 0, false)
	f.Block("pre")
	i := f.Reg()
	in := f.Const(inOff)
	out := f.Const(outOff)
	f.MovI(i, 0)
	f.Block("head")
	x, y := f.Reg(), f.Reg()
	f.LdW(x, in, 0)
	f.BrI(ir.CmpGE, x, 0, "else")
	f.Block("then")
	tmp := f.Reg()
	f.MulI(tmp, x, -3) // single-def temp: promotable
	f.Mov(y, tmp)
	f.Jump("join")
	f.Block("else")
	f.AddI(y, x, 7)
	f.Block("join")
	f.StW(out, 0, y)
	f.AddI(in, in, 4)
	f.AddI(out, out, 4)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 32, "head")
	f.Block("done")
	f.Ret(0)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	if n := hyperblock.ConvertLoops(fn, hyperblock.Options{}); n != 1 {
		t.Fatal("conversion failed")
	}
	return p, fn
}

func TestPromotePreservesSemantics(t *testing.T) {
	p, fn := convertedDiamond(t)
	ref, err := interp.Run(p.Clone(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := Promote(fn)
	if n == 0 {
		t.Fatal("expected some promotions in the if-converted diamond")
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Mem, res.Mem) {
		t.Fatalf("promotion changed behaviour\n%s", fn)
	}
}

func TestPromoteKeepsStoresGuarded(t *testing.T) {
	_, fn := convertedDiamond(t)
	Promote(fn)
	for _, b := range fn.Blocks {
		for _, op := range b.Ops {
			if op.IsStore() && op.Guard == 0 && len(b.Ops) > 3 {
				// The store in the converted loop body is unguarded only
				// if it was unconditional originally; in this diamond the
				// store is in the join (header path), so it is fine.
				_ = op
			}
		}
	}
}

func TestPromoteDoesNotPromoteSharedDest(t *testing.T) {
	// y is written on both sides of the diamond (two defs): neither may
	// be promoted, or the second write would clobber the first
	// unconditionally.
	_, fn := convertedDiamond(t)
	// Find the loop block; y is the register stored to memory.
	var loop *ir.Block
	for _, b := range fn.Blocks {
		if last := b.LastOp(); last != nil && last.IsBranch() && last.Target == b.ID {
			loop = b
		}
	}
	if loop == nil {
		t.Fatal("no loop block")
	}
	var yReg ir.Reg
	for _, op := range loop.Ops {
		if op.IsStore() {
			yReg = op.Src[1]
		}
	}
	Promote(fn)
	guardedDefs := 0
	for _, op := range loop.Ops {
		for _, d := range op.Dest {
			if d == yReg && op.Guard != 0 {
				guardedDefs++
			}
		}
	}
	if guardedDefs < 2 {
		t.Fatalf("multi-def register lost its guards (%d guarded defs remain)", guardedDefs)
	}
}

func TestRelationsImplication(t *testing.T) {
	f := ir.NewFunc("t")
	b := f.NewBlock()
	f.Entry = b.ID
	x := f.NewReg()
	p1 := f.NewPred()
	p2 := f.NewPred()
	// p1 = (x < 0); (p1) p2 = (x < -10)
	d1 := &ir.Op{ID: f.NewOpID(), Opcode: ir.OpCmpP, Cmp: ir.CmpLT,
		Src: []ir.Reg{x}, Imm: 0, HasImm: true}
	d1.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	d2 := &ir.Op{ID: f.NewOpID(), Opcode: ir.OpCmpP, Cmp: ir.CmpLT,
		Src: []ir.Reg{x}, Imm: -10, HasImm: true, Guard: p1}
	d2.PDest[0] = ir.PredDest{Pred: p2, Type: ir.PTUT}
	b.Ops = []*ir.Op{d1, d2, {ID: f.NewOpID(), Opcode: ir.OpRet}}

	rel := AnalyzeBlock(b)
	if !rel.Implies(p2, p1) {
		t.Fatal("p2 should imply p1 (defined under guard p1)")
	}
	if rel.Implies(p1, p2) {
		t.Fatal("p1 must not imply p2")
	}
	if !rel.Implies(p1, 0) || !rel.Implies(0, 0) {
		t.Fatal("everything implies the true predicate")
	}
	if rel.Implies(0, p1) {
		t.Fatal("true predicate implies nothing")
	}
}

func TestBindSlotsSimple(t *testing.T) {
	f := ir.NewFunc("t")
	p1 := f.NewPred()
	x := f.NewReg()
	def := &ir.Op{ID: 1, Opcode: ir.OpCmpP, Cmp: ir.CmpLT, Src: []ir.Reg{x},
		Imm: 0, HasImm: true}
	def.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	use1 := &ir.Op{ID: 2, Opcode: ir.OpAdd, Dest: []ir.Reg{x}, Src: []ir.Reg{x},
		Imm: 1, HasImm: true, Guard: p1}
	use2 := &ir.Op{ID: 3, Opcode: ir.OpAdd, Dest: []ir.Reg{x}, Src: []ir.Reg{x},
		Imm: 2, HasImm: true, Guard: p1}

	res := BindSlots([]SchedOp{
		{Op: def, Cycle: 0, Slot: 0},
		{Op: use1, Cycle: 1, Slot: 2},
		{Op: use2, Cycle: 2, Slot: 2},
	}, 8)
	if !res.OK {
		t.Fatalf("binding failed: %s", res.Reason)
	}
	if res.MaxLive != 1 {
		t.Fatalf("MaxLive = %d, want 1", res.MaxLive)
	}
	if res.Sensitive != 2 || res.Defines != 1 {
		t.Fatalf("sensitive=%d defines=%d", res.Sensitive, res.Defines)
	}
	if res.ExtraDefines != 0 {
		t.Fatalf("ExtraDefines = %d, want 0", res.ExtraDefines)
	}
	if got := res.SlotsOf[p1]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("SlotsOf = %v", got)
	}
}

func TestBindSlotsFanoutNeedsReplicas(t *testing.T) {
	f := ir.NewFunc("t")
	p1 := f.NewPred()
	x := f.NewReg()
	def := &ir.Op{ID: 1, Opcode: ir.OpCmpP, Cmp: ir.CmpLT, Src: []ir.Reg{x},
		Imm: 0, HasImm: true}
	def.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	ops := []SchedOp{{Op: def, Cycle: 0, Slot: 0}}
	for s := 1; s <= 5; s++ {
		u := &ir.Op{ID: 10 + s, Opcode: ir.OpAdd, Dest: []ir.Reg{x},
			Src: []ir.Reg{x}, Imm: 1, HasImm: true, Guard: p1}
		ops = append(ops, SchedOp{Op: u, Cycle: 1, Slot: s})
	}
	res := BindSlots(ops, 8)
	// Five consumer slots need ceil(5/2)-1 = 2 replica defines.
	if res.ExtraDefines != 2 {
		t.Fatalf("ExtraDefines = %d, want 2", res.ExtraDefines)
	}
}

func TestBindSlotsConflictCounted(t *testing.T) {
	f := ir.NewFunc("t")
	p1, p2 := f.NewPred(), f.NewPred()
	x := f.NewReg()
	mk := func(id int, p ir.PredReg) *ir.Op {
		d := &ir.Op{ID: id, Opcode: ir.OpCmpP, Cmp: ir.CmpLT, Src: []ir.Reg{x},
			Imm: 0, HasImm: true}
		d.PDest[0] = ir.PredDest{Pred: p, Type: ir.PTUT}
		return d
	}
	use := func(id int, p ir.PredReg) *ir.Op {
		return &ir.Op{ID: id, Opcode: ir.OpAdd, Dest: []ir.Reg{x},
			Src: []ir.Reg{x}, Imm: 1, HasImm: true, Guard: p}
	}
	// Both defines at cycle 0; uses of p1 then p2 in the same slot, but
	// p2's define does not fall between them -> a replica is needed.
	res := BindSlots([]SchedOp{
		{Op: mk(1, p1), Cycle: 0, Slot: 0},
		{Op: mk(2, p2), Cycle: 0, Slot: 1},
		{Op: use(3, p1), Cycle: 1, Slot: 4},
		{Op: use(4, p2), Cycle: 2, Slot: 4},
	}, 8)
	if res.ExtraDefines != 1 {
		t.Fatalf("ExtraDefines = %d, want 1", res.ExtraDefines)
	}
}

func TestConsumersPerDefine(t *testing.T) {
	f := ir.NewFunc("t")
	b := f.NewBlock()
	f.Entry = b.ID
	x := f.NewReg()
	p1 := f.NewPred()
	d1 := &ir.Op{ID: 1, Opcode: ir.OpCmpP, Cmp: ir.CmpLT, Src: []ir.Reg{x}, Imm: 0, HasImm: true}
	d1.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	u1 := &ir.Op{ID: 2, Opcode: ir.OpAdd, Dest: []ir.Reg{x}, Src: []ir.Reg{x}, Imm: 1, HasImm: true, Guard: p1}
	u2 := &ir.Op{ID: 3, Opcode: ir.OpAdd, Dest: []ir.Reg{x}, Src: []ir.Reg{x}, Imm: 1, HasImm: true, Guard: p1}
	d2 := &ir.Op{ID: 4, Opcode: ir.OpCmpP, Cmp: ir.CmpGT, Src: []ir.Reg{x}, Imm: 5, HasImm: true}
	d2.PDest[0] = ir.PredDest{Pred: p1, Type: ir.PTUT}
	u3 := &ir.Op{ID: 5, Opcode: ir.OpAdd, Dest: []ir.Reg{x}, Src: []ir.Reg{x}, Imm: 1, HasImm: true, Guard: p1}
	b.Ops = []*ir.Op{d1, u1, u2, d2, u3}
	counts := ConsumersPerDefine(b)
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v, want [2 1]", counts)
	}
}

func TestPromoteRejectsSelfUpdate(t *testing.T) {
	// (p) add r = r, 4 reads its own dest (previous iteration's value):
	// promotion must be rejected even when all other readers imply p.
	f := ir.NewFunc("t")
	b := f.NewBlock()
	f.Entry = b.ID
	r := f.NewReg()
	x := f.NewReg()
	p := f.NewPred()
	def := &ir.Op{ID: 1, Opcode: ir.OpCmpP, Cmp: ir.CmpLT, Src: []ir.Reg{x},
		Imm: 0, HasImm: true}
	def.PDest[0] = ir.PredDest{Pred: p, Type: ir.PTUT}
	selfUpd := &ir.Op{ID: 2, Opcode: ir.OpAdd, Dest: []ir.Reg{r},
		Src: []ir.Reg{r}, Imm: 4, HasImm: true, Guard: p}
	use := &ir.Op{ID: 3, Opcode: ir.OpAdd, Dest: []ir.Reg{x},
		Src: []ir.Reg{r}, Imm: 0, HasImm: true, Guard: p}
	back := &ir.Op{ID: 4, Opcode: ir.OpBr, Cmp: ir.CmpLT, Src: []ir.Reg{x},
		Imm: 100, HasImm: true, Target: b.ID, LoopBack: true}
	b.Ops = []*ir.Op{def, selfUpd, use, back}
	b.Fall = b.ID // keep r live via the self edge shape
	exit := f.NewBlock()
	exit.Ops = []*ir.Op{{ID: 5, Opcode: ir.OpRet}}
	b.Fall = exit.ID
	Promote(f)
	if selfUpd.Guard == 0 {
		t.Fatal("self-updating guarded op was promoted")
	}
}

func TestSpeculateLoadsAfterExits(t *testing.T) {
	// Build a hyperblock-shaped single block: guarded exit jump, then an
	// unguarded load into a loop-local temp.
	pb := irbuild.NewProgram(16 << 10)
	g := pb.GlobalW("g", 16, []int32{5, 6, 7, 8})
	f := pb.Func("main", 0, true)
	f.Block("pre")
	base := f.Const(g)
	i := f.Reg()
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("loop")
	pe := f.F.NewPred()
	f.CmpPI(pe, ir.PTUT, 0, ir.PTNone, ir.CmpGT, acc, 1<<20)
	f.Jump("exit").Guard = pe
	v := f.Reg()
	f.LdW(v, base, 0) // dead at the exit: speculable
	f.Add(acc, acc, v)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 10, "loop")
	f.Block("after")
	f.Ret(acc)
	f.Block("exit")
	m := f.Const(-1)
	f.Ret(m)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	if n := SpeculateLoads(fn); n != 1 {
		t.Fatalf("speculated %d loads, want 1", n)
	}
	// Behaviour unchanged.
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret == 0 {
		t.Fatal("loop did nothing")
	}
}

func TestSpeculateLoadsRespectsLiveness(t *testing.T) {
	// The load's dest is returned on the exit path: must NOT speculate.
	pb := irbuild.NewProgram(16 << 10)
	g := pb.Global("g", 64, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	base := f.Const(g)
	i := f.Reg()
	v := f.Reg()
	f.MovI(i, 0)
	f.MovI(v, 0)
	f.Block("loop")
	pe := f.F.NewPred()
	f.CmpPI(pe, ir.PTUT, 0, ir.PTNone, ir.CmpGT, i, 1<<20)
	f.Jump("exit").Guard = pe
	f.LdW(v, base, 0)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 10, "loop")
	f.Block("after")
	f.Ret(i)
	f.Block("exit")
	f.Ret(v) // v live at the exit
	pb.SetEntry("main")
	p := pb.MustBuild()
	if n := SpeculateLoads(p.Funcs["main"]); n != 0 {
		t.Fatalf("speculated %d loads with live-at-exit dest", n)
	}
}
