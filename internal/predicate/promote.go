// Package predicate implements predicate-aware analyses and
// transformations: a lightweight predicate relation query system (the
// compiler "must understand the relations among predicates", Section 3),
// predicate promotion (Section 4.3), and the slot-based predication
// binding of Section 4.2.
package predicate

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/opt"
)

// Relations captures, for the predicates defined within one block, a
// conservative implication relation: Implies(q, p) == true guarantees
// that whenever q holds at its consumers, p held at q's definition.
type Relations struct {
	// parents[q] lists predicates g such that q => g directly (every
	// define contributing to q was guarded by g).
	parents map[ir.PredReg]map[ir.PredReg]bool
	// tainted predicates have defines we cannot reason about (e.g.
	// written in several blocks or and/conditional types).
	tainted map[ir.PredReg]bool
}

// AnalyzeBlock builds relations from the defines in a single block
// (hyperblock predicates are defined and consumed within one block).
func AnalyzeBlock(b *ir.Block) *Relations {
	r := &Relations{
		parents: map[ir.PredReg]map[ir.PredReg]bool{},
		tainted: map[ir.PredReg]bool{},
	}
	// Track in-block constants so initializer defines with statically
	// false conditions (the `p = (0 != 0)` reset pattern) are excluded:
	// they can never be the source of a predicate's truth.
	consts := map[ir.Reg]int64{}
	for _, op := range b.Ops {
		if op.Opcode == ir.OpMov && op.Guard == 0 && op.HasImm && len(op.Src) == 0 {
			consts[op.Dest[0]] = ir.W32(op.Imm)
		} else {
			for _, d := range op.Dest {
				delete(consts, d)
			}
		}
		if op.Opcode == ir.OpCmpP {
			if a, ok := consts[op.Src[0]]; ok && op.HasImm && len(op.Src) == 1 {
				if !op.Cmp.Eval(a, op.Imm) {
					// Condition statically false: ut/ot defines write
					// only false (or nothing); skip as a truth source.
					allFalseOK := true
					for _, pd := range op.PredDefines() {
						if pd.Type != ir.PTUT && pd.Type != ir.PTOT {
							allFalseOK = false
						}
					}
					if allFalseOK {
						continue
					}
				}
			}
		}
		for _, pd := range op.PredDefines() {
			switch pd.Type {
			case ir.PTUT, ir.PTUF, ir.PTOT, ir.PTOF:
				// q's truth requires the define's guard: for ut/uf the
				// written value is guard&&cond(/!cond); for or-types a 1
				// is written only under guard&&cond. (Or-types also
				// keep prior truth, so ALL contributions must share the
				// implication; we intersect below by accumulating.)
				if r.parents[pd.Pred] == nil {
					r.parents[pd.Pred] = map[ir.PredReg]bool{}
					if op.Guard != 0 {
						r.parents[pd.Pred][op.Guard] = true
					}
				} else {
					// Intersect with this contribution's guard set.
					keep := map[ir.PredReg]bool{}
					if op.Guard != 0 && r.parents[pd.Pred][op.Guard] {
						keep[op.Guard] = true
					}
					r.parents[pd.Pred] = keep
				}
			default:
				r.tainted[pd.Pred] = true
			}
		}
	}
	return r
}

// Implies reports whether q => p is guaranteed (conservatively false).
// Both p==0 ("always") and q==p return true.
func (r *Relations) Implies(q, p ir.PredReg) bool {
	if p == 0 || q == p {
		return true
	}
	if q == 0 {
		return false
	}
	// BFS up the guard chain.
	seen := map[ir.PredReg]bool{q: true}
	work := []ir.PredReg{q}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if r.tainted[cur] {
			return false
		}
		for g := range r.parents[cur] {
			if g == p {
				return true
			}
			if !seen[g] {
				seen[g] = true
				work = append(work, g)
			}
		}
	}
	return false
}

// Promote performs predicate promotion on every block of f: the guard
// is removed from an operation when executing it speculatively cannot
// change observable behaviour. The conservative conditions for an op O
// with guard p writing register r are:
//
//   - O is a pure ALU op or a load (loads become speculative, so a
//     faulting address under a false predicate is squashed);
//   - O is the only definition of r in its block;
//   - r is not live into any successor other than the block itself (a
//     self back edge is fine because the next iteration redefines r
//     before any read, per the next condition);
//   - every in-block reader of r appears after O and is guarded by a
//     predicate that implies p (it could only have observed r when O
//     actually executed).
//
// Returns the number of operations promoted.
func Promote(f *ir.Func) int {
	promoted := 0
	lv := opt.Liveness(f)
	for _, b := range f.Blocks {
		rel := AnalyzeBlock(b)
		// Live into any non-self successor?
		liveExit := opt.NewRegSet(f.NumRegs())
		for _, s := range b.Succs() {
			if s != b.ID {
				liveExit.Union(lv.In[s])
			}
		}

		defs := map[ir.Reg]int{}
		for _, op := range b.Ops {
			for _, d := range op.Dest {
				defs[d]++
			}
		}
		for oi, op := range b.Ops {
			if op.Guard == 0 || len(op.Dest) != 1 {
				continue
			}
			if !(ir.IsALUEvaluable(op.Opcode) || op.IsLoad() || op.Opcode == ir.OpSel) {
				continue
			}
			r := op.Dest[0]
			if defs[r] != 1 || liveExit.Has(r) {
				continue
			}
			ok := true
			for ri, reader := range b.Ops {
				reads := false
				for _, s := range reader.Src {
					if s == r {
						reads = true
					}
				}
				if !reads {
					continue
				}
				// ri == oi is the op reading its own destination (a
				// self-update like `(p) add r = r, 4`): that read sees
				// the previous iteration's value, so the register is
				// live across the back edge and must stay guarded.
				if ri <= oi || !rel.Implies(reader.Guard, op.Guard) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if op.IsLoad() {
				op.Speculative = true
			}
			op.Guard = 0
			promoted++
		}
	}
	return promoted
}
