package predicate_test

import (
	"bytes"
	"testing"

	"lpbuf/internal/hyperblock"
	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/predicate"
	"lpbuf/internal/verify"
	"lpbuf/internal/verify/gen"
)

// property tests for promotion and speculation, in an external test
// package so they can drive the internal/verify invariant checker
// (verify imports predicate, so these cannot live in-package).

// convertedRandom builds a generated program and if-converts its loops
// so the passes under test have guarded code to chew on.
func convertedRandom(seed int64) *ir.Program {
	p := gen.Program(seed)
	for _, name := range p.Order {
		hyperblock.ConvertLoops(p.Funcs[name], hyperblock.Options{})
	}
	return p
}

func interpRef(t *testing.T, p *ir.Program) *interp.Result {
	t.Helper()
	r, err := interp.Run(p.Clone(), interp.Options{MaxOps: 1 << 22})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return r
}

// TestPromoteProperties: over a corpus of random predicated programs,
// promotion (a) only ever removes guards — it never introduces a use
// of a predicate that was not already guarding that op, (b) keeps
// every IR invariant intact (in particular no undefined-predicate
// uses), and (c) preserves observable behaviour.
func TestPromoteProperties(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := convertedRandom(seed)
		ref := interpRef(t, p)

		guardedBefore := map[string]map[int]ir.PredReg{}
		for name, f := range p.Funcs {
			m := map[int]ir.PredReg{}
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if op.Guard != 0 {
						m[op.ID] = op.Guard
					}
				}
			}
			guardedBefore[name] = m
		}

		for _, name := range p.Order {
			predicate.Promote(p.Funcs[name])
		}

		for name, f := range p.Funcs {
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if op.Guard == 0 {
						continue
					}
					if was, ok := guardedBefore[name][op.ID]; !ok || was != op.Guard {
						t.Fatalf("seed %d: %s op %d: promotion introduced guard p%d",
							seed, name, op.ID, op.Guard)
					}
				}
			}
		}
		if vs := verify.Program("post-promote", p); len(vs) > 0 {
			t.Fatalf("seed %d: %v", seed, verify.AsError(vs))
		}
		got := interpRef(t, p)
		if got.Ret != ref.Ret || !bytes.Equal(got.Mem, ref.Mem) {
			t.Fatalf("seed %d: promotion changed behaviour (ret %d vs %d)",
				seed, got.Ret, ref.Ret)
		}
	}
}

// TestSpeculateProperties: over the same corpus, load speculation
// (a) marks only loads — never stores or any other potentially
// faulting op, (b) keeps the IR invariants, and (c) preserves
// behaviour. (The "never hoisted above its guard" half of the
// contract is the scheduler's; the dest-dead-on-exit precondition it
// relies on is checked directly in TestSpeculateLoadsRespectsLiveness.)
func TestSpeculateProperties(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := convertedRandom(seed)
		ref := interpRef(t, p)
		for _, name := range p.Order {
			f := p.Funcs[name]
			predicate.Promote(f)
			predicate.SpeculateLoads(f)
		}
		for name, f := range p.Funcs {
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if op.Speculative && !op.IsLoad() {
						t.Fatalf("seed %d: %s op %d: non-load %v marked speculative",
							seed, name, op.ID, op.Opcode)
					}
					if op.IsStore() && op.Speculative {
						t.Fatalf("seed %d: %s op %d: speculative store", seed, name, op.ID)
					}
				}
			}
		}
		if vs := verify.Program("post-speculate", p); len(vs) > 0 {
			t.Fatalf("seed %d: %v", seed, verify.AsError(vs))
		}
		got := interpRef(t, p)
		if got.Ret != ref.Ret || !bytes.Equal(got.Mem, ref.Mem) {
			t.Fatalf("seed %d: speculation changed behaviour (ret %d vs %d)",
				seed, got.Ret, ref.Ret)
		}
	}
}
