package predicate

import (
	"fmt"
	"sort"

	"lpbuf/internal/ir"
)

// SchedOp is one scheduled operation: the op plus its placement in the
// (kernel) schedule. Cycle is the issue cycle; Slot the issue slot.
type SchedOp struct {
	Op    *ir.Op
	Cycle int
	Slot  int
}

// BindResult reports the outcome of binding a scheduled block's virtual
// predicates onto per-slot standing predicates (Section 4.2).
type BindResult struct {
	// SlotsOf maps each virtual predicate to the issue slots that must
	// hold it as their standing predicate (its consumers' slots).
	SlotsOf map[ir.PredReg][]int
	// ExtraDefines counts replica predicate defines that would have to
	// be inserted: defines whose consumer-slot set exceeds the two slot
	// destinations one define can write, plus standing-predicate
	// timeline conflicts that require regenerating a value.
	ExtraDefines int
	// MaxLive is the maximum number of simultaneously live predicates.
	MaxLive int
	// Sensitive counts operations with the predicate-sensitivity bit
	// set (guarded consumers).
	Sensitive int
	// Defines counts predicate-define operations.
	Defines int
	// OK reports whether the block's predication fits the slot model
	// without spilling (MaxLive within the machine's slot count).
	OK bool
	// Reason explains failure when !OK.
	Reason string
}

// BindSlots analyzes one scheduled block under the slot-based
// predication model of Section 4.2: every slot holds one standing
// predicate; defines route values to at most two slots; operations
// carry a single sensitivity bit. The analysis reports whether the
// schedule's predicate usage fits numSlots standing predicates and how
// many replica defines are required.
func BindSlots(ops []SchedOp, numSlots int) BindResult {
	res := BindResult{SlotsOf: map[ir.PredReg][]int{}, OK: true}

	type rng struct {
		def     int // define cycle (earliest)
		lastUse int
	}
	ranges := map[ir.PredReg]*rng{}
	defCycles := map[ir.PredReg][]int{}
	consumerSlots := map[ir.PredReg]map[int]bool{}
	slotUses := map[int][]SchedOp{} // guarded consumers per slot

	for _, so := range ops {
		if so.Op.Guard != 0 {
			res.Sensitive++
			p := so.Op.Guard
			if consumerSlots[p] == nil {
				consumerSlots[p] = map[int]bool{}
			}
			consumerSlots[p][so.Slot] = true
			slotUses[so.Slot] = append(slotUses[so.Slot], so)
			r := ranges[p]
			if r == nil {
				r = &rng{def: -1, lastUse: so.Cycle}
				ranges[p] = r
			}
			if so.Cycle > r.lastUse {
				r.lastUse = so.Cycle
			}
		}
		if so.Op.IsPredDefine() {
			res.Defines++
			for _, pd := range so.Op.PredDefines() {
				defCycles[pd.Pred] = append(defCycles[pd.Pred], so.Cycle)
				r := ranges[pd.Pred]
				if r == nil {
					r = &rng{def: so.Cycle, lastUse: so.Cycle}
					ranges[pd.Pred] = r
				} else if r.def < 0 || so.Cycle < r.def {
					r.def = so.Cycle
				}
			}
		}
	}

	// Consumer-slot fanout: one define reaches two slots.
	for p, slots := range consumerSlots {
		var list []int
		for s := range slots {
			list = append(list, s)
		}
		sort.Ints(list)
		res.SlotsOf[p] = list
		if len(list) > 2 {
			// Each additional pair of slots needs one replica define
			// per original define of p.
			res.ExtraDefines += ((len(list)+1)/2 - 1) * len(defCycles[p])
		}
	}

	// Standing-predicate timeline per slot: consecutive guarded uses of
	// different predicates require the later predicate's define to fall
	// between them; otherwise a replica define must be inserted.
	for _, uses := range slotUses {
		sort.Slice(uses, func(i, j int) bool { return uses[i].Cycle < uses[j].Cycle })
		for i := 1; i < len(uses); i++ {
			p, q := uses[i-1].Op.Guard, uses[i].Op.Guard
			if p == q {
				continue
			}
			ok := false
			for _, dc := range defCycles[q] {
				if dc > uses[i-1].Cycle && dc < uses[i].Cycle {
					ok = true
				}
			}
			if !ok {
				res.ExtraDefines++
			}
		}
	}

	// Maximum simultaneously-live predicates.
	type event struct{ cycle, delta int }
	var events []event
	for _, r := range ranges {
		start := r.def
		if start < 0 {
			start = 0
		}
		events = append(events, event{start, +1}, event{r.lastUse + 1, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].cycle != events[j].cycle {
			return events[i].cycle < events[j].cycle
		}
		return events[i].delta < events[j].delta
	})
	cur := 0
	for _, e := range events {
		cur += e.delta
		if cur > res.MaxLive {
			res.MaxLive = cur
		}
	}
	if res.MaxLive > numSlots {
		res.OK = false
		res.Reason = fmt.Sprintf("%d simultaneously live predicates exceed %d slots",
			res.MaxLive, numSlots)
	}
	return res
}

// ConsumersPerDefine computes, for every predicate define in block b,
// how many operations consume the values it defines before they are
// redefined (the Figure 3a metric). Returns one count per define op.
func ConsumersPerDefine(b *ir.Block) []int {
	// activeDef[p] indexes the counts slice for p's most recent define.
	activeDef := map[ir.PredReg]int{}
	var counts []int
	for _, op := range b.Ops {
		if op.Guard != 0 {
			if idx, ok := activeDef[op.Guard]; ok {
				counts[idx]++
			}
		}
		for _, pd := range op.PredDefines() {
			switch pd.Type {
			case ir.PTUT, ir.PTUF, ir.PTCT, ir.PTCF:
				// Replacing define: start a fresh count.
				activeDef[pd.Pred] = len(counts)
			case ir.PTOT, ir.PTOF, ir.PTAT, ir.PTAF:
				// Contributing define: attribute consumers to the
				// initializing define if one exists, else start one.
				if _, ok := activeDef[pd.Pred]; !ok {
					activeDef[pd.Pred] = len(counts)
				} else {
					continue
				}
			default:
				continue
			}
			counts = append(counts, 0)
		}
	}
	return counts
}
