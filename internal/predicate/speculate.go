package predicate

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/opt"
)

// SpeculateLoads marks loads for control speculation ("general control
// speculation is supported by providing all potentially excepting
// instructions except for stores with a speculative form", Section 7).
// An unguarded load positioned after a guarded side-exit jump in a
// hyperblock may issue before the exit resolves — its faulting form is
// squashed — provided its destination is dead on every exit path.
// Marking it speculative releases the scheduler's control-dependence
// edge on the preceding branch. Returns the number of loads marked.
func SpeculateLoads(f *ir.Func) int {
	marked := 0
	lv := opt.Liveness(f)
	for _, b := range f.Blocks {
		// Only blocks with guarded side exits benefit.
		firstExit := -1
		for i, op := range b.Ops {
			if op.Opcode == ir.OpJump && op.Guard != 0 {
				firstExit = i
				break
			}
		}
		if firstExit < 0 {
			continue
		}
		// Union of live-ins at non-self successors (the exit targets and
		// the fallthrough).
		liveExit := opt.NewRegSet(f.NumRegs())
		for _, s := range b.Succs() {
			if s != b.ID {
				liveExit.Union(lv.In[s])
			}
		}
		for i := firstExit + 1; i < len(b.Ops); i++ {
			op := b.Ops[i]
			if !op.IsLoad() || op.Guard != 0 || op.Speculative {
				continue
			}
			if liveExit.Has(op.Dest[0]) {
				continue
			}
			op.Speculative = true
			marked++
		}
	}
	return marked
}
