// Package profile holds execution profiles gathered by the IR
// interpreter and consumed by the profile-guided compiler passes
// (inlining, hyperblock selection, loop transformation, buffer
// assignment).
package profile

import "lpbuf/internal/ir"

// Edge is a directed CFG edge.
type Edge struct {
	From, To ir.BlockID
}

// FuncProfile records execution counts for one function.
type FuncProfile struct {
	// Block counts how many times each block was entered.
	Block map[ir.BlockID]int64
	// Edge counts traversals of each CFG edge.
	Edge map[Edge]int64
	// BranchExec / BranchTaken count, per branch op ID, how many times
	// the branch executed (guard true) and how many times it was taken.
	BranchExec  map[int]int64
	BranchTaken map[int]int64
	// Calls counts invocations of the function.
	Calls int64
	// CallSite counts executions of each call op (by op ID).
	CallSite map[int]int64
	// Ops counts dynamic (non-nullified) operations executed in the
	// function, including nullified guarded ops as fetched-but-squashed
	// is tracked separately by the cycle simulator.
	Ops int64
}

// NewFuncProfile returns an empty per-function profile.
func NewFuncProfile() *FuncProfile {
	return &FuncProfile{
		Block:       map[ir.BlockID]int64{},
		Edge:        map[Edge]int64{},
		BranchExec:  map[int]int64{},
		BranchTaken: map[int]int64{},
		CallSite:    map[int]int64{},
	}
}

// TakenRatio returns the fraction of executions in which branch op id
// was taken, and whether the branch was ever executed.
func (fp *FuncProfile) TakenRatio(id int) (float64, bool) {
	e := fp.BranchExec[id]
	if e == 0 {
		return 0, false
	}
	return float64(fp.BranchTaken[id]) / float64(e), true
}

// Profile is a whole-program profile.
type Profile struct {
	Funcs map[string]*FuncProfile
	// TotalOps is the dynamic operation count over the whole run.
	TotalOps int64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{Funcs: map[string]*FuncProfile{}}
}

// ForFunc returns (creating if needed) the profile of a function.
func (p *Profile) ForFunc(name string) *FuncProfile {
	fp, ok := p.Funcs[name]
	if !ok {
		fp = NewFuncProfile()
		p.Funcs[name] = fp
	}
	return fp
}

// ApplyWeights copies block counts into the Weight fields of the
// program's blocks so later passes can read them directly.
func (p *Profile) ApplyWeights(prog *ir.Program) {
	for name, f := range prog.Funcs {
		fp := p.Funcs[name]
		if fp == nil {
			continue
		}
		for _, b := range f.Blocks {
			b.Weight = float64(fp.Block[b.ID])
		}
	}
}
