package profile

import (
	"testing"

	"lpbuf/internal/ir"
)

func TestTakenRatio(t *testing.T) {
	fp := NewFuncProfile()
	fp.BranchExec[7] = 10
	fp.BranchTaken[7] = 3
	r, ok := fp.TakenRatio(7)
	if !ok || r != 0.3 {
		t.Fatalf("ratio = %v,%v", r, ok)
	}
	if _, ok := fp.TakenRatio(99); ok {
		t.Fatal("unknown branch should report !ok")
	}
}

func TestForFuncCreates(t *testing.T) {
	p := New()
	fp := p.ForFunc("x")
	if fp == nil || p.ForFunc("x") != fp {
		t.Fatal("ForFunc must create once and return the same profile")
	}
}

func TestApplyWeights(t *testing.T) {
	prog := ir.NewProgram(1 << 14)
	f := ir.NewFunc("main")
	b := f.NewBlock()
	f.Entry = b.ID
	b.Ops = append(b.Ops, &ir.Op{ID: f.NewOpID(), Opcode: ir.OpRet})
	prog.AddFunc(f)
	prog.Entry = "main"
	p := New()
	p.ForFunc("main").Block[b.ID] = 42
	p.ApplyWeights(prog)
	if b.Weight != 42 {
		t.Fatalf("weight = %v", b.Weight)
	}
}
