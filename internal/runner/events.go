package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType discriminates runner events.
type EventType string

// The event stream's entry types.
const (
	EventStart EventType = "start"
	EventDone  EventType = "done"
	EventRetry EventType = "retry"
	EventFail  EventType = "fail"
)

// Event is one entry of the runner's structured event stream.
type Event struct {
	Time     time.Time
	Type     EventType
	Key      string
	Kind     Kind
	Attempt  int           // retry attempt number (EventRetry)
	Elapsed  time.Duration // job wall time (EventDone, EventFail)
	InFlight int           // jobs in flight including this one (EventStart)
	Err      string
}

// LogObserver returns an observer that writes one human-readable
// progress line per event, serialized across worker goroutines.
func LogObserver(w io.Writer) func(Event) {
	var mu sync.Mutex
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Type {
		case EventStart:
			fmt.Fprintf(w, "[runner] start %-8s %-36s (in flight %d)\n", e.Kind, e.Key, e.InFlight)
		case EventDone:
			fmt.Fprintf(w, "[runner] done  %-8s %-36s %s\n", e.Kind, e.Key, e.Elapsed.Round(time.Millisecond))
		case EventRetry:
			fmt.Fprintf(w, "[runner] retry %-8s %-36s attempt %d: %s\n", e.Kind, e.Key, e.Attempt, e.Err)
		case EventFail:
			fmt.Fprintf(w, "[runner] FAIL  %-8s %-36s %s: %s\n", e.Kind, e.Key, e.Elapsed.Round(time.Millisecond), e.Err)
		}
	}
}
