package runner

import "sync"

// Flight is a singleflight group: concurrent Do calls with the same
// key share one execution of fn. Unlike a cache it holds no results —
// once the in-flight call finishes, the key is forgotten — so callers
// layer it over their own memoization (check cache, then Do a fn that
// re-checks and fills the cache).
//
// The zero value is ready to use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	wg  sync.WaitGroup
	v   any
	err error
}

// Do runs fn for key, or waits for an identical in-flight call and
// shares its result. shared reports whether this caller piggybacked on
// another call's execution.
func (f *Flight) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = map[string]*call{}
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		c.wg.Wait()
		return c.v, true, c.err
	}
	c := &call{}
	c.wg.Add(1)
	f.calls[key] = c
	f.mu.Unlock()

	c.v, c.err = fn()
	c.wg.Done()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	return c.v, false, c.err
}
