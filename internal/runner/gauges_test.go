package runner

import (
	"context"
	"errors"
	"testing"

	"lpbuf/internal/obs"
)

// TestQueueAndInFlightGauges tracks the runner.queue_depth and
// runner.jobs_in_flight gauges through a graph execution: jobs admitted
// to the graph count as queued, move to in-flight as a worker picks
// them up, and both gauges settle to zero when the graph completes.
func TestQueueAndInFlightGauges(t *testing.T) {
	m := NewMetrics()
	r := New(WithWorkers(1), WithMetrics(m))

	gate := make(chan struct{})
	seen := make(chan struct{})
	g := NewGraph()
	g.MustAdd(Spec{Key: "slow", Kind: KindCompile,
		Run: func(context.Context, map[string]any) (any, error) {
			close(seen)
			<-gate
			return 1, nil
		}})
	g.MustAdd(Spec{Key: "after", Kind: KindSimulate, Needs: []string{"slow"},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["slow"].(int) + 1, nil
		}})

	done := make(chan error, 1)
	go func() {
		_, err := r.Execute(context.Background(), g)
		done <- err
	}()
	<-seen
	// One job is executing, the dependent one is admitted but unstarted.
	if got := m.InFlight(); got != 1 {
		t.Errorf("InFlight = %d mid-run, want 1", got)
	}
	if got := m.QueueDepth(); got != 1 {
		t.Errorf("QueueDepth = %d mid-run, want 1", got)
	}
	snap := m.Snapshot()
	if snap.InFlight != 1 || snap.QueueDepth != 1 {
		t.Errorf("Snapshot in_flight=%d queue_depth=%d mid-run, want 1/1",
			snap.InFlight, snap.QueueDepth)
	}
	reg := m.Registry().Snapshot()
	if got := reg.Gauges["runner.jobs_in_flight"]; got != 1 {
		t.Errorf("runner.jobs_in_flight gauge = %v, want 1", got)
	}
	if got := reg.Gauges["runner.queue_depth"]; got != 1 {
		t.Errorf("runner.queue_depth gauge = %v, want 1", got)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.InFlight() != 0 || m.QueueDepth() != 0 {
		t.Fatalf("gauges did not settle: in_flight=%d queue_depth=%d",
			m.InFlight(), m.QueueDepth())
	}
	reg = m.Registry().Snapshot()
	if reg.Gauges["runner.jobs_in_flight"] != 0 || reg.Gauges["runner.queue_depth"] != 0 {
		t.Fatalf("registry gauges did not settle: %v", reg.Gauges)
	}
}

// TestQueueGaugeDrainsOnFailure proves never-started jobs are unqueued
// when a graph aborts, so admission layers don't see phantom depth.
func TestQueueGaugeDrainsOnFailure(t *testing.T) {
	m := NewMetrics()
	r := New(WithWorkers(1), WithMetrics(m))
	g := NewGraph()
	g.MustAdd(Spec{Key: "boom", Kind: KindCompile,
		Run: func(context.Context, map[string]any) (any, error) {
			return nil, errors.New("kaboom")
		}})
	g.MustAdd(Spec{Key: "never", Kind: KindSimulate, Needs: []string{"boom"},
		Run: func(context.Context, map[string]any) (any, error) {
			return 1, nil
		}})
	if _, err := r.Execute(context.Background(), g); err == nil {
		t.Fatal("failing graph succeeded")
	}
	if got := m.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth = %d after failed graph, want 0", got)
	}
	if got := m.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after failed graph, want 0", got)
	}
}

// TestGaugeAdd exercises the obs.Gauge delta path multiple runner
// Metrics instances rely on when they share one registry.
func TestGaugeAdd(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewMetricsIn(reg)
	b := NewMetricsIn(reg)
	a.enqueue(3)
	b.enqueue(2)
	if got := reg.Snapshot().Gauges["runner.queue_depth"]; got != 5 {
		t.Fatalf("shared queue_depth gauge = %v, want 5", got)
	}
	a.unqueue(3)
	b.unqueue(2)
	if got := reg.Snapshot().Gauges["runner.queue_depth"]; got != 0 {
		t.Fatalf("shared queue_depth gauge = %v after unqueue, want 0", got)
	}
}
