package runner

import (
	"context"
	"fmt"
)

// Kind classifies a job for the compile/simulate wall-time split in
// the metrics and the progress log.
type Kind string

// The experiment job kinds.
const (
	KindCompile  Kind = "compile"
	KindSimulate Kind = "simulate"
	KindAnalyze  Kind = "analyze"
	KindReduce   Kind = "reduce"
)

// Spec declares one job of a graph before scheduling.
type Spec struct {
	// Key uniquely identifies the job within its graph and keys its
	// result in Execute's return map.
	Key string
	// Kind buckets the job in the metrics.
	Kind Kind
	// Needs lists keys of jobs that must complete first; their results
	// are passed to Run in the deps map.
	Needs []string
	// Retries is how many times a Transient error is retried.
	Retries int
	// Run does the work. It must respect ctx cancellation for long
	// operations and return the job's result value.
	Run func(ctx context.Context, deps map[string]any) (any, error)
}

// Graph is an ordered set of job specs forming a DAG.
type Graph struct {
	order []string
	specs map[string]*Spec
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{specs: map[string]*Spec{}}
}

// Add inserts a job. Keys must be unique.
func (g *Graph) Add(s Spec) error {
	if s.Key == "" {
		return fmt.Errorf("runner: job with empty key")
	}
	if s.Run == nil {
		return fmt.Errorf("runner: job %q has no Run function", s.Key)
	}
	if _, dup := g.specs[s.Key]; dup {
		return fmt.Errorf("runner: duplicate job key %q", s.Key)
	}
	g.specs[s.Key] = &s
	g.order = append(g.order, s.Key)
	return nil
}

// MustAdd is Add for statically-shaped graphs, where a failure is a
// programming error.
func (g *Graph) MustAdd(s Spec) {
	if err := g.Add(s); err != nil {
		panic(err)
	}
}

// Len reports the number of jobs.
func (g *Graph) Len() int { return len(g.order) }

// validate checks that every dependency exists and that the graph is
// acyclic.
func (g *Graph) validate() error {
	for _, key := range g.order {
		for _, d := range g.specs[key].Needs {
			if _, ok := g.specs[d]; !ok {
				return fmt.Errorf("runner: job %q needs unknown job %q", key, d)
			}
		}
	}
	const (
		white = iota // unvisited
		gray         // on the current DFS path
		black        // fully explored
	)
	color := make(map[string]int, len(g.order))
	var visit func(k string) error
	visit = func(k string) error {
		switch color[k] {
		case gray:
			return fmt.Errorf("runner: dependency cycle through %q", k)
		case black:
			return nil
		}
		color[k] = gray
		for _, d := range g.specs[k].Needs {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[k] = black
		return nil
	}
	for _, k := range g.order {
		if err := visit(k); err != nil {
			return err
		}
	}
	return nil
}
