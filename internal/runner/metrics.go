package runner

import (
	"sort"
	"sync"
	"time"

	"lpbuf/internal/obs"
)

// Metrics aggregates the runner's structured event stream: jobs
// run/failed/retried, wall time split by job kind, compile- and
// run-cache hit/miss counts, peak in-flight jobs, and a per-job timing
// record for the JSON artifact. The scalar counters live in an
// obs.Registry (under "runner.*" names), so they appear in metrics
// snapshots alongside the simulator's and can be scraped via expvar;
// Snapshot reads them back through the registry's atomic instruments.
// All methods are safe for concurrent use.
type Metrics struct {
	reg *obs.Registry

	jobsRun     *obs.Counter
	jobsFailed  *obs.Counter
	retries     *obs.Counter
	cacheHits   *obs.Counter // compile cache
	cacheMisses *obs.Counter // actual compiles
	runHits     *obs.Counter // simulation-result cache
	runMisses   *obs.Counter // actual simulations
	peak        *obs.Gauge
	inFlightG   *obs.Gauge     // current jobs executing (runner.jobs_in_flight)
	queueG      *obs.Gauge     // admitted-but-unstarted jobs (runner.queue_depth)
	wall        *obs.Histogram // per-job wall time, ms

	mu       sync.Mutex
	inFlight int
	queued   int
	kinds    map[Kind]*kindCounter
	jobs     []JobRecord
}

type kindCounter struct {
	jobs int64
	wall time.Duration
}

// NewMetrics creates a counter set backed by a private registry.
func NewMetrics() *Metrics { return NewMetricsIn(obs.NewRegistry()) }

// NewMetricsIn creates a counter set whose scalar counters live in the
// given registry, so runner metrics share a snapshot with everything
// else registered there.
func NewMetricsIn(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:         reg,
		jobsRun:     reg.Counter("runner.jobs_run"),
		jobsFailed:  reg.Counter("runner.jobs_failed"),
		retries:     reg.Counter("runner.retries"),
		cacheHits:   reg.Counter("runner.compile_cache_hits"),
		cacheMisses: reg.Counter("runner.compile_cache_misses"),
		runHits:     reg.Counter("runner.run_cache_hits"),
		runMisses:   reg.Counter("runner.run_cache_misses"),
		peak:        reg.Gauge("runner.peak_in_flight"),
		inFlightG:   reg.Gauge("runner.jobs_in_flight"),
		queueG:      reg.Gauge("runner.queue_depth"),
		wall:        reg.Histogram("runner.job_wall_ms"),
		kinds:       map[Kind]*kindCounter{},
	}
}

// Registry exposes the backing registry (for snapshots/expvar).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

func (m *Metrics) jobStart() int {
	m.mu.Lock()
	m.inFlight++
	n := m.inFlight
	dequeued := false
	if m.queued > 0 {
		m.queued--
		dequeued = true
	}
	m.mu.Unlock()
	m.peak.Max(float64(n))
	m.inFlightG.Add(1)
	if dequeued {
		m.queueG.Add(-1)
	}
	return n
}

// enqueue records n jobs admitted to a graph but not yet started.
// Execute calls it once per graph; jobStart moves a job from queued to
// in flight, and unqueue drops whatever a cancelled graph never ran.
func (m *Metrics) enqueue(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.queued += n
	m.mu.Unlock()
	m.queueG.Add(float64(n))
}

// unqueue removes n never-started jobs (graph cancelled or failed).
func (m *Metrics) unqueue(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	if n > m.queued {
		n = m.queued
	}
	m.queued -= n
	m.mu.Unlock()
	m.queueG.Add(float64(-n))
}

// InFlight reports the jobs currently executing. Admission-control
// layers poll it (alongside QueueDepth) to decide whether new work
// should be accepted.
func (m *Metrics) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inFlight
}

// QueueDepth reports jobs admitted to an executing graph that have not
// started yet.
func (m *Metrics) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued
}

func (m *Metrics) retry() { m.retries.Inc() }

func (m *Metrics) jobDone(s *Spec, elapsed time.Duration, err error) {
	m.jobsRun.Inc()
	if err != nil {
		m.jobsFailed.Inc()
	}
	m.wall.Observe(elapsed.Milliseconds())
	m.reg.Counter("runner.kind." + string(s.Kind) + ".jobs").Inc()
	m.inFlightG.Add(-1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	kc := m.kinds[s.Kind]
	if kc == nil {
		kc = &kindCounter{}
		m.kinds[s.Kind] = kc
	}
	kc.jobs++
	kc.wall += elapsed
	m.jobs = append(m.jobs, JobRecord{
		Key:    s.Key,
		Kind:   string(s.Kind),
		WallMS: float64(elapsed) / float64(time.Millisecond),
		OK:     err == nil,
	})
}

// CacheHit counts a compile served from cache (or shared in flight).
func (m *Metrics) CacheHit() { m.cacheHits.Inc() }

// CacheMiss counts an actual compile execution.
func (m *Metrics) CacheMiss() { m.cacheMisses.Inc() }

// RunHit counts a simulation result served from cache.
func (m *Metrics) RunHit() { m.runHits.Inc() }

// RunMiss counts an actual simulation execution.
func (m *Metrics) RunMiss() { m.runMisses.Inc() }

// CacheMisses reports how many compiles actually executed.
func (m *Metrics) CacheMisses() int64 { return m.cacheMisses.Value() }

// JobRecord is the per-job timing entry of the JSON artifact.
type JobRecord struct {
	Key    string  `json:"key"`
	Kind   string  `json:"kind"`
	WallMS float64 `json:"wall_ms"`
	OK     bool    `json:"ok"`
}

// KindSnapshot aggregates one job kind.
type KindSnapshot struct {
	Jobs   int64   `json:"jobs"`
	WallMS float64 `json:"wall_ms"`
}

// Snapshot is the JSON-marshalable view of the counters.
type Snapshot struct {
	JobsRun      int64 `json:"jobs_run"`
	JobsFailed   int64 `json:"jobs_failed"`
	Retries      int64 `json:"retries"`
	CacheHits    int64 `json:"compile_cache_hits"`
	CacheMisses  int64 `json:"compile_cache_misses"`
	RunHits      int64 `json:"run_cache_hits"`
	RunMisses    int64 `json:"run_cache_misses"`
	PeakInFlight int   `json:"peak_in_flight"`
	// InFlight/QueueDepth are live-gauge reads, interesting only while
	// jobs are executing (admission control snapshots mid-run); both
	// settle to zero once every graph completes, so they are omitted
	// from at-rest artifacts and the golden schema is unchanged.
	InFlight   int                     `json:"in_flight,omitempty"`
	QueueDepth int                     `json:"queue_depth,omitempty"`
	Kinds      map[string]KindSnapshot `json:"kinds"`
	Jobs       []JobRecord             `json:"jobs,omitempty"`
}

// Snapshot copies the counters. Job records are sorted by key so the
// artifact diffs cleanly across runs regardless of completion order.
// Safe to call while jobs are running: the scalar counters are atomic
// registry reads and the job/kind tables are copied under the mutex.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		JobsRun:      m.jobsRun.Value(),
		JobsFailed:   m.jobsFailed.Value(),
		Retries:      m.retries.Value(),
		CacheHits:    m.cacheHits.Value(),
		CacheMisses:  m.cacheMisses.Value(),
		RunHits:      m.runHits.Value(),
		RunMisses:    m.runMisses.Value(),
		PeakInFlight: int(m.peak.Value()),
	}
	m.mu.Lock()
	s.InFlight = m.inFlight
	s.QueueDepth = m.queued
	s.Kinds = make(map[string]KindSnapshot, len(m.kinds))
	for k, kc := range m.kinds {
		s.Kinds[string(k)] = KindSnapshot{
			Jobs:   kc.jobs,
			WallMS: float64(kc.wall) / float64(time.Millisecond),
		}
	}
	s.Jobs = append([]JobRecord(nil), m.jobs...)
	m.mu.Unlock()
	sort.Slice(s.Jobs, func(i, j int) bool {
		if s.Jobs[i].Key != s.Jobs[j].Key {
			return s.Jobs[i].Key < s.Jobs[j].Key
		}
		return s.Jobs[i].Kind < s.Jobs[j].Kind
	})
	return s
}
