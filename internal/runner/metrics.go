package runner

import (
	"sort"
	"sync"
	"time"
)

// Metrics aggregates the runner's structured event stream into
// counters: jobs run/failed/retried, wall time split by job kind,
// compile- and run-cache hit/miss counts, peak in-flight jobs, and a
// per-job timing record for the JSON artifact. All methods are safe
// for concurrent use.
type Metrics struct {
	mu           sync.Mutex
	jobsRun      int64
	jobsFailed   int64
	retries      int64
	cacheHits    int64 // compile cache
	cacheMisses  int64 // actual compiles
	runHits      int64 // simulation-result cache
	runMisses    int64 // actual simulations
	inFlight     int
	peakInFlight int
	kinds        map[Kind]*kindCounter
	jobs         []JobRecord
}

type kindCounter struct {
	jobs int64
	wall time.Duration
}

// NewMetrics creates an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{kinds: map[Kind]*kindCounter{}}
}

func (m *Metrics) jobStart() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight++
	if m.inFlight > m.peakInFlight {
		m.peakInFlight = m.inFlight
	}
	return m.inFlight
}

func (m *Metrics) retry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

func (m *Metrics) jobDone(s *Spec, elapsed time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	m.jobsRun++
	if err != nil {
		m.jobsFailed++
	}
	kc := m.kinds[s.Kind]
	if kc == nil {
		kc = &kindCounter{}
		m.kinds[s.Kind] = kc
	}
	kc.jobs++
	kc.wall += elapsed
	m.jobs = append(m.jobs, JobRecord{
		Key:    s.Key,
		Kind:   string(s.Kind),
		WallMS: float64(elapsed) / float64(time.Millisecond),
		OK:     err == nil,
	})
}

// CacheHit counts a compile served from cache (or shared in flight).
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

// CacheMiss counts an actual compile execution.
func (m *Metrics) CacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// RunHit counts a simulation result served from cache.
func (m *Metrics) RunHit() {
	m.mu.Lock()
	m.runHits++
	m.mu.Unlock()
}

// RunMiss counts an actual simulation execution.
func (m *Metrics) RunMiss() {
	m.mu.Lock()
	m.runMisses++
	m.mu.Unlock()
}

// CacheMisses reports how many compiles actually executed.
func (m *Metrics) CacheMisses() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheMisses
}

// JobRecord is the per-job timing entry of the JSON artifact.
type JobRecord struct {
	Key    string  `json:"key"`
	Kind   string  `json:"kind"`
	WallMS float64 `json:"wall_ms"`
	OK     bool    `json:"ok"`
}

// KindSnapshot aggregates one job kind.
type KindSnapshot struct {
	Jobs   int64   `json:"jobs"`
	WallMS float64 `json:"wall_ms"`
}

// Snapshot is the JSON-marshalable view of the counters.
type Snapshot struct {
	JobsRun      int64                   `json:"jobs_run"`
	JobsFailed   int64                   `json:"jobs_failed"`
	Retries      int64                   `json:"retries"`
	CacheHits    int64                   `json:"compile_cache_hits"`
	CacheMisses  int64                   `json:"compile_cache_misses"`
	RunHits      int64                   `json:"run_cache_hits"`
	RunMisses    int64                   `json:"run_cache_misses"`
	PeakInFlight int                     `json:"peak_in_flight"`
	Kinds        map[string]KindSnapshot `json:"kinds"`
	Jobs         []JobRecord             `json:"jobs,omitempty"`
}

// Snapshot copies the counters. Job records are sorted by key so the
// artifact diffs cleanly across runs regardless of completion order.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		JobsRun:      m.jobsRun,
		JobsFailed:   m.jobsFailed,
		Retries:      m.retries,
		CacheHits:    m.cacheHits,
		CacheMisses:  m.cacheMisses,
		RunHits:      m.runHits,
		RunMisses:    m.runMisses,
		PeakInFlight: m.peakInFlight,
		Kinds:        make(map[string]KindSnapshot, len(m.kinds)),
		Jobs:         append([]JobRecord(nil), m.jobs...),
	}
	for k, kc := range m.kinds {
		s.Kinds[string(k)] = KindSnapshot{
			Jobs:   kc.jobs,
			WallMS: float64(kc.wall) / float64(time.Millisecond),
		}
	}
	sort.Slice(s.Jobs, func(i, j int) bool {
		if s.Jobs[i].Key != s.Jobs[j].Key {
			return s.Jobs[i].Key < s.Jobs[j].Key
		}
		return s.Jobs[i].Kind < s.Jobs[j].Kind
	})
	return s
}
