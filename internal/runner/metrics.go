package runner

import (
	"sort"
	"sync"
	"time"

	"lpbuf/internal/obs"
)

// Metrics aggregates the runner's structured event stream: jobs
// run/failed/retried, wall time split by job kind, compile- and
// run-cache hit/miss counts, peak in-flight jobs, and a per-job timing
// record for the JSON artifact. The scalar counters live in an
// obs.Registry (under "runner.*" names), so they appear in metrics
// snapshots alongside the simulator's and can be scraped via expvar;
// Snapshot reads them back through the registry's atomic instruments.
// All methods are safe for concurrent use.
type Metrics struct {
	reg *obs.Registry

	jobsRun     *obs.Counter
	jobsFailed  *obs.Counter
	retries     *obs.Counter
	cacheHits   *obs.Counter // compile cache
	cacheMisses *obs.Counter // actual compiles
	runHits     *obs.Counter // simulation-result cache
	runMisses   *obs.Counter // actual simulations
	peak        *obs.Gauge
	wall        *obs.Histogram // per-job wall time, ms

	mu       sync.Mutex
	inFlight int
	kinds    map[Kind]*kindCounter
	jobs     []JobRecord
}

type kindCounter struct {
	jobs int64
	wall time.Duration
}

// NewMetrics creates a counter set backed by a private registry.
func NewMetrics() *Metrics { return NewMetricsIn(obs.NewRegistry()) }

// NewMetricsIn creates a counter set whose scalar counters live in the
// given registry, so runner metrics share a snapshot with everything
// else registered there.
func NewMetricsIn(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:         reg,
		jobsRun:     reg.Counter("runner.jobs_run"),
		jobsFailed:  reg.Counter("runner.jobs_failed"),
		retries:     reg.Counter("runner.retries"),
		cacheHits:   reg.Counter("runner.compile_cache_hits"),
		cacheMisses: reg.Counter("runner.compile_cache_misses"),
		runHits:     reg.Counter("runner.run_cache_hits"),
		runMisses:   reg.Counter("runner.run_cache_misses"),
		peak:        reg.Gauge("runner.peak_in_flight"),
		wall:        reg.Histogram("runner.job_wall_ms"),
		kinds:       map[Kind]*kindCounter{},
	}
}

// Registry exposes the backing registry (for snapshots/expvar).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

func (m *Metrics) jobStart() int {
	m.mu.Lock()
	m.inFlight++
	n := m.inFlight
	m.mu.Unlock()
	m.peak.Max(float64(n))
	return n
}

func (m *Metrics) retry() { m.retries.Inc() }

func (m *Metrics) jobDone(s *Spec, elapsed time.Duration, err error) {
	m.jobsRun.Inc()
	if err != nil {
		m.jobsFailed.Inc()
	}
	m.wall.Observe(elapsed.Milliseconds())
	m.reg.Counter("runner.kind." + string(s.Kind) + ".jobs").Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	kc := m.kinds[s.Kind]
	if kc == nil {
		kc = &kindCounter{}
		m.kinds[s.Kind] = kc
	}
	kc.jobs++
	kc.wall += elapsed
	m.jobs = append(m.jobs, JobRecord{
		Key:    s.Key,
		Kind:   string(s.Kind),
		WallMS: float64(elapsed) / float64(time.Millisecond),
		OK:     err == nil,
	})
}

// CacheHit counts a compile served from cache (or shared in flight).
func (m *Metrics) CacheHit() { m.cacheHits.Inc() }

// CacheMiss counts an actual compile execution.
func (m *Metrics) CacheMiss() { m.cacheMisses.Inc() }

// RunHit counts a simulation result served from cache.
func (m *Metrics) RunHit() { m.runHits.Inc() }

// RunMiss counts an actual simulation execution.
func (m *Metrics) RunMiss() { m.runMisses.Inc() }

// CacheMisses reports how many compiles actually executed.
func (m *Metrics) CacheMisses() int64 { return m.cacheMisses.Value() }

// JobRecord is the per-job timing entry of the JSON artifact.
type JobRecord struct {
	Key    string  `json:"key"`
	Kind   string  `json:"kind"`
	WallMS float64 `json:"wall_ms"`
	OK     bool    `json:"ok"`
}

// KindSnapshot aggregates one job kind.
type KindSnapshot struct {
	Jobs   int64   `json:"jobs"`
	WallMS float64 `json:"wall_ms"`
}

// Snapshot is the JSON-marshalable view of the counters.
type Snapshot struct {
	JobsRun      int64                   `json:"jobs_run"`
	JobsFailed   int64                   `json:"jobs_failed"`
	Retries      int64                   `json:"retries"`
	CacheHits    int64                   `json:"compile_cache_hits"`
	CacheMisses  int64                   `json:"compile_cache_misses"`
	RunHits      int64                   `json:"run_cache_hits"`
	RunMisses    int64                   `json:"run_cache_misses"`
	PeakInFlight int                     `json:"peak_in_flight"`
	Kinds        map[string]KindSnapshot `json:"kinds"`
	Jobs         []JobRecord             `json:"jobs,omitempty"`
}

// Snapshot copies the counters. Job records are sorted by key so the
// artifact diffs cleanly across runs regardless of completion order.
// Safe to call while jobs are running: the scalar counters are atomic
// registry reads and the job/kind tables are copied under the mutex.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		JobsRun:      m.jobsRun.Value(),
		JobsFailed:   m.jobsFailed.Value(),
		Retries:      m.retries.Value(),
		CacheHits:    m.cacheHits.Value(),
		CacheMisses:  m.cacheMisses.Value(),
		RunHits:      m.runHits.Value(),
		RunMisses:    m.runMisses.Value(),
		PeakInFlight: int(m.peak.Value()),
	}
	m.mu.Lock()
	s.Kinds = make(map[string]KindSnapshot, len(m.kinds))
	for k, kc := range m.kinds {
		s.Kinds[string(k)] = KindSnapshot{
			Jobs:   kc.jobs,
			WallMS: float64(kc.wall) / float64(time.Millisecond),
		}
	}
	s.Jobs = append([]JobRecord(nil), m.jobs...)
	m.mu.Unlock()
	sort.Slice(s.Jobs, func(i, j int) bool {
		if s.Jobs[i].Key != s.Jobs[j].Key {
			return s.Jobs[i].Key < s.Jobs[j].Key
		}
		return s.Jobs[i].Kind < s.Jobs[j].Kind
	})
	return s
}
