package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lpbuf/internal/obs"
)

// TestSnapshotConcurrentWithJobs proves the registry-backed Metrics
// gives consistent reads while jobs are running: snapshots taken
// mid-execution (both runner.Snapshot and the raw registry snapshot)
// must be internally sane, and the final counts must be exact. Run
// with -race (CI does) to catch unsynchronized access.
func TestSnapshotConcurrentWithJobs(t *testing.T) {
	m := NewMetrics()
	tr := obs.NewTrace(0)
	r := New(WithWorkers(4), WithMetrics(m), WithTrace(tr))

	const jobs = 200
	g := NewGraph()
	var ran atomic.Int64
	for i := 0; i < jobs; i++ {
		g.MustAdd(Spec{
			Key:  fmt.Sprintf("job%03d", i),
			Kind: KindSimulate,
			Run: func(ctx context.Context, deps map[string]any) (any, error) {
				m.CacheHit()
				m.RunMiss()
				ran.Add(1)
				return nil, nil
			},
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.Snapshot()
				if snap.JobsFailed != 0 {
					t.Errorf("mid-run snapshot reports failures: %+v", snap)
					return
				}
				if int64(len(snap.Jobs)) > snap.JobsRun {
					t.Errorf("more job records (%d) than jobs run (%d)",
						len(snap.Jobs), snap.JobsRun)
					return
				}
				reg := m.Registry().Snapshot()
				if reg.Counters["runner.jobs_run"] < 0 {
					t.Error("negative counter")
					return
				}
				if _, err := json.Marshal(reg); err != nil {
					t.Errorf("registry snapshot not marshalable: %v", err)
					return
				}
			}
		}()
	}

	if _, err := r.Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	snap := m.Snapshot()
	if snap.JobsRun != jobs || ran.Load() != jobs {
		t.Fatalf("jobs run = %d (ran %d), want %d", snap.JobsRun, ran.Load(), jobs)
	}
	if len(snap.Jobs) != jobs {
		t.Fatalf("job records = %d, want %d", len(snap.Jobs), jobs)
	}
	reg := m.Registry().Snapshot()
	if reg.Counters["runner.jobs_run"] != jobs {
		t.Fatalf("registry jobs_run = %d, want %d", reg.Counters["runner.jobs_run"], jobs)
	}
	if reg.Counters["runner.compile_cache_hits"] != jobs ||
		reg.Counters["runner.run_cache_misses"] != jobs {
		t.Fatalf("cache counters wrong: %+v", reg.Counters)
	}
	if reg.Counters["runner.kind.simulate.jobs"] != jobs {
		t.Fatalf("kind counter = %d, want %d", reg.Counters["runner.kind.simulate.jobs"], jobs)
	}
	if got := reg.Gauges["runner.peak_in_flight"]; got < 1 || got > 4 {
		t.Fatalf("peak in flight = %v, want 1..4", got)
	}
	if reg.Histograms["runner.job_wall_ms"].Count != jobs {
		t.Fatalf("wall histogram count = %d, want %d",
			reg.Histograms["runner.job_wall_ms"].Count, jobs)
	}
	// One span per job was recorded.
	spans := 0
	var buf jsonCounter
	if err := obs.WriteChromeTrace(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.b, &file); err != nil {
		t.Fatal(err)
	}
	for _, ev := range file.TraceEvents {
		if ev.Name == "job.simulate" {
			spans++
		}
	}
	if spans != jobs {
		t.Fatalf("job spans = %d, want %d", spans, jobs)
	}
}

// jsonCounter is a minimal io.Writer accumulating bytes.
type jsonCounter struct{ b []byte }

func (j *jsonCounter) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}
