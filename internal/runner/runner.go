// Package runner is the experiment-execution subsystem: it turns
// figure/table regeneration into a scheduled, observable, cacheable
// job graph. Jobs are declared as Specs with explicit dependencies
// (compile → fan-out simulate → reduce), validated into a DAG, and
// executed by a bounded worker pool with per-job retry on transient
// errors and context cancellation on the first hard failure. A
// singleflight group (Flight) deduplicates concurrent identical work,
// and Metrics collects the structured event stream (job start/finish,
// wall time split by kind, cache hit/miss counters, peak in-flight)
// both for a human progress log and for the JSON artifact.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lpbuf/internal/obs"
)

// Runner executes job graphs on a bounded worker pool. The bound is
// global: concurrent Execute calls on the same Runner share one
// semaphore, so total in-flight jobs never exceed Workers().
//
// A job's Run function must not call Execute on the same Runner; jobs
// only ever wait on the scheduler, never on other jobs directly, which
// is what makes the semaphore deadlock-free.
type Runner struct {
	workers int
	sem     chan struct{}
	metrics *Metrics
	onEvent func(Event)
	trace   *obs.Trace
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers bounds in-flight jobs. Values below 1 keep the default
// (runtime.GOMAXPROCS(0)).
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithMetrics shares an external Metrics instance, so callers can fold
// their own cache counters into the same snapshot.
func WithMetrics(m *Metrics) Option {
	return func(r *Runner) {
		if m != nil {
			r.metrics = m
		}
	}
}

// WithObserver installs an event callback (see LogObserver). The
// callback may be invoked from multiple worker goroutines.
func WithObserver(fn func(Event)) Option {
	return func(r *Runner) { r.onEvent = fn }
}

// WithTrace records one span per job (kind, key, attempts, outcome)
// into the given trace. Nil disables job spans.
func WithTrace(t *obs.Trace) Option {
	return func(r *Runner) { r.trace = t }
}

// New creates a Runner. The default worker bound is GOMAXPROCS.
func New(opts ...Option) *Runner {
	r := &Runner{workers: runtime.GOMAXPROCS(0), metrics: NewMetrics()}
	for _, o := range opts {
		o(r)
	}
	r.sem = make(chan struct{}, r.workers)
	return r
}

// Workers reports the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Metrics returns the runner's counters.
func (r *Runner) Metrics() *Metrics { return r.metrics }

// Execute runs every job of the graph, honouring dependencies, and
// returns the job results keyed by Spec.Key. On the first hard (non,
// or no longer, transient) job failure the remaining jobs are
// cancelled and the failure is returned.
func (r *Runner) Execute(ctx context.Context, g *Graph) (map[string]any, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	total := len(g.order)
	if total == 0 {
		return map[string]any{}, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Every admitted job counts toward the queue-depth gauge until it
	// starts; whatever a cancelled or failed graph never starts is
	// dropped from the gauge on the way out.
	var started atomic.Int64
	r.metrics.enqueue(total)
	defer func() { r.metrics.unqueue(total - int(started.Load())) }()

	var (
		mu         sync.Mutex
		res        = make(map[string]any, total)
		pending    = make(map[string]int, total)
		dependents = make(map[string][]string, total)
		done       int
		errOnce    sync.Once
		execErr    error
	)
	// Buffered to the graph size so completions never block on it.
	ready := make(chan *Spec, total)
	for _, key := range g.order {
		s := g.specs[key]
		if len(s.Needs) == 0 {
			ready <- s
			continue
		}
		pending[key] = len(s.Needs)
		for _, d := range s.Needs {
			dependents[d] = append(dependents[d], key)
		}
	}
	fail := func(err error) {
		errOnce.Do(func() { execErr = err; cancel() })
	}
	complete := func(s *Spec, v any) {
		mu.Lock()
		defer mu.Unlock()
		res[s.Key] = v
		done++
		for _, dk := range dependents[s.Key] {
			pending[dk]--
			if pending[dk] == 0 {
				delete(pending, dk)
				ready <- g.specs[dk]
			}
		}
		if done == total {
			close(ready)
		}
	}
	depsOf := func(s *Spec) map[string]any {
		if len(s.Needs) == 0 {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		deps := make(map[string]any, len(s.Needs))
		for _, d := range s.Needs {
			deps[d] = res[d]
		}
		return deps
	}

	workers := r.workers
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case s, ok := <-ready:
					if !ok {
						return
					}
					select {
					case <-ctx.Done():
						return
					case r.sem <- struct{}{}:
					}
					if ctx.Err() != nil {
						<-r.sem
						return
					}
					started.Add(1)
					v, err := r.runJob(ctx, s, depsOf(s))
					<-r.sem
					if err != nil {
						fail(fmt.Errorf("%s %s: %w", s.Kind, s.Key, err))
						return
					}
					complete(s, v)
				}
			}
		}()
	}
	wg.Wait()
	if execErr != nil {
		return nil, execErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// runJob runs one job with retry-on-transient, recording metrics and
// emitting events.
func (r *Runner) runJob(ctx context.Context, s *Spec, deps map[string]any) (any, error) {
	inFlight := r.metrics.jobStart()
	r.emit(Event{Type: EventStart, Key: s.Key, Kind: s.Kind, InFlight: inFlight})
	span := r.trace.StartSpan("job." + string(s.Kind))
	span.SetAttr("key", s.Key)
	start := time.Now()
	var v any
	var err error
	attempts := 1
	for attempt := 0; ; attempt++ {
		v, err = s.Run(ctx, deps)
		if err == nil || ctx.Err() != nil || !IsTransient(err) || attempt >= s.Retries {
			attempts = attempt + 1
			break
		}
		r.metrics.retry()
		r.emit(Event{Type: EventRetry, Key: s.Key, Kind: s.Kind,
			Attempt: attempt + 1, Err: err.Error()})
	}
	elapsed := time.Since(start)
	r.metrics.jobDone(s, elapsed, err)
	span.SetInt("attempts", attempts)
	span.SetAttr("ok", err == nil)
	span.End()
	if err != nil {
		r.emit(Event{Type: EventFail, Key: s.Key, Kind: s.Kind, Elapsed: elapsed, Err: err.Error()})
		return nil, err
	}
	r.emit(Event{Type: EventDone, Key: s.Key, Kind: s.Kind, Elapsed: elapsed})
	return v, nil
}

func (r *Runner) emit(e Event) {
	if r.onEvent == nil {
		return
	}
	e.Time = time.Now()
	r.onEvent(e)
}

// transientError marks an error as safe to retry.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so the runner retries the job (up to
// Spec.Retries times). Deterministic failures — a miscompiled
// benchmark, a failed output check — must not be wrapped.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
