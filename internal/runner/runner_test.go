package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ok(v any) func(context.Context, map[string]any) (any, error) {
	return func(context.Context, map[string]any) (any, error) { return v, nil }
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Add(Spec{Key: "", Run: ok(1)}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := g.Add(Spec{Key: "a"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if err := g.Add(Spec{Key: "a", Run: ok(1)}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(Spec{Key: "a", Run: ok(2)}); err == nil {
		t.Fatal("duplicate key accepted")
	}

	r := New(WithWorkers(2))
	bad := NewGraph()
	bad.MustAdd(Spec{Key: "x", Needs: []string{"missing"}, Run: ok(1)})
	if _, err := r.Execute(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("unknown dep: %v", err)
	}

	cyc := NewGraph()
	cyc.MustAdd(Spec{Key: "a", Needs: []string{"b"}, Run: ok(1)})
	cyc.MustAdd(Spec{Key: "b", Needs: []string{"a"}, Run: ok(1)})
	if _, err := r.Execute(context.Background(), cyc); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle: %v", err)
	}
}

func TestExecuteEmptyGraph(t *testing.T) {
	res, err := New().Execute(context.Background(), NewGraph())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
}

// TestExecuteDiamond checks that results flow through a diamond DAG
// and that every job sees exactly its declared dependencies.
func TestExecuteDiamond(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Spec{Key: "top", Kind: KindCompile, Run: ok(10)})
	g.MustAdd(Spec{Key: "left", Kind: KindSimulate, Needs: []string{"top"},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["top"].(int) + 1, nil
		}})
	g.MustAdd(Spec{Key: "right", Kind: KindSimulate, Needs: []string{"top"},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["top"].(int) + 2, nil
		}})
	g.MustAdd(Spec{Key: "bottom", Kind: KindReduce, Needs: []string{"left", "right"},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			if len(deps) != 2 {
				return nil, fmt.Errorf("got %d deps", len(deps))
			}
			return deps["left"].(int) * deps["right"].(int), nil
		}})
	r := New(WithWorkers(4))
	res, err := r.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res["bottom"].(int) != 11*12 {
		t.Fatalf("bottom = %v", res["bottom"])
	}
	snap := r.Metrics().Snapshot()
	if snap.JobsRun != 4 || snap.JobsFailed != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.Kinds["simulate"].Jobs != 2 {
		t.Fatalf("simulate kind count: %+v", snap.Kinds)
	}
	if len(snap.Jobs) != 4 {
		t.Fatalf("job records: %+v", snap.Jobs)
	}
}

// TestConcurrencyBound checks the worker pool never exceeds its bound,
// including across concurrent Execute calls sharing one Runner.
func TestConcurrencyBound(t *testing.T) {
	const bound = 3
	r := New(WithWorkers(bound))
	var inFlight, peak atomic.Int64
	job := func(context.Context, map[string]any) (any, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return nil, nil
	}
	var wg sync.WaitGroup
	for e := 0; e < 3; e++ {
		g := NewGraph()
		for i := 0; i < 10; i++ {
			g.MustAdd(Spec{Key: fmt.Sprintf("j%d", i), Run: job})
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Execute(context.Background(), g); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Fatalf("peak in-flight %d exceeds bound %d", p, bound)
	}
	if snap := r.Metrics().Snapshot(); snap.PeakInFlight > bound || snap.JobsRun != 30 {
		t.Fatalf("metrics: %+v", snap)
	}
}

// TestFlightDedup checks that concurrent same-key calls share one
// execution and all observe its result.
func TestFlightDedup(t *testing.T) {
	var f Flight
	var execs atomic.Int64
	release := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := f.Do("key", func() (any, error) {
				execs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do: %v %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let the goroutines pile up on the key, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times", n)
	}
	if sharedCount.Load() != callers-1 {
		t.Fatalf("%d callers shared", sharedCount.Load())
	}
	// The key is forgotten afterwards: a fresh Do re-executes.
	if _, shared, _ := f.Do("key", func() (any, error) { execs.Add(1); return 0, nil }); shared {
		t.Fatal("fresh call reported shared")
	}
	if execs.Load() != 2 {
		t.Fatal("fresh call did not execute")
	}
}

func TestRetryTransient(t *testing.T) {
	r := New(WithWorkers(1))
	g := NewGraph()
	var attempts int
	g.MustAdd(Spec{Key: "flaky", Retries: 2,
		Run: func(context.Context, map[string]any) (any, error) {
			attempts++
			if attempts < 3 {
				return nil, Transient(fmt.Errorf("attempt %d", attempts))
			}
			return "done", nil
		}})
	res, err := r.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || res["flaky"] != "done" {
		t.Fatalf("attempts=%d res=%v", attempts, res)
	}
	if snap := r.Metrics().Snapshot(); snap.Retries != 2 {
		t.Fatalf("retries: %+v", snap)
	}

	// A hard error is never retried, even with a retry budget.
	g2 := NewGraph()
	hard := 0
	g2.MustAdd(Spec{Key: "hard", Retries: 5,
		Run: func(context.Context, map[string]any) (any, error) {
			hard++
			return nil, errors.New("deterministic failure")
		}})
	if _, err := r.Execute(context.Background(), g2); err == nil {
		t.Fatal("hard failure not reported")
	}
	if hard != 1 {
		t.Fatalf("hard job ran %d times", hard)
	}
}

func TestTransientMarker(t *testing.T) {
	base := errors.New("io hiccup")
	if !IsTransient(Transient(base)) {
		t.Fatal("Transient not detected")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(base))) {
		t.Fatal("wrapped Transient not detected")
	}
	if IsTransient(base) || IsTransient(nil) || Transient(nil) != nil {
		t.Fatal("false positives")
	}
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient hides the cause")
	}
}

// TestCancellationOnFailure checks that the first hard failure cancels
// the run: queued jobs never start and the failure is reported.
func TestCancellationOnFailure(t *testing.T) {
	r := New(WithWorkers(1))
	g := NewGraph()
	var started atomic.Int64
	g.MustAdd(Spec{Key: "boom", Kind: KindCompile,
		Run: func(context.Context, map[string]any) (any, error) {
			return nil, errors.New("bad compile")
		}})
	for i := 0; i < 5; i++ {
		g.MustAdd(Spec{Key: fmt.Sprintf("later%d", i),
			Run: func(context.Context, map[string]any) (any, error) {
				started.Add(1)
				return nil, nil
			}})
	}
	_, err := r.Execute(context.Background(), g)
	if err == nil || !strings.Contains(err.Error(), "compile boom: bad compile") {
		t.Fatalf("error: %v", err)
	}
	if n := started.Load(); n != 0 {
		t.Fatalf("%d queued jobs ran after the failure", n)
	}
}

// TestCancellationReachesRunningJobs checks that an in-flight job
// observes ctx cancellation when a sibling fails.
func TestCancellationReachesRunningJobs(t *testing.T) {
	r := New(WithWorkers(2))
	g := NewGraph()
	observed := make(chan struct{})
	g.MustAdd(Spec{Key: "slow",
		Run: func(ctx context.Context, _ map[string]any) (any, error) {
			select {
			case <-ctx.Done():
				close(observed)
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return nil, errors.New("never cancelled")
			}
		}})
	g.MustAdd(Spec{Key: "boom",
		Run: func(context.Context, map[string]any) (any, error) {
			time.Sleep(5 * time.Millisecond) // let "slow" start first
			return nil, errors.New("hard failure")
		}})
	if _, err := r.Execute(context.Background(), g); err == nil {
		t.Fatal("no error")
	}
	select {
	case <-observed:
	default:
		t.Fatal("running job did not observe cancellation")
	}
}

func TestParentContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := New(WithWorkers(1))
	g := NewGraph()
	g.MustAdd(Spec{Key: "waits",
		Run: func(ctx context.Context, _ map[string]any) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := r.Execute(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("error: %v", err)
	}
}

func TestLogObserver(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	obs := LogObserver(&syncWriter{w: &sb, mu: &mu})
	r := New(WithWorkers(2), WithObserver(obs))
	g := NewGraph()
	g.MustAdd(Spec{Key: "c", Kind: KindCompile, Run: ok(1)})
	g.MustAdd(Spec{Key: "s", Kind: KindSimulate, Needs: []string{"c"}, Run: ok(2)})
	if _, err := r.Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"start", "done", "compile", "simulate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log lacks %q:\n%s", want, out)
		}
	}
}

type syncWriter struct {
	w  *strings.Builder
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestStressManyGraphs hammers one Runner with many concurrent graphs
// sharing a Flight-backed memo, asserting exactly one execution per
// distinct key (run under -race in CI).
func TestStressManyGraphs(t *testing.T) {
	r := New(WithWorkers(4))
	var flight Flight
	var mu sync.Mutex
	memo := map[string]int{}
	var execs atomic.Int64
	get := func(key string) (int, error) {
		mu.Lock()
		v, okc := memo[key]
		mu.Unlock()
		if okc {
			return v, nil
		}
		res, _, err := flight.Do(key, func() (any, error) {
			mu.Lock()
			v, okc := memo[key]
			mu.Unlock()
			if okc {
				return v, nil
			}
			execs.Add(1)
			v = len(key)
			mu.Lock()
			memo[key] = v
			mu.Unlock()
			return v, nil
		})
		if err != nil {
			return 0, err
		}
		return res.(int), nil
	}
	const graphs, keys = 8, 5
	var wg sync.WaitGroup
	for gi := 0; gi < graphs; gi++ {
		g := NewGraph()
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("shared-%d", k)
			g.MustAdd(Spec{Key: fmt.Sprintf("job-%d", k), Kind: KindCompile,
				Run: func(context.Context, map[string]any) (any, error) {
					return get(key)
				}})
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Execute(context.Background(), g); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != keys {
		t.Fatalf("%d executions for %d distinct keys", n, keys)
	}
}
