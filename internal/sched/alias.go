// Package sched builds dependence graphs and schedules IR into VLIW
// bundles: acyclic list scheduling for general blocks and iterative
// modulo scheduling (Rau) for counted loop kernels, with
// prologue/kernel/epilogue generation.
package sched

import (
	"lpbuf/internal/ir"
)

// Region identifies the memory object a pointer register is derived
// from, for store/load disambiguation. RegionTop aliases everything;
// RegionNone means "not a pointer we have seen".
type Region int32

const (
	RegionNone Region = 0
	RegionTop  Region = -1
)

// AliasInfo holds per-register region facts for one function.
type AliasInfo struct {
	regions map[ir.Reg]Region
}

// AnalyzeAlias performs a simple flow-insensitive region analysis: a
// register materialized from a constant inside a global's extent is
// derived from that global; pointer arithmetic (add/sub with an integer
// term) preserves the region; merging two different regions, or any
// operation we cannot interpret, yields RegionTop. This stands in for
// the paper's pointer analysis ("important for disambiguating
// pointer-based loads and stores"); it relies on the C-like property
// that addresses are formed as pointer ± integer, never pointer +
// pointer.
func AnalyzeAlias(prog *ir.Program, f *ir.Func) *AliasInfo {
	ai := &AliasInfo{regions: map[ir.Reg]Region{}}

	regionOfConst := func(v int64) Region {
		for gi, g := range prog.Globals {
			if v >= g.Offset && v < g.Offset+g.Size {
				return Region(gi + 1)
			}
		}
		return RegionNone
	}
	merge := func(a, b Region) Region {
		switch {
		case a == RegionNone:
			return b
		case b == RegionNone:
			return a
		case a == b:
			return a
		default:
			return RegionTop
		}
	}

	// Parameters may point anywhere.
	for _, p := range f.Params {
		ai.regions[p] = RegionTop
	}

	// Iterate to a fixpoint over all ops (flow-insensitive join).
	for changed := true; changed; {
		changed = false
		update := func(r ir.Reg, nr Region) {
			old := ai.regions[r]
			m := merge(old, nr)
			if m != old {
				ai.regions[r] = m
				changed = true
			}
		}
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if len(op.Dest) == 0 {
					continue
				}
				d := op.Dest[0]
				switch op.Opcode {
				case ir.OpMov:
					if op.HasImm && len(op.Src) == 0 {
						update(d, regionOfConst(op.Imm))
					} else if len(op.Src) == 1 {
						update(d, ai.regions[op.Src[0]])
					}
				case ir.OpAdd, ir.OpSub:
					r0 := ai.regions[op.Src[0]]
					if op.HasImm && len(op.Src) == 1 {
						update(d, r0)
					} else if len(op.Src) == 2 {
						r1 := ai.regions[op.Src[1]]
						switch {
						case r0 == RegionNone:
							update(d, r1)
						case r1 == RegionNone:
							update(d, r0)
						default:
							// pointer+pointer should not occur; be safe.
							update(d, RegionTop)
						}
					}
				case ir.OpSel:
					update(d, merge(ai.regions[op.Src[1]], ai.regions[op.Src[2]]))
				case ir.OpMin, ir.OpMax:
					update(d, merge(ai.regions[op.Src[0]], regionOf2(ai, op)))
				case ir.OpCall:
					update(d, RegionTop)
				case ir.OpLdW, ir.OpLdH, ir.OpLdHU, ir.OpLdB, ir.OpLdBU:
					// A loaded value could be a stored pointer.
					update(d, RegionTop)
				default:
					// Arithmetic that mangles pointers (mul, shifts...):
					// result treated as a non-pointer integer unless an
					// operand had a region, in which case be safe.
					any := RegionNone
					for _, s := range op.Src {
						any = merge(any, ai.regions[s])
					}
					if any != RegionNone {
						update(d, RegionTop)
					}
				}
			}
		}
	}
	return ai
}

func regionOf2(ai *AliasInfo, op *ir.Op) Region {
	if len(op.Src) > 1 {
		return ai.regions[op.Src[1]]
	}
	return RegionNone
}

// RegionOf returns the region of a register.
func (ai *AliasInfo) RegionOf(r ir.Reg) Region { return ai.regions[r] }

// MayAlias reports whether two memory operations may touch the same
// location. Both must be loads/stores (address = Src[0] + Imm).
// sameBaseStable must be true only when both ops share a base register
// whose value cannot change between them (same iteration, no
// intervening redefinition); it enables offset-based disambiguation.
func (ai *AliasInfo) MayAlias(a, b *ir.Op, sameBaseStable bool) bool {
	ra, rb := ai.regions[a.Src[0]], ai.regions[b.Src[0]]
	if ra == RegionTop || rb == RegionTop {
		return true
	}
	if ra != rb {
		return false
	}
	if sameBaseStable && a.Src[0] == b.Src[0] {
		ax, bx := a.Imm, b.Imm
		if ax+memWidth(a) <= bx || bx+memWidth(b) <= ax {
			return false
		}
	}
	return true
}

func memWidth(op *ir.Op) int64 {
	switch op.Opcode {
	case ir.OpLdB, ir.OpLdBU, ir.OpStB:
		return 1
	case ir.OpLdH, ir.OpLdHU, ir.OpStH:
		return 2
	default:
		return 4
	}
}
