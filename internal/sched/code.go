package sched

import (
	"fmt"
	"sync/atomic"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
)

// SOp is one scheduled operation instance within a bundle.
type SOp struct {
	Op   *ir.Op
	Slot int
	// TargetBundle is the resolved bundle index for branch ops.
	TargetBundle int
	// resolved marks TargetBundle as final (set during emission for
	// kernel back edges and non-branches).
	resolved bool
}

// Bundle is the set of operations issued in one cycle.
type Bundle struct {
	Ops []*SOp
}

// OpCount returns non-nop ops in the bundle.
func (b *Bundle) OpCount() int { return len(b.Ops) }

// BlockCode is the schedule of one IR block (or one section of an
// expanded software-pipelined loop).
type BlockCode struct {
	Block ir.BlockID
	// Kind distinguishes straight blocks from pipelined sections.
	Kind BlockKind
	// Start is the global bundle index of the section's first bundle.
	Start int
	// Bundles in this section.
	Bundles []*Bundle
	// II and Stages are set for Kind == KindKernel.
	II, Stages int
	// Proven is set for Kind == KindKernel when an exact backend
	// proved the kernel's II minimal (see KernelSchedule.Proven).
	Proven bool
}

// BlockKind tags BlockCode sections.
type BlockKind uint8

const (
	KindStraight BlockKind = iota
	KindPrologue
	KindKernel
	KindEpilogue
)

// FuncCode is a fully scheduled function.
type FuncCode struct {
	F *ir.Func
	// Sections in layout order.
	Sections []*BlockCode
	// Bundles is the flattened schedule.
	Bundles []*Bundle
	// Start maps a block ID to its first bundle (for prologue-expanded
	// loops this is the prologue start; back edges are resolved to the
	// kernel internally).
	Start map[ir.BlockID]int
	// FallBundle maps the last bundle index of each section to the
	// bundle index control falls into (-1 = none, function end).
	fallTo map[int]int
	// fall is the per-bundle fallthrough table densified from fallTo
	// (built once after emission) so the simulator's fetch path indexes
	// a slice instead of probing a map every cycle.
	fall []int32
	// decoded is an opaque cache slot for execution engines: the
	// simulator stores its pre-decoded micro-op image of this function
	// here (see internal/vliw's decode layer). The slot holds an
	// immutable value built deterministically from the schedule, so
	// concurrent racing decoders may both build and either result wins.
	decoded atomic.Value
}

// DecodedImage returns the value cached by SetDecodedImage (nil before
// the first store). The schedule itself never interprets the value.
func (fc *FuncCode) DecodedImage() any { return fc.decoded.Load() }

// SetDecodedImage caches an execution engine's pre-decoded form of
// this function. The value must be immutable and derived only from the
// schedule, so that every racing store is interchangeable.
func (fc *FuncCode) SetDecodedImage(img any) { fc.decoded.Store(img) }

// OpCount returns total scheduled non-nop ops.
func (fc *FuncCode) OpCount() int {
	n := 0
	for _, b := range fc.Bundles {
		n += len(b.Ops)
	}
	return n
}

// FallTarget returns the bundle control reaches after falling out of
// bundle i (i.e., i+1 unless i ends a section with an explicit
// fallthrough elsewhere). Returns -1 at function end.
func (fc *FuncCode) FallTarget(i int) int {
	if fc.fall != nil {
		return int(fc.fall[i])
	}
	if t, ok := fc.fallTo[i]; ok {
		return t
	}
	if i+1 < len(fc.Bundles) {
		return i + 1
	}
	return -1
}

// finalizeFalls densifies fallTo into the per-bundle fall table. Called
// once after emission resolves every fallthrough.
func (fc *FuncCode) finalizeFalls() {
	fc.fall = make([]int32, len(fc.Bundles))
	for i := range fc.Bundles {
		t := i + 1
		if t >= len(fc.Bundles) {
			t = -1
		}
		if ft, ok := fc.fallTo[i]; ok {
			t = ft
		}
		fc.fall[i] = int32(t)
	}
}

// Code is a scheduled program.
type Code struct {
	Prog  *ir.Program
	Funcs map[string]*FuncCode
	Mach  *machine.Desc

	// hash caches ContentHash (see hash.go).
	hash atomic.Value
}

// Validate checks structural invariants of the schedule: slot classes
// match ops, no slot is double-booked, branch targets resolve.
func (c *Code) Validate() error {
	for name, fc := range c.Funcs {
		for bi, b := range fc.Bundles {
			seen := map[int]bool{}
			for _, so := range b.Ops {
				if so.Slot < 0 || so.Slot >= c.Mach.Width() {
					return fmt.Errorf("%s bundle %d: bad slot %d", name, bi, so.Slot)
				}
				if seen[so.Slot] {
					return fmt.Errorf("%s bundle %d: slot %d double-booked", name, bi, so.Slot)
				}
				seen[so.Slot] = true
				cls := ir.UnitFor(so.Op)
				if !c.Mach.Slots[so.Slot].Has(cls) {
					return fmt.Errorf("%s bundle %d: op %s needs %s, slot %d lacks it",
						name, bi, so.Op, cls, so.Slot)
				}
				if so.Op.IsBranch() || so.Op.Opcode == ir.OpExecCLoop || so.Op.Opcode == ir.OpExecWLoop {
					if so.TargetBundle < 0 || so.TargetBundle >= len(fc.Bundles) {
						return fmt.Errorf("%s bundle %d: unresolved branch target %d",
							name, bi, so.TargetBundle)
					}
				}
			}
		}
	}
	return nil
}
