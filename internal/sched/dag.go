package sched

import (
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
)

// Edge is a dependence: successor op index, minimum latency in cycles,
// and iteration distance (0 = same iteration, 1 = next iteration).
// The scheduling constraint is sigma(to) + II*dist >= sigma(from) + lat.
type Edge struct {
	To   int
	Lat  int
	Dist int
}

// DAG is the dependence graph over a block's ops (by index).
type DAG struct {
	Ops   []*ir.Op
	Succs [][]Edge
	Preds [][]Edge
	// Height is a scheduling priority: longest latency path over
	// same-iteration edges.
	Height []int
}

type dagBuilder struct {
	ops     []*ir.Op
	lat     machine.Latencies
	alias   *AliasInfo
	penalty int
	edges   map[[3]int]int // (from, to, dist) -> max lat
}

func (b *dagBuilder) add(from, to, lat, dist int) {
	if from == to && dist == 0 {
		return
	}
	key := [3]int{from, to, dist}
	if e, ok := b.edges[key]; !ok || lat > e {
		b.edges[key] = lat
	}
}

// latOf returns op result latency.
func (b *dagBuilder) latOf(op *ir.Op) int { return ir.LatencyOf(op, b.lat) }

// regAccess enumerates register reads/writes of an op.
func regReads(op *ir.Op) []ir.Reg { return op.Src }
func regWrites(op *ir.Op) []ir.Reg {
	return op.Dest
}

// predAccess: returns (reads, writes) of predicate registers. Or/and
// type defines are read-modify-write.
func predAccess(op *ir.Op) (reads, writes []ir.PredReg) {
	if op.Guard != 0 {
		reads = append(reads, op.Guard)
	}
	for _, pd := range op.PredDefines() {
		writes = append(writes, pd.Pred)
		switch pd.Type {
		case ir.PTOT, ir.PTOF, ir.PTAT, ir.PTAF:
			reads = append(reads, pd.Pred)
		}
	}
	return
}

// BuildDAG constructs the dependence graph for a block. When selfLoop
// is true, distance-1 edges for the block's self back edge are added.
func BuildDAG(ops []*ir.Op, m *machine.Desc, alias *AliasInfo, selfLoop bool) *DAG {
	b := &dagBuilder{ops: ops, lat: m.Latency, alias: alias,
		penalty: m.BranchPenalty, edges: map[[3]int]int{}}
	n := len(ops)

	// --- Same-iteration register and predicate dependences ---
	lastDef := map[ir.Reg]int{}
	lastReads := map[ir.Reg][]int{}
	lastPDef := map[ir.PredReg]int{}
	lastPReads := map[ir.PredReg][]int{}

	for j, op := range ops {
		for _, r := range regReads(op) {
			if r == 0 {
				continue
			}
			if d, ok := lastDef[r]; ok {
				b.add(d, j, b.latOf(ops[d]), 0) // true
			}
			lastReads[r] = append(lastReads[r], j)
		}
		pr, pw := predAccess(op)
		for _, p := range pr {
			if d, ok := lastPDef[p]; ok {
				b.add(d, j, b.lat.Pred, 0)
			}
			lastPReads[p] = append(lastPReads[p], j)
		}
		for _, r := range regWrites(op) {
			if r == 0 {
				continue
			}
			for _, u := range lastReads[r] {
				// Anti: the read (at issue) must precede the write's
				// landing: sigma(j) + Lj >= sigma(u) + 1.
				b.add(u, j, 1-b.latOf(op), 0)
			}
			if d, ok := lastDef[r]; ok {
				// Output: later write lands later.
				b.add(d, j, b.latOf(ops[d])-b.latOf(op)+1, 0)
			}
			lastDef[r] = j
			lastReads[r] = nil
		}
		for _, p := range pw {
			for _, u := range lastPReads[p] {
				b.add(u, j, 1-b.lat.Pred, 0)
			}
			if d, ok := lastPDef[p]; ok {
				b.add(d, j, 1, 0)
			}
			lastPDef[p] = j
			lastPReads[p] = nil
		}
	}

	// --- Memory dependences (same iteration) ---
	// Track definitions between ops to validate same-base offset
	// disambiguation.
	defPos := map[ir.Reg][]int{}
	for j, op := range ops {
		for _, r := range regWrites(op) {
			defPos[r] = append(defPos[r], j)
		}
	}
	baseStable := func(r ir.Reg, i, j int) bool {
		for _, p := range defPos[r] {
			if p > i && p <= j {
				return false
			}
		}
		return true
	}
	var mems []int
	for j, op := range ops {
		if !op.IsLoad() && !op.IsStore() {
			continue
		}
		for _, i := range mems {
			a := ops[i]
			if !a.IsStore() && !op.IsStore() {
				continue // load-load
			}
			stable := a.Src[0] == op.Src[0] && baseStable(a.Src[0], i, j)
			if !b.alias.MayAlias(a, op, stable) {
				continue
			}
			if a.IsStore() && op.IsStore() {
				b.add(i, j, 1, 0)
			} else if a.IsStore() { // store -> load
				b.add(i, j, 1, 0)
			} else { // load -> store: same-cycle OK (loads sample first)
				b.add(i, j, 0, 0)
			}
		}
		mems = append(mems, j)
	}

	// --- Control dependences ---
	for j, op := range ops {
		if !op.IsBranch() && op.Opcode != ir.OpCall && op.Opcode != ir.OpRet {
			continue
		}
		// All earlier ops must issue no later than the branch; in
		// addition, results must land before a taken branch's target
		// can read them ("branch shadow"). Redirect penalties are fetch
		// bubbles on the simulator's accounting clock, not the semantic
		// issue clock, so only the one fetch cycle hides latency.
		for i := 0; i < j; i++ {
			shadow := 0
			if len(ops[i].Dest) > 0 || ops[i].IsPredDefine() {
				shadow = b.latOf(ops[i]) - 1
				if shadow < 0 {
					shadow = 0
				}
			}
			b.add(i, j, shadow, 0)
		}
		// Later unguarded, non-speculative ops issue strictly after.
		// Calls are full barriers for memory operations regardless of
		// guards (the callee observes memory).
		for k := j + 1; k < n; k++ {
			if ops[k].Guard == 0 && !ops[k].Speculative {
				b.add(j, k, 1, 0)
			} else if ops[k].IsBranch() {
				b.add(j, k, 1, 0)
			} else if op.Opcode == ir.OpCall &&
				(ops[k].IsLoad() || ops[k].IsStore() || ops[k].Opcode == ir.OpCall) {
				b.add(j, k, 1, 0)
			}
		}
	}

	// --- Cross-iteration (distance 1) dependences for self loops ---
	if selfLoop {
		firstDef := map[ir.Reg]int{}
		for j := n - 1; j >= 0; j-- {
			for _, r := range regWrites(ops[j]) {
				firstDef[r] = j
			}
		}
		firstPDef := map[ir.PredReg]int{}
		for j := n - 1; j >= 0; j-- {
			_, pw := predAccess(ops[j])
			for _, p := range pw {
				firstPDef[p] = j
			}
		}
		// True deps across the back edge: a read with no earlier def in
		// the block consumes the previous iteration's last def.
		seenDef := map[ir.Reg]bool{}
		seenPDef := map[ir.PredReg]bool{}
		for j, op := range ops {
			for _, r := range regReads(op) {
				if r == 0 || seenDef[r] {
					continue
				}
				if d, ok := lastDef[r]; ok {
					b.add(d, j, b.latOf(ops[d]), 1)
				}
			}
			pr, pw := predAccess(op)
			for _, p := range pr {
				if seenPDef[p] {
					continue
				}
				if d, ok := lastPDef[p]; ok {
					b.add(d, j, b.lat.Pred, 1)
				}
			}
			for _, r := range regWrites(op) {
				seenDef[r] = true
			}
			for _, p := range pw {
				seenPDef[p] = true
			}
		}
		// Anti across the back edge: reads of the last live segment
		// must precede the next iteration's first def landing.
		lastSeen := map[ir.Reg]bool{}
		lastPSeen := map[ir.PredReg]bool{}
		for j := n - 1; j >= 0; j-- {
			op := ops[j]
			for _, r := range regReads(op) {
				if r == 0 || lastSeen[r] {
					continue
				}
				if d, ok := firstDef[r]; ok {
					b.add(j, d, 1-b.latOf(ops[d]), 1)
				}
			}
			pr, pw := predAccess(op)
			for _, p := range pr {
				if lastPSeen[p] {
					continue
				}
				if d, ok := firstPDef[p]; ok {
					b.add(j, d, 1-b.lat.Pred, 1)
				}
			}
			for _, r := range regWrites(op) {
				lastSeen[r] = true
			}
			for _, p := range pw {
				lastPSeen[p] = true
			}
		}
		// Output across the back edge.
		for r, last := range lastDef {
			if first, ok := firstDef[r]; ok {
				b.add(last, first, b.latOf(ops[last])-b.latOf(ops[first])+1, 1)
			}
		}
		for p, last := range lastPDef {
			if first, ok := firstPDef[p]; ok {
				b.add(last, first, 1, 1)
			}
			_ = p
		}
		// Memory across the back edge (region-level only: bases change
		// between iterations).
		for _, i := range mems {
			for _, j := range mems {
				a, c := ops[i], ops[j]
				if !a.IsStore() && !c.IsStore() {
					continue
				}
				if !b.alias.MayAlias(a, c, false) {
					continue
				}
				b.add(i, j, 1, 1)
			}
		}
	}

	// Materialize. The edge map iterates in random order, but schedule
	// results must be a pure function of the input program (the golden
	// disassembly tests and sim-stat baselines pin them exactly), so the
	// adjacency lists are sorted: every consumer that iterates them —
	// the IMS eviction cascade in particular — stays deterministic.
	d := &DAG{Ops: ops, Succs: make([][]Edge, n), Preds: make([][]Edge, n),
		Height: make([]int, n)}
	for key, lat := range b.edges {
		d.Succs[key[0]] = append(d.Succs[key[0]], Edge{To: key[1], Lat: lat, Dist: key[2]})
		d.Preds[key[1]] = append(d.Preds[key[1]], Edge{To: key[0], Lat: lat, Dist: key[2]})
	}
	for _, adj := range [2][][]Edge{d.Succs, d.Preds} {
		for _, es := range adj {
			sort.Slice(es, func(a, b int) bool {
				if es[a].To != es[b].To {
					return es[a].To < es[b].To
				}
				if es[a].Dist != es[b].Dist {
					return es[a].Dist < es[b].Dist
				}
				return es[a].Lat < es[b].Lat
			})
		}
	}
	// Heights over same-iteration edges (acyclic by program order).
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, e := range d.Succs[i] {
			if e.Dist != 0 {
				continue
			}
			if v := d.Height[e.To] + max(e.Lat, 0); v > h {
				h = v
			}
		}
		d.Height[i] = h
	}
	return d
}
