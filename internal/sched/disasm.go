package sched

import (
	"fmt"
	"strings"
)

// Disasm renders a scheduled function's bundles: one line per cycle,
// slots in order, with section markers (prologue / kernel II=n / ...).
func (fc *FuncCode) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s: %d bundles\n", fc.F.Name, len(fc.Bundles))
	secAt := map[int]*BlockCode{}
	for _, sec := range fc.Sections {
		secAt[sec.Start] = sec
	}
	for i, b := range fc.Bundles {
		if sec, ok := secAt[i]; ok {
			name := ""
			if blk := fc.F.Block(sec.Block); blk != nil && blk.Name != "" {
				name = " " + blk.Name
			}
			switch sec.Kind {
			case KindPrologue:
				fmt.Fprintf(&sb, "-- prologue%s --\n", name)
			case KindKernel:
				fmt.Fprintf(&sb, "-- kernel%s II=%d stages=%d --\n", name, sec.II, sec.Stages)
			case KindEpilogue:
				fmt.Fprintf(&sb, "-- epilogue%s --\n", name)
			default:
				fmt.Fprintf(&sb, "-- block%s (B%d) --\n", name, sec.Block)
			}
		}
		fmt.Fprintf(&sb, "%4d:", i)
		if len(b.Ops) == 0 {
			sb.WriteString("  (nop)")
		}
		for _, so := range b.Ops {
			fmt.Fprintf(&sb, "  [s%d] %s", so.Slot, so.Op)
			if so.Op.IsBranch() {
				fmt.Fprintf(&sb, " ->%d", so.TargetBundle)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
