package sched_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// disasmProgram builds a fixed program whose schedule exercises every
// disassembly shape: straight-line code, a modulo-scheduled kernel
// with prologue and epilogue, predicated ops, and a call.
func disasmProgram(t *testing.T) *ir.Program {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, 12)
	for i := range vals {
		vals[i] = int32(i*7 + 1)
	}
	inOff := pb.GlobalW("in", 12, vals)
	outOff := pb.GlobalW("out", 12, nil)

	h := pb.Func("scale", 1, true)
	h.Block("e")
	r := h.Reg()
	h.MulI(r, h.Param(0), 3)
	h.Ret(r)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt := f.Reg()
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	f.MovI(cnt, 12)
	// Load -> mul -> add -> store: a long dependence chain with only
	// the pointer increments loop-carried, so the kernel needs several
	// stages (prologue and epilogue sections in the disassembly).
	f.Block("loop")
	x := f.Reg()
	y := f.Reg()
	f.LdW(x, pin, 0)
	f.MulI(y, x, 5)
	f.AddI(y, y, 7)
	f.StW(pout, 0, y)
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.CLoop(cnt, "loop")
	f.Block("post")
	acc := f.Reg()
	f.LdW(acc, pout, -4)
	p := f.F.NewPred()
	f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpGT, acc, 100)
	f.SubI(acc, acc, 100).Guard = p
	d := f.Reg()
	f.Call(d, "scale", acc)
	f.Ret(d)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// TestDisasmGolden pins the disassembly format. Regenerate with:
//
//	go test ./internal/sched -run TestDisasmGolden -update
func TestDisasmGolden(t *testing.T) {
	code, err := sched.Schedule(disasmProgram(t), machine.Default(),
		sched.Options{EnableModulo: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, name := range []string{"main", "scale"} {
		sb.WriteString(code.Funcs[name].Disasm())
		sb.WriteString("\n")
	}
	got := sb.String()

	golden := filepath.Join("testdata", "disasm.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("disassembly drifted from %s (re-run with -update if intended)\n--- got ---\n%s",
			golden, got)
	}
	// The fixed program must actually exercise the section markers the
	// golden file is meant to pin.
	for _, marker := range []string{"prologue", "kernel", "epilogue"} {
		if !strings.Contains(got, marker) {
			t.Errorf("disassembly lacks a %s section; golden no longer covers modulo output", marker)
		}
	}
}
