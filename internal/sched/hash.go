package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"

	"lpbuf/internal/ir"
)

// ContentHash returns a stable hex digest of everything that determines
// the decoded execution image of this schedule: the machine description,
// the program's memory layout and entry point, and every scheduled
// operation (opcode, operands, guards, slots, branch targets, fall
// table). Two Codes with equal hashes decode to interchangeable micro-op
// images, which is what lets the simulator's decode cache share entries
// when the same benchmark recompiles under different Suite configs (the
// pipeline is deterministic, so identical inputs reproduce identical
// schedules in distinct allocations).
//
// Op identity (ir.Op.ID) is deliberately excluded: IDs are allocation
// order, not semantics. The digest is computed once and cached.
func (c *Code) ContentHash() string {
	if v := c.hash.Load(); v != nil {
		return v.(string)
	}
	h := hexDigest(c)
	c.hash.Store(h)
	return h
}

func hexDigest(c *Code) string {
	h := sha256.New()
	w := hashWriter{h: h}

	m := c.Mach
	w.str(m.Name)
	w.i64(int64(len(m.Slots)))
	for _, s := range m.Slots {
		w.i64(int64(s.Index))
		w.i64(int64(len(s.Classes)))
		for _, cl := range s.Classes {
			w.i64(int64(cl))
		}
	}
	lat := m.Latency
	w.i64(int64(lat.IALU))
	w.i64(int64(lat.IMul))
	w.i64(int64(lat.IDiv))
	w.i64(int64(lat.Load))
	w.i64(int64(lat.Store))
	w.i64(int64(lat.FP))
	w.i64(int64(lat.Branch))
	w.i64(int64(lat.Pred))
	w.i64(int64(m.BranchPenalty))
	w.i64(int64(m.OpBits))

	p := c.Prog
	w.str(p.Entry)
	w.i64(p.MemSize)
	w.i64(int64(len(p.Globals)))
	for _, g := range p.Globals {
		w.str(g.Name)
		w.i64(g.Offset)
		w.i64(g.Size)
		w.bytes(g.Init)
	}

	w.i64(int64(len(p.Order)))
	for _, name := range p.Order {
		fc := c.Funcs[name]
		if fc == nil {
			w.str(name)
			w.i64(-1)
			continue
		}
		hashFunc(&w, fc)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashFunc(w *hashWriter, fc *FuncCode) {
	f := fc.F
	w.str(f.Name)
	w.i64(int64(len(f.Params)))
	for _, p := range f.Params {
		w.i64(int64(p))
	}
	w.bool(f.HasRet)
	w.i64(int64(f.NumRegs()))
	w.i64(int64(f.NumPreds()))
	starts := make([]int, 0, len(fc.Start))
	for id := range fc.Start {
		starts = append(starts, int(id))
	}
	sort.Ints(starts)
	w.i64(int64(len(starts)))
	for _, id := range starts {
		w.i64(int64(id))
		w.i64(int64(fc.Start[ir.BlockID(id)]))
	}

	w.i64(int64(len(fc.Sections)))
	for _, sec := range fc.Sections {
		w.i64(int64(sec.Kind))
		w.i64(int64(sec.Start))
		w.i64(int64(len(sec.Bundles)))
		w.i64(int64(sec.II))
		w.i64(int64(sec.Stages))
		w.bool(sec.Proven)
	}

	w.i64(int64(len(fc.Bundles)))
	for i, b := range fc.Bundles {
		w.i64(int64(len(b.Ops)))
		for _, so := range b.Ops {
			w.i64(int64(so.Slot))
			w.i64(int64(so.TargetBundle))
			hashOp(w, so.Op)
		}
		w.i64(int64(fc.FallTarget(i)))
	}
}

func hashOp(w *hashWriter, o *ir.Op) {
	w.i64(int64(o.Opcode))
	w.i64(int64(len(o.Dest)))
	for _, d := range o.Dest {
		w.i64(int64(d))
	}
	w.i64(int64(len(o.Src)))
	for _, s := range o.Src {
		w.i64(int64(s))
	}
	w.i64(o.Imm)
	w.bool(o.HasImm)
	w.i64(int64(o.Cmp))
	for _, pd := range o.PDest {
		w.i64(int64(pd.Pred))
		w.i64(int64(pd.Type))
	}
	w.i64(int64(o.Guard))
	w.i64(int64(o.Target))
	w.bool(o.LoopBack)
	w.str(o.Callee)
	w.i64(int64(o.BufAddr))
	w.i64(int64(o.BufLen))
	w.bool(o.Speculative)
}

// hashWriter serializes primitives into a hash with length prefixes so
// adjacent variable-length fields cannot alias each other.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *hashWriter) i64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w *hashWriter) bool(v bool) {
	if v {
		w.i64(1)
	} else {
		w.i64(0)
	}
}

func (w *hashWriter) str(s string) {
	w.i64(int64(len(s)))
	w.h.Write([]byte(s))
}

func (w *hashWriter) bytes(b []byte) {
	w.i64(int64(len(b)))
	w.h.Write(b)
}
