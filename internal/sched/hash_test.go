package sched_test

import (
	"testing"

	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
)

func hashProgram(t *testing.T, trips int64, modulo bool) *sched.Code {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	off := pb.GlobalW("buf", 64, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	p := f.Const(off)
	cnt := f.Reg()
	acc := f.Reg()
	f.MovI(cnt, trips)
	f.MovI(acc, 0)
	f.Block("loop")
	v := f.Reg()
	f.LdW(v, p, 0)
	f.AddI(v, v, 7)
	f.Add(acc, acc, v)
	f.StW(p, 0, v)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	code, err := sched.Schedule(pb.MustBuild(), machine.Default(), sched.Options{EnableModulo: modulo})
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestContentHashStable pins that the hash is a pure function of the
// schedule's content: two independent compilations of the same program
// under the same machine hash identically (this is what lets the
// simulator share decoded images across Suite configs), while the
// value is cached per allocation.
func TestContentHashStable(t *testing.T) {
	a := hashProgram(t, 32, false)
	b := hashProgram(t, 32, false)
	if a == b {
		t.Fatal("expected distinct Code allocations")
	}
	ha, hb := a.ContentHash(), b.ContentHash()
	if ha == "" || ha != hb {
		t.Fatalf("identical schedules hash %q vs %q", ha, hb)
	}
	if again := a.ContentHash(); again != ha {
		t.Fatalf("cached hash changed: %q vs %q", again, ha)
	}
}

// TestContentHashDiscriminates pins that semantically different
// schedules do not collide: a changed immediate (loop trip count), a
// different scheduling mode, and a different machine each perturb the
// hash. Collisions here would silently cross-wire decoded images
// between unrelated programs.
func TestContentHashDiscriminates(t *testing.T) {
	base := hashProgram(t, 32, false).ContentHash()
	if h := hashProgram(t, 33, false).ContentHash(); h == base {
		t.Error("changed immediate did not change the hash")
	}
	if h := hashProgram(t, 32, true).ContentHash(); h == base {
		t.Error("modulo-scheduled variant did not change the hash")
	}

	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("b")
	r := f.Reg()
	f.MovI(r, 1)
	f.Ret(r)
	pb.SetEntry("main")
	prog := pb.MustBuild()
	m1 := machine.Default()
	m2 := machine.Default()
	m2.BranchPenalty = m1.BranchPenalty + 3
	c1, err := sched.Schedule(prog, m1, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sched.Schedule(prog, m2, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.ContentHash() == c2.ContentHash() {
		t.Error("changed machine did not change the hash")
	}
}
