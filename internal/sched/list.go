package sched

import (
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
)

// placement records where each op index landed.
type placement struct {
	cycle, slot int
}

// resTable tracks slot occupancy per cycle.
type resTable struct {
	m     *machine.Desc
	cells map[int][]int // cycle -> opIdx per slot (-1 free)
}

func newResTable(m *machine.Desc) *resTable {
	return &resTable{m: m, cells: map[int][]int{}}
}

func (rt *resTable) row(cycle int) []int {
	r, ok := rt.cells[cycle]
	if !ok {
		r = make([]int, rt.m.Width())
		for i := range r {
			r[i] = -1
		}
		rt.cells[cycle] = r
	}
	return r
}

// place finds a free slot with the required class at cycle, preferring
// the most constrained (fewest-classes) slots so flexible slots stay
// available. Returns the slot or -1.
func (rt *resTable) place(cycle int, cls machine.UnitClass, opIdx int) int {
	r := rt.row(cycle)
	best := -1
	bestClasses := 1 << 30
	for _, s := range rt.m.SlotsFor(cls) {
		if r[s] != -1 {
			continue
		}
		if n := len(rt.m.Slots[s].Classes); n < bestClasses {
			best, bestClasses = s, n
		}
	}
	if best >= 0 {
		r[best] = opIdx
	}
	return best
}

// ListSchedule performs height-priority list scheduling of a block's
// DAG. Returns per-op placements and the schedule length in cycles.
func ListSchedule(d *DAG, m *machine.Desc) ([]placement, int) {
	n := len(d.Ops)
	placed := make([]placement, n)
	done := make([]bool, n)
	remainingPreds := make([]int, n)
	for i := 0; i < n; i++ {
		for _, e := range d.Preds[i] {
			if e.Dist == 0 {
				remainingPreds[i]++
			}
		}
	}
	rt := newResTable(m)
	scheduled := 0
	length := 0

	// Ready ops, refreshed each cycle.
	estart := make([]int, n)
	for cycle := 0; scheduled < n; cycle++ {
		var ready []int
		for i := 0; i < n; i++ {
			if done[i] || remainingPreds[i] > 0 {
				continue
			}
			if estart[i] <= cycle {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			if d.Height[ready[a]] != d.Height[ready[b]] {
				return d.Height[ready[a]] > d.Height[ready[b]]
			}
			return ready[a] < ready[b]
		})
		for _, i := range ready {
			cls := ir.UnitFor(d.Ops[i])
			slot := rt.place(cycle, cls, i)
			if slot < 0 {
				continue // structural hazard; retry next cycle
			}
			placed[i] = placement{cycle: cycle, slot: slot}
			done[i] = true
			scheduled++
			// Section drain: the section is long enough for every
			// write to land before control falls past its end (EQ
			// model, no interlocks). Taken branches are covered by the
			// redirect penalty plus branch-shadow edges.
			drain := cycle + 1
			if len(d.Ops[i].Dest) > 0 || d.Ops[i].IsPredDefine() {
				if v := cycle + ir.LatencyOf(d.Ops[i], m.Latency); v > drain {
					drain = v
				}
			}
			if drain > length {
				length = drain
			}
			for _, e := range d.Succs[i] {
				if e.Dist != 0 {
					continue
				}
				if t := cycle + e.Lat; t > estart[e.To] {
					estart[e.To] = t
				}
				remainingPreds[e.To]--
			}
		}
		if cycle > 4*n+1024 {
			panic("sched: list scheduling failed to converge")
		}
	}
	if length == 0 {
		length = 1
	}
	return placed, length
}
