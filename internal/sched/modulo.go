package sched

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
)

// KernelSchedule is the result of modulo scheduling: an initiation
// interval, per-op flat schedule times sigma (stage = sigma/II,
// cycle-in-kernel = sigma mod II) and slots.
type KernelSchedule struct {
	II     int
	Stages int
	Sigma  []int
	Slot   []int
	// BranchSlot is the slot reserved at cycle II-1 for the loop-back
	// br.cloop (which is excluded from the DAG).
	BranchSlot int
	// Proven marks the II as proven minimal by an exact backend: every
	// II below it was shown infeasible by exhaustive search. The
	// heuristic backend never sets it.
	Proven bool
	// Nodes counts exact-search nodes expended finding (or proving)
	// this schedule; 0 for the heuristic backend.
	Nodes int64
}

// ModuloScheduler abstracts the kernel-scheduler backend so exact
// schedulers (internal/sched/optimal) can be swapped in behind
// Options.Backend. Implementations must honor the same DAG dependence
// semantics as ModuloSchedule — sigma(to) + II*dist >= sigma(from) +
// lat — and the same modulo reservation rules, including the branch
// slot reserved at cycle II-1 for the loop-back branch. A nil result
// means "do not pipeline this loop".
type ModuloScheduler interface {
	ScheduleLoop(d *DAG, m *machine.Desc, maxII int) *KernelSchedule
}

// heuristicBackend adapts ModuloSchedule (iterative modulo scheduling)
// to the ModuloScheduler interface; it is the default backend.
type heuristicBackend struct{}

func (heuristicBackend) ScheduleLoop(d *DAG, m *machine.Desc, maxII int) *KernelSchedule {
	return ModuloSchedule(d, m, maxII)
}

// Heuristic returns the default iterative-modulo-scheduling backend as
// a ModuloScheduler.
func Heuristic() ModuloScheduler { return heuristicBackend{} }

// MinII returns the lower bound on the initiation interval used by
// both scheduler backends: the resource-constrained MII from unit
// counts and the recurrence-constrained MII estimate from short
// dependence cycles. Exact backends may prove a larger minimum by
// exhausting the IIs in between.
func MinII(d *DAG, m *machine.Desc) int {
	mii := resMII(d, m)
	if r := recMIIEstimate(d); r > mii {
		mii = r
	}
	return mii
}

// DefaultMaxII is the II search ceiling both backends use when the
// caller passes maxII <= 0.
func DefaultMaxII(n int) int { return 8*n + 64 }

// ModuloSchedule attempts iterative modulo scheduling (Rau, MICRO-27)
// of a counted-loop body DAG. ops must exclude the loop-back branch.
// Returns nil when no schedule is found within the II/budget limits.
func ModuloSchedule(d *DAG, m *machine.Desc, maxII int) *KernelSchedule {
	n := len(d.Ops)
	if n == 0 {
		return nil
	}
	mii := MinII(d, m)
	if maxII <= 0 {
		maxII = DefaultMaxII(n)
	}
	for ii := mii; ii <= maxII; ii++ {
		if ks := tryII(d, m, ii); ks != nil {
			return ks
		}
	}
	return nil
}

// resMII lower-bounds II from resource usage.
func resMII(d *DAG, m *machine.Desc) int {
	counts := map[machine.UnitClass]int{}
	for _, op := range d.Ops {
		counts[ir.UnitFor(op)]++
	}
	mii := (len(d.Ops) + m.Width() - 1) / m.Width()
	for cls, cnt := range counts {
		cap := m.CountFor(cls)
		if cls == machine.UnitBranch {
			// One branch-slot cycle per II is reserved for the
			// loop-back branch itself.
			cnt++
		}
		if cap == 0 {
			return 1 << 30
		}
		v := (cnt + cap - 1) / cap
		if v > mii {
			mii = v
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

// recMIIEstimate lower-bounds II from simple recurrence cycles
// (length-1 and length-2 cycles; longer recurrences are discovered by
// schedule failure and the II escalation loop).
func recMIIEstimate(d *DAG) int {
	mii := 1
	for i := range d.Ops {
		for _, e := range d.Succs[i] {
			if e.To == i && e.Dist > 0 {
				if v := (e.Lat + e.Dist - 1) / e.Dist; v > mii {
					mii = v
				}
			}
			if e.Dist == 0 {
				continue
			}
		}
	}
	// Length-2 cycles.
	for i := range d.Ops {
		for _, e1 := range d.Succs[i] {
			for _, e2 := range d.Succs[e1.To] {
				if e2.To != i {
					continue
				}
				dist := e1.Dist + e2.Dist
				if dist == 0 {
					continue
				}
				lat := e1.Lat + e2.Lat
				if v := (lat + dist - 1) / dist; v > mii {
					mii = v
				}
			}
		}
	}
	return mii
}

// tryII attempts to find a schedule at the given II using the classic
// IMS main loop with eviction.
func tryII(d *DAG, m *machine.Desc, ii int) *KernelSchedule {
	n := len(d.Ops)
	sigma := make([]int, n)
	slot := make([]int, n)
	placedFlag := make([]bool, n)
	lastTried := make([]int, n)
	for i := range sigma {
		sigma[i] = -1
		slot[i] = -1
		lastTried[i] = -1
	}

	// Modulo reservation table: mrt[cycle mod ii][slot] = op or -1.
	mrt := make([][]int, ii)
	for c := range mrt {
		mrt[c] = make([]int, m.Width())
		for s := range mrt[c] {
			mrt[c][s] = -1
		}
	}
	// Reserve a branch slot at cycle ii-1 for the loop-back branch.
	brSlots := m.SlotsFor(machine.UnitBranch)
	branchSlot := brSlots[len(brSlots)-1]
	mrt[ii-1][branchSlot] = 1 << 30

	unsched := make([]int, n)
	for i := range unsched {
		unsched[i] = i
	}
	budget := 24*n + 256

	pickNext := func() int {
		best, bestH := -1, -1
		for _, i := range unsched {
			if d.Height[i] > bestH {
				best, bestH = i, d.Height[i]
			}
		}
		return best
	}
	removeUnsched := func(i int) {
		for k, v := range unsched {
			if v == i {
				unsched = append(unsched[:k], unsched[k+1:]...)
				return
			}
		}
	}
	unplace := func(i int) {
		if !placedFlag[i] {
			return
		}
		mrt[((sigma[i]%ii)+ii)%ii][slot[i]] = -1
		placedFlag[i] = false
		unsched = append(unsched, i)
	}

	for len(unsched) > 0 {
		if budget--; budget < 0 {
			return nil
		}
		o := pickNext()
		removeUnsched(o)

		// Earliest start from scheduled predecessors.
		estart := 0
		for _, e := range d.Preds[o] {
			p := e.To
			if !placedFlag[p] {
				continue
			}
			if t := sigma[p] + e.Lat - ii*e.Dist; t > estart {
				estart = t
			}
		}
		// Try cycles [estart, estart+ii-1].
		cls := ir.UnitFor(d.Ops[o])
		placedAt := -1
		for t := estart; t < estart+ii; t++ {
			c := ((t % ii) + ii) % ii
			s := freeSlotMRT(mrt[c], m, cls)
			if s >= 0 {
				sigma[o], slot[o] = t, s
				mrt[c][s] = o
				placedFlag[o] = true
				placedAt = t
				break
			}
		}
		if placedAt < 0 {
			// Forced placement with eviction.
			t := estart
			if lastTried[o] >= 0 && t <= lastTried[o] {
				t = lastTried[o] + 1
			}
			c := ((t % ii) + ii) % ii
			s := evictSlotMRT(mrt, c, m, cls, d)
			if s < 0 {
				return nil // no slot of this class exists
			}
			if v := mrt[c][s]; v >= 0 && v < n {
				unplace(v)
			}
			sigma[o], slot[o] = t, s
			mrt[c][s] = o
			placedFlag[o] = true
			placedAt = t
		}
		lastTried[o] = placedAt

		// Evict scheduled successors whose constraints are now violated.
		for _, e := range d.Succs[o] {
			q := e.To
			if !placedFlag[q] || q == o {
				continue
			}
			if sigma[q]+ii*e.Dist < sigma[o]+e.Lat {
				unplace(q)
			}
		}
		// And scheduled predecessors (eviction may have moved o early).
		for _, e := range d.Preds[o] {
			p := e.To
			if !placedFlag[p] || p == o {
				continue
			}
			if sigma[o]+ii*e.Dist < sigma[p]+e.Lat {
				unplace(p)
			}
		}
	}

	// Normalize sigma to start at 0.
	min := sigma[0]
	for _, s := range sigma {
		if s < min {
			min = s
		}
	}
	maxS := 0
	for i := range sigma {
		sigma[i] -= min
		if sigma[i] > maxS {
			maxS = sigma[i]
		}
	}
	// Re-derive slots' cycle residues after normalization: residues are
	// preserved only if min % ii == 0; rebuild the MRT check instead.
	if min%ii != 0 {
		// Shift changes residues; verify no slot conflicts remain.
		check := make([][]bool, ii)
		for c := range check {
			check[c] = make([]bool, m.Width())
		}
		check[ii-1][branchSlot] = true
		for i := range sigma {
			c := sigma[i] % ii
			if check[c][slot[i]] {
				return nil // should not happen; bail to next II
			}
			check[c][slot[i]] = true
		}
	}
	// Final sanity: all dependence constraints hold.
	for i := range d.Ops {
		for _, e := range d.Succs[i] {
			if sigma[e.To]+ii*e.Dist < sigma[i]+e.Lat {
				return nil
			}
		}
	}
	return &KernelSchedule{
		II:         ii,
		Stages:     maxS/ii + 1,
		Sigma:      sigma,
		Slot:       slot,
		BranchSlot: branchSlot,
	}
}

func freeSlotMRT(row []int, m *machine.Desc, cls machine.UnitClass) int {
	best, bestClasses := -1, 1<<30
	for _, s := range m.SlotsFor(cls) {
		if row[s] != -1 {
			continue
		}
		if n := len(m.Slots[s].Classes); n < bestClasses {
			best, bestClasses = s, n
		}
	}
	return best
}

// evictSlotMRT chooses a slot of the class at cycle c whose current
// occupant has the lowest priority (height); reserved cells (1<<30)
// are never evicted.
func evictSlotMRT(mrt [][]int, c int, m *machine.Desc, cls machine.UnitClass, d *DAG) int {
	// SlotsFor returns slots in ascending order (and the slice is
	// shared — it must not be sorted in place).
	cands := m.SlotsFor(cls)
	best, bestH := -1, 1<<30
	for _, s := range cands {
		v := mrt[c][s]
		if v == 1<<30 {
			continue
		}
		if v == -1 {
			return s
		}
		if d.Height[v] < bestH {
			best, bestH = s, d.Height[v]
		}
	}
	return best
}
