// Package optimal implements an exact modulo-scheduling backend: a
// constraint-propagating branch-and-bound search that finds a kernel
// schedule at the smallest feasible initiation interval and proves
// that smaller IIs are infeasible.
//
// The search reuses the heuristic backend's constraint model — the
// dependence DAG built by sched.BuildDAG (the same graph
// internal/verify's schedule checker rebuilds to audit straight
// sections) and the machine's slot/unit-class reservation rules,
// including the branch slot reserved at kernel cycle II-1 for the
// loop-back branch. A schedule assigns each op a flat time
// sigma = II*stage + row; the solver branches only over the modulo
// residues ("rows") of the ops, because
//
//   - resource legality depends solely on rows: each kernel row must
//     admit a perfect matching of its ops onto issue slots providing
//     their unit classes, and
//   - once rows are fixed, the dependence constraints
//     sigma(to) + II*dist >= sigma(from) + lat become a difference
//     system over the integer stages,
//     stage(to) - stage(from) >= ceil((lat - II*dist - row(to) + row(from)) / II),
//     which is feasible iff the constraint graph has no
//     positive-weight cycle — checked by Bellman–Ford longest paths
//     with no a-priori bound on the stage count.
//
// This decomposition keeps the search space small (|ops| x II row
// choices) and, unlike horizon-bounded time enumeration, makes an
// exhausted search a sound proof of infeasibility at that II: the
// first feasible II found while scanning upward from sched.MinII is
// therefore provably minimal, as long as no II below it ran out of
// budget.
//
// The search honors a deterministic node budget (and an optional
// wall-clock deadline); when the budget dies before the scan
// completes, the scheduler falls back to the heuristic IMS schedule
// and reports the result as unproven, counting the fallback in the
// observability registry.
package optimal

import (
	"sync/atomic"
	"time"

	"lpbuf/internal/machine"
	"lpbuf/internal/obs"
	"lpbuf/internal/sched"
)

// DefaultNodeBudget bounds the search nodes spent per loop (across all
// IIs tried for that loop). It is deliberately deterministic — two
// runs of the same compile expand the same nodes in the same order —
// so schedules, proofs and fallbacks are reproducible facts the
// sim-stat baselines can gate on. The exact MII lift (depFeasible)
// resolves recurrence-bound loops with zero nodes, so the budget only
// burns on resource/dependence-interplay proofs; 5000 nodes keeps the
// worst such loop to a few seconds while proving >90% of the
// benchmark suite's kernels (the bar the corpus test enforces).
const DefaultNodeBudget = 5000

// maxSearchII caps the II the exact solver will attempt (row domains
// are 64-bit sets); loops needing more fall back to the heuristic.
const maxSearchII = 64

// Options configure a Scheduler.
type Options struct {
	// NodeBudget is the per-loop search-node budget (<=0 uses
	// DefaultNodeBudget).
	NodeBudget int64
	// Timeout, when positive, additionally bounds each loop's search
	// by wall clock. Unlike the node budget it is nondeterministic:
	// the same compile may prove minimality on one machine and fall
	// back on another, so figure and baseline runs leave it zero.
	Timeout time.Duration
	// Obs receives the backend's counters (loops, proven, fallbacks,
	// improved, nodes); nil disables them.
	Obs *obs.Obs
}

// Stats is a snapshot of a Scheduler's aggregate behaviour.
type Stats struct {
	// Loops counts kernels the backend scheduled (non-nil results).
	Loops int64
	// Proven counts kernels whose II was proven minimal in budget.
	Proven int64
	// Improved counts kernels scheduled at a strictly smaller II than
	// the heuristic found.
	Improved int64
	// Fallbacks counts kernels that returned the heuristic schedule
	// unproven because the search budget died.
	Fallbacks int64
	// Nodes totals search nodes expanded.
	Nodes int64
}

// Scheduler is an exact modulo-scheduler backend implementing
// sched.ModuloScheduler. It is safe for concurrent use: per-loop
// search state is local, and aggregate stats are atomic.
type Scheduler struct {
	budget  int64
	timeout time.Duration
	o       *obs.Obs

	loops     atomic.Int64
	proven    atomic.Int64
	improved  atomic.Int64
	fallbacks atomic.Int64
	nodes     atomic.Int64
}

// New creates a Scheduler.
func New(opts Options) *Scheduler {
	b := opts.NodeBudget
	if b <= 0 {
		b = DefaultNodeBudget
	}
	return &Scheduler{budget: b, timeout: opts.Timeout, o: opts.Obs}
}

// Stats snapshots the aggregate counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Loops:     s.loops.Load(),
		Proven:    s.proven.Load(),
		Improved:  s.improved.Load(),
		Fallbacks: s.fallbacks.Load(),
		Nodes:     s.nodes.Load(),
	}
}

// ScheduleLoop finds a kernel schedule for the loop body DAG, scanning
// II upward from sched.MinII and proving each infeasible II by
// exhaustive (budgeted) search. The heuristic IMS schedule serves as
// both the upper bound of the scan and the fallback when the budget
// dies. Returns nil when neither backend can pipeline the loop.
func (s *Scheduler) ScheduleLoop(d *sched.DAG, m *machine.Desc, maxII int) *sched.KernelSchedule {
	n := len(d.Ops)
	if n == 0 {
		return nil
	}
	heur := sched.ModuloSchedule(d, m, maxII)
	mii := sched.MinII(d, m)
	if maxII <= 0 {
		maxII = sched.DefaultMaxII(n)
	}
	// Lift MII to the true recurrence bound: an II whose dependence
	// system alone has a positive cycle needs no search to rule out.
	for mii <= maxII && !depFeasible(d, mii, n) {
		mii++
	}
	// The heuristic schedule is an upper bound: only IIs strictly
	// below it need searching. When the heuristic failed entirely, the
	// exact search covers the whole range.
	upper := maxII
	if heur != nil && heur.II-1 < upper {
		upper = heur.II - 1
	}

	var deadline time.Time
	if s.timeout > 0 {
		deadline = time.Now().Add(s.timeout)
	}
	budget := s.budget
	proven := true
	var nodes int64
	var best *sched.KernelSchedule
	for ii := mii; ii <= upper; ii++ {
		if ii > maxSearchII {
			proven = false
			break
		}
		res := solveII(d, m, ii, &budget, deadline)
		nodes += res.nodes
		if res.status == statusSolved {
			best = res.ks
			break
		}
		if res.status == statusExhausted {
			// The budget died before this II was proven infeasible:
			// schedules found at higher IIs are no longer provably
			// minimal.
			proven = false
			if budget <= 0 {
				break
			}
		}
	}

	fallback := false
	switch {
	case best != nil:
		best.Proven = proven
	case heur != nil:
		// Every II below the heuristic's was either proven infeasible
		// (the heuristic is optimal) or the search ran dry (unproven
		// fallback).
		best = heur
		best.Proven = proven
		fallback = !proven
	default:
		// Neither backend pipelines this loop.
		s.nodes.Add(nodes)
		s.o.Counter("sched.optimal.nodes").Add(nodes)
		return nil
	}
	best.Nodes = nodes

	s.loops.Add(1)
	s.nodes.Add(nodes)
	s.o.Counter("sched.optimal.loops").Inc()
	s.o.Counter("sched.optimal.nodes").Add(nodes)
	if best.Proven {
		s.proven.Add(1)
		s.o.Counter("sched.optimal.proven").Inc()
	}
	if fallback {
		s.fallbacks.Add(1)
		s.o.Counter("sched.optimal.fallback").Inc()
	}
	if heur != nil && best.II < heur.II {
		s.improved.Add(1)
		s.o.Counter("sched.optimal.improved").Inc()
	}
	return best
}
