package optimal

import (
	"sync"
	"testing"
	"time"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/obs"
	"lpbuf/internal/sched"
)

// loopBuilder describes a counted-loop test program: setup runs in the
// preheader (defining loop-carried registers), body emits the loop
// body ops that the DAG is built over.
type loopBuilder struct {
	setup func(f *irbuild.Func, inOff, outOff int64) []ir.Reg
	body  func(f *irbuild.Func, regs []ir.Reg)
}

// loopDAG builds the counted loop and returns the body DAG (loop-back
// branch excluded, cross-iteration edges on) — the same graph
// sched.Schedule hands a ModuloScheduler backend.
func loopDAG(t *testing.T, lb loopBuilder) *sched.DAG {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	inOff := pb.GlobalW("in", 256, make([]int32, 256))
	outOff := pb.GlobalW("out", 256, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt := f.Reg()
	f.MovI(cnt, 32)
	regs := lb.setup(f, inOff, outOff)
	f.Block("loop")
	lb.body(f, regs)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(cnt)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	var loop *ir.Block
	for _, b := range fn.Blocks {
		if b.Name == "loop" {
			loop = b
		}
	}
	ops := loop.Ops[:len(loop.Ops)-1]
	return sched.BuildDAG(ops, machine.Default(), sched.AnalyzeAlias(p, fn), true)
}

// recurrenceLoop is bound by the acc = acc*3 + 7 cycle (mul latency 2
// + add latency 1, distance 1 => minimal II 3); an independent
// load/mul/store stream keeps the body wider than the cycle.
var recurrenceLoop = loopBuilder{
	setup: func(f *irbuild.Func, inOff, outOff int64) []ir.Reg {
		acc := f.Reg()
		f.MovI(acc, 1)
		pin := f.Const(inOff)
		pout := f.Const(outOff)
		return []ir.Reg{acc, pin, pout}
	},
	body: func(f *irbuild.Func, regs []ir.Reg) {
		acc, pin, pout := regs[0], regs[1], regs[2]
		x := f.Reg()
		y := f.Reg()
		f.LdW(x, pin, 0)
		f.MulI(y, x, 5)
		f.StW(pout, 0, y)
		f.MulI(acc, acc, 3)
		f.AddI(acc, acc, 7)
		f.AddI(pin, pin, 4)
		f.AddI(pout, pout, 4)
	},
}

// wideLoop is bound by the three memory slots: 12 independent word
// accesses per iteration => minimal II 4, while the heuristic IMS
// settles at 5, so reaching 4 requires actual search.
var wideLoop = loopBuilder{
	setup: func(f *irbuild.Func, inOff, outOff int64) []ir.Reg {
		pin := f.Const(inOff)
		pout := f.Const(outOff)
		return []ir.Reg{pin, pout}
	},
	body: func(f *irbuild.Func, regs []ir.Reg) {
		pin, pout := regs[0], regs[1]
		for lane := 0; lane < 6; lane++ {
			v := f.Reg()
			f.LdW(v, pin, int64(4*lane))
			f.AddI(v, v, int64(lane+1))
			f.StW(pout, int64(4*lane), v)
		}
		f.AddI(pin, pin, 24)
		f.AddI(pout, pout, 24)
	},
}

// checkKernel asserts the schedule satisfies every DAG constraint and
// the modulo reservation rules.
func checkKernel(t *testing.T, d *sched.DAG, ks *sched.KernelSchedule) {
	t.Helper()
	for i := range d.Ops {
		for _, e := range d.Succs[i] {
			if ks.Sigma[e.To]+ks.II*e.Dist < ks.Sigma[i]+e.Lat {
				t.Errorf("edge %d->%d (lat %d dist %d) violated", i, e.To, e.Lat, e.Dist)
			}
		}
	}
	used := map[[2]int]bool{}
	for i := range d.Ops {
		key := [2]int{ks.Sigma[i] % ks.II, ks.Slot[i]}
		if used[key] {
			t.Fatalf("MRT conflict at %v", key)
		}
		used[key] = true
	}
	if used[[2]int{ks.II - 1, ks.BranchSlot}] {
		t.Fatal("branch slot not reserved")
	}
}

// TestDepFeasible pins the exact recurrence bound: the acc cycle has
// total latency 3 over distance 1, so the dependence system is
// infeasible below II 3 and feasible from 3 up.
func TestDepFeasible(t *testing.T) {
	d := loopDAG(t, recurrenceLoop)
	n := len(d.Ops)
	for ii := 1; ii <= 2; ii++ {
		if depFeasible(d, ii, n) {
			t.Errorf("II %d reported dependence-feasible; the acc cycle forbids it", ii)
		}
	}
	for ii := 3; ii <= 5; ii++ {
		if !depFeasible(d, ii, n) {
			t.Errorf("II %d reported infeasible; the recurrence bound is 3", ii)
		}
	}
}

// TestProvesMinimalInBudget runs the default budget on the
// resource-bound loop: the exact backend must find II 4 (beating the
// heuristic) with an in-budget minimality proof, and report it all
// through Stats and the obs counters.
func TestProvesMinimalInBudget(t *testing.T) {
	d := loopDAG(t, wideLoop)
	m := machine.Default()
	heur := sched.ModuloSchedule(d, m, 0)
	if heur == nil {
		t.Fatal("heuristic failed on the wide loop")
	}
	o := obs.New(obs.Config{Metrics: true})
	s := New(Options{Obs: o})
	ks := s.ScheduleLoop(d, m, 0)
	if ks == nil {
		t.Fatal("exact backend returned no schedule")
	}
	if ks.II != 4 {
		t.Errorf("II = %d, want the memory-slot bound 4", ks.II)
	}
	if !ks.Proven {
		t.Error("II not proven minimal in budget")
	}
	if ks.II > heur.II {
		t.Errorf("exact II %d exceeds heuristic %d", ks.II, heur.II)
	}
	if ks.Nodes <= 0 {
		t.Error("search reported zero nodes despite improving on the heuristic")
	}
	checkKernel(t, d, ks)
	st := s.Stats()
	if st.Loops != 1 || st.Proven != 1 || st.Fallbacks != 0 || st.Improved != 1 {
		t.Errorf("stats = %+v, want 1 loop proven and improved, no fallback", st)
	}
	if st.Nodes != ks.Nodes {
		t.Errorf("aggregate nodes %d != schedule nodes %d", st.Nodes, ks.Nodes)
	}
	for name, want := range map[string]int64{
		"sched.optimal.loops":    1,
		"sched.optimal.proven":   1,
		"sched.optimal.improved": 1,
		"sched.optimal.fallback": 0,
		"sched.optimal.nodes":    ks.Nodes,
	} {
		if got := o.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestBudgetExhaustedFallsBack starves the search: with a single-node
// budget the II-4 attempt dies immediately, so the backend must return
// the heuristic schedule unproven and count the fallback.
func TestBudgetExhaustedFallsBack(t *testing.T) {
	d := loopDAG(t, wideLoop)
	m := machine.Default()
	heur := sched.ModuloSchedule(d, m, 0)
	o := obs.New(obs.Config{Metrics: true})
	s := New(Options{NodeBudget: 1, Obs: o})
	ks := s.ScheduleLoop(d, m, 0)
	if ks == nil {
		t.Fatal("fallback returned no schedule")
	}
	if ks.Proven {
		t.Error("budget-starved schedule claims a minimality proof")
	}
	if ks.II != heur.II {
		t.Errorf("fallback II %d != heuristic II %d", ks.II, heur.II)
	}
	checkKernel(t, d, ks)
	st := s.Stats()
	if st.Loops != 1 || st.Proven != 0 || st.Fallbacks != 1 || st.Improved != 0 {
		t.Errorf("stats = %+v, want 1 unproven fallback loop", st)
	}
	if got := o.Counter("sched.optimal.fallback").Value(); got != 1 {
		t.Errorf("sched.optimal.fallback = %d, want 1", got)
	}
	if got := o.Counter("sched.optimal.proven").Value(); got != 0 {
		t.Errorf("sched.optimal.proven = %d, want 0", got)
	}
}

// TestRecurrenceLiftAvoidsSearch checks the exact MII lift: on a loop
// whose II is pinned by its recurrence alone, depFeasible raises the
// scan floor to the true bound, and proving minimality costs zero (or
// near-zero) search nodes even though the estimate-based MII is lower.
func TestRecurrenceLiftAvoidsSearch(t *testing.T) {
	d := loopDAG(t, recurrenceLoop)
	m := machine.Default()
	s := New(Options{})
	ks := s.ScheduleLoop(d, m, 0)
	if ks == nil {
		t.Fatal("no schedule")
	}
	if ks.II != 3 {
		t.Errorf("II = %d, want the recurrence bound 3", ks.II)
	}
	if !ks.Proven {
		t.Error("recurrence-bound II not proven")
	}
	checkKernel(t, d, ks)
}

// TestTimeoutFallsBack exercises the wall-clock deadline: a deadline
// already in the past kills the search at its first check, forcing the
// heuristic fallback. (The deadline is only consulted every 1024 nodes,
// so the node budget is raised to guarantee the check fires.)
func TestTimeoutFallsBack(t *testing.T) {
	d := loopDAG(t, wideLoop)
	m := machine.Default()
	s := New(Options{NodeBudget: 1 << 40, Timeout: -time.Hour})
	ks := s.ScheduleLoop(d, m, 0)
	if ks == nil {
		t.Fatal("fallback returned no schedule")
	}
	st := s.Stats()
	if st.Nodes >= 1<<20 {
		t.Fatalf("deadline never fired (%d nodes expanded)", st.Nodes)
	}
	// Either the solver found II 4 within the first 1024 nodes (before
	// any deadline check) or it fell back; both must yield a legal
	// schedule, and a fallback must not claim a proof.
	if ks.Proven && ks.II != 4 {
		t.Errorf("proven schedule at II %d, want 4", ks.II)
	}
	checkKernel(t, d, ks)
}

// TestConcurrentScheduleLoop shares one Scheduler across goroutines
// (as core.Compile's parallel function scheduling does) and checks the
// aggregate stats stay consistent. Run under -race this also proves
// the per-loop search state is not shared.
func TestConcurrentScheduleLoop(t *testing.T) {
	m := machine.Default()
	dags := []*sched.DAG{
		loopDAG(t, recurrenceLoop),
		loopDAG(t, wideLoop),
	}
	s := New(Options{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([]*sched.KernelSchedule, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = s.ScheduleLoop(dags[w%len(dags)], m, 0)
		}(w)
	}
	wg.Wait()
	for w, ks := range results {
		if ks == nil {
			t.Fatalf("worker %d: no schedule", w)
		}
		if !ks.Proven {
			t.Errorf("worker %d: unproven", w)
		}
		checkKernel(t, dags[w%len(dags)], ks)
	}
	st := s.Stats()
	if st.Loops != workers || st.Proven != workers || st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want %d proven loops", st, workers)
	}
}
