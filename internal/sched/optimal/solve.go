package optimal

import (
	"sort"
	"time"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
)

// depFeasible decides whether the dependence system alone admits a
// schedule at the given II: the constraints sigma(to) >= sigma(from) +
// lat - II*dist form a difference system over flat times, feasible iff
// the edge graph with weights lat - II*dist has no positive cycle
// (Bellman-Ford longest paths). This is exact — no row/stage
// decomposition needed — so scanning II upward until it holds yields
// the true recurrence-constrained MII, not the 2-cycle estimate.
func depFeasible(d *sched.DAG, ii, n int) bool {
	s := make([]int, n)
	for pass := 0; pass <= n; pass++ {
		changed := false
		for i := range d.Ops {
			for _, e := range d.Succs[i] {
				w := e.Lat - ii*e.Dist
				if s[e.To] < s[i]+w {
					s[e.To] = s[i] + w
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

type status int

const (
	// statusSolved: a schedule at this II was found.
	statusSolved status = iota
	// statusInfeasible: the search space was exhausted — no schedule
	// exists at this II (a sound proof; see package comment).
	statusInfeasible
	// statusExhausted: the node budget or deadline died first; nothing
	// is known about this II.
	statusExhausted
)

type iiResult struct {
	status status
	ks     *sched.KernelSchedule
	nodes  int64
}

// edge is a dependence constraint with precomputed stage weight base
// w = lat - II*dist: the stage system requires
// stage(to) - stage(from) >= ceil((w - row(to) + row(from)) / II).
type edge struct {
	from, to int
	w        int
}

// solver holds the per-II search state. All state is local to one
// solveII call; the Scheduler shares nothing mutable across loops.
type solver struct {
	d  *sched.DAG
	m  *machine.Desc
	ii int
	n  int

	cls   []machine.UnitClass
	edges []edge
	// twoCyc[i] lists (j, wij, wji) pairs where edges i->j and j->i
	// both exist: the only cycles whose weight two row choices fix
	// directly, used for pairwise domain filtering.
	twoCyc [][]pairCycle

	branchSlot int
	// slotsFor caches m.SlotsFor per class; branch row (II-1) uses a
	// filtered copy excluding branchSlot.
	lastRow int

	dom  []uint64 // candidate-row bitsets, one per op
	row  []int    // assigned row, -1 = unassigned
	rows [][]int  // op indices assigned to each row

	budget   *int64
	deadline time.Time
	nodes    int64
	dead     bool // budget or deadline exhausted

	bf      []int // Bellman-Ford stage scratch
	matchOp []int // matching scratch: slot -> op
	visited []bool
}

type pairCycle struct {
	j        int
	wij, wji int
}

// ceilDiv returns ceil(a/b) for b > 0 (Go's / truncates toward zero,
// which already equals ceil for a <= 0).
func ceilDiv(a, b int) int {
	if a > 0 {
		return (a + b - 1) / b
	}
	return a / b
}

func minBit(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

func maxBit(m uint64) int {
	for i := 63; i >= 0; i-- {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

func popcount(m uint64) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// solveII searches for a kernel schedule at exactly the given II.
func solveII(d *sched.DAG, m *machine.Desc, ii int, budget *int64, deadline time.Time) iiResult {
	n := len(d.Ops)
	sv := &solver{
		d: d, m: m, ii: ii, n: n,
		cls:        make([]machine.UnitClass, n),
		branchSlot: branchSlotOf(m),
		lastRow:    ii - 1,
		dom:        make([]uint64, n),
		row:        make([]int, n),
		rows:       make([][]int, ii),
		budget:     budget,
		deadline:   deadline,
		bf:         make([]int, n),
		matchOp:    make([]int, m.Width()),
		visited:    make([]bool, m.Width()),
	}
	for i, op := range d.Ops {
		sv.cls[i] = ir.UnitFor(op)
		sv.row[i] = -1
	}

	// Deterministic edge list (DAG adjacency comes from a map).
	for i := range d.Ops {
		for _, e := range d.Succs[i] {
			sv.edges = append(sv.edges, edge{from: i, to: e.To, w: e.Lat - ii*e.Dist})
		}
	}
	sort.Slice(sv.edges, func(a, b int) bool {
		ea, eb := sv.edges[a], sv.edges[b]
		if ea.from != eb.from {
			return ea.from < eb.from
		}
		if ea.to != eb.to {
			return ea.to < eb.to
		}
		return ea.w > eb.w
	})
	// Self edges constrain no rows — they are pure cycles: feasible iff
	// ceil(w/ii) <= 0.
	kept := sv.edges[:0]
	for _, e := range sv.edges {
		if e.from == e.to {
			if ceilDiv(e.w, ii) > 0 {
				return iiResult{status: statusInfeasible}
			}
			continue
		}
		kept = append(kept, e)
	}
	sv.edges = kept

	// Index 2-cycles for pairwise filtering.
	sv.twoCyc = make([][]pairCycle, n)
	type ekey struct{ f, t int }
	wmax := map[ekey]int{}
	for _, e := range sv.edges {
		k := ekey{e.from, e.to}
		if w, ok := wmax[k]; !ok || e.w > w {
			wmax[k] = e.w
		}
	}
	for _, e := range sv.edges {
		if back, ok := wmax[ekey{e.to, e.from}]; ok && e.from < e.to {
			sv.twoCyc[e.from] = append(sv.twoCyc[e.from], pairCycle{j: e.to, wij: e.w, wji: back})
			sv.twoCyc[e.to] = append(sv.twoCyc[e.to], pairCycle{j: e.from, wij: back, wji: e.w})
		}
	}

	// Initial domains: every row; resource-filter each singleton row
	// (an op whose class has no slot in a row can't go there — only the
	// branch row differs, having branchSlot pre-reserved).
	full := uint64(1)<<uint(ii) - 1
	if ii == 64 {
		full = ^uint64(0)
	}
	for i := 0; i < n; i++ {
		sv.dom[i] = full
		for r := 0; r < ii; r++ {
			if !sv.rowFeasibleWith(r, i) {
				sv.dom[i] &^= 1 << uint(r)
			}
		}
		if sv.dom[i] == 0 {
			return iiResult{status: statusInfeasible}
		}
	}
	if !sv.bfFeasible() {
		return iiResult{status: statusInfeasible}
	}

	found := sv.search()
	res := iiResult{nodes: sv.nodes}
	switch {
	case found:
		ks := sv.extract()
		if ks == nil {
			// Defensive: extraction re-checks every constraint; a failure
			// here would be a solver bug — treat as unproven, not as a
			// false infeasibility proof.
			res.status = statusExhausted
			return res
		}
		res.status = statusSolved
		res.ks = ks
	case sv.dead:
		res.status = statusExhausted
	default:
		res.status = statusInfeasible
	}
	return res
}

func branchSlotOf(m *machine.Desc) int {
	brSlots := m.SlotsFor(machine.UnitBranch)
	return brSlots[len(brSlots)-1]
}

// search runs the propagate-and-branch loop. Returns true when a full
// row assignment satisfying all constraints was reached.
func (sv *solver) search() bool {
	// Fail-first variable order: smallest domain, then greatest height,
	// then lowest index.
	op := -1
	best := 65
	for i := 0; i < sv.n; i++ {
		if sv.row[i] >= 0 {
			continue
		}
		c := popcount(sv.dom[i])
		if c < best || (c == best && sv.d.Height[i] > sv.d.Height[op]) {
			op, best = i, c
		}
	}
	if op < 0 {
		return true // all rows assigned; bfFeasible held after the last one
	}

	domSave := make([]uint64, sv.n)
	for r := 0; r < sv.ii; r++ {
		if sv.dom[op]&(1<<uint(r)) == 0 {
			continue
		}
		sv.nodes++
		if *sv.budget--; *sv.budget < 0 {
			sv.dead = true
			return false
		}
		if sv.nodes&1023 == 0 && !sv.deadline.IsZero() && time.Now().After(sv.deadline) {
			sv.dead = true
			return false
		}

		copy(domSave, sv.dom)
		sv.row[op] = r
		sv.dom[op] = 1 << uint(r)
		sv.rows[r] = append(sv.rows[r], op)
		if sv.propagate(op, r) && sv.search() {
			return true
		}
		sv.rows[r] = sv.rows[r][:len(sv.rows[r])-1]
		sv.row[op] = -1
		copy(sv.dom, domSave)
		if sv.dead {
			return false
		}
	}
	return false
}

// propagate filters domains after assigning op to row r and checks
// global feasibility. Filtering is sound (removes only rows that admit
// no completion); completeness comes from the search itself.
func (sv *solver) propagate(op, r int) bool {
	// Resource filtering: only row r gained an occupant, so only the
	// r-bit of unassigned domains can change.
	for i := 0; i < sv.n; i++ {
		if sv.row[i] >= 0 || sv.dom[i]&(1<<uint(r)) == 0 {
			continue
		}
		if !sv.rowFeasibleWith(r, i) {
			sv.dom[i] &^= 1 << uint(r)
			if sv.dom[i] == 0 {
				return false
			}
		}
	}
	// Pairwise 2-cycle filtering against the newly fixed row.
	for _, pc := range sv.twoCyc[op] {
		j := pc.j
		if sv.row[j] >= 0 {
			continue
		}
		for rj := 0; rj < sv.ii; rj++ {
			if sv.dom[j]&(1<<uint(rj)) == 0 {
				continue
			}
			if ceilDiv(pc.wij+r-rj, sv.ii)+ceilDiv(pc.wji+rj-r, sv.ii) > 0 {
				sv.dom[j] &^= 1 << uint(rj)
			}
		}
		if sv.dom[j] == 0 {
			return false
		}
	}
	return sv.bfFeasible()
}

// wmin lower-bounds an edge's stage weight over the current domains:
// ceil is monotone in row(from) and antitone in row(to), so the
// minimum uses the smallest candidate source row and largest candidate
// sink row.
func (sv *solver) wmin(e edge) int {
	rf := sv.row[e.from]
	if rf < 0 {
		rf = minBit(sv.dom[e.from])
	}
	rt := sv.row[e.to]
	if rt < 0 {
		rt = maxBit(sv.dom[e.to])
	}
	return ceilDiv(e.w+rf-rt, sv.ii)
}

// bfFeasible decides whether the stage difference system with
// minimized weights admits a solution: Bellman-Ford longest paths from
// an implicit all-zeros source; a relaxation still firing after n full
// passes proves a positive-weight cycle, i.e. infeasibility. With all
// rows assigned the weights are exact and this is a complete decision
// procedure for the II.
func (sv *solver) bfFeasible() bool {
	s := sv.bf
	for i := range s {
		s[i] = 0
	}
	for pass := 0; pass <= sv.n; pass++ {
		changed := false
		for _, e := range sv.edges {
			w := sv.wmin(e)
			if s[e.to] < s[e.from]+w {
				s[e.to] = s[e.from] + w
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// rowFeasibleWith reports whether row r can host its current occupants
// plus op extra: a perfect matching of ops onto distinct slots
// providing their unit classes must exist (the branch row additionally
// loses branchSlot to the loop-back branch). Using exact matching
// instead of greedy commitment means the search never has to branch
// over slots.
func (sv *solver) rowFeasibleWith(r, extra int) bool {
	for i := range sv.matchOp {
		sv.matchOp[i] = -1
	}
	if r == sv.lastRow {
		sv.matchOp[sv.branchSlot] = 1 << 30
	}
	for _, o := range sv.rows[r] {
		if !sv.augment(o) {
			return false
		}
	}
	return extra < 0 || sv.augment(extra)
}

// augment finds an augmenting path (Kuhn's algorithm) placing op o.
func (sv *solver) augment(o int) bool {
	for i := range sv.visited {
		sv.visited[i] = false
	}
	return sv.tryPlace(o)
}

func (sv *solver) tryPlace(o int) bool {
	for _, s := range sv.m.SlotsFor(sv.cls[o]) {
		if sv.visited[s] || sv.matchOp[s] == 1<<30 {
			continue
		}
		sv.visited[s] = true
		if sv.matchOp[s] == -1 || sv.tryPlace(sv.matchOp[s]) {
			sv.matchOp[s] = o
			return true
		}
	}
	return false
}

// extract materializes the found assignment into a KernelSchedule:
// exact Bellman-Ford resolves minimal stages, and a final matching per
// row fixes slots. Every dependence constraint is re-checked; nil on
// violation (which would indicate a solver bug, never an unsound
// schedule escaping).
func (sv *solver) extract() *sched.KernelSchedule {
	ii, n := sv.ii, sv.n
	s := sv.bf
	for i := range s {
		s[i] = 0
	}
	ok := false
	for pass := 0; pass <= n; pass++ {
		changed := false
		for _, e := range sv.edges {
			w := ceilDiv(e.w+sv.row[e.from]-sv.row[e.to], ii)
			if s[e.to] < s[e.from]+w {
				s[e.to] = s[e.from] + w
				changed = true
			}
		}
		if !changed {
			ok = true
			break
		}
	}
	if !ok {
		return nil
	}
	minS := 0
	for _, v := range s {
		if v < minS {
			minS = v
		}
	}
	sigma := make([]int, n)
	maxSig := 0
	for i := range sigma {
		sigma[i] = ii*(s[i]-minS) + sv.row[i]
		if sigma[i] > maxSig {
			maxSig = sigma[i]
		}
	}
	// Re-check the exact dependence constraints from the original DAG.
	for i := range sv.d.Ops {
		for _, e := range sv.d.Succs[i] {
			if sigma[e.To]+ii*e.Dist < sigma[i]+e.Lat {
				return nil
			}
		}
	}

	// Slot assignment: one exact matching per row, deterministic.
	slot := make([]int, n)
	for i := range slot {
		slot[i] = -1
	}
	for r := 0; r < ii; r++ {
		if !sv.rowFeasibleWith(r, -1) {
			return nil
		}
		for sl, o := range sv.matchOp {
			if o >= 0 && o < n {
				slot[o] = sl
			}
		}
	}
	for i := range slot {
		if slot[i] < 0 {
			return nil
		}
	}
	return &sched.KernelSchedule{
		II:         ii,
		Stages:     maxSig/ii + 1,
		Sigma:      sigma,
		Slot:       slot,
		BranchSlot: sv.branchSlot,
	}
}
