package sched_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
	"lpbuf/internal/sched/optimal"
)

// recurrenceTightProgram builds a loop whose II is pinned by a
// loop-carried 2-op cycle: acc = acc*3 + 7 (mul latency 2 + add
// latency 1, distance 1 => II >= 3). An independent load/mul/store
// stream makes the straight-line schedule long enough that software
// pipelining is profitable, without adding recurrences.
func recurrenceTightProgram(t *testing.T) *irbuild.Program {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, 16)
	for i := range vals {
		vals[i] = int32(i*3 + 2)
	}
	inOff := pb.GlobalW("in", 16, vals)
	outOff := pb.GlobalW("out", 16, nil)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt := f.Reg()
	acc := f.Reg()
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	f.MovI(cnt, 16)
	f.MovI(acc, 1)
	f.Block("loop")
	x := f.Reg()
	y := f.Reg()
	f.LdW(x, pin, 0)
	f.MulI(y, x, 5)
	f.StW(pout, 0, y)
	f.MulI(acc, acc, 3)
	f.AddI(acc, acc, 7)
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.CLoop(cnt, "loop")
	f.Block("post")
	f.StW(pout, 0, acc)
	f.Ret(acc)
	pb.SetEntry("main")
	return pb
}

// resourceTightProgram builds a loop whose II is pinned by the memory
// units: 12 independent word accesses per iteration over 3 memory
// slots => II >= 4, with no loop-carried chain longer than the
// pointer increments.
func resourceTightProgram(t *testing.T) *irbuild.Program {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, 6*16)
	for i := range vals {
		vals[i] = int32(i*5 + 1)
	}
	inOff := pb.GlobalW("in", 6*16, vals)
	outOff := pb.GlobalW("out", 6*16, nil)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt := f.Reg()
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	f.MovI(cnt, 16)
	f.Block("loop")
	for lane := 0; lane < 6; lane++ {
		v := f.Reg()
		f.LdW(v, pin, int64(4*lane))
		f.AddI(v, v, int64(lane+1))
		f.StW(pout, int64(4*lane), v)
	}
	f.AddI(pin, pin, 24)
	f.AddI(pout, pout, 24)
	f.CLoop(cnt, "loop")
	f.Block("post")
	r := f.Reg()
	f.LdW(r, pout, -4)
	f.Ret(r)
	pb.SetEntry("main")
	return pb
}

// TestOptimalDisasmGolden pins the exact backend's schedules of two
// kernels whose minimal II is known tight against one bound each: a
// recurrence-bound loop (II = 3, from the acc cycle) and a
// resource-bound loop (II = 4, from the memory slots). Each schedule
// must carry an in-budget minimality proof, and its disassembly is
// pinned byte-for-byte. Regenerate with:
//
//	go test ./internal/sched -run TestOptimalDisasmGolden -update
func TestOptimalDisasmGolden(t *testing.T) {
	cases := []struct {
		name   string
		build  func(*testing.T) *irbuild.Program
		wantII int
		golden string
	}{
		{"recurrence", recurrenceTightProgram, 3, "optimal_recurrence.golden"},
		{"resource", resourceTightProgram, 4, "optimal_resource.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			backend := optimal.New(optimal.Options{})
			code, err := sched.Schedule(tc.build(t).MustBuild(), machine.Default(),
				sched.Options{EnableModulo: true, Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			var kernel *sched.BlockCode
			for _, sec := range code.Funcs["main"].Sections {
				if sec.Kind == sched.KindKernel {
					kernel = sec
				}
			}
			if kernel == nil {
				t.Fatal("loop was not software-pipelined")
			}
			if kernel.II != tc.wantII {
				t.Errorf("kernel II = %d, want the tight bound %d", kernel.II, tc.wantII)
			}
			if !kernel.Proven {
				t.Error("kernel II not proven minimal in budget")
			}
			if st := backend.Stats(); st.Loops != 1 || st.Proven != 1 || st.Fallbacks != 0 {
				t.Errorf("backend stats = %+v, want 1 loop proven with no fallback", st)
			}

			got := code.Funcs["main"].Disasm()
			golden := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("disassembly drifted from %s (re-run with -update if intended)\n--- got ---\n%s",
					golden, got)
			}
			for _, marker := range []string{"prologue", "kernel", "epilogue"} {
				if !strings.Contains(got, marker) {
					t.Errorf("disassembly lacks a %s section", marker)
				}
			}
		})
	}
}
