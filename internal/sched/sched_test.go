package sched

import (
	"math/rand"
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
)

// buildStraightBlock returns a block of dependent/independent ALU ops.
func buildStraightBlock() (*ir.Program, *ir.Func, *ir.Block) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("b")
	a := f.Const(1)
	b := f.Const(2)
	c := f.Reg()
	d := f.Reg()
	e := f.Reg()
	f.Mul(c, a, b) // latency 2
	f.Add(d, c, a) // depends on c
	f.Add(e, a, b) // independent
	f.Add(d, d, e)
	f.Ret(d)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	return p, fn, fn.Blocks[0]
}

// checkSchedule verifies every DAG edge against placements.
func checkSchedule(t *testing.T, d *DAG, placed []placement, ii int) {
	t.Helper()
	for i := range d.Ops {
		for _, e := range d.Succs[i] {
			if e.Dist != 0 {
				continue // acyclic check only
			}
			if placed[e.To].cycle < placed[i].cycle+e.Lat {
				t.Errorf("edge %d->%d lat %d violated: %d -> %d",
					i, e.To, e.Lat, placed[i].cycle, placed[e.To].cycle)
			}
		}
	}
	_ = ii
}

func TestListScheduleRespectsLatency(t *testing.T) {
	p, fn, blk := buildStraightBlock()
	m := machine.Default()
	alias := AnalyzeAlias(p, fn)
	d := BuildDAG(blk.Ops, m, alias, false)
	placed, length := ListSchedule(d, m)
	checkSchedule(t, d, placed, 0)
	if length < 3 {
		t.Fatalf("schedule too short (%d cycles) for a mul-dependent chain", length)
	}
	// No slot double-booked per cycle.
	used := map[[2]int]bool{}
	for i := range placed {
		key := [2]int{placed[i].cycle, placed[i].slot}
		if used[key] {
			t.Fatalf("slot conflict at %v", key)
		}
		used[key] = true
	}
}

func TestListScheduleSlotClasses(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, false)
	f.Block("b")
	base := f.Const(0)
	// Four independent loads: only three memory slots exist, so they
	// must span at least two cycles.
	for i := int64(0); i < 4; i++ {
		d := f.Reg()
		f.LdW(d, base, 4*i)
	}
	f.Ret(0)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	m := machine.Default()
	d := BuildDAG(fn.Blocks[0].Ops, m, AnalyzeAlias(p, fn), false)
	placed, _ := ListSchedule(d, m)
	cycles := map[int]int{}
	for i, op := range fn.Blocks[0].Ops {
		if op.IsLoad() {
			cycles[placed[i].cycle]++
		}
	}
	for c, n := range cycles {
		if n > m.CountFor(machine.UnitMem) {
			t.Fatalf("cycle %d issues %d loads (> %d mem units)", c, n,
				m.CountFor(machine.UnitMem))
		}
	}
}

// buildCountedLoop returns a simple MAC loop in cloop form.
func buildCountedLoop(trips int64) (*ir.Program, *ir.Func, *ir.Block) {
	pb := irbuild.NewProgram(16 << 10)
	vals := make([]int32, trips)
	for i := range vals {
		vals[i] = int32(i * 3)
	}
	inOff := pb.GlobalW("in", int(trips), vals)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	p := f.Const(inOff)
	acc := f.Reg()
	cnt := f.Reg()
	f.MovI(acc, 0)
	f.MovI(cnt, trips)
	f.Block("loop")
	v := f.Reg()
	m := f.Reg()
	f.LdW(v, p, 0)
	f.MulI(m, v, 5)
	f.Add(acc, acc, m)
	f.AddI(p, p, 4)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	pr := pb.MustBuild()
	fn := pr.Funcs["main"]
	var loop *ir.Block
	for _, b := range fn.Blocks {
		if b.Name == "loop" {
			loop = b
		}
	}
	return pr, fn, loop
}

func TestModuloScheduleBasics(t *testing.T) {
	p, fn, loop := buildCountedLoop(50)
	m := machine.Default()
	body := loop.Ops[:len(loop.Ops)-1]
	d := BuildDAG(body, m, AnalyzeAlias(p, fn), true)
	ks := ModuloSchedule(d, m, 0)
	if ks == nil {
		t.Fatal("modulo scheduling failed on a simple MAC loop")
	}
	if ks.II < 1 {
		t.Fatalf("II = %d", ks.II)
	}
	// All constraints hold under the modulo interpretation.
	for i := range body {
		for _, e := range d.Succs[i] {
			if ks.Sigma[e.To]+ks.II*e.Dist < ks.Sigma[i]+e.Lat {
				t.Errorf("modulo edge %d->%d (lat %d dist %d) violated: %d vs %d",
					i, e.To, e.Lat, e.Dist, ks.Sigma[i], ks.Sigma[e.To])
			}
		}
	}
	// Modulo resource legality: at most one op per (slot, cycle mod II).
	used := map[[2]int]bool{}
	for i := range body {
		key := [2]int{ks.Sigma[i] % ks.II, ks.Slot[i]}
		if used[key] {
			t.Fatalf("MRT conflict at %v", key)
		}
		used[key] = true
	}
	// The reserved branch slot stays free.
	if used[[2]int{ks.II - 1, ks.BranchSlot}] {
		t.Fatal("branch slot not reserved")
	}
}

func TestModuloBeatsListOnMACLoop(t *testing.T) {
	p, fn, loop := buildCountedLoop(50)
	m := machine.Default()
	body := loop.Ops[:len(loop.Ops)-1]
	alias := AnalyzeAlias(p, fn)
	ks := ModuloSchedule(BuildDAG(body, m, alias, true), m, 0)
	if ks == nil {
		t.Fatal("no kernel")
	}
	_, listLen := ListSchedule(BuildDAG(loop.Ops, m, alias, true), m)
	if ks.II >= listLen {
		t.Fatalf("II %d not better than list length %d", ks.II, listLen)
	}
}

func TestScheduleWholeProgram(t *testing.T) {
	p, _, _ := buildCountedLoop(50)
	m := machine.Default()
	code, err := Schedule(p.Clone(), m, Options{EnableModulo: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	// One kernel section must exist.
	kernels := 0
	for _, fc := range code.Funcs {
		for _, sec := range fc.Sections {
			if sec.Kind == KindKernel {
				kernels++
				if sec.II < 1 || sec.Stages < 1 {
					t.Fatalf("bad kernel meta: %+v", sec)
				}
			}
		}
	}
	if kernels != 1 {
		t.Fatalf("kernels = %d, want 1", kernels)
	}
}

func TestAliasRegions(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	aOff := pb.GlobalW("a", 16, nil)
	bOff := pb.GlobalW("b", 16, nil)
	f := pb.Func("main", 0, false)
	f.Block("x")
	pa := f.Const(aOff)
	pbr := f.Const(bOff)
	mix := f.Reg()
	f.Add(mix, pa, pbr) // pointer+pointer: top
	idx := f.Const(3)
	pai := f.Reg()
	f.Add(pai, pa, idx) // pointer+int keeps region
	f.Ret(0)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	ai := AnalyzeAlias(p, fn)
	if ai.RegionOf(pa) == ai.RegionOf(pbr) {
		t.Fatal("distinct globals share a region")
	}
	if ai.RegionOf(pai) != ai.RegionOf(pa) {
		t.Fatal("pointer+int lost its region")
	}
	if ai.RegionOf(mix) != RegionTop {
		t.Fatal("pointer+pointer should be top")
	}

	// May-alias checks via synthetic ops.
	ld := &ir.Op{Opcode: ir.OpLdW, Dest: []ir.Reg{f.Reg()}, Src: []ir.Reg{pa}, Imm: 0, HasImm: true}
	st := &ir.Op{Opcode: ir.OpStW, Src: []ir.Reg{pbr, mix}, Imm: 0, HasImm: true}
	if ai.MayAlias(ld, st, false) {
		t.Fatal("ops on distinct regions must not alias")
	}
	st2 := &ir.Op{Opcode: ir.OpStW, Src: []ir.Reg{pa, mix}, Imm: 8, HasImm: true}
	if ai.MayAlias(ld, st2, true) {
		t.Fatal("same base, disjoint stable offsets must not alias")
	}
	if !ai.MayAlias(ld, st2, false) {
		t.Fatal("without base stability, same region must alias")
	}
}

func TestDAGMemoryOrdering(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	gOff := pb.GlobalW("g", 8, nil)
	f := pb.Func("main", 0, false)
	f.Block("x")
	base := f.Const(gOff)
	v := f.Const(7)
	f.StW(base, 0, v)
	d := f.Reg()
	f.LdW(d, base, 0) // must read after the store
	f.Ret(0)
	pb.SetEntry("main")
	p := pb.MustBuild()
	fn := p.Funcs["main"]
	m := machine.Default()
	dag := BuildDAG(fn.Blocks[0].Ops, m, AnalyzeAlias(p, fn), false)
	// Find store->load edge.
	stIdx, ldIdx := -1, -1
	for i, op := range fn.Blocks[0].Ops {
		if op.IsStore() {
			stIdx = i
		}
		if op.IsLoad() {
			ldIdx = i
		}
	}
	found := false
	for _, e := range dag.Succs[stIdx] {
		if e.To == ldIdx && e.Lat >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("missing store->load dependence")
	}
}

// TestRandomLoopModuloCorrectness generates random dependence-heavy
// counted loops, modulo-schedules them and re-verifies every edge.
func TestRandomLoopModuloCorrectness(t *testing.T) {
	m := machine.Default()
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		pb := irbuild.NewProgram(16 << 10)
		inOff := pb.GlobalW("in", 64, nil)
		outOff := pb.GlobalW("out", 64, nil)
		f := pb.Func("main", 0, false)
		f.Block("pre")
		pin := f.Const(inOff)
		pout := f.Const(outOff)
		cnt := f.Reg()
		f.MovI(cnt, 50)
		acc := f.Reg()
		f.MovI(acc, 0)
		f.Block("loop")
		regs := []ir.Reg{acc}
		v := f.Reg()
		f.LdW(v, pin, 0)
		regs = append(regs, v)
		for k := 0; k < 3+rng.Intn(8); k++ {
			opc := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor,
				ir.OpMin, ir.OpMax}[rng.Intn(6)]
			d := f.Reg()
			f.Bin(opc, d, regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))])
			regs = append(regs, d)
		}
		f.Add(acc, acc, regs[len(regs)-1])
		f.StW(pout, 0, acc)
		f.AddI(pin, pin, 4)
		f.AddI(pout, pout, 4)
		f.CLoop(cnt, "loop")
		f.Block("done")
		f.Ret(0)
		pb.SetEntry("main")
		p := pb.MustBuild()
		fn := p.Funcs["main"]
		var loop *ir.Block
		for _, b := range fn.Blocks {
			if b.Name == "loop" {
				loop = b
			}
		}
		body := loop.Ops[:len(loop.Ops)-1]
		d := BuildDAG(body, m, AnalyzeAlias(p, fn), true)
		ks := ModuloSchedule(d, m, 0)
		if ks == nil {
			continue // some graphs legitimately fail; fallback covers them
		}
		for i := range body {
			for _, e := range d.Succs[i] {
				if ks.Sigma[e.To]+ks.II*e.Dist < ks.Sigma[i]+e.Lat {
					t.Fatalf("trial %d: edge violated", trial)
				}
			}
		}
	}
}

func TestFallTargetResolution(t *testing.T) {
	// A conditional branch's fallthrough must flow to the IR Fall block
	// even when layout order differs.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("a")
	x := f.Const(5)
	f.BrI(ir.CmpLT, x, 3, "low")
	f.Block("high")
	h := f.Const(100)
	f.Ret(h)
	f.Block("low")
	l := f.Const(-100)
	f.Ret(l)
	pb.SetEntry("main")
	p := pb.MustBuild()
	code, err := Schedule(p.Clone(), machine.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fc := code.Funcs["main"]
	// Every branch target resolves in range.
	for _, b := range fc.Bundles {
		for _, so := range b.Ops {
			if so.Op.IsBranch() {
				if so.TargetBundle < 0 || so.TargetBundle >= len(fc.Bundles) {
					t.Fatalf("unresolved target %d", so.TargetBundle)
				}
			}
		}
	}
}

func TestDisasmOutput(t *testing.T) {
	p, _, _ := buildCountedLoop(50)
	code, err := Schedule(p.Clone(), machine.Default(), Options{EnableModulo: true})
	if err != nil {
		t.Fatal(err)
	}
	text := code.Funcs["main"].Disasm()
	for _, want := range []string{"kernel", "II=", "br.cloop", "prologue", "epilogue", "[s"} {
		if !containsStr(text, want) {
			t.Fatalf("disasm lacks %q:\n%s", want, text)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

func TestValidateCatchesBadSchedule(t *testing.T) {
	p, _, _ := buildCountedLoop(10)
	code, err := Schedule(p.Clone(), machine.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a slot assignment: a load placed in a non-memory slot.
	for _, fc := range code.Funcs {
		for _, b := range fc.Bundles {
			for _, so := range b.Ops {
				if so.Op.IsLoad() {
					so.Slot = 0 // slot 0 has no memory unit
					if err := code.Validate(); err == nil {
						t.Fatal("validator missed a misplaced load")
					}
					return
				}
			}
		}
	}
	t.Fatal("no load found")
}

func TestModuloRejectsLowTripLoops(t *testing.T) {
	// trips < 2: pipelining is pointless and must not fire.
	p, _, _ := buildCountedLoop(1)
	code, err := Schedule(p.Clone(), machine.Default(), Options{EnableModulo: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range code.Funcs {
		for _, sec := range fc.Sections {
			if sec.Kind == KindKernel {
				t.Fatal("pipelined a single-trip loop")
			}
		}
	}
}
