package sched

import (
	"fmt"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
	"lpbuf/internal/obs"
)

// Options control scheduling.
type Options struct {
	// EnableModulo turns on software pipelining of counted loops.
	EnableModulo bool
	// MaxII bounds the initiation-interval search (0 = auto).
	MaxII int
	// Backend selects the modulo-scheduler backend for pipelined
	// kernels; nil uses the heuristic IMS backend (ModuloSchedule).
	Backend ModuloScheduler
	// Span, when non-nil, parents one observability span per scheduled
	// function (IR ops in, bundles/ops/kernels out, wall time).
	Span *obs.Span
}

// Schedule compiles a program into VLIW bundles. NOTE: when modulo
// scheduling pipelines a loop, the loop's trip counter initialization
// is rewritten (kernel runs trips-stages+1 times), so the program must
// be a clone dedicated to this schedule.
func Schedule(prog *ir.Program, m *machine.Desc, opts Options) (*Code, error) {
	code := &Code{Prog: prog, Funcs: map[string]*FuncCode{}, Mach: m}
	for _, name := range prog.Order {
		sp := opts.Span.Child("sched." + name)
		if opts.Span != nil {
			sp.SetInt("ir_ops", prog.Funcs[name].OpCount())
		}
		fc, err := scheduleFunc(prog, prog.Funcs[name], m, opts)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("scheduling %s: %w", name, err)
		}
		code.Funcs[name] = fc
		if opts.Span != nil {
			sp.SetInt("bundles", len(fc.Bundles))
			sp.SetInt("sched_ops", fc.OpCount())
			kernels := 0
			for _, sec := range fc.Sections {
				if sec.Kind == KindKernel {
					kernels++
				}
			}
			sp.SetInt("kernels", kernels)
		}
		sp.End()
	}
	if err := code.Validate(); err != nil {
		return nil, err
	}
	return code, nil
}

func scheduleFunc(prog *ir.Program, f *ir.Func, m *machine.Desc, opts Options) (*FuncCode, error) {
	alias := AnalyzeAlias(prog, f)
	fc := &FuncCode{F: f, Start: map[ir.BlockID]int{}, fallTo: map[int]int{}}

	// Ensure the entry block is laid out first.
	blocks := make([]*ir.Block, 0, len(f.Blocks))
	var entry *ir.Block
	for _, b := range f.Blocks {
		if b.ID == f.Entry {
			entry = b
		} else {
			blocks = append(blocks, b)
		}
	}
	if entry == nil {
		return nil, fmt.Errorf("missing entry block")
	}
	blocks = append([]*ir.Block{entry}, blocks...)

	type pendingFall struct {
		bundle int
		target ir.BlockID
	}
	var falls []pendingFall

	for _, b := range blocks {
		sections := scheduleBlock(prog, f, b, m, alias, opts)
		fc.Start[b.ID] = len(fc.Bundles)
		for _, sec := range sections {
			sec.Start = len(fc.Bundles)
			fc.Bundles = append(fc.Bundles, sec.Bundles...)
			fc.Sections = append(fc.Sections, sec)
			// Kernel back edge resolves to its own start.
			if sec.Kind == KindKernel {
				for _, bun := range sec.Bundles {
					for _, so := range bun.Ops {
						if so.Op.Opcode == ir.OpBrCLoop {
							so.TargetBundle = sec.Start
						}
					}
				}
			}
		}
		if len(fc.Bundles) == fc.Start[b.ID] {
			// Never emit zero bundles for a block (branch targets must
			// resolve): pad one empty bundle.
			fc.Bundles = append(fc.Bundles, &Bundle{})
		}
		if b.Fall != 0 {
			falls = append(falls, pendingFall{bundle: len(fc.Bundles) - 1, target: b.Fall})
		} else {
			fc.fallTo[len(fc.Bundles)-1] = -1
		}
	}

	// Resolve fallthroughs and branch targets.
	for _, pf := range falls {
		t, ok := fc.Start[pf.target]
		if !ok {
			return nil, fmt.Errorf("fallthrough to missing block B%d", pf.target)
		}
		fc.fallTo[pf.bundle] = t
	}
	for _, bun := range fc.Bundles {
		for _, so := range bun.Ops {
			if so.Op.IsBranch() && !so.resolved {
				t, ok := fc.Start[so.Op.Target]
				if !ok {
					return nil, fmt.Errorf("branch to missing block B%d", so.Op.Target)
				}
				so.TargetBundle = t
				so.resolved = true
			}
		}
	}
	fc.finalizeFalls()
	return fc, nil
}

// scheduleBlock schedules one IR block into one or more sections.
func scheduleBlock(prog *ir.Program, f *ir.Func, b *ir.Block, m *machine.Desc,
	alias *AliasInfo, opts Options) []*BlockCode {

	if opts.EnableModulo {
		if secs := tryModuloBlock(prog, f, b, m, alias, opts); secs != nil {
			return secs
		}
	}
	// Straight-line (or non-pipelined loop) list scheduling.
	selfLoop := false
	if last := b.LastOp(); last != nil && last.IsBranch() && last.Target == b.ID {
		selfLoop = true
	}
	d := BuildDAG(b.Ops, m, alias, selfLoop)
	placed, length := ListSchedule(d, m)
	bundles := make([]*Bundle, length)
	for i := range bundles {
		bundles[i] = &Bundle{}
	}
	for i, op := range b.Ops {
		so := &SOp{Op: op, Slot: placed[i].slot, TargetBundle: -1}
		if !op.IsBranch() {
			so.TargetBundle = 0
			so.resolved = true
		}
		bundles[placed[i].cycle].Ops = append(bundles[placed[i].cycle].Ops, so)
	}
	return []*BlockCode{{Block: b.ID, Kind: KindStraight, Bundles: bundles}}
}

// tryModuloBlock recognizes a pipelinable counted loop and emits
// prologue/kernel/epilogue sections. Returns nil when not applicable.
func tryModuloBlock(prog *ir.Program, f *ir.Func, b *ir.Block, m *machine.Desc,
	alias *AliasInfo, opts Options) []*BlockCode {

	last := b.LastOp()
	if last == nil || last.Opcode != ir.OpBrCLoop || last.Target != b.ID || last.Guard != 0 {
		return nil
	}
	body := b.Ops[:len(b.Ops)-1]
	for _, op := range body {
		if op.IsBranch() || op.Opcode == ir.OpCall || op.Opcode == ir.OpRet || op.IsBufferOp() {
			return nil // side exits and calls prevent pipelining
		}
	}
	cnt := last.Src[0]
	// The counter must be used only by the loop-back branch, defined
	// once outside the loop by a literal move.
	var init *ir.Op
	for _, ob := range f.Blocks {
		for _, op := range ob.Ops {
			if op == last {
				continue
			}
			for _, s := range op.Src {
				if s == cnt {
					return nil
				}
			}
			for _, d := range op.Dest {
				if d != cnt {
					continue
				}
				if ob == b || init != nil || op.Opcode != ir.OpMov ||
					op.Guard != 0 || !op.HasImm || len(op.Src) != 0 {
					return nil
				}
				init = op
			}
		}
	}
	if init == nil {
		return nil
	}
	trips := init.Imm
	if trips < 2 {
		return nil
	}

	d := BuildDAG(body, m, alias, true)
	backend := opts.Backend
	if backend == nil {
		backend = Heuristic()
	}
	ks := backend.ScheduleLoop(d, m, opts.MaxII)
	if ks == nil || int64(ks.Stages) > trips {
		return nil
	}
	// A pipelined schedule must beat the non-pipelined length to be
	// worth the expansion.
	_, listLen := ListSchedule(BuildDAG(b.Ops, m, alias, true), m)
	if ks.II >= listLen {
		return nil
	}

	// Patch the counter: the kernel runs trips-stages+1 times.
	init.Imm = trips - int64(ks.Stages) + 1

	ii, S := ks.II, ks.Stages
	mkBundles := func(n int) []*Bundle {
		bs := make([]*Bundle, n)
		for i := range bs {
			bs[i] = &Bundle{}
		}
		return bs
	}
	stage := func(i int) int { return ks.Sigma[i] / ii }
	cyc := func(i int) int { return ks.Sigma[i] % ii }

	var sections []*BlockCode
	// Prologue: passes 0..S-2; pass P holds ops with stage <= P.
	if S > 1 {
		pro := &BlockCode{Block: b.ID, Kind: KindPrologue, Bundles: mkBundles((S - 1) * ii)}
		for p := 0; p < S-1; p++ {
			for i, op := range body {
				if stage(i) <= p {
					so := &SOp{Op: op, Slot: ks.Slot[i], TargetBundle: 0, resolved: true}
					pro.Bundles[p*ii+cyc(i)].Ops = append(pro.Bundles[p*ii+cyc(i)].Ops, so)
				}
			}
		}
		sections = append(sections, pro)
	}
	// Kernel: all ops plus the loop-back branch at cycle ii-1.
	ker := &BlockCode{Block: b.ID, Kind: KindKernel, Bundles: mkBundles(ii),
		II: ii, Stages: S, Proven: ks.Proven}
	for i, op := range body {
		so := &SOp{Op: op, Slot: ks.Slot[i], TargetBundle: 0, resolved: true}
		ker.Bundles[cyc(i)].Ops = append(ker.Bundles[cyc(i)].Ops, so)
	}
	ker.Bundles[ii-1].Ops = append(ker.Bundles[ii-1].Ops,
		&SOp{Op: last, Slot: ks.BranchSlot, TargetBundle: 0, resolved: true})
	sections = append(sections, ker)
	// Drain pad: flat time of the last landing write of iteration N-1 is
	// (N-1)*ii + max(sigma+lat); the epilogue ends at flat (N+S-1)*ii.
	// Pad so every write lands before control falls past the loop.
	maxLand := 0
	for i, op := range body {
		if len(op.Dest) == 0 && !op.IsPredDefine() {
			continue
		}
		if v := ks.Sigma[i] + ir.LatencyOf(op, m.Latency); v > maxLand {
			maxLand = v
		}
	}
	pad := maxLand - S*ii
	if pad < 0 {
		pad = 0
	}

	// Epilogue: passes e=0..S-2; pass e holds ops with stage >= e+1.
	if S > 1 {
		epi := &BlockCode{Block: b.ID, Kind: KindEpilogue, Bundles: mkBundles((S-1)*ii + pad)}
		for e := 0; e < S-1; e++ {
			for i, op := range body {
				if stage(i) >= e+1 {
					so := &SOp{Op: op, Slot: ks.Slot[i], TargetBundle: 0, resolved: true}
					epi.Bundles[e*ii+cyc(i)].Ops = append(epi.Bundles[e*ii+cyc(i)].Ops, so)
				}
			}
		}
		sections = append(sections, epi)
	} else if pad > 0 {
		// No epilogue (S == 1): pad after the kernel; the loop-back
		// branch in the kernel's last real bundle skips the pad, the
		// exit path drains through it.
		sections = append(sections, &BlockCode{Block: b.ID, Kind: KindEpilogue,
			Bundles: mkBundles(pad)})
	}
	return sections
}
