package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// maxQueueDepth caps the admission queue. The internal job channel is
// sized to it once at startup, so hot reloads can lower or raise the
// effective depth without reallocating the channel.
const maxQueueDepth = 4096

// Config is lpbufd's configuration, loadable from a JSON file and
// hot-reloadable on SIGHUP. Admission fields (QueueDepth, MaxPerClient,
// Workers, Verify) apply to reloads immediately; Listen, StoreDir and
// MaxJobs are bound at startup and a reload that changes them reports
// which changes were ignored.
type Config struct {
	// Listen is the HTTP listen address.
	Listen string `json:"listen"`
	// StoreDir roots the content-addressed artifact store.
	StoreDir string `json:"store_dir"`
	// MaxJobs bounds concurrently executing jobs (worker goroutines).
	MaxJobs int `json:"max_jobs"`
	// Workers bounds each job's runner pool (compiles/simulations in
	// flight within one job). 0 means GOMAXPROCS.
	Workers int `json:"workers"`
	// QueueDepth bounds queued-but-unstarted jobs; past it submissions
	// get 429 + Retry-After.
	QueueDepth int `json:"queue_depth"`
	// MaxPerClient bounds one client's active (queued or running) jobs.
	MaxPerClient int `json:"max_per_client"`
	// Verify forces internal/verify phase checkpoints on every job.
	Verify bool `json:"verify"`
}

// DefaultConfig is the baseline every load starts from.
func DefaultConfig() Config {
	return Config{
		Listen:       "127.0.0.1:7788",
		StoreDir:     "lpbufd-store",
		MaxJobs:      2,
		Workers:      0,
		QueueDepth:   64,
		MaxPerClient: 16,
	}
}

// LoadConfig reads a JSON config file over the defaults. Unknown fields
// are rejected — a typoed knob should fail loudly, not silently keep
// its default.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	cfg := DefaultConfig()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("config %s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks field ranges.
func (c Config) Validate() error {
	if c.Listen == "" {
		return fmt.Errorf("listen must be set")
	}
	if c.StoreDir == "" {
		return fmt.Errorf("store_dir must be set")
	}
	if c.MaxJobs < 1 {
		return fmt.Errorf("max_jobs %d, want >= 1", c.MaxJobs)
	}
	if c.Workers < 0 {
		return fmt.Errorf("workers %d, want >= 0", c.Workers)
	}
	if c.QueueDepth < 1 || c.QueueDepth > maxQueueDepth {
		return fmt.Errorf("queue_depth %d, want 1..%d", c.QueueDepth, maxQueueDepth)
	}
	if c.MaxPerClient < 1 {
		return fmt.Errorf("max_per_client %d, want >= 1", c.MaxPerClient)
	}
	return nil
}
