package service

import (
	"sync"
	"time"
)

// Event is one entry of a job's progress stream, serialized over SSE.
// State events mark lifecycle transitions; progress events relay the
// runner's per-job (compile/simulate/reduce) stream.
type Event struct {
	Seq   int64  `json:"seq"`
	Time  string `json:"time"` // RFC 3339, nanoseconds
	Type  string `json:"type"` // "state" or "progress"
	JobID string `json:"job"`
	// State is set on lifecycle events.
	State State `json:"state,omitempty"`
	// Key/Kind identify the runner sub-job on progress events
	// ("simulate/g724dec/aggressive@64", "simulate"); Phase carries the
	// runner event type (start/done/retry/fail).
	Key       string  `json:"key,omitempty"`
	Kind      string  `json:"kind,omitempty"`
	Phase     string  `json:"phase,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Err       string  `json:"err,omitempty"`
	// Dropped is set on synthetic "truncated" marker events: how many of
	// the stream's oldest events were dropped from the replay buffer
	// before this subscriber attached.
	Dropped int64 `json:"dropped,omitempty"`
}

// maxEventHistory bounds per-job replay memory. A full -all job emits a
// few hundred runner events; beyond the cap the oldest are dropped and
// the hub remembers how many, so late subscribers know the stream is
// truncated.
const maxEventHistory = 1024

// eventHub fans one job's events out to any number of SSE subscribers.
// New subscribers first replay buffered history, then receive live
// events in order. Publishing never blocks: a subscriber that cannot
// keep up has events dropped (counted per hub), which keeps one stalled
// client from wedging the job.
type eventHub struct {
	mu      sync.Mutex
	seq     int64
	history []Event
	trimmed int64
	subs    map[chan Event]struct{}
	dropped int64
	closed  bool
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[chan Event]struct{}{}}
}

// publish stamps and delivers an event to history and all subscribers.
// No-op after close.
func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	e.Seq = h.seq
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	h.history = append(h.history, e)
	if len(h.history) > maxEventHistory {
		trim := len(h.history) - maxEventHistory
		h.history = append(h.history[:0:0], h.history[trim:]...)
		h.trimmed += int64(trim)
	}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			h.dropped++
		}
	}
}

// subscribe returns a channel that replays history and then follows the
// live stream, plus a cancel function. The channel is closed when the
// hub closes (job reached a terminal state) or on cancel. When history
// has overflowed, the replay is prefixed with a synthetic "truncated"
// marker carrying the drop count, so a late subscriber can tell a
// complete replay from one with a hole at the front.
func (h *eventHub) subscribe() (<-chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Capacity covers the full replay (plus marker) and live slack so
	// replay never blocks under the hub lock.
	ch := make(chan Event, len(h.history)+maxEventHistory+1)
	if h.trimmed > 0 && len(h.history) > 0 {
		first := h.history[0]
		ch <- Event{
			// One below the oldest surviving event, so sequence numbers
			// stay strictly increasing through the marker.
			Seq:     first.Seq - 1,
			Time:    first.Time,
			Type:    "truncated",
			JobID:   first.JobID,
			Dropped: h.trimmed,
		}
	}
	for _, e := range h.history {
		ch <- e
	}
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
	return ch, cancel
}

// close ends the stream: all subscriber channels close after in-order
// delivery, and further publishes are dropped.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = map[chan Event]struct{}{}
}

// Dropped reports events lost to slow subscribers.
func (h *eventHub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
