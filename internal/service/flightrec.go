package service

import (
	"sync"
	"time"
)

// FlightRecSchema versions the /debug/flightrecorder document.
const FlightRecSchema = "lpbuf.flightrec/v1"

// flightRecCapacity bounds the ring. 512 records cover the interesting
// window after an incident (a 429 storm, a drain) without the recorder
// ever growing with load.
const flightRecCapacity = 512

// FlightRecord is one entry of the flight recorder: a job lifecycle
// transition or an admission rejection, stamped in arrival order.
type FlightRecord struct {
	Seq  int64  `json:"seq"`
	Time string `json:"time"` // RFC 3339, nanoseconds
	// Kind is "transition" (a job changed state) or "rejected" (an
	// admission failure — no job was created).
	Kind    string `json:"kind"`
	JobID   string `json:"job,omitempty"`
	Client  string `json:"client,omitempty"`
	From    State  `json:"from,omitempty"`
	To      State  `json:"to,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Code and Reason describe a rejection (the HTTP status the client
	// saw and why).
	Code   int    `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Err carries the failure/cancellation cause on terminal transitions.
	Err string `json:"err,omitempty"`
}

// flightRecorder is a bounded mutex ring of recent FlightRecords — the
// post-mortem buffer served at /debug/flightrecorder. Recording is
// O(1) and never blocks on readers.
type flightRecorder struct {
	mu    sync.Mutex
	buf   []FlightRecord
	next  int   // ring write index
	total int64 // records ever written (== next Seq)
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity <= 0 {
		capacity = flightRecCapacity
	}
	return &flightRecorder{buf: make([]FlightRecord, 0, capacity)}
}

// record stamps and stores one record, overwriting the oldest when the
// ring is full.
func (f *flightRecorder) record(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	rec.Seq = f.total
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, rec)
		return
	}
	f.buf[f.next] = rec
	f.next = (f.next + 1) % len(f.buf)
}

// records returns up to n retained records, oldest first (n <= 0 means
// all), plus the total ever recorded so readers can tell how much the
// ring has forgotten.
func (f *flightRecorder) records(n int) (total int64, out []FlightRecord) {
	if f == nil {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out = make([]FlightRecord, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return f.total, out
}
