package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"lpbuf/internal/obs"
)

// maxRequestBody bounds job submissions; specs are small.
const maxRequestBody = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs              submit a lpbuf.job/v1 spec (?wait=1 blocks)
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's lpbuf.jobstatus/v1
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/jobs/{id}/events  SSE progress stream (replay + live)
//	GET    /v1/jobs/{id}/artifact  the lpbuf.artifact/v1 result
//	GET    /v1/jobs/{id}/trace   the job's span tree (Perfetto JSON)
//	GET    /v1/jobs/{id}/simprofile  the job's sampled guest-PMU profile
//	                             (lpbuf.simprofile/v1 JSON)
//	GET    /metrics              registry snapshot (JSON; ?format=prom
//	                             for Prometheus text exposition)
//	GET    /debug/flightrecorder recent transitions/rejections
//	                             (?kind=transition|rejection, ?limit=K;
//	                             ?n=K is a legacy alias of limit)
//	GET    /healthz              liveness/drain status
//
// Every route runs behind the observability middleware (per-route
// latency/size histograms, status-class counters, in-flight gauge,
// one structured log record per request); the route label is the
// registration pattern, threaded explicitly so label cardinality stays
// bounded by this table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	add := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	add("POST /v1/jobs", s.handleSubmit)
	add("GET /v1/jobs", s.handleList)
	add("GET /v1/jobs/{id}", s.handleStatus)
	add("DELETE /v1/jobs/{id}", s.handleCancel)
	add("GET /v1/jobs/{id}/events", s.handleEvents)
	add("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	add("GET /v1/jobs/{id}/trace", s.handleTrace)
	add("GET /v1/jobs/{id}/simprofile", s.handleSimProfile)
	add("GET /metrics", s.handleMetrics)
	add("GET /debug/flightrecorder", s.handleFlightRecorder)
	add("GET /healthz", s.handleHealthz)
	// Catch-all so unmatched requests are still counted and logged,
	// under a fixed label instead of unbounded request paths.
	mux.Handle("/", s.instrument("other", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
		})))
	return mux
}

// writeJSON writes v as indented JSON with a trailing newline (the
// same framing every artifact in this repo uses).
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	j, err := s.SubmitTraced(spec, host, r.Header.Get(TraceHeader))
	if err != nil {
		var rej *RejectError
		if asReject(err, &rej) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int(rej.RetryAfter/time.Second)))
			writeError(w, rej.Code, "%s", rej.Reason)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set(TraceHeader, j.TraceID())
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Status())
		case <-r.Context().Done():
			// Client went away; the job keeps running.
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.Status())
}

// asReject unwraps a RejectError.
func asReject(err error, out **RejectError) bool {
	rej, ok := err.(*RejectError)
	if ok {
		*out = rej
	}
	return ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	canceled := s.Cancel(id)
	j, _ := s.Get(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"canceled": canceled,
		"status":   j.Status(),
	})
}

// handleEvents streams a job's progress as Server-Sent Events: history
// replay first, then live events, closing when the job reaches a
// terminal state. Event framing: `event: <type>` + `data: <Event JSON>`.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := j.hub.subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return // terminal state reached; stream complete
			}
			fmt.Fprintf(w, "event: %s\ndata: ", e.Type)
			if err := enc.Encode(e); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusConflict, "job %s %s: %s", j.ID(), st.State, st.Error)
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s still %s", j.ID(), st.State)
		return
	}
	data, err := s.store.Get(j.Key())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "artifact missing from store: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", `"`+j.Key()+`"`)
	w.Header().Set("X-Lpbuf-Cache", cacheHeader(st))
	w.Write(data)
}

// cacheHeader summarizes how the artifact was produced.
func cacheHeader(st JobStatus) string {
	switch {
	case st.CacheHit:
		return "store-hit"
	case st.Shared:
		return "inflight-dedup"
	default:
		return "computed"
	}
}

// handleTrace serves a job's span tree (plus its sim-event tail) as
// Chrome trace-event JSON, loadable in Perfetto. Available from
// admission on — a running job serves a partial tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	tr := j.scope.Trace()
	if tr == nil {
		writeError(w, http.StatusNotFound, "job %s has no trace", j.ID())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, j.TraceID())
	// A finished build's sampled PMU profile rides along as Perfetto
	// counter tracks (fetch energy, buffer residency, redirect penalty).
	var counters []obs.CounterSeries
	if doc := j.SimProfile(); doc != nil {
		counters = doc.CounterSeries(nil)
	}
	if err := obs.WriteChromeTraceCounters(w, tr, j.scope.Sim(), counters); err != nil {
		s.slog().Error("trace export failed", "job", j.ID(), "err", err)
	}
}

// handleSimProfile serves a job's sampled guest-PMU profile
// (lpbuf.simprofile/v1). Jobs whose artifact came from the store or an
// in-flight leader never simulated anything themselves and answer 404.
func (s *Server) handleSimProfile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	doc := j.SimProfile()
	if doc == nil {
		writeError(w, http.StatusNotFound,
			"job %s has no sim profile (not built by this job: store hit, dedup, or still running)", j.ID())
		return
	}
	data, err := doc.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "simprofile: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, j.TraceID())
	w.Write(data)
}

// handleFlightRecorder serves the bounded ring of recent job lifecycle
// transitions and admission rejections. ?kind=transition|rejection
// filters server-side (the record vocabulary "rejected" is accepted
// too); ?limit=K keeps the newest K after filtering, with ?n=K as a
// legacy alias.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	limit := 0
	for _, param := range []string{"n", "limit"} {
		if q := r.URL.Query().Get(param); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				writeError(w, http.StatusBadRequest, "bad %s %q", param, q)
				return
			}
			limit = v
		}
	}
	kind := ""
	switch q := r.URL.Query().Get("kind"); q {
	case "":
	case "transition":
		kind = "transition"
	case "rejection", "rejected":
		kind = "rejected"
	default:
		writeError(w, http.StatusBadRequest, "bad kind %q (transition, rejection)", q)
		return
	}
	// Filter before trimming so `limit` means "newest K of the requested
	// kind", not "matching entries among the newest K of everything".
	total, records := s.flightrec.records(0)
	if kind != "" {
		kept := records[:0]
		for _, rec := range records {
			if rec.Kind == kind {
				kept = append(kept, rec)
			}
		}
		records = kept
	}
	if limit > 0 && len(records) > limit {
		records = records[len(records)-limit:]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema":   FlightRecSchema,
		"capacity": flightRecCapacity,
		"total":    total,
		"records":  records,
	})
}

// handleMetrics serves the registry snapshot: stable JSON by default,
// Prometheus text exposition with ?format=prom. JSON map keys marshal
// sorted, so identical registries produce byte-identical documents.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	case "prom":
		var buf bytes.Buffer
		if err := obs.WriteProm(&buf, s.reg.Snapshot()); err != nil {
			writeError(w, http.StatusInternalServerError, "prom exposition: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (json, prom)", format)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, running := s.queued, s.running
	draining := s.draining
	jobs := len(s.jobs)
	s.mu.Unlock()
	cfg := s.Config()
	stored, _ := s.store.Len()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"draining":       draining,
		"uptime_seconds": int64(time.Since(s.started) / time.Second),
		"jobs":           jobs,
		"queued":         queued,
		"running":        running,
		"stored":         stored,
		"queue_depth":    cfg.QueueDepth,
		"max_jobs":       cfg.MaxJobs,
		"max_per_client": cfg.MaxPerClient,
	})
}
