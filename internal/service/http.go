package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// maxRequestBody bounds job submissions; specs are small.
const maxRequestBody = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs              submit a lpbuf.job/v1 spec (?wait=1 blocks)
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's lpbuf.jobstatus/v1
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/jobs/{id}/events  SSE progress stream (replay + live)
//	GET    /v1/jobs/{id}/artifact  the lpbuf.artifact/v1 result
//	GET    /metrics              stable-JSON registry snapshot
//	GET    /healthz              liveness/drain status
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON writes v as indented JSON with a trailing newline (the
// same framing every artifact in this repo uses).
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	j, err := s.Submit(spec, host)
	if err != nil {
		var rej *RejectError
		if asReject(err, &rej) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int(rej.RetryAfter/time.Second)))
			writeError(w, rej.Code, "%s", rej.Reason)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Status())
		case <-r.Context().Done():
			// Client went away; the job keeps running.
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.Status())
}

// asReject unwraps a RejectError.
func asReject(err error, out **RejectError) bool {
	rej, ok := err.(*RejectError)
	if ok {
		*out = rej
	}
	return ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	canceled := s.Cancel(id)
	j, _ := s.Get(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"canceled": canceled,
		"status":   j.Status(),
	})
}

// handleEvents streams a job's progress as Server-Sent Events: history
// replay first, then live events, closing when the job reaches a
// terminal state. Event framing: `event: <type>` + `data: <Event JSON>`.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := j.hub.subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return // terminal state reached; stream complete
			}
			fmt.Fprintf(w, "event: %s\ndata: ", e.Type)
			if err := enc.Encode(e); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusConflict, "job %s %s: %s", j.ID(), st.State, st.Error)
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s still %s", j.ID(), st.State)
		return
	}
	data, err := s.store.Get(j.Key())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "artifact missing from store: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", `"`+j.Key()+`"`)
	w.Header().Set("X-Lpbuf-Cache", cacheHeader(st))
	w.Write(data)
}

// cacheHeader summarizes how the artifact was produced.
func cacheHeader(st JobStatus) string {
	switch {
	case st.CacheHit:
		return "store-hit"
	case st.Shared:
		return "inflight-dedup"
	default:
		return "computed"
	}
}

// handleMetrics serves the registry snapshot. Map keys marshal sorted,
// so identical registries produce byte-identical documents.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, running := s.queued, s.running
	draining := s.draining
	jobs := len(s.jobs)
	s.mu.Unlock()
	cfg := s.Config()
	stored, _ := s.store.Len()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"draining":       draining,
		"uptime_seconds": int64(time.Since(s.started) / time.Second),
		"jobs":           jobs,
		"queued":         queued,
		"running":        running,
		"stored":         stored,
		"queue_depth":    cfg.QueueDepth,
		"max_jobs":       cfg.MaxJobs,
		"max_per_client": cfg.MaxPerClient,
	})
}
