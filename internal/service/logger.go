package service

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// printfHandler adapts a printf-style log function to slog.Handler so
// SetLogger (used by tests with t.Logf, and by default log.Printf)
// keeps working now that the server logs structured records. Records
// render as "msg k=v k=v"; Debug records are suppressed to keep
// printf-style logs at their historical volume.
type printfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h printfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h printfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	appendAttr := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		appendAttr(a)
	}
	r.Attrs(appendAttr)
	h.logf("%s", b.String())
	return nil
}

func (h printfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr{}, h.attrs...), attrs...)
	return printfHandler{logf: h.logf, attrs: merged}
}

func (h printfHandler) WithGroup(name string) slog.Handler {
	// Groups are rare in this codebase; flatten them.
	return h
}
