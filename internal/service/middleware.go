package service

import (
	"log/slog"
	"net/http"
	"time"

	"lpbuf/internal/obs"
)

// statusClasses pre-names the per-route status-class counters so the
// hot path is a map lookup, never a fmt.Sprintf.
var statusClasses = [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// routeInstruments is one route's pre-created HTTP instruments.
type routeInstruments struct {
	latency *obs.Histogram // request latency, microseconds
	bytes   *obs.Histogram // response body size, bytes
	classes [len(statusClasses)]*obs.Counter
}

// instrument wraps a handler with the HTTP observability layer: a
// per-route latency histogram (`http.latency_us{route=...}`), response
// size histogram (`http.resp_bytes{route=...}`), status-class counters
// (`http.responses{route=...,class=...}`), the global `http.in_flight`
// gauge, and one structured log record per request. The route label is
// the registration pattern, threaded explicitly (not derived from the
// request) so label cardinality is bounded by the route table.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	ri := &routeInstruments{
		latency: s.reg.Histogram(`http.latency_us{route="` + route + `"}`),
		bytes:   s.reg.Histogram(`http.resp_bytes{route="` + route + `"}`),
	}
	for i, class := range statusClasses {
		ri.classes[i] = s.reg.Counter(
			`http.responses{route="` + route + `",class="` + class + `"}`)
	}
	quiet := route == "GET /healthz" || route == "GET /metrics"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.gInFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		s.gInFlight.Add(-1)

		dur := time.Since(start)
		ri.latency.Observe(int64(dur / time.Microsecond))
		ri.bytes.Observe(sw.bytes)
		if c := sw.status()/100 - 1; c >= 0 && c < len(ri.classes) {
			ri.classes[c].Inc()
		}

		level := slog.LevelInfo
		switch {
		case sw.status() >= 500:
			level = slog.LevelWarn
		case quiet:
			level = slog.LevelDebug
		}
		attrs := []any{
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", sw.status(),
			"dur_ms", float64(dur) / float64(time.Millisecond),
			"bytes", sw.bytes,
			"remote", r.RemoteAddr,
		}
		if tid := r.Header.Get(TraceHeader); tid != "" {
			attrs = append(attrs, "trace", tid)
		}
		s.slog().Log(r.Context(), level, "http request", attrs...)
	})
}

// statusWriter records the status code and body size as they pass
// through, and forwards Flush so SSE streaming keeps working behind
// the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// status returns the response code (200 if the handler never set one).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}
