package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
)

// chromeTraceFile mirrors the Perfetto JSON the trace endpoint serves.
type chromeTraceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestJobTraceOverHTTP is the tracing acceptance test: a submission
// carrying an X-Lpbuf-Trace header gets that ID echoed back, stamped on
// the job's root span, and the span tree (queue_wait, store_lookup,
// build) is retrievable as Perfetto JSON from /v1/jobs/{id}/trace.
// Terminal status carries per-job resource accounting.
func TestJobTraceOverHTTP(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	s.build = func(j *Job) ([]byte, error) {
		return []byte("{\"ok\":true}\n"), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "cafe1234deadbeef"
	body, err := json.Marshal(JobSpec{Figures: []string{"3"}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	if got := resp.Header.Get(TraceHeader); got != traceID {
		t.Fatalf("submit echoed trace %q, want %q", got, traceID)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if st.TraceID != traceID {
		t.Fatalf("status trace_id %q, want %q", st.TraceID, traceID)
	}
	if want := "/v1/jobs/" + st.ID + "/trace"; st.TraceURL != want {
		t.Fatalf("status trace_url %q, want %q", st.TraceURL, want)
	}
	if st.Resources == nil {
		t.Fatal("terminal status has no resources section")
	}
	if st.Resources.Provenance != "computed" {
		t.Fatalf("resources provenance %q, want computed", st.Resources.Provenance)
	}
	if st.Resources.WallMS < 0 || st.Resources.QueueMS < 0 {
		t.Fatalf("negative resource times: %+v", st.Resources)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("terminal status does not validate: %v", err)
	}

	trResp, err := http.Get(ts.URL + st.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	trBytes, err := io.ReadAll(trResp.Body)
	trResp.Body.Close()
	if trResp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("trace fetch: %s (%v)", trResp.Status, err)
	}
	if got := trResp.Header.Get(TraceHeader); got != traceID {
		t.Fatalf("trace endpoint header %q, want %q", got, traceID)
	}
	var file chromeTraceFile
	if err := json.Unmarshal(trBytes, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string]map[string]any{}
	for _, e := range file.TraceEvents {
		if e.Ph == "X" {
			spans[e.Name] = e.Args
		}
	}
	root, ok := spans["job"]
	if !ok {
		t.Fatalf("no root job span; spans: %v", spans)
	}
	if got := root["trace_id"]; got != traceID {
		t.Fatalf("root span trace_id %v, want %q", got, traceID)
	}
	if got := root["state"]; got != string(StateDone) {
		t.Fatalf("root span state %v, want done", got)
	}
	for _, name := range []string{"queue_wait", "store_lookup", "build", "store_write"} {
		if _, ok := spans[name]; !ok {
			t.Errorf("span %q missing from trace; have %v", name, spans)
		}
	}
}

// TestTraceIDMintedWhenInvalid pins the header validation: a malformed
// client trace ID is replaced with a server-minted one rather than
// propagated or rejected.
func TestTraceIDMintedWhenInvalid(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	s.build = func(j *Job) ([]byte, error) { return []byte("{}\n"), nil }

	j, err := s.SubmitTraced(JobSpec{Figures: []string{"3"}}, "test", "not a valid id!")
	if err != nil {
		t.Fatal(err)
	}
	id := j.TraceID()
	if id == "" || id == "not a valid id!" {
		t.Fatalf("invalid header produced trace ID %q", id)
	}
	if len(id) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex chars", id)
	}
	waitState(t, j, StateDone)
}

// TestPromExposition scrapes /metrics?format=prom after a job and runs
// the page through the shared CheckProm validator — the same gate
// `obscheck -prom` applies in CI.
func TestPromExposition(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	s.build = func(j *Job) ([]byte, error) { return []byte("{}\n"), nil }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, resp := submitHTTP(t, ts, JobSpec{Figures: []string{"3"}}, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("prom scrape: %s (%v)", resp.Status, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q, want text exposition v0.0.4", ct)
	}
	sum, err := obs.CheckProm(page)
	if err != nil {
		t.Fatalf("prom page fails validation: %v\n%s", err, page)
	}
	if sum.Families == 0 || sum.Samples == 0 {
		t.Fatalf("empty prom page: %+v", sum)
	}
	for _, want := range []string{
		"lpbuf_service_jobs_accepted 1",
		`lpbuf_http_latency_us_bucket{route="POST /v1/jobs"`,
		`lpbuf_http_responses{class="2xx",route="POST /v1/jobs"} 1`,
		"lpbuf_http_in_flight 1", // this very scrape
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("prom page missing %q", want)
		}
	}

	// Default stays JSON (existing scrapers), unknown formats are 400.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type %q, want application/json", ct)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || snap.Counters["service.jobs_accepted"] != 1 {
		t.Fatalf("default /metrics no longer JSON: %v %v", err, snap.Counters)
	}
	resp, err = http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %s, want 400", resp.Status)
	}
}

// TestFlightRecorder drives a rejection and a full job lifecycle, then
// reads both back from /debug/flightrecorder, newest-K included.
func TestFlightRecorder(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1, MaxPerClient: 1})
	release := make(chan struct{})
	s.build = blockingBuild(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Figures: []string{"3"}}
	j, err := s.Submit(spec, "alice")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	if _, err := s.Submit(JobSpec{Figures: []string{"5"}}, "alice"); err == nil {
		t.Fatal("second job for capped client was admitted")
	}
	close(release)
	waitState(t, j, StateDone)

	resp, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Schema   string         `json:"schema"`
		Capacity int            `json:"capacity"`
		Total    int64          `json:"total"`
		Records  []FlightRecord `json:"records"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Schema != FlightRecSchema || dump.Capacity != flightRecCapacity {
		t.Fatalf("flight recorder header: %+v", dump)
	}
	if dump.Total != int64(len(dump.Records)) {
		t.Fatalf("total %d but %d records (no overwrite expected)", dump.Total, len(dump.Records))
	}
	var kinds []string
	var sawReject bool
	for i, rec := range dump.Records {
		if rec.Seq != int64(i)+1 {
			t.Fatalf("record %d has seq %d (not oldest-first)", i, rec.Seq)
		}
		kinds = append(kinds, rec.Kind)
		if rec.Kind == "rejected" {
			sawReject = true
			if rec.Client != "alice" || rec.Code == 0 || rec.Reason == "" {
				t.Fatalf("rejection record incomplete: %+v", rec)
			}
		}
		if rec.Kind == "transition" && rec.JobID != j.ID() {
			t.Fatalf("transition for unknown job: %+v", rec)
		}
	}
	if !sawReject {
		t.Fatalf("no rejection recorded; kinds %v", kinds)
	}
	last := dump.Records[len(dump.Records)-1]
	if last.Kind != "transition" || last.To != StateDone {
		t.Fatalf("last record %+v, want transition to done", last)
	}

	resp, err = http.Get(ts.URL + "/debug/flightrecorder?n=1")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil || len(dump.Records) != 1 {
		t.Fatalf("?n=1 returned %d records (%v)", len(dump.Records), err)
	}
	if dump.Records[0].Seq != last.Seq {
		t.Fatalf("?n=1 returned seq %d, want newest %d", dump.Records[0].Seq, last.Seq)
	}

	resp, err = http.Get(ts.URL + "/debug/flightrecorder?n=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?n=0: %s, want 400", resp.Status)
	}

	// Server-side kind filtering: ?kind=rejection returns only the
	// admission rejections, newest-limit of that kind (not a trim of the
	// mixed stream). "rejected" is accepted as an alias.
	for _, kind := range []string{"rejection", "rejected"} {
		resp, err = http.Get(ts.URL + "/debug/flightrecorder?kind=" + kind + "&limit=50")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(dump.Records) != 1 {
			t.Fatalf("kind=%s returned %d records, want the 1 rejection", kind, len(dump.Records))
		}
		if rec := dump.Records[0]; rec.Kind != "rejected" || rec.Client != "alice" {
			t.Fatalf("kind=%s record %+v", kind, rec)
		}
		if dump.Total == int64(len(dump.Records)) {
			t.Fatalf("filtered dump total %d must still count all kinds", dump.Total)
		}
	}

	// kind=transition&limit=1 is the newest transition even though the
	// unfiltered newest-1 could be of either kind.
	resp, err = http.Get(ts.URL + "/debug/flightrecorder?kind=transition&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil || len(dump.Records) != 1 {
		t.Fatalf("kind=transition&limit=1: %d records (%v)", len(dump.Records), err)
	}
	if rec := dump.Records[0]; rec.Kind != "transition" || rec.To != StateDone {
		t.Fatalf("newest transition %+v, want the done transition", rec)
	}

	resp, err = http.Get(ts.URL + "/debug/flightrecorder?kind=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?kind=bogus: %s, want 400", resp.Status)
	}
}

// TestJobSimProfileEndpoint pins the sampled-profile surface: a job
// whose build produced a PMU document advertises simprofile_url and
// the sampling config in its status and serves the document at
// /v1/jobs/{id}/simprofile; a job satisfied from the artifact store
// (which never ran a simulation) has neither and 404s.
func TestJobSimProfileEndpoint(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	s.build = func(j *Job) ([]byte, error) {
		p := pmu.NewProfile("g724enc/aggressive@256", 256)
		p.Cycles = 5000
		p.Record("postfilter", "postfilter@8", "postfilter:B", 8, pmu.StateReplay, 4)
		doc := pmu.NewDocument(pmu.Config{Period: 2048, Seed: 1}, []*pmu.Profile{p})
		j.mu.Lock()
		j.simprofile = doc
		j.mu.Unlock()
		return []byte("{\"ok\":true}\n"), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Figures: []string{"3"}}
	st, resp := submitHTTP(t, ts, spec, true)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: %s, state %s (%s)", resp.Status, st.State, st.Error)
	}
	if want := "/v1/jobs/" + st.ID + "/simprofile"; st.SimProfileURL != want {
		t.Fatalf("simprofile_url %q, want %q", st.SimProfileURL, want)
	}
	if st.Sampling == nil || st.Sampling.Period != 2048 {
		t.Fatalf("status sampling %+v, want period 2048", st.Sampling)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("status with sampling does not validate: %v", err)
	}

	profResp, err := http.Get(ts.URL + st.SimProfileURL)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(profResp.Body)
	profResp.Body.Close()
	if profResp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("simprofile fetch: %s (%v)", profResp.Status, err)
	}
	if ct := profResp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("simprofile Content-Type %q", ct)
	}
	doc, err := pmu.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("served document invalid: %v", err)
	}
	if len(doc.Profiles) != 1 || doc.Profiles[0].Label != "g724enc/aggressive@256" {
		t.Fatalf("served profiles %+v", doc.Profiles)
	}

	// The identical spec resolves from the store without simulating:
	// no profile to serve, and the status says so by omission.
	st2, resp2 := submitHTTP(t, ts, spec, true)
	if resp2.StatusCode != http.StatusOK || st2.State != StateDone {
		t.Fatalf("store-hit submit: %s, state %s", resp2.Status, st2.State)
	}
	if st2.SimProfileURL != "" || st2.Sampling != nil {
		t.Fatalf("store-hit status advertises a profile: %+v", st2)
	}
	missResp, err := http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/simprofile")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Fatalf("store-hit simprofile: %s, want 404", missResp.Status)
	}
}

// TestFlightRecorderOverwrite pins the ring bound: capacity+k records
// keep only the newest capacity, oldest-first, with total counting
// everything ever recorded.
func TestFlightRecorderOverwrite(t *testing.T) {
	fr := newFlightRecorder(flightRecCapacity)
	const extra = 7
	for i := 0; i < flightRecCapacity+extra; i++ {
		fr.record(FlightRecord{Kind: "transition", JobID: "j"})
	}
	total, recs := fr.records(0)
	if total != flightRecCapacity+extra {
		t.Fatalf("total %d, want %d", total, flightRecCapacity+extra)
	}
	if len(recs) != flightRecCapacity {
		t.Fatalf("kept %d records, want %d", len(recs), flightRecCapacity)
	}
	if recs[0].Seq != extra+1 || recs[len(recs)-1].Seq != total {
		t.Fatalf("window [%d, %d], want [%d, %d]",
			recs[0].Seq, recs[len(recs)-1].Seq, extra+1, total)
	}
}

// TestEventHistoryTruncationMarker pins SSE replay after history
// overflow: a late subscriber sees one synthetic "truncated" marker
// carrying the drop count, then the surviving history with no
// duplicated, reordered or re-replayed events.
func TestEventHistoryTruncationMarker(t *testing.T) {
	h := newEventHub()
	const overflow = 50
	for i := 0; i < maxEventHistory+overflow; i++ {
		h.publish(Event{Type: "progress", JobID: "j1", Key: "k"})
	}

	ch, cancel := h.subscribe()
	defer cancel()
	var got []Event
	for len(got) < maxEventHistory+1 {
		select {
		case e := <-ch:
			got = append(got, e)
		case <-time.After(5 * time.Second):
			t.Fatalf("replay stalled after %d events", len(got))
		}
	}
	marker := got[0]
	if marker.Type != "truncated" {
		t.Fatalf("first replayed event is %q, want truncated marker", marker.Type)
	}
	if marker.Dropped != overflow {
		t.Fatalf("marker dropped = %d, want %d", marker.Dropped, overflow)
	}
	if marker.JobID != "j1" {
		t.Fatalf("marker job %q, want j1", marker.JobID)
	}
	if marker.Seq != got[1].Seq-1 {
		t.Fatalf("marker seq %d does not precede first survivor %d", marker.Seq, got[1].Seq)
	}
	seen := map[int64]bool{marker.Seq: true}
	for i := 1; i < len(got); i++ {
		e := got[i]
		if e.Seq != got[i-1].Seq+1 {
			t.Fatalf("replay gap or reorder at %d: seq %d after %d", i, e.Seq, got[i-1].Seq)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in replay", e.Seq)
		}
		seen[e.Seq] = true
		if e.Type != "progress" {
			t.Fatalf("unexpected %q event mid-replay", e.Type)
		}
	}
	// Oldest survivor is exactly overflow+1 (seq counts from 1 and
	// `overflow` events were trimmed); newest is everything published.
	if first, last := got[1].Seq, got[len(got)-1].Seq; first != overflow+1 || last != maxEventHistory+overflow {
		t.Fatalf("replay window [%d, %d], want [%d, %d]",
			first, last, overflow+1, maxEventHistory+overflow)
	}

	// Live events continue the sequence with no re-replay.
	h.publish(Event{Type: "state", JobID: "j1", State: StateDone})
	select {
	case e := <-ch:
		if e.Type != "state" || e.Seq != maxEventHistory+overflow+1 {
			t.Fatalf("live event after replay: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live event never arrived")
	}

	// A subscriber attaching before any overflow sees no marker.
	fresh := newEventHub()
	fresh.publish(Event{Type: "progress", JobID: "j2"})
	ch2, cancel2 := fresh.subscribe()
	defer cancel2()
	if e := <-ch2; e.Type != "progress" {
		t.Fatalf("untruncated replay starts with %q, want progress", e.Type)
	}
}
