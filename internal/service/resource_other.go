//go:build !unix

package service

// cpuTimeNanos has no portable implementation off unix; jobs report
// no CPU time there (the field is omitempty).
func cpuTimeNanos() int64 { return 0 }
