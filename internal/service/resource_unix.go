//go:build unix

package service

import "syscall"

// cpuTimeNanos reads the process's cumulative CPU time (user + system)
// via getrusage. Per-job CPU accounting subtracts two samples around
// the job's execution window.
func cpuTimeNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
