package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lpbuf/internal/experiments"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/runner"
	"lpbuf/internal/service/store"
)

// TraceHeader is the request header propagating a client trace context
// into a job; the submit response echoes it back.
const TraceHeader = "X-Lpbuf-Trace"

// Per-job trace sink bounds. A full -all job emits a few hundred spans
// and the sim ring only needs the tail for the viewer, so these keep a
// busy daemon's per-job overhead small and fixed.
const (
	jobTraceEvents = 1 << 14
	jobSimRing     = 1 << 12
)

// Job is one submitted experiment job. Its mutable state is guarded by
// mu; the done channel closes exactly once when the job reaches a
// terminal state.
type Job struct {
	id      string
	client  string
	spec    JobSpec // normalized
	key     string
	traceID string
	hub     *eventHub
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	// scope is the job's private observability context: its own span
	// tree and sim ring (served at /v1/jobs/{id}/trace) plus a child
	// registry folded into the service registry at the terminal state.
	scope     *obs.Scope
	rootSpan  *obs.Span
	queueSpan *obs.Span

	mu         sync.Mutex
	state      State
	cacheHit   bool
	shared     bool
	errMsg     string
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	// Process-wide CPU/alloc samples taken when execution started;
	// zero-valued until then (sampled distinguishes a real zero).
	sampled     bool
	startCPU    int64
	startAllocs uint64
	// res is the final resource accounting, computed once at the
	// terminal transition.
	res *JobResources
	// simprofile is the job's sampled guest-PMU document, captured when
	// this job's own build ran (store hits and inflight-dedup followers
	// never executed a simulation, so they carry none). Kept on the job
	// rather than in the store artifact: the artifact must stay a pure
	// function of (spec, machine) while sampling is a property of the run.
	simprofile *pmu.Document
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content-address key.
func (j *Job) Key() string { return j.key }

// TraceID returns the job's trace context (client-propagated or
// generated at admission).
func (j *Job) TraceID() string { return j.traceID }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// SimProfile returns the job's sampled guest-PMU document, or nil when
// the job never executed its own simulation (store hit, inflight-dedup
// follower, canceled before the build finished).
func (j *Job) SimProfile() *pmu.Document {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.simprofile
}

// Status snapshots the job as a lpbuf.jobstatus/v1 value.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		Schema:   StatusSchema,
		ID:       j.id,
		State:    j.state,
		Key:      j.key,
		Spec:     j.spec,
		CacheHit: j.cacheHit,
		Shared:   j.shared,
		Error:    j.errMsg,
		TraceID:  j.traceID,
	}
	if !j.queuedAt.IsZero() {
		st.QueuedAt = j.queuedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.startedAt.IsZero() {
		st.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		st.ArtifactURL = "/v1/jobs/" + j.id + "/artifact"
	}
	if j.scope.Trace() != nil {
		st.TraceURL = "/v1/jobs/" + j.id + "/trace"
	}
	if j.simprofile != nil {
		st.SimProfileURL = "/v1/jobs/" + j.id + "/simprofile"
		cfg := j.simprofile.Sampling
		st.Sampling = &cfg
	}
	if j.res != nil {
		r := *j.res
		st.Resources = &r
	}
	return st
}

// resourcesLocked computes the job's resource accounting, called once
// under j.mu as the job reaches its terminal state (so the CPU/alloc
// deltas close exactly at the execution window's end).
func (j *Job) resourcesLocked() *JobResources {
	res := &JobResources{Provenance: "computed"}
	switch {
	case j.cacheHit:
		res.Provenance = "store-hit"
	case j.shared:
		res.Provenance = "inflight-dedup"
	}
	if !j.startedAt.IsZero() {
		res.WallMS = float64(j.finishedAt.Sub(j.startedAt)) / float64(time.Millisecond)
		res.QueueMS = float64(j.startedAt.Sub(j.queuedAt)) / float64(time.Millisecond)
	} else if !j.queuedAt.IsZero() {
		// Never started (canceled while queued): the whole life was
		// queue time.
		res.QueueMS = float64(j.finishedAt.Sub(j.queuedAt)) / float64(time.Millisecond)
	}
	if j.sampled {
		if cpu := cpuTimeNanos() - j.startCPU; cpu > 0 {
			res.CPUMS = float64(cpu) / float64(time.Millisecond)
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if d := ms.TotalAlloc - j.startAllocs; d <= 1<<62 {
			res.AllocBytes = int64(d)
		}
	}
	return res
}

// Server is the resident experiment service: admission control in
// front of a bounded job queue, a fixed pool of job workers, one
// process-wide experiments.Cache shared by every job's suite, and the
// content-addressed artifact store. Create with New, start workers with
// Start, serve Handler over HTTP, stop with Drain.
type Server struct {
	cfg       atomic.Pointer[Config]
	store     *store.Store
	reg       *obs.Registry
	obsSinks  *obs.Obs
	cache     *experiments.Cache
	flight    runner.Flight
	logf      func(format string, args ...any)
	slogger   atomic.Pointer[slog.Logger]
	flightrec *flightRecorder

	// build computes one job's artifact bytes. Tests override it to
	// control job duration; production uses (*Server).buildArtifact.
	build func(j *Job) ([]byte, error)

	cAccepted, cRejected   *obs.Counter
	cDone, cFailed         *obs.Counter
	cCanceled              *obs.Counter
	cStoreHits, cStoreMiss *obs.Counter
	cDedup                 *obs.Counter
	cReloads               *obs.Counter
	gQueued, gRunning      *obs.Gauge
	gInFlight              *obs.Gauge

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	queued    int
	running   int
	perClient map[string]int
	draining  bool
	queue     chan *Job
	nextID    int64

	wg        sync.WaitGroup
	startOnce sync.Once
	drainOnce sync.Once
	started   time.Time
}

// RejectError is an admission failure; the HTTP layer maps it to 429
// or 503 with a Retry-After header.
type RejectError struct {
	// Code is the HTTP status the rejection maps to (429 or 503).
	Code int
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
	Reason     string
}

func (e *RejectError) Error() string { return e.Reason }

// New creates a Server from a validated config, opening the store.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		store:     st,
		reg:       reg,
		obsSinks:  &obs.Obs{Reg: reg},
		cache:     experiments.NewCache(),
		logf:      log.Printf,
		jobs:      map[string]*Job{},
		perClient: map[string]int{},
		// Sized to the admission cap so enqueue-under-lock never blocks
		// regardless of reloaded queue depths.
		queue:      make(chan *Job, maxQueueDepth),
		cAccepted:  reg.Counter("service.jobs_accepted"),
		cRejected:  reg.Counter("service.jobs_rejected"),
		cDone:      reg.Counter("service.jobs_completed"),
		cFailed:    reg.Counter("service.jobs_failed"),
		cCanceled:  reg.Counter("service.jobs_canceled"),
		cStoreHits: reg.Counter("service.store_hits"),
		cStoreMiss: reg.Counter("service.store_misses"),
		cDedup:     reg.Counter("service.inflight_dedup"),
		cReloads:   reg.Counter("service.config_reloads"),
		gQueued:    reg.Gauge("service.jobs_queued"),
		gRunning:   reg.Gauge("service.jobs_running"),
		gInFlight:  reg.Gauge("http.in_flight"),
		flightrec:  newFlightRecorder(flightRecCapacity),
		started:    time.Now(),
	}
	s.cfg.Store(&cfg)
	s.slogger.Store(slog.New(printfHandler{logf: log.Printf}))
	s.build = s.buildArtifact
	return s, nil
}

// SetLogger replaces the server's log function (default log.Printf).
// Structured records render through it as "msg k=v" lines; use SetSlog
// for native structured output.
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
	s.slogger.Store(slog.New(printfHandler{logf: logf}))
}

// SetSlog replaces the server's structured logger (cmd/lpbufd installs
// a leveled text or JSON handler here).
func (s *Server) SetSlog(l *slog.Logger) {
	if l == nil {
		return
	}
	s.slogger.Store(l)
	s.logf = func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}

// slog returns the current structured logger.
func (s *Server) slog() *slog.Logger { return s.slogger.Load() }

// Config returns the current (possibly hot-reloaded) configuration.
func (s *Server) Config() Config { return *s.cfg.Load() }

// Registry exposes the service metrics registry (served at /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Store exposes the artifact store.
func (s *Server) Store() *store.Store { return s.store }

// Start launches the job workers. The worker count (MaxJobs) is bound
// here; admission fields stay hot-reloadable.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		n := s.Config().MaxJobs
		s.wg.Add(n)
		for i := 0; i < n; i++ {
			go func() {
				defer s.wg.Done()
				for j := range s.queue {
					s.runJob(j)
				}
			}()
		}
	})
}

// Reload applies a new configuration. Admission fields (QueueDepth,
// MaxPerClient, Workers, Verify) take effect immediately and are
// reported as "field: old -> new" entries in changed; changes to
// startup-bound fields (Listen, StoreDir, MaxJobs) are ignored and
// reported by name so the operator knows a restart is needed.
func (s *Server) Reload(next Config) (changed, ignored []string, err error) {
	if err := next.Validate(); err != nil {
		return nil, nil, err
	}
	cur := s.Config()
	if next.Listen != cur.Listen {
		ignored = append(ignored, "listen")
		next.Listen = cur.Listen
	}
	if next.StoreDir != cur.StoreDir {
		ignored = append(ignored, "store_dir")
		next.StoreDir = cur.StoreDir
	}
	if next.MaxJobs != cur.MaxJobs {
		ignored = append(ignored, "max_jobs")
		next.MaxJobs = cur.MaxJobs
	}
	if next.Workers != cur.Workers {
		changed = append(changed, fmt.Sprintf("workers: %d -> %d", cur.Workers, next.Workers))
	}
	if next.QueueDepth != cur.QueueDepth {
		changed = append(changed, fmt.Sprintf("queue_depth: %d -> %d", cur.QueueDepth, next.QueueDepth))
	}
	if next.MaxPerClient != cur.MaxPerClient {
		changed = append(changed, fmt.Sprintf("max_per_client: %d -> %d", cur.MaxPerClient, next.MaxPerClient))
	}
	if next.Verify != cur.Verify {
		changed = append(changed, fmt.Sprintf("verify: %t -> %t", cur.Verify, next.Verify))
	}
	s.cfg.Store(&next)
	s.cReloads.Inc()
	return changed, ignored, nil
}

// ReloadFile is Reload from a config file (the SIGHUP path).
func (s *Server) ReloadFile(path string) (changed, ignored []string, err error) {
	cfg, err := LoadConfig(path)
	if err != nil {
		return nil, nil, err
	}
	return s.Reload(cfg)
}

// Submit admits a job with a server-generated trace context; see
// SubmitTraced.
func (s *Server) Submit(spec JobSpec, remoteHost string) (*Job, error) {
	return s.SubmitTraced(spec, remoteHost, "")
}

// SubmitTraced admits a job under a trace context. The spec is
// normalized and content-addressed; admission rejects when draining
// (503), when the queue is full or the client exceeds its active-job
// cap (429 + Retry-After). Accepted jobs are queued and run
// asynchronously; identical accepted jobs share work through the
// store, the singleflight group and the compile cache, not through
// admission. Every accepted job opens its own observability Scope: a
// private span tree rooted at a "job" span carrying traceID (empty or
// invalid IDs get a generated one), folded into the service registry
// at the terminal state. Rejections and lifecycle transitions are
// recorded in the flight recorder.
func (s *Server) SubmitTraced(spec JobSpec, remoteHost, traceID string) (*Job, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	key, err := norm.Key()
	if err != nil {
		return nil, err
	}
	client := norm.Client
	if client == "" {
		client = remoteHost
	}
	if client == "" {
		client = "anonymous"
	}
	if !validTraceID(traceID) {
		traceID = genTraceID()
	}
	cfg := s.Config()

	reject := func(rej *RejectError) (*Job, error) {
		s.cRejected.Inc()
		s.flightrec.record(FlightRecord{
			Kind:    "rejected",
			Client:  client,
			TraceID: traceID,
			Code:    rej.Code,
			Reason:  rej.Reason,
		})
		return nil, rej
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return reject(&RejectError{Code: 503, RetryAfter: 10 * time.Second,
			Reason: "server is draining"})
	}
	if s.queued >= cfg.QueueDepth {
		return reject(&RejectError{Code: 429, RetryAfter: 2 * time.Second,
			Reason: fmt.Sprintf("job queue full (%d queued, depth %d)", s.queued, cfg.QueueDepth)})
	}
	if s.perClient[client] >= cfg.MaxPerClient {
		return reject(&RejectError{Code: 429, RetryAfter: 5 * time.Second,
			Reason: fmt.Sprintf("client %q at its active-job cap (%d)", client, cfg.MaxPerClient)})
	}

	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:       fmt.Sprintf("job-%06d", s.nextID),
		client:   client,
		spec:     norm,
		key:      key,
		traceID:  traceID,
		hub:      newEventHub(),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
		queuedAt: time.Now(),
	}
	j.scope = s.obsSinks.OpenScope(obs.ScopeConfig{
		Spans:         true,
		MaxSpanEvents: jobTraceEvents,
		SimEvents:     true,
		SimRingSize:   jobSimRing,
	})
	j.rootSpan = j.scope.Obs().StartSpan("job")
	j.rootSpan.SetAttr("job", j.id)
	j.rootSpan.SetAttr("trace_id", traceID)
	j.rootSpan.SetAttr("client", client)
	j.rootSpan.SetAttr("key", key)
	for _, fig := range norm.Figures {
		j.rootSpan.SetAttr("fig_"+fig, "requested")
	}
	j.queueSpan = j.rootSpan.Child("queue_wait")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queued++
	s.perClient[client]++
	s.gQueued.SetInt(int64(s.queued))
	s.cAccepted.Inc()
	s.flightrec.record(FlightRecord{
		Kind:    "transition",
		JobID:   j.id,
		Client:  client,
		To:      StateQueued,
		TraceID: traceID,
	})
	// Send under the lock: the channel's capacity is maxQueueDepth and
	// admission bounds queued below it, so this never blocks; holding
	// the lock orders the send before any concurrent Drain closes the
	// channel.
	s.queue <- j
	j.hub.publish(Event{Type: "state", JobID: j.id, State: StateQueued})
	return j, nil
}

// validTraceID accepts client trace IDs: 1-64 characters drawn from
// [A-Za-z0-9._-] (attribute- and log-safe without escaping).
func validTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// genTraceID creates a random 16-hex-digit trace ID.
func genTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed
		// fallback beats an unsubmittable job.
		return "trace-rand-failed"
	}
	return hex.EncodeToString(b[:])
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels a job: a queued job finalizes immediately, a running
// job has its context canceled and finalizes when its work unwinds.
// Canceling a terminal job is a no-op returning false.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateQueued:
		// Guarded on still-queued: if a worker started the job between
		// the check and here, fall through to a context cancel instead.
		if s.finalizeFrom(j, StateQueued, StateCanceled, errors.New("canceled by client"), false, false) {
			return true
		}
		j.cancel()
		return true
	case StateRunning:
		j.cancel()
		return true
	}
	return false
}

// Drain stops the service gracefully: new submissions are rejected,
// queued-but-unstarted jobs are canceled, in-flight jobs run to
// completion. It returns once every worker has exited or ctx expires.
// The artifact store stays consistent throughout (writes are atomic and
// canceled jobs never wrote).
func (s *Server) Drain(ctx context.Context) error {
	var queued []*Job
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		for _, id := range s.order {
			j := s.jobs[id]
			j.mu.Lock()
			if j.state == StateQueued {
				queued = append(queued, j)
			}
			j.mu.Unlock()
		}
		close(s.queue)
		s.mu.Unlock()
		for _, j := range queued {
			j.cancel()
			// Guarded: a worker may have started the job between the
			// scan and here; started jobs run to completion.
			s.finalizeFrom(j, StateQueued, StateCanceled,
				errors.New("server drained before start"), false, false)
		}
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// finalize moves a job to a terminal state exactly once, updating
// bookkeeping, counters and the event stream.
func (s *Server) finalize(j *Job, state State, err error, cacheHit, shared bool) {
	s.finalizeFrom(j, "", state, err, cacheHit, shared)
}

// finalizeFrom is finalize guarded on the job's current state: when
// require is non-empty and the job is no longer in it, nothing happens
// and false is returned (the cancel paths use this so a job that a
// worker started concurrently runs to completion instead of being
// half-canceled).
func (s *Server) finalizeFrom(j *Job, require, state State, err error, cacheHit, shared bool) bool {
	j.mu.Lock()
	if j.state.Terminal() || (require != "" && j.state != require) {
		j.mu.Unlock()
		return false
	}
	wasQueued := j.state == StateQueued
	from := j.state
	j.state = state
	j.cacheHit = cacheHit
	j.shared = shared
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finishedAt = time.Now()
	j.res = j.resourcesLocked()
	j.mu.Unlock()

	// Seal the job's trace: the root span closes with the outcome and
	// the scope's child registry folds into the service registry, so
	// process-wide totals include this job from here on while its span
	// tree stays servable at /v1/jobs/{id}/trace.
	if wasQueued {
		j.queueSpan.End()
	}
	j.rootSpan.SetAttr("state", string(state))
	if cacheHit {
		j.rootSpan.SetAttr("cache", "store-hit")
	} else if shared {
		j.rootSpan.SetAttr("cache", "inflight-dedup")
	}
	if err != nil {
		j.rootSpan.SetAttr("err", err.Error())
	}
	j.rootSpan.End()
	j.scope.Close()

	rec := FlightRecord{
		Kind:    "transition",
		JobID:   j.id,
		Client:  j.client,
		From:    from,
		To:      state,
		TraceID: j.traceID,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.flightrec.record(rec)

	s.mu.Lock()
	if wasQueued {
		s.queued--
		s.gQueued.SetInt(int64(s.queued))
	} else {
		s.running--
		s.gRunning.SetInt(int64(s.running))
	}
	s.perClient[j.client]--
	if s.perClient[j.client] <= 0 {
		delete(s.perClient, j.client)
	}
	s.mu.Unlock()

	switch state {
	case StateDone:
		s.cDone.Inc()
	case StateFailed:
		s.cFailed.Inc()
	case StateCanceled:
		s.cCanceled.Inc()
	}
	e := Event{Type: "state", JobID: j.id, State: state}
	if err != nil {
		e.Err = err.Error()
	}
	j.hub.publish(e)
	j.hub.close()
	close(j.done)
	return true
}

// runJob executes one queued job on a worker: store lookup first, then
// a singleflight-deduplicated build, then an atomic store write.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued (drain or explicit cancel).
		j.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		j.mu.Unlock()
		s.finalize(j, StateCanceled, j.ctx.Err(), false, false)
		return
	}
	j.state = StateRunning
	j.startedAt = time.Now()
	j.sampled = true
	j.startCPU = cpuTimeNanos()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	j.startAllocs = ms.TotalAlloc
	j.mu.Unlock()
	j.queueSpan.End()
	j.queueSpan = nil

	s.mu.Lock()
	s.queued--
	s.running++
	s.gQueued.SetInt(int64(s.queued))
	s.gRunning.SetInt(int64(s.running))
	s.mu.Unlock()
	s.flightrec.record(FlightRecord{
		Kind:    "transition",
		JobID:   j.id,
		Client:  j.client,
		From:    StateQueued,
		To:      StateRunning,
		TraceID: j.traceID,
	})
	j.hub.publish(Event{Type: "state", JobID: j.id, State: StateRunning})

	// Content-addressed fast path: an identical job already produced
	// these bytes (this process or any earlier one sharing the store).
	lookup := j.rootSpan.Child("store_lookup")
	if data, err := s.store.Get(j.key); err == nil && len(data) > 0 {
		lookup.SetAttr("result", "hit")
		lookup.End()
		s.cStoreHits.Inc()
		s.finalize(j, StateDone, nil, true, false)
		return
	}
	lookup.SetAttr("result", "miss")
	lookup.End()
	s.cStoreMiss.Inc()

	// Singleflight on the content key: identical in-flight jobs share
	// one build. The shared result is already in the store when the
	// leader returns.
	buildSpan := j.rootSpan.Child("build")
	_, shared, err := s.flight.Do(j.key, func() (any, error) {
		data, err := s.build(j)
		if err != nil {
			return nil, err
		}
		write := j.rootSpan.Child("store_write")
		write.SetInt("bytes", len(data))
		putErr := s.store.Put(j.key, data)
		write.End()
		if putErr != nil {
			return nil, putErr
		}
		return data, nil
	})
	if shared {
		buildSpan.SetAttr("shared", "inflight-dedup")
	}
	buildSpan.End()
	if shared {
		s.cDedup.Inc()
	}
	switch {
	case err == nil:
		s.finalize(j, StateDone, nil, false, shared)
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled):
		s.finalize(j, StateCanceled, err, false, shared)
	default:
		s.slog().Error("job failed", "job", j.id, "trace", j.traceID, "err", err)
		s.finalize(j, StateFailed, err, false, shared)
	}
}

// buildArtifact computes the job's figures through a per-job Suite
// wired into the shared compile/run cache and the service registry, and
// encodes the deterministic artifact sections. Runner timings and
// registry snapshots are deliberately excluded: the artifact must be a
// pure function of (spec, machine) so the content-addressed store can
// serve byte-identical results forever.
func (s *Server) buildArtifact(j *Job) ([]byte, error) {
	cfg := s.Config()
	// Instrumentation sinks are the job's own scope: compile-phase
	// spans and simulator events land in the per-job trace, and metric
	// updates land in the scope's child registry, folded into the
	// service registry when the job finalizes.
	jobObs := j.scope.Obs()
	if jobObs == nil {
		jobObs = s.obsSinks
	}
	suite := experiments.NewWithOptions(experiments.Options{
		Workers: cfg.Workers,
		Verify:  j.spec.Verify || cfg.Verify,
		Cache:   s.cache,
		Obs:     jobObs,
		// Every job samples the guest PMU at the default period; the
		// profile is served at /v1/jobs/{id}/simprofile and never enters
		// the store artifact. All suites share s.cache, so enabling it
		// uniformly keeps cached runs' profiles consistent.
		PMU: &pmu.Config{},
		OnEvent: func(e runner.Event) {
			j.hub.publish(Event{
				Type:      "progress",
				JobID:     j.id,
				Key:       e.Key,
				Kind:      string(e.Kind),
				Phase:     string(e.Type),
				ElapsedMS: float64(e.Elapsed) / float64(time.Millisecond),
				Err:       e.Err,
			})
		},
	})
	ctx := j.ctx
	art := experiments.NewArtifact()
	for _, fig := range j.spec.Figures {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch fig {
		case "3":
			f3, err := suite.Figure3Ctx(ctx)
			if err != nil {
				return nil, err
			}
			art.Figure3 = f3
		case "5":
			for _, sz := range j.spec.Fig5Sizes {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				f5, err := suite.Figure5(sz)
				if err != nil {
					return nil, err
				}
				art.Figure5 = append(art.Figure5, f5)
			}
		case "7":
			art.BufferSizes = append([]int(nil), j.spec.Fig7Sizes...)
			art.Figure7 = map[string][]experiments.Fig7Row{}
			for _, cfgName := range []string{"traditional", "aggressive"} {
				rows, err := suite.Figure7Ctx(ctx, cfgName, j.spec.Fig7Sizes)
				if err != nil {
					return nil, err
				}
				art.Figure7[cfgName] = rows
			}
		case "8a":
			rows, err := suite.Figure8aCtx(ctx)
			if err != nil {
				return nil, err
			}
			art.Figure8a = rows
		case "8b":
			rows, err := suite.Figure8bCtx(ctx)
			if err != nil {
				return nil, err
			}
			art.Figure8b = rows
		case "encoding":
			rows, err := suite.EncodingCosts()
			if err != nil {
				return nil, err
			}
			art.Encoding = rows
		case "headline":
			h, err := suite.ComputeHeadlineCtx(ctx)
			if err != nil {
				return nil, err
			}
			art.Headline = h
		case "shootout":
			rows, err := suite.ShootoutCtx(ctx)
			if err != nil {
				return nil, err
			}
			art.Shootout = rows
		default:
			return nil, fmt.Errorf("unknown figure %q after normalization", fig)
		}
	}
	if doc := suite.SimProfiles(); doc != nil {
		j.mu.Lock()
		j.simprofile = doc
		j.mu.Unlock()
	}
	return art.Encode()
}
